# Build / verify entry points. `make verify` is the tier-1 gate plus the
# race-checked suite and a short benchmark pass.

GO ?= go

# Benchmark scale overrides, read by the harnesses via the environment:
#   BENCH_COUNT=60000   pin the exact event count for every bench-* target
#   BENCH_SCALE=0.25    multiply each harness's built-in default instead
# BENCH_COUNT wins when both are set; unset means the built-in defaults.
# e.g.  make bench-live BENCH_COUNT=100000
#       make bench-recovery BENCH_SCALE=2
BENCH_COUNT ?=
BENCH_SCALE ?=
export BENCH_COUNT BENCH_SCALE

.PHONY: all build vet test race race-shard faults batch-guard obs-guard bench bench-diff bench-full bench-live bench-recovery verify

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The sharded ingest subsystem under forced parallelism: the shard workers,
# commit sequencer, and sharded-vs-serial equivalence properties race-checked
# at GOMAXPROCS=4 even on boxes whose default would serialize the schedule
# (a 1-core default hides exactly the interleavings sharding introduces).
race-shard:
	GOMAXPROCS=4 $(GO) test -race ./internal/shard/... ./internal/live/...

# Fault-injection and crash-safety suite: the vfs fault matrix, the WAL and
# checkpoint I/O-failure tests, the ALICE-style crash-point soak (crash after
# every file-system operation, recover, compare against the reference states),
# the torn-write soak, degraded read-only mode end to end (engine + HTTP), and
# the panic-isolation regressions. Runs at reduced scale by default;
# FAULT_SOAK_FULL=1 widens the soak workload.
#   make faults
#   FAULT_SOAK_FULL=1 make faults
faults:
	$(GO) test ./internal/vfs/ -v
	$(GO) test ./internal/wal/ ./internal/checkpoint/ -run 'Torn|Fsync|ENOSPC|Recover|Trims|SyncAlwaysRetry|Atomic' -v
	$(GO) test ./internal/core/ -run 'TestCrashPointSoak|TestTornWriteSoak|TestDegraded' -v -timeout 10m
	$(GO) test ./internal/exec/ ./internal/live/ -run 'Panic' -v
	$(GO) test ./cmd/serve/ -run 'TestServeDegradedMode|TestServeRequestTimeout' -v

# Batched-execution guardrails: the re-chunking and round-size invariance
# properties (any PushBatch chunking of a log, and any partitioned round
# size, must render byte-identically to per-event push), the 0 allocs/op
# pin on the keyed steady-state PushBatch, the dispatch-stats accounting
# test, and a single-iteration BenchmarkBatchPush smoke with -benchmem so
# an alloc regression on the batch path is visible in the verify output.
batch-guard:
	$(GO) test ./internal/exec -run 'TestPushBatchRechunkEquivalence|TestPartitionedRoundSizeInvariance|TestKeyedHotPathAllocFree|TestBatchDispatchStats' -v
	$(GO) test ./internal/exec -run '^$$' -bench BenchmarkBatchPush -benchtime 1x -benchmem

# Observability guardrails: the Prometheus exposition-format and
# concurrency tests for internal/obs, the 0 allocs/op pins on Counter.Add /
# Histogram.Observe, the /metrics + slow-commit serving integration tests,
# the no-hot-Stats audit, and the instrumented batch-push alloc pin (a
# single-iteration BenchmarkBatchPush with -benchmem, so an instrumentation
# regression on the hot path is visible in the verify output).
obs-guard:
	$(GO) test ./internal/obs -v
	$(GO) test ./internal/obs -race -run 'TestConcurrentObserveCollect'
	$(GO) test ./internal/obs -run '^$$' -bench 'BenchmarkCounterAdd|BenchmarkHistogramObserve' -benchtime 100x -benchmem
	$(GO) test ./cmd/serve -run 'TestMetrics|TestServeSlowCommitLog|TestPprofGated' -v
	$(GO) test ./internal/live -run 'TestNoHotPathDriverStats' -v
	$(GO) test ./internal/exec -run 'TestKeyedHotPathAllocFree' -v
	$(GO) test ./internal/exec -run '^$$' -bench BenchmarkBatchPush -benchtime 1x -benchmem

# Short-mode benchmark harness: asserts serial/partitioned equivalence at
# reduced scale and refreshes the reduced-scale records
# (BENCH_nexmark_short.json, BENCH_live_short.json). The committed
# full-scale BENCH_nexmark.json / BENCH_live.json are only rewritten by
# bench-full / bench-live.
bench:
	NEXMARK_BENCH_WRITE=1 $(GO) test ./internal/nexmark -run 'TestNexmarkBench|TestSerialParallelEquivalence|TestLiveBench|TestRecoveryBench' -short -v

# Standing-query serving benchmark: ingests the NEXMark bid stream through
# live subscriptions — single-subscriber scenarios plus the K-subscriber
# shared-vs-unshared fan-out — and refreshes BENCH_live.json (steady-state
# throughput + per-delta latency percentiles).
bench-live:
	NEXMARK_BENCH_WRITE=1 $(GO) test ./internal/nexmark -run TestLiveBench -v -timeout 10m

# Recovery benchmark: checkpoint size, checkpoint/restore latency, and the
# full-history replay it replaces, for the standing benchmark query (serial
# and partitioned). Merges into the Recovery section of BENCH_live.json
# (short runs: BENCH_live_short.json) without touching the subscription rows.
bench-recovery:
	NEXMARK_BENCH_WRITE=1 $(GO) test ./internal/nexmark -run TestRecoveryBench -v -timeout 10m

# Compare fresh short benchmark runs against the committed short-mode
# baselines (like for like — short runs never compare against the
# full-scale BENCH_nexmark.json / BENCH_live.json): snapshots both
# baselines, reruns the short benches (which rewrite
# BENCH_nexmark_short.json and BENCH_live_short.json), and prints
# per-query speedup deltas plus per-subscription fan-out throughput deltas.
bench-diff:
	@base=$$(mktemp -t bench_base.XXXXXX.json) && \
	livebase=$$(mktemp -t bench_live_base.XXXXXX.json) && \
	cp BENCH_nexmark_short.json $$base && \
	cp BENCH_live_short.json $$livebase && \
	NEXMARK_BENCH_WRITE=1 $(GO) test ./internal/nexmark -run 'TestNexmarkBench|TestLiveBench|TestRecoveryBench' -short && \
	$(GO) run ./cmd/benchdiff $$base BENCH_nexmark_short.json && \
	$(GO) run ./cmd/benchdiff $$livebase BENCH_live_short.json; \
	status=$$?; rm -f $$base $$livebase; exit $$status

# Full-scale benchmark: regenerates BENCH_nexmark.json at 60k events and
# enforces the >=1.5x partitioned speedup bar on machines with >=4 cores
# (the bar never arms in the regular/race test suite).
bench-full:
	NEXMARK_BENCH_STRICT=1 NEXMARK_BENCH_WRITE=1 $(GO) test ./internal/nexmark -run TestNexmarkBench -v -timeout 20m

verify: vet build race race-shard faults batch-guard obs-guard bench
