package main

// Integration tests for the observability surface: GET /metrics serves the
// Prometheus text format with every layer's families present after real
// traffic, a commit slower than -slow-commit emits exactly one structured
// span-breakdown line, and -pprof mounts the profiling endpoints.

import (
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// syncBuffer is a goroutine-safe bytes.Buffer for capturing slog output
// written from HTTP handler goroutines.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.b.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.b.String()
}

func getBody(t *testing.T, c *http.Client, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(data), resp.Header
}

// TestMetricsEndpoint drives real traffic through a fully wired engine —
// WAL attached, sharded fan-out, a standing query, one-shot queries,
// heartbeats, and a checkpoint — then scrapes /metrics and asserts every
// layer's families are present and the exposition is well-formed.
func TestMetricsEndpoint(t *testing.T) {
	dir := t.TempDir()
	engine, walw, _, err := openEngine(0, 0, dir, "always", 2,
		core.WithObs(obs.NewRegistry()), core.WithSlowCommit(0))
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()
	defer walw.Close()
	srv := NewServer(engine)
	srv.EnableCheckpoint(dir + "/" + checkpointFileName)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := ts.Client()

	registerBid(t, c, ts.URL)

	// A standing query so the live/exec families move.
	req, err := http.NewRequest("GET",
		ts.URL+"/v1/subscribe?sql="+queryEscape(`SELECT auction, price FROM Bid`), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	ingestBids(t, c, ts.URL, []eventJSON{
		{Kind: "insert", Ptime: timeMS(1000), Row: []any{int64(1), int64(500), int64(1000)}},
		{Kind: "insert", Ptime: timeMS(2000), Row: []any{int64(2), int64(950), int64(2000)}},
	})
	if code, body := postJSON(t, c, ts.URL+"/v1/heartbeat", map[string]any{"ptime": 3000}); code != http.StatusOK {
		t.Fatalf("heartbeat: status %d body %v", code, body)
	}
	if code, body, _ := getBody(t, c, ts.URL+"/v1/query?sql="+queryEscape(`SELECT COUNT(*) c FROM Bid`)); code != http.StatusOK {
		t.Fatalf("query: status %d body %s", code, body)
	}
	if code, body := postJSON(t, c, ts.URL+"/v1/checkpoint", nil); code != http.StatusOK {
		t.Fatalf("checkpoint: status %d body %v", code, body)
	}

	code, body, hdr := getBody(t, c, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type = %q", ct)
	}

	// One family per instrumented layer, plus the commit tracer.
	for _, want := range []string{
		`engine_commits_total{kind="publish"} 1`,
		`engine_commits_total{kind="heartbeat"} 1`,
		`engine_queries_total{path="`,
		"checkpoint_total 1",
		"wal_appends_total",
		"wal_fsync_seconds_bucket{le=",
		`shard_queue_depth{shard="0"}`,
		`shard_applied_total{shard="1"}`,
		"live_sessions 1",
		"live_deltas_out_total",
		"live_events_in_total 2",
		"exec_dispatches_total",
		"commit_seconds_count",
		`commit_stage_seconds_bucket{stage=`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Every non-comment line is `name{labels} value` with a parseable value;
	// HELP/TYPE precede their family's samples.
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# HELP ") && !strings.HasPrefix(line, "# TYPE ") {
				t.Fatalf("malformed comment line %q", line)
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			t.Fatalf("malformed sample line %q", line)
		}
	}
}

// TestMetricsAfterRestore: a pipeline restored from a checkpoint counts
// into the live_* families exactly like a freshly registered one (the
// restore path must wire the session to the manager's metrics too).
func TestMetricsAfterRestore(t *testing.T) {
	dir := t.TempDir()
	{
		engine, walw, _, err := openEngine(0, 0, dir, "always", 0,
			core.WithObs(obs.NewRegistry()))
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer(engine)
		srv.EnableCheckpoint(dir + "/" + checkpointFileName)
		ts := httptest.NewServer(srv)
		c := ts.Client()
		registerBid(t, c, ts.URL)
		resp, err := c.Get(ts.URL + "/v1/subscribe?sql=" + queryEscape(`SELECT auction, price FROM Bid`))
		if err != nil {
			t.Fatal(err)
		}
		if code, body := postJSON(t, c, ts.URL+"/v1/checkpoint", nil); code != http.StatusOK {
			t.Fatalf("checkpoint: status %d body %v", code, body)
		}
		resp.Body.Close()
		ts.Close()
		walw.Close()
		engine.Close()
	}

	engine, walw, restored, err := openEngine(0, 0, dir, "always", 0,
		core.WithObs(obs.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()
	defer walw.Close()
	if !restored {
		t.Fatal("second boot did not restore from the checkpoint")
	}
	ts := httptest.NewServer(NewServer(engine))
	defer ts.Close()
	c := ts.Client()

	ingestBids(t, c, ts.URL, []eventJSON{
		{Kind: "insert", Ptime: timeMS(1000), Row: []any{int64(1), int64(500), int64(1000)}},
	})
	_, body, _ := getBody(t, c, ts.URL+"/metrics")
	for _, want := range []string{"live_sessions 1", "live_events_in_total 1"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics after restore missing %q", want)
		}
	}
}

// TestMetricsAbsentWithoutRegistry: an engine built without WithObs has no
// /metrics route (404), not an empty page.
func TestMetricsAbsentWithoutRegistry(t *testing.T) {
	ts, c := newTestServer(t)
	code, _, _ := getBody(t, c, ts.URL+"/metrics")
	if code != http.StatusNotFound {
		t.Fatalf("/metrics without registry: status %d, want 404", code)
	}
}

// TestServeSlowCommitLog: a commit slower than the -slow-commit threshold
// (forced to 1ns) emits exactly one structured span-breakdown line through
// the engine's trace logger, with per-stage durations.
func TestServeSlowCommitLog(t *testing.T) {
	var buf syncBuffer
	engine := core.NewEngine(core.WithUnboundedGroupBy(),
		core.WithObs(obs.NewRegistry()),
		core.WithSlowCommit(time.Nanosecond),
		core.WithTraceLogger(slog.New(slog.NewJSONHandler(&buf, nil))))
	defer engine.Close()
	ts := httptest.NewServer(NewServer(engine))
	defer ts.Close()
	c := ts.Client()

	registerBid(t, c, ts.URL)
	ingestBids(t, c, ts.URL, []eventJSON{
		{Kind: "insert", Ptime: timeMS(1000), Row: []any{int64(1), int64(500), int64(1000)}},
	})

	out := buf.String()
	slow := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "slow commit") {
			slow++
			for _, want := range []string{`"relation":"Bid"`, `"events":1`, `"total":`, `"validate":`, `"wal":`} {
				if !strings.Contains(line, want) {
					t.Errorf("slow-commit line missing %s: %s", want, line)
				}
			}
		}
	}
	if slow != 1 {
		t.Fatalf("%d slow-commit lines for one traced publish, want 1; log:\n%s", slow, out)
	}
}

// TestPprofGated: /debug/pprof is 404 by default and serves after
// EnablePprof (-pprof).
func TestPprofGated(t *testing.T) {
	engine := core.NewEngine()
	defer engine.Close()
	srv := NewServer(engine)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := ts.Client()

	if code, _, _ := getBody(t, c, ts.URL+"/debug/pprof/"); code != http.StatusNotFound {
		t.Fatalf("pprof before EnablePprof: status %d, want 404", code)
	}
	srv.EnablePprof()
	code, body, _ := getBody(t, c, ts.URL+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index after EnablePprof: status %d", code)
	}
}
