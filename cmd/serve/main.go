// Command serve runs the streaming SQL engine as a long-lived HTTP process:
// relations are registered and fed over JSON, one-shot queries return the
// table or stream rendering, and standing queries stream incremental EMIT
// deltas back over chunked ndjson responses — no recompilation or history
// rescan per request.
//
// With -shards N the standing-query fan-out runs on the sharded ingest
// subsystem: each resident pipeline is pinned to one of N shard workers and
// commits are applied asynchronously in global commit order, so disjoint
// standing queries scale across cores and a stalled Block-policy subscriber
// parks only its own shard. Delta sequences are byte-identical to the serial
// fan-out; /healthz and /v1/subscriptions report per-shard depth and lag.
// Graceful shutdown drains the shard queues before the final checkpoint, so
// every acknowledged commit is captured in the snapshot.
//
// With -data-dir the process is durable, snapshot + write-ahead-log style:
// every committed change (ingested batches, heartbeats, registrations) is
// appended to a segmented CRC-framed WAL under <data-dir>/wal before it is
// acknowledged, and the engine (catalog, recorded changelogs, and every
// shareable resident standing-query pipeline) is additionally snapshotted
// periodically and on SIGINT/SIGTERM with a crash-safe atomic file swap.
// Recovery on restart stitches the two: load the last snapshot, then
// re-publish the WAL tail through the normal commit path — so a kill -9
// loses nothing that was acknowledged (under the default -wal-sync=always),
// not just nothing since the last snapshot, and restored pipelines resume
// exactly where they stopped, with reconnecting subscribers attaching to
// them (snapshot hand-off included) without any history rescan.
//
// Each completed snapshot truncates the WAL segments it covers — snapshots
// are the log's compaction — so steady-state durability cost is the fsynced
// delta per interval plus an occasional snapshot, not a rewrite of the full
// history per interval. -wal-sync picks the fsync policy: "always" (fsync
// per committed batch, the default), "none" (OS-paced writeback), or a
// duration like "250ms" (background interval fsync; a crash can lose at
// most that window).
//
// Demo session (with -nexmark preloading the benchmark catalog):
//
//	go run ./cmd/serve -addr :8080 -nexmark 2000 -data-dir /var/lib/sql1 &
//	curl 'localhost:8080/v1/query?sql=SELECT+COUNT(*)+c+FROM+Bid'
//	curl -N 'localhost:8080/v1/subscribe?sql=SELECT+auction,+price+FROM+Bid+WHERE+price+>+900' &
//	curl -X POST localhost:8080/v1/relations/Bid/events -d \
//	  '{"events":[{"kind":"insert","ptime":999999999,"row":[1,7,950,999999999]}]}'
//	# the subscriber prints the matching delta immediately
//	curl -X POST localhost:8080/v1/checkpoint   # force a durable snapshot (and WAL truncation)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/nexmark"
	"repro/internal/obs"
	"repro/internal/types"
	"repro/internal/wal"
)

// checkpointFileName is the durable engine snapshot inside -data-dir; the
// write-ahead log lives in the walDirName subdirectory next to it.
const (
	checkpointFileName = "checkpoint.ckpt"
	walDirName         = "wal"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		preload    = flag.Int("nexmark", 0, "preload the NEXMark catalog with this many generated events (0 = empty engine; ignored when restoring from -data-dir)")
		seed       = flag.Int64("seed", 42, "generator seed for -nexmark")
		dataDir    = flag.String("data-dir", "", "directory for durable state (snapshot + write-ahead log); restart restores the engine and its standing queries from the last snapshot plus the WAL tail")
		ckptEvery  = flag.Duration("checkpoint-every", 30*time.Second, "interval between periodic snapshots, each truncating the applied WAL segments (needs -data-dir; 0 disables the ticker, leaving on-shutdown and POST /v1/checkpoint)")
		walSync    = flag.String("wal-sync", "always", "WAL fsync policy: \"always\" (per committed batch), \"none\", or an interval like \"250ms\" (needs -data-dir)")
		shards     = flag.Int("shards", 0, "shard workers for standing-query fan-out (0 = serial: deliveries run on the ingesting goroutine); with N > 0 each resident pipeline is pinned to one of N workers and commits are applied asynchronously in commit order, so disjoint standing queries scale across cores and a stalled Block-policy subscriber parks only its own shard")
		reqTimeout = flag.Duration("request-timeout", 30*time.Second, "deadline for one-shot requests (register, ingest, query, ...); past it the client gets a 503 and the handler context is canceled. Streaming /v1/subscribe is exempt. 0 disables")
		pprofOn    = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (off by default: profiling endpoints expose internals)")
		slowCommit = flag.Duration("slow-commit", obs.DefaultSlowCommit, "emit a structured span-breakdown log line for any commit slower than this (validate/wal/sequence/enqueue/apply/render/deliver attribution); 0 disables the log, histograms stay on")
		logFormat  = flag.String("log-format", "text", "structured log format: \"text\" or \"json\"")
	)
	flag.Parse()
	if err := initLogger(*logFormat); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	if err := run(*addr, *preload, *seed, *dataDir, *ckptEvery, *walSync, *shards, *reqTimeout, *pprofOn, *slowCommit); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

// initLogger installs the process-wide structured logger (-log-format).
// Everything the serve process logs — checkpoint/shutdown lines and the
// engine's slow-commit span breakdowns — goes through it, so one stream is
// machine-parseable end to end under -log-format=json.
func initLogger(format string) error {
	var h slog.Handler
	switch format {
	case "", "text":
		h = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		h = slog.NewJSONHandler(os.Stderr, nil)
	default:
		return fmt.Errorf("log-format must be \"text\" or \"json\", got %q", format)
	}
	slog.SetDefault(slog.New(h))
	return nil
}

// run assembles the engine (restoring snapshot + WAL tail from the data dir
// when present), serves HTTP until SIGINT/SIGTERM, then shuts down
// gracefully: final checkpoint first (while the resident pipelines are
// still alive), then drain the standing-query handlers, then close the
// listener.
func run(addr string, preload int, seed int64, dataDir string, ckptEvery time.Duration, walSync string, shards int, reqTimeout time.Duration, pprofOn bool, slowCommit time.Duration) error {
	engine, walw, restored, err := openEngine(preload, seed, dataDir, walSync, shards,
		core.WithObs(obs.NewRegistry()), core.WithSlowCommit(slowCommit))
	if err != nil {
		return err
	}
	defer engine.Close()
	srv := NewServer(engine)
	srv.SetRequestTimeout(reqTimeout)
	if pprofOn {
		srv.EnablePprof()
	}
	if dataDir != "" {
		srv.EnableCheckpoint(filepath.Join(dataDir, checkpointFileName))
	}
	if walw != nil {
		defer walw.Close()
		srv.EnableWALTruncation(walw.TruncateThrough)
	}
	// A first boot writes its snapshot immediately: from here on, recovery
	// is always snapshot + WAL tail, never a re-run of the preload flags
	// (whose values a later restart is not obliged to repeat).
	if dataDir != "" && !restored {
		n, err := srv.CheckpointNow()
		if err != nil {
			return fmt.Errorf("initial checkpoint: %w", err)
		}
		slog.Info("initial checkpoint written", "bytes", n)
	}

	// No WriteTimeout: it would sever streaming /v1/subscribe responses,
	// which are unbounded by design. One-shot handlers are bounded by
	// -request-timeout instead; slow or stuck clients on the read side are
	// bounded by the header/read/idle deadlines below.
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Periodic checkpoints, decoupled from request handling. A failed
	// checkpoint retries on a capped exponential backoff (1s, 2s, ... up to
	// the regular interval) instead of waiting a full interval: transient
	// faults heal quickly, and a persistent one reaches the degraded-mode
	// threshold in seconds rather than minutes. CheckpointNow itself tracks
	// consecutive failures for /healthz and flips/clears degraded mode.
	if dataDir != "" && ckptEvery > 0 {
		go func() {
			backoff := time.Duration(0)
			delay := ckptEvery
			timer := time.NewTimer(delay)
			defer timer.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-timer.C:
				}
				if n, err := srv.CheckpointNow(); err != nil {
					if backoff == 0 {
						backoff = time.Second
					} else {
						backoff *= 2
					}
					if backoff > ckptEvery {
						backoff = ckptEvery
					}
					delay = backoff
					slog.Error("periodic checkpoint failed", "retryIn", delay, "err", err)
				} else {
					backoff = 0
					delay = ckptEvery
					slog.Info("checkpoint written", "bytes", n, "sessions", engine.LiveSessions())
				}
				timer.Reset(delay)
			}
		}()
	}

	errc := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	slog.Info("listening", "addr", addr, "nexmarkPreload", preload, "dataDir", dataDir)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	slog.Info("shutting down")

	// 1. Final checkpoint while every resident pipeline is still alive —
	//    canceling a session's last cursor would tear its pipeline down.
	//    The snapshot runs under the live ordering lock, which a delivery
	//    parked on a stalled Block-policy subscriber can hold indefinitely;
	//    if the checkpoint cannot start promptly, end the subscriptions to
	//    release the park and let it complete against the surviving state
	//    (the catalog always; torn-down sessions rebuild by history replay
	//    after restart). Hanging forever would be worse: the operator's
	//    eventual SIGKILL would discard everything since the last periodic
	//    checkpoint.
	if dataDir != "" {
		ckptDone := make(chan struct{})
		go func() {
			defer close(ckptDone)
			// Drain the shard queues first so every acknowledged commit is
			// applied to its resident pipelines before they are snapshotted
			// (a no-op under the serial fan-out). Runs inside the timed
			// goroutine because a stalled Block-policy subscriber parks its
			// shard; CancelSubscriptions below releases the park.
			engine.Quiesce()
			if n, err := srv.CheckpointNow(); err != nil {
				slog.Error("final checkpoint failed", "err", err)
			} else {
				slog.Info("final checkpoint written", "bytes", n, "sessions", engine.LiveSessions())
			}
		}()
		select {
		case <-ckptDone:
		case <-time.After(5 * time.Second):
			slog.Warn("final checkpoint blocked (delivery parked on a stalled subscriber?); ending subscriptions to release it")
			srv.CancelSubscriptions()
			<-ckptDone
		}
	}
	// 2. End the standing-query streams so their chunked handlers return,
	//    then 3. drain the listener. In-flight one-shot requests get the
	//    grace period; subscribers reconnect after restart and attach to
	//    the restored pipelines.
	srv.CancelSubscriptions()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	slog.Info("stopped")
	return nil
}

// openEngine builds the serving engine. Without a data dir it is simply
// fresh (optionally preloaded with the NEXMark catalog). With one, it is
// the full recovery stitch: sweep crash litter, load the last snapshot if
// present, re-publish the WAL tail through the normal commit path, then
// open the log for appending and attach it so every further commit is
// logged. The returned restored flag reports whether a snapshot existed
// (run writes an initial one otherwise).
func openEngine(preload int, seed int64, dataDir, walSync string, shards int, opts ...core.Option) (*core.Engine, *wal.Writer, bool, error) {
	if dataDir == "" {
		engine, err := buildEngine(preload, seed, shards, opts...)
		return engine, nil, false, err
	}
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return nil, nil, false, err
	}
	if err := sweepStaleCheckpointTemps(dataDir); err != nil {
		return nil, nil, false, err
	}

	var engine *core.Engine
	restored := false
	path := filepath.Join(dataDir, checkpointFileName)
	switch _, statErr := os.Stat(path); {
	case statErr == nil:
		engine = core.NewEngine(append([]core.Option{core.WithUnboundedGroupBy(), core.WithShards(shards)}, opts...)...)
		if err := engine.RestoreFile(path); err != nil {
			return nil, nil, false, fmt.Errorf("restoring %s: %w", path, err)
		}
		restored = true
		slog.Info("restored engine from checkpoint (standing queries resume without history replay)",
			"path", path, "sessions", engine.LiveSessions())
	case os.IsNotExist(statErr):
		var err error
		if engine, err = buildEngine(preload, seed, shards, opts...); err != nil {
			return nil, nil, false, err
		}
	default:
		// Only a definitively-absent checkpoint may start fresh: a
		// transient stat failure must not boot an empty engine whose
		// next periodic checkpoint would overwrite the durable one.
		return nil, nil, false, fmt.Errorf("checking %s: %w", path, statErr)
	}

	// Re-publish the WAL tail through the normal commit path: records the
	// snapshot already covers are skipped by sequence number, the rest
	// replay exactly as live changes would. A torn tail is the expected
	// crash signature; anything else fails the boot loudly.
	walDir := filepath.Join(dataDir, walDirName)
	info, err := wal.Replay(walDir, engine.ReplayWALRecord)
	if err != nil {
		return nil, nil, false, fmt.Errorf("replaying %s: %w", walDir, err)
	}
	if info.Frames > 0 {
		slog.Info("replayed WAL tail", "throughSeq", info.LastSeq, "records", info.Frames, "engineSeq", engine.WALSeq())
	}
	if info.Torn != "" {
		slog.Warn("WAL tail was torn by a crash; recovered to the last valid commit", "torn", info.Torn)
	}

	mode, interval, err := wal.ParseSyncPolicy(walSync)
	if err != nil {
		return nil, nil, false, err
	}
	walw, err := wal.Open(walDir, engine.WALSeq()+1, wal.Options{Mode: mode, Interval: interval, Obs: engine.Obs()})
	if err != nil {
		return nil, nil, false, fmt.Errorf("opening %s: %w", walDir, err)
	}
	if err := engine.AttachWAL(walw); err != nil {
		walw.Close()
		return nil, nil, false, err
	}
	return engine, walw, restored, nil
}

// sweepStaleCheckpointTemps removes checkpoint temp files a previous run's
// crash mid-WriteFileAtomic left behind. They are never the live snapshot
// (the atomic swap either renamed the temp away or abandoned it), so
// without this they accumulate in -data-dir forever.
func sweepStaleCheckpointTemps(dataDir string) error {
	stale, err := filepath.Glob(filepath.Join(dataDir, checkpointFileName+".tmp*"))
	if err != nil {
		return err
	}
	for _, p := range stale {
		if err := os.Remove(p); err != nil {
			return fmt.Errorf("sweeping stale checkpoint temp %s: %w", p, err)
		}
		slog.Info("removed stale checkpoint temp", "path", p)
	}
	return nil
}

// buildEngine creates the engine, optionally preloaded with the NEXMark
// catalog and a deterministic dataset so demos have data to query.
func buildEngine(events int, seed int64, shards int, opts ...core.Option) (*core.Engine, error) {
	all := append([]core.Option{core.WithUnboundedGroupBy(), core.WithShards(shards)}, opts...)
	if events <= 0 {
		return core.NewEngine(all...), nil
	}
	g := nexmark.Generate(nexmark.GeneratorConfig{
		Seed: seed, NumEvents: events, MaxOutOfOrderness: 2 * types.Second,
	})
	return nexmark.NewEngine(g, all...)
}
