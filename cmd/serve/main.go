// Command serve runs the streaming SQL engine as a long-lived HTTP process:
// relations are registered and fed over JSON, one-shot queries return the
// table or stream rendering, and standing queries stream incremental EMIT
// deltas back over chunked ndjson responses — no recompilation or history
// rescan per request.
//
// With -data-dir the process is durable: the engine (catalog, recorded
// changelogs, and every shareable resident standing-query pipeline) is
// checkpointed periodically and on SIGINT/SIGTERM with a crash-safe atomic
// file swap, and a restart restores it from the last checkpoint — restored
// pipelines resume exactly where they stopped, so reconnecting subscribers
// attach to them (snapshot hand-off included) without any history rescan.
// Changes ingested after the last completed checkpoint are rewound with the
// rest of the engine: catalog and pipelines always restore to one consistent
// commit point.
//
// Demo session (with -nexmark preloading the benchmark catalog):
//
//	go run ./cmd/serve -addr :8080 -nexmark 2000 -data-dir /var/lib/sql1 &
//	curl 'localhost:8080/v1/query?sql=SELECT+COUNT(*)+c+FROM+Bid'
//	curl -N 'localhost:8080/v1/subscribe?sql=SELECT+auction,+price+FROM+Bid+WHERE+price+>+900' &
//	curl -X POST localhost:8080/v1/relations/Bid/events -d \
//	  '{"events":[{"kind":"insert","ptime":999999999,"row":[1,7,950,999999999]}]}'
//	# the subscriber prints the matching delta immediately
//	curl -X POST localhost:8080/v1/checkpoint   # force a durable checkpoint
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/nexmark"
	"repro/internal/types"
)

// checkpointFileName is the durable engine snapshot inside -data-dir.
const checkpointFileName = "checkpoint.ckpt"

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		preload   = flag.Int("nexmark", 0, "preload the NEXMark catalog with this many generated events (0 = empty engine; ignored when restoring from -data-dir)")
		seed      = flag.Int64("seed", 42, "generator seed for -nexmark")
		dataDir   = flag.String("data-dir", "", "directory for durable checkpoints; restart restores the engine and its standing queries from the last checkpoint")
		ckptEvery = flag.Duration("checkpoint-every", 30*time.Second, "interval between periodic checkpoints (needs -data-dir; 0 disables the ticker, leaving on-shutdown and POST /v1/checkpoint)")
	)
	flag.Parse()
	if err := run(*addr, *preload, *seed, *dataDir, *ckptEvery); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

// run assembles the engine (restoring from the data dir when a checkpoint
// exists), serves HTTP until SIGINT/SIGTERM, then shuts down gracefully:
// final checkpoint first (while the resident pipelines are still alive),
// then drain the standing-query handlers, then close the listener.
func run(addr string, preload int, seed int64, dataDir string, ckptEvery time.Duration) error {
	engine, err := openEngine(preload, seed, dataDir)
	if err != nil {
		return err
	}
	srv := NewServer(engine)
	if dataDir != "" {
		srv.EnableCheckpoint(filepath.Join(dataDir, checkpointFileName))
	}

	httpSrv := &http.Server{Addr: addr, Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Periodic checkpoints, decoupled from request handling.
	if dataDir != "" && ckptEvery > 0 {
		go func() {
			tick := time.NewTicker(ckptEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if n, err := srv.CheckpointNow(); err != nil {
						log.Printf("serve: periodic checkpoint failed: %v", err)
					} else {
						log.Printf("serve: checkpoint written (%d bytes, %d sessions)", n, engine.LiveSessions())
					}
				}
			}
		}()
	}

	errc := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	log.Printf("serve: listening on %s (nexmark preload: %d events, data-dir: %q)", addr, preload, dataDir)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("serve: shutting down")

	// 1. Final checkpoint while every resident pipeline is still alive —
	//    canceling a session's last cursor would tear its pipeline down.
	//    The snapshot runs under the live ordering lock, which a delivery
	//    parked on a stalled Block-policy subscriber can hold indefinitely;
	//    if the checkpoint cannot start promptly, end the subscriptions to
	//    release the park and let it complete against the surviving state
	//    (the catalog always; torn-down sessions rebuild by history replay
	//    after restart). Hanging forever would be worse: the operator's
	//    eventual SIGKILL would discard everything since the last periodic
	//    checkpoint.
	if dataDir != "" {
		ckptDone := make(chan struct{})
		go func() {
			defer close(ckptDone)
			if n, err := srv.CheckpointNow(); err != nil {
				log.Printf("serve: final checkpoint failed: %v", err)
			} else {
				log.Printf("serve: final checkpoint written (%d bytes, %d sessions)", n, engine.LiveSessions())
			}
		}()
		select {
		case <-ckptDone:
		case <-time.After(5 * time.Second):
			log.Printf("serve: final checkpoint blocked (delivery parked on a stalled subscriber?); ending subscriptions to release it")
			srv.CancelSubscriptions()
			<-ckptDone
		}
	}
	// 2. End the standing-query streams so their chunked handlers return,
	//    then 3. drain the listener. In-flight one-shot requests get the
	//    grace period; subscribers reconnect after restart and attach to
	//    the restored pipelines.
	srv.CancelSubscriptions()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	log.Printf("serve: stopped")
	return nil
}

// openEngine builds the serving engine: restored from the data dir's last
// checkpoint when one exists, otherwise fresh (optionally preloaded with the
// NEXMark catalog).
func openEngine(preload int, seed int64, dataDir string) (*core.Engine, error) {
	if dataDir != "" {
		if err := os.MkdirAll(dataDir, 0o755); err != nil {
			return nil, err
		}
		path := filepath.Join(dataDir, checkpointFileName)
		switch _, statErr := os.Stat(path); {
		case statErr == nil:
			engine := core.NewEngine(core.WithUnboundedGroupBy())
			if err := engine.RestoreFile(path); err != nil {
				return nil, fmt.Errorf("restoring %s: %w", path, err)
			}
			log.Printf("serve: restored engine from %s (%d standing queries resume without history replay)",
				path, engine.LiveSessions())
			return engine, nil
		case !os.IsNotExist(statErr):
			// Only a definitively-absent checkpoint may start fresh: a
			// transient stat failure must not boot an empty engine whose
			// next periodic checkpoint would overwrite the durable one.
			return nil, fmt.Errorf("checking %s: %w", path, statErr)
		}
	}
	return buildEngine(preload, seed)
}

// buildEngine creates the engine, optionally preloaded with the NEXMark
// catalog and a deterministic dataset so demos have data to query.
func buildEngine(events int, seed int64) (*core.Engine, error) {
	if events <= 0 {
		return core.NewEngine(core.WithUnboundedGroupBy()), nil
	}
	g := nexmark.Generate(nexmark.GeneratorConfig{
		Seed: seed, NumEvents: events, MaxOutOfOrderness: 2 * types.Second,
	})
	return nexmark.NewEngine(g, core.WithUnboundedGroupBy())
}
