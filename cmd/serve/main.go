// Command serve runs the streaming SQL engine as a long-lived HTTP process:
// relations are registered and fed over JSON, one-shot queries return the
// table or stream rendering, and standing queries stream incremental EMIT
// deltas back over chunked ndjson responses — no recompilation or history
// rescan per request.
//
// Demo session (with -nexmark preloading the benchmark catalog):
//
//	go run ./cmd/serve -addr :8080 -nexmark 2000 &
//	curl 'localhost:8080/v1/query?sql=SELECT+COUNT(*)+c+FROM+Bid'
//	curl -N 'localhost:8080/v1/subscribe?sql=SELECT+auction,+price+FROM+Bid+WHERE+price+>+900' &
//	curl -X POST localhost:8080/v1/relations/Bid/events -d \
//	  '{"events":[{"kind":"insert","ptime":999999999,"row":[1,7,950,999999999]}]}'
//	# the subscriber prints the matching delta immediately
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro/internal/core"
	"repro/internal/nexmark"
	"repro/internal/types"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		preload = flag.Int("nexmark", 0, "preload the NEXMark catalog with this many generated events (0 = empty engine)")
		seed    = flag.Int64("seed", 42, "generator seed for -nexmark")
	)
	flag.Parse()

	engine, err := buildEngine(*preload, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	srv := NewServer(engine)
	log.Printf("serve: listening on %s (nexmark preload: %d events)", *addr, *preload)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

// buildEngine creates the engine, optionally preloaded with the NEXMark
// catalog and a deterministic dataset so demos have data to query.
func buildEngine(events int, seed int64) (*core.Engine, error) {
	if events <= 0 {
		return core.NewEngine(core.WithUnboundedGroupBy()), nil
	}
	g := nexmark.Generate(nexmark.GeneratorConfig{
		Seed: seed, NumEvents: events, MaxOutOfOrderness: 2 * types.Second,
	})
	return nexmark.NewEngine(g, core.WithUnboundedGroupBy())
}
