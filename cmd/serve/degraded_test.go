package main

// Serve-level degraded-mode acceptance test: a persistent fsync fault in
// the WAL must flip the whole HTTP surface into the documented degraded
// contract — ingest bounces with 503 + Retry-After, /v1/healthz reports
// status=degraded with the cause, one-shot queries and open subscriptions
// keep serving — and clearing the fault plus one successful checkpoint
// brings ingest back without a restart.

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/types"
	"repro/internal/vfs"
	"repro/internal/wal"
)

// registerBidDirect registers the Bid stream on the engine itself, for
// tests whose HTTP routes are deliberately crippled.
func registerBidDirect(t *testing.T, e *core.Engine) {
	t.Helper()
	sch := types.NewSchema(
		types.Column{Name: "auction", Kind: types.KindInt64},
		types.Column{Name: "price", Kind: types.KindInt64},
		types.Column{Name: "dateTime", Kind: types.KindTimestamp, EventTime: true},
	)
	if err := e.RegisterStream("Bid", sch); err != nil {
		t.Fatal(err)
	}
}

func TestServeDegradedMode(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFault(vfs.Default)
	w, err := wal.Open(filepath.Join(dir, "wal"), 1, wal.Options{Mode: wal.SyncAlways, FS: ffs})
	if err != nil {
		t.Fatalf("open wal: %v", err)
	}
	defer w.Close()
	engine := core.NewEngine(core.WithUnboundedGroupBy())
	if err := engine.AttachWAL(w); err != nil {
		t.Fatalf("attach wal: %v", err)
	}
	srv := NewServer(engine)
	srv.EnableCheckpoint(filepath.Join(dir, "checkpoint.ckpt"))
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := ts.Client()

	registerBid(t, c, ts.URL)
	mkEvent := func(ptime, auction, price, et int64) eventJSON {
		return eventJSON{Kind: "insert", Ptime: timeMS(ptime), Row: []any{auction, price, et}}
	}
	ingestBids(t, c, ts.URL, []eventJSON{mkEvent(1000, 1, 950, 1000)})

	// A standing subscription opened while the engine is healthy.
	resp, read := subscribeLines(t, c, ts.URL,
		"sql="+queryEscape(`SELECT auction, price FROM Bid WHERE price > 900`))
	defer resp.Body.Close()
	if hdr := read(); hdr["type"] != "schema" {
		t.Fatalf("first line = %v, want schema", hdr)
	}
	if got := deltaPrices(t, read()); len(got) != 1 || got[0] != 950 {
		t.Fatalf("pre-fault delta prices = %v, want [950]", got)
	}

	// The disk stops honoring fsync. The first ingest is refused (the WAL
	// append fails and poisons the segment) and the engine degrades.
	ffs.AddFault(vfs.Fault{Op: vfs.OpSync, Err: errors.New("EIO: injected")})
	ingest := func() *http.Response {
		t.Helper()
		data, err := json.Marshal(ingestJSON{Events: []eventJSON{mkEvent(2000, 2, 960, 2000)}})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := c.Post(ts.URL+"/v1/relations/Bid/events", "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := ingest(); resp.StatusCode == http.StatusOK {
		t.Fatal("ingest with failing fsync must not be acknowledged")
	}
	// Every subsequent write bounces with the degraded contract: 503 and a
	// Retry-After hint, not a generic error the client would treat as fatal.
	if resp := ingest(); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest while degraded: status %d, want 503", resp.StatusCode)
	} else if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded 503 must carry Retry-After")
	}

	// Healthz tells the operator what is going on.
	code, hz := getJSON(t, c, ts.URL+"/v1/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz while degraded: status %d (the probe itself must stay up)", code)
	}
	if hz["status"] != "degraded" || hz["degraded"] != true {
		t.Fatalf("healthz = %v, want status=degraded", hz)
	}
	if cause, _ := hz["degradedCause"].(string); cause == "" {
		t.Fatal("healthz must report the degraded cause")
	}

	// Reads are unaffected: the one-shot query path serves the last
	// committed state, and the standing subscription is still open.
	qcode, res := getJSON(t, c, ts.URL+"/v1/query?sql="+queryEscape(`SELECT auction FROM Bid`))
	if qcode != http.StatusOK {
		t.Fatalf("one-shot query while degraded: status %d", qcode)
	}
	if rows := res["rows"].([]any); len(rows) != 1 {
		t.Fatalf("query rows while degraded = %v, want the pre-fault row", rows)
	}

	// The disk comes back. A successful checkpoint clears degraded mode
	// (the engine re-proves the log with a durable probe record first).
	ffs.ClearFaults()
	ccode, cbody := postJSON(t, c, ts.URL+"/v1/checkpoint", struct{}{})
	if ccode != http.StatusOK {
		t.Fatalf("checkpoint after fault cleared: status %d body %v", ccode, cbody)
	}
	code, hz = getJSON(t, c, ts.URL+"/v1/healthz")
	if code != http.StatusOK || hz["status"] != "ok" || hz["degraded"] != false {
		t.Fatalf("healthz after recovery = %v, want status=ok", hz)
	}
	ingestBids(t, c, ts.URL, []eventJSON{mkEvent(3000, 3, 1200, 3000)})
	// The subscriber that lived through the outage receives the new commit.
	if got := deltaPrices(t, read()); len(got) != 1 || got[0] != 1200 {
		t.Fatalf("post-recovery delta prices = %v, want [1200]", got)
	}
}

// TestServeRequestTimeout: the one-shot handlers run under the request
// timeout while the streaming subscribe endpoint is exempt — a subscription
// is *supposed* to outlive any timeout.
func TestServeRequestTimeout(t *testing.T) {
	engine := core.NewEngine()
	srv := NewServer(engine)
	srv.SetRequestTimeout(time.Nanosecond) // absurd on purpose: every timed route must trip
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := ts.Client()

	resp, err := c.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("timed route under 1ns timeout: status %d, want 503", resp.StatusCode)
	}

	// Subscribe must NOT be wrapped: it stays open well past the timeout.
	// Register through the engine directly — this server's POST routes are
	// deliberately unusable under the 1ns timeout.
	registerBidDirect(t, engine)
	sresp, err := c.Get(ts.URL + "/v1/subscribe?sql=" + queryEscape(`SELECT auction FROM Bid`))
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe under request timeout: status %d, want 200 (exempt)", sresp.StatusCode)
	}
	// Give the timeout wrapper every chance to misfire, then confirm the
	// stream is still delivering: read the schema line.
	time.Sleep(20 * time.Millisecond)
	buf := make([]byte, 1)
	if _, err := sresp.Body.Read(buf); err != nil {
		t.Fatalf("subscribe stream died under request timeout: %v", err)
	}
}
