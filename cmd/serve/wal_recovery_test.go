package main

// WAL kill-and-restart integration tests, driven through openEngine — the
// production recovery path. The difference from TestServeKillAndRestart:
// events ingested AFTER the last snapshot must survive the crash (they live
// only in the WAL tail), where the snapshot-only engine rewound them. Plus
// the crash-litter sweep and the /healthz checkpoint-failure surfacing.

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// openServer runs the production boot sequence (openEngine + checkpoint and
// WAL-truncation wiring + first-boot snapshot) and returns the HTTP server.
func openServer(t *testing.T, dir string) (*Server, *httptest.Server, bool) {
	t.Helper()
	engine, walw, restored, err := openEngine(0, 0, dir, "always", 0)
	if err != nil {
		t.Fatalf("openEngine: %v", err)
	}
	if walw == nil {
		t.Fatal("openEngine with a data dir returned no WAL writer")
	}
	srv := NewServer(engine)
	srv.EnableCheckpoint(filepath.Join(dir, checkpointFileName))
	srv.EnableWALTruncation(walw.TruncateThrough)
	if !restored {
		if _, err := srv.CheckpointNow(); err != nil {
			t.Fatalf("initial checkpoint: %v", err)
		}
	}
	ts := httptest.NewServer(srv)
	return srv, ts, restored
}

// TestServeWALKillAndRestart: snapshot mid-stream, keep ingesting, crash
// WITHOUT another snapshot, recover — the post-snapshot events come back
// from the WAL tail, and a reconnecting subscriber's snapshot hand-off is
// byte-identical to a fresh dedicated subscription.
func TestServeWALKillAndRestart(t *testing.T) {
	dir := t.TempDir()
	sql := queryEscape(`SELECT auction, price FROM Bid WHERE price > 900`)
	mkEvent := func(ptime, auction, price, et int64) eventJSON {
		return eventJSON{Kind: "insert", Ptime: timeMS(ptime), Row: []any{auction, price, et}}
	}

	// --- process one ---
	_, ts1, restored := openServer(t, dir)
	if restored {
		t.Fatal("first boot claims to have restored a snapshot")
	}
	c1 := ts1.Client()
	registerBid(t, c1, ts1.URL)
	ingestBids(t, c1, ts1.URL, []eventJSON{
		mkEvent(1000, 1, 950, 1000),
		mkEvent(2000, 2, 800, 2000),
	})
	resp1, read1 := subscribeLines(t, c1, ts1.URL, "sql="+sql)
	defer resp1.Body.Close()
	if hdr := read1(); hdr["type"] != "schema" {
		t.Fatalf("first line = %v, want schema", hdr)
	}
	if got := deltaPrices(t, read1()); len(got) != 1 || got[0] != 950 {
		t.Fatalf("history delta prices = %v, want [950]", got)
	}
	// Snapshot NOW — everything after this exists only in the WAL.
	if code, body := postJSON(t, c1, ts1.URL+"/v1/checkpoint", struct{}{}); code != 200 {
		t.Fatalf("checkpoint: status %d body %v", code, body)
	}
	ingestBids(t, c1, ts1.URL, []eventJSON{mkEvent(3000, 3, 1200, 3000)})
	if got := deltaPrices(t, read1()); len(got) != 1 || got[0] != 1200 {
		t.Fatalf("live delta prices = %v, want [1200]", got)
	}
	if code, body := postJSON(t, c1, ts1.URL+"/v1/heartbeat", map[string]any{"ptime": 3500}); code != 200 {
		t.Fatalf("heartbeat: status %d body %v", code, body)
	}
	// Crash: connections drop, no final snapshot, no WAL close.
	resp1.Body.Close()
	ts1.CloseClientConnections()
	ts1.Close()

	// --- process two: snapshot + WAL tail ---
	_, ts2, restored2 := openServer(t, dir)
	defer ts2.Close()
	if !restored2 {
		t.Fatal("second boot found no snapshot")
	}
	c2 := ts2.Client()
	hcode, hz := getJSON(t, c2, ts2.URL+"/v1/healthz")
	if hcode != 200 || hz["liveSessions"].(float64) != 1 {
		t.Fatalf("healthz after recovery = %v, want 1 restored session", hz)
	}
	if hz["walEnabled"] != true || hz["walSeq"].(float64) <= 0 {
		t.Fatalf("healthz reports no WAL: %v", hz)
	}

	// The reconnecting subscriber must see BOTH matching rows: the
	// post-snapshot 1200 was replayed from the WAL tail, not rewound.
	resp2, read2 := subscribeLines(t, c2, ts2.URL, "sql="+sql)
	defer resp2.Body.Close()
	if hdr := read2(); hdr["type"] != "schema" {
		t.Fatalf("first line = %v, want schema", hdr)
	}
	snap := read2()
	if got := deltaPrices(t, snap); !reflect.DeepEqual(got, []int64{950, 1200}) {
		t.Fatalf("recovered snapshot prices = %v, want [950 1200] (post-snapshot ingest must survive)", got)
	}
	if _, hz := getJSON(t, c2, ts2.URL+"/v1/healthz"); hz["liveSessions"].(float64) != 1 {
		t.Fatalf("reconnect built a new pipeline: healthz = %v", hz)
	}

	// Byte-identical to a dedicated twin compiled fresh from the recovered
	// catalog.
	respTwin, readTwin := subscribeLines(t, c2, ts2.URL, "sql="+sql+"&exclusive=1")
	defer respTwin.Body.Close()
	if hdr := readTwin(); hdr["type"] != "schema" {
		t.Fatalf("twin first line = %v, want schema", hdr)
	}
	twinSnap := readTwin()
	if !reflect.DeepEqual(snap["rows"], twinSnap["rows"]) {
		t.Fatalf("recovered snapshot rows differ from twin:\n%v\n%v", snap["rows"], twinSnap["rows"])
	}

	// Live continuation, logged to the recovered WAL.
	ingestBids(t, c2, ts2.URL, []eventJSON{mkEvent(4000, 4, 1500, 4000)})
	if got := deltaPrices(t, read2()); len(got) != 1 || got[0] != 1500 {
		t.Fatalf("post-recovery live delta = %v, want [1500]", got)
	}
	if got := deltaPrices(t, readTwin()); len(got) != 1 || got[0] != 1500 {
		t.Fatalf("twin post-recovery delta = %v, want [1500]", got)
	}
}

// TestServeWALDoubleCrash: crash, recover, crash again immediately (no new
// snapshot in between), recover again — sequence numbers stay contiguous
// across the generations and nothing is lost or doubled.
func TestServeWALDoubleCrash(t *testing.T) {
	dir := t.TempDir()
	mkEvent := func(ptime, auction, price, et int64) eventJSON {
		return eventJSON{Kind: "insert", Ptime: timeMS(ptime), Row: []any{auction, price, et}}
	}
	_, ts1, _ := openServer(t, dir)
	c1 := ts1.Client()
	registerBid(t, c1, ts1.URL)
	ingestBids(t, c1, ts1.URL, []eventJSON{mkEvent(1000, 1, 100, 1000)})
	ts1.CloseClientConnections()
	ts1.Close()

	_, ts2, _ := openServer(t, dir)
	c2 := ts2.Client()
	ingestBids(t, c2, ts2.URL, []eventJSON{mkEvent(2000, 2, 200, 2000)})
	ts2.CloseClientConnections()
	ts2.Close()

	_, ts3, _ := openServer(t, dir)
	defer ts3.Close()
	c3 := ts3.Client()
	code, body := getJSON(t, c3, ts3.URL+"/v1/query?sql="+queryEscape(`SELECT COUNT(*) c FROM Bid`))
	if code != 200 {
		t.Fatalf("query: status %d body %v", code, body)
	}
	rows := body["rows"].([]any)
	if len(rows) != 1 || rows[0].([]any)[0].(float64) != 2 {
		t.Fatalf("after two crash/recover cycles COUNT(*) = %v, want 2", rows)
	}
}

// TestStaleCheckpointTempSweep: temp files abandoned by a crash inside
// WriteFileAtomic are removed at startup; unrelated files survive.
func TestStaleCheckpointTempSweep(t *testing.T) {
	dir := t.TempDir()
	stale1 := filepath.Join(dir, checkpointFileName+".tmp123456")
	stale2 := filepath.Join(dir, checkpointFileName+".tmp999")
	keep := filepath.Join(dir, "unrelated.txt")
	for _, p := range []string{stale1, stale2, keep} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	engine, walw, _, err := openEngine(0, 0, dir, "always", 0)
	if err != nil {
		t.Fatalf("openEngine: %v", err)
	}
	defer walw.Close()
	_ = engine
	for _, p := range []string{stale1, stale2} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("stale temp %s survived the sweep (err=%v)", p, err)
		}
	}
	if _, err := os.Stat(keep); err != nil {
		t.Fatalf("sweep removed an unrelated file: %v", err)
	}
}

// TestHealthzCheckpointFailures: repeated periodic-checkpoint failures are
// visible in /healthz (consecutive count + last error) and reset on the
// next success.
func TestHealthzCheckpointFailures(t *testing.T) {
	ts, c := newTestServer(t)
	srv := tsServer(t, ts)
	dir := t.TempDir()

	// Point the checkpoint at a path whose parent does not exist: every
	// attempt fails before writing anything.
	srv.EnableCheckpoint(filepath.Join(dir, "missing-subdir", checkpointFileName))
	for i := 0; i < 3; i++ {
		if _, err := srv.CheckpointNow(); err == nil {
			t.Fatal("checkpoint into a missing directory succeeded")
		}
	}
	_, hz := getJSON(t, c, ts.URL+"/v1/healthz")
	if hz["checkpointFailures"].(float64) != 3 {
		t.Fatalf("healthz checkpointFailures = %v, want 3", hz["checkpointFailures"])
	}
	msg, _ := hz["lastCheckpointError"].(string)
	if !strings.Contains(msg, "missing-subdir") {
		t.Fatalf("healthz lastCheckpointError = %q, want the failing path", msg)
	}

	// Recovery: the next success resets both.
	srv.EnableCheckpoint(filepath.Join(dir, checkpointFileName))
	if _, err := srv.CheckpointNow(); err != nil {
		t.Fatalf("checkpoint into a valid dir: %v", err)
	}
	_, hz = getJSON(t, c, ts.URL+"/v1/healthz")
	if hz["checkpointFailures"].(float64) != 0 {
		t.Fatalf("healthz checkpointFailures after success = %v, want 0", hz["checkpointFailures"])
	}
	if _, bad := hz["lastCheckpointError"]; bad {
		t.Fatalf("healthz still reports lastCheckpointError after success: %v", hz)
	}
}

// tsServer digs the *Server back out of a newTestServer handler.
func tsServer(t *testing.T, ts *httptest.Server) *Server {
	t.Helper()
	srv, ok := ts.Config.Handler.(*Server)
	if !ok {
		t.Fatalf("test server handler is %T, want *Server", ts.Config.Handler)
	}
	return srv
}
