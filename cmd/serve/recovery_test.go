package main

// Kill-and-restart integration test: a serving process with -data-dir takes
// a checkpoint while a standing query is live, "dies" (the httptest server
// closes, dropping every connection), and a new process restores from the
// data dir. The restored process must serve the standing query's resident
// pipeline to a reconnecting subscriber — snapshot hand-off first, identical
// bytes to a fresh dedicated subscription — without rescanning history, and
// continue delivering live deltas for newly ingested events.

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
)

// subscribeLines opens a standing query and returns a line reader.
func subscribeLines(t *testing.T, c *http.Client, base, params string) (*http.Response, func() map[string]any) {
	t.Helper()
	resp, err := c.Get(base + "/v1/subscribe?" + params)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe: status %d", resp.StatusCode)
	}
	lines := make(chan map[string]any, 64)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var m map[string]any
			if json.Unmarshal(sc.Bytes(), &m) == nil {
				lines <- m
			}
		}
	}()
	read := func() map[string]any {
		select {
		case m, ok := <-lines:
			if !ok {
				t.Fatal("subscription stream ended early")
				return nil
			}
			return m
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for a subscription line")
			return nil
		}
	}
	return resp, read
}

// TestServeKillAndRestart: checkpoint under live traffic, crash, restore,
// reconnect.
func TestServeKillAndRestart(t *testing.T) {
	dir := t.TempDir()
	ckptPath := filepath.Join(dir, checkpointFileName)
	sql := queryEscape(`SELECT auction, price FROM Bid WHERE price > 900`)

	// --- process one: serve, subscribe, ingest, checkpoint, die ---
	engine1 := core.NewEngine(core.WithUnboundedGroupBy())
	srv1 := NewServer(engine1)
	srv1.EnableCheckpoint(ckptPath)
	ts1 := httptest.NewServer(srv1)
	c1 := ts1.Client()
	registerBid(t, c1, ts1.URL)
	mkEvent := func(ptime, auction, price, et int64) eventJSON {
		return eventJSON{Kind: "insert", Ptime: timeMS(ptime), Row: []any{auction, price, et}}
	}
	ingestBids(t, c1, ts1.URL, []eventJSON{
		mkEvent(1000, 1, 950, 1000),
		mkEvent(2000, 2, 800, 2000),
	})
	resp1, read1 := subscribeLines(t, c1, ts1.URL, "sql="+sql)
	defer resp1.Body.Close()
	if hdr := read1(); hdr["type"] != "schema" {
		t.Fatalf("first line = %v, want schema", hdr)
	}
	if got := deltaPrices(t, read1()); len(got) != 1 || got[0] != 950 {
		t.Fatalf("history delta prices = %v, want [950]", got)
	}
	ingestBids(t, c1, ts1.URL, []eventJSON{mkEvent(3000, 3, 1200, 3000)})
	if got := deltaPrices(t, read1()); len(got) != 1 || got[0] != 1200 {
		t.Fatalf("live delta prices = %v, want [1200]", got)
	}
	// Checkpoint while the subscription is live and mid-stream.
	code, body := postJSON(t, c1, ts1.URL+"/v1/checkpoint", struct{}{})
	if code != http.StatusOK {
		t.Fatalf("checkpoint: status %d body %v", code, body)
	}
	if body["bytes"].(float64) <= 0 {
		t.Fatalf("checkpoint reported %v bytes", body["bytes"])
	}
	if _, err := os.Stat(ckptPath); err != nil {
		t.Fatalf("checkpoint file missing: %v", err)
	}
	// The process dies: every connection (including the subscription) drops.
	// Close the subscriber's side first so the chunked handler can exit
	// (httptest's Close waits for active handlers; a real crash would not).
	resp1.Body.Close()
	ts1.CloseClientConnections()
	ts1.Close()

	// --- process two: restore from the data dir ---
	engine2 := core.NewEngine(core.WithUnboundedGroupBy())
	if err := engine2.RestoreFile(ckptPath); err != nil {
		t.Fatalf("restore: %v", err)
	}
	srv2 := NewServer(engine2)
	srv2.EnableCheckpoint(ckptPath)
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	c2 := ts2.Client()

	// The standing query's resident pipeline survived the restart.
	hcode, hz := getJSON(t, c2, ts2.URL+"/v1/healthz")
	if hcode != http.StatusOK || hz["liveSessions"].(float64) != 1 {
		t.Fatalf("healthz after restore = %v, want 1 restored session", hz)
	}

	// A reconnecting subscriber attaches to the restored pipeline and gets
	// the snapshot hand-off: both matching rows, version numbers intact.
	resp2, read2 := subscribeLines(t, c2, ts2.URL, "sql="+sql)
	defer resp2.Body.Close()
	if hdr := read2(); hdr["type"] != "schema" {
		t.Fatalf("first line = %v, want schema", hdr)
	}
	snap := read2()
	if got := deltaPrices(t, snap); !reflect.DeepEqual(got, []int64{950, 1200}) {
		t.Fatalf("restored snapshot prices = %v, want [950 1200]", got)
	}
	// Still one resident session: the reconnect attached, it did not
	// recompile or replay history.
	if _, hz := getJSON(t, c2, ts2.URL+"/v1/healthz"); hz["liveSessions"].(float64) != 1 {
		t.Fatalf("reconnect built a new pipeline: healthz = %v", hz)
	}

	// The snapshot equals what a fresh dedicated subscription sees at the
	// same instant (the dedicated twin replays restored history instead).
	respTwin, readTwin := subscribeLines(t, c2, ts2.URL, "sql="+sql+"&exclusive=1")
	defer respTwin.Body.Close()
	if hdr := readTwin(); hdr["type"] != "schema" {
		t.Fatalf("twin first line = %v, want schema", hdr)
	}
	twinSnap := readTwin()
	if got, want := deltaPrices(t, twinSnap), deltaPrices(t, snap); !reflect.DeepEqual(got, want) {
		t.Fatalf("restored session snapshot %v differs from dedicated twin %v", want, got)
	}
	if !reflect.DeepEqual(snap["rows"], twinSnap["rows"]) {
		t.Fatalf("restored snapshot rows differ from twin:\n%v\n%v", snap["rows"], twinSnap["rows"])
	}

	// Live continuation on the restored pipeline.
	ingestBids(t, c2, ts2.URL, []eventJSON{mkEvent(4000, 4, 1500, 4000)})
	if got := deltaPrices(t, read2()); len(got) != 1 || got[0] != 1500 {
		t.Fatalf("post-restore live delta = %v, want [1500]", got)
	}
	if got := deltaPrices(t, readTwin()); len(got) != 1 || got[0] != 1500 {
		t.Fatalf("twin post-restore delta = %v, want [1500]", got)
	}
}

// TestServeCheckpointDisabled: without -data-dir the endpoint refuses.
func TestServeCheckpointDisabled(t *testing.T) {
	ts, c := newTestServer(t)
	code, body := postJSON(t, c, ts.URL+"/v1/checkpoint", struct{}{})
	if code != http.StatusConflict {
		t.Fatalf("checkpoint without data-dir: status %d body %v", code, body)
	}
}
