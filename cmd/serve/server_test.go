package main

// End-to-end tests for the HTTP front-end: register -> ingest -> subscribe
// -> receive deltas over the chunked ndjson stream, without recompiling the
// query per event, plus the one-shot query and stats endpoints.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/types"
)

func newTestServer(t *testing.T) (*httptest.Server, *http.Client) {
	t.Helper()
	ts := httptest.NewServer(NewServer(core.NewEngine()))
	t.Cleanup(ts.Close)
	return ts, ts.Client()
}

func postJSON(t *testing.T, c *http.Client, url string, body any) (int, map[string]any) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, out
}

func getJSON(t *testing.T, c *http.Client, url string) (int, map[string]any) {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, out
}

// registerBid registers the Bid stream used by all tests.
func registerBid(t *testing.T, c *http.Client, base string) {
	t.Helper()
	code, body := postJSON(t, c, base+"/v1/relations", registerJSON{
		Name: "Bid",
		Kind: "stream",
		Schema: []columnJSON{
			{Name: "auction", Type: "BIGINT"},
			{Name: "price", Type: "BIGINT"},
			{Name: "dateTime", Type: "TIMESTAMP", EventTime: true},
		},
	})
	if code != http.StatusCreated {
		t.Fatalf("register: status %d body %v", code, body)
	}
}

func ingestBids(t *testing.T, c *http.Client, base string, events []eventJSON) {
	t.Helper()
	code, body := postJSON(t, c, base+"/v1/relations/Bid/events", ingestJSON{Events: events})
	if code != http.StatusOK {
		t.Fatalf("ingest: status %d body %v", code, body)
	}
}

func timeMS(ms int64) types.Time { return types.Time(ms) }

// TestServeEndToEnd: the acceptance-path demo — register a relation, ingest
// history, open a standing subscription, ingest more events, and watch the
// deltas arrive on the chunked stream without per-event recompilation.
func TestServeEndToEnd(t *testing.T) {
	ts, c := newTestServer(t)
	registerBid(t, c, ts.URL)

	mkEvent := func(ptime, auction, price, et int64) eventJSON {
		return eventJSON{Kind: "insert", Ptime: timeMS(ptime), Row: []any{auction, price, et}}
	}
	// History before the subscription exists.
	ingestBids(t, c, ts.URL, []eventJSON{
		mkEvent(1000, 1, 500, 1000),
		mkEvent(2000, 2, 950, 2000),
	})

	// Open the standing query.
	req, err := http.NewRequest("GET",
		ts.URL+"/v1/subscribe?sql="+queryEscape(`SELECT auction, price FROM Bid WHERE price > 900`), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("subscribe content type = %q", ct)
	}
	lines := make(chan map[string]any, 16)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var m map[string]any
			if json.Unmarshal(sc.Bytes(), &m) == nil {
				lines <- m
			}
		}
	}()
	readLine := func() map[string]any {
		select {
		case m, ok := <-lines:
			if !ok {
				t.Fatal("subscription stream ended early")
			}
			return m
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for a subscription line")
			return nil
		}
	}

	// First line: the schema header.
	hdr := readLine()
	if hdr["type"] != "schema" {
		t.Fatalf("first line type = %v, want schema", hdr["type"])
	}
	// The history event with price 950 replays as the first delta.
	d := readLine()
	if d["type"] != "delta" {
		t.Fatalf("second line type = %v, want delta", d["type"])
	}
	if got := deltaPrices(t, d); len(got) != 1 || got[0] != 950 {
		t.Fatalf("history delta prices = %v, want [950]", got)
	}

	// Live events: one match, one filtered out, one match.
	ingestBids(t, c, ts.URL, []eventJSON{mkEvent(3000, 3, 1200, 3000)})
	ingestBids(t, c, ts.URL, []eventJSON{mkEvent(4000, 4, 100, 4000)})
	ingestBids(t, c, ts.URL, []eventJSON{mkEvent(5000, 5, 2000, 5000)})
	if got := deltaPrices(t, readLine()); len(got) != 1 || got[0] != 1200 {
		t.Fatalf("live delta 1 prices = %v, want [1200]", got)
	}
	if got := deltaPrices(t, readLine()); len(got) != 1 || got[0] != 2000 {
		t.Fatalf("live delta 2 prices = %v, want [2000]", got)
	}

	// Stats endpoint sees the subscription.
	code, stats := getJSON(t, c, ts.URL+"/v1/subscriptions")
	if code != http.StatusOK {
		t.Fatalf("subscriptions: status %d", code)
	}
	subs := stats["subscriptions"].([]any)
	if len(subs) != 1 {
		t.Fatalf("%d subscriptions listed, want 1", len(subs))
	}
	entry := subs[0].(map[string]any)
	if entry["deltasOut"].(float64) != 3 {
		t.Fatalf("deltasOut = %v, want 3", entry["deltasOut"])
	}
	// Batched execution: the standing pipeline reports its dispatch
	// counters, and a fed pipeline averages at least one event per dispatch.
	if entry["dispatches"].(float64) <= 0 {
		t.Fatalf("dispatches = %v, want > 0", entry["dispatches"])
	}
	if epd := entry["eventsPerDispatch"].(float64); epd < 1 {
		t.Fatalf("eventsPerDispatch = %v, want >= 1", epd)
	}
	id := int(entry["id"].(float64))

	// Cancel via the API: the stream ends.
	delReq, _ := http.NewRequest("DELETE", fmt.Sprintf("%s/v1/subscriptions/%d", ts.URL, id), nil)
	delResp, err := c.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	end := readLine()
	if end["type"] != "end" {
		t.Fatalf("end line = %v", end)
	}
	for range lines { // stream closes
	}
}

// TestServeQueryAndHealth: one-shot queries and liveness.
func TestServeQueryAndHealth(t *testing.T) {
	ts, c := newTestServer(t)
	registerBid(t, c, ts.URL)
	ingestBids(t, c, ts.URL, []eventJSON{
		{Kind: "insert", Ptime: timeMS(1000), Row: []any{1, 500, 1000}},
		{Kind: "insert", Ptime: timeMS(2000), Row: []any{1, 700, 2000}},
		{Kind: "watermark", Ptime: timeMS(3000), Wm: timeMS(2500)},
	})
	code, res := getJSON(t, c, ts.URL+"/v1/query?sql="+queryEscape(
		`SELECT auction, price FROM Bid WHERE price > 600`))
	if code != http.StatusOK {
		t.Fatalf("query: status %d body %v", code, res)
	}
	rows := res["rows"].([]any)
	if len(rows) != 1 {
		t.Fatalf("rows = %v, want one", rows)
	}
	row := rows[0].([]any)
	if row[0].(float64) != 1 || row[1].(float64) != 700 {
		t.Fatalf("row = %v, want [1 700]", row)
	}
	// Unknown SQL errors cleanly.
	code, res = getJSON(t, c, ts.URL+"/v1/query?sql="+queryEscape(`SELECT nope FROM Missing`))
	if code != http.StatusBadRequest || res["error"] == "" {
		t.Fatalf("bad query: status %d body %v", code, res)
	}
	code, res = getJSON(t, c, ts.URL+"/v1/healthz")
	if code != http.StatusOK || res["ok"] != true {
		t.Fatalf("healthz: status %d body %v", code, res)
	}
}

// TestServeIngestAtomicity: a batch with a mid-log error applies nothing.
func TestServeIngestAtomicity(t *testing.T) {
	ts, c := newTestServer(t)
	registerBid(t, c, ts.URL)
	code, _ := postJSON(t, c, ts.URL+"/v1/relations/Bid/events", ingestJSON{Events: []eventJSON{
		{Kind: "insert", Ptime: timeMS(2000), Row: []any{1, 500, 2000}},
		{Kind: "insert", Ptime: timeMS(1000), Row: []any{2, 600, 1000}}, // ptime regression
	}})
	if code != http.StatusConflict {
		t.Fatalf("status = %d, want conflict", code)
	}
	code, res := getJSON(t, c, ts.URL+"/v1/query?sql="+queryEscape(`SELECT auction FROM Bid`))
	if code != http.StatusOK {
		t.Fatalf("query: status %d", code)
	}
	if rows := res["rows"].([]any); len(rows) != 0 {
		t.Fatalf("rows after failed batch = %v, want none (atomicity)", rows)
	}
}

// TestServeSharedSubscriptions: two standing queries with the same SQL are
// served from one resident pipeline (same pipeline id, subscribers=2 in the
// listing), while exclusive=1 opts out; healthz distinguishes pipelines from
// subscribers.
func TestServeSharedSubscriptions(t *testing.T) {
	ts, c := newTestServer(t)
	registerBid(t, c, ts.URL)
	sql := queryEscape(`SELECT auction, price FROM Bid WHERE price > 900`)

	open := func(extra string) *http.Response {
		t.Helper()
		resp, err := c.Get(ts.URL + "/v1/subscribe?sql=" + sql + extra)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("subscribe: status %d", resp.StatusCode)
		}
		// Read the schema line so the subscription is fully established
		// before we inspect the listing.
		if sc := bufio.NewScanner(resp.Body); !sc.Scan() {
			t.Fatal("no schema line")
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	open("")
	open("")
	open("&exclusive=1")

	code, stats := getJSON(t, c, ts.URL+"/v1/subscriptions")
	if code != http.StatusOK {
		t.Fatalf("subscriptions: status %d", code)
	}
	entries := stats["subscriptions"].([]any)
	if len(entries) != 3 {
		t.Fatalf("%d subscriptions listed, want 3", len(entries))
	}
	byPipeline := map[int][]float64{}
	for _, e := range entries {
		m := e.(map[string]any)
		byPipeline[int(m["pipeline"].(float64))] = append(
			byPipeline[int(m["pipeline"].(float64))], m["subscribers"].(float64))
	}
	if len(byPipeline) != 2 {
		t.Fatalf("subscriptions span %d pipelines, want 2 (shared pair + exclusive): %v", len(byPipeline), byPipeline)
	}
	for id, subs := range byPipeline {
		want := float64(len(subs))
		for _, s := range subs {
			if s != want {
				t.Fatalf("pipeline %d reports %v subscribers, want %v", id, s, want)
			}
		}
	}
	code, hz := getJSON(t, c, ts.URL+"/v1/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	if hz["liveSessions"].(float64) != 2 || hz["liveSubscribers"].(float64) != 3 {
		t.Fatalf("healthz = %v, want 2 pipelines / 3 subscribers", hz)
	}
}

// TestServeSharded: the HTTP front-end over a sharded engine. Deltas still
// arrive (through the shard workers instead of the ingesting goroutine), the
// subscription listing reports each pipeline's shard placement plus the
// per-shard queue state, and /healthz exposes the shard count and stats. The
// serial server, by contrast, must omit the shard keys and report shard -1.
func TestServeSharded(t *testing.T) {
	engine := core.NewEngine(core.WithShards(4))
	t.Cleanup(engine.Close)
	ts := httptest.NewServer(NewServer(engine))
	t.Cleanup(ts.Close)
	c := ts.Client()
	registerBid(t, c, ts.URL)

	// Two distinct standing queries → two resident pipelines, each pinned to
	// its own (possibly equal) shard.
	resp1, read1 := subscribeLines(t, c, ts.URL,
		"sql="+queryEscape(`SELECT auction, price FROM Bid WHERE price > 900`))
	defer resp1.Body.Close()
	resp2, read2 := subscribeLines(t, c, ts.URL,
		"sql="+queryEscape(`SELECT auction, price FROM Bid WHERE price > 100`))
	defer resp2.Body.Close()
	if hdr := read1(); hdr["type"] != "schema" {
		t.Fatalf("sub1 first line = %v, want schema", hdr)
	}
	if hdr := read2(); hdr["type"] != "schema" {
		t.Fatalf("sub2 first line = %v, want schema", hdr)
	}

	ingestBids(t, c, ts.URL, []eventJSON{
		{Kind: "insert", Ptime: timeMS(1000), Row: []any{1, 950, 1000}},
	})
	if got := deltaPrices(t, read1()); len(got) != 1 || got[0] != 950 {
		t.Fatalf("sub1 delta prices = %v, want [950]", got)
	}
	if got := deltaPrices(t, read2()); len(got) != 1 || got[0] != 950 {
		t.Fatalf("sub2 delta prices = %v, want [950]", got)
	}

	code, stats := getJSON(t, c, ts.URL+"/v1/subscriptions")
	if code != http.StatusOK {
		t.Fatalf("subscriptions: status %d", code)
	}
	for _, e := range stats["subscriptions"].([]any) {
		m := e.(map[string]any)
		sh, ok := m["shard"].(float64)
		if !ok || sh < 0 || sh >= 4 {
			t.Fatalf("subscription shard = %v, want 0..3", m["shard"])
		}
	}
	shardsList, ok := stats["shards"].([]any)
	if !ok || len(shardsList) != 4 {
		t.Fatalf("subscriptions shards = %v, want 4 entries", stats["shards"])
	}
	for _, s := range shardsList {
		m := s.(map[string]any)
		for _, k := range []string{"shard", "depth", "lag", "lastSeq"} {
			if _, ok := m[k]; !ok {
				t.Fatalf("shard stat %v missing %q", m, k)
			}
		}
	}

	code, hz := getJSON(t, c, ts.URL+"/v1/healthz")
	if code != http.StatusOK || hz["ok"] != true {
		t.Fatalf("healthz: status %d body %v", code, hz)
	}
	if hz["shards"].(float64) != 4 {
		t.Fatalf("healthz shards = %v, want 4", hz["shards"])
	}
	if _, ok := hz["shardStats"].([]any); !ok {
		t.Fatalf("healthz shardStats = %v, want array", hz["shardStats"])
	}

	// Serial control: no shard keys, placement -1.
	ts2, c2 := newTestServer(t)
	registerBid(t, c2, ts2.URL)
	resp3, read3 := subscribeLines(t, c2, ts2.URL,
		"sql="+queryEscape(`SELECT auction FROM Bid`))
	defer resp3.Body.Close()
	if hdr := read3(); hdr["type"] != "schema" {
		t.Fatalf("serial sub first line = %v, want schema", hdr)
	}
	code, hz = getJSON(t, c2, ts2.URL+"/v1/healthz")
	if code != http.StatusOK {
		t.Fatalf("serial healthz: status %d", code)
	}
	if _, ok := hz["shards"]; ok {
		t.Fatalf("serial healthz reports shards: %v", hz)
	}
	code, stats = getJSON(t, c2, ts2.URL+"/v1/subscriptions")
	if code != http.StatusOK {
		t.Fatalf("serial subscriptions: status %d", code)
	}
	if _, ok := stats["shards"]; ok {
		t.Fatalf("serial subscriptions report shards: %v", stats)
	}
	if m := stats["subscriptions"].([]any)[0].(map[string]any); m["shard"].(float64) != -1 {
		t.Fatalf("serial subscription shard = %v, want -1", m["shard"])
	}
}

func deltaPrices(t *testing.T, d map[string]any) []int64 {
	t.Helper()
	rows, ok := d["rows"].([]any)
	if !ok {
		t.Fatalf("delta has no rows: %v", d)
	}
	var out []int64
	for _, r := range rows {
		row := r.(map[string]any)["row"].([]any)
		out = append(out, int64(row[1].(float64)))
	}
	return out
}

func queryEscape(s string) string {
	return strings.ReplaceAll(strings.ReplaceAll(s, " ", "+"), ">", "%3E")
}
