package main

// Server is the HTTP/JSON front-end over the streaming SQL engine: register
// relations, ingest changelog events, run one-shot queries, and open
// standing-query subscriptions whose deltas stream back over a chunked
// ndjson response. It exists so the engine can run as a long-lived process
// serving live traffic instead of a per-query batch tool.
//
// Standing queries share plans: concurrent subscriptions with the same
// (SQL, mode, effective partitions) are served from one resident pipeline,
// each over its own delivery cursor, so N identical subscribers cost one
// compilation and one incremental evaluation per ingested change. The
// /v1/subscriptions listing exposes the sharing: each entry reports the
// resident pipeline's id and how many subscribers are attached to it
// (entries sharing a pipeline report the same id). Pass exclusive=1 to
// /v1/subscribe to opt a subscription out of sharing.
//
// Endpoints:
//
//	POST /v1/relations                  register a stream or table
//	POST /v1/relations/{name}/events    append a changelog batch (atomic)
//	POST /v1/heartbeat                  advance processing time for EMIT AFTER DELAY
//	GET  /v1/query?sql=&at=&mode=       one-shot table or stream rendering
//	GET  /v1/subscribe?sql=&mode=&...   standing query; chunked ndjson deltas
//	GET  /v1/subscriptions              per-subscription stats + plan sharing
//	DELETE /v1/subscriptions/{id}       cancel a standing query
//	POST /v1/checkpoint                 force a durable checkpoint (needs -data-dir)
//	GET  /v1/healthz                    liveness + pipeline/subscriber/checkpoint state
//	GET  /metrics                       Prometheus text-format metrics (engine/WAL/checkpoint/shard/live/exec/commit families)
//	GET  /debug/pprof/...               net/http/pprof profiling (only with -pprof)
import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/tvr"
	"repro/internal/types"
)

// Server routes HTTP requests to one engine. It tracks the subscriptions it
// opened so they can be listed and canceled by id.
type Server struct {
	engine *core.Engine
	mux    *http.ServeMux

	mu     sync.Mutex
	nextID int
	subs   map[int]*subEntry

	// Durable checkpoint state (enabled by -data-dir). ckptMu serializes
	// checkpoint writes so the periodic ticker and the HTTP trigger cannot
	// interleave temp-file swaps.
	ckptPath string
	ckptMu   sync.Mutex
	lastCkpt struct {
		at    time.Time
		bytes int64
	}
	// Consecutive checkpoint failures and the latest failure, surfaced by
	// /healthz so repeated periodic-checkpoint failures are visible outside
	// the process log. Reset on the next success.
	ckptFails   int
	ckptLastErr error

	// walTrunc, when set, truncates the write-ahead log through a sequence
	// number after a snapshot covering it is durable.
	walTrunc func(seq uint64) error

	// reqTimeout bounds one-shot handlers (-request-timeout). Streaming
	// subscribe is exempt: its whole point is an unbounded response. Set
	// before serving; zero disables the wrapper.
	reqTimeout time.Duration
}

// ckptDegradeAfter is how many consecutive checkpoint failures flip the
// engine into degraded read-only mode. A disk that keeps refusing snapshots
// will not keep honoring WAL appends for long, and every failed snapshot
// means an ever-longer WAL tail to replay — refusing new ingest is the
// defined behavior, not an ever-growing durability debt.
const ckptDegradeAfter = 3

type subEntry struct {
	id   int
	sql  string
	mode string
	sub  *live.Subscription
}

// NewServer wraps the engine in the HTTP front-end.
func NewServer(e *core.Engine) *Server {
	s := &Server{engine: e, subs: make(map[int]*subEntry), mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/relations", s.timed(s.handleRegister))
	s.mux.HandleFunc("POST /v1/relations/{name}/events", s.timed(s.handleIngest))
	s.mux.HandleFunc("POST /v1/heartbeat", s.timed(s.handleHeartbeat))
	s.mux.HandleFunc("GET /v1/query", s.timed(s.handleQuery))
	s.mux.HandleFunc("GET /v1/subscribe", s.handleSubscribe) // streaming: never timed
	s.mux.HandleFunc("GET /v1/subscriptions", s.timed(s.handleSubscriptions))
	s.mux.HandleFunc("DELETE /v1/subscriptions/{id}", s.timed(s.handleUnsubscribe))
	s.mux.HandleFunc("POST /v1/checkpoint", s.timed(s.handleCheckpoint))
	s.mux.HandleFunc("GET /v1/healthz", s.timed(s.handleHealthz))
	// Metrics scrape: untimed (it is cheap and lock-light by design — see
	// internal/obs) and only mounted when the engine carries a registry.
	if reg := e.Obs(); reg != nil {
		s.mux.Handle("GET /metrics", reg.Handler())
	}
	return s
}

// EnablePprof mounts net/http/pprof under /debug/pprof/ (-pprof flag). Off
// by default: the profiling endpoints expose heap contents and should not be
// reachable on an open listener unless asked for.
func (s *Server) EnablePprof() {
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// SetRequestTimeout bounds every one-shot handler to d (-request-timeout):
// past the deadline the client gets a 503 and the handler's request context
// is canceled. The streaming subscribe endpoint is exempt. d <= 0 disables
// the bound. Call before serving traffic.
func (s *Server) SetRequestTimeout(d time.Duration) { s.reqTimeout = d }

// timed wraps a one-shot handler with the request deadline, consulted at
// request time so SetRequestTimeout works after route registration.
func (s *Server) timed(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		d := s.reqTimeout
		if d <= 0 {
			h(w, r)
			return
		}
		http.TimeoutHandler(h, d, `{"error":"request timed out"}`).ServeHTTP(w, r)
	}
}

// EnableCheckpoint turns on durable checkpointing to the given file path
// (inside -data-dir). CheckpointNow and POST /v1/checkpoint refuse until
// this is called.
func (s *Server) EnableCheckpoint(path string) { s.ckptPath = path }

// EnableWALTruncation registers the log-compaction hook: after each
// successful checkpoint, trunc is called with the WAL sequence number the
// snapshot covers through, so applied segments are reclaimed.
func (s *Server) EnableWALTruncation(trunc func(seq uint64) error) { s.walTrunc = trunc }

// CheckpointNow writes one durable checkpoint with the crash-safe atomic
// swap, returning its size, then truncates the write-ahead log through the
// snapshot's commit point (snapshots are the log's compaction). Safe to
// call concurrently with serving traffic: the engine snapshot runs under
// the live manager's ordering lock, and writes are serialized here.
// Failures are counted for /healthz; a truncation failure is logged there
// too but does not fail the call — the snapshot is durable, and an
// uncompacted log only costs disk until the next snapshot retries.
func (s *Server) CheckpointNow() (int64, error) {
	if s.ckptPath == "" {
		return 0, fmt.Errorf("checkpointing disabled: run with -data-dir")
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	n, seq, err := s.engine.CheckpointFile(s.ckptPath)
	if err != nil {
		s.mu.Lock()
		s.ckptFails++
		s.ckptLastErr = err
		fails := s.ckptFails
		s.mu.Unlock()
		// Persistent snapshot failure is a durability emergency: flip the
		// engine into degraded read-only mode so it refuses acks it may not
		// be able to honor, instead of growing an unbounded WAL tail.
		if fails >= ckptDegradeAfter {
			s.engine.EnterDegraded(fmt.Errorf("%d consecutive checkpoint failures, last: %w", fails, err))
		}
		return 0, err
	}
	var truncErr error
	if s.walTrunc != nil {
		truncErr = s.walTrunc(seq)
	}
	s.mu.Lock()
	s.lastCkpt.at = time.Now()
	s.lastCkpt.bytes = n
	s.ckptFails = 0
	s.ckptLastErr = truncErr // usually nil; kept visible without counting as a checkpoint failure
	s.mu.Unlock()
	// A successful snapshot is evidence the disk recovered; try to reopen
	// ingest. ClearDegraded proves writability with a durable WAL probe and
	// keeps the engine degraded if the log is still sick, so this is safe
	// to attempt unconditionally.
	if s.engine.Degraded() != nil {
		if err := s.engine.ClearDegraded(); err == nil {
			slog.Info("degraded mode cleared after successful checkpoint")
		}
	}
	return n, nil
}

// CancelSubscriptions ends every tracked standing query, releasing the
// chunked subscribe handlers so a graceful HTTP shutdown can drain. Call
// AFTER the final checkpoint: canceling a session's last cursor tears the
// resident pipeline down, and a torn-down pipeline has nothing left to
// checkpoint.
func (s *Server) CancelSubscriptions() {
	s.mu.Lock()
	entries := make([]*subEntry, 0, len(s.subs))
	for _, e := range s.subs {
		entries = append(entries, e)
	}
	s.mu.Unlock()
	for _, e := range entries {
		e.sub.Cancel()
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// ---- wire types ----

type columnJSON struct {
	Name string `json:"name"`
	Type string `json:"type"`
	// EventTime marks the column as watermarked event time (Extension 1).
	EventTime bool `json:"eventTime,omitempty"`
}

type registerJSON struct {
	Name string `json:"name"`
	// Kind is "stream" (unbounded) or "table" (bounded).
	Kind   string       `json:"kind"`
	Schema []columnJSON `json:"schema"`
}

type eventJSON struct {
	// Kind is "insert", "delete", or "watermark".
	Kind string `json:"kind"`
	// Ptime is the processing time in engine milliseconds.
	Ptime types.Time `json:"ptime"`
	// Row holds the column values for insert/delete.
	Row []any `json:"row,omitempty"`
	// Wm is the watermark value for watermark events.
	Wm types.Time `json:"wm,omitempty"`
}

type ingestJSON struct {
	Events []eventJSON `json:"events"`
}

type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorJSON{Error: err.Error()})
}

// writeCommitErr routes a failed commit-path request (register, ingest,
// heartbeat). A degraded engine is overload/fault shedding, not a client
// mistake: 503 with Retry-After tells well-behaved clients to back off and
// retry once the operator (or a successful checkpoint) clears the fault.
// Anything else keeps the handler's usual status.
func writeCommitErr(w http.ResponseWriter, fallback int, err error) {
	if errors.Is(err, core.ErrDegraded) {
		w.Header().Set("Retry-After", "5")
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	writeErr(w, fallback, err)
}

// parseKind maps a wire type name to a value kind.
func parseKind(s string) (types.Kind, error) {
	switch strings.ToUpper(s) {
	case "BOOLEAN", "BOOL":
		return types.KindBool, nil
	case "BIGINT", "INT", "INTEGER":
		return types.KindInt64, nil
	case "DOUBLE", "FLOAT":
		return types.KindFloat64, nil
	case "VARCHAR", "STRING", "TEXT":
		return types.KindString, nil
	case "TIMESTAMP":
		return types.KindTimestamp, nil
	case "INTERVAL":
		return types.KindInterval, nil
	default:
		return 0, fmt.Errorf("unknown column type %q", s)
	}
}

// asInt64 extracts an integral JSON value without the float64 round-trip
// that corrupts integers above 2^53 (ingest decodes with UseNumber, so
// numbers arrive as json.Number).
func asInt64(v any) (int64, bool) {
	switch n := v.(type) {
	case json.Number:
		i, err := n.Int64()
		return i, err == nil
	case float64:
		return int64(n), true
	default:
		return 0, false
	}
}

// decodeRow coerces JSON values into a typed row using the relation schema.
func decodeRow(vals []any, sch *types.Schema) (types.Row, error) {
	if len(vals) != sch.Len() {
		return nil, fmt.Errorf("row has %d values, schema has %d columns", len(vals), sch.Len())
	}
	row := make(types.Row, len(vals))
	for i, v := range vals {
		c := sch.Cols[i]
		if v == nil {
			row[i] = types.Null()
			continue
		}
		switch c.Kind {
		case types.KindBool:
			b, ok := v.(bool)
			if !ok {
				return nil, fmt.Errorf("column %s: expected boolean", c.Name)
			}
			row[i] = types.NewBool(b)
		case types.KindInt64:
			n, ok := asInt64(v)
			if !ok {
				return nil, fmt.Errorf("column %s: expected integer", c.Name)
			}
			row[i] = types.NewInt(n)
		case types.KindFloat64:
			var f float64
			switch n := v.(type) {
			case json.Number:
				parsed, err := n.Float64()
				if err != nil {
					return nil, fmt.Errorf("column %s: %w", c.Name, err)
				}
				f = parsed
			case float64:
				f = n
			default:
				return nil, fmt.Errorf("column %s: expected number", c.Name)
			}
			row[i] = types.NewFloat(f)
		case types.KindString:
			str, ok := v.(string)
			if !ok {
				return nil, fmt.Errorf("column %s: expected string", c.Name)
			}
			row[i] = types.NewString(str)
		case types.KindTimestamp:
			n, ok := asInt64(v)
			if !ok {
				return nil, fmt.Errorf("column %s: expected timestamp milliseconds", c.Name)
			}
			row[i] = types.NewTimestamp(types.Time(n))
		case types.KindInterval:
			n, ok := asInt64(v)
			if !ok {
				return nil, fmt.Errorf("column %s: expected interval milliseconds", c.Name)
			}
			row[i] = types.NewInterval(types.Duration(n))
		default:
			return nil, fmt.Errorf("column %s: unsupported kind", c.Name)
		}
	}
	return row, nil
}

// encodeRow renders a typed row as JSON scalars (timestamps and intervals as
// engine milliseconds).
func encodeRow(row types.Row) []any {
	out := make([]any, len(row))
	for i, v := range row {
		switch v.Kind() {
		case types.KindNull:
			out[i] = nil
		case types.KindBool:
			out[i] = v.Bool()
		case types.KindInt64:
			out[i] = v.Int()
		case types.KindFloat64:
			out[i] = v.Float()
		case types.KindString:
			out[i] = v.Str()
		case types.KindTimestamp:
			out[i] = int64(v.Timestamp())
		case types.KindInterval:
			out[i] = int64(v.Interval())
		}
	}
	return out
}

func encodeSchema(sch *types.Schema) []columnJSON {
	out := make([]columnJSON, sch.Len())
	for i, c := range sch.Cols {
		out[i] = columnJSON{Name: c.Name, Type: c.Kind.String(), EventTime: c.EventTime}
	}
	return out
}

// ---- handlers ----

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerJSON
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	cols := make([]types.Column, 0, len(req.Schema))
	for _, c := range req.Schema {
		k, err := parseKind(c.Type)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		cols = append(cols, types.Column{Name: c.Name, Kind: k, EventTime: c.EventTime})
	}
	sch := types.NewSchema(cols...)
	var err error
	switch strings.ToLower(req.Kind) {
	case "", "stream":
		err = s.engine.RegisterStream(req.Name, sch)
	case "table":
		err = s.engine.RegisterTable(req.Name, sch)
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("kind must be stream or table, got %q", req.Kind))
		return
	}
	if err != nil {
		writeCommitErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"name": req.Name, "kind": req.Kind})
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	rel, err := s.engine.Resolve(name)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	var req ingestJSON
	dec := json.NewDecoder(r.Body)
	dec.UseNumber() // preserve full BIGINT precision (no float64 round-trip)
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	log := make(tvr.Changelog, 0, len(req.Events))
	for i, ev := range req.Events {
		switch strings.ToLower(ev.Kind) {
		case "insert", "delete":
			row, err := decodeRow(ev.Row, rel.Schema)
			if err != nil {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("event %d: %w", i, err))
				return
			}
			if strings.ToLower(ev.Kind) == "insert" {
				log = append(log, tvr.InsertEvent(ev.Ptime, row))
			} else {
				log = append(log, tvr.DeleteEvent(ev.Ptime, row))
			}
		case "watermark":
			log = append(log, tvr.WatermarkEvent(ev.Ptime, ev.Wm))
		default:
			writeErr(w, http.StatusBadRequest, fmt.Errorf("event %d: unknown kind %q", i, ev.Kind))
			return
		}
	}
	// AppendLog validates and applies the whole batch atomically and
	// routes it to standing queries in commit order.
	if err := s.engine.AppendLog(name, log); err != nil {
		writeCommitErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"appended": len(log)})
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Ptime types.Time `json:"ptime"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.engine.Heartbeat(req.Ptime); err != nil {
		// Only a write-ahead-log append (or degraded mode) can fail here;
		// the heartbeat was suppressed, so refusing keeps ack == durable.
		writeCommitErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ptime": req.Ptime})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	sql := r.URL.Query().Get("sql")
	if sql == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing sql parameter"))
		return
	}
	at := types.MaxTime
	if v := r.URL.Query().Get("at"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad at parameter: %w", err))
			return
		}
		at = types.Time(n)
	}
	parts := 1
	if v := r.URL.Query().Get("parts"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad parts parameter: %w", err))
			return
		}
		parts = n
	}
	switch r.URL.Query().Get("mode") {
	case "", "table":
		var res *core.TableResult
		var err error
		if parts > 1 {
			res, err = s.engine.QueryTableParallel(sql, at, parts)
		} else {
			res, err = s.engine.QueryTable(sql, at)
		}
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		rows := make([][]any, len(res.Rows))
		for i, row := range res.Rows {
			rows[i] = encodeRow(row)
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"schema": encodeSchema(res.Schema), "rows": rows,
			"partitions": res.Stats.Partitions,
		})
	case "stream":
		var res *core.StreamResult
		var err error
		if parts > 1 {
			res, err = s.engine.QueryStreamAtParallel(sql, at, parts)
		} else {
			res, err = s.engine.QueryStreamAt(sql, at)
		}
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		rows := make([]map[string]any, len(res.Rows))
		for i, sr := range res.Rows {
			rows[i] = encodeStreamRow(sr)
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"schema": encodeSchema(res.Schema), "rows": rows,
			"partitions": res.Stats.Partitions,
		})
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("mode must be table or stream"))
	}
}

func encodeStreamRow(sr tvr.StreamRow) map[string]any {
	return map[string]any{
		"row": encodeRow(sr.Row), "undo": sr.Undo,
		"ptime": int64(sr.Ptime), "ver": sr.Ver,
	}
}

func encodeDelta(d live.Delta) map[string]any {
	out := map[string]any{"type": "delta", "watermark": int64(d.Watermark)}
	if d.Table != nil {
		ins := make([][]any, len(d.Table.Inserted))
		for i, r := range d.Table.Inserted {
			ins[i] = encodeRow(r)
		}
		del := make([][]any, len(d.Table.Deleted))
		for i, r := range d.Table.Deleted {
			del[i] = encodeRow(r)
		}
		out["ptime"] = int64(d.Table.Ptime)
		out["inserted"] = ins
		out["deleted"] = del
		return out
	}
	rows := make([]map[string]any, len(d.Stream))
	for i, sr := range d.Stream {
		rows[i] = encodeStreamRow(sr)
	}
	out["rows"] = rows
	return out
}

// handleSubscribe opens a standing query and streams its deltas as ndjson
// over a chunked response: first a schema line, then one line per delta,
// then an end line when the subscription terminates. Client disconnect
// cancels the standing query.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	sql := q.Get("sql")
	if sql == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing sql parameter"))
		return
	}
	opts := core.SubscribeOptions{}
	if v := q.Get("parts"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad parts parameter: %w", err))
			return
		}
		opts.Parts = n
	}
	if v := q.Get("buffer"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad buffer parameter: %w", err))
			return
		}
		opts.Buffer = n
	}
	if v := q.Get("retain"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad retain parameter: %w", err))
			return
		}
		opts.MaxRetainedRows = n
	}
	switch q.Get("policy") {
	case "", "block":
		opts.Policy = live.Block
	case "drop":
		opts.Policy = live.DropWithError
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("policy must be block or drop"))
		return
	}
	switch q.Get("exclusive") {
	case "", "0", "false":
	case "1", "true":
		opts.Exclusive = true
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("exclusive must be 0 or 1"))
		return
	}
	mode := q.Get("mode")
	var sub *live.Subscription
	var err error
	switch mode {
	case "", "stream":
		mode = "stream"
		sub, err = s.engine.SubscribeStream(sql, opts)
	case "table":
		sub, err = s.engine.SubscribeTable(sql, opts)
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("mode must be table or stream"))
		return
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	entry := s.track(sql, mode, sub)
	defer s.untrack(entry.id)
	defer sub.Cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	writeLine := func(v any) bool {
		if err := enc.Encode(v); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	if !writeLine(map[string]any{
		"type": "schema", "id": entry.id, "mode": mode,
		"columns": encodeSchema(sub.Schema()),
	}) {
		return
	}
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case d, ok := <-sub.Deltas():
			if !ok {
				end := map[string]any{"type": "end"}
				if err := sub.Err(); err != nil {
					end["error"] = err.Error()
				}
				writeLine(end)
				return
			}
			if !writeLine(encodeDelta(d)) {
				return
			}
		}
	}
}

func (s *Server) track(sql, mode string, sub *live.Subscription) *subEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextID
	s.nextID++
	e := &subEntry{id: id, sql: sql, mode: mode, sub: sub}
	s.subs[id] = e
	return e
}

func (s *Server) untrack(id int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.subs, id)
}

func (s *Server) handleSubscriptions(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	entries := make([]*subEntry, 0, len(s.subs))
	for _, e := range s.subs {
		entries = append(entries, e)
	}
	s.mu.Unlock()
	out := make([]map[string]any, 0, len(entries))
	for _, e := range entries {
		st := e.sub.Stats()
		out = append(out, map[string]any{
			"id": e.id, "sql": e.sql, "mode": e.mode,
			"eventsIn": st.EventsIn, "deltasOut": st.DeltasOut,
			"rowsOut": st.RowsOut, "watermark": int64(st.Watermark),
			"queueDepth": st.QueueDepth, "partitions": st.Partitions,
			// Plan sharing: subscriptions served from the same resident
			// pipeline report the same pipeline id and the count of
			// subscribers attached to it.
			"pipeline": st.PipelineID, "subscribers": st.Subscribers,
			// Shard placement: which shard worker applies this pipeline's
			// deliveries, or -1 under the serial fan-out.
			"shard": st.Shard,
			// Batching efficiency: mean source events carried per
			// operator-chain dispatch (1.0 = pure per-event delivery).
			"dispatches": st.Dispatches, "eventsPerDispatch": st.EventsPerDispatch,
		})
	}
	resp := map[string]any{"subscriptions": out}
	// Per-shard ingest queue state (depth = commits waiting, lag = enqueued
	// minus applied), present only when running with -shards.
	if stats := s.engine.ShardStats(); stats != nil {
		resp["shards"] = stats
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleUnsubscribe(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	e, ok := s.subs[id]
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no subscription %d", id))
		return
	}
	e.sub.Cancel()
	writeJSON(w, http.StatusOK, map[string]any{"canceled": id})
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	n, err := s.CheckpointNow()
	if err != nil {
		code := http.StatusInternalServerError
		if s.ckptPath == "" {
			code = http.StatusConflict
		}
		writeErr(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"path": s.ckptPath, "bytes": n})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	out := map[string]any{
		"ok": true, "liveSessions": s.engine.LiveSessions(),
		"liveSubscribers": s.engine.LiveSubscribers(),
		"checkpointing":   s.ckptPath != "",
	}
	// Degraded read-only mode: the process is alive (ok stays true — reads
	// and standing queries keep serving) but ingest is refused until the
	// durability fault clears. status + cause let an operator see why every
	// write is bouncing with 503 without grepping logs.
	if derr := s.engine.Degraded(); derr != nil {
		out["status"] = "degraded"
		out["degraded"] = true
		out["degradedCause"] = derr.Error()
	} else {
		out["status"] = "ok"
		out["degraded"] = false
	}
	// Sharded fan-out health: per-shard queue depth and apply lag, read
	// lock-free so the probe stays responsive while a shard is parked on a
	// stalled Block-policy subscriber.
	if stats := s.engine.ShardStats(); stats != nil {
		out["shards"] = len(stats)
		out["shardStats"] = stats
	}
	if s.walTrunc != nil {
		out["walEnabled"] = true
		out["walSeq"] = s.engine.WALSeq()
	}
	s.mu.Lock()
	if !s.lastCkpt.at.IsZero() {
		out["lastCheckpoint"] = s.lastCkpt.at.UTC().Format(time.RFC3339)
		out["lastCheckpointBytes"] = s.lastCkpt.bytes
	}
	out["checkpointFailures"] = s.ckptFails
	if s.ckptLastErr != nil {
		out["lastCheckpointError"] = s.ckptLastErr.Error()
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}
