// Command benchdiff compares two benchmark records — typically the committed
// baseline and a fresh run at the same scale — and prints per-entry
// throughput deltas, so a perf regression is visible as one table in a PR.
// It understands both record shapes the harness emits: NEXMark one-shot
// records (BENCH_nexmark*.json, per-query serial-vs-partitioned speedups)
// and standing-query records (BENCH_live*.json, per-subscription ingest
// throughput and delta latency, including the K-subscriber shared-plan
// fan-out rows). `make bench-diff` and CI wire it like for like: fresh short
// runs against the committed short-mode baselines.
//
// Usage:
//
//	benchdiff OLD.json NEW.json
//
// Exit status is 0 even when throughput regressed: environment stamps
// (cores, load) still differ between runs, so judging is left to the reader;
// a scale/environment mismatch between the two records is called out in the
// header.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

// record is the union of the on-disk shapes: NEXMark records populate
// Queries; live records populate Subscriptions and/or Recovery.
type record struct {
	Benchmark     string                 `json:"benchmark"`
	Timestamp     string                 `json:"timestamp"`
	GoMaxProcs    int                    `json:"gomaxprocs"`
	ShortMode     bool                   `json:"short_mode"`
	Queries       []bench.QueryResult    `json:"queries"`
	Subscriptions []bench.LiveResult     `json:"subscriptions"`
	Recovery      []bench.RecoveryResult `json:"recovery"`
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintf(os.Stderr, "usage: %s OLD.json NEW.json\n", os.Args[0])
		os.Exit(2)
	}
	oldRec, err := load(os.Args[1])
	if err != nil {
		fatal(err)
	}
	newRec, err := load(os.Args[2])
	if err != nil {
		fatal(err)
	}
	header(os.Stdout, oldRec, newRec)
	switch {
	case len(newRec.Subscriptions) > 0 || len(oldRec.Subscriptions) > 0 ||
		len(newRec.Recovery) > 0 || len(oldRec.Recovery) > 0:
		if len(newRec.Subscriptions) > 0 || len(oldRec.Subscriptions) > 0 {
			diffLive(os.Stdout, oldRec, newRec)
		}
		if len(newRec.Recovery) > 0 || len(oldRec.Recovery) > 0 {
			diffRecovery(os.Stdout, oldRec, newRec)
		}
	default:
		diffQueries(os.Stdout, oldRec, newRec)
	}
}

func load(path string) (*record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rec, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}

func header(w *os.File, oldRec, newRec *record) {
	fmt.Fprintf(w, "baseline: %s %s (%d entries, gomaxprocs=%d, short=%v)\n",
		oldRec.Benchmark, oldRec.Timestamp, len(oldRec.Queries)+len(oldRec.Subscriptions),
		oldRec.GoMaxProcs, oldRec.ShortMode)
	fmt.Fprintf(w, "fresh:    %s %s (%d entries, gomaxprocs=%d, short=%v)\n\n",
		newRec.Benchmark, newRec.Timestamp, len(newRec.Queries)+len(newRec.Subscriptions),
		newRec.GoMaxProcs, newRec.ShortMode)
	if oldRec.ShortMode != newRec.ShortMode || oldRec.GoMaxProcs != newRec.GoMaxProcs {
		fmt.Fprintf(w, "note: environments differ; deltas are indicative only\n\n")
	}
}

// queryKey identifies a query across records (IDs repeat only for ad-hoc -1
// entries, which are disambiguated by name).
func queryKey(q bench.QueryResult) string { return fmt.Sprintf("%d/%s", q.ID, q.Name) }

// diffQueries prints two deltas per query: the serial-throughput delta (the
// single-core hot-path number the batching work moves) and the speedup delta
// (parallel scaling relative to that serial base — a serial win can legally
// shrink the speedup ratio while every absolute number improves).
func diffQueries(w *os.File, oldRec, newRec *record) {
	byKey := make(map[string]bench.QueryResult, len(oldRec.Queries))
	for _, q := range oldRec.Queries {
		byKey[queryKey(q)] = q
	}
	fmt.Fprintf(w, "%-44s %14s %12s %8s %14s %9s %9s %8s\n",
		"query", "serial ev/s", "baseline", "delta", "parallel ev/s", "speedup", "baseline", "delta")
	for _, nq := range newRec.Queries {
		oq, ok := byKey[queryKey(nq)]
		if !ok {
			fmt.Fprintf(w, "%-44.44s %14.0f %12s %8s %14.0f %8.2fx %9s %8s\n",
				nq.Name, nq.SerialEventsPerSec, "(new)", "", nq.ParallelEventsPerSec, nq.Speedup, "", "")
			continue
		}
		delete(byKey, queryKey(nq))
		fmt.Fprintf(w, "%-44.44s %14.0f %12.0f %+7.1f%% %14.0f %8.2fx %8.2fx %+7.1f%%\n",
			nq.Name, nq.SerialEventsPerSec, oq.SerialEventsPerSec, pct(nq.SerialEventsPerSec, oq.SerialEventsPerSec),
			nq.ParallelEventsPerSec, nq.Speedup, oq.Speedup, pct(nq.Speedup, oq.Speedup))
	}
	for _, oq := range oldRec.Queries {
		if _, gone := byKey[queryKey(oq)]; gone {
			fmt.Fprintf(w, "%-44.44s %14s %12.0f %8s %14s %9s %8.2fx (removed)\n",
				oq.Name, "-", oq.SerialEventsPerSec, "", "-", "-", oq.Speedup)
		}
	}
}

// liveKey identifies a standing-query scenario across records: the same
// query measured at a different mode, parallelism, fan-out width, sharing
// posture, shard count, query count, or pinned GOMAXPROCS is a different
// row. The shard/query/proc fields are zero for pre-sharding records, so
// old baselines keep matching.
func liveKey(q bench.LiveResult) string {
	return fmt.Sprintf("%s/%s/p%d/k%d/shared=%v/sh%d/q%d/procs%d",
		q.Query, q.Mode, q.Partitions, q.Subscribers, q.Shared, q.Shards, q.Queries, q.Procs)
}

func diffLive(w *os.File, oldRec, newRec *record) {
	byKey := make(map[string]bench.LiveResult, len(oldRec.Subscriptions))
	for _, q := range oldRec.Subscriptions {
		byKey[liveKey(q)] = q
	}
	fmt.Fprintf(w, "%-40s %-6s %3s %3s %7s %3s %5s %12s %10s %10s %12s %8s\n",
		"subscription", "mode", "p", "k", "shared", "sh", "procs", "ingest ev/s", "p50", "p99", "baseline", "delta")
	for _, nq := range newRec.Subscriptions {
		line := fmt.Sprintf("%-40.40s %-6s %3d %3d %7v %3d %5d %12.0f %10s %10s",
			nq.Query, nq.Mode, nq.Partitions, nq.Subscribers, nq.Shared, nq.Shards, nq.Procs, nq.EventsPerSec,
			time.Duration(nq.LatencyP50Ns), time.Duration(nq.LatencyP99Ns))
		oq, ok := byKey[liveKey(nq)]
		if !ok {
			fmt.Fprintf(w, "%s %12s %8s\n", line, "(new)", "")
			continue
		}
		delete(byKey, liveKey(nq))
		fmt.Fprintf(w, "%s %12.0f %+7.1f%%\n", line, oq.EventsPerSec, pct(nq.EventsPerSec, oq.EventsPerSec))
	}
	for _, oq := range oldRec.Subscriptions {
		if _, gone := byKey[liveKey(oq)]; gone {
			fmt.Fprintf(w, "%-40.40s %-6s %3d %3d %7v %3d %5d %12s (removed, was %.0f ev/s)\n",
				oq.Query, oq.Mode, oq.Partitions, oq.Subscribers, oq.Shared, oq.Shards, oq.Procs, "-", oq.EventsPerSec)
		}
	}
}

// recoveryKey identifies a checkpoint/restore (or steady-state durability)
// scenario across records. Durability rows repeat one query at several
// history sizes, so the event count joins the key.
func recoveryKey(q bench.RecoveryResult) string {
	return fmt.Sprintf("%s/%s/p%d/e%d", q.Query, q.Mode, q.Partitions, q.Events)
}

// diffRecovery prints the checkpoint-size and restore-vs-replay deltas from
// the Recovery section of live records (`make bench-recovery`), then the
// steady-state durability rows (fixed WAL delta vs full snapshot, keyed by
// history size) when either record carries them.
func diffRecovery(w *os.File, oldRec, newRec *record) {
	byKey := make(map[string]bench.RecoveryResult, len(oldRec.Recovery))
	for _, q := range oldRec.Recovery {
		byKey[recoveryKey(q)] = q
	}
	fmt.Fprintf(w, "\n%-40s %3s %10s %10s %10s %9s %9s %8s\n",
		"recovery", "p", "ckpt KiB", "restore", "replay", "speedup", "baseline", "delta")
	for _, nq := range newRec.Recovery {
		if nq.DeltaEvents > 0 {
			continue // durability rows get their own table below
		}
		line := fmt.Sprintf("%-40.40s %3d %10.1f %10s %10s %8.2fx",
			nq.Query, nq.Partitions, float64(nq.CheckpointBytes)/1024,
			time.Duration(nq.RestoreNs), time.Duration(nq.ReplayNs), nq.Speedup)
		oq, ok := byKey[recoveryKey(nq)]
		if !ok {
			fmt.Fprintf(w, "%s %9s %8s\n", line, "(new)", "")
			continue
		}
		delete(byKey, recoveryKey(nq))
		fmt.Fprintf(w, "%s %8.2fx %+7.1f%%\n", line, oq.Speedup, pct(nq.Speedup, oq.Speedup))
	}
	for _, oq := range oldRec.Recovery {
		if oq.DeltaEvents > 0 {
			continue
		}
		if _, gone := byKey[recoveryKey(oq)]; gone {
			fmt.Fprintf(w, "%-40.40s %3d %10s %10s %10s %9s (removed, was %.2fx)\n",
				oq.Query, oq.Partitions, "-", "-", "-", "-", oq.Speedup)
		}
	}
	diffDurability(w, oldRec, newRec, byKey)
}

// diffDurability prints the steady-state durability rows: the WAL bytes and
// fsyncs one fixed delta cost at each history size, next to the full-snapshot
// alternative. The baseline comparison tracks the WAL interval bytes — the
// number that must stay flat as history grows.
func diffDurability(w *os.File, oldRec, newRec *record, byKey map[string]bench.RecoveryResult) {
	any := false
	for _, q := range newRec.Recovery {
		any = any || q.DeltaEvents > 0
	}
	for _, q := range oldRec.Recovery {
		any = any || q.DeltaEvents > 0
	}
	if !any {
		return
	}
	fmt.Fprintf(w, "\n%-40s %9s %7s %9s %6s %10s %9s %8s\n",
		"durability (per-delta cost)", "history", "delta", "wal KiB", "syncs", "snap KiB", "baseline", "delta")
	for _, nq := range newRec.Recovery {
		if nq.DeltaEvents == 0 {
			continue
		}
		line := fmt.Sprintf("%-40.40s %9d %7d %9.1f %6d %10.1f",
			nq.Query, nq.Events, nq.DeltaEvents, float64(nq.WalIntervalBytes)/1024,
			nq.WalIntervalSyncs, float64(nq.CheckpointBytes)/1024)
		oq, ok := byKey[recoveryKey(nq)]
		if !ok {
			fmt.Fprintf(w, "%s %9s %8s\n", line, "(new)", "")
			continue
		}
		delete(byKey, recoveryKey(nq))
		fmt.Fprintf(w, "%s %8.1fK %+7.1f%%\n", line, float64(oq.WalIntervalBytes)/1024,
			pct(float64(nq.WalIntervalBytes), float64(oq.WalIntervalBytes)))
	}
	for _, oq := range oldRec.Recovery {
		if oq.DeltaEvents == 0 {
			continue
		}
		if _, gone := byKey[recoveryKey(oq)]; gone {
			fmt.Fprintf(w, "%-40.40s %9d %7d %9s %6s %10s (removed, was %.1f KiB)\n",
				oq.Query, oq.Events, oq.DeltaEvents, "-", "-", "-", float64(oq.WalIntervalBytes)/1024)
		}
	}
}

func pct(now, was float64) float64 {
	if was == 0 {
		return 0
	}
	return (now/was - 1) * 100
}
