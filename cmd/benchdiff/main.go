// Command benchdiff compares two NEXMark benchmark records — typically the
// committed baseline and a fresh run at the same scale — and prints
// per-query throughput and speedup deltas, so a perf regression is visible
// as one table in a PR. `make bench-diff` and CI wire it like for like:
// a fresh short run against the committed BENCH_nexmark_short.json.
//
// Usage:
//
//	benchdiff OLD.json NEW.json
//
// Exit status is 0 even when throughput regressed: environment stamps
// (cores, load) still differ between runs, so judging is left to the reader;
// a scale/environment mismatch between the two records is called out in the
// header.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintf(os.Stderr, "usage: %s OLD.json NEW.json\n", os.Args[0])
		os.Exit(2)
	}
	oldRec, err := load(os.Args[1])
	if err != nil {
		fatal(err)
	}
	newRec, err := load(os.Args[2])
	if err != nil {
		fatal(err)
	}
	diff(os.Stdout, oldRec, newRec)
}

func load(path string) (*bench.Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec bench.Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rec, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}

// key identifies a query across records (IDs repeat only for ad-hoc -1
// entries, which are disambiguated by name).
func key(q bench.QueryResult) string { return fmt.Sprintf("%d/%s", q.ID, q.Name) }

func diff(w *os.File, oldRec, newRec *bench.Record) {
	fmt.Fprintf(w, "baseline: %s (%d queries, gomaxprocs=%d, short=%v)\n",
		oldRec.Timestamp, len(oldRec.Queries), oldRec.GoMaxProcs, oldRec.ShortMode)
	fmt.Fprintf(w, "fresh:    %s (%d queries, gomaxprocs=%d, short=%v)\n\n",
		newRec.Timestamp, len(newRec.Queries), newRec.GoMaxProcs, newRec.ShortMode)
	if oldRec.ShortMode != newRec.ShortMode || oldRec.GoMaxProcs != newRec.GoMaxProcs {
		fmt.Fprintf(w, "note: environments differ; deltas are indicative only\n\n")
	}

	byKey := make(map[string]bench.QueryResult, len(oldRec.Queries))
	for _, q := range oldRec.Queries {
		byKey[key(q)] = q
	}
	fmt.Fprintf(w, "%-44s %14s %14s %9s %9s %8s\n",
		"query", "serial ev/s", "parallel ev/s", "speedup", "baseline", "delta")
	for _, nq := range newRec.Queries {
		oq, ok := byKey[key(nq)]
		line := fmt.Sprintf("%-44.44s %14.0f %14.0f %8.2fx", nq.Name, nq.SerialEventsPerSec, nq.ParallelEventsPerSec, nq.Speedup)
		if !ok {
			fmt.Fprintf(w, "%s %9s %8s\n", line, "(new)", "")
			continue
		}
		delete(byKey, key(nq))
		fmt.Fprintf(w, "%s %8.2fx %+7.1f%%\n", line, oq.Speedup, pct(nq.Speedup, oq.Speedup))
	}
	for _, oq := range oldRec.Queries {
		if _, gone := byKey[key(oq)]; gone {
			fmt.Fprintf(w, "%-44.44s %14s %14s %9s %8.2fx (removed)\n", oq.Name, "-", "-", "-", oq.Speedup)
		}
	}
}

func pct(now, was float64) float64 {
	if was == 0 {
		return 0
	}
	return (now/was - 1) * 100
}
