// Command nexmark runs the NEXMark benchmark queries against the streaming
// SQL engine from the terminal: generate a deterministic dataset, execute a
// query on the serial or key-partitioned parallel executor (or both, with an
// equivalence check), and print the result table, the routing scheme, and
// throughput.
//
// Examples:
//
//	go run ./cmd/nexmark -query 7                 # Q7 on the serial engine
//	go run ./cmd/nexmark -query 3 -parts 4        # Q3 partitioned 4 ways
//	go run ./cmd/nexmark -query 5 -parts 4 -both  # serial vs parallel + diff
//	go run ./cmd/nexmark -query 2 -explain        # plan + partitioning only
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/nexmark"
	"repro/internal/types"
)

func main() {
	os.Exit(cliMain(os.Args[1:], os.Stdout, os.Stderr))
}

// cliMain is the testable entry point: it parses args, runs the query, and
// returns the process exit code (0 ok, 1 run error, 2 flag error).
func cliMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nexmark", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		queryID = fs.Int("query", 7, "NEXMark query number (0-8)")
		events  = fs.Int("events", 5000, "number of generated input events")
		seed    = fs.Int64("seed", 42, "generator seed")
		parts   = fs.Int("parts", 1, "partitions (>1 enables the parallel executor)")
		both    = fs.Bool("both", false, "run serial AND partitioned, verify identical output")
		explain = fs.Bool("explain", false, "print the optimized plan and partitioning, don't execute")
		rows    = fs.Int("rows", 10, "result rows to print (0 = all)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if err := run(stdout, *queryID, *events, *seed, *parts, *both, *explain, *rows); err != nil {
		fmt.Fprintln(stderr, "nexmark:", err)
		return 1
	}
	return 0
}

func run(out io.Writer, queryID, events int, seed int64, parts int, both, explain bool, maxRows int) error {
	q, err := nexmark.QueryByID(queryID)
	if err != nil {
		return err
	}
	g := nexmark.Generate(nexmark.GeneratorConfig{
		Seed: seed, NumEvents: events, MaxOutOfOrderness: 2 * types.Second,
	})
	var opts []core.Option
	if q.NeedsUnboundedGroupBy {
		opts = append(opts, core.WithUnboundedGroupBy())
	}
	e, err := nexmark.NewEngine(g, opts...)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "Q%d: %s  (%d persons, %d auctions, %d bids)\n",
		q.ID, q.Name, g.NumPersons, g.NumAuctions, g.NumBids)

	part, err := e.ExplainPartitioning(q.SQL)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "partitioning: %s\n", part)
	if explain {
		plan, err := e.Explain(q.SQL)
		if err != nil {
			return err
		}
		fmt.Fprint(out, plan)
		return nil
	}

	query := func(p int) (*core.TableResult, time.Duration, error) {
		start := time.Now()
		var res *core.TableResult
		var err error
		if p > 1 {
			res, err = e.QueryTableParallel(q.SQL, types.MaxTime, p)
		} else {
			res, err = e.QueryTable(q.SQL, types.MaxTime)
		}
		return res, time.Since(start), err
	}

	if both {
		if parts < 2 {
			parts = 4
		}
		serial, sd, err := query(1)
		if err != nil {
			return err
		}
		parallel, pd, err := query(parts)
		if err != nil {
			return err
		}
		if s, p := serial.Format(), parallel.Format(); s != p {
			return fmt.Errorf("serial and partitioned results DIFFER:\nserial:\n%s\npartitioned:\n%s", s, p)
		}
		fmt.Fprintf(out, "serial:      %10.0f events/s (%s)\n", float64(events)/sd.Seconds(), sd.Round(time.Microsecond))
		fmt.Fprintf(out, "partitioned: %10.0f events/s (%s, %d chains, path %s)\n",
			float64(events)/pd.Seconds(), pd.Round(time.Microsecond), parallel.Stats.Partitions, parallel.Stats.Path)
		fmt.Fprintf(out, "results identical across both executors (%d rows)\n", len(serial.Rows))
		printRows(out, serial, maxRows)
		return nil
	}

	res, d, err := query(parts)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "executed on %d chain(s) [%s] in %s (%.0f events/s); state rows %d, late dropped %d\n",
		res.Stats.Partitions, res.Stats.Path, d.Round(time.Microsecond), float64(events)/d.Seconds(),
		res.Stats.StateRows, res.Stats.LateDropped)
	printRows(out, res, maxRows)
	return nil
}

func printRows(out io.Writer, res *core.TableResult, maxRows int) {
	rows := res.Rows
	truncated := 0
	if maxRows > 0 && len(rows) > maxRows {
		truncated = len(rows) - maxRows
		rows = rows[:maxRows]
	}
	fmt.Fprint(out, (&core.TableResult{Schema: res.Schema, Rows: rows}).Format())
	if truncated > 0 {
		fmt.Fprintf(out, "... and %d more rows\n", truncated)
	}
}
