// Command nexmark runs the NEXMark benchmark queries against the streaming
// SQL engine from the terminal: generate a deterministic dataset, execute a
// query on the serial or key-partitioned parallel executor (or both, with an
// equivalence check), and print the result table, the routing scheme, and
// throughput.
//
// Examples:
//
//	go run ./cmd/nexmark -query 7                 # Q7 on the serial engine
//	go run ./cmd/nexmark -query 3 -parts 4        # Q3 partitioned 4 ways
//	go run ./cmd/nexmark -query 5 -parts 4 -both  # serial vs parallel + diff
//	go run ./cmd/nexmark -query 2 -explain        # plan + partitioning only
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/nexmark"
	"repro/internal/types"
)

func main() {
	var (
		queryID = flag.Int("query", 7, "NEXMark query number (0-8)")
		events  = flag.Int("events", 5000, "number of generated input events")
		seed    = flag.Int64("seed", 42, "generator seed")
		parts   = flag.Int("parts", 1, "partitions (>1 enables the parallel executor)")
		both    = flag.Bool("both", false, "run serial AND partitioned, verify identical output")
		explain = flag.Bool("explain", false, "print the optimized plan and partitioning, don't execute")
		rows    = flag.Int("rows", 10, "result rows to print (0 = all)")
	)
	flag.Parse()

	if err := run(*queryID, *events, *seed, *parts, *both, *explain, *rows); err != nil {
		fmt.Fprintln(os.Stderr, "nexmark:", err)
		os.Exit(1)
	}
}

func run(queryID, events int, seed int64, parts int, both, explain bool, maxRows int) error {
	q, err := nexmark.QueryByID(queryID)
	if err != nil {
		return err
	}
	g := nexmark.Generate(nexmark.GeneratorConfig{
		Seed: seed, NumEvents: events, MaxOutOfOrderness: 2 * types.Second,
	})
	var opts []core.Option
	if q.NeedsUnboundedGroupBy {
		opts = append(opts, core.WithUnboundedGroupBy())
	}
	e, err := nexmark.NewEngine(g, opts...)
	if err != nil {
		return err
	}

	fmt.Printf("Q%d: %s  (%d persons, %d auctions, %d bids)\n",
		q.ID, q.Name, g.NumPersons, g.NumAuctions, g.NumBids)

	part, err := e.ExplainPartitioning(q.SQL)
	if err != nil {
		return err
	}
	fmt.Printf("partitioning: %s\n", part)
	if explain {
		plan, err := e.Explain(q.SQL)
		if err != nil {
			return err
		}
		fmt.Print(plan)
		return nil
	}

	query := func(p int) (*core.TableResult, time.Duration, error) {
		start := time.Now()
		var res *core.TableResult
		var err error
		if p > 1 {
			res, err = e.QueryTableParallel(q.SQL, types.MaxTime, p)
		} else {
			res, err = e.QueryTable(q.SQL, types.MaxTime)
		}
		return res, time.Since(start), err
	}

	if both {
		if parts < 2 {
			parts = 4
		}
		serial, sd, err := query(1)
		if err != nil {
			return err
		}
		parallel, pd, err := query(parts)
		if err != nil {
			return err
		}
		if s, p := serial.Format(), parallel.Format(); s != p {
			return fmt.Errorf("serial and partitioned results DIFFER:\nserial:\n%s\npartitioned:\n%s", s, p)
		}
		fmt.Printf("serial:      %10.0f events/s (%s)\n", float64(events)/sd.Seconds(), sd.Round(time.Microsecond))
		fmt.Printf("partitioned: %10.0f events/s (%s, %d chains)\n",
			float64(events)/pd.Seconds(), pd.Round(time.Microsecond), parallel.Stats.Partitions)
		fmt.Printf("results identical across both executors (%d rows)\n", len(serial.Rows))
		printRows(serial, maxRows)
		return nil
	}

	res, d, err := query(parts)
	if err != nil {
		return err
	}
	fmt.Printf("executed on %d chain(s) in %s (%.0f events/s); state rows %d, late dropped %d\n",
		res.Stats.Partitions, d.Round(time.Microsecond), float64(events)/d.Seconds(),
		res.Stats.StateRows, res.Stats.LateDropped)
	printRows(res, maxRows)
	return nil
}

func printRows(res *core.TableResult, maxRows int) {
	rows := res.Rows
	truncated := 0
	if maxRows > 0 && len(rows) > maxRows {
		truncated = len(rows) - maxRows
		rows = rows[:maxRows]
	}
	fmt.Print((&core.TableResult{Schema: res.Schema, Rows: rows}).Format())
	if truncated > 0 {
		fmt.Printf("... and %d more rows\n", truncated)
	}
}
