package main

// CLI-level tests: the query-running logic is a plain function over an
// io.Writer, so the equivalence output, exit codes, and error paths are
// asserted without spawning a process.

import (
	"strings"
	"testing"
)

// TestBothEquivalence: -both runs serial and partitioned and reports the
// identical-results check. The event count must clear the small-input gate
// (parts*2048 over the Bid-dominated mix) or the "partitioned" side would
// silently run serial and the equivalence assertion would be vacuous.
func TestBothEquivalence(t *testing.T) {
	var stdout, stderr strings.Builder
	code := cliMain([]string{"-query", "2", "-events", "12000", "-both"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"Q2: Selection",
		"partitioning: round-robin",
		"4 chains, path parallel",
		"results identical across both executors",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestTwoStageQuery: Q7's windows-only grouping — formerly a serial fallback
// — now routes two-stage (full-row-hashed partial MAX, serial final), and at
// CLI scale the small-input cost gate transparently runs it serially while
// the routing line still reports the two-stage plan.
func TestTwoStageQuery(t *testing.T) {
	var stdout, stderr strings.Builder
	code := cliMain([]string{"-query", "7", "-events", "600", "-both"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "partitioning: two-stage(1) ") {
		t.Errorf("expected two-stage partitioning line:\n%s", out)
	}
	if !strings.Contains(out, "path serial-small-input") {
		t.Errorf("expected the small-input gate to engage at 600 events:\n%s", out)
	}
	if !strings.Contains(out, "results identical across both executors") {
		t.Errorf("missing equivalence line:\n%s", out)
	}
}

// TestExplain prints the plan without executing.
func TestExplain(t *testing.T) {
	var stdout, stderr strings.Builder
	code := cliMain([]string{"-query", "3", "-events", "200", "-explain"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "Join") {
		t.Errorf("explain output missing plan:\n%s", stdout.String())
	}
}

// TestUnknownQuery exits 1 with an error on stderr.
func TestUnknownQuery(t *testing.T) {
	var stdout, stderr strings.Builder
	code := cliMain([]string{"-query", "99", "-events", "100"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "no query 99") {
		t.Errorf("stderr = %q, want unknown-query error", stderr.String())
	}
}

// TestBadFlag exits 2 on flag parse errors.
func TestBadFlag(t *testing.T) {
	var stdout, stderr strings.Builder
	code := cliMain([]string{"-nonsense"}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if stderr.Len() == 0 {
		t.Error("flag error not reported on stderr")
	}
}
