package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/vfs"
)

// writeRecords appends records from..to (inclusive) whose payloads are
// derived from their sequence numbers, so replay can verify content as well
// as framing.
func writeRecords(t *testing.T, w *Writer, from, to uint64) {
	t.Helper()
	for seq := from; seq <= to; seq++ {
		err := w.Append(seq, func(enc *checkpoint.Encoder) error {
			enc.String("rec")
			enc.Uvarint(seq * 7)
			return enc.Err()
		})
		if err != nil {
			t.Fatalf("append seq %d: %v", seq, err)
		}
	}
}

// replayAll replays dir, fully decoding every record (verifying the inner
// trailer) and checking the payload matches the sequence number. It returns
// the replayed sequence numbers and the ReplayInfo.
func replayAll(t *testing.T, dir string) ([]uint64, ReplayInfo) {
	t.Helper()
	var seqs []uint64
	info, err := Replay(dir, func(seq uint64, dec *checkpoint.Decoder) error {
		if got := dec.String(); got != "rec" {
			return fmt.Errorf("seq %d: payload tag %q", seq, got)
		}
		if got := dec.Uvarint(); got != seq*7 {
			return fmt.Errorf("seq %d: payload value %d, want %d", seq, got, seq*7)
		}
		if err := dec.Close(); err != nil {
			return err
		}
		seqs = append(seqs, seq)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return seqs, info
}

func wantSeqs(t *testing.T, got []uint64, from, to uint64) {
	t.Helper()
	want := int(to - from + 1)
	if from > to {
		want = 0
	}
	if len(got) != want {
		t.Fatalf("replayed %d records (%v), want %d (%d..%d)", len(got), got, want, from, to)
	}
	for i, s := range got {
		if s != from+uint64(i) {
			t.Fatalf("replayed seq %d at position %d, want %d", s, i, from+uint64(i))
		}
	}
}

// lastSegment returns the path of the highest-numbered segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(vfs.Default, dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s (err=%v)", dir, err)
	}
	return segs[len(segs)-1].path
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, 1, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	writeRecords(t, w, 1, 50)
	st := w.Stats()
	if st.LastSeq != 50 {
		t.Fatalf("LastSeq = %d, want 50", st.LastSeq)
	}
	if st.Segments < 2 {
		t.Fatalf("SegmentBytes=256 produced %d segments, expected rotation", st.Segments)
	}
	if st.SyncedBytes != st.AppendedBytes {
		t.Fatalf("SyncAlways left %d of %d bytes unsynced", st.AppendedBytes-st.SyncedBytes, st.AppendedBytes)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	seqs, info := replayAll(t, dir)
	wantSeqs(t, seqs, 1, 50)
	if info.Torn != "" {
		t.Fatalf("clean log reported torn tail: %q", info.Torn)
	}
	if info.LastSeq != 50 || info.Frames != 50 {
		t.Fatalf("info = %+v, want LastSeq 50 Frames 50", info)
	}

	// Reopen at the tail and continue appending.
	w2, err := Open(dir, 51, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	writeRecords(t, w2, 51, 60)
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, _ = replayAll(t, dir)
	wantSeqs(t, seqs, 1, 60)
}

func TestReplayMissingDirIsEmpty(t *testing.T) {
	info, err := Replay(filepath.Join(t.TempDir(), "nope"), func(uint64, *checkpoint.Decoder) error {
		t.Fatal("callback on empty log")
		return nil
	})
	if err != nil || info.Frames != 0 || info.LastSeq != 0 {
		t.Fatalf("missing dir: info=%+v err=%v", info, err)
	}
}

func TestTruncatedTailSegment(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, 1, Options{SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	writeRecords(t, w, 1, 20)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash signature: the tail of the last segment never hit the disk.
	seg := lastSegment(t, dir)
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	seqs, info := replayAll(t, dir)
	wantSeqs(t, seqs, 1, 19)
	if info.Torn == "" {
		t.Fatal("truncated tail not reported as torn")
	}

	// Open repairs the tail and appending resumes at the lost record's seq.
	w2, err := Open(dir, 20, Options{SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	writeRecords(t, w2, 20, 25)
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, info = replayAll(t, dir)
	wantSeqs(t, seqs, 1, 25)
	if info.Torn != "" {
		t.Fatalf("repaired log still torn: %q", info.Torn)
	}
}

func TestTornFrameGarbageTail(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	writeRecords(t, w, 1, 10)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash signature: a partially written frame — plausible length prefix,
	// garbage where the payload and checksum should be.
	f, err := os.OpenFile(lastSegment(t, dir), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{40, 0xde, 0xad, 0xbe, 0xef}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	seqs, info := replayAll(t, dir)
	wantSeqs(t, seqs, 1, 10)
	if info.Torn == "" {
		t.Fatal("garbage tail not reported as torn")
	}
	if _, err := Open(dir, 11, Options{}); err != nil {
		t.Fatalf("open after torn frame: %v", err)
	}
}

func TestCorruptedFrameInTail(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	writeRecords(t, w, 1, 10)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a payload byte of the final frame: its CRC no longer matches, so
	// recovery must stop at record 9 rather than apply damaged bytes.
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-6] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	seqs, info := replayAll(t, dir)
	wantSeqs(t, seqs, 1, 9)
	if !strings.Contains(info.Torn, "checksum") {
		t.Fatalf("torn = %q, want checksum mismatch", info.Torn)
	}
}

func TestCorruptedSealedSegmentFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, 1, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	writeRecords(t, w, 1, 50)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(vfs.Default, dir)
	if err != nil || len(segs) < 2 {
		t.Fatalf("need sealed segments, have %d (err=%v)", len(segs), err)
	}

	// Bit rot inside a sealed segment is damage to acknowledged history —
	// silently dropping it would be data loss, so replay must error.
	first := segs[0].path
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-6] ^= 0x01
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = Replay(dir, func(seq uint64, dec *checkpoint.Decoder) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "sealed") {
		t.Fatalf("replay of rotted sealed segment: err = %v, want loud sealed-segment error", err)
	}
}

func TestTruncateThrough(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, 1, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	writeRecords(t, w, 1, 60)
	before := w.Stats().Segments

	// Snapshot through seq 30: every segment wholly at or below 30 goes; a
	// straddling segment stays (its covered records are skipped by seq).
	if err := w.TruncateThrough(30); err != nil {
		t.Fatal(err)
	}
	after := w.Stats().Segments
	if after >= before {
		t.Fatalf("truncate removed nothing (%d -> %d segments)", before, after)
	}
	writeRecords(t, w, 61, 70)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	seqs, info := replayAll(t, dir)
	if info.LastSeq != 70 {
		t.Fatalf("LastSeq = %d, want 70", info.LastSeq)
	}
	if len(seqs) == 0 || seqs[0] > 31 {
		t.Fatalf("first surviving record is %v, truncation overshot seq 30", seqs)
	}
	wantSeqs(t, seqs, seqs[0], 70)

	// Truncating through the live tail seals the active segment and removes
	// it; the next append starts a fresh segment.
	w2, err := Open(dir, 71, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.TruncateThrough(70); err != nil {
		t.Fatal(err)
	}
	if n := w2.Stats().Segments; n != 0 {
		t.Fatalf("%d segments survive a truncate through the tail, want 0", n)
	}
	writeRecords(t, w2, 71, 75)
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, _ = replayAll(t, dir)
	wantSeqs(t, seqs, 71, 75)
}

func TestOpenRefusesUnreplayedTail(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	writeRecords(t, w, 1, 10)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// An engine that replayed only through 5 must not be allowed to append
	// (and thereby truncate) past records 6..10.
	if _, err := Open(dir, 6, Options{}); err == nil || !strings.Contains(err.Error(), "unreplayed") {
		t.Fatalf("open with unreplayed tail: err = %v, want refusal", err)
	}
}

func TestOpenClearsStaleLog(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	writeRecords(t, w, 1, 10)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// A crash with a lax sync policy can lose an acked WAL suffix that a
	// (fsynced) snapshot still captured: the snapshot is ahead of the log.
	// Open must not append seq 15 after record 10 — it clears the stale
	// segments (all covered by the snapshot) and restarts contiguously.
	w2, err := Open(dir, 15, Options{})
	if err != nil {
		t.Fatal(err)
	}
	writeRecords(t, w2, 15, 20)
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, _ := replayAll(t, dir)
	wantSeqs(t, seqs, 15, 20)
}

func TestCrashBetweenSnapshotAndTruncation(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, 1, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	writeRecords(t, w, 1, 40)
	// Snapshot at seq 25 was written... and the process died before
	// TruncateThrough(25) ran (no Close either). The log still holds 1..40;
	// recovery replays it all, skipping 1..25 by sequence number — exactly
	// what Replay's seq argument is for.
	var applied []uint64
	info, err := Replay(dir, func(seq uint64, dec *checkpoint.Decoder) error {
		if seq <= 25 {
			return nil // covered by the snapshot; outer CRC already verified
		}
		if got := dec.String(); got != "rec" {
			return fmt.Errorf("seq %d: payload tag %q", seq, got)
		}
		if got := dec.Uvarint(); got != seq*7 {
			return fmt.Errorf("seq %d: payload value %d", seq, got)
		}
		if err := dec.Close(); err != nil {
			return err
		}
		applied = append(applied, seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.LastSeq != 40 || info.Frames != 40 {
		t.Fatalf("info = %+v, want all 40 frames seen", info)
	}
	wantSeqs(t, applied, 26, 40)
	// The writer reopens at 41 and the next snapshot's truncation catches up.
	w2, err := Open(dir, 41, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.TruncateThrough(25); err != nil {
		t.Fatal(err)
	}
	writeRecords(t, w2, 41, 45)
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, _ := replayAll(t, dir)
	wantSeqs(t, seqs, seqs[0], 45)
	if seqs[0] > 26 {
		t.Fatalf("records after the snapshot were truncated: first survivor %d", seqs[0])
	}
	_ = w
}

func TestSyncPolicies(t *testing.T) {
	for _, tc := range []struct {
		in   string
		mode SyncMode
		ok   bool
	}{
		{"always", SyncAlways, true},
		{"", SyncAlways, true},
		{"none", SyncNone, true},
		{"250ms", SyncInterval, true},
		{"0s", 0, false},
		{"-1s", 0, false},
		{"often", 0, false},
	} {
		mode, d, err := ParseSyncPolicy(tc.in)
		if tc.ok != (err == nil) {
			t.Fatalf("ParseSyncPolicy(%q): err = %v", tc.in, err)
		}
		if tc.ok && mode != tc.mode {
			t.Fatalf("ParseSyncPolicy(%q) = %v, want %v", tc.in, mode, tc.mode)
		}
		if tc.in == "250ms" && d != 250*time.Millisecond {
			t.Fatalf("ParseSyncPolicy(250ms) interval = %v", d)
		}
	}

	// SyncNone: appends are not individually fsynced, Close still syncs.
	dir := t.TempDir()
	w, err := Open(dir, 1, Options{Mode: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	writeRecords(t, w, 1, 5)
	if st := w.Stats(); st.SyncedBytes >= st.AppendedBytes {
		t.Fatalf("SyncNone synced eagerly: %+v", st)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, _ := replayAll(t, dir)
	wantSeqs(t, seqs, 1, 5)

	// SyncInterval: the background flusher catches up without explicit Sync.
	dir2 := t.TempDir()
	w2, err := Open(dir2, 1, Options{Mode: SyncInterval, Interval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	writeRecords(t, w2, 1, 5)
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := w2.Stats()
		if st.SyncedBytes == st.AppendedBytes {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background flusher never synced: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAppendSeqDiscipline(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	writeRecords(t, w, 1, 3)
	err = w.Append(5, func(enc *checkpoint.Encoder) error { return nil })
	if err == nil {
		t.Fatal("append with a sequence gap succeeded")
	}
	err = w.Append(3, func(enc *checkpoint.Encoder) error { return nil })
	if err == nil {
		t.Fatal("append with a reused sequence succeeded")
	}
}
