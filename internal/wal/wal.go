// Package wal implements the engine's write-ahead log: a segmented,
// CRC-framed, fsync-batched append log of committed changes. Together with
// occasional full snapshots it makes steady-state durability cost track the
// delta instead of the history: recovery is "load the last snapshot, then
// replay the WAL tail", and a snapshot truncates the segments it covers.
//
// On disk the log is a directory of segment files named by the first commit
// sequence number they contain:
//
//	wal-0000000000000001.seg
//	wal-0000000000004096.seg
//	...
//
// A segment is a short header (magic "TVRWAL" + format version + first
// sequence number, all verified against the file name on open) followed by
// frames:
//
//	frame := uvarint(len(payload)) | payload | crc32c(payload) big-endian
//
// Each payload is a self-contained internal/checkpoint stream — the same
// encoding discipline snapshots use (magic + format version + tagged values
// + its own trailer) — beginning with the record's commit sequence number.
// The caller supplies the record body through the same write-callback shape
// checkpoint.WriteFileAtomic uses, so the engine encodes WAL records with
// exactly the helpers it encodes snapshots with.
//
// Failure discipline mirrors internal/checkpoint: loud, never silent.
// Replay verifies every frame's CRC and the global sequence-number
// contiguity. A torn or truncated tail in the LAST segment is the expected
// crash signature — recovery stops at the last valid frame and reports the
// tail as torn. Any invalid frame in a sealed (non-last) segment is bit rot
// of acknowledged history and fails recovery with an error instead of
// quietly dropping commits: sealed segments were fsynced before the next
// segment was created, so a crash cannot tear them.
//
// Sequence numbers are allocated by the caller (the engine, under its
// commit ordering lock), increase by exactly one per record, and are never
// reused; the log as a whole is always one contiguous run. Truncation only
// removes whole segments from the front, so the invariant survives
// compaction.
package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/obs"
	"repro/internal/vfs"
)

const (
	segMagic = "TVRWAL"
	// FormatVersion is the segment container version (header + framing).
	// The per-record payload carries its own checkpoint.FormatVersion.
	FormatVersion = 1
	// DefaultSegmentBytes is the rotation threshold when Options leaves
	// SegmentBytes zero. Segments are the unit of truncation: smaller
	// segments reclaim space sooner after a snapshot, at the cost of more
	// files.
	DefaultSegmentBytes = 4 << 20
	// maxFrameBytes bounds a single frame so a corrupt length prefix is
	// rejected before it can drive an allocation.
	maxFrameBytes = 1 << 30
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncMode selects when appended frames are fsynced.
type SyncMode int

const (
	// SyncAlways fsyncs after every Append. One Append carries one whole
	// committed batch (an AppendLog of N events is one frame), so this is
	// group commit at batch granularity: the strongest guarantee — an
	// acknowledged commit survives any crash.
	SyncAlways SyncMode = iota
	// SyncInterval fsyncs from a background flusher every Options.Interval.
	// A crash can lose up to one interval of acknowledged commits; recovery
	// still stops cleanly at the last fully synced frame.
	SyncInterval
	// SyncNone issues no explicit data fsyncs (the OS writes back on its
	// own schedule). Rotation, truncation, and Close still sync, so sealed
	// segments are always durable.
	SyncNone
)

// Options configures a Writer.
type Options struct {
	// SegmentBytes is the rotation threshold (0 = DefaultSegmentBytes).
	SegmentBytes int64
	// Mode is the fsync policy.
	Mode SyncMode
	// Interval is the flush period for SyncInterval.
	Interval time.Duration
	// FS is the filesystem the log does its I/O through (nil =
	// vfs.Default, the real filesystem). Tests substitute a vfs.FaultFS
	// to inject disk failures.
	FS vfs.FS
	// Obs, when non-nil, registers the wal_* metric families on the given
	// registry. The counters are incremented at the instrument sites under
	// w.mu and read lock-free at scrape time — a scrape never takes w.mu
	// (Stats() walks the directory and fsync holds the lock, so neither is
	// safe from a collector).
	Obs *obs.Registry
}

// ParseSyncPolicy maps the -wal-sync flag value to Options fields:
// "always" (or empty), "none", or a Go duration such as "250ms" for
// interval-batched fsync.
func ParseSyncPolicy(s string) (SyncMode, time.Duration, error) {
	switch s {
	case "", "always":
		return SyncAlways, 0, nil
	case "none":
		return SyncNone, 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return 0, 0, fmt.Errorf("wal: sync policy must be \"always\", \"none\", or a positive duration, got %q", s)
	}
	return SyncInterval, d, nil
}

// Stats is a point-in-time snapshot of the writer's durability counters —
// the measures the recovery benchmark tracks (bytes appended and fsynced
// per interval, not per history).
type Stats struct {
	// LastSeq is the sequence number of the last appended record.
	LastSeq uint64
	// AppendedBytes counts every byte written to segment files (headers
	// and frames).
	AppendedBytes int64
	// SyncedBytes counts the bytes covered by an explicit fsync.
	SyncedBytes int64
	// Syncs counts fsync calls on segment files.
	Syncs int64
	// Segments is the number of live segment files.
	Segments int
}

// Writer appends CRC-framed records to the segmented log. It is safe for
// concurrent use, though the engine serializes Appends under its commit
// ordering lock anyway (WAL order must equal commit order).
type Writer struct {
	dir  string
	opts Options
	fs   vfs.FS

	mu       sync.Mutex
	f        vfs.File // active segment, nil until the first append (or after a seal)
	segStart uint64   // first sequence number of the active segment
	segBytes int64    // bytes written to the active segment
	lastSeq  uint64   // last appended (acknowledged) sequence number
	dirty    bool     // unsynced appended bytes exist
	closed   bool
	// err is the poison latch (the fsync-gate): set on any failed fsync or
	// unrepaired partial write, it makes every subsequent Append refuse
	// cleanly. After a failed fsync the kernel may drop the dirty pages and
	// clear the error, so a later fsync on the same file can report success
	// for data that never reached disk — once a file fails to sync, nothing
	// on it is ever acknowledged again. Recover is the only way out.
	err error

	// syncedEnd/syncedSeq mark the active segment's durable prefix: the
	// file offset and last sequence number covered by a successful fsync.
	// Recover truncates back to exactly this point.
	syncedEnd int64
	syncedSeq uint64

	appended int64
	synced   int64
	syncs    int64

	// Scrape-facing metrics (nil without Options.Obs; every method is
	// nil-safe). Incremented at the instrument sites so a scrape never
	// needs w.mu or a directory listing.
	mAppends      *obs.Counter
	mAppendBytes  *obs.Counter
	mFsyncs       *obs.Counter
	mFsyncSeconds *obs.Histogram
	mRotations    *obs.Counter

	stopFlush chan struct{}
	flushDone chan struct{}
}

// Open prepares dir for appending. nextSeq is the sequence number the first
// Append will carry — the engine's committed sequence plus one, after the
// caller has restored its snapshot and replayed the tail with Replay.
//
// Open repairs the crash signature at the tail: the last segment is scanned
// and any torn bytes after its last valid frame are truncated away before
// appending resumes. Consistency with nextSeq is enforced loudly: a tail
// beyond nextSeq-1 means the caller did not replay everything (error), and
// a tail short of nextSeq-1 means every on-disk record is already covered
// by the restored snapshot, so the stale segments are removed and the log
// restarts contiguously at nextSeq.
func Open(dir string, nextSeq uint64, opts Options) (*Writer, error) {
	if nextSeq == 0 {
		return nil, fmt.Errorf("wal: next sequence number must be >= 1")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.Mode == SyncInterval && opts.Interval <= 0 {
		return nil, fmt.Errorf("wal: SyncInterval needs a positive Interval")
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = vfs.Default
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	w := &Writer{dir: dir, opts: opts, fs: fsys, lastSeq: nextSeq - 1, syncedSeq: nextSeq - 1}
	if reg := opts.Obs; reg != nil {
		w.mAppends = reg.Counter("wal_appends_total", "WAL records appended and acknowledged.")
		w.mAppendBytes = reg.Counter("wal_append_bytes_total", "Frame bytes appended to WAL segments.")
		w.mFsyncs = reg.Counter("wal_fsyncs_total", "Successful fsyncs of the active WAL segment.")
		w.mFsyncSeconds = reg.Histogram("wal_fsync_seconds", "WAL fsync latency.", obs.DurationScale, obs.DurationBuckets)
		w.mRotations = reg.Counter("wal_segment_rotations_total", "WAL segment files created.")
	}
	segs, err := listSegments(fsys, dir)
	if err != nil {
		return nil, err
	}
	// Trim record-less tail segments before deciding how to resume. A
	// segment with a header (possibly torn) but no valid frame is an
	// interrupted creation — a crash or I/O failure between the segment's
	// birth and its first frame. It holds no acknowledged records, and
	// leaving it in place would both shadow the real tail (the scan below
	// only inspects the last segment) and collide with the name the next
	// append wants to create.
	var res scanResult
	for len(segs) > 0 {
		last := segs[len(segs)-1]
		res, err = scanSegment(fsys, last.path, last.firstSeq, nil)
		if err != nil {
			return nil, err
		}
		if res.frames > 0 {
			break
		}
		if err := fsys.Remove(last.path); err != nil {
			return nil, err
		}
		if err := fsys.SyncDir(dir); err != nil {
			return nil, err
		}
		segs = segs[:len(segs)-1]
	}
	if len(segs) > 0 {
		last := segs[len(segs)-1]
		switch {
		case res.lastSeq >= nextSeq:
			return nil, fmt.Errorf("wal: %s holds records through seq %d but the engine replayed only through %d — refusing to truncate unreplayed commits",
				dir, res.lastSeq, nextSeq-1)
		case res.lastSeq == nextSeq-1:
			// Resume the tail segment in place, discarding torn bytes.
			f, err := openSegmentAt(fsys, last.path, res.validEnd)
			if err != nil {
				return nil, err
			}
			w.f, w.segStart, w.segBytes = f, last.firstSeq, res.validEnd
			w.syncedEnd = res.validEnd
		default:
			// Every on-disk record precedes the restored snapshot (a crash
			// with a lax sync policy can lose an acked WAL suffix the
			// snapshot still captured). Appending here would leave a
			// sequence gap inside the log, so clear it and restart at
			// nextSeq; the removed records are all covered by the snapshot.
			for _, s := range segs {
				if err := fsys.Remove(s.path); err != nil {
					return nil, err
				}
			}
			if err := fsys.SyncDir(dir); err != nil {
				return nil, err
			}
		}
	}
	if opts.Mode == SyncInterval {
		w.stopFlush = make(chan struct{})
		w.flushDone = make(chan struct{})
		go w.flushLoop()
	}
	return w, nil
}

// Append encodes one record — seq first, then whatever the callback writes,
// as a self-contained checkpoint stream — and appends it as a CRC frame.
// seq must be exactly the previous sequence plus one. Under SyncAlways the
// frame is fsynced before Append returns.
func (w *Writer) Append(seq uint64, write func(*checkpoint.Encoder) error) error {
	var buf bytes.Buffer
	enc := checkpoint.NewEncoder(&buf)
	enc.Uvarint(seq)
	if err := write(enc); err != nil {
		return err
	}
	if err := enc.Close(); err != nil {
		return err
	}
	payload := buf.Bytes()

	frame := make([]byte, 0, binary.MaxVarintLen64+len(payload)+4)
	frame = binary.AppendUvarint(frame, uint64(len(payload)))
	frame = append(frame, payload...)
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.Checksum(payload, castagnoli))
	frame = append(frame, crc[:]...)

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("wal: writer is closed")
	}
	if w.err != nil {
		return w.err
	}
	if seq != w.lastSeq+1 {
		return fmt.Errorf("wal: append seq %d does not follow %d", seq, w.lastSeq)
	}
	if w.f != nil && w.segBytes >= w.opts.SegmentBytes && w.lastSeq >= w.segStart {
		if err := w.sealLocked(); err != nil {
			return err
		}
	}
	if w.f == nil {
		if err := w.startSegmentLocked(seq); err != nil {
			return err
		}
	}
	// One Write call per frame: the frame is either wholly in the file's
	// logical content or not started, and a crash mid-write is exactly the
	// torn tail Replay and Open repair.
	prevEnd := w.segBytes
	if n, err := w.f.Write(frame); err != nil {
		w.appended += int64(n)
		return w.failedWriteLocked(prevEnd, err)
	}
	w.lastSeq = seq
	w.segBytes += int64(len(frame))
	w.appended += int64(len(frame))
	w.dirty = true
	if w.opts.Mode == SyncAlways {
		if err := w.syncLocked(); err != nil {
			// The frame reached the file but its durability is unknown —
			// the commit is NOT acknowledged, so the sequence number stays
			// unconsumed. The writer is already poisoned (syncLocked);
			// Recover truncates the unacked bytes away.
			w.lastSeq = seq - 1
			return err
		}
	}
	w.mAppends.Inc()
	w.mAppendBytes.Add(int64(len(frame)))
	return nil
}

// failedWriteLocked repairs the tail after a short or failed frame write:
// the partial frame's bytes are truncated away so the segment ends at the
// last intact frame and the NEXT append (a retry of the same sequence
// number, or anything else) lands on a clean tail. If the repair itself
// fails the garbage stays on disk, so the writer poisons itself rather
// than risk appending after a tear Replay would stop at.
func (w *Writer) failedWriteLocked(prevEnd int64, cause error) error {
	if terr := w.f.Truncate(prevEnd); terr == nil {
		if _, serr := w.f.Seek(prevEnd, io.SeekStart); serr == nil {
			w.segBytes = prevEnd
			return fmt.Errorf("wal: append write failed (frame discarded, log still append-safe): %w", cause)
		}
	}
	w.err = fmt.Errorf("wal: append write failed (%v) and the partial frame could not be removed — refusing further appends until Recover", cause)
	return w.err
}

// Sync forces an fsync of the active segment.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("wal: writer is closed")
	}
	return w.syncLocked()
}

func (w *Writer) syncLocked() error {
	if w.f == nil || !w.dirty {
		return nil
	}
	t0 := time.Now()
	if err := w.f.Sync(); err != nil {
		// fsync-gate: after a failed fsync the dirty pages' fate is
		// unknown and a retried fsync can succeed without persisting
		// them, so this file can never vouch for an ack again. Poison the
		// writer; Recover abandons the segment.
		w.err = fmt.Errorf("wal: fsync failed — segment poisoned, refusing further appends until Recover: %w", err)
		return w.err
	}
	w.dirty = false
	w.synced = w.appended
	w.syncs++
	w.syncedEnd = w.segBytes
	w.syncedSeq = w.lastSeq
	w.mFsyncs.Inc()
	w.mFsyncSeconds.ObserveSince(t0)
	return nil
}

// Sick reports the writer's poison state: non-nil after a failed fsync or
// an unrepaired partial write, when every Append refuses. The engine uses
// it to distinguish a permanently failed log (degrade immediately) from a
// transient refusal (count and retry).
func (w *Writer) Sick() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Recover clears the poison latch after the underlying fault is fixed. The
// active segment is abandoned honoring the fsync-gate — truncated back to
// its durable prefix (the last successful fsync), fsynced, and sealed or
// removed — so the next append starts a fresh segment file. Only unacked
// bytes are discarded; under a lax sync policy acknowledged-but-unsynced
// records can exist, and then in-place recovery is refused (the acks
// cannot be honored without the records): restart and re-stitch from the
// snapshot instead.
func (w *Writer) Recover() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("wal: writer is closed")
	}
	if w.err == nil {
		return nil
	}
	if w.lastSeq > w.syncedSeq {
		return fmt.Errorf("wal: cannot recover in place: %d acknowledged records were never fsynced — restart and re-stitch from the last snapshot", w.lastSeq-w.syncedSeq)
	}
	if w.f != nil {
		if err := w.f.Truncate(w.syncedEnd); err != nil {
			return fmt.Errorf("wal: recover: %w", err)
		}
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("wal: recover: %w", err)
		}
		if err := w.f.Close(); err != nil {
			return fmt.Errorf("wal: recover: %w", err)
		}
		w.f = nil
		w.segBytes = w.syncedEnd
		if w.lastSeq < w.segStart {
			// The abandoned segment holds no records, only a header.
			// Remove it: the next append allocates the same name (its
			// first record is still w.lastSeq+1) and segment creation is
			// O_EXCL.
			if err := w.fs.Remove(filepath.Join(w.dir, segmentName(w.segStart))); err != nil {
				return fmt.Errorf("wal: recover: %w", err)
			}
			if err := w.fs.SyncDir(w.dir); err != nil {
				return fmt.Errorf("wal: recover: %w", err)
			}
		}
	}
	w.dirty = false
	w.err = nil
	return nil
}

// TruncateThrough removes every segment whose records are all at or below
// seq — they are covered by a snapshot the caller just made durable. The
// active segment is sealed first when it too is fully covered, so steady
// snapshot-then-truncate cycles reclaim the whole applied prefix; a segment
// straddling seq survives intact (replay skips its covered records by
// sequence number).
func (w *Writer) TruncateThrough(seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("wal: writer is closed")
	}
	if w.f != nil && w.lastSeq <= seq && w.lastSeq >= w.segStart {
		if err := w.sealLocked(); err != nil {
			return err
		}
	}
	segs, err := listSegments(w.fs, w.dir)
	if err != nil {
		return err
	}
	removed := false
	for i, s := range segs {
		// A segment's records end where the next segment begins; the
		// final segment ends at the writer's last appended sequence.
		segLast := w.lastSeq
		if i+1 < len(segs) {
			segLast = segs[i+1].firstSeq - 1
		}
		if segLast > seq {
			break
		}
		if w.f != nil && s.firstSeq == w.segStart {
			break // never remove the active segment
		}
		if err := w.fs.Remove(s.path); err != nil {
			return err
		}
		removed = true
	}
	if removed {
		return w.fs.SyncDir(w.dir)
	}
	return nil
}

// Close syncs and closes the active segment and stops the background
// flusher. The writer must not be used afterwards.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	err := w.syncLocked()
	if w.f != nil {
		if cerr := w.f.Close(); err == nil {
			err = cerr
		}
		w.f = nil
	}
	stop := w.stopFlush
	w.mu.Unlock()
	if stop != nil {
		close(stop)
		<-w.flushDone
	}
	return err
}

// Stats reports the durability counters.
func (w *Writer) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := 0
	if segs, err := listSegments(w.fs, w.dir); err == nil {
		n = len(segs)
	}
	return Stats{
		LastSeq:       w.lastSeq,
		AppendedBytes: w.appended,
		SyncedBytes:   w.synced,
		Syncs:         w.syncs,
		Segments:      n,
	}
}

// sealLocked makes the active segment immutable: synced, closed, and from
// now on trusted by recovery (an invalid frame in a sealed segment is an
// error, not a torn tail). Sealing before the next segment exists is what
// confines torn tails to the last segment.
func (w *Writer) sealLocked() error {
	if w.f == nil {
		return nil
	}
	if err := w.syncLocked(); err != nil {
		return err // poisoned by syncLocked (fsync-gate)
	}
	if err := w.f.Close(); err != nil {
		// The segment is durable but the handle is wedged; treat it like
		// a sync failure rather than retry on a half-sealed file.
		w.err = fmt.Errorf("wal: seal failed closing segment — refusing further appends until Recover: %w", err)
		return w.err
	}
	w.f = nil
	return nil
}

// startSegmentLocked creates the segment that will hold seq as its first
// record and makes its directory entry durable.
func (w *Writer) startSegmentLocked(seq uint64) error {
	path := filepath.Join(w.dir, segmentName(seq))
	f, err := w.fs.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if errors.Is(err, fs.ErrExist) {
		// Leftover from an earlier aborted creation whose cleanup failed.
		// It is only safe to clobber if it holds no acknowledged records.
		if res, serr := scanSegment(w.fs, path, seq, nil); serr == nil && res.frames == 0 {
			if rerr := w.fs.Remove(path); rerr == nil {
				f, err = w.fs.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
			}
		}
	}
	if err != nil {
		return fmt.Errorf("wal: segment rotation failed (previous segment sealed, log still append-safe): %w", err)
	}
	var hdr bytes.Buffer
	hdr.WriteString(segMagic)
	var tmp [binary.MaxVarintLen64]byte
	hdr.Write(tmp[:binary.PutUvarint(tmp[:], FormatVersion)])
	hdr.Write(tmp[:binary.PutUvarint(tmp[:], seq)])
	if _, err := f.Write(hdr.Bytes()); err != nil {
		w.abortSegmentLocked(f, path)
		return fmt.Errorf("wal: segment rotation failed (previous segment sealed, log still append-safe): %w", err)
	}
	if err := f.Sync(); err != nil {
		w.abortSegmentLocked(f, path)
		return fmt.Errorf("wal: segment rotation failed (previous segment sealed, log still append-safe): %w", err)
	}
	if err := w.fs.SyncDir(w.dir); err != nil {
		w.abortSegmentLocked(f, path)
		return fmt.Errorf("wal: segment rotation failed (previous segment sealed, log still append-safe): %w", err)
	}
	w.f = f
	w.segStart = seq
	w.segBytes = int64(hdr.Len())
	w.appended += int64(hdr.Len())
	w.synced = w.appended
	w.syncedEnd = w.segBytes
	w.syncedSeq = w.lastSeq
	w.mRotations.Inc()
	return nil
}

// abortSegmentLocked disposes of a segment file whose creation failed
// partway. The file holds no records, but leaving it behind would make the
// retry's O_EXCL create fail, so removal failure poisons the writer (and
// Open knows to trim record-less tail segments after a crash).
func (w *Writer) abortSegmentLocked(f vfs.File, path string) {
	f.Close()
	if err := w.fs.Remove(path); err != nil {
		w.err = fmt.Errorf("wal: aborted segment %s could not be removed — refusing further appends until Recover: %v", path, err)
	}
}

func (w *Writer) flushLoop() {
	defer close(w.flushDone)
	tick := time.NewTicker(w.opts.Interval)
	defer tick.Stop()
	for {
		select {
		case <-w.stopFlush:
			return
		case <-tick.C:
			w.mu.Lock()
			if !w.closed && w.err == nil {
				// A failure poisons the writer inside syncLocked: an
				// Append acked after a failed background sync would be
				// claiming durability we lost.
				_ = w.syncLocked()
			}
			w.mu.Unlock()
		}
	}
}

// ReplayInfo summarizes a Replay pass.
type ReplayInfo struct {
	// LastSeq is the last valid record's sequence number (0 when the log
	// is empty).
	LastSeq uint64
	// Frames is the number of valid records seen (applied or skipped).
	Frames int
	// Torn describes the discarded tail of the last segment, empty when
	// the log ended cleanly at a frame boundary.
	Torn string
}

// Replay walks every record in sequence order and hands each to fn along
// with a decoder positioned just past the record's sequence number. fn owns
// the rest of the payload: it either decodes the record fully (Close on the
// decoder verifies the payload's own trailer) or returns without touching
// it to skip — the frame CRC verified here already covers skipped bytes.
//
// Replay stops cleanly at a torn tail in the last segment (see ReplayInfo)
// and fails loudly on anything else: CRC or framing damage in a sealed
// segment, a sequence discontinuity, or a segment header that contradicts
// the file name. A missing directory is an empty log.
func Replay(dir string, fn func(seq uint64, dec *checkpoint.Decoder) error) (ReplayInfo, error) {
	return ReplayFS(vfs.Default, dir, fn)
}

// ReplayFS is Replay through an explicit filesystem (fault-injection
// tests; vfs.Default elsewhere).
func ReplayFS(fsys vfs.FS, dir string, fn func(seq uint64, dec *checkpoint.Decoder) error) (ReplayInfo, error) {
	var info ReplayInfo
	segs, err := listSegments(fsys, dir)
	if err != nil {
		if os.IsNotExist(err) {
			return info, nil
		}
		return info, err
	}
	expect := uint64(0)
	for i, s := range segs {
		isLast := i == len(segs)-1
		if expect != 0 && s.firstSeq != expect {
			return info, fmt.Errorf("wal: %s starts at seq %d, want %d — log is not contiguous", s.path, s.firstSeq, expect)
		}
		res, err := scanSegment(fsys, s.path, s.firstSeq, func(seq uint64, payload []byte) error {
			dec, err := checkpoint.NewDecoder(bytes.NewReader(payload))
			if err != nil {
				return fmt.Errorf("wal: %s seq %d: %w", s.path, seq, err)
			}
			if got := dec.Uvarint(); got != seq || dec.Err() != nil {
				return fmt.Errorf("wal: %s: payload seq %d disagrees with frame scan", s.path, got)
			}
			return fn(seq, dec)
		})
		if err != nil {
			return info, err
		}
		if res.frames > 0 {
			info.LastSeq = res.lastSeq
			info.Frames += res.frames
			expect = res.lastSeq + 1
		} else if expect == 0 {
			expect = s.firstSeq
		}
		if res.torn != "" {
			if !isLast {
				// Sealed segments were fsynced before their successor was
				// created; damage here is corruption of acknowledged
				// history, not a crash artifact.
				return info, fmt.Errorf("wal: %s: %s in a sealed segment — acknowledged commits are damaged", s.path, res.torn)
			}
			info.Torn = res.torn
		}
	}
	return info, nil
}

// ---- segment scanning ----

type segmentFile struct {
	path     string
	firstSeq uint64
}

func segmentName(firstSeq uint64) string {
	return fmt.Sprintf("wal-%016d.seg", firstSeq)
}

// listSegments returns the segment files sorted by first sequence number.
func listSegments(fsys vfs.FS, dir string) ([]segmentFile, error) {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segmentFile
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		var seq uint64
		if _, err := fmt.Sscanf(name, "wal-%016d.seg", &seq); err != nil || seq == 0 {
			return nil, fmt.Errorf("wal: unrecognized segment file name %q in %s", name, dir)
		}
		segs = append(segs, segmentFile{path: filepath.Join(dir, name), firstSeq: seq})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
	return segs, nil
}

type scanResult struct {
	lastSeq  uint64 // last valid frame's seq (0 when frames == 0)
	frames   int
	validEnd int64  // file offset just past the last valid frame (or the header)
	torn     string // non-empty when trailing bytes after validEnd were invalid
}

// scanSegment validates one segment: header (against the expected first
// sequence from the file name), then frames in order, calling fn (when
// non-nil) with each frame's seq and payload. Scanning stops at the first
// invalid frame, reporting it in torn; deciding whether torn is acceptable
// (tail segment) or fatal (sealed segment) is the caller's job. Errors are
// reserved for damage no crash can explain: an unreadable file, a
// valid-CRC frame whose contents contradict the framing, or a sequence
// discontinuity inside the segment.
func scanSegment(fsys vfs.FS, path string, wantFirst uint64, fn func(seq uint64, payload []byte) error) (scanResult, error) {
	var res scanResult
	f, err := fsys.Open(path)
	if err != nil {
		return res, err
	}
	defer f.Close()
	cr := &countingReader{r: bufio.NewReader(f)}

	hdr := make([]byte, len(segMagic))
	if _, err := io.ReadFull(cr, hdr); err != nil || string(hdr) != segMagic {
		res.torn = "missing or short segment header"
		return res, nil
	}
	ver, err := binary.ReadUvarint(cr)
	if err != nil || ver != FormatVersion {
		if err == nil {
			return res, fmt.Errorf("wal: %s: segment format version %d, this build reads %d", path, ver, FormatVersion)
		}
		res.torn = "truncated segment header"
		return res, nil
	}
	first, err := binary.ReadUvarint(cr)
	if err != nil {
		res.torn = "truncated segment header"
		return res, nil
	}
	if first != wantFirst {
		return res, fmt.Errorf("wal: %s: header says first seq %d, file name says %d", path, first, wantFirst)
	}
	res.validEnd = cr.n
	expect := wantFirst
	for {
		n, err := binary.ReadUvarint(cr)
		if err == io.EOF {
			return res, nil // clean end at a frame boundary
		}
		if err != nil {
			res.torn = "truncated frame length"
			return res, nil
		}
		if n > maxFrameBytes {
			res.torn = fmt.Sprintf("implausible frame length %d", n)
			return res, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(cr, payload); err != nil {
			res.torn = "truncated frame payload"
			return res, nil
		}
		var crcb [4]byte
		if _, err := io.ReadFull(cr, crcb[:]); err != nil {
			res.torn = "truncated frame checksum"
			return res, nil
		}
		if binary.BigEndian.Uint32(crcb[:]) != crc32.Checksum(payload, castagnoli) {
			res.torn = fmt.Sprintf("frame %d checksum mismatch", expect)
			return res, nil
		}
		// The frame is integral; its seq must be the expected one — a
		// valid-CRC frame out of sequence is a writer bug or tampering,
		// never a crash artifact.
		seq, perr := peekSeq(payload)
		if perr != nil {
			return res, fmt.Errorf("wal: %s: %v", path, perr)
		}
		if seq != expect {
			return res, fmt.Errorf("wal: %s: frame seq %d, want %d — log is not contiguous", path, seq, expect)
		}
		if fn != nil {
			if err := fn(seq, payload); err != nil {
				return res, err
			}
		}
		res.lastSeq = seq
		res.frames++
		res.validEnd = cr.n
		expect = seq + 1
	}
}

// peekSeq reads the record sequence number from the head of a payload
// without consuming the record body.
func peekSeq(payload []byte) (uint64, error) {
	dec, err := checkpoint.NewDecoder(bytes.NewReader(payload))
	if err != nil {
		return 0, err
	}
	seq := dec.Uvarint()
	if err := dec.Err(); err != nil {
		return 0, err
	}
	return seq, nil
}

// openSegmentAt opens a segment for appending, discarding everything past
// validEnd (the torn-tail repair) and making the repair durable.
func openSegmentAt(fsys vfs.FS, path string, validEnd int64) (vfs.File, error) {
	f, err := fsys.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(validEnd); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// countingReader tracks the byte offset so scans can report where the last
// valid frame ended.
type countingReader struct {
	r *bufio.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countingReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.n++
	}
	return b, err
}
