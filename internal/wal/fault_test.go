package wal

// Fault-injection tests: the WAL's I/O-failure hardening exercised through
// a vfs.FaultFS. Each test scripts a specific disk fault — a torn append, a
// failed fsync, ENOSPC during segment rotation — and asserts the log's
// contract: a refused commit is never acknowledged, an acknowledged commit
// is never lost, and after the fault clears the log either resumes in
// place (append-safe failures) or resumes via Recover (fsync-gate poison).

import (
	"errors"
	"os"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/vfs"
)

func openFault(t *testing.T, dir string, nextSeq uint64, opts Options) (*Writer, *vfs.FaultFS) {
	t.Helper()
	ffs := vfs.NewFault(vfs.Default)
	opts.FS = ffs
	w, err := Open(dir, nextSeq, opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { w.Close() })
	return w, ffs
}

func appendOne(w *Writer, seq uint64) error {
	return w.Append(seq, func(enc *checkpoint.Encoder) error {
		enc.String("rec")
		enc.Uvarint(seq * 7)
		return enc.Err()
	})
}

// TestAppendTornWriteRepaired: a frame write that persists only a prefix is
// repaired in place — the partial frame is truncated away, the writer stays
// healthy, and retrying the SAME sequence number succeeds. No acknowledged
// record is lost, no refused record appears after replay.
func TestAppendTornWriteRepaired(t *testing.T) {
	dir := t.TempDir()
	w, ffs := openFault(t, dir, 1, Options{Mode: SyncAlways})
	writeRecords(t, w, 1, 3)

	ffs.AddFault(vfs.Fault{Op: vfs.OpWrite, Nth: 1, TornBytes: 5})
	if err := appendOne(w, 4); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("torn append = %v, want ErrInjected", err)
	}
	if w.Sick() != nil {
		t.Fatalf("torn write must stay append-safe, got poison: %v", w.Sick())
	}
	// The refused commit's sequence number was not consumed: the retry
	// carries the same seq and must land on a clean tail.
	if err := appendOne(w, 4); err != nil {
		t.Fatalf("retry after torn write: %v", err)
	}
	writeRecords(t, w, 5, 6)
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	seqs, info := replayAll(t, dir)
	wantSeqs(t, seqs, 1, 6)
	if info.Torn != "" {
		t.Fatalf("tail should be clean after in-place repair, got torn: %s", info.Torn)
	}
}

// TestFsyncGatePoison: a failed fsync poisons the segment — every further
// append refuses with the poison error even though the disk "works" again,
// because a retried fsync on that file could claim durability for pages the
// kernel already dropped. Recover abandons the segment; appends then resume
// on a fresh one with no sequence gap.
func TestFsyncGatePoison(t *testing.T) {
	dir := t.TempDir()
	w, ffs := openFault(t, dir, 1, Options{Mode: SyncAlways})
	writeRecords(t, w, 1, 2)

	ffs.AddFault(vfs.Fault{Op: vfs.OpSync, Err: errors.New("EIO")})
	if err := appendOne(w, 3); err == nil {
		t.Fatal("append with failing fsync must not be acknowledged")
	}
	if w.Sick() == nil {
		t.Fatal("failed fsync must poison the writer")
	}
	// The fault is gone, but the fsync-gate must hold: this file already
	// failed one fsync, so nothing on it may be acknowledged again.
	ffs.ClearFaults()
	if err := appendOne(w, 3); err == nil {
		t.Fatal("append on a poisoned writer must refuse even after the disk recovers")
	}
	if err := w.Recover(); err != nil {
		t.Fatalf("recover after fault cleared: %v", err)
	}
	if w.Sick() != nil {
		t.Fatalf("recover must clear the poison latch, got %v", w.Sick())
	}
	// seq 3 was never acknowledged, so the retry reuses it — on a fresh
	// segment file, not the abandoned one.
	writeRecords(t, w, 3, 5)
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	seqs, _ := replayAll(t, dir)
	wantSeqs(t, seqs, 1, 5)
}

// TestRecoverRefusedWithAckedUnsyncedRecords: under a lax sync policy the
// writer can hold acknowledged records no fsync has covered. If the log is
// then poisoned, in-place recovery must refuse — truncating to the durable
// prefix would silently drop acks — and demand a restart-and-restitch.
func TestRecoverRefusedWithAckedUnsyncedRecords(t *testing.T) {
	dir := t.TempDir()
	w, ffs := openFault(t, dir, 1, Options{Mode: SyncNone})
	writeRecords(t, w, 1, 3) // acknowledged, never fsynced

	ffs.AddFault(vfs.Fault{Op: vfs.OpSync, Err: errors.New("EIO")})
	if err := w.Sync(); err == nil {
		t.Fatal("explicit sync must report the injected failure")
	}
	ffs.ClearFaults()
	if err := w.Recover(); err == nil {
		t.Fatal("recover must refuse while acknowledged records are unsynced")
	}
	if w.Sick() == nil {
		t.Fatal("writer must stay poisoned after a refused recover")
	}
}

// TestENOSPCDuringRotation: the disk fills exactly when the log needs a new
// segment. The previous segment was sealed (its records are safe), the new
// segment cannot be created, and the commit is refused cleanly — the log
// stays append-safe, and once space returns the same sequence number
// retries onto a fresh segment. No record-less litter survives.
func TestENOSPCDuringRotation(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: the second record already triggers rotation.
	w, ffs := openFault(t, dir, 1, Options{Mode: SyncAlways, SegmentBytes: 1})
	writeRecords(t, w, 1, 2)

	ffs.AddFault(vfs.Fault{Op: vfs.OpCreate, Path: "wal-", Err: vfs.ErrNoSpace})
	err := appendOne(w, 3)
	if !errors.Is(err, vfs.ErrNoSpace) {
		t.Fatalf("rotation under ENOSPC = %v, want ErrNoSpace", err)
	}
	if w.Sick() != nil {
		t.Fatalf("failed rotation must stay append-safe, got poison: %v", w.Sick())
	}
	// Still failing: every retry refuses, never acks.
	if err := appendOne(w, 3); !errors.Is(err, vfs.ErrNoSpace) {
		t.Fatalf("second rotation attempt = %v, want ErrNoSpace", err)
	}
	ffs.ClearFaults()
	if err := appendOne(w, 3); err != nil {
		t.Fatalf("retry after space freed: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	seqs, _ := replayAll(t, dir)
	wantSeqs(t, seqs, 1, 3)
}

// TestENOSPCWritingSegmentHeader: rotation creates the file but the header
// write hits ENOSPC. The aborted segment must be removed (left behind it
// would shadow the real tail and collide with the retry's O_EXCL create),
// the commit refused, and the retry succeed once space returns.
func TestENOSPCWritingSegmentHeader(t *testing.T) {
	dir := t.TempDir()
	w, ffs := openFault(t, dir, 1, Options{Mode: SyncAlways, SegmentBytes: 1})
	writeRecords(t, w, 1, 2)

	// The next write to a segment file is the new segment's header.
	ffs.AddFault(vfs.Fault{Op: vfs.OpWrite, Path: "wal-", Nth: 1, Err: vfs.ErrNoSpace})
	if err := appendOne(w, 3); !errors.Is(err, vfs.ErrNoSpace) {
		t.Fatalf("header write under ENOSPC = %v, want ErrNoSpace", err)
	}
	if w.Sick() != nil {
		t.Fatalf("aborted rotation must stay append-safe, got poison: %v", w.Sick())
	}
	if err := appendOne(w, 3); err != nil {
		t.Fatalf("retry after transient header ENOSPC: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	seqs, _ := replayAll(t, dir)
	wantSeqs(t, seqs, 1, 3)
}

// TestOpenTrimsRecordlessTailSegments: a crash (or failed cleanup) can
// leave the log's tail holding segment files with a header but no records.
// Open must trim them — they shadow the real tail and hold no acknowledged
// data — and resume appending where the acknowledged log ends, instead of
// discarding the entire history (the bug this guards against).
func TestOpenTrimsRecordlessTailSegments(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, 1, Options{Mode: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	writeRecords(t, w, 1, 4)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash artifact: the next segment was created (full
	// header, then a torn partial header on a second one) but no record
	// ever reached either.
	writeHeaderOnly := func(firstSeq uint64, torn bool) {
		f, err := os.Create(dir + "/" + segmentName(firstSeq))
		if err != nil {
			t.Fatal(err)
		}
		hdr := []byte(segMagic)
		hdr = append(hdr, FormatVersion)
		hdr = append(hdr, byte(firstSeq))
		if torn {
			hdr = hdr[:len(segMagic)+1]
		}
		if _, err := f.Write(hdr); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	writeHeaderOnly(5, false)
	writeHeaderOnly(6, true)

	w2, err := Open(dir, 5, Options{Mode: SyncAlways})
	if err != nil {
		t.Fatalf("open over record-less tail segments: %v", err)
	}
	writeRecords(t, w2, 5, 6)
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, info := replayAll(t, dir)
	wantSeqs(t, seqs, 1, 6)
	if info.Torn != "" {
		t.Fatalf("log should be clean after trim, got torn: %s", info.Torn)
	}
}

// TestSyncAlwaysRetryKeepsContiguity: regression for the ack/rollback
// ordering — a failed SyncAlways fsync must leave the sequence number
// unconsumed so the engine's retry of the same seq is not rejected as
// non-contiguous.
func TestSyncAlwaysRetryKeepsContiguity(t *testing.T) {
	dir := t.TempDir()
	w, ffs := openFault(t, dir, 1, Options{Mode: SyncAlways})
	writeRecords(t, w, 1, 1)

	ffs.AddFault(vfs.Fault{Op: vfs.OpSync, Nth: 1})
	if err := appendOne(w, 2); err == nil {
		t.Fatal("append must fail when its fsync fails")
	}
	ffs.ClearFaults()
	if err := w.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	// The engine retries the same sequence number; before the fix the
	// writer had already advanced lastSeq and refused this as a duplicate.
	if err := appendOne(w, 2); err != nil {
		t.Fatalf("same-seq retry after recover: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, _ := replayAll(t, dir)
	wantSeqs(t, seqs, 1, 2)
}
