package exec

import (
	"bytes"
	"fmt"

	"repro/internal/plan"
	"repro/internal/tvr"
	"repro/internal/types"
)

// Two-stage (partial/final) aggregation: the classic combiner rewrite that
// parallelizes a GROUP BY whose keys do not preserve the inherited hash
// routing. A partialAggOp runs at the top of every partition chain,
// accumulating per-group partial states keyed by the *new* group columns; on
// every input change it emits one partial-update event — a state snapshot,
// not a retraction pair — tagged with the causing delivery's sequence number.
// The merge stage reassembles the snapshots in global sequence order (= the
// serial driver's input order) and the finalAggOp in the serial tail replaces
// the originating partition's contribution and re-derives the group's output
// row with the serial aggregate's exact retract/emit/suppress behavior.
//
// The contract that keeps the merged output byte-identical to serial
// execution (see plan.twoStageEligible and accumulator.appendPartial):
//
//  1. Every accumulator state merges *exactly*: combining the per-partition
//     partial states reproduces the serial accumulator's value after any
//     input prefix (integer sums add associatively; MIN/MAX communicate the
//     partition extremum over a partition-local retraction-correct multiset).
//  2. Each data delivery is processed by exactly one partition and yields
//     exactly one partial update (the group's live-row count changes on
//     every data event), so final-stage state transitions are in bijection
//     with the serial aggregate's.
//  3. Routing keeps each partition's input a sub-bag of the global input
//     (inherited hash constraint, or full-row hashing when there is none),
//     so a retraction always lands where the matching insert did.
//
// Partial-update row layout: [group keys..., live-row count n, per-call
// state...] with per-call widths given by partialStateWidth.

// partialAggOp is the per-partition half of a two-stage aggregate.
type partialAggOp struct {
	out  sink
	keys []plan.Scalar
	aggs []plan.AggCall

	eventKeys []eventKey
	groups    map[string]*partialGroup
	order     []string
	wm        types.Time
	lateDrop  int
	freed     int
	keyBuf    []byte
	rowWidth  int

	// Run cache + scratch, mirroring aggOp: consecutive same-key events skip
	// the map probe, and the key-evaluation row is reused. Groups are never
	// removed from the map, so the cached pointer stays valid.
	prevKey    []byte
	runGroup   *partialGroup
	runValid   bool
	keyScratch types.Row
	pend       []tvr.Event // per-dispatch output buffer, flushed once
}

type partialGroup struct {
	keyRow types.Row
	accs   []accumulator
	n      int
	dead   bool
}

func newPartialAggOp(x *plan.Aggregate, out sink) (*partialAggOp, error) {
	p := &partialAggOp{
		out:    out,
		keys:   x.Keys,
		aggs:   x.Aggs,
		groups: make(map[string]*partialGroup),
		wm:     types.MinTime,
	}
	p.rowWidth = len(x.Keys) + 1
	for _, call := range x.Aggs {
		if _, ok := newAccumulator(call).(partialCarrier); !ok {
			return nil, fmt.Errorf("exec: aggregate %s has no partial/final form", call.Describe())
		}
		p.rowWidth += partialStateWidth(call.Kind)
	}
	p.eventKeys = eventKeysOf(x)
	return p, nil
}

// complete applies the shared completion rule for the partial stage's
// watermark policy.
func (p *partialAggOp) complete(keyRow types.Row, wm types.Time) bool {
	return groupComplete(p.eventKeys, keyRow, wm)
}

func (p *partialAggOp) Push(ev tvr.Event) error {
	p.pend = p.pend[:0]
	if err := p.pushEvent(ev); err != nil {
		return err
	}
	return pushBatch(p.out, p.pend)
}

// PushBatch implements batchSink, mirroring aggOp: group updates for the
// whole batch, one downstream dispatch for the snapshots.
func (p *partialAggOp) PushBatch(evs []tvr.Event) error {
	p.pend = p.pend[:0]
	for i := range evs {
		if err := p.pushEvent(evs[i]); err != nil {
			return err
		}
	}
	return pushBatch(p.out, p.pend)
}

func (p *partialAggOp) pushEvent(ev tvr.Event) error {
	switch ev.Kind {
	case tvr.Watermark:
		return p.onWatermark(ev)
	case tvr.Heartbeat:
		p.pend = append(p.pend, ev)
		return nil
	}

	if p.keyScratch == nil && len(p.keys) > 0 {
		p.keyScratch = make(types.Row, len(p.keys))
	}
	keyRow := p.keyScratch[:len(p.keys)]
	for i, k := range p.keys {
		v, err := k.Eval(ev.Row)
		if err != nil {
			return err
		}
		keyRow[i] = v
	}
	p.keyBuf = keyRow.AppendKey(p.keyBuf[:0])
	g := p.runGroup
	if !p.runValid || !bytes.Equal(p.keyBuf, p.prevKey) {
		var ok bool
		g, ok = p.groups[string(p.keyBuf)]
		if !ok {
			if p.complete(keyRow, p.wm) {
				p.lateDrop++
				return nil
			}
			g = &partialGroup{keyRow: keyRow.Clone(), accs: make([]accumulator, len(p.aggs))}
			for i, call := range p.aggs {
				g.accs[i] = newAccumulator(call)
			}
			gk := string(p.keyBuf)
			p.groups[gk] = g
			p.order = append(p.order, gk)
		}
		p.prevKey = append(p.prevKey[:0], p.keyBuf...)
		p.runGroup = g
		p.runValid = true
	}
	if g.dead {
		p.lateDrop++
		return nil
	}

	delta := 1
	if ev.Kind == tvr.Delete {
		delta = -1
	}
	g.n += delta
	if g.n < 0 {
		// Sub-bag routing makes this exactly the serial underflow case.
		return fmt.Errorf("exec: aggregate retraction underflow for group %s", keyRow)
	}
	for i, acc := range g.accs {
		var arg types.Value
		if p.aggs[i].Arg != nil {
			v, err := p.aggs[i].Arg.Eval(ev.Row)
			if err != nil {
				return err
			}
			arg = v
		}
		if err := acc.update(arg, delta); err != nil {
			return err
		}
	}

	// One state snapshot per data delivery; the rows are fresh allocations,
	// so the final stage may retain them without cloning.
	row := make(types.Row, 0, p.rowWidth)
	row = append(row, g.keyRow...)
	row = append(row, types.NewInt(int64(g.n)))
	for _, acc := range g.accs {
		row = acc.(partialCarrier).appendPartial(row)
	}
	p.pend = append(p.pend, tvr.Event{Ptime: ev.Ptime, Kind: tvr.Insert, Row: row})
	return nil
}

// onWatermark mirrors the serial aggregate: advance, free complete groups,
// forward (via the pending buffer). The final stage performs the same
// completion on the merged watermark, so late input is dropped here — before
// it can reach the tail — exactly when the serial aggregate would drop it.
func (p *partialAggOp) onWatermark(ev tvr.Event) error {
	if ev.Wm <= p.wm {
		return nil
	}
	p.wm = ev.Wm
	if len(p.eventKeys) > 0 {
		for _, gk := range p.order {
			g := p.groups[gk]
			if g == nil || g.dead {
				continue
			}
			if p.complete(g.keyRow, p.wm) {
				g.accs = nil
				g.dead = true
				p.freed++
			}
		}
	}
	p.pend = append(p.pend, ev)
	return nil
}

func (p *partialAggOp) Finish() error { return p.out.Finish() }

func (p *partialAggOp) stats(s *Stats) {
	live := 0
	for _, g := range p.groups {
		if !g.dead {
			live++
			s.StateRows += g.n
		}
	}
	s.StateGroups += live
	s.LateDropped += p.lateDrop
	s.FreedGroups += p.freed
}

// finalAggOp is the serial-tail half of a two-stage aggregate. It receives
// partial-update snapshots through the exchange (PushPartial carries the
// originating partition), replaces that partition's stored contribution, and
// re-emits the merged group row with the serial aggregate's retract/emit/
// suppress semantics. Control events arrive through the ordinary sink Push.
type finalAggOp struct {
	out   sink
	aggs  []plan.AggCall
	nKeys int
	parts int
	// widths/offsets of each call's state inside the snapshot suffix
	// (after the live-row count column).
	offs   []int
	global bool

	eventKeys []eventKey
	groups    map[string]*finalGroup
	order     []string
	wm        types.Time
	lateDrop  int
	freed     int
	keyBuf    []byte
}

type finalGroup struct {
	keyRow types.Row
	snaps  []types.Row // per-partition snapshot suffix [n, states...]; nil = none yet
	outRow types.Row
	dead   bool
}

func newFinalAggOp(x *plan.Aggregate, parts int, out sink) *finalAggOp {
	f := &finalAggOp{
		out:    out,
		aggs:   x.Aggs,
		nKeys:  len(x.Keys),
		parts:  parts,
		global: x.Global(),
		groups: make(map[string]*finalGroup),
		wm:     types.MinTime,
	}
	off := 1 // snapshot suffix starts with the live-row count
	for _, call := range x.Aggs {
		f.offs = append(f.offs, off)
		off += partialStateWidth(call.Kind)
	}
	f.eventKeys = eventKeysOf(x)
	return f
}

// Open emits the initial row of a global aggregate, exactly as the serial
// operator does: SQL gives a keyless aggregation one row even over empty
// input. The partial stages stay silent at open so the row appears once.
func (f *finalAggOp) Open() error {
	if !f.global {
		return nil
	}
	g := f.newGroup(types.Row{})
	f.groups[""] = g
	f.order = append(f.order, "")
	return f.reemit(g, types.MinTime)
}

func (f *finalAggOp) newGroup(keyRow types.Row) *finalGroup {
	return &finalGroup{keyRow: keyRow.Clone(), snaps: make([]types.Row, f.parts)}
}

func (f *finalAggOp) complete(keyRow types.Row, wm types.Time) bool {
	return groupComplete(f.eventKeys, keyRow, wm)
}

// Push handles control events; data events must arrive via PushPartial.
func (f *finalAggOp) Push(ev tvr.Event) error {
	switch ev.Kind {
	case tvr.Watermark:
		return f.onWatermark(ev)
	case tvr.Heartbeat:
		return f.out.Push(ev)
	default:
		return fmt.Errorf("exec: internal: final aggregate received a data event without partition origin")
	}
}

// PushPartial folds one partition's state snapshot into the merged group.
func (f *finalAggOp) PushPartial(part int, ev tvr.Event) error {
	keyRow := ev.Row[:f.nKeys]
	snap := ev.Row[f.nKeys:]
	f.keyBuf = keyRow.AppendKey(f.keyBuf[:0])
	g, ok := f.groups[string(f.keyBuf)]
	if ok && g.dead {
		// Partials drop late data before it reaches the exchange; keep the
		// defensive parity anyway.
		f.lateDrop++
		return nil
	}
	if !ok {
		g = f.newGroup(keyRow)
		gk := string(f.keyBuf)
		f.groups[gk] = g
		f.order = append(f.order, gk)
	}
	g.snaps[part] = snap
	return f.reemit(g, ev.Ptime)
}

// liveRows sums the per-partition live-row counts.
func (g *finalGroup) liveRows() int64 {
	var n int64
	for _, s := range g.snaps {
		if s != nil {
			n += s[0].Int()
		}
	}
	return n
}

// combine merges one call's per-partition states into its output value.
func (f *finalAggOp) combine(ci int, g *finalGroup) (types.Value, error) {
	call := f.aggs[ci]
	off := f.offs[ci]
	switch call.Kind {
	case plan.AggCountStar, plan.AggCount:
		var n int64
		for _, s := range g.snaps {
			if s != nil {
				n += s[off].Int()
			}
		}
		return types.NewInt(n), nil

	case plan.AggSum:
		var sumI int64
		var sumF float64
		var n int64
		exact := true
		for _, s := range g.snaps {
			if s == nil {
				continue
			}
			n += s[off+1].Int()
			switch s[off].Kind() {
			case types.KindInt64:
				sumI += s[off].Int()
			case types.KindInterval:
				sumI += int64(s[off].Interval())
			default:
				exact = false
				sumF += s[off].AsFloat()
			}
		}
		if n == 0 {
			return types.Null(), nil
		}
		switch {
		case call.K == types.KindInterval:
			return types.NewInterval(types.Duration(sumI)), nil
		case exact:
			return types.NewInt(sumI), nil
		default:
			return types.NewFloat(sumF + float64(sumI)), nil
		}

	case plan.AggAvg:
		var sumI int64
		var sumF float64
		var n int64
		exact := true
		for _, s := range g.snaps {
			if s == nil {
				continue
			}
			n += s[off+1].Int()
			if s[off].Kind() == types.KindInt64 {
				sumI += s[off].Int()
			} else {
				exact = false
				sumF += s[off].AsFloat()
			}
		}
		if n == 0 {
			return types.Null(), nil
		}
		if exact {
			return types.NewFloat(float64(sumI) / float64(n)), nil
		}
		return types.NewFloat((sumF + float64(sumI)) / float64(n)), nil

	case plan.AggMin, plan.AggMax:
		best := types.Null()
		for _, s := range g.snaps {
			if s == nil || s[off+1].Int() == 0 {
				continue
			}
			v := s[off]
			if best.IsNull() {
				best = v
				continue
			}
			c, err := v.Compare(best)
			if err != nil {
				return types.Null(), err
			}
			if (call.Kind == plan.AggMin && c < 0) || (call.Kind == plan.AggMax && c > 0) {
				best = v
			}
		}
		return best, nil

	default:
		return types.Null(), fmt.Errorf("exec: aggregate %s has no partial/final form", call.Describe())
	}
}

// reemit mirrors aggOp.reemit over the merged state: retract the previous
// output row, emit the new one, suppress when unchanged.
func (f *finalAggOp) reemit(g *finalGroup, p types.Time) error {
	var row types.Row
	if g.liveRows() > 0 || f.global {
		row = make(types.Row, 0, len(g.keyRow)+len(f.aggs))
		row = append(row, g.keyRow...)
		for ci := range f.aggs {
			v, err := f.combine(ci, g)
			if err != nil {
				return err
			}
			row = append(row, v)
		}
	}
	if g.outRow != nil && row != nil && g.outRow.Equal(row) {
		return nil
	}
	if g.outRow != nil {
		if err := f.out.Push(tvr.DeleteEvent(p, g.outRow)); err != nil {
			return err
		}
		g.outRow = nil
	}
	if row == nil {
		return nil
	}
	g.outRow = row
	return f.out.Push(tvr.InsertEvent(p, row))
}

func (f *finalAggOp) onWatermark(ev tvr.Event) error {
	if ev.Wm <= f.wm {
		return nil
	}
	f.wm = ev.Wm
	if len(f.eventKeys) > 0 {
		for _, gk := range f.order {
			g := f.groups[gk]
			if g == nil || g.dead {
				continue
			}
			if f.complete(g.keyRow, f.wm) {
				g.snaps = nil
				g.dead = true
				f.freed++
			}
		}
	}
	return f.out.Push(ev)
}

func (f *finalAggOp) Finish() error { return f.out.Finish() }

func (f *finalAggOp) stats(s *Stats) {
	live := 0
	for _, g := range f.groups {
		if !g.dead {
			live++
			s.StateRows += int(g.liveRows())
		}
	}
	s.StateGroups += live
	s.LateDropped += f.lateDrop
	s.FreedGroups += f.freed
}
