package exec

// Checkpoint round-trips for every stateful operator in isolation: each
// operator is driven halfway through an input sequence, serialized, restored
// into a fresh instance, and both copies are driven through the rest of the
// sequence — the restored copy's emissions (and its re-serialized state)
// must match the original's exactly. These tests construct operators
// directly, so a bug is pinned to one operator's SaveState/LoadState rather
// than surfacing as a whole-pipeline divergence.

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/plan"
	"repro/internal/sqlparser"
	"repro/internal/tvr"
	"repro/internal/types"
)

// memSink records pushed events.
type memSink struct {
	evs      []tvr.Event
	finished bool
}

func (m *memSink) Push(ev tvr.Event) error { m.evs = append(m.evs, ev); return nil }
func (m *memSink) Finish() error           { m.finished = true; return nil }

func (m *memSink) render() []string {
	out := make([]string, len(m.evs))
	for i, ev := range m.evs {
		out[i] = ev.String()
	}
	return out
}

// saverRoundTrip serializes src's state and loads it into dst.
func saverRoundTrip(t *testing.T, src, dst stateSaver) {
	t.Helper()
	var buf bytes.Buffer
	enc := checkpoint.NewEncoder(&buf)
	src.SaveState(enc)
	if err := enc.Close(); err != nil {
		t.Fatalf("save: %v", err)
	}
	dec, err := checkpoint.NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.LoadState(dec); err != nil {
		t.Fatalf("load: %v", err)
	}
	if err := dec.Close(); err != nil {
		t.Fatalf("trailer: %v", err)
	}
}

// encodeState returns an operator state's canonical bytes (for equality
// checks between original and restored copies after further input).
func encodeState(t *testing.T, s stateSaver) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := checkpoint.NewEncoder(&buf)
	s.SaveState(enc)
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// opRoundTrip drives the operator-pair experiment: feed prefix into the
// original, snapshot/restore into a fresh copy, feed suffix into both, and
// require identical suffix emissions and identical final state bytes.
func opRoundTrip(t *testing.T, label string, mk func(out sink) stateSaver, prefix, suffix []tvr.Event) {
	t.Helper()
	origOut := &memSink{}
	orig := mk(origOut)
	push := func(op stateSaver, evs []tvr.Event) {
		t.Helper()
		for _, ev := range evs {
			if err := op.(sink).Push(ev); err != nil {
				t.Fatalf("%s: push %s: %v", label, ev, err)
			}
		}
	}
	push(orig, prefix)
	restoredOut := &memSink{}
	restored := mk(restoredOut)
	saverRoundTrip(t, orig, restored)

	markOrig := len(origOut.evs)
	push(orig, suffix)
	push(restored, suffix)
	gotOrig := origOut.render()[markOrig:]
	gotRestored := restoredOut.render()
	if len(gotOrig) != len(gotRestored) {
		t.Fatalf("%s: restored emitted %d events, original %d\nrestored: %v\noriginal: %v",
			label, len(gotRestored), len(gotOrig), gotRestored, gotOrig)
	}
	for i := range gotOrig {
		if gotOrig[i] != gotRestored[i] {
			t.Fatalf("%s: suffix emission %d: restored %s, original %s", label, i, gotRestored[i], gotOrig[i])
		}
	}
	if a, b := encodeState(t, orig), encodeState(t, restored); !bytes.Equal(a, b) {
		t.Fatalf("%s: final states diverge after identical suffix input", label)
	}
}

func ints(vs ...int64) types.Row {
	r := make(types.Row, len(vs))
	for i, v := range vs {
		r[i] = types.NewInt(v)
	}
	return r
}

func TestScanOpRoundTrip(t *testing.T) {
	opRoundTrip(t, "scan",
		func(out sink) stateSaver { return &scanOp{out: out, bounded: true} },
		[]tvr.Event{tvr.InsertEvent(1, ints(1)), tvr.InsertEvent(5, ints(2))},
		[]tvr.Event{tvr.InsertEvent(9, ints(3))})
}

func TestDistinctOpRoundTrip(t *testing.T) {
	opRoundTrip(t, "distinct",
		func(out sink) stateSaver { return &distinctOp{out: out, counts: make(map[string]*rowCount)} },
		[]tvr.Event{
			tvr.InsertEvent(1, ints(7)), tvr.InsertEvent(2, ints(7)),
			tvr.InsertEvent(3, ints(8)), tvr.DeleteEvent(4, ints(8)),
		},
		[]tvr.Event{
			tvr.DeleteEvent(5, ints(7)), tvr.DeleteEvent(6, ints(7)), // 7 leaves the output here
			tvr.InsertEvent(7, ints(8)), // 8 re-enters
		})
}

func TestSetOpRoundTrip(t *testing.T) {
	for _, cfg := range []struct {
		name string
		op   sqlparser.SetOpKind
		all  bool
	}{
		{"intersect-all", sqlparser.Intersect, true},
		{"intersect", sqlparser.Intersect, false},
		{"except-all", sqlparser.Except, true},
		{"except", sqlparser.Except, false},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			// Drive both ports: prefix loads each side asymmetrically,
			// suffix flips multiplicities across the output threshold.
			origOut := &memSink{}
			a := newSetOp(&plan.SetOp{Op: cfg.op, All: cfg.all}, origOut)
			prefix := func(s *setOp) {
				for _, ev := range []tvr.Event{tvr.InsertEvent(1, ints(1)), tvr.InsertEvent(2, ints(1)), tvr.InsertEvent(3, ints(2))} {
					if err := s.leftPort().Push(ev); err != nil {
						t.Fatal(err)
					}
				}
				if err := s.rightPort().Push(tvr.InsertEvent(4, ints(1))); err != nil {
					t.Fatal(err)
				}
			}
			prefix(a)
			restoredOut := &memSink{}
			b := newSetOp(&plan.SetOp{Op: cfg.op, All: cfg.all}, restoredOut)
			saverRoundTrip(t, a, b)
			mark := len(origOut.evs)
			suffix := func(s *setOp) {
				if err := s.rightPort().Push(tvr.InsertEvent(5, ints(2))); err != nil {
					t.Fatal(err)
				}
				if err := s.leftPort().Push(tvr.DeleteEvent(6, ints(1))); err != nil {
					t.Fatal(err)
				}
				if err := s.leftPort().Push(tvr.WatermarkEvent(7, 100)); err != nil {
					t.Fatal(err)
				}
				if err := s.rightPort().Push(tvr.WatermarkEvent(8, 200)); err != nil {
					t.Fatal(err)
				}
			}
			suffix(a)
			suffix(b)
			gotA := origOut.render()[mark:]
			gotB := restoredOut.render()
			if fmt.Sprint(gotA) != fmt.Sprint(gotB) {
				t.Fatalf("suffix emissions differ:\noriginal: %v\nrestored: %v", gotA, gotB)
			}
			if !bytes.Equal(encodeState(t, a), encodeState(t, b)) {
				t.Fatal("final states diverge")
			}
		})
	}
}

// joinPlan builds a two-scan equi-join node for direct joinOp construction.
func joinPlan(kind sqlparser.JoinKind) *plan.Join {
	sch := types.NewSchema(
		types.Column{Name: "k", Kind: types.KindInt64},
		types.Column{Name: "v", Kind: types.KindInt64},
	)
	left := &plan.Scan{Name: "l", Sch: sch}
	right := &plan.Scan{Name: "r", Sch: sch}
	return &plan.Join{
		Left: left, Right: right, Kind: kind,
		LeftKeys: []int{0}, RightKeys: []int{0},
		Sch: sch.Concat(sch),
	}
}

func TestJoinOpRoundTrip(t *testing.T) {
	for _, kind := range []sqlparser.JoinKind{sqlparser.InnerJoin, sqlparser.LeftJoin, sqlparser.FullJoin} {
		t.Run(fmt.Sprint(kind), func(t *testing.T) {
			node := joinPlan(kind)
			origOut := &memSink{}
			a := newJoinOp(node, origOut)
			feedPrefix := func(j *joinOp) {
				for _, ev := range []tvr.Event{tvr.InsertEvent(1, ints(1, 10)), tvr.InsertEvent(2, ints(2, 20))} {
					if err := j.leftPort().Push(ev); err != nil {
						t.Fatal(err)
					}
				}
				if err := j.rightPort().Push(tvr.InsertEvent(3, ints(1, 100))); err != nil {
					t.Fatal(err)
				}
			}
			feedPrefix(a)
			restoredOut := &memSink{}
			b := newJoinOp(node, restoredOut)
			saverRoundTrip(t, a, b)
			mark := len(origOut.evs)
			feedSuffix := func(j *joinOp) {
				// New matches on both sides, a retraction, and an unmatched
				// row transition (exercises outer-join match counting).
				if err := j.rightPort().Push(tvr.InsertEvent(4, ints(2, 200))); err != nil {
					t.Fatal(err)
				}
				if err := j.leftPort().Push(tvr.DeleteEvent(5, ints(1, 10))); err != nil {
					t.Fatal(err)
				}
				if err := j.rightPort().Push(tvr.InsertEvent(6, ints(1, 101))); err != nil {
					t.Fatal(err)
				}
			}
			feedSuffix(a)
			feedSuffix(b)
			gotA := origOut.render()[mark:]
			gotB := restoredOut.render()
			if fmt.Sprint(gotA) != fmt.Sprint(gotB) {
				t.Fatalf("suffix emissions differ:\noriginal: %v\nrestored: %v", gotA, gotB)
			}
			if !bytes.Equal(encodeState(t, a), encodeState(t, b)) {
				t.Fatal("final states diverge")
			}
		})
	}
}

// sessionWindowNode builds a SESSION window TVF over (v BIGINT, t TIMESTAMP).
func sessionWindowNode() *plan.WindowTVF {
	in := types.NewSchema(
		types.Column{Name: "v", Kind: types.KindInt64},
		types.Column{Name: "t", Kind: types.KindTimestamp, EventTime: true},
	)
	return &plan.WindowTVF{
		Input: &plan.Scan{Name: "s", Sch: in}, Fn: plan.SessionFn,
		TimeIdx: 1, Gap: 10 * types.Second,
		Sch: in, // output schema unused by the operator's state logic
	}
}

func tsRow(v int64, at types.Time) types.Row {
	return types.Row{types.NewInt(v), types.NewTimestamp(at)}
}

func TestSessionWindowOpRoundTrip(t *testing.T) {
	node := sessionWindowNode()
	opRoundTrip(t, "session-window",
		func(out sink) stateSaver { return newWindowOp(node, out) },
		[]tvr.Event{
			tvr.InsertEvent(1, tsRow(1, 1000)),
			tvr.InsertEvent(2, tsRow(2, 5000)),
			tvr.InsertEvent(3, tsRow(3, 30000)),
			tvr.DeleteEvent(4, tsRow(2, 5000)), // retraction reshapes session 1
		},
		[]tvr.Event{
			// A bridging timestamp merges the two sessions — the heaviest
			// retract/re-emit cascade the operator has.
			tvr.InsertEvent(5, tsRow(4, 18000)),
			tvr.InsertEvent(6, tsRow(5, 5000)), // re-insert of a vacated timestamp
		})
}

// aggNode builds GROUP BY k over (k BIGINT, v BIGINT) with every mergeable
// accumulator plus DISTINCT variants.
func aggNode(withEventTime bool) *plan.Aggregate {
	cols := []types.Column{
		{Name: "k", Kind: types.KindInt64},
		{Name: "v", Kind: types.KindInt64},
	}
	if withEventTime {
		cols[0] = types.Column{Name: "k", Kind: types.KindTimestamp, EventTime: true}
	}
	in := types.NewSchema(cols...)
	key := &plan.ColRef{Idx: 0, K: cols[0].Kind}
	arg := &plan.ColRef{Idx: 1, K: types.KindInt64}
	outCols := []types.Column{
		cols[0],
		{Name: "c", Kind: types.KindInt64},
		{Name: "s", Kind: types.KindInt64},
		{Name: "a", Kind: types.KindFloat64},
		{Name: "mn", Kind: types.KindInt64},
		{Name: "mx", Kind: types.KindInt64},
		{Name: "dc", Kind: types.KindInt64},
	}
	return &plan.Aggregate{
		Input: &plan.Scan{Name: "s", Sch: in},
		Keys:  []plan.Scalar{key},
		Aggs: []plan.AggCall{
			{Kind: plan.AggCountStar, K: types.KindInt64},
			{Kind: plan.AggSum, Arg: arg, K: types.KindInt64},
			{Kind: plan.AggAvg, Arg: arg, K: types.KindFloat64},
			{Kind: plan.AggMin, Arg: arg, K: types.KindInt64},
			{Kind: plan.AggMax, Arg: arg, K: types.KindInt64},
			{Kind: plan.AggCount, Arg: arg, Distinct: true, K: types.KindInt64},
		},
		Sch: types.NewSchema(outCols...),
	}
}

func TestAggOpRoundTrip(t *testing.T) {
	node := aggNode(false)
	opRoundTrip(t, "agg",
		func(out sink) stateSaver { return newAggOp(node, out) },
		[]tvr.Event{
			tvr.InsertEvent(1, ints(1, 10)),
			tvr.InsertEvent(2, ints(1, 30)),
			tvr.InsertEvent(3, ints(2, 5)),
			tvr.DeleteEvent(4, ints(1, 30)), // MAX retraction: lazy extremum recompute state
		},
		[]tvr.Event{
			tvr.InsertEvent(5, ints(1, 10)), // duplicate: DISTINCT count unchanged
			tvr.InsertEvent(6, ints(2, 50)),
			tvr.DeleteEvent(7, ints(2, 5)),
			tvr.DeleteEvent(8, ints(2, 50)), // group 2 empties: output row retracted
		})
}

// TestAggOpWatermarkRoundTrip covers the dead-group (watermark-completed)
// path: completed groups keep dropping late data after a restore.
func TestAggOpWatermarkRoundTrip(t *testing.T) {
	node := aggNode(true)
	tsk := func(at types.Time, v int64) types.Row {
		return types.Row{types.NewTimestamp(at), types.NewInt(v)}
	}
	opRoundTrip(t, "agg-watermark",
		func(out sink) stateSaver { return newAggOp(node, out) },
		[]tvr.Event{
			tvr.InsertEvent(1, tsk(1000, 10)),
			tvr.InsertEvent(2, tsk(60000, 20)),
			tvr.WatermarkEvent(3, 30000), // completes (and frees) group 1000
		},
		[]tvr.Event{
			tvr.InsertEvent(4, tsk(1000, 99)),  // late: must be dropped post-restore
			tvr.InsertEvent(5, tsk(60000, 25)), // live group keeps accumulating
			tvr.WatermarkEvent(6, 90000),       // completes group 60000
			tvr.InsertEvent(7, tsk(60000, 1)),  // late for the newly dead group
		})
}

// twoStageAggNode is aggNode without the DISTINCT call (DISTINCT aggregates
// have no partial/final form — plan.twoStageEligible keeps them serial).
func twoStageAggNode() *plan.Aggregate {
	node := aggNode(false)
	node.Aggs = node.Aggs[:len(node.Aggs)-1]
	node.Sch = types.NewSchema(node.Sch.Cols[:len(node.Sch.Cols)-1]...)
	return node
}

func TestPartialAggOpRoundTrip(t *testing.T) {
	node := twoStageAggNode()
	opRoundTrip(t, "partial-agg",
		func(out sink) stateSaver {
			p, err := newPartialAggOp(node, out)
			if err != nil {
				t.Fatal(err)
			}
			return p
		},
		[]tvr.Event{tvr.InsertEvent(1, ints(1, 10)), tvr.InsertEvent(2, ints(2, 7))},
		[]tvr.Event{tvr.DeleteEvent(3, ints(1, 10)), tvr.InsertEvent(4, ints(2, 9))})
}

func TestFinalAggOpRoundTrip(t *testing.T) {
	node := twoStageAggNode()
	// Build matching partials to produce genuine snapshot rows.
	mkSnap := func(part int, evs ...tvr.Event) []tvr.Event {
		sink := &memSink{}
		p, err := newPartialAggOp(node, sink)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range evs {
			if err := p.Push(ev); err != nil {
				t.Fatal(err)
			}
		}
		return sink.evs
	}
	snapsP0 := mkSnap(0, tvr.InsertEvent(1, ints(1, 10)), tvr.InsertEvent(2, ints(1, 30)))
	snapsP1 := mkSnap(1, tvr.InsertEvent(3, ints(1, 5)))

	origOut := &memSink{}
	a := newFinalAggOp(node, 2, origOut)
	if err := a.Open(); err != nil {
		t.Fatal(err)
	}
	if err := a.PushPartial(0, snapsP0[0]); err != nil {
		t.Fatal(err)
	}
	if err := a.PushPartial(1, snapsP1[0]); err != nil {
		t.Fatal(err)
	}
	restoredOut := &memSink{}
	b := newFinalAggOp(node, 2, restoredOut)
	// NOTE: restore path never calls Open — LoadState replaces the groups.
	saverRoundTrip(t, a, b)
	mark := len(origOut.evs)
	for _, f := range []*finalAggOp{a, b} {
		if err := f.PushPartial(0, snapsP0[1]); err != nil {
			t.Fatal(err)
		}
		if err := f.Push(tvr.WatermarkEvent(5, 500)); err != nil {
			t.Fatal(err)
		}
	}
	gotA := origOut.render()[mark:]
	gotB := restoredOut.render()
	if fmt.Sprint(gotA) != fmt.Sprint(gotB) {
		t.Fatalf("suffix emissions differ:\noriginal: %v\nrestored: %v", gotA, gotB)
	}
	if !bytes.Equal(encodeState(t, a), encodeState(t, b)) {
		t.Fatal("final states diverge")
	}
}

// wmSchema is an output schema with one windowed event-time column, so the
// EMIT operators group by it.
func wmSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "wend", Kind: types.KindTimestamp, EventTime: true, Windowed: true},
		types.Column{Name: "v", Kind: types.KindInt64},
	)
}

func wRow(wend types.Time, v int64) types.Row {
	return types.Row{types.NewTimestamp(wend), types.NewInt(v)}
}

func TestEmitAfterWatermarkOpRoundTrip(t *testing.T) {
	sch := wmSchema()
	opRoundTrip(t, "emit-after-watermark",
		func(out sink) stateSaver { return newEmitAfterWatermark(sch, out) },
		[]tvr.Event{
			tvr.InsertEvent(1, wRow(1000, 1)),
			tvr.InsertEvent(2, wRow(2000, 2)),
			tvr.DeleteEvent(3, wRow(1000, 1)),
			tvr.InsertEvent(4, wRow(1000, 7)),
			tvr.WatermarkEvent(5, 1500), // group 1000 materializes and closes
		},
		[]tvr.Event{
			tvr.InsertEvent(6, wRow(1000, 9)), // late for the closed group
			tvr.InsertEvent(7, wRow(2000, 3)),
			tvr.WatermarkEvent(8, 2500), // group 2000 materializes
		})
}

func TestEmitAfterDelayOpRoundTrip(t *testing.T) {
	sch := wmSchema()
	for _, alsoWM := range []bool{false, true} {
		t.Run(fmt.Sprintf("alsoWatermark=%v", alsoWM), func(t *testing.T) {
			opRoundTrip(t, "emit-after-delay",
				func(out sink) stateSaver {
					return newEmitAfterDelay(sch, 5*types.Second, alsoWM, out)
				},
				[]tvr.Event{
					// Two armed timers pending at the checkpoint.
					tvr.InsertEvent(1000, wRow(1000, 1)),
					tvr.InsertEvent(2000, wRow(2000, 2)),
					tvr.InsertEvent(3000, wRow(1000, 3)),
				},
				[]tvr.Event{
					// Heartbeats fire the restored timers; more input
					// re-arms; a watermark closes group 1000 when alsoWM.
					tvr.HeartbeatEvent(6500),
					tvr.InsertEvent(7000, wRow(1000, 4)),
					tvr.WatermarkEvent(8000, 1500),
					tvr.HeartbeatEvent(13000),
				})
		})
	}
}

func TestUnionOpRoundTrip(t *testing.T) {
	origOut := &memSink{}
	a := newUnionOp(2, origOut)
	if err := a.port(0).Push(tvr.WatermarkEvent(1, 100)); err != nil {
		t.Fatal(err)
	}
	if err := a.port(1).Push(tvr.HeartbeatEvent(2)); err != nil {
		t.Fatal(err)
	}
	restoredOut := &memSink{}
	b := newUnionOp(2, restoredOut)
	saverRoundTrip(t, a, b)
	mark := len(origOut.evs)
	for _, u := range []*unionOp{a, b} {
		// The merged watermark only advances when BOTH ports pass 100 —
		// restored per-port state decides this.
		if err := u.port(1).Push(tvr.WatermarkEvent(3, 150)); err != nil {
			t.Fatal(err)
		}
		// A stale heartbeat must stay deduplicated after restore.
		if err := u.port(0).Push(tvr.HeartbeatEvent(2)); err != nil {
			t.Fatal(err)
		}
	}
	gotA := origOut.render()[mark:]
	gotB := restoredOut.render()
	if fmt.Sprint(gotA) != fmt.Sprint(gotB) {
		t.Fatalf("suffix emissions differ:\noriginal: %v\nrestored: %v", gotA, gotB)
	}
}

// TestCollectorRoundTrip: the collector resumes Drain at the first
// undelivered event and keeps the materialized snapshot.
func TestCollectorRoundTrip(t *testing.T) {
	pqLike := func() *Collector {
		return &Collector{schema: wmSchema(), rel: tvr.NewRelation(), wm: types.MinTime}
	}
	a := pqLike()
	for _, ev := range []tvr.Event{
		tvr.InsertEvent(1, wRow(1000, 1)),
		tvr.InsertEvent(2, wRow(2000, 2)),
		tvr.WatermarkEvent(3, 1500),
	} {
		if err := a.Push(ev); err != nil {
			t.Fatal(err)
		}
	}
	a.drain() // deliver the first two
	if err := a.Push(tvr.InsertEvent(4, wRow(3000, 3))); err != nil {
		t.Fatal(err) // undrained tail of one event
	}
	b := pqLike()
	saverRoundTrip(t, a, b)
	gotTail := b.drain()
	if len(gotTail) != 1 || gotTail[0].String() != tvr.InsertEvent(4, wRow(3000, 3)).String() {
		t.Fatalf("restored drain = %v, want just the undelivered tail", gotTail)
	}
	if b.watermark() != 1500 {
		t.Fatalf("restored watermark = %v, want 1500", b.watermark())
	}
	if b.rel.Len() != 3 {
		t.Fatalf("restored snapshot has %d rows, want 3", b.rel.Len())
	}
	if b.outN != a.outN {
		t.Fatalf("restored outN = %d, want %d", b.outN, a.outN)
	}
}
