package exec

import (
	"fmt"
	"runtime/debug"
)

// PanicError is a panic caught at an isolation boundary — a partition
// worker goroutine here, or a standing-query session in internal/live —
// and converted into an ordinary error so one misbehaving operator fails
// its own query instead of the process. The original panic value and stack
// ride along for diagnosis.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v\n%s", e.Value, e.Stack)
}

// CapturePanic converts a recover() result into a *PanicError carrying the
// current stack. Returns nil for a nil recover value (no panic in flight).
func CapturePanic(v any) error {
	if v == nil {
		return nil
	}
	return &PanicError{Value: v, Stack: debug.Stack()}
}
