package exec

import (
	"bytes"
	"fmt"

	"repro/internal/plan"
	"repro/internal/tvr"
	"repro/internal/types"
)

// aggOp implements incremental grouped aggregation with retraction support.
// For every input change it retracts the group's previous output row and
// emits the updated one, so downstream state always reflects the pointwise
// aggregate of the input relation.
//
// Event-time grouping keys interact with watermarks exactly as Extension 2
// prescribes: when the watermark passes a group's event-time keys the group
// is complete — late inputs are dropped and the group's accumulator state is
// freed (the output row, already emitted, is final).
type aggOp struct {
	out    sink
	keys   []plan.Scalar
	aggs   []plan.AggCall
	sch    *types.Schema
	global bool

	// eventKeys are output positions of event-time keys with completion
	// offsets: group complete when wm >= key + offset for all.
	eventKeys []eventKey

	groups   map[string]*aggGroup
	order    []string // group keys in first-seen order (deterministic scans)
	wm       types.Time
	lateDrop int
	freed    int
	keyBuf   []byte // reusable group-key encoding buffer

	// Run cache: the group resolved by the previous data event. Consecutive
	// events for the same key (the common shape inside a batch) compare
	// encoded keys and skip the map probe entirely. Groups are never removed
	// from the map (completion only marks them dead), so the cached pointer
	// stays valid across dispatches and watermarks.
	prevKey  []byte
	runGroup *aggGroup
	runValid bool

	keyScratch  types.Row   // reusable group-key evaluation row
	emitScratch types.Row   // reusable candidate-output row (reemit)
	pend        []tvr.Event // per-dispatch output buffer, flushed once
}

type eventKey struct {
	pos    int
	offset types.Duration
}

// eventKeysOf extracts the aggregate's event-time grouping keys with their
// completion offsets — shared by the serial, partial, and final operators so
// the three stages use one completion rule.
func eventKeysOf(x *plan.Aggregate) []eventKey {
	var out []eventKey
	for _, pos := range x.EventKeyIdxs() {
		out = append(out, eventKey{pos: pos, offset: x.Sch.Cols[pos].WmOffset})
	}
	return out
}

// groupComplete reports whether a group's event-time keys are all passed by
// the watermark (accounting for per-column completion offsets). Groups with
// no event-time keys, or NULL key values, never complete. This single
// predicate decides late-data dropping and state cleanup for the serial
// aggregate AND both halves of a two-stage aggregate — the three stages must
// agree or partitioned output diverges from serial.
func groupComplete(keys []eventKey, keyRow types.Row, wm types.Time) bool {
	if len(keys) == 0 {
		return false
	}
	for _, ek := range keys {
		v := keyRow[ek.pos]
		if v.IsNull() || v.Kind() != types.KindTimestamp {
			return false
		}
		if wm < v.Timestamp().Add(ek.offset) {
			return false
		}
	}
	return true
}

type aggGroup struct {
	keyRow types.Row
	accs   []accumulator
	n      int       // live input rows
	outRow types.Row // last emitted output row (nil if none)
	dead   bool      // state freed by watermark completion
}

func newAggOp(x *plan.Aggregate, out sink) *aggOp {
	return &aggOp{
		out:       out,
		keys:      x.Keys,
		aggs:      x.Aggs,
		sch:       x.Sch,
		global:    x.Global(),
		groups:    make(map[string]*aggGroup),
		wm:        types.MinTime,
		eventKeys: eventKeysOf(x),
	}
}

// Open emits the initial row of a global aggregate: SQL semantics give a
// keyless aggregation exactly one row even over empty input (COUNT=0, other
// aggregates NULL).
func (a *aggOp) Open() error {
	if !a.global {
		return nil
	}
	g := a.newGroup(types.Row{})
	a.groups[""] = g
	a.order = append(a.order, "")
	a.pend = a.pend[:0]
	a.reemit(g, types.MinTime)
	return a.flush()
}

func (a *aggOp) newGroup(keyRow types.Row) *aggGroup {
	g := &aggGroup{keyRow: keyRow.Clone()}
	g.accs = make([]accumulator, len(a.aggs))
	for i, call := range a.aggs {
		g.accs[i] = newAccumulator(call)
	}
	return g
}

// complete reports whether a group's event-time keys are all passed by the
// watermark.
func (a *aggOp) complete(keyRow types.Row, wm types.Time) bool {
	return groupComplete(a.eventKeys, keyRow, wm)
}

func (a *aggOp) Push(ev tvr.Event) error {
	a.pend = a.pend[:0]
	if err := a.pushEvent(ev); err != nil {
		return err
	}
	return a.flush()
}

// PushBatch implements batchSink: the whole batch runs through the group
// machinery with the outputs gathered into the pending buffer and flushed in
// one downstream dispatch. Consecutive same-key events hit the run cache
// instead of the group map.
func (a *aggOp) PushBatch(evs []tvr.Event) error {
	a.pend = a.pend[:0]
	for i := range evs {
		if err := a.pushEvent(evs[i]); err != nil {
			return err
		}
	}
	return a.flush()
}

// flush hands the pending outputs downstream in one dispatch.
func (a *aggOp) flush() error {
	return pushBatch(a.out, a.pend)
}

// pushEvent applies one event to group state, appending any output events to
// the pending buffer.
func (a *aggOp) pushEvent(ev tvr.Event) error {
	switch ev.Kind {
	case tvr.Watermark:
		return a.onWatermark(ev)
	case tvr.Heartbeat:
		a.pend = append(a.pend, ev)
		return nil
	}

	if a.keyScratch == nil && len(a.keys) > 0 {
		a.keyScratch = make(types.Row, len(a.keys))
	}
	keyRow := a.keyScratch[:len(a.keys)]
	for i, k := range a.keys {
		v, err := k.Eval(ev.Row)
		if err != nil {
			return err
		}
		keyRow[i] = v
	}
	a.keyBuf = keyRow.AppendKey(a.keyBuf[:0])
	g := a.runGroup
	if !a.runValid || !bytes.Equal(a.keyBuf, a.prevKey) {
		var ok bool
		g, ok = a.groups[string(a.keyBuf)] // allocation-free lookup
		if !ok {
			if a.complete(keyRow, a.wm) {
				// The group was completed (and freed) before this row
				// arrived, or arrives late from the start.
				a.lateDrop++
				return nil
			}
			g = a.newGroup(keyRow)
			gk := string(a.keyBuf)
			a.groups[gk] = g
			a.order = append(a.order, gk)
		}
		a.prevKey = append(a.prevKey[:0], a.keyBuf...)
		a.runGroup = g
		a.runValid = true
	}
	if g.dead {
		a.lateDrop++
		return nil
	}

	delta := 1
	if ev.Kind == tvr.Delete {
		delta = -1
	}
	g.n += delta
	if g.n < 0 {
		return fmt.Errorf("exec: aggregate retraction underflow for group %s", keyRow)
	}
	for i, acc := range g.accs {
		var arg types.Value
		if a.aggs[i].Arg != nil {
			v, err := a.aggs[i].Arg.Eval(ev.Row)
			if err != nil {
				return err
			}
			arg = v
		}
		if err := acc.update(arg, delta); err != nil {
			return err
		}
	}
	a.reemit(g, ev.Ptime)
	return nil
}

// reemit retracts the group's previous output row and emits the current one
// (into the pending buffer). If the output row is unchanged (e.g. a bid below
// the running MAX), nothing is emitted: the output relation did not change,
// so its changelog must not either.
func (a *aggOp) reemit(g *aggGroup, p types.Time) {
	// The candidate row builds in a reusable scratch: a suppressed reemit
	// (e.g. a bid below the running MAX) costs no allocation, and an actual
	// emission clones exactly once.
	var row types.Row
	if g.n > 0 || a.global {
		row = append(a.emitScratch[:0], g.keyRow...)
		for _, acc := range g.accs {
			row = append(row, acc.value())
		}
		a.emitScratch = row[:0]
	}
	if g.outRow != nil && row != nil && g.outRow.Equal(row) {
		return
	}
	if g.outRow != nil {
		a.pend = append(a.pend, tvr.DeleteEvent(p, g.outRow))
		g.outRow = nil
	}
	if row == nil {
		return
	}
	g.outRow = row.Clone()
	a.pend = append(a.pend, tvr.InsertEvent(p, g.outRow))
}

// onWatermark advances the watermark, completes groups, frees their state,
// and forwards the watermark downstream (via the pending buffer).
func (a *aggOp) onWatermark(ev tvr.Event) error {
	if ev.Wm <= a.wm {
		return nil
	}
	a.wm = ev.Wm
	if len(a.eventKeys) > 0 {
		for _, gk := range a.order {
			g := a.groups[gk]
			if g == nil || g.dead {
				continue
			}
			if a.complete(g.keyRow, a.wm) {
				// The emitted output row is final; free the
				// accumulators but remember the key to drop
				// late arrivals.
				g.accs = nil
				g.dead = true
				a.freed++
			}
		}
	}
	a.pend = append(a.pend, ev)
	return nil
}

func (a *aggOp) Finish() error { return a.out.Finish() }

func (a *aggOp) stats(s *Stats) {
	live := 0
	for _, g := range a.groups {
		if !g.dead {
			live++
			s.StateRows += g.n
		}
	}
	s.StateGroups += live
	s.LateDropped += a.lateDrop
	s.FreedGroups += a.freed
}

// ---- accumulators ----

// accumulator maintains one aggregate function's state under inserts (+1)
// and retractions (-1).
type accumulator interface {
	update(v types.Value, delta int) error
	value() types.Value
}

// partialCarrier is implemented by accumulators that support two-stage
// (partial/final) aggregation. appendPartial appends the accumulator's
// communicated state — a fixed number of columns per aggregate kind (see
// partialStateWidth) — to a partial-update row; the final aggregate merges
// the latest such state per partition. The encoding must merge *exactly*:
// combining the per-partition states has to reproduce the serial
// accumulator's value at every input prefix, which is why sums stay in exact
// integer arithmetic (plan.twoStageEligible gates out floating-point sums)
// and MIN/MAX communicate only the extremum while the retraction-correct
// multiset stays partition-local.
type partialCarrier interface {
	appendPartial(dst types.Row) types.Row
}

// partialStateWidth is the number of columns an aggregate kind contributes to
// a partial-update row.
func partialStateWidth(kind plan.AggKind) int {
	switch kind {
	case plan.AggCountStar, plan.AggCount:
		return 1 // [count]
	default:
		return 2 // [sum-or-extremum, non-null count]
	}
}

func newAccumulator(call plan.AggCall) accumulator {
	var inner accumulator
	switch call.Kind {
	case plan.AggCountStar:
		return &countStarAcc{}
	case plan.AggCount:
		inner = &countAcc{}
	case plan.AggSum:
		inner = newSumAcc(call.K)
	case plan.AggAvg:
		inner = &avgAcc{}
	case plan.AggMin:
		inner = newMinMaxAcc(true)
	case plan.AggMax:
		inner = newMinMaxAcc(false)
	}
	if call.Distinct {
		return &distinctAcc{inner: inner, counts: make(map[string]*distinctEntry)}
	}
	return inner
}

type countStarAcc struct{ n int64 }

func (c *countStarAcc) update(_ types.Value, delta int) error {
	c.n += int64(delta)
	return nil
}

func (c *countStarAcc) value() types.Value { return types.NewInt(c.n) }

func (c *countStarAcc) appendPartial(dst types.Row) types.Row {
	return append(dst, types.NewInt(c.n))
}

type countAcc struct{ n int64 }

func (c *countAcc) update(v types.Value, delta int) error {
	if !v.IsNull() {
		c.n += int64(delta)
	}
	return nil
}

func (c *countAcc) value() types.Value { return types.NewInt(c.n) }

func (c *countAcc) appendPartial(dst types.Row) types.Row {
	return append(dst, types.NewInt(c.n))
}

// sumAcc keeps exact integer sums for BIGINT and float sums otherwise; SUM
// over zero non-NULL inputs is NULL per SQL.
type sumAcc struct {
	kind types.Kind
	i    int64
	f    float64
	n    int64
}

func newSumAcc(k types.Kind) *sumAcc { return &sumAcc{kind: k} }

func (s *sumAcc) update(v types.Value, delta int) error {
	if v.IsNull() {
		return nil
	}
	s.n += int64(delta)
	switch s.kind {
	case types.KindInt64:
		s.i += int64(delta) * v.Int()
	case types.KindInterval:
		s.i += int64(delta) * int64(v.Interval())
	default:
		s.f += float64(delta) * v.AsFloat()
	}
	return nil
}

func (s *sumAcc) value() types.Value {
	if s.n == 0 {
		return types.Null()
	}
	switch s.kind {
	case types.KindInt64:
		return types.NewInt(s.i)
	case types.KindInterval:
		return types.NewInterval(types.Duration(s.i))
	default:
		return types.NewFloat(s.f)
	}
}

// appendPartial communicates the raw sum by kind plus the non-null count (so
// the final stage reproduces SUM's zero-input NULL).
func (s *sumAcc) appendPartial(dst types.Row) types.Row {
	var sum types.Value
	switch s.kind {
	case types.KindInt64:
		sum = types.NewInt(s.i)
	case types.KindInterval:
		sum = types.NewInterval(types.Duration(s.i))
	default:
		sum = types.NewFloat(s.f)
	}
	return append(dst, sum, types.NewInt(s.n))
}

// avgAcc keeps the running sum in exact int64 arithmetic while every input is
// a BIGINT, falling back to the order-dependent float sum the moment a
// non-integer contributes. The exact path is what makes AVG mergeable across
// partitions: integer partial sums add associatively, so the final stage's
// float64(totalSum)/totalCount equals the serial value at every prefix.
type avgAcc struct {
	sumI    int64
	sumF    float64
	n       int64
	inexact bool
}

func (a *avgAcc) update(v types.Value, delta int) error {
	if v.IsNull() {
		return nil
	}
	if v.Kind() == types.KindInt64 {
		a.sumI += int64(delta) * v.Int()
	} else {
		a.inexact = true
	}
	a.sumF += float64(delta) * v.AsFloat()
	a.n += int64(delta)
	return nil
}

func (a *avgAcc) value() types.Value {
	if a.n == 0 {
		return types.Null()
	}
	if a.inexact {
		return types.NewFloat(a.sumF / float64(a.n))
	}
	return types.NewFloat(float64(a.sumI) / float64(a.n))
}

func (a *avgAcc) appendPartial(dst types.Row) types.Row {
	sum := types.NewInt(a.sumI)
	if a.inexact {
		sum = types.NewFloat(a.sumF)
	}
	return append(dst, sum, types.NewInt(a.n))
}

// minMaxAcc supports retractions by keeping the multiset of values; the
// extremum is cached and recomputed only when it is retracted away. Entries
// are pointers so the steady-state update path — encode into the scratch
// buffer, look up, mutate through the pointer — never materializes a key
// string (only first-seen values allocate).
type minMaxAcc struct {
	min     bool
	counts  map[string]*minMaxEntry
	current types.Value
	valid   bool // current holds the true extremum
	n       int64
	scratch []byte // reusable key-encoding buffer
}

type minMaxEntry struct {
	val   types.Value
	count int
}

func newMinMaxAcc(min bool) *minMaxAcc {
	return &minMaxAcc{min: min, counts: make(map[string]*minMaxEntry), current: types.Null()}
}

func (m *minMaxAcc) update(v types.Value, delta int) error {
	if v.IsNull() {
		return nil
	}
	m.scratch = v.AppendKey(m.scratch[:0])
	e, ok := m.counts[string(m.scratch)]
	if !ok {
		e = &minMaxEntry{}
		m.counts[string(m.scratch)] = e
	}
	e.val = v
	e.count += delta
	if e.count < 0 {
		return fmt.Errorf("exec: MIN/MAX retraction of absent value %s", v)
	}
	if e.count == 0 {
		delete(m.counts, string(m.scratch))
	}
	m.n += int64(delta)
	if delta > 0 {
		if !m.valid || m.better(v, m.current) {
			m.current = v
			m.valid = true
		}
	} else if m.valid && v.Equal(m.current) {
		// The extremum may have been retracted; recompute lazily.
		m.valid = false
	}
	return nil
}

func (m *minMaxAcc) better(a, b types.Value) bool {
	if b.IsNull() {
		return true
	}
	c, err := a.Compare(b)
	if err != nil {
		return false
	}
	if m.min {
		return c < 0
	}
	return c > 0
}

func (m *minMaxAcc) value() types.Value {
	if m.n == 0 {
		return types.Null()
	}
	if !m.valid {
		m.current = types.Null()
		for _, e := range m.counts {
			if e.count > 0 && (m.current.IsNull() || m.better(e.val, m.current)) {
				m.current = e.val
			}
		}
		m.valid = true
	}
	return m.current
}

// appendPartial communicates only the partition-local extremum (plus the
// non-null count for NULL semantics); the multiset that keeps it
// retraction-correct never leaves the partition. Sub-bag routing guarantees
// the extremum-of-extremums is the global extremum.
func (m *minMaxAcc) appendPartial(dst types.Row) types.Row {
	return append(dst, m.value(), types.NewInt(m.n))
}

// distinctAcc wraps another accumulator, forwarding only multiplicity
// transitions 0->1 and 1->0 so the inner state sees each distinct value once.
type distinctAcc struct {
	inner   accumulator
	counts  map[string]*distinctEntry
	scratch []byte
}

type distinctEntry struct {
	val   types.Value
	count int
}

func (d *distinctAcc) update(v types.Value, delta int) error {
	if v.IsNull() {
		return nil
	}
	d.scratch = v.AppendKey(d.scratch[:0])
	e, ok := d.counts[string(d.scratch)]
	if !ok {
		e = &distinctEntry{}
		d.counts[string(d.scratch)] = e
	}
	e.val = v
	before := e.count
	e.count += delta
	if e.count < 0 {
		return fmt.Errorf("exec: DISTINCT aggregate retraction of absent value %s", v)
	}
	if e.count == 0 {
		delete(d.counts, string(d.scratch))
	}
	if before == 0 && e.count > 0 {
		return d.inner.update(v, 1)
	}
	if before > 0 && e.count == 0 {
		return d.inner.update(v, -1)
	}
	return nil
}

func (d *distinctAcc) value() types.Value { return d.inner.value() }
