package exec

import (
	"container/heap"

	"repro/internal/tvr"
	"repro/internal/types"
)

// emitGroupKeys identifies the event-time grouping of an output schema: the
// paper's EMIT extensions delay/coalesce materialization per event-time
// grouping (e.g. per window).
type emitGroupKeys struct {
	idxs    []int
	offsets []types.Duration
}

func groupKeysOf(sch *types.Schema) emitGroupKeys {
	var g emitGroupKeys
	for _, i := range sch.EmitKeyCols() {
		g.idxs = append(g.idxs, i)
		g.offsets = append(g.offsets, sch.Cols[i].WmOffset)
	}
	return g
}

func (g emitGroupKeys) keyOf(row types.Row) string { return row.KeyOf(g.idxs) }

// complete reports whether the watermark has passed every event-time key of
// the row (accounting for per-column completion offsets).
func (g emitGroupKeys) complete(row types.Row, wm types.Time) bool {
	if len(g.idxs) == 0 {
		return false
	}
	for i, idx := range g.idxs {
		v := row[idx]
		if v.IsNull() || v.Kind() != types.KindTimestamp {
			return false
		}
		if wm < v.Timestamp().Add(g.offsets[i]) {
			return false
		}
	}
	return true
}

// emitAfterWatermarkOp implements Extension 5 (EMIT AFTER WATERMARK): it
// buffers the evolving result per event-time group and materializes each
// group exactly once — its final contents — when the watermark declares the
// group complete. Changes to already-complete groups are dropped as late.
type emitAfterWatermarkOp struct {
	out    sink
	keys   emitGroupKeys
	groups map[string]*wmGroup
	order  []string
	wm     types.Time
	late   int
	freed  int
}

type wmGroup struct {
	sample types.Row // carries the event-time key values
	rel    *tvr.Relation
	done   bool
}

func newEmitAfterWatermark(sch *types.Schema, out sink) *emitAfterWatermarkOp {
	return &emitAfterWatermarkOp{
		out:    out,
		keys:   groupKeysOf(sch),
		groups: make(map[string]*wmGroup),
		wm:     types.MinTime,
	}
}

func (e *emitAfterWatermarkOp) Push(ev tvr.Event) error {
	switch ev.Kind {
	case tvr.Watermark:
		return e.onWatermark(ev)
	case tvr.Heartbeat:
		return e.out.Push(ev)
	}
	k := e.keys.keyOf(ev.Row)
	g, ok := e.groups[k]
	if ok && g.done {
		e.late++
		return nil
	}
	if !ok {
		if e.keys.complete(ev.Row, e.wm) {
			e.late++
			return nil
		}
		g = &wmGroup{sample: ev.Row.Clone(), rel: tvr.NewRelation()}
		e.groups[k] = g
		e.order = append(e.order, k)
	}
	return g.rel.Apply(ev)
}

func (e *emitAfterWatermarkOp) onWatermark(ev tvr.Event) error {
	if ev.Wm <= e.wm {
		return nil
	}
	e.wm = ev.Wm
	for _, k := range e.order {
		g := e.groups[k]
		if g == nil || g.done {
			continue
		}
		if !e.keys.complete(g.sample, e.wm) {
			continue
		}
		// Materialize the final contents of the group, once.
		for _, row := range g.rel.Rows() {
			if err := e.out.Push(tvr.InsertEvent(ev.Ptime, row)); err != nil {
				return err
			}
		}
		g.rel = nil
		g.done = true
		e.freed++
	}
	return e.out.Push(ev)
}

func (e *emitAfterWatermarkOp) Finish() error { return e.out.Finish() }

func (e *emitAfterWatermarkOp) stats(s *Stats) {
	live := 0
	for _, g := range e.groups {
		if !g.done {
			live++
			s.StateRows += g.rel.Len()
		}
	}
	s.StateGroups += live
	s.LateDropped += e.late
	s.FreedGroups += e.freed
}

// emitAfterDelayOp implements Extension 6 (EMIT AFTER DELAY) and Extension 7
// (combined with AFTER WATERMARK): per event-time group, the first change
// after a materialization arms a processing-time timer; when it fires the
// group's current contents are materialized as a diff against the last
// materialized contents, coalescing the intervening "torrent of updates"
// into one revision. With alsoWatermark set, watermark completion forces a
// final materialization and closes the group (the early/on-time pattern).
type emitAfterDelayOp struct {
	out           sink
	keys          emitGroupKeys
	delay         types.Duration
	alsoWatermark bool

	groups map[string]*delayGroup
	order  []string
	timers timerHeap
	seq    int
	wm     types.Time
	late   int
	freed  int
}

type delayGroup struct {
	key     string
	sample  types.Row
	lastMat *tvr.Relation // contents at last materialization
	cur     *tvr.Relation // live contents
	armed   bool
	done    bool
}

type timer struct {
	deadline types.Time
	seq      int // FIFO tiebreak for determinism
	group    *delayGroup
}

type timerHeap []timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].deadline != h[j].deadline {
		return h[i].deadline < h[j].deadline
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)   { *h = append(*h, x.(timer)) }
func (h *timerHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

func newEmitAfterDelay(sch *types.Schema, delay types.Duration, alsoWatermark bool, out sink) *emitAfterDelayOp {
	return &emitAfterDelayOp{
		out:           out,
		keys:          groupKeysOf(sch),
		delay:         delay,
		alsoWatermark: alsoWatermark,
		groups:        make(map[string]*delayGroup),
		wm:            types.MinTime,
	}
}

func (e *emitAfterDelayOp) Push(ev tvr.Event) error {
	// Timers strictly earlier than the new processing time fire first, so
	// emissions remain ptime-ordered. A timer whose deadline equals the
	// event's ptime fires after the event is applied (the paper's Listing
	// 14 shows the 8:18 input included in the 8:18 materialization).
	if err := e.fireDue(ev.Ptime); err != nil {
		return err
	}
	switch ev.Kind {
	case tvr.Watermark:
		return e.onWatermark(ev)
	case tvr.Heartbeat:
		if err := e.fireDueInclusive(ev.Ptime); err != nil {
			return err
		}
		return e.out.Push(ev)
	}
	k := e.keys.keyOf(ev.Row)
	g, ok := e.groups[k]
	if ok && g.done {
		e.late++
		return nil
	}
	if !ok {
		if e.alsoWatermark && e.keys.complete(ev.Row, e.wm) {
			e.late++
			return nil
		}
		g = &delayGroup{
			key:     k,
			sample:  ev.Row.Clone(),
			lastMat: tvr.NewRelation(),
			cur:     tvr.NewRelation(),
		}
		e.groups[k] = g
		e.order = append(e.order, k)
	}
	if err := g.cur.Apply(ev); err != nil {
		return err
	}
	if !g.armed {
		g.armed = true
		e.seq++
		heap.Push(&e.timers, timer{deadline: ev.Ptime.Add(e.delay), seq: e.seq, group: g})
	}
	return nil
}

// fireDue fires timers with deadline strictly before p.
func (e *emitAfterDelayOp) fireDue(p types.Time) error {
	for len(e.timers) > 0 && e.timers[0].deadline < p {
		t := heap.Pop(&e.timers).(timer)
		if err := e.fire(t.group, t.deadline); err != nil {
			return err
		}
	}
	return nil
}

// fireDueInclusive fires timers with deadline at or before p (used for
// heartbeats, which mark "processing time has reached p").
func (e *emitAfterDelayOp) fireDueInclusive(p types.Time) error {
	for len(e.timers) > 0 && e.timers[0].deadline <= p {
		t := heap.Pop(&e.timers).(timer)
		if err := e.fire(t.group, t.deadline); err != nil {
			return err
		}
	}
	return nil
}

// fire materializes the group's pending changes as a diff at ptime p.
func (e *emitAfterDelayOp) fire(g *delayGroup, p types.Time) error {
	if g.done || !g.armed {
		return nil
	}
	g.armed = false
	for _, ev := range g.lastMat.Diff(g.cur, p) {
		if err := e.out.Push(ev); err != nil {
			return err
		}
	}
	g.lastMat = g.cur.Clone()
	return nil
}

func (e *emitAfterDelayOp) onWatermark(ev tvr.Event) error {
	if ev.Wm <= e.wm {
		return e.out.Push(tvr.WatermarkEvent(ev.Ptime, e.wm))
	}
	e.wm = ev.Wm
	if e.alsoWatermark {
		for _, k := range e.order {
			g := e.groups[k]
			if g == nil || g.done || !e.keys.complete(g.sample, e.wm) {
				continue
			}
			// Final on-time materialization, then close the group.
			g.armed = true // force the diff even if no timer pending
			if err := e.fire(g, ev.Ptime); err != nil {
				return err
			}
			g.done = true
			g.lastMat, g.cur = nil, nil
			e.freed++
		}
	}
	return e.out.Push(ev)
}

// Finish flushes all pending timers at their deadlines: the end of the
// recorded input means processing time runs to infinity.
func (e *emitAfterDelayOp) Finish() error {
	for len(e.timers) > 0 {
		t := heap.Pop(&e.timers).(timer)
		if err := e.fire(t.group, t.deadline); err != nil {
			return err
		}
	}
	return e.out.Finish()
}

func (e *emitAfterDelayOp) stats(s *Stats) {
	live := 0
	for _, g := range e.groups {
		if !g.done {
			live++
			s.StateRows += g.cur.Len()
		}
	}
	s.StateGroups += live
	s.LateDropped += e.late
	s.FreedGroups += e.freed
}
