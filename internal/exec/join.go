package exec

import (
	"fmt"

	"repro/internal/plan"
	"repro/internal/sqlparser"
	"repro/internal/tvr"
	"repro/internal/types"
)

// joinOp implements incremental inner and outer joins with retraction
// support. Each side's live rows are indexed by the extracted equi-key; the
// residual predicate is evaluated per candidate pair. Outer joins track a
// per-row match count so null-padded rows are emitted and retracted exactly
// when a row transitions between matched and unmatched.
//
// When the optimizer derives event-time expiry bounds from interval
// predicates (e.g. Q7's bidtime >= wend - 10min AND bidtime < wend), rows
// whose expiry has passed the merged watermark are freed — the state-cleanup
// behaviour Section 5 calls out as essential for unbounded inputs.
type joinOp struct {
	*mergingSink
	kind      sqlparser.JoinKind
	leftKeys  []int
	rightKeys []int
	residual  plan.Scalar
	leftW     int
	rightW    int

	left  *joinSide
	right *joinSide

	leftExpiry  *plan.ExpiryBound
	rightExpiry *plan.ExpiryBound
}

// joinSide holds one input's live rows bucketed by equi-key.
type joinSide struct {
	buckets map[string][]*joinRow
	size    int
}

type joinRow struct {
	row     types.Row
	count   int // live multiplicity
	matches int // matching opposite-side row instances (for outer joins)
}

func newJoinOp(x *plan.Join, out sink) *joinOp {
	j := &joinOp{
		mergingSink: newMergingSink(2, out),
		kind:        x.Kind,
		leftKeys:    x.LeftKeys,
		rightKeys:   x.RightKeys,
		residual:    x.Residual,
		leftW:       x.Left.Schema().Len(),
		rightW:      x.Right.Schema().Len(),
		left:        &joinSide{buckets: make(map[string][]*joinRow)},
		right:       &joinSide{buckets: make(map[string][]*joinRow)},
		leftExpiry:  x.LeftExpiry,
		rightExpiry: x.RightExpiry,
	}
	j.onWatermark = j.expire
	return j
}

type joinPort struct {
	j    *joinOp
	side int // 0 = left, 1 = right
}

func (j *joinOp) leftPort() sink  { return &joinPort{j: j, side: 0} }
func (j *joinOp) rightPort() sink { return &joinPort{j: j, side: 1} }

func (p *joinPort) Push(ev tvr.Event) error {
	if done, err := p.j.pushControl(p.side, ev); done || err != nil {
		return err
	}
	return p.j.apply(p.side, ev)
}

func (p *joinPort) Finish() error { return p.j.finishPort() }

// Push/Finish satisfy sink on the operator itself; ports are the real inputs.
func (j *joinOp) Push(ev tvr.Event) error { return j.out.Push(ev) }

// Finish implements sink.
func (j *joinOp) Finish() error { return nil }

// padLeft reports whether unmatched left rows emit null-padded outputs.
func (j *joinOp) padLeft() bool {
	return j.kind == sqlparser.LeftJoin || j.kind == sqlparser.FullJoin
}

// padRight reports whether unmatched right rows emit null-padded outputs.
func (j *joinOp) padRight() bool {
	return j.kind == sqlparser.RightJoin || j.kind == sqlparser.FullJoin
}

func (j *joinOp) keyFor(side int, row types.Row) string {
	if side == 0 {
		return row.KeyOf(j.leftKeys)
	}
	return row.KeyOf(j.rightKeys)
}

// pair builds the joined row in left-right order regardless of which side
// the triggering event arrived on.
func (j *joinOp) pair(side int, evRow, otherRow types.Row) types.Row {
	if side == 0 {
		return evRow.Concat(otherRow)
	}
	return otherRow.Concat(evRow)
}

func (j *joinOp) passes(joined types.Row) (bool, error) {
	if j.residual == nil {
		return true, nil
	}
	return plan.EvalBool(j.residual, joined)
}

func (j *joinOp) nullPad(side int, row types.Row) types.Row {
	if side == 0 {
		padded := make(types.Row, j.rightW)
		return row.Concat(padded)
	}
	padded := make(types.Row, j.leftW)
	return types.Row(padded).Concat(row)
}

// apply processes one data event from the given side.
func (j *joinOp) apply(side int, ev tvr.Event) error {
	mySide, otherSide := j.left, j.right
	myPad, otherPad := j.padLeft(), j.padRight()
	if side == 1 {
		mySide, otherSide = j.right, j.left
		myPad, otherPad = j.padRight(), j.padLeft()
	}
	delta := 1
	if ev.Kind == tvr.Delete {
		delta = -1
	}
	k := j.keyFor(side, ev.Row)

	// Locate/create my row entry.
	bucket := mySide.buckets[k]
	var mine *joinRow
	for _, jr := range bucket {
		if jr.row.Equal(ev.Row) {
			mine = jr
			break
		}
	}
	if mine == nil {
		if delta < 0 {
			return fmt.Errorf("exec: join retraction of absent row %s", ev.Row)
		}
		mine = &joinRow{row: ev.Row.Clone()}
		mySide.buckets[k] = append(bucket, mine)
	}

	// Walk matching opposite rows, emitting joined deltas and updating
	// their match counts.
	myMatches := 0
	for _, other := range otherSide.buckets[k] {
		if other.count == 0 {
			continue
		}
		joined := j.pair(side, mine.row, other.row)
		ok, err := j.passes(joined)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		myMatches += other.count
		// Emit one joined delta per pair instance.
		n := other.count
		for i := 0; i < n; i++ {
			if err := j.emitData(ev.Ptime, delta, joined); err != nil {
				return err
			}
		}
		// The opposite row's match count changes by my delta.
		before := other.matches
		other.matches += delta * 1
		if otherPad {
			if before == 0 && other.matches > 0 {
				// Retract its null-padded output (once per instance).
				for i := 0; i < other.count; i++ {
					if err := j.emitData(ev.Ptime, -1, j.nullPad(1-side, other.row)); err != nil {
						return err
					}
				}
			} else if before > 0 && other.matches == 0 {
				for i := 0; i < other.count; i++ {
					if err := j.emitData(ev.Ptime, 1, j.nullPad(1-side, other.row)); err != nil {
						return err
					}
				}
			}
		}
	}

	// Null padding for my own row instance.
	if delta > 0 {
		if mine.count == 0 {
			mine.matches = myMatches
		}
		mine.count++
		mySide.size++
		if myPad && mine.matches == 0 {
			if err := j.emitData(ev.Ptime, 1, j.nullPad(side, mine.row)); err != nil {
				return err
			}
		}
	} else {
		mine.count--
		mySide.size--
		if mine.count < 0 {
			return fmt.Errorf("exec: join retraction underflow for row %s", ev.Row)
		}
		if myPad && mine.matches == 0 {
			if err := j.emitData(ev.Ptime, -1, j.nullPad(side, mine.row)); err != nil {
				return err
			}
		}
		if mine.count == 0 {
			j.dropRow(mySide, k, mine)
		}
	}
	return nil
}

func (j *joinOp) emitData(p types.Time, delta int, row types.Row) error {
	if delta > 0 {
		return j.out.Push(tvr.InsertEvent(p, row))
	}
	return j.out.Push(tvr.DeleteEvent(p, row))
}

func (j *joinOp) dropRow(side *joinSide, key string, target *joinRow) {
	bucket := side.buckets[key]
	for i, jr := range bucket {
		if jr == target {
			side.buckets[key] = append(bucket[:i], bucket[i+1:]...)
			break
		}
	}
	if len(side.buckets[key]) == 0 {
		delete(side.buckets, key)
	}
}

// expire frees stored rows whose interval-join expiry passed the merged
// watermark. Expired rows can no longer produce new matches (the optimizer
// proved the bound from the join predicate) so dropping them is output-
// invariant.
func (j *joinOp) expire(wm types.Time, _ types.Time) error {
	if j.leftExpiry != nil {
		expireSide(j.left, j.leftExpiry, wm)
	}
	if j.rightExpiry != nil {
		expireSide(j.right, j.rightExpiry, wm)
	}
	return nil
}

func expireSide(side *joinSide, b *plan.ExpiryBound, wm types.Time) {
	for key, bucket := range side.buckets {
		kept := bucket[:0]
		for _, jr := range bucket {
			v := jr.row[b.Col]
			if !v.IsNull() && v.Kind() == types.KindTimestamp && wm >= v.Timestamp().Add(b.Bound) {
				side.size -= jr.count
				continue
			}
			kept = append(kept, jr)
		}
		if len(kept) == 0 {
			delete(side.buckets, key)
		} else {
			side.buckets[key] = kept
		}
	}
}

func (j *joinOp) stats(s *Stats) {
	s.StateRows += j.left.size + j.right.size
}
