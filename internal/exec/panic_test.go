package exec

// White-box tests for the partition-worker panic boundary: a panicking
// operator inside one partition's round must surface as a *PanicError on
// the round's error path — failing that query — instead of unwinding the
// worker goroutine and killing the process.

import (
	"errors"
	"strings"
	"testing"
)

func TestCapturePanic(t *testing.T) {
	if err := CapturePanic(nil); err != nil {
		t.Fatalf("nil recover value must map to nil, got %v", err)
	}
	err := CapturePanic("boom")
	var perr *PanicError
	if !errors.As(err, &perr) {
		t.Fatalf("CapturePanic = %T, want *PanicError", err)
	}
	if perr.Value != "boom" {
		t.Fatalf("Value = %v, want boom", perr.Value)
	}
	if len(perr.Stack) == 0 {
		t.Fatal("stack not captured")
	}
	if !strings.Contains(perr.Error(), "panic: boom") {
		t.Fatalf("Error() = %q", perr.Error())
	}
}

// TestDrainRoundCapturesPanic drives a round through a chain whose state
// is broken (nil tag sink — the kind of invariant violation an operator
// bug produces) and requires the panic back as an ordinary error.
func TestDrainRoundCapturesPanic(t *testing.T) {
	defer func() {
		if v := recover(); v != nil {
			t.Fatalf("panic escaped drainRound: %v", v)
		}
	}()
	c := &partChain{tag: &tagSink{}} // scanOps empty: any delivery panics
	var buf []taggedEvent
	err := c.drainRound([]delivery{{scan: 0}}, &buf)
	var perr *PanicError
	if !errors.As(err, &perr) {
		t.Fatalf("drainRound = %v (%T), want *PanicError", err, err)
	}
}
