package exec_test

// Unit tests for the operator chains: each test hand-builds a small logical
// plan, pushes a changelog through the compiled pipeline, and asserts the
// exact output delta stream — including retractions, late-data drops, and
// watermark-driven state cleanup.

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sqlparser"
	"repro/internal/tvr"
	"repro/internal/types"
)

// bidSchema is a minimal stream schema: key BIGINT, price BIGINT, ts
// TIMESTAMP (event time).
func bidSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "key", Kind: types.KindInt64},
		types.Column{Name: "price", Kind: types.KindInt64},
		types.Column{Name: "ts", Kind: types.KindTimestamp, EventTime: true},
	)
}

func row(key, price int64, ts types.Time) types.Row {
	return types.Row{types.NewInt(key), types.NewInt(price), types.NewTimestamp(ts)}
}

func col(idx int, k types.Kind) *plan.ColRef { return &plan.ColRef{Idx: idx, K: k} }

func intConst(v int64) *plan.Const { return &plan.Const{Val: types.NewInt(v)} }

// runPlan compiles and runs a planned query over a single "s" source.
func runPlan(t *testing.T, pq *plan.PlannedQuery, log tvr.Changelog, upTo types.Time) (*exec.Result, exec.Stats) {
	t.Helper()
	pipe, err := exec.Compile(pq)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := pipe.Run([]exec.Source{{Name: "s", Log: log}}, upTo)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res, pipe.Stats()
}

// fmtLog renders a changelog compactly for exact-sequence assertions.
func fmtLog(log tvr.Changelog) []string {
	out := make([]string, len(log))
	for i, ev := range log {
		out[i] = ev.String()
	}
	return out
}

func assertLog(t *testing.T, got tvr.Changelog, want []string) {
	t.Helper()
	gs := fmtLog(got)
	if len(gs) != len(want) {
		t.Fatalf("got %d events, want %d:\ngot:  %s\nwant: %s",
			len(gs), len(want), strings.Join(gs, "; "), strings.Join(want, "; "))
	}
	for i := range want {
		if gs[i] != want[i] {
			t.Errorf("event %d:\ngot:  %s\nwant: %s", i, gs[i], want[i])
		}
	}
}

func scanNode() *plan.Scan { return &plan.Scan{Name: "s", Sch: bidSchema(), Stream: true} }

// TestFilterProjectRetraction: deterministic predicates and projections
// commute with retractions — a deleted row filters and projects exactly as
// its insert did.
func TestFilterProjectRetraction(t *testing.T) {
	// SELECT key, price * 2 FROM s WHERE price > 3
	filter := &plan.Filter{
		Input: scanNode(),
		Cond:  &plan.BinOp{Op: sqlparser.OpGt, L: col(1, types.KindInt64), R: intConst(3), K: types.KindBool},
	}
	project := &plan.Project{
		Input: filter,
		Exprs: []plan.Scalar{
			col(0, types.KindInt64),
			&plan.BinOp{Op: sqlparser.OpMul, L: col(1, types.KindInt64), R: intConst(2), K: types.KindInt64},
		},
		Sch: types.NewSchema(
			types.Column{Name: "key", Kind: types.KindInt64},
			types.Column{Name: "double", Kind: types.KindInt64},
		),
	}
	pq := &plan.PlannedQuery{Root: project}

	log := tvr.Changelog{
		tvr.InsertEvent(1, row(1, 10, 100)), // passes
		tvr.InsertEvent(2, row(2, 2, 200)),  // filtered out
		tvr.InsertEvent(3, row(3, 7, 300)),  // passes
		tvr.DeleteEvent(4, row(1, 10, 100)), // retraction of a passing row
		tvr.DeleteEvent(5, row(2, 2, 200)),  // retraction of a filtered row: no output
	}
	res, _ := runPlan(t, pq, log, types.MaxTime)
	assertLog(t, res.Log, []string{
		"0:00:00.001 INSERT (1, 20)",
		"0:00:00.003 INSERT (3, 14)",
		"0:00:00.004 DELETE (1, 20)",
	})
	if res.Snapshot.Len() != 1 {
		t.Errorf("snapshot size = %d, want 1", res.Snapshot.Len())
	}
}

// TestAggregateRetraction: grouped aggregation retracts the group's previous
// output row on every change, keeping the output relation pointwise-correct.
func TestAggregateRetraction(t *testing.T) {
	// SELECT key, SUM(price), COUNT(*) FROM s GROUP BY key
	agg := &plan.Aggregate{
		Input: scanNode(),
		Keys:  []plan.Scalar{col(0, types.KindInt64)},
		Aggs: []plan.AggCall{
			{Kind: plan.AggSum, Arg: col(1, types.KindInt64), K: types.KindInt64},
			{Kind: plan.AggCountStar, K: types.KindInt64},
		},
		Sch: types.NewSchema(
			types.Column{Name: "key", Kind: types.KindInt64},
			types.Column{Name: "sum", Kind: types.KindInt64},
			types.Column{Name: "n", Kind: types.KindInt64},
		),
	}
	pq := &plan.PlannedQuery{Root: agg}
	log := tvr.Changelog{
		tvr.InsertEvent(1, row(7, 10, 100)),
		tvr.InsertEvent(2, row(7, 5, 110)),
		tvr.DeleteEvent(3, row(7, 10, 100)), // retract the first bid
		tvr.DeleteEvent(4, row(7, 5, 110)),  // group empties: output row disappears
	}
	res, _ := runPlan(t, pq, log, types.MaxTime)
	assertLog(t, res.Log, []string{
		"0:00:00.001 INSERT (7, 10, 1)",
		"0:00:00.002 DELETE (7, 10, 1)",
		"0:00:00.002 INSERT (7, 15, 2)",
		"0:00:00.003 DELETE (7, 15, 2)",
		"0:00:00.003 INSERT (7, 5, 1)",
		"0:00:00.004 DELETE (7, 5, 1)",
	})
	if res.Snapshot.Len() != 0 {
		t.Errorf("snapshot size = %d, want 0 (group emptied)", res.Snapshot.Len())
	}
}

// eventTimeAgg groups by the event-time column, so watermarks complete
// groups: late input is dropped and accumulator state is freed.
func eventTimeAgg() *plan.Aggregate {
	return &plan.Aggregate{
		Input: scanNode(),
		Keys:  []plan.Scalar{col(2, types.KindTimestamp)},
		Aggs:  []plan.AggCall{{Kind: plan.AggCountStar, K: types.KindInt64}},
		Sch: types.NewSchema(
			types.Column{Name: "ts", Kind: types.KindTimestamp, EventTime: true},
			types.Column{Name: "n", Kind: types.KindInt64},
		),
	}
}

// TestAggregateLateDataAndCleanup reproduces the Extension 2 policy: once the
// watermark passes a group's event-time key the group is complete — its state
// is freed and late arrivals are dropped without disturbing the final row.
func TestAggregateLateDataAndCleanup(t *testing.T) {
	pq := &plan.PlannedQuery{Root: eventTimeAgg(), EmitKeyIdxs: []int{0}}
	log := tvr.Changelog{
		tvr.InsertEvent(1, row(1, 1, 100)),
		tvr.InsertEvent(2, row(2, 1, 200)),
		tvr.WatermarkEvent(3, 150),         // completes the ts=100 group
		tvr.InsertEvent(4, row(3, 1, 100)), // late: dropped
		tvr.InsertEvent(5, row(4, 1, 200)), // on time: still counts
	}
	res, stats := runPlan(t, pq, log, types.MaxTime)
	assertLog(t, res.Log, []string{
		"0:00:00.001 INSERT (0:00:00.100, 1)",
		"0:00:00.002 INSERT (0:00:00.200, 1)",
		"0:00:00.005 DELETE (0:00:00.200, 1)",
		"0:00:00.005 INSERT (0:00:00.200, 2)",
	})
	if stats.LateDropped != 1 {
		t.Errorf("LateDropped = %d, want 1", stats.LateDropped)
	}
	if stats.FreedGroups != 1 {
		t.Errorf("FreedGroups = %d, want 1", stats.FreedGroups)
	}
}

// twoSourceJoin builds s JOIN r ON s.key = r.key with the given join kind.
func twoSourceJoin(kind sqlparser.JoinKind) *plan.PlannedQuery {
	left := &plan.Scan{Name: "s", Sch: bidSchema(), Stream: true}
	rightSch := types.NewSchema(
		types.Column{Name: "key", Kind: types.KindInt64},
		types.Column{Name: "tag", Kind: types.KindString},
	)
	right := &plan.Scan{Name: "r", Sch: rightSch, Stream: true}
	return &plan.PlannedQuery{Root: &plan.Join{
		Left: left, Right: right, Kind: kind,
		LeftKeys: []int{0}, RightKeys: []int{0},
		Sch: bidSchema().WithoutEventTime().Concat(rightSch),
	}}
}

func tagRow(key int64, tag string) types.Row {
	return types.Row{types.NewInt(key), types.NewString(tag)}
}

// TestJoinInnerRetraction: joined outputs are retracted exactly when either
// side's contributing row is retracted.
func TestJoinInnerRetraction(t *testing.T) {
	pq := twoSourceJoin(sqlparser.InnerJoin)
	pipe, err := exec.Compile(pq)
	if err != nil {
		t.Fatal(err)
	}
	sLog := tvr.Changelog{
		tvr.InsertEvent(1, row(7, 10, 100)),
		tvr.InsertEvent(3, row(7, 20, 300)),
	}
	rLog := tvr.Changelog{
		tvr.InsertEvent(2, tagRow(7, "A")),
		tvr.DeleteEvent(4, tagRow(7, "A")),
	}
	res, err := pipe.Run([]exec.Source{{Name: "s", Log: sLog}, {Name: "r", Log: rLog}}, types.MaxTime)
	if err != nil {
		t.Fatal(err)
	}
	assertLog(t, res.Log, []string{
		"0:00:00.002 INSERT (7, 10, 0:00:00.100, 7, A)",
		"0:00:00.003 INSERT (7, 20, 0:00:00.300, 7, A)",
		"0:00:00.004 DELETE (7, 10, 0:00:00.100, 7, A)",
		"0:00:00.004 DELETE (7, 20, 0:00:00.300, 7, A)",
	})
	if res.Snapshot.Len() != 0 {
		t.Errorf("snapshot size = %d, want 0 after retraction", res.Snapshot.Len())
	}
}

// TestLeftJoinNullPadTransitions: an unmatched left row emits a null-padded
// output that is retracted when a match appears and re-emitted when the last
// match goes away.
func TestLeftJoinNullPadTransitions(t *testing.T) {
	pq := twoSourceJoin(sqlparser.LeftJoin)
	pipe, err := exec.Compile(pq)
	if err != nil {
		t.Fatal(err)
	}
	sLog := tvr.Changelog{tvr.InsertEvent(1, row(7, 10, 100))}
	rLog := tvr.Changelog{
		tvr.InsertEvent(2, tagRow(7, "A")),
		tvr.DeleteEvent(3, tagRow(7, "A")),
	}
	res, err := pipe.Run([]exec.Source{{Name: "s", Log: sLog}, {Name: "r", Log: rLog}}, types.MaxTime)
	if err != nil {
		t.Fatal(err)
	}
	assertLog(t, res.Log, []string{
		"0:00:00.001 INSERT (7, 10, 0:00:00.100, NULL, NULL)",
		"0:00:00.002 INSERT (7, 10, 0:00:00.100, 7, A)",
		"0:00:00.002 DELETE (7, 10, 0:00:00.100, NULL, NULL)",
		"0:00:00.003 DELETE (7, 10, 0:00:00.100, 7, A)",
		"0:00:00.003 INSERT (7, 10, 0:00:00.100, NULL, NULL)",
	})
}

// TestEmitAfterWatermarkBuffers: EMIT AFTER WATERMARK holds back the evolving
// result and materializes each event-time group once, when complete; later
// changes to the group are dropped as late.
func TestEmitAfterWatermarkBuffers(t *testing.T) {
	pq := &plan.PlannedQuery{
		Root:        eventTimeAgg(),
		EmitKeyIdxs: []int{0},
		Emit:        plan.EmitSpec{AfterWatermark: true},
	}
	log := tvr.Changelog{
		tvr.InsertEvent(1, row(1, 1, 100)),
		tvr.InsertEvent(2, row(2, 1, 100)),
		tvr.InsertEvent(3, row(3, 1, 200)),
		tvr.WatermarkEvent(4, 150), // ts=100 group complete: materialize (.., 2)
		tvr.InsertEvent(5, row(4, 1, 200)),
		tvr.WatermarkEvent(6, 250), // ts=200 group complete: materialize (.., 2)
	}
	res, stats := runPlan(t, pq, log, types.MaxTime)
	assertLog(t, res.Log, []string{
		"0:00:00.004 INSERT (0:00:00.100, 2)",
		"0:00:00.006 INSERT (0:00:00.200, 2)",
	})
	if stats.FreedGroups != 4 { // 2 in the aggregate + 2 in the emit buffer
		t.Errorf("FreedGroups = %d, want 4", stats.FreedGroups)
	}
}

// TestStatsStateTracking: operator state counters reflect join and aggregate
// state as the paper's state-size experiments require.
func TestStatsStateTracking(t *testing.T) {
	pq := twoSourceJoin(sqlparser.InnerJoin)
	pipe, err := exec.Compile(pq)
	if err != nil {
		t.Fatal(err)
	}
	sLog := tvr.Changelog{
		tvr.InsertEvent(1, row(1, 10, 100)),
		tvr.InsertEvent(2, row(2, 20, 200)),
	}
	rLog := tvr.Changelog{tvr.InsertEvent(3, tagRow(1, "A"))}
	if _, err := pipe.Run([]exec.Source{{Name: "s", Log: sLog}, {Name: "r", Log: rLog}}, types.MaxTime); err != nil {
		t.Fatal(err)
	}
	st := pipe.Stats()
	if st.StateRows != 3 {
		t.Errorf("StateRows = %d, want 3 (2 left + 1 right)", st.StateRows)
	}
	if st.OutputEvents != 1 {
		t.Errorf("OutputEvents = %d, want 1", st.OutputEvents)
	}
	if st.Partitions != 1 {
		t.Errorf("Partitions = %d, want 1", st.Partitions)
	}
	if got := fmt.Sprintf("%d", st.StateGroups); got != "0" {
		t.Errorf("StateGroups = %s, want 0", got)
	}
}
