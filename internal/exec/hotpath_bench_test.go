package exec

// Micro-benchmarks guarding the hot-path allocation work: routing-key
// hashing must not materialize a per-delivery string, and the keyed
// aggregate-group lookup must stay allocation-free for existing groups.
// Run with -benchmem; the wins show up as 0 allocs/op on the lookup paths.

import (
	"testing"

	"repro/internal/plan"
	"repro/internal/tvr"
	"repro/internal/types"
)

func benchScanPlan() *plan.PlannedQuery {
	sch := types.NewSchema(
		types.Column{Name: "key", Kind: types.KindInt64},
		types.Column{Name: "price", Kind: types.KindInt64},
		types.Column{Name: "name", Kind: types.KindString},
	)
	scan := &plan.Scan{Name: "s", Sch: sch, Stream: true}
	return &plan.PlannedQuery{Root: &plan.Aggregate{
		Input: scan,
		Keys:  []plan.Scalar{&plan.ColRef{Idx: 0, K: types.KindInt64}},
		Aggs:  []plan.AggCall{{Kind: plan.AggCountStar, K: types.KindInt64}},
		Sch: types.NewSchema(
			types.Column{Name: "key", Kind: types.KindInt64},
			types.Column{Name: "n", Kind: types.KindInt64},
		),
	}}
}

// BenchmarkRouteHash measures the per-delivery partition routing: FNV-1a over
// the key columns encoded into the pipeline's reusable scratch buffer.
func BenchmarkRouteHash(b *testing.B) {
	pp, err := CompilePartitioned(benchScanPlan(), 4)
	if err != nil {
		b.Fatal(err)
	}
	rows := make([]types.Row, 64)
	for i := range rows {
		rows[i] = types.Row{
			types.NewInt(int64(i * 7)),
			types.NewInt(int64(i)),
			types.NewString("abcdefgh"),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		d := delivery{seq: i, ev: tvr.InsertEvent(types.Time(i), rows[i%len(rows)])}
		sink += pp.route(d)
	}
	_ = sink
}

// BenchmarkAggGroupUpdate measures the aggregate operator's keyed group
// update — key encoding into the scratch buffer, allocation-free map lookup,
// and accumulator update — over a fixed working set of groups.
func BenchmarkAggGroupUpdate(b *testing.B) {
	pq := benchScanPlan()
	agg := newAggOp(pq.Root.(*plan.Aggregate), &nullSink{})
	rows := make([]types.Row, 128)
	for i := range rows {
		rows[i] = types.Row{
			types.NewInt(int64(i % 32)),
			types.NewInt(int64(i)),
			types.NewString("abcdefgh"),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := tvr.InsertEvent(types.Time(i), rows[i%len(rows)])
		if err := agg.Push(ev); err != nil {
			b.Fatal(err)
		}
	}
}

// benchMaxScanPlan is the keyed MAX variant: once every group's running MAX
// is established, further sub-max pushes are suppressed emissions — the pure
// group-lookup hot path.
func benchMaxScanPlan() *plan.PlannedQuery {
	sch := types.NewSchema(
		types.Column{Name: "key", Kind: types.KindInt64},
		types.Column{Name: "price", Kind: types.KindInt64},
		types.Column{Name: "name", Kind: types.KindString},
	)
	scan := &plan.Scan{Name: "s", Sch: sch, Stream: true}
	return &plan.PlannedQuery{Root: &plan.Aggregate{
		Input: scan,
		Keys:  []plan.Scalar{&plan.ColRef{Idx: 0, K: types.KindInt64}},
		Aggs:  []plan.AggCall{{Kind: plan.AggMax, Arg: &plan.ColRef{Idx: 1, K: types.KindInt64}, K: types.KindInt64}},
		Sch: types.NewSchema(
			types.Column{Name: "key", Kind: types.KindInt64},
			types.Column{Name: "maxPrice", Kind: types.KindInt64},
		),
	}}
}

// batchBenchEvents builds one reusable batch of keyed insert events.
func batchBenchEvents(n, groups, price int) []tvr.Event {
	evs := make([]tvr.Event, n)
	for i := range evs {
		evs[i] = tvr.InsertEvent(types.Time(i), types.Row{
			types.NewInt(int64(i % groups)),
			types.NewInt(int64(price)),
			types.NewString("abcdefgh"),
		})
	}
	return evs
}

// BenchmarkBatchPush measures the batched hot path end to end: one PushBatch
// of 512 events per iteration, against (a) the Q1-shaped stateless chain
// (filter -> project with integer arithmetic) and (b) the keyed aggregate.
// ns/op divided by 512 is the per-event cost the serial driver pays once the
// run merge hands it whole batches.
func BenchmarkBatchPush(b *testing.B) {
	shapes := []struct {
		name string
		pq   *plan.PlannedQuery
	}{
		{"q1-chain", batchChainPlan(b)},
		{"keyed-agg", benchScanPlan()},
	}
	for _, shape := range shapes {
		shape := shape
		b.Run(shape.name, func(b *testing.B) {
			p, err := Compile(shape.pq)
			if err != nil {
				b.Fatal(err)
			}
			if err := p.Start(); err != nil {
				b.Fatal(err)
			}
			scan := p.scans["s"][0]
			evs := batchBenchEvents(512, 32, 100)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := pushBatch(scan, evs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestKeyedHotPathAllocFree pins the 0-allocs/op property of the keyed
// aggregate's steady-state lookup: once every group exists and the incoming
// value does not change the MAX, a PushBatch costs zero heap allocations —
// key encoding reuses the scratch buffer, the group resolves through the
// run cache or an allocation-free map lookup, and the suppressed reemit
// builds its candidate row in reused scratch.
func TestKeyedHotPathAllocFree(t *testing.T) {
	pq := benchMaxScanPlan()
	agg := newAggOp(pq.Root.(*plan.Aggregate), &nullSink{})
	// Establish every group's MAX at 1000, then measure sub-max pushes.
	warm := batchBenchEvents(64, 32, 1000)
	cold := batchBenchEvents(512, 32, 100)
	if err := agg.PushBatch(warm); err != nil {
		t.Fatal(err)
	}
	if err := agg.PushBatch(cold); err != nil {
		t.Fatal(err) // also warms pend/scratch capacities
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := agg.PushBatch(cold); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state keyed PushBatch allocates %v allocs/run, want 0", allocs)
	}
}

// nullSink discards pushes (isolates the operator under benchmark).
type nullSink struct{}

func (n *nullSink) Push(tvr.Event) error { return nil }
func (n *nullSink) Finish() error        { return nil }
