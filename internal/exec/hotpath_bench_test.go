package exec

// Micro-benchmarks guarding the hot-path allocation work: routing-key
// hashing must not materialize a per-delivery string, and the keyed
// aggregate-group lookup must stay allocation-free for existing groups.
// Run with -benchmem; the wins show up as 0 allocs/op on the lookup paths.

import (
	"testing"

	"repro/internal/plan"
	"repro/internal/tvr"
	"repro/internal/types"
)

func benchScanPlan() *plan.PlannedQuery {
	sch := types.NewSchema(
		types.Column{Name: "key", Kind: types.KindInt64},
		types.Column{Name: "price", Kind: types.KindInt64},
		types.Column{Name: "name", Kind: types.KindString},
	)
	scan := &plan.Scan{Name: "s", Sch: sch, Stream: true}
	return &plan.PlannedQuery{Root: &plan.Aggregate{
		Input: scan,
		Keys:  []plan.Scalar{&plan.ColRef{Idx: 0, K: types.KindInt64}},
		Aggs:  []plan.AggCall{{Kind: plan.AggCountStar, K: types.KindInt64}},
		Sch: types.NewSchema(
			types.Column{Name: "key", Kind: types.KindInt64},
			types.Column{Name: "n", Kind: types.KindInt64},
		),
	}}
}

// BenchmarkRouteHash measures the per-delivery partition routing: FNV-1a over
// the key columns encoded into the pipeline's reusable scratch buffer.
func BenchmarkRouteHash(b *testing.B) {
	pp, err := CompilePartitioned(benchScanPlan(), 4)
	if err != nil {
		b.Fatal(err)
	}
	rows := make([]types.Row, 64)
	for i := range rows {
		rows[i] = types.Row{
			types.NewInt(int64(i * 7)),
			types.NewInt(int64(i)),
			types.NewString("abcdefgh"),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		d := delivery{seq: i, ev: tvr.InsertEvent(types.Time(i), rows[i%len(rows)])}
		sink += pp.route(d)
	}
	_ = sink
}

// BenchmarkAggGroupUpdate measures the aggregate operator's keyed group
// update — key encoding into the scratch buffer, allocation-free map lookup,
// and accumulator update — over a fixed working set of groups.
func BenchmarkAggGroupUpdate(b *testing.B) {
	pq := benchScanPlan()
	agg := newAggOp(pq.Root.(*plan.Aggregate), &nullSink{})
	rows := make([]types.Row, 128)
	for i := range rows {
		rows[i] = types.Row{
			types.NewInt(int64(i % 32)),
			types.NewInt(int64(i)),
			types.NewString("abcdefgh"),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := tvr.InsertEvent(types.Time(i), rows[i%len(rows)])
		if err := agg.Push(ev); err != nil {
			b.Fatal(err)
		}
	}
}

// nullSink discards pushes (isolates the operator under benchmark).
type nullSink struct{}

func (n *nullSink) Push(tvr.Event) error { return nil }
func (n *nullSink) Finish() error        { return nil }
