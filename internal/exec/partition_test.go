package exec_test

// Tests for the key-partitioned parallel driver: byte-identical equivalence
// with serial execution (run under -race to exercise the fan-out), fallback
// classification, and round-robin routing of stateless plans.

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sqlparser"
	"repro/internal/tvr"
	"repro/internal/types"
)

// genLog builds a deterministic changelog over nKeys keys with interleaved
// watermarks and a sprinkling of retractions.
func genLog(n, nKeys int) tvr.Changelog {
	var log tvr.Changelog
	state := int64(12345)
	next := func(mod int64) int64 {
		state = state*6364136223846793005 + 1442695040888963407
		v := (state >> 33) % mod
		if v < 0 {
			v += mod
		}
		return v
	}
	var live []types.Row
	for i := 0; i < n; i++ {
		pt := types.Time(int64(i) + 1)
		et := types.Time(int64(i/10) * 10)
		if len(live) > 4 && next(10) == 0 {
			// Retract a previously inserted row (and forget it, so it is
			// never retracted twice).
			vi := next(int64(len(live)))
			victim := live[vi]
			live = append(live[:vi], live[vi+1:]...)
			log = append(log, tvr.DeleteEvent(pt, victim))
			continue
		}
		r := row(next(int64(nKeys)), next(1000), et)
		live = append(live, r)
		log = append(log, tvr.InsertEvent(pt, r))
		if i%97 == 96 {
			log = append(log, tvr.WatermarkEvent(pt, et-20))
		}
	}
	return log
}

// assertSameResult asserts the two results are byte-identical in every
// rendering: the raw output changelog, the table rows, and the decorated
// stream rows.
func assertSameResult(t *testing.T, serial, parallel *exec.Result) {
	t.Helper()
	if len(serial.Log) != len(parallel.Log) {
		t.Fatalf("log length: serial %d vs parallel %d", len(serial.Log), len(parallel.Log))
	}
	for i := range serial.Log {
		if serial.Log[i].String() != parallel.Log[i].String() {
			t.Fatalf("log event %d: serial %s vs parallel %s", i, serial.Log[i], parallel.Log[i])
		}
	}
	sRows, pRows := serial.TableRows(), parallel.TableRows()
	if len(sRows) != len(pRows) {
		t.Fatalf("table rows: serial %d vs parallel %d", len(sRows), len(pRows))
	}
	for i := range sRows {
		if !sRows[i].Equal(pRows[i]) {
			t.Fatalf("table row %d: serial %s vs parallel %s", i, sRows[i], pRows[i])
		}
	}
	sStream, pStream := serial.StreamRows(), parallel.StreamRows()
	if len(sStream) != len(pStream) {
		t.Fatalf("stream rows: serial %d vs parallel %d", len(sStream), len(pStream))
	}
	for i := range sStream {
		a, b := sStream[i], pStream[i]
		if !a.Row.Equal(b.Row) || a.Undo != b.Undo || a.Ptime != b.Ptime || a.Ver != b.Ver {
			t.Fatalf("stream row %d differs", i)
		}
	}
}

// runBoth executes the same planned query serially and partitioned. Plans
// are rebuilt per run via mk because pipelines are single-use and share no
// state.
func runBoth(t *testing.T, mk func() *plan.PlannedQuery, sources []exec.Source, parts int, upTo types.Time) (*exec.Result, *exec.Result) {
	t.Helper()
	serialPipe, err := exec.Compile(mk())
	if err != nil {
		t.Fatalf("compile serial: %v", err)
	}
	serial, err := serialPipe.Run(sources, upTo)
	if err != nil {
		t.Fatalf("run serial: %v", err)
	}
	pp, err := exec.CompilePartitioned(mk(), parts)
	if err != nil {
		t.Fatalf("compile partitioned: %v", err)
	}
	// These tests measure the parallel path itself; disable the
	// small-input gate that would route test-sized inputs serially.
	pp.SetSmallInputGate(0)
	parallel, err := pp.Run(sources, upTo)
	if err != nil {
		t.Fatalf("run partitioned: %v", err)
	}
	if st := pp.Stats(); st.Partitions != parts {
		t.Fatalf("Stats.Partitions = %d, want %d", st.Partitions, parts)
	}
	return serial, parallel
}

// TestPartitionedAggregateEquivalence: grouped aggregation partitioned on
// the group key produces a byte-identical changelog, table, and stream.
func TestPartitionedAggregateEquivalence(t *testing.T) {
	mk := func() *plan.PlannedQuery {
		return &plan.PlannedQuery{Root: &plan.Aggregate{
			Input: scanNode(),
			Keys:  []plan.Scalar{col(0, types.KindInt64)},
			Aggs: []plan.AggCall{
				{Kind: plan.AggSum, Arg: col(1, types.KindInt64), K: types.KindInt64},
				{Kind: plan.AggCountStar, K: types.KindInt64},
				{Kind: plan.AggMax, Arg: col(1, types.KindInt64), K: types.KindInt64},
			},
			Sch: types.NewSchema(
				types.Column{Name: "key", Kind: types.KindInt64},
				types.Column{Name: "sum", Kind: types.KindInt64},
				types.Column{Name: "n", Kind: types.KindInt64},
				types.Column{Name: "max", Kind: types.KindInt64},
			),
		}}
	}
	sources := []exec.Source{{Name: "s", Log: genLog(3000, 37)}}
	for _, parts := range []int{2, 4, 7} {
		t.Run(fmt.Sprintf("parts=%d", parts), func(t *testing.T) {
			serial, parallel := runBoth(t, mk, sources, parts, types.MaxTime)
			assertSameResult(t, serial, parallel)
		})
	}
}

// TestPartitionedJoinEquivalence: a co-partitioned equi join matches the
// serial pipeline byte for byte, including null-padded outer rows.
func TestPartitionedJoinEquivalence(t *testing.T) {
	for _, kind := range []sqlparser.JoinKind{sqlparser.InnerJoin, sqlparser.LeftJoin} {
		t.Run(kind.String(), func(t *testing.T) {
			mk := func() *plan.PlannedQuery { return twoSourceJoin(kind) }
			rLog := tvr.Changelog{}
			for i := 0; i < 500; i++ {
				rLog = append(rLog, tvr.InsertEvent(types.Time(2*i+1), tagRow(int64(i%23), fmt.Sprintf("t%d", i%5))))
			}
			sources := []exec.Source{
				{Name: "s", Log: genLog(2000, 23)},
				{Name: "r", Log: rLog},
			}
			serial, parallel := runBoth(t, mk, sources, 4, types.MaxTime)
			assertSameResult(t, serial, parallel)
		})
	}
}

// TestPartitionedStatelessRoundRobin: plans with no stateful operator route
// round-robin and still reproduce the serial output exactly.
func TestPartitionedStatelessRoundRobin(t *testing.T) {
	mk := func() *plan.PlannedQuery {
		return &plan.PlannedQuery{Root: &plan.Filter{
			Input: scanNode(),
			Cond:  &plan.BinOp{Op: sqlparser.OpGt, L: col(1, types.KindInt64), R: intConst(500), K: types.KindBool},
		}}
	}
	sources := []exec.Source{{Name: "s", Log: genLog(2000, 11)}}
	serial, parallel := runBoth(t, mk, sources, 4, types.MaxTime)
	assertSameResult(t, serial, parallel)

	pp, err := exec.CompilePartitioned(mk(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := pp.Partitioning().Describe(); got != "round-robin" {
		t.Errorf("Describe() = %q, want round-robin", got)
	}
}

// TestPartitionedEmitAfterWatermark: the EMIT materialization operators run
// in the serial tail over the merged stream, so watermark-delayed output is
// byte-identical too.
func TestPartitionedEmitAfterWatermark(t *testing.T) {
	mk := func() *plan.PlannedQuery {
		a := eventTimeAgg()
		return &plan.PlannedQuery{Root: a, EmitKeyIdxs: []int{0}, Emit: plan.EmitSpec{AfterWatermark: true}}
	}
	sources := []exec.Source{{Name: "s", Log: genLog(2000, 13)}}
	serial, parallel := runBoth(t, mk, sources, 4, types.MaxTime)
	assertSameResult(t, serial, parallel)
}

// TestPartitionedHorizonAndLateData: truncating at a processing-time horizon
// (the table-at-time rendering) behaves identically, late drops included.
func TestPartitionedHorizonAndLateData(t *testing.T) {
	mk := func() *plan.PlannedQuery {
		return &plan.PlannedQuery{Root: eventTimeAgg(), EmitKeyIdxs: []int{0}}
	}
	sources := []exec.Source{{Name: "s", Log: genLog(2000, 13)}}
	serial, parallel := runBoth(t, mk, sources, 4, types.Time(900))
	assertSameResult(t, serial, parallel)
}

// TestPartitionedFallbackClassification: plans without a valid hash
// partitioning are rejected with ErrNotPartitionable so callers fall back.
// Shapes that used to be rejected but now partition — keyless aggregation
// (two-stage partial/final) and keyless joins (serial tail join over
// round-robin sides) — are asserted as compilable.
func TestPartitionedFallbackClassification(t *testing.T) {
	serial := map[string]*plan.PlannedQuery{
		"constant relation": {Root: &plan.Values{
			Rows: []types.Row{{types.NewInt(1)}},
			Sch:  types.NewSchema(types.Column{Name: "x", Kind: types.KindInt64}),
		}},
	}
	for name, pq := range serial {
		if _, err := exec.CompilePartitioned(pq, 4); !errors.Is(err, exec.ErrNotPartitionable) {
			t.Errorf("%s: error = %v, want ErrNotPartitionable", name, err)
		}
	}
	parallel := map[string]*plan.PlannedQuery{
		"global aggregate": {Root: &plan.Aggregate{
			Input: scanNode(),
			Aggs:  []plan.AggCall{{Kind: plan.AggCountStar, K: types.KindInt64}},
			Sch:   types.NewSchema(types.Column{Name: "n", Kind: types.KindInt64}),
		}},
		"cross join": {Root: &plan.Join{
			Left:  scanNode(),
			Right: &plan.Scan{Name: "r", Sch: bidSchema(), Stream: true},
			Kind:  sqlparser.CrossJoin,
			Sch:   bidSchema().WithoutEventTime().Concat(bidSchema().WithoutEventTime()),
		}},
	}
	for name, pq := range parallel {
		if _, err := exec.CompilePartitioned(pq, 4); err != nil {
			t.Errorf("%s: error = %v, want a partitioned plan", name, err)
		}
	}
	// A single partition is not a parallel plan either.
	if _, err := exec.CompilePartitioned(&plan.PlannedQuery{Root: scanNode()}, 1); !errors.Is(err, exec.ErrNotPartitionable) {
		t.Errorf("parts=1: error = %v, want ErrNotPartitionable", err)
	}
}
