// Package exec implements the push-based incremental execution engine.
//
// A compiled pipeline is a DAG of operators mirroring the logical plan. The
// driver merges the source changelogs into a single processing-time-ordered
// event timeline and pushes each event into the scans; every operator
// transforms input changelog events into the exact delta of its output
// relation, so at any processing time the materialized output equals the
// logical plan applied to the inputs' instantaneous relations (the pointwise
// semantics of Section 3.1 of the paper). Watermark events flow through the
// same channels and drive group completion, state cleanup, and the EMIT
// materialization operators.
package exec

import (
	"fmt"
	"sort"

	"repro/internal/plan"
	"repro/internal/tvr"
	"repro/internal/types"
)

// sink receives changelog events and an end-of-input signal.
type sink interface {
	// Push delivers one event. Events arrive in non-decreasing ptime
	// order.
	Push(ev tvr.Event) error
	// Finish signals that no more events will arrive on this input.
	Finish() error
}

// batchSink is the optional batch fast path on the sink contract.
// PushBatch(evs) must be observably identical to pushing each event in
// order — batching is a dispatch-shape optimization, never a semantic one —
// and implementations may not retain or mutate the slice (callers reuse the
// backing array, and drivers hand down sub-slices of the source logs). The
// events obey the same non-decreasing ptime contract as Push, and a batch
// may mix data and control (watermark/heartbeat) events. Operators that
// don't implement batchSink are fed through the pushBatch adapter, which
// preserves the one-event semantics exactly.
type batchSink interface {
	PushBatch(evs []tvr.Event) error
}

// pushBatch delivers evs to s, using the batch fast path when the sink opts
// in and falling back to per-event Push otherwise. Single-event batches take
// the Push path directly so size-1 dispatch is byte-for-byte the per-event
// path.
func pushBatch(s sink, evs []tvr.Event) error {
	switch len(evs) {
	case 0:
		return nil
	case 1:
		return s.Push(evs[0])
	}
	if bs, ok := s.(batchSink); ok {
		return bs.PushBatch(evs)
	}
	for i := range evs {
		if err := s.Push(evs[i]); err != nil {
			return err
		}
	}
	return nil
}

// opener is implemented by operators that emit output before any input
// (constant relations, global aggregates).
type opener interface {
	Open() error
}

// statser is implemented by operators that report execution statistics.
type statser interface {
	stats(*Stats)
}

// Execution-path labels reported in Stats.Path.
const (
	// PathSerial is the ordinary serial pipeline.
	PathSerial = "serial"
	// PathParallel is the key-partitioned pipeline with single-stage
	// operators.
	PathParallel = "parallel"
	// PathParallelTwoStage is the key-partitioned pipeline with at least
	// one partial/final aggregate pair.
	PathParallelTwoStage = "parallel-two-stage"
	// PathSerialSmallInput is the serial pipeline chosen by the
	// partitioned driver's small-input cost gate.
	PathSerialSmallInput = "serial-small-input"
)

// Stats aggregates observability counters across a pipeline, the raw
// material for the paper's state-size and update-volume experiments.
type Stats struct {
	// StateRows is the number of rows currently held in operator state
	// (join sides, aggregation groups, emit buffers).
	StateRows int
	// StateGroups is the number of live aggregation/emit groups.
	StateGroups int
	// LateDropped counts input rows dropped because their group was
	// already complete when they arrived (Extension 2 late-data policy).
	LateDropped int
	// FreedGroups counts groups whose state was released by watermark
	// completion (the Section 5 state-cleanup lesson).
	FreedGroups int
	// OutputEvents counts data events emitted by the pipeline root.
	OutputEvents int
	// Partitions is the number of parallel operator chains the query ran
	// on (1 for the serial pipeline).
	Partitions int
	// TwoStage reports whether the plan used partial/final aggregation.
	TwoStage bool
	// Path identifies which execution path ran (see the Path* constants),
	// including the partitioned driver's small-input serial fallback.
	Path string
	// Dispatches counts scan deliveries (batched or single) made by the
	// driver, and DispatchedEvents the events they carried; their ratio is
	// the average batch size reaching the operators. Neither is part of
	// checkpointed state — a restored pipeline starts the counters afresh.
	Dispatches       int64
	DispatchedEvents int64
	// EventsPerDispatch is DispatchedEvents/Dispatches (0 when idle): the
	// observable measure of how much batching the ingest granularity allows.
	EventsPerDispatch float64
}

// Pipeline is a compiled, runnable query.
//
// A pipeline has two interchangeable driving styles. Run replays recorded
// changelogs in one shot. The incremental lifecycle — Start, any number of
// Feed/Advance calls, then Close — keeps the pipeline resident so a standing
// query can be fed new events as they arrive; Drain hands back the output
// deltas materialized so far. Any Feed-batch split of the same delivery
// sequence produces byte-identical output to a one-shot Run.
type Pipeline struct {
	collector *Collector
	scans     map[string][]*scanOp // lower-cased source name -> scan operators
	scanOrder []string             // deterministic source ordering
	scanBind  []scanBinding        // scan operator -> plan node, in build order
	allOps    []sink               // in build (parent-before-child) order
	opened    bool
	closed    bool

	dispatches       int64 // scan deliveries (batched or single)
	dispatchedEvents int64 // events carried by those deliveries

	// cutHook, when set, intercepts plan nodes at the partitioned
	// pipeline's exchange frontier: the tail builder uses it to stop the
	// serial segment at each cut and record the sink the cut subtree's
	// merged stream must feed. Returning handled=true skips building the
	// node's subtree.
	cutHook func(n plan.Node, out sink) (handled bool, err error)
}

// scanBinding ties a compiled scan operator back to its plan node, so the
// partitioned driver can look up per-scan routing keys.
type scanBinding struct {
	node *plan.Scan
	op   *scanOp
}

// Source provides the recorded changelog of one named relation.
type Source struct {
	Name string
	Log  tvr.Changelog
}

// buildTail constructs the materialization tail shared by the serial and
// partitioned pipelines: the collector, wrapped by the query's EMIT
// materialization-control operators. It returns the operators (collector
// first) and the topmost sink the plan root should feed. Keeping this in one
// place is what guarantees the two execution paths materialize identically.
func buildTail(pq *plan.PlannedQuery) (collector *Collector, ops []sink, top sink) {
	collector = newCollector(pq)
	ops = append(ops, collector)
	top = collector
	switch {
	case pq.Emit.AfterWatermark && pq.Emit.Delay == nil:
		e := newEmitAfterWatermark(pq.Root.Schema(), top)
		ops = append(ops, e)
		top = e
	case pq.Emit.Delay != nil:
		e := newEmitAfterDelay(pq.Root.Schema(), *pq.Emit.Delay, pq.Emit.AfterWatermark, top)
		ops = append(ops, e)
		top = e
	}
	return collector, ops, top
}

// Compile builds a pipeline for the planned query.
func Compile(pq *plan.PlannedQuery) (*Pipeline, error) {
	p := &Pipeline{scans: make(map[string][]*scanOp)}
	collector, tailOps, top := buildTail(pq)
	p.collector = collector
	p.allOps = append(p.allOps, tailOps...)
	if err := p.build(pq.Root, top); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *Pipeline) addScan(name string, s *scanOp) {
	key := lowered(name)
	if _, ok := p.scans[key]; !ok {
		p.scanOrder = append(p.scanOrder, key)
	}
	p.scans[key] = append(p.scans[key], s)
}

func lowered(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 32
		}
	}
	return string(b)
}

// build wires the operator for n so that its output flows into out.
func (p *Pipeline) build(n plan.Node, out sink) error {
	if p.cutHook != nil {
		if handled, err := p.cutHook(n, out); handled || err != nil {
			return err
		}
	}
	switch x := n.(type) {
	case *plan.Scan:
		s := &scanOp{out: out, asOf: x.AsOf, bounded: !x.Stream}
		p.allOps = append(p.allOps, s)
		p.addScan(x.Name, s)
		p.scanBind = append(p.scanBind, scanBinding{node: x, op: s})
		return nil
	case *plan.Values:
		v := &valuesOp{out: out, rows: x.Rows}
		p.allOps = append(p.allOps, v)
		return nil
	case *plan.Filter:
		f := &filterOp{out: out, cond: x.Cond}
		p.allOps = append(p.allOps, f)
		return p.build(x.Input, f)
	case *plan.Project:
		pr := &projectOp{out: out, exprs: x.Exprs}
		p.allOps = append(p.allOps, pr)
		return p.build(x.Input, pr)
	case *plan.WindowTVF:
		w := newWindowOp(x, out)
		p.allOps = append(p.allOps, w)
		return p.build(x.Input, w)
	case *plan.Aggregate:
		a := newAggOp(x, out)
		p.allOps = append(p.allOps, a)
		return p.build(x.Input, a)
	case *plan.Join:
		j := newJoinOp(x, out)
		p.allOps = append(p.allOps, j)
		if err := p.build(x.Left, j.leftPort()); err != nil {
			return err
		}
		return p.build(x.Right, j.rightPort())
	case *plan.Distinct:
		d := &distinctOp{out: out, counts: make(map[string]*rowCount)}
		p.allOps = append(p.allOps, d)
		return p.build(x.Input, d)
	case *plan.Union:
		u := newUnionOp(len(x.Inputs), out)
		p.allOps = append(p.allOps, u)
		for i, in := range x.Inputs {
			if err := p.build(in, u.port(i)); err != nil {
				return err
			}
		}
		return nil
	case *plan.SetOp:
		s := newSetOp(x, out)
		p.allOps = append(p.allOps, s)
		if err := p.build(x.Left, s.leftPort()); err != nil {
			return err
		}
		return p.build(x.Right, s.rightPort())
	default:
		return fmt.Errorf("exec: unsupported plan node %T", n)
	}
}

// Run feeds the sources through the pipeline. Events with ptime greater than
// upTo are excluded (pass types.MaxTime to consume everything); a heartbeat
// at upTo fires any pending processing-time timers, and Finish flushes the
// rest. Run may be called once per compiled pipeline and cannot be mixed
// with the incremental lifecycle.
func (p *Pipeline) Run(sources []Source, upTo types.Time) (*Result, error) {
	if p.opened {
		return nil, fmt.Errorf("exec: pipeline already ran")
	}
	if err := p.Start(); err != nil {
		return nil, err
	}
	if err := p.feed(sources, upTo, true); err != nil {
		return nil, err
	}
	// Advance the processing-time clock to the query horizon so that
	// delay timers due by now fire, then finish every scan.
	if upTo != types.MaxTime {
		if err := p.Advance(upTo); err != nil {
			return nil, err
		}
	}
	return p.Close()
}

// Start opens every operator, making the pipeline ready for incremental
// Feed/Advance calls. Open runs parent-first so that open-time emissions
// (constant relations, empty global aggregates) flow into already-open
// sinks.
func (p *Pipeline) Start() error {
	if p.opened {
		return fmt.Errorf("exec: pipeline already started")
	}
	p.opened = true
	for _, op := range p.allOps {
		if o, ok := op.(opener); ok {
			if err := o.Open(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Feed merges the batch's per-source events into one ptime-ordered delivery
// sequence (ties broken by scan registration order, exactly as Run orders
// them) and pushes it through the scans. Sources with no new events may be
// omitted; operator state persists across calls, so feeding a changelog in
// any number of order-respecting batches is byte-identical to feeding it in
// one.
func (p *Pipeline) Feed(batch []Source) error {
	return p.feed(batch, types.MaxTime, false)
}

func (p *Pipeline) feed(batch []Source, upTo types.Time, requireAll bool) error {
	if !p.opened || p.closed {
		return fmt.Errorf("exec: pipeline not accepting input")
	}
	return forEachMergedRuns(batch, p.scanOrder, upTo, requireAll, func(name string, evs []tvr.Event) error {
		scans := p.scans[name]
		if len(scans) == 1 {
			p.dispatches++
			p.dispatchedEvents += int64(len(evs))
			return pushBatch(scans[0], evs)
		}
		// Several scan operators read this source (a self-join): the serial
		// order interleaves the scans per event, so a whole-run dispatch to
		// one scan at a time would reorder deliveries. Fall back to the
		// per-event path.
		for _, ev := range evs {
			for _, s := range scans {
				p.dispatches++
				p.dispatchedEvents++
				if err := s.Push(ev); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

// Advance moves the processing-time clock to pt by pushing a heartbeat into
// every scan, firing any processing-time timers (EMIT AFTER DELAY) due by
// then. The relation contents are unchanged.
func (p *Pipeline) Advance(pt types.Time) error {
	if !p.opened || p.closed {
		return fmt.Errorf("exec: pipeline not accepting input")
	}
	hb := tvr.HeartbeatEvent(pt)
	for _, name := range p.scanOrder {
		for _, s := range p.scans[name] {
			p.dispatches++
			p.dispatchedEvents++
			if err := s.Push(hb); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close signals end-of-input on every scan (completing bounded relations and
// flushing pending timers) and returns the materialized result.
func (p *Pipeline) Close() (*Result, error) {
	if !p.opened {
		return nil, fmt.Errorf("exec: pipeline not started")
	}
	if p.closed {
		return nil, fmt.Errorf("exec: pipeline already closed")
	}
	p.closed = true
	for _, name := range p.scanOrder {
		for _, s := range p.scans[name] {
			if err := s.Finish(); err != nil {
				return nil, err
			}
		}
	}
	return p.collector.result()
}

// Drain returns the output changelog events materialized since the previous
// Drain (or since Start), in emission order.
func (p *Pipeline) Drain() tvr.Changelog { return p.collector.drain() }

// OutputWatermark reports the output relation's current watermark: the
// completeness assertion that has propagated through the plan to the root.
func (p *Pipeline) OutputWatermark() types.Time { return p.collector.watermark() }

// Stats walks the pipeline collecting operator statistics.
func (p *Pipeline) Stats() Stats {
	var st Stats
	for _, op := range p.allOps {
		if s, ok := op.(statser); ok {
			s.stats(&st)
		}
	}
	st.Partitions = 1
	st.Path = PathSerial
	st.Dispatches = p.dispatches
	st.DispatchedEvents = p.dispatchedEvents
	if st.Dispatches > 0 {
		st.EventsPerDispatch = float64(st.DispatchedEvents) / float64(st.Dispatches)
	}
	return st
}

// DispatchStats returns the dispatch counters without walking operator state.
func (p *Pipeline) DispatchStats() (dispatches, events int64) {
	return p.dispatches, p.dispatchedEvents
}

// Result is a query's materialized output.
type Result struct {
	// Schema describes the output columns.
	Schema *types.Schema
	// Log is the output changelog (data events only, ptime-ordered).
	Log tvr.Changelog
	// Snapshot is the final output relation (the table rendering).
	Snapshot *tvr.Relation
	// EmitKeyIdxs are the event-time grouping columns used for changelog
	// version numbering.
	EmitKeyIdxs []int
	// OrderBy / Limit presentation settings from the plan.
	OrderBy []plan.SortKey
	Limit   *int64
}

// TableRows renders the snapshot with presentation order applied: ORDER BY
// keys first, then insertion order for stability.
func (r *Result) TableRows() []types.Row {
	rows := r.Snapshot.Rows()
	if len(r.OrderBy) > 0 {
		sort.SliceStable(rows, func(i, j int) bool {
			for _, k := range r.OrderBy {
				a, b := rows[i][k.Col], rows[j][k.Col]
				if a.IsNull() && b.IsNull() {
					continue
				}
				if a.IsNull() {
					return !k.Desc
				}
				if b.IsNull() {
					return k.Desc
				}
				c, err := a.Compare(b)
				if err != nil || c == 0 {
					continue
				}
				if k.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	if r.Limit != nil && int64(len(rows)) > *r.Limit {
		rows = rows[:*r.Limit]
	}
	return rows
}

// StreamRows renders the output changelog with undo/ptime/ver metadata
// (Extension 4).
func (r *Result) StreamRows() []tvr.StreamRow {
	return tvr.RenderStream(r.Log, r.EmitKeyIdxs)
}

// Collector is the terminal sink: it materializes both renderings of the
// output TVR.
type Collector struct {
	schema  *types.Schema
	rel     *tvr.Relation
	log     tvr.Changelog
	keys    []int
	orderBy []plan.SortKey
	limit   *int64
	outN    int
	drained int
	wm      types.Time
	err     error
}

func newCollector(pq *plan.PlannedQuery) *Collector {
	return &Collector{
		schema:  pq.Root.Schema(),
		rel:     tvr.NewRelation(),
		keys:    pq.EmitKeyIdxs,
		orderBy: pq.OrderBy,
		limit:   pq.Limit,
		wm:      types.MinTime,
	}
}

// Push implements sink. The relation maintains its bag key via its internal
// scratch encoder (no per-event key string unless the row is new), and skips
// the defensive row copy: the collector retains every pushed event in its
// log anyway, so pushed rows are immutable by contract.
func (c *Collector) Push(ev tvr.Event) error {
	switch ev.Kind {
	case tvr.Insert, tvr.Delete:
		if err := c.rel.ApplyOwned(ev); err != nil {
			return err
		}
		c.log = append(c.log, ev)
		c.outN++
	case tvr.Watermark:
		if ev.Wm > c.wm {
			c.wm = ev.Wm
		}
	}
	return nil
}

// PushBatch implements batchSink: the terminal sink applies the whole batch
// in one call, saving a dispatch per event.
func (c *Collector) PushBatch(evs []tvr.Event) error {
	for i := range evs {
		if err := c.Push(evs[i]); err != nil {
			return err
		}
	}
	return nil
}

// PushKeyed is Push with the row's bag key precomputed by the caller. The
// partitioned driver hashes rows in the worker goroutines, so the serial
// merge stage can reuse that work instead of re-serializing every output row.
func (c *Collector) PushKeyed(ev tvr.Event, key string) error {
	if key == "" {
		return c.Push(ev)
	}
	switch ev.Kind {
	case tvr.Insert, tvr.Delete:
		if err := c.rel.ApplyKeyedOwned(ev, key); err != nil {
			return err
		}
		c.log = append(c.log, ev)
		c.outN++
	case tvr.Watermark:
		if ev.Wm > c.wm {
			c.wm = ev.Wm
		}
	}
	return nil
}

// drain returns the output events appended since the previous drain. The
// three-index slice keeps later appends from aliasing into the caller's view.
func (c *Collector) drain() tvr.Changelog {
	out := c.log[c.drained:len(c.log):len(c.log)]
	c.drained = len(c.log)
	return out
}

func (c *Collector) watermark() types.Time { return c.wm }

// Finish implements sink.
func (c *Collector) Finish() error { return nil }

func (c *Collector) stats(s *Stats) { s.OutputEvents += c.outN }

func (c *Collector) result() (*Result, error) {
	if c.err != nil {
		return nil, c.err
	}
	return &Result{
		Schema:      c.schema,
		Log:         c.log,
		Snapshot:    c.rel,
		EmitKeyIdxs: c.keys,
		OrderBy:     c.orderBy,
		Limit:       c.limit,
	}, nil
}
