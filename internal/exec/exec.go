// Package exec implements the push-based incremental execution engine.
//
// A compiled pipeline is a DAG of operators mirroring the logical plan. The
// driver merges the source changelogs into a single processing-time-ordered
// event timeline and pushes each event into the scans; every operator
// transforms input changelog events into the exact delta of its output
// relation, so at any processing time the materialized output equals the
// logical plan applied to the inputs' instantaneous relations (the pointwise
// semantics of Section 3.1 of the paper). Watermark events flow through the
// same channels and drive group completion, state cleanup, and the EMIT
// materialization operators.
package exec

import (
	"fmt"
	"sort"

	"repro/internal/plan"
	"repro/internal/tvr"
	"repro/internal/types"
)

// sink receives changelog events and an end-of-input signal.
type sink interface {
	// Push delivers one event. Events arrive in non-decreasing ptime
	// order.
	Push(ev tvr.Event) error
	// Finish signals that no more events will arrive on this input.
	Finish() error
}

// opener is implemented by operators that emit output before any input
// (constant relations, global aggregates).
type opener interface {
	Open() error
}

// statser is implemented by operators that report execution statistics.
type statser interface {
	stats(*Stats)
}

// Stats aggregates observability counters across a pipeline, the raw
// material for the paper's state-size and update-volume experiments.
type Stats struct {
	// StateRows is the number of rows currently held in operator state
	// (join sides, aggregation groups, emit buffers).
	StateRows int
	// StateGroups is the number of live aggregation/emit groups.
	StateGroups int
	// LateDropped counts input rows dropped because their group was
	// already complete when they arrived (Extension 2 late-data policy).
	LateDropped int
	// FreedGroups counts groups whose state was released by watermark
	// completion (the Section 5 state-cleanup lesson).
	FreedGroups int
	// OutputEvents counts data events emitted by the pipeline root.
	OutputEvents int
	// Partitions is the number of parallel operator chains the query ran
	// on (1 for the serial pipeline).
	Partitions int
}

// Pipeline is a compiled, runnable query.
type Pipeline struct {
	collector *Collector
	scans     map[string][]*scanOp // lower-cased source name -> scan operators
	scanOrder []string             // deterministic source ordering
	scanBind  []scanBinding        // scan operator -> plan node, in build order
	allOps    []sink               // in build (parent-before-child) order
	opened    bool
}

// scanBinding ties a compiled scan operator back to its plan node, so the
// partitioned driver can look up per-scan routing keys.
type scanBinding struct {
	node *plan.Scan
	op   *scanOp
}

// Source provides the recorded changelog of one named relation.
type Source struct {
	Name string
	Log  tvr.Changelog
}

// buildTail constructs the materialization tail shared by the serial and
// partitioned pipelines: the collector, wrapped by the query's EMIT
// materialization-control operators. It returns the operators (collector
// first) and the topmost sink the plan root should feed. Keeping this in one
// place is what guarantees the two execution paths materialize identically.
func buildTail(pq *plan.PlannedQuery) (collector *Collector, ops []sink, top sink) {
	collector = newCollector(pq)
	ops = append(ops, collector)
	top = collector
	switch {
	case pq.Emit.AfterWatermark && pq.Emit.Delay == nil:
		e := newEmitAfterWatermark(pq.Root.Schema(), top)
		ops = append(ops, e)
		top = e
	case pq.Emit.Delay != nil:
		e := newEmitAfterDelay(pq.Root.Schema(), *pq.Emit.Delay, pq.Emit.AfterWatermark, top)
		ops = append(ops, e)
		top = e
	}
	return collector, ops, top
}

// Compile builds a pipeline for the planned query.
func Compile(pq *plan.PlannedQuery) (*Pipeline, error) {
	p := &Pipeline{scans: make(map[string][]*scanOp)}
	collector, tailOps, top := buildTail(pq)
	p.collector = collector
	p.allOps = append(p.allOps, tailOps...)
	if err := p.build(pq.Root, top); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *Pipeline) addScan(name string, s *scanOp) {
	key := lowered(name)
	if _, ok := p.scans[key]; !ok {
		p.scanOrder = append(p.scanOrder, key)
	}
	p.scans[key] = append(p.scans[key], s)
}

func lowered(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 32
		}
	}
	return string(b)
}

// build wires the operator for n so that its output flows into out.
func (p *Pipeline) build(n plan.Node, out sink) error {
	switch x := n.(type) {
	case *plan.Scan:
		s := &scanOp{out: out, asOf: x.AsOf, bounded: !x.Stream}
		p.allOps = append(p.allOps, s)
		p.addScan(x.Name, s)
		p.scanBind = append(p.scanBind, scanBinding{node: x, op: s})
		return nil
	case *plan.Values:
		v := &valuesOp{out: out, rows: x.Rows}
		p.allOps = append(p.allOps, v)
		return nil
	case *plan.Filter:
		f := &filterOp{out: out, cond: x.Cond}
		p.allOps = append(p.allOps, f)
		return p.build(x.Input, f)
	case *plan.Project:
		pr := &projectOp{out: out, exprs: x.Exprs}
		p.allOps = append(p.allOps, pr)
		return p.build(x.Input, pr)
	case *plan.WindowTVF:
		w := newWindowOp(x, out)
		p.allOps = append(p.allOps, w)
		return p.build(x.Input, w)
	case *plan.Aggregate:
		a := newAggOp(x, out)
		p.allOps = append(p.allOps, a)
		return p.build(x.Input, a)
	case *plan.Join:
		j := newJoinOp(x, out)
		p.allOps = append(p.allOps, j)
		if err := p.build(x.Left, j.leftPort()); err != nil {
			return err
		}
		return p.build(x.Right, j.rightPort())
	case *plan.Distinct:
		d := &distinctOp{out: out, counts: make(map[string]*rowCount)}
		p.allOps = append(p.allOps, d)
		return p.build(x.Input, d)
	case *plan.Union:
		u := newUnionOp(len(x.Inputs), out)
		p.allOps = append(p.allOps, u)
		for i, in := range x.Inputs {
			if err := p.build(in, u.port(i)); err != nil {
				return err
			}
		}
		return nil
	case *plan.SetOp:
		s := newSetOp(x, out)
		p.allOps = append(p.allOps, s)
		if err := p.build(x.Left, s.leftPort()); err != nil {
			return err
		}
		return p.build(x.Right, s.rightPort())
	default:
		return fmt.Errorf("exec: unsupported plan node %T", n)
	}
}

// Run feeds the sources through the pipeline. Events with ptime greater than
// upTo are excluded (pass types.MaxTime to consume everything); a heartbeat
// at upTo fires any pending processing-time timers, and Finish flushes the
// rest. Run may be called once per compiled pipeline.
func (p *Pipeline) Run(sources []Source, upTo types.Time) (*Result, error) {
	if p.opened {
		return nil, fmt.Errorf("exec: pipeline already ran")
	}
	p.opened = true
	// Open operators parent-first so that open-time emissions (constant
	// relations, empty global aggregates) flow into already-open sinks.
	for _, op := range p.allOps {
		if o, ok := op.(opener); ok {
			if err := o.Open(); err != nil {
				return nil, err
			}
		}
	}

	bySource := make(map[string]tvr.Changelog, len(sources))
	for _, s := range sources {
		bySource[lowered(s.Name)] = s.Log
	}
	type cursor struct {
		name string
		log  tvr.Changelog
		pos  int
	}
	var cursors []*cursor
	for _, name := range p.scanOrder {
		log, ok := bySource[name]
		if !ok {
			return nil, fmt.Errorf("exec: no source data for relation %q", name)
		}
		cursors = append(cursors, &cursor{name: name, log: log})
	}

	// K-way merge by ptime; ties broken by source registration order
	// (cursor index), which keeps runs deterministic.
	for {
		best := -1
		for i, c := range cursors {
			for c.pos < len(c.log) && c.log[c.pos].Ptime > upTo {
				c.pos = len(c.log) // discard tail beyond the horizon
			}
			if c.pos >= len(c.log) {
				continue
			}
			if best < 0 || c.log[c.pos].Ptime < cursors[best].log[cursors[best].pos].Ptime {
				best = i
			}
		}
		if best < 0 {
			break
		}
		c := cursors[best]
		ev := c.log[c.pos]
		c.pos++
		for _, s := range p.scans[c.name] {
			if err := s.Push(ev); err != nil {
				return nil, err
			}
		}
	}

	// Advance the processing-time clock to the query horizon so that
	// delay timers due by now fire, then finish every scan.
	if upTo != types.MaxTime {
		hb := tvr.HeartbeatEvent(upTo)
		for _, name := range p.scanOrder {
			for _, s := range p.scans[name] {
				if err := s.Push(hb); err != nil {
					return nil, err
				}
			}
		}
	}
	for _, name := range p.scanOrder {
		for _, s := range p.scans[name] {
			if err := s.Finish(); err != nil {
				return nil, err
			}
		}
	}
	return p.collector.result()
}

// Stats walks the pipeline collecting operator statistics.
func (p *Pipeline) Stats() Stats {
	var st Stats
	for _, op := range p.allOps {
		if s, ok := op.(statser); ok {
			s.stats(&st)
		}
	}
	st.Partitions = 1
	return st
}

// Result is a query's materialized output.
type Result struct {
	// Schema describes the output columns.
	Schema *types.Schema
	// Log is the output changelog (data events only, ptime-ordered).
	Log tvr.Changelog
	// Snapshot is the final output relation (the table rendering).
	Snapshot *tvr.Relation
	// EmitKeyIdxs are the event-time grouping columns used for changelog
	// version numbering.
	EmitKeyIdxs []int
	// OrderBy / Limit presentation settings from the plan.
	OrderBy []plan.SortKey
	Limit   *int64
}

// TableRows renders the snapshot with presentation order applied: ORDER BY
// keys first, then insertion order for stability.
func (r *Result) TableRows() []types.Row {
	rows := r.Snapshot.Rows()
	if len(r.OrderBy) > 0 {
		sort.SliceStable(rows, func(i, j int) bool {
			for _, k := range r.OrderBy {
				a, b := rows[i][k.Col], rows[j][k.Col]
				if a.IsNull() && b.IsNull() {
					continue
				}
				if a.IsNull() {
					return !k.Desc
				}
				if b.IsNull() {
					return k.Desc
				}
				c, err := a.Compare(b)
				if err != nil || c == 0 {
					continue
				}
				if k.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	if r.Limit != nil && int64(len(rows)) > *r.Limit {
		rows = rows[:*r.Limit]
	}
	return rows
}

// StreamRows renders the output changelog with undo/ptime/ver metadata
// (Extension 4).
func (r *Result) StreamRows() []tvr.StreamRow {
	return tvr.RenderStream(r.Log, r.EmitKeyIdxs)
}

// Collector is the terminal sink: it materializes both renderings of the
// output TVR.
type Collector struct {
	schema  *types.Schema
	rel     *tvr.Relation
	log     tvr.Changelog
	keys    []int
	orderBy []plan.SortKey
	limit   *int64
	outN    int
	err     error
}

func newCollector(pq *plan.PlannedQuery) *Collector {
	return &Collector{
		schema:  pq.Root.Schema(),
		rel:     tvr.NewRelation(),
		keys:    pq.EmitKeyIdxs,
		orderBy: pq.OrderBy,
		limit:   pq.Limit,
	}
}

// Push implements sink.
func (c *Collector) Push(ev tvr.Event) error { return c.PushKeyed(ev, "") }

// PushKeyed is Push with the row's bag key precomputed by the caller. The
// partitioned driver hashes rows in the worker goroutines, so the serial
// merge stage can reuse that work instead of re-serializing every output row.
func (c *Collector) PushKeyed(ev tvr.Event, key string) error {
	switch ev.Kind {
	case tvr.Insert, tvr.Delete:
		if key == "" {
			key = ev.Row.Key()
		}
		if err := c.rel.ApplyKeyed(ev, key); err != nil {
			return err
		}
		c.log = append(c.log, ev)
		c.outN++
	}
	return nil
}

// Finish implements sink.
func (c *Collector) Finish() error { return nil }

func (c *Collector) stats(s *Stats) { s.OutputEvents += c.outN }

func (c *Collector) result() (*Result, error) {
	if c.err != nil {
		return nil, c.err
	}
	return &Result{
		Schema:      c.schema,
		Log:         c.log,
		Snapshot:    c.rel,
		EmitKeyIdxs: c.keys,
		OrderBy:     c.orderBy,
		Limit:       c.limit,
	}, nil
}
