package exec_test

// The checkpoint/restore invariant, property-tested serial and partitioned:
// for random Feed splits of the source changelogs, checkpointing the
// pipeline at a split boundary, discarding it, and restoring a fresh
// pipeline from the checkpoint yields byte-identical output to the
// uninterrupted run — at EVERY split boundary, including mid-window, with
// armed EMIT AFTER DELAY timers, partially-complete groups, and in-flight
// join state.

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/tvr"
	"repro/internal/types"
)

// checkpointRoundTrip snapshots d, rebuilds a driver from the snapshot, and
// returns it along with the encoded size. The original driver is NOT closed:
// discarding it mid-flight is exactly the crash the checkpoint protects
// against (its goroutines, if any, are shut down to keep tests leak-free).
func checkpointRoundTrip(t *testing.T, d exec.Driver, pq *plan.PlannedQuery) exec.Driver {
	t.Helper()
	var buf bytes.Buffer
	switch x := d.(type) {
	case *exec.Pipeline:
		if err := x.Checkpoint(&buf); err != nil {
			t.Fatalf("checkpoint: %v", err)
		}
		restored, err := exec.CompileFromCheckpoint(pq, bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("restore: %v", err)
		}
		return restored
	case *exec.PartitionedPipeline:
		if err := x.Checkpoint(&buf); err != nil {
			t.Fatalf("checkpoint: %v", err)
		}
		restored, err := exec.CompilePartitionedFromCheckpoint(pq, bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("restore: %v", err)
		}
		// Release the abandoned pipeline's worker goroutines; a real crash
		// would take the whole process with it.
		x.Abandon()
		return restored
	default:
		t.Fatalf("unknown driver type %T", d)
		return nil
	}
}

// feedWithRestores drives the incremental lifecycle like feedInBatches, but
// after every batch boundary the pipeline is checkpointed, thrown away, and
// replaced by a restore — the process-restart-at-every-split-point property.
func feedWithRestores(t *testing.T, pq *plan.PlannedQuery, parts int, sources []exec.Source, cuts []types.Time, upTo types.Time) (*exec.Result, tvr.Changelog) {
	t.Helper()
	d := compileDriver(t, pq, parts)
	if err := d.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	sources = trimSources(sources, upTo)
	pos := make([]int, len(sources))
	var drained tvr.Changelog
	boundaries := append(append([]types.Time{}, cuts...), types.MaxTime)
	for _, cut := range boundaries {
		var batch []exec.Source
		for i, s := range sources {
			start := pos[i]
			end := start
			for end < len(s.Log) && s.Log[end].Ptime <= cut {
				end++
			}
			if end > start {
				batch = append(batch, exec.Source{Name: s.Name, Log: s.Log[start:end]})
				pos[i] = end
			}
		}
		if err := d.Feed(batch); err != nil {
			t.Fatalf("feed: %v", err)
		}
		drained = append(drained, d.Drain()...)
		// Restart the process at this split point.
		d = checkpointRoundTrip(t, d, pq)
	}
	if upTo != types.MaxTime {
		if err := d.Advance(upTo); err != nil {
			t.Fatalf("advance: %v", err)
		}
		drained = append(drained, d.Drain()...)
		d = checkpointRoundTrip(t, d, pq)
	}
	res, err := d.Close()
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	drained = append(drained, d.Drain()...)
	return res, drained
}

// TestCheckpointRestoreEquivalence: for every query shape, both executors,
// and several random cut sets, restoring from a checkpoint at every split
// boundary produces the same drained output sequence, final snapshot, and
// output watermark as the uninterrupted one-shot Run.
func TestCheckpointRestoreEquivalence(t *testing.T) {
	e := lifecycleEngine(t)
	for _, q := range lifecycleQueries() {
		q := q
		t.Run(q.name, func(t *testing.T) {
			pq := planSQL(t, e, q.sql)
			sources := execSourcesFor(t, e, pq.Root)
			pts := splitPoints(sources)
			horizons := []types.Time{types.MaxTime}
			if len(pts) > 2 {
				horizons = append(horizons, pts[len(pts)/2])
			}
			for _, parts := range []int{1, 3} {
				parts := parts
				t.Run(fmt.Sprintf("parts=%d", parts), func(t *testing.T) {
					for hi, upTo := range horizons {
						oneShot := compileDriver(t, pq, parts)
						if pp, ok := oneShot.(*exec.PartitionedPipeline); ok {
							pp.SetSmallInputGate(0)
						}
						want, err := oneShot.(interface {
							Run([]exec.Source, types.Time) (*exec.Result, error)
						}).Run(sources, upTo)
						if err != nil {
							t.Fatalf("run: %v", err)
						}
						rng := rand.New(rand.NewSource(int64(977 + hi)))
						cutsets := [][]types.Time{
							randomCuts(rng, pts, 4),
							randomCuts(rng, pts, len(pts)/4+1),
						}
						if !testing.Short() {
							cutsets = append(cutsets, pts) // restart after every distinct ptime
						}
						for ci, cuts := range cutsets {
							got, drained := feedWithRestores(t, pq, parts, sources, cuts, upTo)
							label := fmt.Sprintf("horizon=%s cutset=%d", upTo, ci)
							// The drained concatenation across restarts must
							// equal the uninterrupted output changelog.
							if len(drained) != len(want.Log) {
								t.Fatalf("%s: drained %d events across restarts, want %d", label, len(drained), len(want.Log))
							}
							for i := range drained {
								if drained[i].String() != want.Log[i].String() {
									t.Fatalf("%s: drained event %d = %s, want %s", label, i, drained[i], want.Log[i])
								}
							}
							// The final snapshot (restored relation state) and
							// presentation rendering must match too.
							gt := tvr.FormatRelationTable(got.Schema, got.TableRows())
							wt := tvr.FormatRelationTable(want.Schema, want.TableRows())
							if gt != wt {
								t.Fatalf("%s: table rendering differs:\ngot:\n%s\nwant:\n%s", label, gt, wt)
							}
						}
					}
				})
			}
		})
	}
}

// TestCheckpointDeterministic: checkpointing the same state twice yields
// identical bytes — the property the golden-file format tests rely on.
func TestCheckpointDeterministic(t *testing.T) {
	e := lifecycleEngine(t)
	for _, q := range lifecycleQueries() {
		pq := planSQL(t, e, q.sql)
		sources := execSourcesFor(t, e, pq.Root)
		d := compileDriver(t, pq, 1).(*exec.Pipeline)
		if err := d.Start(); err != nil {
			t.Fatal(err)
		}
		if err := d.Feed(sources); err != nil {
			t.Fatal(err)
		}
		d.Drain()
		var a, b bytes.Buffer
		if err := d.Checkpoint(&a); err != nil {
			t.Fatal(err)
		}
		if err := d.Checkpoint(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s: two checkpoints of the same state differ", q.name)
		}
		if _, err := d.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCheckpointLifecycleErrors: checkpoints are refused outside the
// started-and-unclosed window, and restores reject mismatched plans.
func TestCheckpointLifecycleErrors(t *testing.T) {
	e := lifecycleEngine(t)
	pq := planSQL(t, e, `SELECT auction, price FROM Bid`)
	p, err := exec.Compile(pq)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Checkpoint(&buf); err == nil {
		t.Error("checkpoint before Start should fail")
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := p.Checkpoint(&buf); err != nil {
		t.Fatalf("checkpoint of a started pipeline: %v", err)
	}
	if _, err := p.Close(); err != nil {
		t.Fatal(err)
	}
	var post bytes.Buffer
	if err := p.Checkpoint(&post); err == nil {
		t.Error("checkpoint after Close should fail")
	}

	// Restoring into a different plan shape fails loudly at the first
	// divergent operator frame, not silently.
	other := planSQL(t, e, `SELECT COUNT(*) c FROM Bid`)
	if _, err := exec.CompileFromCheckpoint(other, bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("restore into a mismatched plan should fail")
	}
}
