package exec

// White-box property tests for the PushBatch fast path: delivering the same
// event sequence to an operator chain in ANY re-chunking of PushBatch calls —
// including size-1 batches, which pushBatch routes through the per-event
// Push — must produce byte-identical collector output. The partitioned
// driver's internal round size (the other axis that decides how runs
// coalesce into batches) must be equally invisible.

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/plan"
	"repro/internal/sqlparser"
	"repro/internal/tvr"
	"repro/internal/types"
)

// Compile-time proof that the high-traffic operators implement the batch
// fast path (fall back to per-event Push and these tests still pass, but the
// batching win silently disappears).
var (
	_ batchSink = (*scanOp)(nil)
	_ batchSink = (*filterOp)(nil)
	_ batchSink = (*projectOp)(nil)
	_ batchSink = (*windowOp)(nil)
	_ batchSink = (*aggOp)(nil)
	_ batchSink = (*partialAggOp)(nil)
	_ batchSink = (*Collector)(nil)
)

// batchChainPlan is a Q1-shaped stateless chain: scan -> filter -> project
// with integer arithmetic, the currency-conversion hot path.
func batchChainPlan(t testing.TB) *plan.PlannedQuery {
	t.Helper()
	sch := types.NewSchema(
		types.Column{Name: "key", Kind: types.KindInt64},
		types.Column{Name: "price", Kind: types.KindInt64},
		types.Column{Name: "name", Kind: types.KindString},
	)
	scan := &plan.Scan{Name: "s", Sch: sch, Stream: true}
	cond, err := plan.NewBinOp(sqlparser.OpLt, &plan.ColRef{Idx: 1, K: types.KindInt64}, &plan.Const{Val: types.NewInt(900)})
	if err != nil {
		t.Fatal(err)
	}
	mul, err := plan.NewBinOp(sqlparser.OpMul, &plan.ColRef{Idx: 1, K: types.KindInt64}, &plan.Const{Val: types.NewInt(908)})
	if err != nil {
		t.Fatal(err)
	}
	conv, err := plan.NewBinOp(sqlparser.OpDiv, mul, &plan.Const{Val: types.NewInt(1000)})
	if err != nil {
		t.Fatal(err)
	}
	return &plan.PlannedQuery{Root: &plan.Project{
		Input: &plan.Filter{Input: scan, Cond: cond},
		Exprs: []plan.Scalar{&plan.ColRef{Idx: 0, K: types.KindInt64}, conv},
		Sch: types.NewSchema(
			types.Column{Name: "key", Kind: types.KindInt64},
			types.Column{Name: "price", Kind: types.KindInt64},
		),
	}}
}

// batchEvents generates a nondecreasing-ptime log with control events mixed
// in: batches may legally carry watermarks and heartbeats between data
// events, and the operators must handle them in position.
func batchEvents(n int) []tvr.Event {
	evs := make([]tvr.Event, 0, n)
	for i := 0; i < n; i++ {
		pt := types.Time(int64(i) * 125) // ms; nondecreasing
		switch {
		case i > 0 && i%50 == 0:
			evs = append(evs, tvr.WatermarkEvent(pt, pt-types.Time(2*types.Second)))
		case i > 0 && i%83 == 0:
			evs = append(evs, tvr.HeartbeatEvent(pt))
		default:
			row := types.Row{
				types.NewInt(int64(i % 32)),
				types.NewInt(int64(i * 13 % 1000)),
				types.NewString("abcdefgh"),
			}
			evs = append(evs, tvr.InsertEvent(pt, row))
		}
	}
	return evs
}

// runRechunked compiles pq, pushes evs into its scan under the given
// repeating chunk-size pattern (nil = per-event Push, the reference), and
// returns the rendered output log.
func runRechunked(t *testing.T, pq *plan.PlannedQuery, evs []tvr.Event, chunks []int) string {
	t.Helper()
	p, err := Compile(pq)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	scan := p.scans["s"][0]
	if chunks == nil {
		for _, ev := range evs {
			if err := scan.Push(ev); err != nil {
				t.Fatal(err)
			}
		}
	} else {
		for i, ci := 0, 0; i < len(evs); ci++ {
			end := i + chunks[ci%len(chunks)]
			if end > len(evs) {
				end = len(evs)
			}
			if err := pushBatch(scan, evs[i:end]); err != nil {
				t.Fatal(err)
			}
			i = end
		}
	}
	res, err := p.Close()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, ev := range res.Log {
		sb.WriteString(ev.String())
		sb.WriteByte('\n')
	}
	sb.WriteString(tvr.FormatStreamTable(res.Schema, res.StreamRows()))
	return sb.String()
}

// TestPushBatchRechunkEquivalence: for the stateless chain and the keyed
// aggregate, every re-chunking of the input into PushBatch calls renders
// byte-identically to the per-event Push path.
func TestPushBatchRechunkEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	randomChunks := make([]int, 64)
	for i := range randomChunks {
		randomChunks[i] = 1 + rng.Intn(9)
	}
	shapes := []struct {
		name string
		pq   func(testing.TB) *plan.PlannedQuery
	}{
		{"stateless-chain", batchChainPlan},
		{"keyed-agg", func(testing.TB) *plan.PlannedQuery { return benchScanPlan() }},
	}
	evs := batchEvents(600)
	chunkings := []struct {
		name   string
		chunks []int
	}{
		{"size-1", []int{1}},
		{"whole-log", []int{len(evs)}},
		{"mixed", []int{3, 1, 7, 2, 13}},
		{"random", randomChunks},
	}
	for _, shape := range shapes {
		shape := shape
		t.Run(shape.name, func(t *testing.T) {
			want := runRechunked(t, shape.pq(t), evs, nil)
			for _, c := range chunkings {
				if got := runRechunked(t, shape.pq(t), evs, c.chunks); got != want {
					t.Fatalf("chunking %q diverges from per-event push:\ngot:\n%s\nwant:\n%s", c.name, got, want)
				}
			}
		})
	}
}

// TestPartitionedRoundSizeInvariance: the partitioned driver's round size
// decides how consecutive-seq runs coalesce into worker batch dispatches; the
// merged output must be byte-identical to the serial pipeline at every round
// size, for both the hash-routed (keyed aggregate) and block round-robin
// (stateless chain) paths.
func TestPartitionedRoundSizeInvariance(t *testing.T) {
	shapes := []struct {
		name string
		pq   func(testing.TB) *plan.PlannedQuery
	}{
		{"stateless-chain", batchChainPlan},
		{"keyed-agg", func(testing.TB) *plan.PlannedQuery { return benchScanPlan() }},
	}
	evs := batchEvents(600)
	for _, shape := range shapes {
		shape := shape
		t.Run(shape.name, func(t *testing.T) {
			sources := []Source{{Name: "s", Log: evs}}
			serial, err := Compile(shape.pq(t))
			if err != nil {
				t.Fatal(err)
			}
			ref, err := serial.Run(sources, types.MaxTime)
			if err != nil {
				t.Fatal(err)
			}
			want := tvr.FormatStreamTable(ref.Schema, ref.StreamRows())
			for _, rs := range []int{1, 7, 8192} {
				pp, err := CompilePartitioned(shape.pq(t), 3)
				if err != nil {
					t.Fatal(err)
				}
				pp.round = rs
				res, err := pp.Run(sources, types.MaxTime)
				if err != nil {
					t.Fatal(err)
				}
				if got := tvr.FormatStreamTable(res.Schema, res.StreamRows()); got != want {
					t.Fatalf("round=%d diverges from serial:\ngot:\n%s\nwant:\n%s", rs, got, want)
				}
			}
		})
	}
}
