package exec

import (
	"fmt"

	"repro/internal/tvr"
	"repro/internal/types"
)

// Driver is the incremental execution lifecycle shared by the serial and
// key-partitioned pipelines. A driver is compiled once and then kept
// resident: Start opens the operators, Feed pushes batches of new source
// events through the same deterministic k-way ptime merge the one-shot Run
// uses, Advance moves the processing-time clock (firing EMIT AFTER DELAY
// timers), and Close completes the input. Drain hands back output deltas as
// they materialize — the primitive the standing-query subsystem
// (internal/live) is built on.
//
// Determinism contract: feeding a set of source changelogs through any
// sequence of Feed batches whose concatenated delivery order equals the
// one-shot merge order (always true when batches are split along the ptime
// axis) produces byte-identical output to a single Run over the same logs.
type Driver interface {
	// Start opens the pipeline's operators.
	Start() error
	// Feed merges and pushes a batch of new per-source events. Sources
	// with no new events may be omitted from the batch.
	Feed(batch []Source) error
	// Advance moves the processing-time clock to pt (a heartbeat).
	Advance(pt types.Time) error
	// Close signals end-of-input and returns the final result.
	Close() (*Result, error)
	// Drain returns output events materialized since the previous Drain.
	Drain() tvr.Changelog
	// OutputWatermark is the output relation's current watermark.
	OutputWatermark() types.Time
	// Stats reports the pipeline's execution statistics.
	Stats() Stats
}

var (
	_ Driver = (*Pipeline)(nil)
	_ Driver = (*PartitionedPipeline)(nil)
)

// forEachMerged merges the batch's per-source changelogs into one
// ptime-ordered delivery sequence — ties broken by scan registration order,
// the same tie-break both drivers' one-shot Run uses — and invokes deliver
// for each event. Events with ptime beyond upTo are discarded. With
// requireAll set, every scanned source must appear in the batch (the Run
// contract); otherwise absent sources simply contribute no events.
func forEachMerged(batch []Source, scanOrder []string, upTo types.Time, requireAll bool, deliver func(name string, ev tvr.Event) error) error {
	bySource := make(map[string]tvr.Changelog, len(batch))
	for _, s := range batch {
		bySource[lowered(s.Name)] = s.Log
	}
	type cursor struct {
		name string
		log  tvr.Changelog
		pos  int
	}
	var cursors []*cursor
	for _, name := range scanOrder {
		log, ok := bySource[name]
		if !ok {
			if requireAll {
				return fmt.Errorf("exec: no source data for relation %q", name)
			}
			continue
		}
		cursors = append(cursors, &cursor{name: name, log: log})
	}
	for {
		best := -1
		for i, c := range cursors {
			for c.pos < len(c.log) && c.log[c.pos].Ptime > upTo {
				c.pos = len(c.log) // discard tail beyond the horizon
			}
			if c.pos >= len(c.log) {
				continue
			}
			if best < 0 || c.log[c.pos].Ptime < cursors[best].log[cursors[best].pos].Ptime {
				best = i
			}
		}
		if best < 0 {
			return nil
		}
		c := cursors[best]
		ev := c.log[c.pos]
		c.pos++
		if err := deliver(c.name, ev); err != nil {
			return err
		}
	}
}
