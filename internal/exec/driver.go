package exec

import (
	"fmt"

	"repro/internal/tvr"
	"repro/internal/types"
)

// Driver is the incremental execution lifecycle shared by the serial and
// key-partitioned pipelines. A driver is compiled once and then kept
// resident: Start opens the operators, Feed pushes batches of new source
// events through the same deterministic k-way ptime merge the one-shot Run
// uses, Advance moves the processing-time clock (firing EMIT AFTER DELAY
// timers), and Close completes the input. Drain hands back output deltas as
// they materialize — the primitive the standing-query subsystem
// (internal/live) is built on.
//
// Determinism contract: feeding a set of source changelogs through any
// sequence of Feed batches whose concatenated delivery order equals the
// one-shot merge order (always true when batches are split along the ptime
// axis) produces byte-identical output to a single Run over the same logs.
type Driver interface {
	// Start opens the pipeline's operators.
	Start() error
	// Feed merges and pushes a batch of new per-source events. Sources
	// with no new events may be omitted from the batch.
	Feed(batch []Source) error
	// Advance moves the processing-time clock to pt (a heartbeat).
	Advance(pt types.Time) error
	// Close signals end-of-input and returns the final result.
	Close() (*Result, error)
	// Drain returns output events materialized since the previous Drain.
	Drain() tvr.Changelog
	// OutputWatermark is the output relation's current watermark.
	OutputWatermark() types.Time
	// Stats reports the pipeline's execution statistics. It walks operator
	// state (O(aggregate groups)); per-ingest callers that only need the
	// dispatch counters must use DispatchStats instead.
	Stats() Stats
	// DispatchStats returns the cumulative dispatch count and dispatched
	// event count without touching operator state — cheap enough to call
	// after every Feed/Advance.
	DispatchStats() (dispatches, events int64)
}

var (
	_ Driver = (*Pipeline)(nil)
	_ Driver = (*PartitionedPipeline)(nil)
)

// forEachMergedRuns merges the batch's per-source changelogs into one
// ptime-ordered delivery sequence — ties broken by scan registration order,
// the same tie-break both drivers' one-shot Run uses — and invokes deliver
// once per maximal run of consecutive events drawn from the same cursor.
// Concatenating the delivered runs reproduces the per-event merge order
// exactly; the run grouping only changes the dispatch shape, letting callers
// hand contiguous log slices to the batch fast path. The delivered slice
// aliases the source log: callees must not retain or mutate it.
//
// Events with ptime beyond upTo are discarded. With requireAll set, every
// scanned source must appear in the batch (the Run contract); otherwise
// absent sources simply contribute no events.
func forEachMergedRuns(batch []Source, scanOrder []string, upTo types.Time, requireAll bool, deliver func(name string, evs []tvr.Event) error) error {
	bySource := make(map[string]tvr.Changelog, len(batch))
	for _, s := range batch {
		bySource[lowered(s.Name)] = s.Log
	}
	type cursor struct {
		name string
		log  tvr.Changelog
		pos  int
	}
	var cursors []*cursor
	for _, name := range scanOrder {
		log, ok := bySource[name]
		if !ok {
			if requireAll {
				return fmt.Errorf("exec: no source data for relation %q", name)
			}
			continue
		}
		if upTo != types.MaxTime {
			// Discard the tail beyond the horizon up front (logs are
			// ptime-ordered, so everything after the first violation goes).
			cut := len(log)
			for i := range log {
				if log[i].Ptime > upTo {
					cut = i
					break
				}
			}
			log = log[:cut]
		}
		cursors = append(cursors, &cursor{name: name, log: log})
	}
	if len(cursors) == 1 {
		// Single-source fast path: the whole batch is one run.
		c := cursors[0]
		if len(c.log) == 0 {
			return nil
		}
		return deliver(c.name, c.log)
	}
	for {
		best := -1
		for i, c := range cursors {
			if c.pos >= len(c.log) {
				continue
			}
			if best < 0 || c.log[c.pos].Ptime < cursors[best].log[cursors[best].pos].Ptime {
				best = i
			}
		}
		if best < 0 {
			return nil
		}
		c := cursors[best]
		start := c.pos
		c.pos++
		// Extend the run while this cursor keeps winning the merge: its next
		// event must beat every other live cursor under the same
		// smallest-ptime, earliest-scan-order tie-break.
		for c.pos < len(c.log) {
			p := c.log[c.pos].Ptime
			wins := true
			for j, o := range cursors {
				if j == best || o.pos >= len(o.log) {
					continue
				}
				op := o.log[o.pos].Ptime
				if op < p || (op == p && j < best) {
					wins = false
					break
				}
			}
			if !wins {
				break
			}
			c.pos++
		}
		if err := deliver(c.name, c.log[start:c.pos:c.pos]); err != nil {
			return err
		}
	}
}
