package exec_test

// Golden-file tests pinning the checkpoint byte format. Each case drives a
// fixed query over a fixed tiny input, checkpoints the pipeline, and
// compares the encoded bytes against a committed golden file: an accidental
// change to the wire format (or to the deterministic serialization order)
// fails loudly here instead of silently orphaning production checkpoints.
//
// Deliberate format changes must bump checkpoint.FormatVersion and
// regenerate the files with UPDATE_GOLDEN=1:
//
//	UPDATE_GOLDEN=1 go test ./internal/exec -run TestCheckpointGolden

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/tvr"
	"repro/internal/types"
)

// goldenEngine registers a tiny two-stream catalog with a fixed changelog —
// no generators, so the bytes cannot drift with unrelated code.
func goldenEngine(t *testing.T) *core.Engine {
	t.Helper()
	e := core.NewEngine(core.WithUnboundedGroupBy())
	sch := types.NewSchema(
		types.Column{Name: "k", Kind: types.KindInt64},
		types.Column{Name: "v", Kind: types.KindInt64},
		types.Column{Name: "t", Kind: types.KindTimestamp, EventTime: true},
	)
	if err := e.RegisterStream("S", sch); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterStream("R", sch.Clone()); err != nil {
		t.Fatal(err)
	}
	row := func(k, v int64, at types.Time) types.Row {
		return types.Row{types.NewInt(k), types.NewInt(v), types.NewTimestamp(at)}
	}
	if err := e.AppendLog("S", tvr.Changelog{
		tvr.InsertEvent(1000, row(1, 10, 1000)),
		tvr.InsertEvent(2000, row(2, 25, 2000)),
		tvr.InsertEvent(3000, row(1, 40, 11000)),
		tvr.DeleteEvent(4000, row(1, 10, 1000)),
		tvr.InsertEvent(5000, row(3, 7, 26000)),
		tvr.WatermarkEvent(6000, 9000),
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.AppendLog("R", tvr.Changelog{
		tvr.InsertEvent(1500, row(1, 100, 1500)),
		tvr.InsertEvent(2500, row(2, 200, 2500)),
		tvr.WatermarkEvent(6500, 8000),
	}); err != nil {
		t.Fatal(err)
	}
	return e
}

// goldenCases is one query per stateful operator family.
func goldenCases() []struct{ name, sql string } {
	return []struct{ name, sql string }{
		{"scan_filter", `SELECT k, v FROM S WHERE v > 8`},
		{"distinct", `SELECT DISTINCT k FROM S`},
		{"agg_accumulators", `SELECT k, COUNT(*) c, SUM(v) s, AVG(v) a, MIN(v) mn, MAX(v) mx, COUNT(DISTINCT v) dc FROM S GROUP BY k`},
		{"join", `SELECT a.k, a.v, b.v FROM S a JOIN R b ON a.k = b.k`},
		{"union_all", `SELECT k FROM S UNION ALL SELECT k FROM R`},
		{"intersect", `SELECT k FROM S INTERSECT SELECT k FROM R`},
		{"tumble_emit_wm", `
SELECT TB.wstart wstart, TB.wend wend, MAX(TB.v) mx
FROM Tumble(data => TABLE(S), timecol => DESCRIPTOR(t), dur => INTERVAL '10' SECONDS) TB
GROUP BY TB.wstart, TB.wend
EMIT STREAM AFTER WATERMARK`},
		{"tumble_emit_delay", `
SELECT TB.wstart wstart, TB.wend wend, COUNT(*) c
FROM Tumble(data => TABLE(S), timecol => DESCRIPTOR(t), dur => INTERVAL '10' SECONDS) TB
GROUP BY TB.wstart, TB.wend
EMIT AFTER DELAY INTERVAL '7' SECONDS`},
		{"session_window", `
SELECT TB.wstart wstart, TB.wend wend, COUNT(*) c
FROM Session(data => TABLE(S), timecol => DESCRIPTOR(t), gap => INTERVAL '8' SECONDS) TB
GROUP BY TB.wstart, TB.wend`},
	}
}

// goldenBytes produces the canonical checkpoint for one case.
func goldenBytes(t *testing.T, e *core.Engine, sql string, parts int) []byte {
	t.Helper()
	pq := planSQL(t, e, sql)
	sources := execSourcesFor(t, e, pq.Root)
	d := compileDriver(t, pq, parts)
	if pp, ok := d.(*exec.PartitionedPipeline); ok {
		defer pp.Abandon()
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if err := d.Feed(sources); err != nil {
		t.Fatal(err)
	}
	d.Drain()
	var buf bytes.Buffer
	var err error
	switch x := d.(type) {
	case *exec.Pipeline:
		err = x.Checkpoint(&buf)
	case *exec.PartitionedPipeline:
		err = x.Checkpoint(&buf)
	}
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	return buf.Bytes()
}

// hexDump renders bytes as fixed-width hex lines (stable, diffable).
func hexDump(data []byte) string {
	var sb bytes.Buffer
	for i := 0; i < len(data); i += 32 {
		end := i + 32
		if end > len(data) {
			end = len(data)
		}
		fmt.Fprintf(&sb, "%s\n", hex.EncodeToString(data[i:end]))
	}
	return sb.String()
}

func checkGolden(t *testing.T, name string, data []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	got := hexDump(data)
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (regenerate with UPDATE_GOLDEN=1): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("checkpoint bytes for %s changed.\nIf the format change is intentional, bump checkpoint.FormatVersion and regenerate with UPDATE_GOLDEN=1.\ngot %d bytes, want %d bytes", name, len(data), len(want))
	}
}

// TestCheckpointGolden pins the serial checkpoint encoding per operator
// family, plus one partitioned two-stage pipeline (ports + chains framing).
func TestCheckpointGolden(t *testing.T) {
	e := goldenEngine(t)
	for _, c := range goldenCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			checkGolden(t, c.name, goldenBytes(t, e, c.sql, 1))
		})
	}
	t.Run("partitioned_two_stage", func(t *testing.T) {
		sql := `
SELECT TB.wstart wstart, TB.wend wend, COUNT(*) c, SUM(TB.v) s
FROM Tumble(data => TABLE(S), timecol => DESCRIPTOR(t), dur => INTERVAL '10' SECONDS) TB
GROUP BY TB.wstart, TB.wend`
		checkGolden(t, "partitioned_two_stage", goldenBytes(t, e, sql, 2))
	})
	// Restorability: every golden file must still load into a freshly
	// compiled pipeline (the format is not just stable but live).
	for _, c := range goldenCases() {
		pq := planSQL(t, e, c.sql)
		data := goldenBytes(t, e, c.sql, 1)
		if _, err := exec.CompileFromCheckpoint(pq, bytes.NewReader(data)); err != nil {
			t.Errorf("%s: golden checkpoint no longer restores: %v", c.name, err)
		}
	}
}
