package exec

import (
	"fmt"
	"io"

	"repro/internal/checkpoint"
	"repro/internal/plan"
	"repro/internal/tvr"
	"repro/internal/types"
)

// This file implements durable checkpoint/restore for both drivers: every
// stateful operator serializes its state through the versioned
// internal/checkpoint encoding, and a pipeline compiled from the same plan
// can be re-hydrated to exactly the point the checkpoint was taken — the
// restored pipeline's subsequent output is byte-identical to the
// uninterrupted run's.
//
// The operator contract: a stateful operator implements
//
//	SaveState(*checkpoint.Encoder)
//	LoadState(*checkpoint.Decoder) error
//
// writing every field that influences future emissions — accumulator values,
// per-group output rows (for retract/emit/suppress), watermarks, late/freed
// counters, timer queues, and any *iteration order* its containers maintain
// (order slices are part of the bytes-identical guarantee, not an
// implementation detail). Map-backed state with no explicit order serializes
// sorted by key so the same state always produces the same bytes; map keys
// that are derivable from the stored rows (Row.Key, KeyOf) are re-derived at
// load rather than stored. Stateless operators simply don't implement the
// interface. Restore never calls Open: open-time emissions (constant
// relations, a global aggregate's initial row) already happened before the
// checkpoint and are part of the restored downstream state.
//
// Checkpoints are only taken at quiescent points — between Feed/Advance
// calls, with no partial round in flight — which both drivers' lifecycle
// guarantees (Feed and Advance fully sync before returning).

// stateSaver is implemented by operators with checkpointable state.
type stateSaver interface {
	SaveState(enc *checkpoint.Encoder)
	LoadState(dec *checkpoint.Decoder) error
}

// Driver-kind tags in the checkpoint stream.
const (
	driverKindSerial      = "serial"
	driverKindPartitioned = "partitioned"
)

// SaveDriver writes a driver's full state (embeddable: the caller owns the
// stream header and trailer). The driver must be started, unclosed, and
// quiescent.
func SaveDriver(enc *checkpoint.Encoder, d Driver) error {
	enc.Section("exec.Driver")
	switch x := d.(type) {
	case *Pipeline:
		enc.String(driverKindSerial)
		if err := x.saveState(enc); err != nil {
			return err
		}
	case *PartitionedPipeline:
		enc.String(driverKindPartitioned)
		enc.Int(x.parts)
		if err := x.saveState(enc); err != nil {
			return err
		}
	default:
		return fmt.Errorf("exec: cannot checkpoint driver of type %T", d)
	}
	return enc.Err()
}

// LoadDriver compiles a fresh pipeline for pq and restores the checkpointed
// driver state into it. The returned driver is already started (Open is not
// re-run: open-time emissions happened before the checkpoint) and resumes
// accepting Feed/Advance exactly where the checkpointed one stopped.
func LoadDriver(dec *checkpoint.Decoder, pq *plan.PlannedQuery) (Driver, error) {
	if err := dec.Expect("exec.Driver"); err != nil {
		return nil, err
	}
	kind := dec.String()
	if err := dec.Err(); err != nil {
		return nil, err
	}
	switch kind {
	case driverKindSerial:
		p, err := Compile(pq)
		if err != nil {
			return nil, err
		}
		if err := p.loadState(dec); err != nil {
			return nil, err
		}
		p.opened = true
		return p, nil
	case driverKindPartitioned:
		parts := dec.Int()
		if err := dec.Err(); err != nil {
			return nil, err
		}
		pp, err := CompilePartitioned(pq, parts)
		if err != nil {
			return nil, err
		}
		if err := pp.loadState(dec); err != nil {
			return nil, err
		}
		pp.opened = true
		pp.launchWorkers()
		return pp, nil
	default:
		return nil, fmt.Errorf("exec: unknown driver kind %q in checkpoint", kind)
	}
}

// Checkpoint writes a standalone checkpoint stream for the serial pipeline.
func (p *Pipeline) Checkpoint(w io.Writer) error {
	enc := checkpoint.NewEncoder(w)
	if err := SaveDriver(enc, p); err != nil {
		return err
	}
	return enc.Close()
}

// CompileFromCheckpoint compiles pq and restores a serial pipeline from a
// standalone checkpoint stream written by Checkpoint.
func CompileFromCheckpoint(pq *plan.PlannedQuery, r io.Reader) (*Pipeline, error) {
	d, err := restoreDriver(pq, r)
	if err != nil {
		return nil, err
	}
	p, ok := d.(*Pipeline)
	if !ok {
		return nil, fmt.Errorf("exec: checkpoint holds a %T, not a serial pipeline", d)
	}
	return p, nil
}

// Checkpoint writes a standalone checkpoint stream for the partitioned
// pipeline.
func (pp *PartitionedPipeline) Checkpoint(w io.Writer) error {
	enc := checkpoint.NewEncoder(w)
	if err := SaveDriver(enc, pp); err != nil {
		return err
	}
	return enc.Close()
}

// CompilePartitionedFromCheckpoint compiles pq and restores a partitioned
// pipeline from a standalone checkpoint stream. The partition count is read
// from the stream, so the restored pipeline routes exactly as the
// checkpointed one did.
func CompilePartitionedFromCheckpoint(pq *plan.PlannedQuery, r io.Reader) (*PartitionedPipeline, error) {
	d, err := restoreDriver(pq, r)
	if err != nil {
		return nil, err
	}
	pp, ok := d.(*PartitionedPipeline)
	if !ok {
		return nil, fmt.Errorf("exec: checkpoint holds a %T, not a partitioned pipeline", d)
	}
	return pp, nil
}

// restoreDriver reads one standalone checkpoint stream.
func restoreDriver(pq *plan.PlannedQuery, r io.Reader) (Driver, error) {
	dec, err := checkpoint.NewDecoder(r)
	if err != nil {
		return nil, err
	}
	d, err := LoadDriver(dec, pq)
	if err != nil {
		return nil, err
	}
	if err := dec.Close(); err != nil {
		return nil, err
	}
	return d, nil
}

// ---- pipeline-level save/load ----

// saveState writes the serial pipeline's operator states in build order.
func (p *Pipeline) saveState(enc *checkpoint.Encoder) error {
	if !p.opened || p.closed {
		return fmt.Errorf("exec: can only checkpoint a started, unclosed pipeline")
	}
	enc.Section("exec.Pipeline")
	saveOps(enc, p.allOps)
	return enc.Err()
}

// loadState restores the operator states into a freshly compiled pipeline.
func (p *Pipeline) loadState(dec *checkpoint.Decoder) error {
	if err := dec.Expect("exec.Pipeline"); err != nil {
		return err
	}
	return loadOps(dec, p.allOps)
}

// saveState writes the partitioned pipeline's state: the delivery-sequence
// counter, per-port watermark/heartbeat merge state, the serial tail, and
// all N partition chains.
func (pp *PartitionedPipeline) saveState(enc *checkpoint.Encoder) error {
	switch {
	case !pp.opened || pp.closed:
		return fmt.Errorf("exec: can only checkpoint a started, unclosed pipeline")
	case pp.failed != nil:
		return fmt.Errorf("exec: cannot checkpoint a failed pipeline: %w", pp.failed)
	case pp.fallback != nil:
		return fmt.Errorf("exec: cannot checkpoint after a one-shot Run")
	case pp.pending != 0 || pp.inflight != nil:
		return fmt.Errorf("exec: internal: checkpoint of a non-quiescent pipeline")
	}
	enc.Section("exec.PartitionedPipeline")
	enc.Varint(int64(pp.seq))
	enc.Uvarint(uint64(len(pp.ports)))
	for i := range pp.ports {
		ps := &pp.ports[i]
		ps.wmMerge.SaveState(enc)
		enc.Time(ps.wmPtime)
		enc.Int(ps.wmSeq)
		enc.Bool(ps.hasHB)
		enc.Time(ps.lastHB)
	}
	enc.Section("exec.tail")
	saveOps(enc, pp.tailOps)
	for i, c := range pp.chains {
		enc.Section(fmt.Sprintf("exec.chain%d", i))
		saveOps(enc, c.pipe.allOps)
	}
	return enc.Err()
}

// loadState restores into a freshly compiled partitioned pipeline (same plan,
// same partition count).
func (pp *PartitionedPipeline) loadState(dec *checkpoint.Decoder) error {
	if err := dec.Expect("exec.PartitionedPipeline"); err != nil {
		return err
	}
	pp.seq = int(dec.Varint())
	n := int(dec.Uvarint())
	if err := dec.Err(); err != nil {
		return err
	}
	if n != len(pp.ports) {
		return fmt.Errorf("exec: checkpoint has %d exchange ports, plan has %d", n, len(pp.ports))
	}
	for i := range pp.ports {
		ps := &pp.ports[i]
		if err := ps.wmMerge.LoadState(dec); err != nil {
			return err
		}
		ps.wmPtime = dec.Time()
		ps.wmSeq = dec.Int()
		ps.hasHB = dec.Bool()
		ps.lastHB = dec.Time()
	}
	if err := dec.Expect("exec.tail"); err != nil {
		return err
	}
	if err := loadOps(dec, pp.tailOps); err != nil {
		return err
	}
	for i, c := range pp.chains {
		if err := dec.Expect(fmt.Sprintf("exec.chain%d", i)); err != nil {
			return err
		}
		if err := loadOps(dec, c.pipe.allOps); err != nil {
			return err
		}
	}
	return dec.Err()
}

// saveOps writes each operator's state framed by a section naming its
// position and type, so a plan/checkpoint mismatch fails loudly at the first
// divergent operator. Stateless operators contribute only their frame.
func saveOps(enc *checkpoint.Encoder, ops []sink) {
	enc.Uvarint(uint64(len(ops)))
	for i, op := range ops {
		enc.Section(fmt.Sprintf("op%d:%T", i, op))
		if s, ok := op.(stateSaver); ok {
			s.SaveState(enc)
		}
	}
}

// loadOps restores each operator's state; the compiled operator list must
// match the checkpoint's (same plan → same build order and types).
func loadOps(dec *checkpoint.Decoder, ops []sink) error {
	n := int(dec.Uvarint())
	if err := dec.Err(); err != nil {
		return err
	}
	if n != len(ops) {
		return fmt.Errorf("exec: checkpoint has %d operators, pipeline has %d (plan changed?)", n, len(ops))
	}
	for i, op := range ops {
		if err := dec.Expect(fmt.Sprintf("op%d:%T", i, op)); err != nil {
			return err
		}
		if s, ok := op.(stateSaver); ok {
			if err := s.LoadState(dec); err != nil {
				return err
			}
		}
	}
	return nil
}

// ---- operator states ----

// SaveState implements stateSaver: the scan's clock and completion bit.
func (s *scanOp) SaveState(enc *checkpoint.Encoder) {
	enc.Time(s.lastPtime)
	enc.Bool(s.finished)
}

// LoadState implements stateSaver.
func (s *scanOp) LoadState(dec *checkpoint.Decoder) error {
	s.lastPtime = dec.Time()
	s.finished = dec.Bool()
	return dec.Err()
}

// SaveState implements stateSaver: the collector's materialized relation,
// output counters, watermark, and the not-yet-drained output tail. The
// already-drained prefix of the output log is NOT retained — a restored
// pipeline's Drain resumes exactly at the first undelivered event, which is
// what keeps the concatenation of pre- and post-restore drains identical to
// the uninterrupted sequence. (Standing queries retain delivered history at
// the session layer, where retention policy lives.)
func (c *Collector) SaveState(enc *checkpoint.Encoder) {
	c.rel.SaveState(enc)
	enc.Int(c.outN)
	enc.Time(c.wm)
	tvr.SaveChangelog(enc, c.log[c.drained:])
}

// LoadState implements stateSaver.
func (c *Collector) LoadState(dec *checkpoint.Decoder) error {
	if err := c.rel.LoadState(dec); err != nil {
		return err
	}
	c.outN = dec.Int()
	c.wm = dec.Time()
	tail, err := tvr.LoadChangelog(dec)
	if err != nil {
		return err
	}
	c.log = tail
	c.drained = 0
	return dec.Err()
}

// SaveState implements stateSaver: DISTINCT's per-row multiplicities, sorted
// by row key (the map key is re-derived from the row at load).
func (d *distinctOp) SaveState(enc *checkpoint.Encoder) {
	keys := tvr.SortedKeys(d.counts)
	enc.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		rc := d.counts[k]
		enc.Row(rc.row)
		enc.Int(rc.count)
	}
}

// LoadState implements stateSaver.
func (d *distinctOp) LoadState(dec *checkpoint.Decoder) error {
	n := int(dec.Uvarint())
	for i := 0; i < n; i++ {
		row := dec.Row()
		count := dec.Int()
		if err := dec.Err(); err != nil {
			return err
		}
		d.counts[row.Key()] = &rowCount{row: row, count: count}
	}
	return dec.Err()
}

// save/load for the shared multi-input control-merge state.
func (m *mergingSink) saveMergeState(enc *checkpoint.Encoder) {
	enc.Section("mergingSink")
	enc.Int(m.finished)
	enc.Uvarint(uint64(len(m.wms)))
	for _, wm := range m.wms {
		enc.Time(wm)
	}
	enc.Time(m.mergedWM)
	enc.Bool(m.hasHB)
	enc.Time(m.lastHB)
}

func (m *mergingSink) loadMergeState(dec *checkpoint.Decoder) error {
	if err := dec.Expect("mergingSink"); err != nil {
		return err
	}
	m.finished = dec.Int()
	n := int(dec.Uvarint())
	if err := dec.Err(); err != nil {
		return err
	}
	if n != m.inputs {
		return fmt.Errorf("exec: checkpoint has %d merge inputs, operator has %d", n, m.inputs)
	}
	for i := range m.wms {
		m.wms[i] = dec.Time()
	}
	m.mergedWM = dec.Time()
	m.hasHB = dec.Bool()
	m.lastHB = dec.Time()
	return dec.Err()
}

// SaveState implements stateSaver (UNION ALL holds only merge state).
func (u *unionOp) SaveState(enc *checkpoint.Encoder) { u.saveMergeState(enc) }

// LoadState implements stateSaver.
func (u *unionOp) LoadState(dec *checkpoint.Decoder) error { return u.loadMergeState(dec) }

// SaveState implements stateSaver: both sides' multiplicities and the output
// multiplicity per row, sorted by row key.
func (s *setOp) SaveState(enc *checkpoint.Encoder) {
	s.saveMergeState(enc)
	keys := tvr.SortedKeys(s.rowsByKey)
	enc.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		enc.Row(s.rowsByKey[k])
		enc.Int(s.leftN[k])
		enc.Int(s.rightN[k])
		enc.Int(s.outN[k])
	}
}

// LoadState implements stateSaver.
func (s *setOp) LoadState(dec *checkpoint.Decoder) error {
	if err := s.loadMergeState(dec); err != nil {
		return err
	}
	n := int(dec.Uvarint())
	for i := 0; i < n; i++ {
		row := dec.Row()
		l, r, o := dec.Int(), dec.Int(), dec.Int()
		if err := dec.Err(); err != nil {
			return err
		}
		k := row.Key()
		s.rowsByKey[k] = row
		s.leftN[k] = l
		s.rightN[k] = r
		s.outN[k] = o
	}
	return dec.Err()
}

// SaveState implements stateSaver: both join sides' bucketed rows with live
// and match counts. Buckets serialize sorted by equi-key; *within* a bucket
// the slice order is preserved — it determines the order matching pairs are
// emitted in, so it is part of the byte-identical contract.
func (j *joinOp) SaveState(enc *checkpoint.Encoder) {
	j.saveMergeState(enc)
	for _, side := range []*joinSide{j.left, j.right} {
		keys := tvr.SortedKeys(side.buckets)
		enc.Uvarint(uint64(len(keys)))
		for _, k := range keys {
			bucket := side.buckets[k]
			enc.Uvarint(uint64(len(bucket)))
			for _, jr := range bucket {
				enc.Row(jr.row)
				enc.Int(jr.count)
				enc.Int(jr.matches)
			}
		}
	}
}

// LoadState implements stateSaver.
func (j *joinOp) LoadState(dec *checkpoint.Decoder) error {
	if err := j.loadMergeState(dec); err != nil {
		return err
	}
	for sideIdx, side := range []*joinSide{j.left, j.right} {
		nb := int(dec.Uvarint())
		for b := 0; b < nb; b++ {
			nr := int(dec.Uvarint())
			var key string
			for r := 0; r < nr; r++ {
				row := dec.Row()
				count := dec.Int()
				matches := dec.Int()
				if err := dec.Err(); err != nil {
					return err
				}
				if r == 0 {
					key = j.keyFor(sideIdx, row)
				}
				side.buckets[key] = append(side.buckets[key], &joinRow{row: row, count: count, matches: matches})
				side.size += count
			}
		}
	}
	return dec.Err()
}

// SaveState implements stateSaver: the session-window multiset. Tumble/Hop
// are stateless but still write their (empty) frame so the format is uniform
// per operator type.
func (w *windowOp) SaveState(enc *checkpoint.Encoder) {
	enc.Uvarint(uint64(len(w.timeList)))
	for _, ts := range w.timeList {
		enc.Time(ts)
		enc.Int(w.times[ts])
		refs := w.rowsAt[ts]
		enc.Uvarint(uint64(len(refs)))
		for _, rr := range refs {
			enc.Row(rr.row)
			enc.Int(rr.count)
		}
	}
}

// LoadState implements stateSaver. The timeList keeps even zero-count
// timestamps: their position in the list is the iteration order session
// retract/re-emit cascades follow, so dropping them would reorder output
// after a re-insert.
func (w *windowOp) LoadState(dec *checkpoint.Decoder) error {
	n := int(dec.Uvarint())
	if err := dec.Err(); err != nil {
		return err
	}
	if n > 0 && w.times == nil {
		return fmt.Errorf("exec: checkpoint has session-window state for a stateless window operator")
	}
	for i := 0; i < n; i++ {
		ts := dec.Time()
		count := dec.Int()
		nr := int(dec.Uvarint())
		var refs []rowRef
		for r := 0; r < nr; r++ {
			row := dec.Row()
			rc := dec.Int()
			refs = append(refs, rowRef{row: row, count: rc})
		}
		if err := dec.Err(); err != nil {
			return err
		}
		w.timeList = append(w.timeList, ts)
		w.times[ts] = count
		w.rowsAt[ts] = refs
	}
	return dec.Err()
}

// ---- aggregate states ----

// saveAcc serializes one accumulator by kind; loadAcc mirrors it. The
// multiset-backed accumulators (MIN/MAX, DISTINCT) re-derive their map keys
// from the stored values and serialize sorted by key.
func saveAcc(enc *checkpoint.Encoder, acc accumulator) {
	switch a := acc.(type) {
	case *countStarAcc:
		enc.Varint(a.n)
	case *countAcc:
		enc.Varint(a.n)
	case *sumAcc:
		enc.Varint(a.i)
		enc.Value(types.NewFloat(a.f))
		enc.Varint(a.n)
	case *avgAcc:
		enc.Varint(a.sumI)
		enc.Value(types.NewFloat(a.sumF))
		enc.Varint(a.n)
		enc.Bool(a.inexact)
	case *minMaxAcc:
		enc.Varint(a.n)
		enc.Bool(a.valid)
		enc.Value(a.current)
		keys := tvr.SortedKeys(a.counts)
		enc.Uvarint(uint64(len(keys)))
		for _, k := range keys {
			e := a.counts[k]
			enc.Value(e.val)
			enc.Int(e.count)
		}
	case *distinctAcc:
		keys := tvr.SortedKeys(a.counts)
		enc.Uvarint(uint64(len(keys)))
		for _, k := range keys {
			e := a.counts[k]
			enc.Value(e.val)
			enc.Int(e.count)
		}
		saveAcc(enc, a.inner)
	}
}

func loadAcc(dec *checkpoint.Decoder, acc accumulator) error {
	switch a := acc.(type) {
	case *countStarAcc:
		a.n = dec.Varint()
	case *countAcc:
		a.n = dec.Varint()
	case *sumAcc:
		a.i = dec.Varint()
		a.f = dec.Value().Float()
		a.n = dec.Varint()
	case *avgAcc:
		a.sumI = dec.Varint()
		a.sumF = dec.Value().Float()
		a.n = dec.Varint()
		a.inexact = dec.Bool()
	case *minMaxAcc:
		a.n = dec.Varint()
		a.valid = dec.Bool()
		a.current = dec.Value()
		n := int(dec.Uvarint())
		var scratch []byte
		for i := 0; i < n; i++ {
			v := dec.Value()
			count := dec.Int()
			if err := dec.Err(); err != nil {
				return err
			}
			scratch = v.AppendKey(scratch[:0])
			a.counts[string(scratch)] = &minMaxEntry{val: v, count: count}
		}
	case *distinctAcc:
		n := int(dec.Uvarint())
		var scratch []byte
		for i := 0; i < n; i++ {
			v := dec.Value()
			count := dec.Int()
			if err := dec.Err(); err != nil {
				return err
			}
			scratch = v.AppendKey(scratch[:0])
			a.counts[string(scratch)] = &distinctEntry{val: v, count: count}
		}
		return loadAcc(dec, a.inner)
	}
	return dec.Err()
}

// saveAggCommon serializes the group bookkeeping shared by all three
// aggregate stages: watermark, late/freed counters, and the group order.
func saveAggCommon(enc *checkpoint.Encoder, wm types.Time, lateDrop, freed, groups int) {
	enc.Time(wm)
	enc.Int(lateDrop)
	enc.Int(freed)
	enc.Uvarint(uint64(groups))
}

// SaveState implements stateSaver: every group in first-seen order with its
// key row, live-row count, accumulator states (live groups only), and last
// emitted output row.
func (a *aggOp) SaveState(enc *checkpoint.Encoder) {
	saveAggCommon(enc, a.wm, a.lateDrop, a.freed, len(a.order))
	for _, gk := range a.order {
		g := a.groups[gk]
		enc.Row(g.keyRow)
		enc.Int(g.n)
		enc.Bool(g.dead)
		enc.Row(g.outRow)
		if !g.dead {
			for _, acc := range g.accs {
				saveAcc(enc, acc)
			}
		}
	}
}

// LoadState implements stateSaver.
func (a *aggOp) LoadState(dec *checkpoint.Decoder) error {
	a.wm = dec.Time()
	a.lateDrop = dec.Int()
	a.freed = dec.Int()
	n := int(dec.Uvarint())
	if err := dec.Err(); err != nil {
		return err
	}
	// A global aggregate's Open already created its one group; restore
	// replaces it wholesale.
	a.groups = make(map[string]*aggGroup, checkpoint.CapHint(uint64(n)))
	a.order = a.order[:0]
	for i := 0; i < n; i++ {
		keyRow := dec.Row()
		gn := dec.Int()
		dead := dec.Bool()
		outRow := dec.Row()
		if err := dec.Err(); err != nil {
			return err
		}
		g := &aggGroup{keyRow: keyRow, n: gn, dead: dead, outRow: outRow}
		if !dead {
			g.accs = make([]accumulator, len(a.aggs))
			for ci, call := range a.aggs {
				g.accs[ci] = newAccumulator(call)
				if err := loadAcc(dec, g.accs[ci]); err != nil {
					return err
				}
			}
		}
		gk := keyRow.Key()
		a.groups[gk] = g
		a.order = append(a.order, gk)
	}
	return dec.Err()
}

// SaveState implements stateSaver for the per-partition half of a two-stage
// aggregate.
func (p *partialAggOp) SaveState(enc *checkpoint.Encoder) {
	saveAggCommon(enc, p.wm, p.lateDrop, p.freed, len(p.order))
	for _, gk := range p.order {
		g := p.groups[gk]
		enc.Row(g.keyRow)
		enc.Int(g.n)
		enc.Bool(g.dead)
		if !g.dead {
			for _, acc := range g.accs {
				saveAcc(enc, acc)
			}
		}
	}
}

// LoadState implements stateSaver.
func (p *partialAggOp) LoadState(dec *checkpoint.Decoder) error {
	p.wm = dec.Time()
	p.lateDrop = dec.Int()
	p.freed = dec.Int()
	n := int(dec.Uvarint())
	if err := dec.Err(); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		keyRow := dec.Row()
		gn := dec.Int()
		dead := dec.Bool()
		if err := dec.Err(); err != nil {
			return err
		}
		g := &partialGroup{keyRow: keyRow, n: gn, dead: dead}
		if !dead {
			g.accs = make([]accumulator, len(p.aggs))
			for ci, call := range p.aggs {
				g.accs[ci] = newAccumulator(call)
				if err := loadAcc(dec, g.accs[ci]); err != nil {
					return err
				}
			}
		}
		gk := keyRow.Key()
		p.groups[gk] = g
		p.order = append(p.order, gk)
	}
	return dec.Err()
}

// SaveState implements stateSaver for the serial-tail half of a two-stage
// aggregate: per group, the latest state snapshot received from each
// partition plus the merged output row.
func (f *finalAggOp) SaveState(enc *checkpoint.Encoder) {
	saveAggCommon(enc, f.wm, f.lateDrop, f.freed, len(f.order))
	for _, gk := range f.order {
		g := f.groups[gk]
		enc.Row(g.keyRow)
		enc.Bool(g.dead)
		enc.Row(g.outRow)
		if !g.dead {
			for _, snap := range g.snaps {
				enc.Row(snap)
			}
		}
	}
}

// LoadState implements stateSaver.
func (f *finalAggOp) LoadState(dec *checkpoint.Decoder) error {
	f.wm = dec.Time()
	f.lateDrop = dec.Int()
	f.freed = dec.Int()
	n := int(dec.Uvarint())
	if err := dec.Err(); err != nil {
		return err
	}
	// A global final aggregate's Open already created its one group;
	// restore replaces it.
	f.groups = make(map[string]*finalGroup, checkpoint.CapHint(uint64(n)))
	f.order = f.order[:0]
	for i := 0; i < n; i++ {
		keyRow := dec.Row()
		dead := dec.Bool()
		outRow := dec.Row()
		if err := dec.Err(); err != nil {
			return err
		}
		g := &finalGroup{keyRow: keyRow, dead: dead, outRow: outRow}
		if !dead {
			g.snaps = make([]types.Row, f.parts)
			for pi := range g.snaps {
				g.snaps[pi] = dec.Row()
			}
		}
		gk := keyRow.Key()
		f.groups[gk] = g
		f.order = append(f.order, gk)
	}
	return dec.Err()
}

// ---- EMIT materialization states ----

// SaveState implements stateSaver: per event-time group, the buffered
// relation awaiting watermark completion.
func (e *emitAfterWatermarkOp) SaveState(enc *checkpoint.Encoder) {
	enc.Time(e.wm)
	enc.Int(e.late)
	enc.Int(e.freed)
	enc.Uvarint(uint64(len(e.order)))
	for _, k := range e.order {
		g := e.groups[k]
		enc.Row(g.sample)
		enc.Bool(g.done)
		if !g.done {
			g.rel.SaveState(enc)
		}
	}
}

// LoadState implements stateSaver.
func (e *emitAfterWatermarkOp) LoadState(dec *checkpoint.Decoder) error {
	e.wm = dec.Time()
	e.late = dec.Int()
	e.freed = dec.Int()
	n := int(dec.Uvarint())
	if err := dec.Err(); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		sample := dec.Row()
		done := dec.Bool()
		if err := dec.Err(); err != nil {
			return err
		}
		g := &wmGroup{sample: sample, done: done}
		if !done {
			g.rel = tvr.NewRelation()
			if err := g.rel.LoadState(dec); err != nil {
				return err
			}
		}
		k := e.keys.keyOf(sample)
		e.groups[k] = g
		e.order = append(e.order, k)
	}
	return dec.Err()
}

// SaveState implements stateSaver: per group the last-materialized and live
// relations, plus the pending processing-time timer queue. The heap slice is
// serialized in its array order (a valid heap round-trips as a valid heap);
// timers reference their group by its event-time key.
func (e *emitAfterDelayOp) SaveState(enc *checkpoint.Encoder) {
	enc.Time(e.wm)
	enc.Int(e.late)
	enc.Int(e.freed)
	enc.Int(e.seq)
	enc.Uvarint(uint64(len(e.order)))
	for _, k := range e.order {
		g := e.groups[k]
		enc.Row(g.sample)
		enc.Bool(g.armed)
		enc.Bool(g.done)
		if !g.done {
			g.lastMat.SaveState(enc)
			g.cur.SaveState(enc)
		}
	}
	enc.Uvarint(uint64(len(e.timers)))
	for _, t := range e.timers {
		enc.Time(t.deadline)
		enc.Int(t.seq)
		enc.String(t.group.key)
	}
}

// LoadState implements stateSaver.
func (e *emitAfterDelayOp) LoadState(dec *checkpoint.Decoder) error {
	e.wm = dec.Time()
	e.late = dec.Int()
	e.freed = dec.Int()
	e.seq = dec.Int()
	n := int(dec.Uvarint())
	if err := dec.Err(); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		sample := dec.Row()
		armed := dec.Bool()
		done := dec.Bool()
		if err := dec.Err(); err != nil {
			return err
		}
		k := e.keys.keyOf(sample)
		g := &delayGroup{key: k, sample: sample, armed: armed, done: done}
		if !done {
			g.lastMat = tvr.NewRelation()
			if err := g.lastMat.LoadState(dec); err != nil {
				return err
			}
			g.cur = tvr.NewRelation()
			if err := g.cur.LoadState(dec); err != nil {
				return err
			}
		}
		e.groups[k] = g
		e.order = append(e.order, k)
	}
	nt := int(dec.Uvarint())
	if err := dec.Err(); err != nil {
		return err
	}
	for i := 0; i < nt; i++ {
		deadline := dec.Time()
		seq := dec.Int()
		gk := dec.String()
		if err := dec.Err(); err != nil {
			return err
		}
		g, ok := e.groups[gk]
		if !ok {
			return fmt.Errorf("exec: checkpoint timer references unknown group")
		}
		e.timers = append(e.timers, timer{deadline: deadline, seq: seq, group: g})
	}
	return dec.Err()
}
