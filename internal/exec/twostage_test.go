package exec_test

// Tests for two-stage (partial/final) aggregation: plans whose GROUP BY
// re-keys incompatibly with the inherited hash routing now run partitioned,
// with per-partition partial accumulators merged by a final aggregate in the
// serial tail. Every test asserts byte-identical equivalence with serial
// execution — the engine's one non-negotiable contract — over shapes chosen
// to stress the merge: retractions that empty a partial group, late data
// after watermark-driven completion, AVG/MIN/MAX merge arithmetic, and
// random Feed splits.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sqlparser"
	"repro/internal/tvr"
	"repro/internal/types"
)

// rekeyAgg aggregates by the price-bucket column (index 1 mod is applied by
// the caller's data), which does NOT preserve a key-partitioned routing on
// column 0 — the classic re-keying shape that forces partial/final stages
// when the scan is already hash-routed by a downstream-created constraint.
// Grouping by a non-provenance expression (price+0 via a BinOp would lose
// provenance) is approximated more simply: group by a column of a source
// routed by full-row hash.
func rekeyAgg(aggs []plan.AggCall, cols []types.Column) *plan.PlannedQuery {
	sch := append([]types.Column{{Name: "g", Kind: types.KindInt64}}, cols...)
	return &plan.PlannedQuery{Root: &plan.Aggregate{
		Input: scanNode(),
		// Group by price (col 1) through an arithmetic expression, which
		// has no scan provenance: the partitioning analysis must fall
		// back to a full-row-hashed partial stage.
		Keys: []plan.Scalar{mustBinOp(col(1, types.KindInt64), intConst(0))},
		Aggs: aggs,
		Sch:  types.NewSchema(sch...),
	}}
}

func mustBinOp(l, r plan.Scalar) plan.Scalar {
	op, err := plan.NewBinOp(sqlparser.OpAdd, l, r)
	if err != nil {
		panic(err)
	}
	return op
}

// TestTwoStageAggEquivalence: a re-keyed aggregation with every mergeable
// accumulator kind (COUNT(*), COUNT, SUM, AVG, MIN, MAX) produces a
// byte-identical changelog, table, and stream to serial execution, under
// heavy retractions (genLog deletes ~10% of live rows).
func TestTwoStageAggEquivalence(t *testing.T) {
	aggs := []plan.AggCall{
		{Kind: plan.AggCountStar, K: types.KindInt64},
		{Kind: plan.AggCount, Arg: col(0, types.KindInt64), K: types.KindInt64},
		{Kind: plan.AggSum, Arg: col(0, types.KindInt64), K: types.KindInt64},
		{Kind: plan.AggAvg, Arg: col(0, types.KindInt64), K: types.KindFloat64},
		{Kind: plan.AggMin, Arg: col(0, types.KindInt64), K: types.KindInt64},
		{Kind: plan.AggMax, Arg: col(0, types.KindInt64), K: types.KindInt64},
	}
	cols := []types.Column{
		{Name: "n", Kind: types.KindInt64},
		{Name: "nk", Kind: types.KindInt64},
		{Name: "sum", Kind: types.KindInt64},
		{Name: "avg", Kind: types.KindFloat64},
		{Name: "min", Kind: types.KindInt64},
		{Name: "max", Kind: types.KindInt64},
	}
	mk := func() *plan.PlannedQuery { return rekeyAgg(aggs, cols) }
	if p, err := plan.DerivePartitioning(mk()); err != nil {
		t.Fatalf("expected two-stage partitioning: %v", err)
	} else if !p.IsTwoStage() {
		t.Fatalf("expected two-stage, got %s", p.Describe())
	}
	sources := []exec.Source{{Name: "s", Log: genLog(3000, 11)}}
	for _, parts := range []int{2, 4, 7} {
		t.Run(fmt.Sprintf("parts=%d", parts), func(t *testing.T) {
			serial, parallel := runBoth(t, mk, sources, parts, types.MaxTime)
			assertSameResult(t, serial, parallel)
		})
	}
}

// TestTwoStageRetractionEmptiesGroup: deleting every row of a group drives
// the merged live count to zero — the final stage must retract the group's
// output row (and not resurrect it) exactly as the serial aggregate does,
// even though individual partitions may see inserts and deletes in
// different relative orders than the group total suggests.
func TestTwoStageRetractionEmptiesGroup(t *testing.T) {
	aggs := []plan.AggCall{
		{Kind: plan.AggCountStar, K: types.KindInt64},
		{Kind: plan.AggMax, Arg: col(0, types.KindInt64), K: types.KindInt64},
	}
	cols := []types.Column{
		{Name: "n", Kind: types.KindInt64},
		{Name: "max", Kind: types.KindInt64},
	}
	mk := func() *plan.PlannedQuery { return rekeyAgg(aggs, cols) }
	// Two groups (price 7 and 8); group 7 fills up then empties completely,
	// twice, with distinct row identities spread across partitions by the
	// full-row hash.
	var log tvr.Changelog
	pt := types.Time(0)
	add := func(kind tvr.EventKind, key, price int64) {
		pt++
		ev := tvr.Event{Ptime: pt, Kind: kind, Row: row(key, price, types.Time(100))}
		log = append(log, ev)
	}
	for round := 0; round < 2; round++ {
		for k := int64(0); k < 8; k++ {
			add(tvr.Insert, k, 7)
		}
		add(tvr.Insert, 100, 8)
		for k := int64(0); k < 8; k++ {
			add(tvr.Delete, k, 7)
		}
	}
	sources := []exec.Source{{Name: "s", Log: log}}
	serial, parallel := runBoth(t, mk, sources, 4, types.MaxTime)
	assertSameResult(t, serial, parallel)
	// The empty group must genuinely end retracted in the snapshot.
	for _, r := range serial.TableRows() {
		if r[0].Int() == 7 {
			t.Fatalf("group 7 should have been retracted away, table still has %s", r)
		}
	}
}

// TestTwoStageLateDataAfterCompletion: once the merged watermark passes an
// event-time group key, both the partial stage (which drops the late row
// before it reaches the exchange) and the final stage (which has freed the
// merged state) treat late input exactly as the serial aggregate: dropped,
// with the already-emitted output untouched.
func TestTwoStageLateDataAfterCompletion(t *testing.T) {
	// An inner per-(key, ts) count creates the hash constraint on (key,
	// ts); the outer per-ts rollup drops the key from its grouping, so it
	// re-keys incompatibly and runs partial/final. Both levels carry an
	// event-time grouping key, so the watermark completes groups in the
	// partition chains (inner + partial outer) and in the serial tail
	// (final outer) alike.
	mkAgg := func() *plan.PlannedQuery {
		inner := &plan.Aggregate{
			Input: scanNode(),
			Keys:  []plan.Scalar{col(0, types.KindInt64), col(2, types.KindTimestamp)},
			Aggs:  []plan.AggCall{{Kind: plan.AggCountStar, K: types.KindInt64}},
			Sch: types.NewSchema(
				types.Column{Name: "key", Kind: types.KindInt64},
				types.Column{Name: "ts", Kind: types.KindTimestamp, EventTime: true},
				types.Column{Name: "n", Kind: types.KindInt64},
			),
		}
		return &plan.PlannedQuery{
			Root: &plan.Aggregate{
				Input: inner,
				Keys:  []plan.Scalar{col(1, types.KindTimestamp)},
				Aggs: []plan.AggCall{
					{Kind: plan.AggSum, Arg: col(2, types.KindInt64), K: types.KindInt64},
					{Kind: plan.AggCountStar, K: types.KindInt64},
				},
				Sch: types.NewSchema(
					types.Column{Name: "ts", Kind: types.KindTimestamp, EventTime: true},
					types.Column{Name: "total", Kind: types.KindInt64},
					types.Column{Name: "groups", Kind: types.KindInt64},
				),
			},
			EmitKeyIdxs: []int{0},
		}
	}
	if p, err := plan.DerivePartitioning(mkAgg()); err != nil || !p.IsTwoStage() {
		t.Fatalf("want two-stage, got p=%v err=%v", p, err)
	}
	log := tvr.Changelog{
		tvr.InsertEvent(1, row(1, 5, 100)),
		tvr.InsertEvent(2, row(2, 5, 100)),
		tvr.InsertEvent(3, row(3, 5, 200)),
		tvr.WatermarkEvent(4, 150),         // completes the ts=100 groups
		tvr.InsertEvent(5, row(4, 5, 100)), // late: dropped in the partials
		tvr.InsertEvent(6, row(5, 5, 200)), // on time
	}
	sources := []exec.Source{{Name: "s", Log: log}}
	serial, parallel := runBoth(t, mkAgg, sources, 4, types.MaxTime)
	assertSameResult(t, serial, parallel)

	// And with EMIT AFTER WATERMARK stacked on top, the tail's
	// materialization operator sees the same merged stream.
	mkEmit := func() *plan.PlannedQuery {
		pq := mkAgg()
		pq.Emit = plan.EmitSpec{AfterWatermark: true}
		return pq
	}
	serial, parallel = runBoth(t, mkEmit, sources, 4, types.MaxTime)
	assertSameResult(t, serial, parallel)
}

// TestTwoStageGlobalAggregate: a keyless aggregation — one row over the whole
// input, initial row emitted at open — runs partitioned with full-row-hashed
// partials and matches serial output byte for byte.
func TestTwoStageGlobalAggregate(t *testing.T) {
	mk := func() *plan.PlannedQuery {
		return &plan.PlannedQuery{Root: &plan.Aggregate{
			Input: scanNode(),
			Aggs: []plan.AggCall{
				{Kind: plan.AggCountStar, K: types.KindInt64},
				{Kind: plan.AggMin, Arg: col(1, types.KindInt64), K: types.KindInt64},
				{Kind: plan.AggAvg, Arg: col(1, types.KindInt64), K: types.KindFloat64},
			},
			Sch: types.NewSchema(
				types.Column{Name: "n", Kind: types.KindInt64},
				types.Column{Name: "min", Kind: types.KindInt64},
				types.Column{Name: "avg", Kind: types.KindFloat64},
			),
		}}
	}
	sources := []exec.Source{{Name: "s", Log: genLog(2500, 17)}}
	serial, parallel := runBoth(t, mk, sources, 4, types.MaxTime)
	assertSameResult(t, serial, parallel)
	if len(serial.TableRows()) != 1 {
		t.Fatalf("global aggregate should produce exactly one row, got %d", len(serial.TableRows()))
	}
}

// TestTwoStageFeedSplits: the incremental lifecycle property — any random
// ptime-axis Feed split is byte-identical to one-shot serial execution — on a
// two-stage plan, directly exercising partial snapshots crossing Drain
// boundaries and pipelined round overlap inside large batches.
func TestTwoStageFeedSplits(t *testing.T) {
	aggs := []plan.AggCall{
		{Kind: plan.AggAvg, Arg: col(0, types.KindInt64), K: types.KindFloat64},
		{Kind: plan.AggMin, Arg: col(0, types.KindInt64), K: types.KindInt64},
		{Kind: plan.AggMax, Arg: col(0, types.KindInt64), K: types.KindInt64},
	}
	cols := []types.Column{
		{Name: "avg", Kind: types.KindFloat64},
		{Name: "min", Kind: types.KindInt64},
		{Name: "max", Kind: types.KindInt64},
	}
	mk := func() *plan.PlannedQuery { return rekeyAgg(aggs, cols) }
	sources := []exec.Source{{Name: "s", Log: genLog(1500, 13)}}

	serialPipe, err := exec.Compile(mk())
	if err != nil {
		t.Fatal(err)
	}
	want, err := serialPipe.Run(sources, types.MaxTime)
	if err != nil {
		t.Fatal(err)
	}

	pts := splitPointsOf(sources)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 4; trial++ {
		pp, err := exec.CompilePartitioned(mk(), 3)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		cuts := randomCuts(rng, pts, 1+rng.Intn(8))
		got, drained := feedInBatches(t, pp, sources, cuts, types.MaxTime)
		assertResultsIdentical(t, fmt.Sprintf("trial %d", trial), got, want)
		if len(drained) != len(got.Log) {
			t.Fatalf("trial %d: drained %d events, result log has %d", trial, len(drained), len(got.Log))
		}
	}
}

// splitPointsOf mirrors lifecycle_test's splitPoints for locally built logs.
func splitPointsOf(sources []exec.Source) []types.Time {
	seen := map[types.Time]bool{}
	var pts []types.Time
	for _, s := range sources {
		for _, ev := range s.Log {
			if !seen[ev.Ptime] {
				seen[ev.Ptime] = true
				pts = append(pts, ev.Ptime)
			}
		}
	}
	for i := 1; i < len(pts); i++ {
		for j := i; j > 0 && pts[j] < pts[j-1]; j-- {
			pts[j], pts[j-1] = pts[j-1], pts[j]
		}
	}
	return pts
}
