package exec

import (
	"errors"
	"fmt"

	"repro/internal/plan"
	"repro/internal/tvr"
	"repro/internal/types"
	"repro/internal/watermark"
)

// This file implements key-partitioned parallel execution. The plan's
// partitioning metadata (plan.DerivePartitioning) proves that rows which can
// ever meet in partition-resident operator state share a routing key, so the
// driver can run N copies of each partitionable subtree — one per partition —
// and fan data events out by key hash while broadcasting watermarks and
// heartbeats.
//
// Determinism is preserved exactly, not approximately: every delivery (one
// event pushed into one scan operator) gets a global sequence number in the
// same order the serial driver would perform it, per-partition outputs are
// tagged with the sequence number of the delivery that caused them, and the
// merge stage reassembles the output stream in (sequence, emission) order.
// Because a data delivery reaches exactly one partition and the per-key
// operator state it touches lives wholly in that partition, the merged
// stream is byte-identical to the serial pipeline's output.
//
// The serial tail consumes the merged stream through one *exchange port* per
// partitioned subtree (plan.Partitioning.CutNodes): for a fully partitionable
// plan that is a single port feeding the EMIT materialization operators and
// the collector; for a cut plan each port feeds the serial operator that
// consumes the subtree (a final aggregate merging two-stage partials, a join
// input, a DISTINCT). Per-partition watermarks min-merge per port (via
// watermark.MinMerger) before entering the tail, and heartbeats deduplicate
// per port, mirroring what the operator at that plan position would observe
// serially.
//
// Scheduling is pipelined rather than round-barriered: each partition owns a
// long-lived worker goroutine with double-buffered inbox/outbox, so the
// workers process round N while the driver's merge stage consumes round N-1.
// Rounds are merged strictly in dispatch order and sequence numbers grow
// monotonically across rounds, so overlapping changes wall-clock behavior
// only — the (seq, emission) merge order, and therefore the output bytes,
// are identical to the barriered schedule.

// ErrNotPartitionable reports that a plan cannot run key-partitioned and the
// caller should fall back to the serial pipeline. Compile errors wrap it so
// callers can errors.Is-test.
var ErrNotPartitionable = errors.New("exec: plan is not partitionable")

// defaultRoundSize is the number of deliveries dispatched per parallel round.
// Batching amortizes channel hand-offs and merge overhead, and large rounds
// are what make the partitioned path cache-friendly (one partition's chain
// stays hot for thousands of events before the driver touches the tail);
// 8192 measured best on the NEXMark aggregation mix. One round's deliveries
// are routed, processed in parallel, and merged in order while the next
// round is being processed.
const defaultRoundSize = 8192

// SmallInputMinPerPartition is the default small-input cost-gate threshold:
// below this many source events per partition the fan-out/merge overhead
// cannot amortize and Run executes serially. Deliberately a fraction of the
// round size — an input worth a couple of rounds already parallelizes.
// Callers that know the input size up front (core's one-shot query paths)
// should gate *before* CompilePartitioned so tiny queries do not even pay
// for building the partition chains.
const SmallInputMinPerPartition = 2048

// routeBlock is the round-robin granularity for stateless (keyless) scans:
// deliveries are spread over partitions in blocks of consecutive sequence
// numbers instead of one by one. Routing stays a pure function of the
// persisted sequence counter — and the merge stage reassembles outputs by
// sequence — so the output bytes are unchanged; what block routing buys is
// long consecutive-seq runs inside each partition's inbox, which the chain
// drain coalesces into single batch dispatches. Per-seq round-robin would cap
// every stateless run at one event. 256 keeps a default 8192-delivery round
// spread across 32 blocks, so partitions stay balanced well past the
// partition counts this engine targets.
const routeBlock = 256

// PartitionedPipeline is a compiled query that executes as N key-partitioned
// operator chains plus a serial merge/materialization tail.
type PartitionedPipeline struct {
	parts  int
	round  int
	scheme *plan.Partitioning
	pq     *plan.PlannedQuery // kept for the small-input serial fallback

	chains []*partChain

	// Delivery-plan shared by all chains (identical build order).
	scanOrder []string // lower-cased source names, serial cursor order
	scanIdxOf map[string][]int
	routes    [][]int // per scan index: columns to hash, nil = round-robin
	hashBuf   []byte  // reusable routing-key encoding buffer

	// Serial tail: the final-aggregate/EMIT/collector operators plus one
	// entry sink per exchange port (plan cut), in cut order.
	tailOps     []sink
	portSinks   []sink
	portPartial []partialReceiver // non-nil where the port is a final aggregate
	collector   *Collector
	// directTail is set when the single port is the bare collector,
	// enabling the precomputed-key fast path.
	directTail bool
	twoStage   bool

	// Per-port watermark/heartbeat merge state.
	ports []portState

	// Pipelined round scheduling: one persistent worker per partition,
	// double-buffered inboxes/outboxes recycled between rounds. inflight
	// holds the participants of the round dispatched but not yet merged.
	workers    []*partWorker
	inflight   []int
	spareInbox [][]delivery
	spareBuf   [][]taggedEvent
	stopped    bool
	failed     error

	// minPerPart is the small-input cost gate: Run falls back to the
	// serial pipeline when the sources carry fewer than parts*minPerPart
	// events, since tiny inputs cannot amortize the fan-out/merge
	// overhead. 0 disables the gate; the incremental Feed lifecycle never
	// gates (input size is unknown up front).
	minPerPart int
	fallback   *Pipeline // set when the gate engaged

	// Incremental-lifecycle driver state: the global delivery sequence
	// counter and the number of deliveries enqueued since the last flush.
	// Both persist across Feed calls so that routing (round-robin uses the
	// sequence number) and merge order are independent of batch splits.
	seq     int
	pending int
	opened  bool
	closed  bool
}

// portState is the per-exchange-port control-event merge state.
type portState struct {
	wmMerge *watermark.MinMerger
	wmPtime types.Time // max ptime over the copies of the pending watermark
	wmSeq   int
	hasHB   bool
	lastHB  types.Time
}

// partialReceiver is implemented by the final aggregate: partial-update
// events carry their originating partition so the final stage can replace
// that partition's contribution.
type partialReceiver interface {
	PushPartial(part int, ev tvr.Event) error
}

// partChain is one partition's copy of the partitioned operator chains.
type partChain struct {
	pipe    *Pipeline
	tag     *tagSink
	scanOps []*scanOp // flattened in delivery order (scanOrder x per-name)
	inbox   []delivery

	evBuf []tvr.Event // coalesced-run scratch, reused across rounds
	// Dispatch counters, owned by the chain's worker goroutine; the driver
	// reads them from Stats only while the pipeline is quiescent.
	dispatches       int64
	dispatchedEvents int64
}

// partWorker is a partition's scheduling endpoint. in has capacity 1 so the
// driver can deposit the next round while the worker still processes the
// current one; out has capacity 2 (the at-most-two dispatched-but-unmerged
// rounds) so a worker never blocks sending results, even on error paths.
type partWorker struct {
	in  chan workerRound
	out chan workerRound
}

// workerRound is one round's work unit: the routed deliveries in, the tagged
// outputs back, both slices recycled round-over-round.
type workerRound struct {
	inbox []delivery
	buf   []taggedEvent
	err   error
}

// work processes rounds until the inbox channel closes. All chain operator
// state is touched only between an in-receive and the matching out-send, so
// the channel hand-offs order memory accesses between worker and driver.
// A panicking operator is caught here and surfaced as the round's error —
// the driver fails the query through the normal error path instead of the
// panic unwinding the process.
func (c *partChain) work(w *partWorker) {
	for r := range w.in {
		r.err = c.drainRound(r.inbox, &r.buf)
		w.out <- r
	}
}

func (c *partChain) drainRound(inbox []delivery, buf *[]taggedEvent) (err error) {
	defer func() {
		if perr := CapturePanic(recover()); perr != nil {
			err = perr
		}
		*buf = c.tag.buf
	}()
	c.tag.buf = *buf
	return c.drain(inbox)
}

// delivery is one unit of driver work: push one event into one scan operator
// (or finish it). seq is the global order the serial driver would use.
type delivery struct {
	seq    int
	scan   int
	ev     tvr.Event
	finish bool
}

// taggedEvent is one output emission labelled with the delivery that caused
// it and the exchange port it surfaced at; buffer order within a partition is
// the emission order.
type taggedEvent struct {
	seq  int
	port int
	ev   tvr.Event
	key  string // precomputed row key for data events (fast collector path)
}

// tagSink is the per-chain output buffer shared by the chain's port sinks.
type tagSink struct {
	seq     int
	precomp bool
	buf     []taggedEvent
}

// portTagSink terminates one partitioned subtree of a chain, recording
// outputs with cause and port tags. A delivery enters exactly one scan and
// flows up exactly one subtree, so buffer order stays (seq, emission) order
// even with several ports sharing the buffer.
type portTagSink struct {
	t    *tagSink
	port int
}

func (s *portTagSink) Push(ev tvr.Event) error {
	te := taggedEvent{seq: s.t.seq, port: s.port, ev: ev}
	if s.t.precomp && ev.IsData() {
		te.key = ev.Row.Key()
	}
	s.t.buf = append(s.t.buf, te)
	return nil
}

// PushBatch implements batchSink: the whole batch lands in the tag buffer in
// one call. Every event carries the current delivery seq — for a coalesced
// run that is the run's first seq, which preserves the (seq, emission) merge
// order because the run's sequence numbers are consecutive and therefore
// absent from every other partition.
func (s *portTagSink) PushBatch(evs []tvr.Event) error {
	for i := range evs {
		te := taggedEvent{seq: s.t.seq, port: s.port, ev: evs[i]}
		if s.t.precomp && evs[i].IsData() {
			te.key = evs[i].Row.Key()
		}
		s.t.buf = append(s.t.buf, te)
	}
	return nil
}

func (s *portTagSink) Finish() error { return nil }

// CompilePartitioned builds an N-way partitioned pipeline for the planned
// query. It returns an error wrapping ErrNotPartitionable when the plan has
// no valid hash partitioning (the caller should use Compile instead).
func CompilePartitioned(pq *plan.PlannedQuery, parts int) (*PartitionedPipeline, error) {
	if parts < 2 {
		return nil, fmt.Errorf("%w: need at least 2 partitions, got %d", ErrNotPartitionable, parts)
	}
	scheme, err := plan.DerivePartitioning(pq)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotPartitionable, err)
	}
	cutNodes := scheme.CutNodes()
	cutIdx := make(map[plan.Node]int, len(cutNodes))
	for i, n := range cutNodes {
		cutIdx[n] = i
	}
	pp := &PartitionedPipeline{
		parts:      parts,
		round:      defaultRoundSize,
		scheme:     scheme,
		pq:         pq,
		twoStage:   scheme.IsTwoStage(),
		minPerPart: SmallInputMinPerPartition,
		portSinks:  make([]sink, len(cutNodes)),
	}

	// The materialization tail is built by the same helper Compile uses, so
	// both paths materialize identically by construction. The serial
	// segment above the exchange cuts (if any) is built by the ordinary
	// operator builder with a hook that stops at each cut and records the
	// sink its merged stream must feed — creating the final aggregate for
	// two-stage cuts.
	collector, tailOps, top := buildTail(pq)
	pp.collector = collector
	pp.tailOps = tailOps
	tailPipe := &Pipeline{scans: make(map[string][]*scanOp)}
	tailPipe.cutHook = func(n plan.Node, out sink) (bool, error) {
		ci, ok := cutIdx[n]
		if !ok {
			return false, nil
		}
		if agg, isAgg := n.(*plan.Aggregate); isAgg && scheme.TwoStage[agg] {
			fa := newFinalAggOp(agg, parts, out)
			tailPipe.allOps = append(tailPipe.allOps, fa)
			pp.portSinks[ci] = fa
		} else {
			pp.portSinks[ci] = out
		}
		return true, nil
	}
	if err := tailPipe.build(pq.Root, top); err != nil {
		return nil, err
	}
	if len(tailPipe.scanOrder) > 0 {
		return nil, fmt.Errorf("exec: internal: scan above the exchange frontier")
	}
	pp.tailOps = append(pp.tailOps, tailPipe.allOps...)
	pp.directTail = len(cutNodes) == 1 && pp.portSinks[0] == sink(pp.collector)
	pp.portPartial = make([]partialReceiver, len(cutNodes))
	for i, s := range pp.portSinks {
		if pr, ok := s.(partialReceiver); ok {
			pp.portPartial[i] = pr
		}
	}
	pp.ports = make([]portState, len(cutNodes))
	for i := range pp.ports {
		pp.ports[i] = portState{wmMerge: watermark.NewMinMerger(parts), wmSeq: -1}
	}

	for i := 0; i < parts; i++ {
		tag := &tagSink{precomp: pp.directTail}
		pipe := &Pipeline{scans: make(map[string][]*scanOp)}
		for ci, cut := range cutNodes {
			top := &portTagSink{t: tag, port: ci}
			if agg, isAgg := cut.(*plan.Aggregate); isAgg && scheme.TwoStage[agg] {
				pa, err := newPartialAggOp(agg, top)
				if err != nil {
					return nil, err
				}
				pipe.allOps = append(pipe.allOps, pa)
				if err := pipe.build(agg.Input, pa); err != nil {
					return nil, err
				}
			} else if err := pipe.build(cut, top); err != nil {
				return nil, err
			}
		}
		chain := &partChain{pipe: pipe, tag: tag}
		for _, name := range pipe.scanOrder {
			chain.scanOps = append(chain.scanOps, pipe.scans[name]...)
		}
		pp.chains = append(pp.chains, chain)
	}

	// The delivery plan comes from partition 0; all chains are built from
	// the same plan tree in the same order, so indexes line up. Cut nodes
	// enumerate in plan DFS order, so the concatenated scan order equals
	// the serial pipeline's.
	ref := pp.chains[0]
	pp.scanOrder = ref.pipe.scanOrder
	pp.scanIdxOf = make(map[string][]int)
	idx := 0
	for _, name := range ref.pipe.scanOrder {
		for range ref.pipe.scans[name] {
			pp.scanIdxOf[name] = append(pp.scanIdxOf[name], idx)
			idx++
		}
	}
	for _, op := range ref.scanOps {
		var node *plan.Scan
		for _, b := range ref.pipe.scanBind {
			if b.op == op {
				node = b.node
				break
			}
		}
		if node == nil {
			return nil, fmt.Errorf("exec: internal: scan operator without plan binding")
		}
		pp.routes = append(pp.routes, scheme.ScanKeys[node])
	}
	return pp, nil
}

// SetSmallInputGate overrides the small-input cost gate: Run executes
// serially when the sources carry fewer than parts*minPerPart events. Pass 0
// to always run partitioned (used by equivalence tests and benchmarks that
// measure the parallel path at small scale).
func (pp *PartitionedPipeline) SetSmallInputGate(minPerPart int) {
	pp.minPerPart = minPerPart
}

// SmallInput is the single definition of the small-input cost-gate policy:
// it reports whether the sources carry too few events to amortize a
// parts-way fan-out under the given per-partition threshold (<= 0 disables).
// Both PartitionedPipeline.Run and core's pre-compile gate call this, so the
// threshold semantics cannot drift between the two layers.
func SmallInput(sources []Source, parts, minPerPart int) bool {
	if minPerPart <= 0 {
		return false
	}
	total := 0
	for _, s := range sources {
		total += len(s.Log)
	}
	return total < parts*minPerPart
}

// route picks the partition for a data event entering the given scan.
func (pp *PartitionedPipeline) route(d delivery) int {
	cols := pp.routes[d.scan]
	if cols == nil {
		// Stateless subtree: spread deliveries round-robin in blocks of
		// consecutive sequence numbers (see routeBlock).
		return (d.seq / routeBlock) % pp.parts
	}
	// Inline FNV-1a over the reusable key-encoding buffer: the routing
	// loop is serial and per-event, so avoid both the hasher allocation
	// and the per-delivery string materialization.
	pp.hashBuf = d.ev.Row.AppendKeyOf(pp.hashBuf[:0], cols)
	h := uint32(2166136261)
	for _, b := range pp.hashBuf {
		h = (h ^ uint32(b)) * 16777619
	}
	return int(h % uint32(pp.parts))
}

// Run feeds the sources through the partitioned pipeline; the contract is
// identical to Pipeline.Run, including byte-identical output. Inputs too
// small to amortize the fan-out (see SetSmallInputGate) transparently run on
// the serial pipeline instead; Stats reports which path executed.
func (pp *PartitionedPipeline) Run(sources []Source, upTo types.Time) (*Result, error) {
	if pp.opened {
		return nil, fmt.Errorf("exec: pipeline already ran")
	}
	if SmallInput(sources, pp.parts, pp.minPerPart) {
		sp, err := Compile(pp.pq)
		if err != nil {
			return nil, err
		}
		pp.opened, pp.closed = true, true
		pp.fallback = sp
		return sp.Run(sources, upTo)
	}
	if err := pp.Start(); err != nil {
		return nil, err
	}
	if err := pp.feed(sources, upTo, true); err != nil {
		return nil, err
	}
	// Advance the processing-time clock to the query horizon, then finish
	// every scan — mirroring the serial driver's epilogue.
	if upTo != types.MaxTime {
		if err := pp.Advance(upTo); err != nil {
			return nil, err
		}
	}
	return pp.Close()
}

// Start opens the tail and every partition chain's operators and launches the
// partition workers, making the pipeline ready for incremental Feed/Advance
// calls. Only tail operators may emit at open time (a global final aggregate's
// initial row); the partitioning analysis rejects chain-side open emissions
// (constant relations), which would otherwise duplicate per partition.
func (pp *PartitionedPipeline) Start() error {
	if pp.opened {
		return fmt.Errorf("exec: pipeline already started")
	}
	pp.opened = true
	for _, op := range pp.tailOps {
		if o, ok := op.(opener); ok {
			if err := o.Open(); err != nil {
				return err
			}
		}
	}
	for _, c := range pp.chains {
		for _, op := range c.pipe.allOps {
			if o, ok := op.(opener); ok {
				if err := o.Open(); err != nil {
					return err
				}
			}
		}
		if len(c.tag.buf) > 0 {
			return fmt.Errorf("exec: internal: partitioned chain emitted at open time")
		}
	}
	pp.launchWorkers()
	return nil
}

// launchWorkers starts the persistent per-partition worker goroutines. It is
// the half of Start shared with checkpoint restore, which must skip the
// operator Open pass (open-time emissions already happened before the
// checkpoint was taken).
func (pp *PartitionedPipeline) launchWorkers() {
	pp.workers = make([]*partWorker, pp.parts)
	pp.spareInbox = make([][]delivery, pp.parts)
	pp.spareBuf = make([][]taggedEvent, pp.parts)
	for p := range pp.workers {
		w := &partWorker{in: make(chan workerRound, 1), out: make(chan workerRound, 2)}
		pp.workers[p] = w
		go pp.chains[p].work(w)
	}
}

// Abandon releases the pipeline's worker goroutines without completing its
// input; operator state is left as-is and no further calls are accepted. It
// exists for the checkpoint workflow: a pipeline that has just been
// checkpointed can be discarded in favor of a restored copy (equivalence
// tests do exactly that) without leaking its workers.
func (pp *PartitionedPipeline) Abandon() {
	pp.closed = true
	pp.stopWorkers()
}

// stopWorkers ends the partition worker goroutines. Safe to call repeatedly;
// workers never block on result sends (out is sized for the maximum number of
// outstanding rounds), so closing their inboxes always terminates them.
func (pp *PartitionedPipeline) stopWorkers() {
	if pp.stopped || pp.workers == nil {
		return
	}
	pp.stopped = true
	for _, w := range pp.workers {
		close(w.in)
	}
}

// fail marks the pipeline unusable and shuts the workers down.
func (pp *PartitionedPipeline) fail(err error) error {
	if pp.failed == nil {
		pp.failed = err
	}
	pp.stopWorkers()
	return err
}

// enqueue routes one delivery: data events go to the partition owning their
// key, control events (watermarks, heartbeats, finishes) broadcast so every
// partition observes time progress and end-of-input.
func (pp *PartitionedPipeline) enqueue(d delivery) {
	if d.ev.IsData() && !d.finish {
		p := pp.route(d)
		pp.chains[p].inbox = append(pp.chains[p].inbox, d)
	} else {
		for _, c := range pp.chains {
			c.inbox = append(c.inbox, d)
		}
	}
	pp.pending++
}

// dispatch hands every non-empty inbox to its partition worker as one round,
// swapping in the recycled spare buffers, and returns the participating
// partitions in order.
func (pp *PartitionedPipeline) dispatch() []int {
	var participants []int
	for p, c := range pp.chains {
		if len(c.inbox) == 0 {
			continue
		}
		pp.workers[p].in <- workerRound{inbox: c.inbox, buf: pp.spareBuf[p][:0]}
		pp.spareBuf[p] = nil
		c.inbox = pp.spareInbox[p][:0]
		pp.spareInbox[p] = nil
		participants = append(participants, p)
	}
	return participants
}

// collectRound waits for the given round's workers, k-way merges their tagged
// buffers by (seq, partition) into the tail, and recycles the buffers.
// Buffers are already seq-ordered: workers process deliveries in seq order
// and tag outputs as they emit.
func (pp *PartitionedPipeline) collectRound(participants []int) error {
	if len(participants) == 0 {
		return nil
	}
	rounds := make([]workerRound, len(participants))
	var firstErr error
	for i, p := range participants {
		rounds[i] = <-pp.workers[p].out
		if rounds[i].err != nil && firstErr == nil {
			firstErr = rounds[i].err
		}
	}
	if firstErr != nil {
		return firstErr
	}
	idx := make([]int, len(participants))
	for {
		best := -1
		for i := range participants {
			if idx[i] >= len(rounds[i].buf) {
				continue
			}
			if best < 0 || rounds[i].buf[idx[i]].seq < rounds[best].buf[idx[best]].seq {
				best = i
			}
		}
		if best < 0 {
			break
		}
		te := rounds[best].buf[idx[best]]
		idx[best]++
		if err := pp.emit(te, participants[best]); err != nil {
			return err
		}
	}
	for i, p := range participants {
		pp.spareInbox[p] = rounds[i].inbox[:0]
		pp.spareBuf[p] = rounds[i].buf[:0]
	}
	return nil
}

// flushRound dispatches the pending deliveries as a new round and merges the
// *previous* round's results — the double-buffered overlap: workers chew on
// round N while the driver merges round N-1.
func (pp *PartitionedPipeline) flushRound() error {
	pp.pending = 0
	cur := pp.dispatch()
	err := pp.collectRound(pp.inflight)
	pp.inflight = cur
	if err != nil {
		return pp.fail(err)
	}
	return nil
}

// sync dispatches any pending deliveries and merges every outstanding round,
// leaving the pipeline quiescent (the barrier Drain and Close rely on).
func (pp *PartitionedPipeline) sync() error {
	if err := pp.flushRound(); err != nil {
		return err
	}
	err := pp.collectRound(pp.inflight)
	pp.inflight = nil
	if err != nil {
		return pp.fail(err)
	}
	return nil
}

// Feed merges and routes a batch of new per-source events, overlapping
// parallel rounds with the merge stage as the batch fills them, and
// materializes the batch's output into the tail so Drain observes it. The
// global sequence counter persists across calls, so batch splits change
// neither routing nor merge order: any order-respecting split is
// byte-identical to a one-shot Run.
func (pp *PartitionedPipeline) Feed(batch []Source) error {
	return pp.feed(batch, types.MaxTime, false)
}

func (pp *PartitionedPipeline) feed(batch []Source, upTo types.Time, requireAll bool) error {
	if !pp.opened || pp.closed || pp.failed != nil {
		return fmt.Errorf("exec: pipeline not accepting input")
	}
	// Same k-way merge by ptime as the serial driver (ties broken by
	// source registration order), batched into overlapping rounds. Routing
	// needs per-event key hashing, so runs are unrolled here; the batch win
	// on this path comes from the chains coalescing consecutive-seq runs on
	// the partition side.
	err := forEachMergedRuns(batch, pp.scanOrder, upTo, requireAll, func(name string, evs []tvr.Event) error {
		scanIdx := pp.scanIdxOf[name]
		for _, ev := range evs {
			for _, si := range scanIdx {
				pp.enqueue(delivery{seq: pp.seq, scan: si, ev: ev})
				pp.seq++
			}
			if pp.pending >= pp.round {
				if err := pp.flushRound(); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		if pp.failed == nil {
			pp.fail(err)
		}
		return err
	}
	return pp.sync()
}

// Advance moves the processing-time clock to pt by broadcasting a heartbeat
// to every partition and syncing the outstanding rounds.
func (pp *PartitionedPipeline) Advance(pt types.Time) error {
	if !pp.opened || pp.closed || pp.failed != nil {
		return fmt.Errorf("exec: pipeline not accepting input")
	}
	hb := tvr.HeartbeatEvent(pt)
	for _, name := range pp.scanOrder {
		for _, si := range pp.scanIdxOf[name] {
			pp.enqueue(delivery{seq: pp.seq, scan: si, ev: hb})
			pp.seq++
		}
	}
	return pp.sync()
}

// Close signals end-of-input on every scan in every partition, merges the
// final rounds through the serial tail, finishes the exchange ports, and
// returns the materialized result.
func (pp *PartitionedPipeline) Close() (*Result, error) {
	if !pp.opened {
		return nil, fmt.Errorf("exec: pipeline not started")
	}
	if pp.closed {
		return nil, fmt.Errorf("exec: pipeline already closed")
	}
	pp.closed = true
	if pp.failed != nil {
		return nil, pp.failed
	}
	for _, name := range pp.scanOrder {
		for _, si := range pp.scanIdxOf[name] {
			pp.enqueue(delivery{seq: pp.seq, scan: si, finish: true})
			pp.seq++
		}
	}
	if err := pp.sync(); err != nil {
		return nil, err
	}
	pp.stopWorkers()
	// Finish the tail ports. All merged events (including the finish-time
	// final watermarks) are already in; a port's Finish emits nothing until
	// the last input of a converging tail operator finishes, so port order
	// yields the serial finish cascade.
	for _, ps := range pp.portSinks {
		if err := ps.Finish(); err != nil {
			return nil, err
		}
	}
	return pp.collector.result()
}

// Drain returns the output changelog events materialized since the previous
// Drain (or since Start), in emission order.
func (pp *PartitionedPipeline) Drain() tvr.Changelog {
	if pp.fallback != nil {
		return pp.fallback.Drain()
	}
	return pp.collector.drain()
}

// OutputWatermark reports the output relation's current watermark.
func (pp *PartitionedPipeline) OutputWatermark() types.Time {
	if pp.fallback != nil {
		return pp.fallback.OutputWatermark()
	}
	return pp.collector.watermark()
}

// drain pushes a round's deliveries through the partition's chain. Maximal
// runs of consecutive-seq data deliveries into the same scan are coalesced
// into one batch dispatch tagged with the run's first seq: the run's sequence
// numbers are consecutive, so no other partition holds any seq inside the
// run and the (seq, emission) merge order is unchanged. Control and finish
// deliveries keep the per-event path (and their own seq tags — the watermark
// deduplication in emit depends on copies sharing the cause seq).
func (c *partChain) drain(inbox []delivery) error {
	for i := 0; i < len(inbox); {
		d := inbox[i]
		s := c.scanOps[d.scan]
		if d.finish {
			c.tag.seq = d.seq
			if err := s.Finish(); err != nil {
				return err
			}
			i++
			continue
		}
		if !d.ev.IsData() {
			c.tag.seq = d.seq
			c.dispatches++
			c.dispatchedEvents++
			if err := s.Push(d.ev); err != nil {
				return err
			}
			i++
			continue
		}
		j := i + 1
		for j < len(inbox) {
			n := inbox[j]
			if n.finish || !n.ev.IsData() || n.scan != d.scan || n.seq != inbox[j-1].seq+1 {
				break
			}
			j++
		}
		c.tag.seq = d.seq
		c.dispatches++
		c.dispatchedEvents += int64(j - i)
		if j == i+1 {
			if err := s.Push(d.ev); err != nil {
				return err
			}
		} else {
			c.evBuf = c.evBuf[:0]
			for k := i; k < j; k++ {
				c.evBuf = append(c.evBuf, inbox[k].ev)
			}
			if err := s.PushBatch(c.evBuf); err != nil {
				return err
			}
		}
		i = j
	}
	return nil
}

// emit forwards one merged output into its exchange port of the serial tail.
// Data events pass through directly (their cause delivery ran in exactly one
// partition, so merge order equals serial order); partial-update events carry
// their originating partition into the final aggregate. Control events arrive
// once per partition and are deduplicated per port: watermarks min-merge
// across partitions, heartbeats forward once per processing time.
func (pp *PartitionedPipeline) emit(te taggedEvent, part int) error {
	switch te.ev.Kind {
	case tvr.Watermark:
		// Copies of one logical watermark share the cause seq but may
		// carry different ptimes (a bounded scan's final watermark is
		// stamped with the partition's last seen ptime); the serial
		// equivalent is the max over partitions.
		ps := &pp.ports[te.port]
		if te.seq != ps.wmSeq {
			ps.wmSeq = te.seq
			ps.wmPtime = te.ev.Ptime
		} else if te.ev.Ptime > ps.wmPtime {
			ps.wmPtime = te.ev.Ptime
		}
		if wm, adv := ps.wmMerge.Advance(part, te.ev.Wm); adv {
			return pp.portSinks[te.port].Push(tvr.WatermarkEvent(ps.wmPtime, wm))
		}
		return nil
	case tvr.Heartbeat:
		ps := &pp.ports[te.port]
		if !ps.hasHB || te.ev.Ptime > ps.lastHB {
			ps.hasHB = true
			ps.lastHB = te.ev.Ptime
			return pp.portSinks[te.port].Push(te.ev)
		}
		return nil
	default:
		if pp.directTail {
			return pp.collector.PushKeyed(te.ev, te.key)
		}
		if pr := pp.portPartial[te.port]; pr != nil {
			return pr.PushPartial(part, te.ev)
		}
		return pp.portSinks[te.port].Push(te.ev)
	}
}

// Stats sums operator statistics across every partition chain and the tail.
func (pp *PartitionedPipeline) Stats() Stats {
	if pp.fallback != nil {
		st := pp.fallback.Stats()
		st.Path = PathSerialSmallInput
		return st
	}
	var st Stats
	for _, c := range pp.chains {
		for _, op := range c.pipe.allOps {
			if s, ok := op.(statser); ok {
				s.stats(&st)
			}
		}
		st.Dispatches += c.dispatches
		st.DispatchedEvents += c.dispatchedEvents
	}
	if st.Dispatches > 0 {
		st.EventsPerDispatch = float64(st.DispatchedEvents) / float64(st.Dispatches)
	}
	for _, op := range pp.tailOps {
		if s, ok := op.(statser); ok {
			s.stats(&st)
		}
	}
	st.Partitions = pp.parts
	st.TwoStage = pp.twoStage
	st.Path = PathParallel
	if pp.twoStage {
		st.Path = PathParallelTwoStage
	}
	return st
}

// DispatchStats returns the dispatch counters without walking operator
// state. Safe whenever the workers are quiescent (Feed/Advance fully sync
// before returning), which is when the session layer calls it.
func (pp *PartitionedPipeline) DispatchStats() (dispatches, events int64) {
	if pp.fallback != nil {
		return pp.fallback.DispatchStats()
	}
	for _, c := range pp.chains {
		dispatches += c.dispatches
		events += c.dispatchedEvents
	}
	return dispatches, events
}

// Partitioning exposes the routing scheme (for EXPLAIN-style output).
func (pp *PartitionedPipeline) Partitioning() *plan.Partitioning { return pp.scheme }
