package exec

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/plan"
	"repro/internal/tvr"
	"repro/internal/types"
	"repro/internal/watermark"
)

// This file implements key-partitioned parallel execution. The plan's
// partitioning metadata (plan.DerivePartitioning) proves that rows which can
// ever meet in operator state share a routing key, so the driver can run N
// complete copies of the operator chain — one per partition — and fan data
// events out by key hash while broadcasting watermarks and heartbeats.
//
// Determinism is preserved exactly, not approximately: every delivery (one
// event pushed into one scan operator) gets a global sequence number in the
// same order the serial driver would perform it, per-partition outputs are
// tagged with the sequence number of the delivery that caused them, and the
// merge stage reassembles the output stream in (sequence, emission) order.
// Because a data delivery reaches exactly one partition and the per-key
// operator state it touches lives wholly in that partition, the merged
// stream is byte-identical to the serial pipeline's output. Per-partition
// watermarks are min-merged (via watermark.MinMerger) before entering the
// serial tail — the EMIT materialization operators and the collector — which
// consumes the merged stream exactly as it would the serial one.

// ErrNotPartitionable reports that a plan cannot run key-partitioned and the
// caller should fall back to the serial pipeline. Compile errors wrap it so
// callers can errors.Is-test.
var ErrNotPartitionable = errors.New("exec: plan is not partitionable")

// defaultRoundSize is the number of deliveries dispatched per parallel round.
// Batching amortizes goroutine wake-ups and merge overhead; one round's
// deliveries are routed, processed in parallel, then merged in order.
const defaultRoundSize = 2048

// PartitionedPipeline is a compiled query that executes as N key-partitioned
// operator chains plus a serial merge/materialization tail.
type PartitionedPipeline struct {
	parts  int
	round  int
	scheme *plan.Partitioning

	chains []*partChain

	// Delivery-plan shared by all chains (identical build order).
	scanOrder []string // lower-cased source names, serial cursor order
	scanIdxOf map[string][]int
	routes    [][]int // per scan index: columns to hash, nil = round-robin

	// Serial tail: EMIT operators and the collector.
	tailOps   []sink
	tailTop   sink
	collector *Collector
	// directTail is set when the tail is the bare collector, enabling the
	// precomputed-key fast path.
	directTail bool

	// Watermark/heartbeat merge state.
	wmMerge *watermark.MinMerger
	wmPtime types.Time // max ptime over the copies of the pending watermark
	wmSeq   int
	hasHB   bool
	lastHB  types.Time

	// Incremental-lifecycle driver state: the global delivery sequence
	// counter and the number of deliveries enqueued since the last flush.
	// Both persist across Feed calls so that routing (round-robin uses the
	// sequence number) and merge order are independent of batch splits.
	seq     int
	pending int
	opened  bool
	closed  bool
}

// partChain is one partition's copy of the operator chain.
type partChain struct {
	pipe    *Pipeline
	tag     *tagSink
	scanOps []*scanOp // flattened in delivery order (scanOrder x per-name)
	err     error
	inbox   []delivery
}

// delivery is one unit of driver work: push one event into one scan operator
// (or finish it). seq is the global order the serial driver would use.
type delivery struct {
	seq    int
	scan   int
	ev     tvr.Event
	finish bool
}

// taggedEvent is one output emission labelled with the delivery that caused
// it; buffer order within a partition is the emission order.
type taggedEvent struct {
	seq int
	ev  tvr.Event
	key string // precomputed row key for data events (fast collector path)
}

// tagSink terminates a partition chain, recording outputs with cause tags.
type tagSink struct {
	seq     int
	precomp bool
	buf     []taggedEvent
}

func (t *tagSink) Push(ev tvr.Event) error {
	te := taggedEvent{seq: t.seq, ev: ev}
	if t.precomp && ev.IsData() {
		te.key = ev.Row.Key()
	}
	t.buf = append(t.buf, te)
	return nil
}

func (t *tagSink) Finish() error { return nil }

// CompilePartitioned builds an N-way partitioned pipeline for the planned
// query. It returns an error wrapping ErrNotPartitionable when the plan has
// no valid hash partitioning (the caller should use Compile instead).
func CompilePartitioned(pq *plan.PlannedQuery, parts int) (*PartitionedPipeline, error) {
	if parts < 2 {
		return nil, fmt.Errorf("%w: need at least 2 partitions, got %d", ErrNotPartitionable, parts)
	}
	scheme, err := plan.DerivePartitioning(pq)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotPartitionable, err)
	}
	pp := &PartitionedPipeline{
		parts:   parts,
		round:   defaultRoundSize,
		scheme:  scheme,
		wmMerge: watermark.NewMinMerger(parts),
		wmSeq:   -1,
	}

	// The serial tail is built by the same helper Compile uses, so both
	// paths materialize identically by construction.
	collector, tailOps, top := buildTail(pq)
	pp.collector = collector
	pp.tailOps = tailOps
	pp.tailTop = top
	pp.directTail = top == sink(pp.collector)

	for i := 0; i < parts; i++ {
		tag := &tagSink{precomp: pp.directTail}
		pipe := &Pipeline{scans: make(map[string][]*scanOp)}
		if err := pipe.build(pq.Root, tag); err != nil {
			return nil, err
		}
		chain := &partChain{pipe: pipe, tag: tag}
		for _, name := range pipe.scanOrder {
			chain.scanOps = append(chain.scanOps, pipe.scans[name]...)
		}
		pp.chains = append(pp.chains, chain)
	}

	// The delivery plan comes from partition 0; all chains are built from
	// the same plan tree in the same order, so indexes line up.
	ref := pp.chains[0]
	pp.scanOrder = ref.pipe.scanOrder
	pp.scanIdxOf = make(map[string][]int)
	idx := 0
	for _, name := range ref.pipe.scanOrder {
		for range ref.pipe.scans[name] {
			pp.scanIdxOf[name] = append(pp.scanIdxOf[name], idx)
			idx++
		}
	}
	for _, op := range ref.scanOps {
		var node *plan.Scan
		for _, b := range ref.pipe.scanBind {
			if b.op == op {
				node = b.node
				break
			}
		}
		if node == nil {
			return nil, fmt.Errorf("exec: internal: scan operator without plan binding")
		}
		pp.routes = append(pp.routes, scheme.ScanKeys[node])
	}
	return pp, nil
}

// route picks the partition for a data event entering the given scan.
func (pp *PartitionedPipeline) route(d delivery) int {
	cols := pp.routes[d.scan]
	if cols == nil {
		// Stateless plan: spread deliveries round-robin.
		return d.seq % pp.parts
	}
	// Inline FNV-1a: the routing loop is serial and per-event, so avoid
	// the hasher allocation and []byte copy of hash/fnv.
	h := uint32(2166136261)
	key := d.ev.Row.KeyOf(cols)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return int(h % uint32(pp.parts))
}

// Run feeds the sources through the partitioned pipeline; the contract is
// identical to Pipeline.Run, including byte-identical output.
func (pp *PartitionedPipeline) Run(sources []Source, upTo types.Time) (*Result, error) {
	if pp.opened {
		return nil, fmt.Errorf("exec: pipeline already ran")
	}
	if err := pp.Start(); err != nil {
		return nil, err
	}
	if err := pp.feed(sources, upTo, true); err != nil {
		return nil, err
	}
	// Advance the processing-time clock to the query horizon, then finish
	// every scan — mirroring the serial driver's epilogue.
	if upTo != types.MaxTime {
		if err := pp.Advance(upTo); err != nil {
			return nil, err
		}
	}
	return pp.Close()
}

// Start opens every partition chain's operators, making the pipeline ready
// for incremental Feed/Advance calls. The partitioning analysis rejects
// plans with open-time emissions (constant relations, global aggregates),
// which would otherwise duplicate per partition; verify that held.
func (pp *PartitionedPipeline) Start() error {
	if pp.opened {
		return fmt.Errorf("exec: pipeline already started")
	}
	pp.opened = true
	for _, c := range pp.chains {
		for _, op := range c.pipe.allOps {
			if o, ok := op.(opener); ok {
				if err := o.Open(); err != nil {
					return err
				}
			}
		}
		if len(c.tag.buf) > 0 {
			return fmt.Errorf("exec: internal: partitioned plan emitted at open time")
		}
	}
	return nil
}

// enqueue routes one delivery: data events go to the partition owning their
// key, control events (watermarks, heartbeats, finishes) broadcast so every
// partition observes time progress and end-of-input.
func (pp *PartitionedPipeline) enqueue(d delivery) {
	if d.ev.IsData() && !d.finish {
		p := pp.route(d)
		pp.chains[p].inbox = append(pp.chains[p].inbox, d)
	} else {
		for _, c := range pp.chains {
			c.inbox = append(c.inbox, d)
		}
	}
	pp.pending++
}

// flushReset runs one parallel round and resets the pending counter.
func (pp *PartitionedPipeline) flushReset() error {
	pp.pending = 0
	return pp.flush()
}

// Feed merges and routes a batch of new per-source events, running parallel
// rounds as the batch fills them, and materializes the batch's output into
// the tail so Drain observes it. The global sequence counter persists across
// calls, so batch splits change neither routing nor merge order: any
// order-respecting split is byte-identical to a one-shot Run.
func (pp *PartitionedPipeline) Feed(batch []Source) error {
	return pp.feed(batch, types.MaxTime, false)
}

func (pp *PartitionedPipeline) feed(batch []Source, upTo types.Time, requireAll bool) error {
	if !pp.opened || pp.closed {
		return fmt.Errorf("exec: pipeline not accepting input")
	}
	// Same k-way merge by ptime as the serial driver (ties broken by
	// source registration order), batched into parallel rounds.
	err := forEachMerged(batch, pp.scanOrder, upTo, requireAll, func(name string, ev tvr.Event) error {
		for _, si := range pp.scanIdxOf[name] {
			pp.enqueue(delivery{seq: pp.seq, scan: si, ev: ev})
			pp.seq++
		}
		if pp.pending >= pp.round {
			return pp.flushReset()
		}
		return nil
	})
	if err != nil {
		return err
	}
	return pp.flushReset()
}

// Advance moves the processing-time clock to pt by broadcasting a heartbeat
// to every partition and flushing the round.
func (pp *PartitionedPipeline) Advance(pt types.Time) error {
	if !pp.opened || pp.closed {
		return fmt.Errorf("exec: pipeline not accepting input")
	}
	hb := tvr.HeartbeatEvent(pt)
	for _, name := range pp.scanOrder {
		for _, si := range pp.scanIdxOf[name] {
			pp.enqueue(delivery{seq: pp.seq, scan: si, ev: hb})
			pp.seq++
		}
	}
	return pp.flushReset()
}

// Close signals end-of-input on every scan in every partition, flushes the
// final round through the serial tail, and returns the materialized result.
func (pp *PartitionedPipeline) Close() (*Result, error) {
	if !pp.opened {
		return nil, fmt.Errorf("exec: pipeline not started")
	}
	if pp.closed {
		return nil, fmt.Errorf("exec: pipeline already closed")
	}
	pp.closed = true
	for _, name := range pp.scanOrder {
		for _, si := range pp.scanIdxOf[name] {
			pp.enqueue(delivery{seq: pp.seq, scan: si, finish: true})
			pp.seq++
		}
	}
	if err := pp.flushReset(); err != nil {
		return nil, err
	}
	if err := pp.tailTop.Finish(); err != nil {
		return nil, err
	}
	return pp.collector.result()
}

// Drain returns the output changelog events materialized since the previous
// Drain (or since Start), in emission order.
func (pp *PartitionedPipeline) Drain() tvr.Changelog { return pp.collector.drain() }

// OutputWatermark reports the output relation's current watermark.
func (pp *PartitionedPipeline) OutputWatermark() types.Time { return pp.collector.watermark() }

// flush runs one parallel round: each partition worker drains its inbox
// through its operator chain, then the tagged outputs are merged in delivery
// order into the serial tail.
func (pp *PartitionedPipeline) flush() error {
	var wg sync.WaitGroup
	for _, c := range pp.chains {
		if len(c.inbox) == 0 {
			continue
		}
		wg.Add(1)
		go func(c *partChain) {
			defer wg.Done()
			c.err = c.drain()
		}(c)
	}
	wg.Wait()
	for _, c := range pp.chains {
		if c.err != nil {
			return c.err
		}
	}

	// K-way merge of the per-partition output buffers by (seq, partition).
	// Buffers are already seq-ordered: workers process deliveries in seq
	// order and tag outputs as they emit.
	idx := make([]int, pp.parts)
	for {
		best := -1
		for p, c := range pp.chains {
			i := idx[p]
			if i >= len(c.tag.buf) {
				continue
			}
			if best < 0 || c.tag.buf[i].seq < pp.chains[best].tag.buf[idx[best]].seq {
				best = p
			}
		}
		if best < 0 {
			break
		}
		te := pp.chains[best].tag.buf[idx[best]]
		idx[best]++
		if err := pp.emit(te, best); err != nil {
			return err
		}
	}
	for _, c := range pp.chains {
		c.inbox = c.inbox[:0]
		c.tag.buf = c.tag.buf[:0]
	}
	return nil
}

// drain pushes a partition's inbox through its chain.
func (c *partChain) drain() error {
	for _, d := range c.inbox {
		c.tag.seq = d.seq
		s := c.scanOps[d.scan]
		if d.finish {
			if err := s.Finish(); err != nil {
				return err
			}
			continue
		}
		if err := s.Push(d.ev); err != nil {
			return err
		}
	}
	return nil
}

// emit forwards one merged output into the serial tail. Data events pass
// through directly (their cause delivery ran in exactly one partition, so
// merge order equals serial order). Control events arrive once per partition
// and are deduplicated: watermarks min-merge across partitions, heartbeats
// forward once per processing time.
func (pp *PartitionedPipeline) emit(te taggedEvent, part int) error {
	switch te.ev.Kind {
	case tvr.Watermark:
		// Copies of one logical watermark share the cause seq but may
		// carry different ptimes (a bounded scan's final watermark is
		// stamped with the partition's last seen ptime); the serial
		// equivalent is the max over partitions.
		if te.seq != pp.wmSeq {
			pp.wmSeq = te.seq
			pp.wmPtime = te.ev.Ptime
		} else if te.ev.Ptime > pp.wmPtime {
			pp.wmPtime = te.ev.Ptime
		}
		if wm, adv := pp.wmMerge.Advance(part, te.ev.Wm); adv {
			return pp.tailTop.Push(tvr.WatermarkEvent(pp.wmPtime, wm))
		}
		return nil
	case tvr.Heartbeat:
		if !pp.hasHB || te.ev.Ptime > pp.lastHB {
			pp.hasHB = true
			pp.lastHB = te.ev.Ptime
			return pp.tailTop.Push(te.ev)
		}
		return nil
	default:
		if pp.directTail {
			return pp.collector.PushKeyed(te.ev, te.key)
		}
		return pp.tailTop.Push(te.ev)
	}
}

// Stats sums operator statistics across every partition chain and the tail.
func (pp *PartitionedPipeline) Stats() Stats {
	var st Stats
	for _, c := range pp.chains {
		for _, op := range c.pipe.allOps {
			if s, ok := op.(statser); ok {
				s.stats(&st)
			}
		}
	}
	for _, op := range pp.tailOps {
		if s, ok := op.(statser); ok {
			s.stats(&st)
		}
	}
	st.Partitions = pp.parts
	return st
}

// Partitioning exposes the routing scheme (for EXPLAIN-style output).
func (pp *PartitionedPipeline) Partitioning() *plan.Partitioning { return pp.scheme }
