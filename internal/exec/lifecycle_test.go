package exec_test

// Property tests for the incremental Start/Feed/Advance/Close lifecycle: any
// split of the source changelogs into Feed batches along the ptime axis must
// produce byte-identical output to a single one-shot Run — on both the
// serial and the key-partitioned pipelines. This is the invariant the
// standing-query subsystem (internal/live) relies on.

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/nexmark"
	"repro/internal/opt"
	"repro/internal/plan"
	"repro/internal/sqlparser"
	"repro/internal/tvr"
	"repro/internal/types"
)

// lifecycleEngine loads a small deterministic NEXMark dataset with enough
// out-of-orderness to exercise late data and watermark-driven EMIT.
func lifecycleEngine(t testing.TB) *core.Engine {
	t.Helper()
	g := nexmark.Generate(nexmark.GeneratorConfig{Seed: 11, NumEvents: 700, MaxOutOfOrderness: 2 * types.Second})
	e, err := nexmark.NewEngine(g, core.WithUnboundedGroupBy())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func planSQL(t *testing.T, cat plan.Catalog, sql string) *plan.PlannedQuery {
	t.Helper()
	q, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pq, err := plan.New(cat, plan.Config{AllowUnboundedGroupBy: true}).Plan(q)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	return opt.Optimize(pq)
}

func execSourcesFor(t *testing.T, e *core.Engine, root plan.Node) []exec.Source {
	t.Helper()
	names := map[string]bool{}
	var walk func(plan.Node)
	walk = func(n plan.Node) {
		if s, ok := n.(*plan.Scan); ok {
			names[s.Name] = true
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(root)
	var out []exec.Source
	for name := range names {
		log, err := e.Log(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, exec.Source{Name: name, Log: log})
	}
	return out
}

// trimSources drops events beyond the horizon, mirroring Run's upTo contract.
func trimSources(sources []exec.Source, upTo types.Time) []exec.Source {
	out := make([]exec.Source, 0, len(sources))
	for _, s := range sources {
		end := 0
		for end < len(s.Log) && s.Log[end].Ptime <= upTo {
			end++
		}
		out = append(out, exec.Source{Name: s.Name, Log: s.Log[:end]})
	}
	return out
}

// splitPoints returns the sorted distinct ptimes across all sources.
func splitPoints(sources []exec.Source) []types.Time {
	seen := map[types.Time]bool{}
	var pts []types.Time
	for _, s := range sources {
		for _, ev := range s.Log {
			if !seen[ev.Ptime] {
				seen[ev.Ptime] = true
				pts = append(pts, ev.Ptime)
			}
		}
	}
	for i := 1; i < len(pts); i++ {
		for j := i; j > 0 && pts[j] < pts[j-1]; j-- {
			pts[j], pts[j-1] = pts[j-1], pts[j]
		}
	}
	return pts
}

// compileDriver builds the serial or partitioned pipeline for pq.
func compileDriver(t *testing.T, pq *plan.PlannedQuery, parts int) exec.Driver {
	t.Helper()
	if parts > 1 {
		pp, err := exec.CompilePartitioned(pq, parts)
		if err != nil {
			if errors.Is(err, exec.ErrNotPartitionable) {
				t.Skipf("not partitionable: %v", err)
			}
			t.Fatalf("compile partitioned: %v", err)
		}
		return pp
	}
	pipe, err := exec.Compile(pq)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return pipe
}

// feedInBatches drives the incremental lifecycle: the sources are cut along
// the ptime axis at the given boundaries (each batch holds every remaining
// event with ptime <= cut), fed batch by batch, drained incrementally, then
// advanced to upTo (when finite) and closed. It returns the final result and
// the concatenation of all Drain calls.
func feedInBatches(t *testing.T, d exec.Driver, sources []exec.Source, cuts []types.Time, upTo types.Time) (*exec.Result, tvr.Changelog) {
	t.Helper()
	if err := d.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	sources = trimSources(sources, upTo)
	pos := make([]int, len(sources))
	var drained tvr.Changelog
	boundaries := append(append([]types.Time{}, cuts...), types.MaxTime)
	for _, cut := range boundaries {
		var batch []exec.Source
		for i, s := range sources {
			start := pos[i]
			end := start
			for end < len(s.Log) && s.Log[end].Ptime <= cut {
				end++
			}
			if end > start {
				batch = append(batch, exec.Source{Name: s.Name, Log: s.Log[start:end]})
				pos[i] = end
			}
		}
		if err := d.Feed(batch); err != nil {
			t.Fatalf("feed: %v", err)
		}
		drained = append(drained, d.Drain()...)
	}
	if upTo != types.MaxTime {
		if err := d.Advance(upTo); err != nil {
			t.Fatalf("advance: %v", err)
		}
		drained = append(drained, d.Drain()...)
	}
	res, err := d.Close()
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	drained = append(drained, d.Drain()...)
	return res, drained
}

// assertResultsIdentical compares every rendering of two results.
func assertResultsIdentical(t *testing.T, label string, got, want *exec.Result) {
	t.Helper()
	gl, wl := fmtLog(got.Log), fmtLog(want.Log)
	if len(gl) != len(wl) {
		t.Fatalf("%s: %d output events, want %d", label, len(gl), len(wl))
	}
	for i := range wl {
		if gl[i] != wl[i] {
			t.Fatalf("%s: event %d = %s, want %s", label, i, gl[i], wl[i])
		}
	}
	gs := tvr.FormatStreamTable(got.Schema, got.StreamRows())
	ws := tvr.FormatStreamTable(want.Schema, want.StreamRows())
	if gs != ws {
		t.Fatalf("%s: stream rendering differs:\ngot:\n%s\nwant:\n%s", label, gs, ws)
	}
	gt := tvr.FormatRelationTable(got.Schema, got.TableRows())
	wt := tvr.FormatRelationTable(want.Schema, want.TableRows())
	if gt != wt {
		t.Fatalf("%s: table rendering differs:\ngot:\n%s\nwant:\n%s", label, gt, wt)
	}
}

// lifecycleQueries is a cross-section of operator shapes: stateless
// selection, join, windowed aggregation with every EMIT flavor, and the full
// NEXMark Q7 self-join.
func lifecycleQueries() []struct{ name, sql string } {
	windowedMax := `
SELECT TB.wstart wstart, TB.wend wend, MAX(TB.price) maxPrice
FROM Tumble(data => TABLE(Bid), timecol => DESCRIPTOR(dateTime),
            dur => INTERVAL '10' SECONDS) TB
GROUP BY TB.wstart, TB.wend`
	// Grouping by the scan-backed auction column keeps the plan
	// hash-partitionable, so the parts>1 variants run on the partitioned
	// pipeline instead of skipping.
	keyedMax := `
SELECT TB.auction auction, TB.wstart wstart, TB.wend wend, MAX(TB.price) maxPrice
FROM Tumble(data => TABLE(Bid), timecol => DESCRIPTOR(dateTime),
            dur => INTERVAL '10' SECONDS) TB
GROUP BY TB.auction, TB.wstart, TB.wend`
	// Grouping only by the window columns forces the two-stage
	// (partial/final) path under parts>1: per-partition partial MAX/COUNT/
	// AVG states merged by a final aggregate in the serial tail.
	twoStage := `
SELECT TB.wstart wstart, TB.wend wend,
       MAX(TB.price) maxPrice, COUNT(*) bids, AVG(TB.price) avgPrice
FROM Tumble(data => TABLE(Bid), timecol => DESCRIPTOR(dateTime),
            dur => INTERVAL '10' SECONDS) TB
GROUP BY TB.wend, TB.wstart`
	// An aggregate re-keying the join routing exercises two-stage above a
	// hash-constrained (rather than full-row-hashed) partitioned subtree.
	twoStageRekey := `
SELECT W.seller seller, AVG(W.price) avgPrice, MIN(W.price) minPrice
FROM (SELECT P.id id, P.name seller, B.price price
      FROM Person P JOIN Bid B ON P.id = B.bidder) W
GROUP BY W.seller`
	return []struct{ name, sql string }{
		{"selection", `SELECT auction, price FROM Bid WHERE MOD(auction, 5) = 0`},
		{"join", `SELECT P.name, A.id FROM Auction A JOIN Person P ON A.seller = P.id`},
		{"windowed-max", windowedMax},
		{"windowed-max-emit-wm", windowedMax + ` EMIT AFTER WATERMARK`},
		{"windowed-max-emit-delay", windowedMax + ` EMIT AFTER DELAY INTERVAL '7' SECONDS`},
		{"windowed-max-emit-stream-wm", windowedMax + ` EMIT STREAM AFTER WATERMARK`},
		{"keyed-max-emit-wm", keyedMax + ` EMIT STREAM AFTER WATERMARK`},
		{"keyed-max-emit-delay", keyedMax + ` EMIT AFTER DELAY INTERVAL '7' SECONDS`},
		{"two-stage-window", twoStage},
		{"two-stage-window-emit-wm", twoStage + ` EMIT STREAM AFTER WATERMARK`},
		{"two-stage-window-emit-delay", twoStage + ` EMIT AFTER DELAY INTERVAL '7' SECONDS`},
		{"two-stage-rekey", twoStageRekey},
	}
}

// TestFeedSplitEquivalence: for every query and both executors, feeding the
// recorded changelogs in one-event-deep ptime batches, in randomly cut
// batches, and in one big batch all produce byte-identical results to the
// one-shot Run — over the full input and truncated at a finite horizon.
func TestFeedSplitEquivalence(t *testing.T) {
	e := lifecycleEngine(t)
	for _, q := range lifecycleQueries() {
		q := q
		t.Run(q.name, func(t *testing.T) {
			pq := planSQL(t, e, q.sql)
			sources := execSourcesFor(t, e, pq.Root)
			pts := splitPoints(sources)
			horizons := []types.Time{types.MaxTime}
			if len(pts) > 2 {
				horizons = append(horizons, pts[len(pts)/2])
			}
			for _, parts := range []int{1, 3} {
				parts := parts
				t.Run(fmt.Sprintf("parts=%d", parts), func(t *testing.T) {
					for hi, upTo := range horizons {
						oneShot := compileDriver(t, pq, parts)
						var want *exec.Result
						{
							res, err := oneShot.(interface {
								Run([]exec.Source, types.Time) (*exec.Result, error)
							}).Run(sources, upTo)
							if err != nil {
								t.Fatalf("run: %v", err)
							}
							want = res
						}
						rng := rand.New(rand.NewSource(int64(42 + hi)))
						cutsets := [][]types.Time{
							pts, // finest valid split: one ptime per batch
							nil, // single batch
							randomCuts(rng, pts, 5),
							randomCuts(rng, pts, len(pts)/3+1),
						}
						for ci, cuts := range cutsets {
							d := compileDriver(t, pq, parts)
							got, drained := feedInBatches(t, d, sources, cuts, upTo)
							label := fmt.Sprintf("horizon=%s cutset=%d", upTo, ci)
							assertResultsIdentical(t, label, got, want)
							// Drain must observe exactly the final log,
							// incrementally.
							if len(drained) != len(got.Log) {
								t.Fatalf("%s: drained %d events, result log has %d", label, len(drained), len(got.Log))
							}
							for i := range drained {
								if drained[i].String() != got.Log[i].String() {
									t.Fatalf("%s: drained event %d = %s, want %s", label, i, drained[i], got.Log[i])
								}
							}
						}
					}
				})
			}
		})
	}
}

// randomCuts picks n random distinct split points from pts, in order.
func randomCuts(rng *rand.Rand, pts []types.Time, n int) []types.Time {
	if n <= 0 || len(pts) == 0 {
		return nil
	}
	picked := map[int]bool{}
	for i := 0; i < n; i++ {
		picked[rng.Intn(len(pts))] = true
	}
	var cuts []types.Time
	for i, p := range pts {
		if picked[i] {
			cuts = append(cuts, p)
		}
	}
	return cuts
}

// TestBatchDispatchStats: the batched feed path accounts its dispatches —
// every source event is delivered exactly once, and feeding the whole log in
// one batch coalesces far more events per dispatch than per-ptime feeding,
// without changing the output (TestFeedSplitEquivalence pins the equality).
func TestBatchDispatchStats(t *testing.T) {
	e := lifecycleEngine(t)
	pq := planSQL(t, e, `SELECT auction, price FROM Bid WHERE MOD(auction, 5) = 0`)
	sources := execSourcesFor(t, e, pq.Root)
	total := 0
	for _, s := range sources {
		total += len(s.Log)
	}
	feed := func(cuts []types.Time) exec.Stats {
		d := compileDriver(t, pq, 1)
		feedInBatches(t, d, sources, cuts, types.MaxTime)
		return d.Stats()
	}
	coarse := feed(nil) // one Feed call: the whole log is one run
	fine := feed(splitPoints(sources))
	for _, st := range []exec.Stats{coarse, fine} {
		if st.Dispatches <= 0 || st.DispatchedEvents != int64(total) {
			t.Fatalf("stats = %+v, want Dispatches > 0 and DispatchedEvents = %d", st, total)
		}
		if st.EventsPerDispatch < 1 {
			t.Fatalf("EventsPerDispatch = %v, want >= 1", st.EventsPerDispatch)
		}
	}
	if coarse.EventsPerDispatch <= fine.EventsPerDispatch {
		t.Fatalf("one-batch feed should coalesce more events per dispatch: coarse %v <= fine %v",
			coarse.EventsPerDispatch, fine.EventsPerDispatch)
	}
	if coarse.Dispatches != 1 {
		t.Fatalf("single-source whole-log feed took %d dispatches, want 1", coarse.Dispatches)
	}
}

// TestLifecycleMisuse: the lifecycle endpoints reject out-of-order use.
func TestLifecycleMisuse(t *testing.T) {
	e := lifecycleEngine(t)
	pq := planSQL(t, e, `SELECT auction, price FROM Bid`)
	pipe, err := exec.Compile(pq)
	if err != nil {
		t.Fatal(err)
	}
	if err := pipe.Feed(nil); err == nil {
		t.Error("Feed before Start should fail")
	}
	if err := pipe.Start(); err != nil {
		t.Fatal(err)
	}
	if err := pipe.Start(); err == nil {
		t.Error("double Start should fail")
	}
	if _, err := pipe.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := pipe.Close(); err == nil {
		t.Error("double Close should fail")
	}
	if err := pipe.Feed(nil); err == nil {
		t.Error("Feed after Close should fail")
	}
	if err := pipe.Advance(5); err == nil {
		t.Error("Advance after Close should fail")
	}
}
