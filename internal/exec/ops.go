package exec

import (
	"fmt"

	"repro/internal/plan"
	"repro/internal/tvr"
	"repro/internal/types"
	"repro/internal/window"
)

// scanOp is a pipeline root: the driver pushes source events into it. It
// enforces AS OF SYSTEM TIME snapshot bounds and completes bounded inputs
// with a final watermark so downstream completeness semantics work on
// recorded tables exactly as the paper describes (Section 4: "the same query
// can be evaluated without watermarks over a table that was recorded from
// the bid stream, yielding the same result").
type scanOp struct {
	out       sink
	asOf      *types.Time
	bounded   bool
	lastPtime types.Time
	finished  bool
	batch     []tvr.Event // asOf filtering scratch, reused across batches
}

func (s *scanOp) Push(ev tvr.Event) error {
	if ev.Ptime > s.lastPtime {
		s.lastPtime = ev.Ptime
	}
	if s.asOf != nil && ev.Ptime > *s.asOf {
		// Beyond the snapshot horizon: the relation is frozen, but the
		// processing-time clock still advances for downstream timers.
		if ev.Kind == tvr.Heartbeat {
			return s.out.Push(ev)
		}
		return nil
	}
	return s.out.Push(ev)
}

// PushBatch implements batchSink. Without a snapshot bound the batch passes
// through untouched (zero copy); with one, surviving events are gathered into
// a reused scratch slice.
func (s *scanOp) PushBatch(evs []tvr.Event) error {
	if last := evs[len(evs)-1].Ptime; last > s.lastPtime {
		s.lastPtime = last
	}
	if s.asOf == nil {
		return pushBatch(s.out, evs)
	}
	s.batch = s.batch[:0]
	for _, ev := range evs {
		if ev.Ptime > *s.asOf && ev.Kind != tvr.Heartbeat {
			continue
		}
		s.batch = append(s.batch, ev)
	}
	return pushBatch(s.out, s.batch)
}

func (s *scanOp) Finish() error {
	if s.finished {
		return nil
	}
	s.finished = true
	if s.bounded || s.asOf != nil {
		// A bounded relation (table or snapshot) is complete: assert it.
		if err := s.out.Push(tvr.WatermarkEvent(s.lastPtime, types.MaxTime)); err != nil {
			return err
		}
	}
	return s.out.Finish()
}

// valuesOp emits a constant relation at open time.
type valuesOp struct {
	out  sink
	rows []types.Row
}

func (v *valuesOp) Open() error {
	for _, r := range v.rows {
		if err := v.out.Push(tvr.InsertEvent(types.MinTime, r)); err != nil {
			return err
		}
	}
	return nil
}

func (v *valuesOp) Push(ev tvr.Event) error { return v.out.Push(ev) }

func (v *valuesOp) Finish() error {
	return v.out.Finish()
}

// filterOp keeps rows whose condition evaluates to TRUE. Because the
// predicate is deterministic, inserts and deletes filter identically and
// retraction consistency is preserved.
type filterOp struct {
	out   sink
	cond  plan.Scalar
	batch []tvr.Event // surviving-event scratch, reused across batches
}

func (f *filterOp) Push(ev tvr.Event) error {
	if ev.IsData() {
		ok, err := plan.EvalBool(f.cond, ev.Row)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
	return f.out.Push(ev)
}

// PushBatch implements batchSink: evaluate the predicate across the batch,
// then hand the survivors (data that passed plus all control events, in
// order) downstream in one dispatch.
func (f *filterOp) PushBatch(evs []tvr.Event) error {
	f.batch = f.batch[:0]
	for _, ev := range evs {
		if ev.IsData() {
			ok, err := plan.EvalBool(f.cond, ev.Row)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
		}
		f.batch = append(f.batch, ev)
	}
	return pushBatch(f.out, f.batch)
}

func (f *filterOp) Finish() error { return f.out.Finish() }

// projectOp maps each row through the projection expressions.
type projectOp struct {
	out   sink
	exprs []plan.Scalar
	batch []tvr.Event // output-event scratch, reused across batches
}

func (p *projectOp) Push(ev tvr.Event) error {
	if !ev.IsData() {
		return p.out.Push(ev)
	}
	row := make(types.Row, len(p.exprs))
	for i, e := range p.exprs {
		v, err := e.Eval(ev.Row)
		if err != nil {
			return err
		}
		row[i] = v
	}
	ev.Row = row
	return p.out.Push(ev)
}

// PushBatch implements batchSink. Output rows for the whole batch are carved
// out of one block allocation: the rows are immutable once emitted (and the
// collector retains the batch's events together), so sharing a backing array
// is safe and replaces N row allocations with one.
func (p *projectOp) PushBatch(evs []tvr.Event) error {
	nData := 0
	for i := range evs {
		if evs[i].IsData() {
			nData++
		}
	}
	width := len(p.exprs)
	var block types.Row
	if nData > 0 && width > 0 {
		block = make(types.Row, nData*width)
	}
	p.batch = p.batch[:0]
	off := 0
	for _, ev := range evs {
		if ev.IsData() {
			row := block[off : off+width : off+width]
			off += width
			for i, e := range p.exprs {
				v, err := e.Eval(ev.Row)
				if err != nil {
					return err
				}
				row[i] = v
			}
			ev.Row = row
		}
		p.batch = append(p.batch, ev)
	}
	return pushBatch(p.out, p.batch)
}

func (p *projectOp) Finish() error { return p.out.Finish() }

// windowOp implements the Tumble/Hop/Session table-valued functions as
// incremental operators: each input insert/delete becomes inserts/deletes of
// the window-augmented rows. Tumble and Hop are stateless; Session maintains
// the multiset of seen timestamps so merges retract and re-emit affected
// rows.
type windowOp struct {
	out     sink
	fn      plan.WindowFn
	timeIdx int
	dur     types.Duration
	slide   types.Duration
	gap     types.Duration
	offset  types.Duration

	// Session state.
	times    map[types.Time]int      // timestamp -> multiplicity
	rowsAt   map[types.Time][]rowRef // rows carrying each timestamp
	timeList []types.Time            // insertion order of distinct timestamps

	batch []tvr.Event // tumble/hop output scratch, reused across batches
}

type rowRef struct {
	row   types.Row
	count int
}

func newWindowOp(x *plan.WindowTVF, out sink) *windowOp {
	w := &windowOp{
		out: out, fn: x.Fn, timeIdx: x.TimeIdx,
		dur: x.Dur, slide: x.Slide, gap: x.Gap, offset: x.Offset,
	}
	if x.Fn == plan.SessionFn {
		w.times = make(map[types.Time]int)
		w.rowsAt = make(map[types.Time][]rowRef)
	}
	return w
}

func (w *windowOp) Push(ev tvr.Event) error {
	if !ev.IsData() {
		return w.out.Push(ev)
	}
	tv := ev.Row[w.timeIdx]
	if tv.IsNull() {
		// Rows without an event timestamp belong to no window.
		return nil
	}
	t := tv.Timestamp()
	switch w.fn {
	case plan.TumbleFn:
		iv := window.Tumble(t, w.dur, w.offset)
		return w.emit(ev, iv)
	case plan.HopFn:
		for _, iv := range window.Hop(t, w.dur, w.slide, w.offset) {
			if err := w.emit(ev, iv); err != nil {
				return err
			}
		}
		return nil
	default:
		return w.pushSession(ev, t)
	}
}

func (w *windowOp) emit(ev tvr.Event, iv window.Interval) error {
	return w.out.Push(w.widen(ev, iv))
}

// widen appends the window bounds to the event's row.
func (w *windowOp) widen(ev tvr.Event, iv window.Interval) tvr.Event {
	row := make(types.Row, 0, len(ev.Row)+2)
	row = append(row, ev.Row...)
	row = append(row, types.NewTimestamp(iv.Start), types.NewTimestamp(iv.End))
	return tvr.Event{Ptime: ev.Ptime, Kind: ev.Kind, Row: row}
}

// PushBatch implements batchSink for the stateless window functions: the
// widened rows for the whole batch are gathered and handed down in one
// dispatch. The stateful session TVF keeps the per-event path.
func (w *windowOp) PushBatch(evs []tvr.Event) error {
	if w.fn == plan.SessionFn {
		for i := range evs {
			if err := w.Push(evs[i]); err != nil {
				return err
			}
		}
		return nil
	}
	w.batch = w.batch[:0]
	for _, ev := range evs {
		if !ev.IsData() {
			w.batch = append(w.batch, ev)
			continue
		}
		tv := ev.Row[w.timeIdx]
		if tv.IsNull() {
			// Rows without an event timestamp belong to no window.
			continue
		}
		t := tv.Timestamp()
		switch w.fn {
		case plan.TumbleFn:
			w.batch = append(w.batch, w.widen(ev, window.Tumble(t, w.dur, w.offset)))
		case plan.HopFn:
			for _, iv := range window.Hop(t, w.dur, w.slide, w.offset) {
				w.batch = append(w.batch, w.widen(ev, iv))
			}
		}
	}
	return pushBatch(w.out, w.batch)
}

// pushSession handles the stateful session TVF. The strategy: determine the
// sessions affected by the change (those overlapping the changed timestamp's
// neighbourhood), retract their rows under the old assignment, apply the
// change, and re-emit rows under the new assignment.
func (w *windowOp) pushSession(ev tvr.Event, t types.Time) error {
	oldSessions := w.mergedSessions()
	// Collect rows assigned to sessions that may change: those whose
	// session overlaps [t-gap, t+gap].
	affected := func(sessions []window.Interval) map[types.Time]bool {
		out := make(map[types.Time]bool)
		for _, s := range sessions {
			if s.End < t-types.Time(w.gap) || s.Start > t+types.Time(w.gap) {
				continue
			}
			for _, ts := range w.timeList {
				if w.times[ts] > 0 && s.Contains(ts) {
					out[ts] = true
				}
			}
		}
		return out
	}
	before := affected(oldSessions)
	// Retract affected rows under the old assignment.
	for _, ts := range w.timeList {
		if !before[ts] {
			continue
		}
		iv, ok := window.AssignSession(ts, w.liveTimes(), w.gap)
		if !ok {
			return fmt.Errorf("exec: session assignment missing for %s", ts)
		}
		for _, rr := range w.rowsAt[ts] {
			for i := 0; i < rr.count; i++ {
				if err := w.emit(tvr.Event{Ptime: ev.Ptime, Kind: tvr.Delete, Row: rr.row}, iv); err != nil {
					return err
				}
			}
		}
	}
	// Apply the change to state.
	switch ev.Kind {
	case tvr.Insert:
		if w.times[t] == 0 {
			if _, seen := w.rowsAt[t]; !seen {
				w.timeList = append(w.timeList, t)
				w.rowsAt[t] = nil
			}
		}
		w.times[t]++
		w.addRow(t, ev.Row)
	case tvr.Delete:
		if w.times[t] == 0 {
			return fmt.Errorf("exec: session retraction of absent timestamp %s", t)
		}
		w.times[t]--
		if err := w.removeRow(t, ev.Row); err != nil {
			return err
		}
	}
	// Re-emit everything affected under the new assignment.
	newSessions := w.mergedSessions()
	after := affected(newSessions)
	for _, ts := range w.timeList {
		if !after[ts] || w.times[ts] == 0 {
			continue
		}
		iv, ok := window.AssignSession(ts, w.liveTimes(), w.gap)
		if !ok {
			return fmt.Errorf("exec: session assignment missing for %s", ts)
		}
		for _, rr := range w.rowsAt[ts] {
			for i := 0; i < rr.count; i++ {
				if err := w.emit(tvr.Event{Ptime: ev.Ptime, Kind: tvr.Insert, Row: rr.row}, iv); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (w *windowOp) mergedSessions() []window.Interval {
	return window.MergeSessions(w.liveTimes(), w.gap)
}

func (w *windowOp) liveTimes() []types.Time {
	out := make([]types.Time, 0, len(w.timeList))
	for _, ts := range w.timeList {
		if w.times[ts] > 0 {
			out = append(out, ts)
		}
	}
	return out
}

func (w *windowOp) addRow(t types.Time, row types.Row) {
	refs := w.rowsAt[t]
	for i := range refs {
		if refs[i].row.Equal(row) {
			refs[i].count++
			return
		}
	}
	w.rowsAt[t] = append(refs, rowRef{row: row.Clone(), count: 1})
}

func (w *windowOp) removeRow(t types.Time, row types.Row) error {
	refs := w.rowsAt[t]
	for i := range refs {
		if refs[i].row.Equal(row) && refs[i].count > 0 {
			refs[i].count--
			if refs[i].count == 0 {
				w.rowsAt[t] = append(refs[:i], refs[i+1:]...)
			}
			return nil
		}
	}
	return fmt.Errorf("exec: session retraction of absent row %s", row)
}

func (w *windowOp) Finish() error { return w.out.Finish() }

func (w *windowOp) stats(s *Stats) {
	for _, refs := range w.rowsAt {
		for _, rr := range refs {
			s.StateRows += rr.count
		}
	}
}

// rowCount supports distinctOp bookkeeping.
type rowCount struct {
	row   types.Row
	count int
}

// distinctOp converts bag to set semantics incrementally: a row appears in
// the output while its input multiplicity is positive.
type distinctOp struct {
	out    sink
	counts map[string]*rowCount
}

func (d *distinctOp) Push(ev tvr.Event) error {
	if !ev.IsData() {
		return d.out.Push(ev)
	}
	k := ev.Row.Key()
	rc, ok := d.counts[k]
	if !ok {
		rc = &rowCount{row: ev.Row.Clone()}
		d.counts[k] = rc
	}
	switch ev.Kind {
	case tvr.Insert:
		rc.count++
		if rc.count == 1 {
			return d.out.Push(tvr.InsertEvent(ev.Ptime, rc.row))
		}
	case tvr.Delete:
		if rc.count <= 0 {
			return fmt.Errorf("exec: DISTINCT retraction of absent row %s", ev.Row)
		}
		rc.count--
		if rc.count == 0 {
			return d.out.Push(tvr.DeleteEvent(ev.Ptime, rc.row))
		}
	}
	return nil
}

func (d *distinctOp) Finish() error { return d.out.Finish() }

func (d *distinctOp) stats(s *Stats) { s.StateRows += len(d.counts) }

// mergingSink is shared machinery for operators with several input ports:
// watermarks min-merge, heartbeats deduplicate, and Finish propagates only
// after every port finished.
type mergingSink struct {
	out         sink
	inputs      int
	finished    int
	wms         []types.Time
	mergedWM    types.Time
	lastHB      types.Time
	hasHB       bool
	onWatermark func(wm types.Time, ptime types.Time) error
}

func newMergingSink(inputs int, out sink) *mergingSink {
	wms := make([]types.Time, inputs)
	for i := range wms {
		wms[i] = types.MinTime
	}
	return &mergingSink{out: out, inputs: inputs, wms: wms, mergedWM: types.MinTime}
}

// pushControl handles Watermark/Heartbeat events for input port i, returning
// true if the event was consumed as a control event.
func (m *mergingSink) pushControl(i int, ev tvr.Event) (bool, error) {
	switch ev.Kind {
	case tvr.Watermark:
		if ev.Wm > m.wms[i] {
			m.wms[i] = ev.Wm
		}
		min := m.wms[0]
		for _, w := range m.wms[1:] {
			if w < min {
				min = w
			}
		}
		if min > m.mergedWM {
			m.mergedWM = min
			if m.onWatermark != nil {
				if err := m.onWatermark(min, ev.Ptime); err != nil {
					return true, err
				}
			}
			return true, m.out.Push(tvr.WatermarkEvent(ev.Ptime, min))
		}
		return true, nil
	case tvr.Heartbeat:
		if !m.hasHB || ev.Ptime > m.lastHB {
			m.hasHB = true
			m.lastHB = ev.Ptime
			return true, m.out.Push(ev)
		}
		return true, nil
	}
	return false, nil
}

// finishPort records one port finishing; downstream finishes when all have.
func (m *mergingSink) finishPort() error {
	m.finished++
	if m.finished == m.inputs {
		return m.out.Finish()
	}
	return nil
}

// unionOp concatenates its inputs (UNION ALL).
type unionOp struct {
	*mergingSink
}

func newUnionOp(inputs int, out sink) *unionOp {
	return &unionOp{mergingSink: newMergingSink(inputs, out)}
}

type unionPort struct {
	u *unionOp
	i int
}

func (u *unionOp) port(i int) sink { return &unionPort{u: u, i: i} }

func (p *unionPort) Push(ev tvr.Event) error {
	if done, err := p.u.pushControl(p.i, ev); done || err != nil {
		return err
	}
	return p.u.out.Push(ev)
}

func (p *unionPort) Finish() error { return p.u.finishPort() }

// Push implements sink for the operator itself (unused; ports are the
// entry points) — present so unionOp satisfies interfaces uniformly.
func (u *unionOp) Push(ev tvr.Event) error { return u.out.Push(ev) }

// Finish implements sink.
func (u *unionOp) Finish() error { return nil }

// setOp implements INTERSECT [ALL] and EXCEPT [ALL] incrementally by
// tracking per-row multiplicities on both sides and emitting the delta of
// the output multiplicity function on every change.
type setOp struct {
	*mergingSink
	op        func(l, r int) int
	leftN     map[string]int
	rightN    map[string]int
	outN      map[string]int
	rowsByKey map[string]types.Row
}

func newSetOp(x *plan.SetOp, out sink) *setOp {
	s := &setOp{
		mergingSink: newMergingSink(2, out),
		leftN:       make(map[string]int),
		rightN:      make(map[string]int),
		outN:        make(map[string]int),
		rowsByKey:   make(map[string]types.Row),
	}
	intersect := x.Op.String() == "INTERSECT"
	all := x.All
	s.op = func(l, r int) int {
		switch {
		case intersect && all:
			if l < r {
				return l
			}
			return r
		case intersect:
			if l > 0 && r > 0 {
				return 1
			}
			return 0
		case all: // EXCEPT ALL
			if d := l - r; d > 0 {
				return d
			}
			return 0
		default: // EXCEPT
			if l > 0 && r == 0 {
				return 1
			}
			return 0
		}
	}
	return s
}

type setPort struct {
	s    *setOp
	side int // 0 = left, 1 = right
}

func (s *setOp) leftPort() sink  { return &setPort{s: s, side: 0} }
func (s *setOp) rightPort() sink { return &setPort{s: s, side: 1} }

func (p *setPort) Push(ev tvr.Event) error {
	if done, err := p.s.pushControl(p.side, ev); done || err != nil {
		return err
	}
	return p.s.apply(p.side, ev)
}

func (p *setPort) Finish() error { return p.s.finishPort() }

func (s *setOp) apply(side int, ev tvr.Event) error {
	k := ev.Row.Key()
	if _, ok := s.rowsByKey[k]; !ok {
		s.rowsByKey[k] = ev.Row.Clone()
	}
	delta := 1
	if ev.Kind == tvr.Delete {
		delta = -1
	}
	if side == 0 {
		s.leftN[k] += delta
		if s.leftN[k] < 0 {
			return fmt.Errorf("exec: set operation retraction of absent row %s", ev.Row)
		}
	} else {
		s.rightN[k] += delta
		if s.rightN[k] < 0 {
			return fmt.Errorf("exec: set operation retraction of absent row %s", ev.Row)
		}
	}
	newOut := s.op(s.leftN[k], s.rightN[k])
	old := s.outN[k]
	s.outN[k] = newOut
	row := s.rowsByKey[k]
	for i := old; i < newOut; i++ {
		if err := s.out.Push(tvr.InsertEvent(ev.Ptime, row)); err != nil {
			return err
		}
	}
	for i := newOut; i < old; i++ {
		if err := s.out.Push(tvr.DeleteEvent(ev.Ptime, row)); err != nil {
			return err
		}
	}
	return nil
}

// Push and Finish satisfy sink on the operator itself.
func (s *setOp) Push(ev tvr.Event) error { return s.out.Push(ev) }

// Finish implements sink.
func (s *setOp) Finish() error { return nil }

func (s *setOp) stats(st *Stats) { st.StateRows += len(s.rowsByKey) }
