package live_test

// Tests for the sharded ingest subsystem at the manager level: the
// byte-identical property (every sharded session ≡ its serial twin under
// random interleavings), the registration-during-heartbeat-storm regression,
// cross-shard fairness under a saturated Block subscriber, and the drain
// barriers (late attach, graceful close).

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/live"
	"repro/internal/tvr"
	"repro/internal/types"
)

// drainDeltas collects everything buffered on a subscription without
// blocking. Call only after the manager is quiesced.
func drainDeltas(sub *live.Subscription) []live.Delta {
	var out []live.Delta
	for {
		select {
		case d, ok := <-sub.Deltas():
			if !ok {
				return out
			}
			out = append(out, d)
		default:
			return out
		}
	}
}

// TestShardedMatchesSerialProperty is the byte-identical pin: K sessions
// spread across S shards, fed a random interleaving of publishes and
// heartbeats, must each deliver exactly the delta sequence the serial
// fan-out delivers to an identical twin — same delta boundaries, same rows,
// same stream metadata, same watermarks.
func TestShardedMatchesSerialProperty(t *testing.T) {
	sources := []string{"s0", "s1", "s2"}
	for _, shards := range []int{1, 2, 4, 8} {
		for seed := int64(0); seed < 3; seed++ {
			t.Run(fmt.Sprintf("shards=%d/seed=%d", shards, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				serial := live.NewManager()
				sharded := live.NewManagerWith(live.Options{Shards: shards, QueueDepth: 8})
				defer sharded.Close()

				mk := func(m *live.Manager, src string) *live.Subscription {
					t.Helper()
					s, err := live.NewSession(&echoDriver{}, live.Config{
						Name: src, Mode: live.Stream, Schema: testSchema(), Sources: []string{src},
					})
					if err != nil {
						t.Fatal(err)
					}
					if err := m.Register(s, nil); err != nil {
						t.Fatal(err)
					}
					sub, err := s.Attach(live.CursorOpts{Buffer: 4096})
					if err != nil {
						t.Fatal(err)
					}
					return sub
				}
				type pair struct {
					serial, sharded *live.Subscription
					src             string
				}
				var pairs []pair
				addPair := func(src string) {
					pairs = append(pairs, pair{mk(serial, src), mk(sharded, src), src})
				}
				for i := 0; i < 6; i++ {
					addPair(sources[i%len(sources)])
				}

				pt := types.Time(0)
				val := int64(0)
				for op := 0; op < 300; op++ {
					switch {
					case op == 150:
						// Late joiner mid-stream: registration (clock
						// catch-up included) must commute identically.
						addPair(sources[rng.Intn(len(sources))])
					case rng.Intn(5) == 0:
						pt += types.Time(rng.Intn(3) + 1)
						serial.Advance(pt)
						sharded.Advance(pt)
					default:
						src := sources[rng.Intn(len(sources))]
						n := rng.Intn(3) + 1
						var log tvr.Changelog
						for j := 0; j < n; j++ {
							pt += types.Time(rng.Intn(2))
							val++
							log = append(log, tvr.InsertEvent(pt, intRow(val)))
						}
						if err := serial.Publish(func() error { return nil }, src, log); err != nil {
							t.Fatal(err)
						}
						if err := sharded.Publish(func() error { return nil }, src, log); err != nil {
							t.Fatal(err)
						}
					}
				}
				sharded.Quiesce()
				for i, p := range pairs {
					want := drainDeltas(p.serial)
					got := drainDeltas(p.sharded)
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("session %d (%s): sharded deltas diverge from serial twin:\nserial:  %d deltas %+v\nsharded: %d deltas %+v",
							i, p.src, len(want), want, len(got), got)
					}
				}
				for _, p := range pairs {
					p.serial.Cancel()
					p.sharded.Cancel()
				}
			})
		}
	}
}

// TestRegisterDuringHeartbeatStorm is the satellite-1 regression: a session
// registered while heartbeats storm in must be caught up from the
// sequencer's committed clock (ordering-path state), never from what the
// shard workers have applied so far. Each registration first commits a
// heartbeat itself, so that value is a hard lower bound on the catch-up the
// new session must observe; a lagging (applied-side) read would come in
// below it. The session's advance sequence must also never regress.
func TestRegisterDuringHeartbeatStorm(t *testing.T) {
	m := live.NewManagerWith(live.Options{Shards: 4})
	defer m.Close()
	var clock atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					m.Advance(types.Time(clock.Add(1)))
				}
			}
		}()
	}
	type reg struct {
		d   *echoDriver
		sub *live.Subscription
		lo  types.Time // heartbeat committed before this registration
	}
	var regs []reg
	for i := 0; i < 40; i++ {
		lo := types.Time(clock.Add(1))
		m.Advance(lo) // committed once this returns: a floor for the catch-up
		d := &echoDriver{}
		s, err := live.NewSession(d, live.Config{
			Name: fmt.Sprintf("storm%d", i), Mode: live.Stream, Schema: testSchema(), Sources: []string{"s"},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Register(s, func() ([]exec.Source, error) { return nil, nil }); err != nil {
			t.Fatal(err)
		}
		sub, err := s.Attach(live.CursorOpts{Buffer: 64, Policy: live.DropWithError})
		if err != nil {
			t.Fatal(err)
		}
		regs = append(regs, reg{d: d, sub: sub, lo: lo})
	}
	close(stop)
	wg.Wait()
	m.Quiesce()
	for _, r := range regs {
		r.sub.Cancel() // serializes with the workers: advances is stable after
	}
	for i, r := range regs {
		if len(r.d.advances) == 0 {
			t.Fatalf("registration %d saw no catch-up advance despite committed heartbeats", i)
		}
		if r.d.advances[0] < r.lo {
			t.Fatalf("registration %d caught up to %s, below the already-committed heartbeat %s (stale clock read)",
				i, r.d.advances[0], r.lo)
		}
		for j := 1; j < len(r.d.advances); j++ {
			if r.d.advances[j] < r.d.advances[j-1] {
				t.Fatalf("registration %d: advance %d regresses (%s after %s)",
					i, j, r.d.advances[j], r.d.advances[j-1])
			}
		}
	}
}

// TestCrossShardFairness is the satellite-3 pin: a saturated Block-policy
// subscriber parks only its own shard worker; a session on another shard
// keeps receiving deltas promptly.
func TestCrossShardFairness(t *testing.T) {
	m := live.NewManagerWith(live.Options{Shards: 4, QueueDepth: 4})
	defer m.Close()
	mk := func(src string, buffer int) *live.Subscription {
		t.Helper()
		s, err := live.NewSession(&echoDriver{}, live.Config{
			Name: src, Mode: live.Stream, Schema: testSchema(), Sources: []string{src},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Register(s, nil); err != nil {
			t.Fatal(err)
		}
		sub, err := s.Attach(live.CursorOpts{Buffer: buffer, Policy: live.Block})
		if err != nil {
			t.Fatal(err)
		}
		return sub
	}
	slow := mk("slow", 1)
	slowShard := slow.Stats().Shard
	if slowShard < 0 {
		t.Fatal("sharded manager reports Shard=-1")
	}
	// Find a session that hashes onto a different shard.
	var fast *live.Subscription
	for i := 0; i < 64 && fast == nil; i++ {
		sub := mk(fmt.Sprintf("fast%d", i), 64)
		if sub.Stats().Shard != slowShard {
			fast = sub
		} else {
			sub.Cancel()
		}
	}
	if fast == nil {
		t.Fatal("could not place two sessions on distinct shards")
	}
	fastSrc := fast.Name()
	publish := func(src string, v int64) {
		t.Helper()
		if err := m.Publish(func() error { return nil }, src,
			tvr.Changelog{tvr.InsertEvent(types.Time(v), intRow(v))}); err != nil {
			t.Fatal(err)
		}
	}
	// Delta 1 fills slow's buffer; delta 2 parks slow's shard worker.
	publish("slow", 1)
	publish("slow", 2)
	deadline := time.Now().Add(2 * time.Second)
	for {
		st := m.ShardStats()[slowShard]
		if st.Lag >= 1 && st.Depth == 0 {
			break // the worker has picked up delta 2 and is parked on it
		}
		if time.Now().After(deadline) {
			t.Fatalf("slow shard never parked: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	publish(fastSrc, 3)
	select {
	case d := <-fast.Deltas():
		if lat := time.Since(start); lat > 500*time.Millisecond {
			t.Fatalf("cross-shard delta took %s behind a saturated peer, want prompt delivery", lat)
		}
		if got := streamInts(d); len(got) != 1 || got[0] != 3 {
			t.Fatalf("fast delta = %v, want [3]", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("delta on an unrelated shard never arrived while a peer shard was parked")
	}
	// The parked shard really is parked: nothing beyond delta 1 delivered yet.
	if got := streamInts(<-slow.Deltas()); len(got) != 1 || got[0] != 1 {
		t.Fatalf("slow delta 1 = %v", got)
	}
	if got := streamInts(<-slow.Deltas()); len(got) != 1 || got[0] != 2 {
		t.Fatalf("slow delta 2 = %v", got)
	}
	slow.Cancel()
	fast.Cancel()
}

// TestShardedLateAttachSeesAckedCommits: the plan-hit attach drains the
// session's shard first, so the snapshot hand-off reflects every
// acknowledged commit exactly once — no missing rows, no double delivery.
func TestShardedLateAttachSeesAckedCommits(t *testing.T) {
	m := live.NewManagerWith(live.Options{Shards: 2})
	defer m.Close()
	create := func() (*live.Session, error) {
		return live.NewSession(&echoDriver{}, live.Config{
			Name: "k", Mode: live.Stream, Schema: testSchema(), Sources: []string{"s"},
		})
	}
	sub1, err := m.Subscribe("k", live.CursorOpts{Buffer: 64}, create, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := int64(1); v <= 5; v++ {
		if err := m.Publish(func() error { return nil }, "s",
			tvr.Changelog{tvr.InsertEvent(types.Time(v), intRow(v))}); err != nil {
			t.Fatal(err)
		}
	}
	// All five commits are acked; some may still sit in the shard queue.
	// The attach barrier must fold them all into the snapshot.
	sub2, err := m.Subscribe("k", live.CursorOpts{Buffer: 64}, create, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := sub1.Stats().PipelineID, sub2.Stats().PipelineID; a != b {
		t.Fatalf("late subscriber got pipeline %d, want shared %d", b, a)
	}
	snap := <-sub2.Deltas()
	if got := streamInts(snap); len(got) != 5 || got[0] != 1 || got[4] != 5 {
		t.Fatalf("snapshot hand-off rows = %v, want [1 2 3 4 5]", got)
	}
	m.Quiesce()
	if extra := drainDeltas(sub2); len(extra) != 0 {
		t.Fatalf("late subscriber got %d deltas beyond the snapshot (double delivery): %+v", len(extra), extra)
	}
	sub1.Cancel()
	sub2.Cancel()
}

// TestShardedGracefulCloseKeepsAckedCommits: Close on a cursor drains the
// session's shard, so commits acknowledged before the close fold into the
// buffered/final deltas — ack == durable == delivered-or-folded.
func TestShardedGracefulCloseKeepsAckedCommits(t *testing.T) {
	m := live.NewManagerWith(live.Options{Shards: 2})
	defer m.Close()
	d := &echoDriver{final: intRow(999)}
	s, err := live.NewSession(d, live.Config{
		Name: "close", Mode: live.Stream, Schema: testSchema(), Sources: []string{"s"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Register(s, nil); err != nil {
		t.Fatal(err)
	}
	sub, err := s.Attach(live.CursorOpts{Buffer: 1, Policy: live.Block})
	if err != nil {
		t.Fatal(err)
	}
	// Three acked commits against a buffer of one: delta 1 lands in the
	// buffer, the shard worker parks on delta 2, delta 3 queues behind it.
	for v := int64(1); v <= 3; v++ {
		if err := m.Publish(func() error { return nil }, "s",
			tvr.Changelog{tvr.InsertEvent(types.Time(v), intRow(v))}); err != nil {
			t.Fatal(err)
		}
	}
	final, err := sub.Close()
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	for del := range sub.Deltas() {
		got = append(got, streamInts(del)...)
	}
	if final != nil {
		got = append(got, streamInts(*final)...)
	}
	want := []int64{1, 2, 3, 999}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rows across buffered+final deltas = %v, want %v (acked commit lost at close)", got, want)
	}
	if !d.closed {
		t.Fatal("driver not closed by last-cursor Close")
	}
}
