// Package live implements standing queries: compiled pipelines that stay
// resident and are fed incrementally as new changes arrive, pushing EMIT
// deltas to subscribers instead of recompiling and rescanning history per
// request.
//
// The paper's central object is the time-varying relation, with the table
// and stream renderings as equal citizens. The engine's one-shot query paths
// (core.QueryTable / core.QueryStream) replay a recorded changelog through a
// freshly compiled pipeline; package live supplies the third mode of
// consumption: a Session wraps an exec.Driver (serial or key-partitioned)
// started once, feeds it every subsequent ingested change through the same
// deterministic merge the replay path uses, and delivers the incremental
// output — stream-rendered deltas or consolidated table diffs — to its
// subscribers. Because the driver lifecycle guarantees that incremental
// feeding is byte-identical to replay, a standing subscription observes
// exactly the delta sequence a post-hoc EMIT STREAM query over the final
// changelog would produce.
//
// One SQL text denotes one time-varying relation regardless of how many
// consumers watch it, so sessions are shared: a Session is the resident
// pipeline, and any number of subscriber cursors attach to it, each with its
// own bounded delta channel, slow-consumer policy, and stats (Attach). The
// Manager keys resident sessions by plan (normalized SQL, mode, partitions)
// so identical subscriptions reuse one pipeline; a cursor that attaches
// after the pipeline has already produced output receives a snapshot
// hand-off first — the table rendering as one consolidated initial diff, or
// the stream rendering re-rendered from the retained output changelog so it
// starts at the current version numbers — which is byte-identical to what a
// dedicated subscription opened at the same instant would deliver. The
// session tears down when its last cursor departs.
package live

import (
	"errors"

	"repro/internal/tvr"
	"repro/internal/types"
)

// Mode selects which rendering of the output TVR a subscription receives.
type Mode int

const (
	// Stream delivers the changelog rendering: every output change as a
	// tvr.StreamRow with undo/ptime/ver metadata (Extension 4).
	Stream Mode = iota
	// Table delivers consolidated snapshot diffs: the net row changes
	// since the previous delivery.
	Table
)

// String names the mode.
func (m Mode) String() string {
	if m == Table {
		return "table"
	}
	return "stream"
}

// Policy says what happens when a subscriber's delta channel is full.
type Policy int

const (
	// Block applies backpressure: the ingesting goroutine waits until the
	// subscriber drains (or the subscription is canceled). Ingest latency
	// becomes coupled to the slowest blocking subscriber; on a shared
	// session every other cursor still receives its buffer hand-off
	// first, so peers keep draining while the ingest waits.
	Block Policy = iota
	// DropWithError terminates the subscription with ErrSlowConsumer
	// instead of stalling ingestion: the channel closes and Err reports
	// the drop, so the subscriber knows its view is no longer complete.
	// On a shared session only the slow cursor is dropped; the resident
	// pipeline and its other subscribers are untouched.
	DropWithError
)

// String names the policy.
func (p Policy) String() string {
	if p == DropWithError {
		return "drop"
	}
	return "block"
}

// ErrSlowConsumer reports that a DropWithError subscription fell behind and
// was terminated rather than stalling ingestion.
var ErrSlowConsumer = errors.New("live: subscription dropped: consumer too slow")

// ErrClosed reports an operation on a canceled or closed subscription.
var ErrClosed = errors.New("live: subscription closed")

// ErrRetainedOverflow reports a late attach to a shared session whose
// retained output exceeded its Config.MaxRetainedRows cap: the retention was
// released to bound memory, so the session can no longer synthesize the
// snapshot hand-off a late subscriber needs. Existing cursors are unaffected;
// the caller can open a dedicated (Exclusive) subscription instead, which
// replays recorded history rather than the retained log.
var ErrRetainedOverflow = errors.New("live: retained output exceeded the configured cap; late attach unavailable")

// Delta is one incremental result delivery. Exactly one of Stream and Table
// is populated, matching the subscription's Mode.
type Delta struct {
	// Stream holds the new stream-rendered output rows (Stream mode).
	Stream []tvr.StreamRow
	// Table holds the consolidated snapshot diff (Table mode).
	Table *TableDiff
	// Watermark is the output relation's watermark when the delta
	// materialized.
	Watermark types.Time
}

// TableDiff is the net change to the output snapshot across one delivery:
// insert/delete pairs for the same row within the window cancel out.
type TableDiff struct {
	// Ptime is the processing time of the last change folded in.
	Ptime types.Time
	// Inserted rows were added to the snapshot (with multiplicity).
	Inserted []types.Row
	// Deleted rows were removed from the snapshot (with multiplicity).
	Deleted []types.Row
}

// tableAcc incrementally maintains the state consolidate derives from a
// changelog: per-row net multiplicities in first-appearance order, plus the
// latest data ptime. A shared Table-mode session keeps one alive across
// deliveries so a late attacher's snapshot hand-off is synthesized from
// state bounded by distinct rows, not by the full output history.
type tableAcc struct {
	counts map[string]*rowAcc
	order  []string
	ptime  types.Time
	// scratch is the reusable key-encoding buffer: steady-state applies look
	// the row up through string(scratch) (allocation-free) and only
	// materialize the key string when the row is first seen.
	scratch []byte
}

type rowAcc struct {
	row types.Row
	n   int
}

func newTableAcc() *tableAcc {
	return &tableAcc{counts: make(map[string]*rowAcc), ptime: types.MinTime}
}

// apply folds one changelog event into the accumulator.
func (a *tableAcc) apply(ev tvr.Event) {
	if !ev.IsData() {
		return
	}
	if ev.Ptime > a.ptime {
		a.ptime = ev.Ptime
	}
	a.scratch = ev.Row.AppendKey(a.scratch[:0])
	r := a.counts[string(a.scratch)] // allocation-free lookup
	if r == nil {
		r = &rowAcc{row: ev.Row}
		k := string(a.scratch)
		a.counts[k] = r
		a.order = append(a.order, k)
	}
	if ev.Kind == tvr.Insert {
		r.n++
	} else {
		r.n--
	}
}

// applyLog folds a whole drained batch into the accumulator — the batch
// counterpart the per-delta delivery path uses so a session consolidates one
// applied batch in a single call.
func (a *tableAcc) applyLog(out tvr.Changelog) {
	for i := range out {
		a.apply(out[i])
	}
}

// diff renders the accumulated net change as a fresh snapshot diff.
func (a *tableAcc) diff() *TableDiff {
	d := &TableDiff{Ptime: a.ptime}
	for _, k := range a.order {
		r := a.counts[k]
		for i := 0; i < r.n; i++ {
			d.Inserted = append(d.Inserted, r.row)
		}
		for i := 0; i < -r.n; i++ {
			d.Deleted = append(d.Deleted, r.row)
		}
	}
	return d
}

// consolidate nets a drained output changelog into a snapshot diff.
func consolidate(out tvr.Changelog) *TableDiff {
	a := newTableAcc()
	a.applyLog(out)
	return a.diff()
}

// Stats is a point-in-time snapshot of a subscription's counters. EventsIn,
// Watermark, Partitions, PipelineID, and Subscribers describe the shared
// resident pipeline; DeltasOut, RowsOut, and QueueDepth are this
// subscriber's own cursor.
type Stats struct {
	// EventsIn counts source events fed into the standing pipeline
	// (including watermarks).
	EventsIn int64
	// DeltasOut counts deltas delivered to the subscriber.
	DeltasOut int64
	// RowsOut counts output rows across all delivered deltas.
	RowsOut int64
	// Watermark is the output relation's current watermark.
	Watermark types.Time
	// QueueDepth is the number of deltas waiting in the channel.
	QueueDepth int
	// Partitions is the parallelism of the standing pipeline (1 = serial).
	Partitions int
	// PipelineID identifies the resident pipeline; subscriptions sharing
	// a plan report the same id.
	PipelineID int
	// Subscribers is the number of cursors currently attached to the
	// resident pipeline (1 for an unshared subscription).
	Subscribers int
	// Shard is the resident pipeline's shard index under the sharded
	// ingest subsystem, or -1 under the serial fan-out.
	Shard int
	// Dispatches counts operator-chain dispatches inside the standing
	// pipeline (one per delivered batch or run; see exec.Stats).
	Dispatches int64
	// EventsPerDispatch is the mean number of source events carried per
	// dispatch — the batching efficiency of the standing pipeline (1.0
	// means pure per-event delivery).
	EventsPerDispatch float64
}

// CursorOpts configures one subscriber cursor attached to a session.
type CursorOpts struct {
	// Buffer is the cursor's delta channel capacity (default 64).
	Buffer int
	// Policy is the cursor's slow-consumer policy.
	Policy Policy
}
