// Package live implements standing queries: compiled pipelines that stay
// resident and are fed incrementally as new changes arrive, pushing EMIT
// deltas to subscribers instead of recompiling and rescanning history per
// request.
//
// The paper's central object is the time-varying relation, with the table
// and stream renderings as equal citizens. The engine's one-shot query paths
// (core.QueryTable / core.QueryStream) replay a recorded changelog through a
// freshly compiled pipeline; package live supplies the third mode of
// consumption: a Session wraps an exec.Driver (serial or key-partitioned)
// started once, feeds it every subsequent ingested change through the same
// deterministic merge the replay path uses, and delivers the incremental
// output — stream-rendered deltas or consolidated table diffs — over a
// bounded channel with explicit slow-consumer policy. Because the driver
// lifecycle guarantees that incremental feeding is byte-identical to replay,
// a standing subscription observes exactly the delta sequence a post-hoc
// EMIT STREAM query over the final changelog would produce.
package live

import (
	"errors"

	"repro/internal/tvr"
	"repro/internal/types"
)

// Mode selects which rendering of the output TVR a subscription receives.
type Mode int

const (
	// Stream delivers the changelog rendering: every output change as a
	// tvr.StreamRow with undo/ptime/ver metadata (Extension 4).
	Stream Mode = iota
	// Table delivers consolidated snapshot diffs: the net row changes
	// since the previous delivery.
	Table
)

// String names the mode.
func (m Mode) String() string {
	if m == Table {
		return "table"
	}
	return "stream"
}

// Policy says what happens when a subscriber's delta channel is full.
type Policy int

const (
	// Block applies backpressure: the ingesting goroutine waits until the
	// subscriber drains (or the subscription is canceled). Ingest latency
	// becomes coupled to the slowest blocking subscriber.
	Block Policy = iota
	// DropWithError terminates the subscription with ErrSlowConsumer
	// instead of stalling ingestion: the channel closes and Err reports
	// the drop, so the subscriber knows its view is no longer complete.
	DropWithError
)

// String names the policy.
func (p Policy) String() string {
	if p == DropWithError {
		return "drop"
	}
	return "block"
}

// ErrSlowConsumer reports that a DropWithError subscription fell behind and
// was terminated rather than stalling ingestion.
var ErrSlowConsumer = errors.New("live: subscription dropped: consumer too slow")

// ErrClosed reports an operation on a canceled or closed subscription.
var ErrClosed = errors.New("live: subscription closed")

// Delta is one incremental result delivery. Exactly one of Stream and Table
// is populated, matching the subscription's Mode.
type Delta struct {
	// Stream holds the new stream-rendered output rows (Stream mode).
	Stream []tvr.StreamRow
	// Table holds the consolidated snapshot diff (Table mode).
	Table *TableDiff
	// Watermark is the output relation's watermark when the delta
	// materialized.
	Watermark types.Time
}

// TableDiff is the net change to the output snapshot across one delivery:
// insert/delete pairs for the same row within the window cancel out.
type TableDiff struct {
	// Ptime is the processing time of the last change folded in.
	Ptime types.Time
	// Inserted rows were added to the snapshot (with multiplicity).
	Inserted []types.Row
	// Deleted rows were removed from the snapshot (with multiplicity).
	Deleted []types.Row
}

// consolidate nets a drained output changelog into a snapshot diff.
func consolidate(out tvr.Changelog) *TableDiff {
	type acc struct {
		row types.Row
		n   int
	}
	counts := make(map[string]*acc)
	var order []string
	diff := &TableDiff{Ptime: types.MinTime}
	for _, ev := range out {
		if !ev.IsData() {
			continue
		}
		if ev.Ptime > diff.Ptime {
			diff.Ptime = ev.Ptime
		}
		k := ev.Row.Key()
		a := counts[k]
		if a == nil {
			a = &acc{row: ev.Row}
			counts[k] = a
			order = append(order, k)
		}
		if ev.Kind == tvr.Insert {
			a.n++
		} else {
			a.n--
		}
	}
	for _, k := range order {
		a := counts[k]
		for i := 0; i < a.n; i++ {
			diff.Inserted = append(diff.Inserted, a.row)
		}
		for i := 0; i < -a.n; i++ {
			diff.Deleted = append(diff.Deleted, a.row)
		}
	}
	return diff
}

// Stats is a point-in-time snapshot of a subscription's counters.
type Stats struct {
	// EventsIn counts source events fed into the standing pipeline
	// (including watermarks).
	EventsIn int64
	// DeltasOut counts deltas delivered to the subscriber.
	DeltasOut int64
	// RowsOut counts output rows across all delivered deltas.
	RowsOut int64
	// Watermark is the output relation's current watermark.
	Watermark types.Time
	// QueueDepth is the number of deltas waiting in the channel.
	QueueDepth int
	// Partitions is the parallelism of the standing pipeline (1 = serial).
	Partitions int
}
