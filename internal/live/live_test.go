package live_test

// Unit tests for the session/subscription machinery: slow-consumer policies,
// cancellation under backpressure, graceful close, diff consolidation, and
// manager routing — driven by a scripted in-memory exec.Driver so the tests
// control exactly when output materializes.

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/live"
	"repro/internal/tvr"
	"repro/internal/types"
)

// echoDriver is a minimal exec.Driver: every fed data event materializes as
// one output event (identity query), and Close emits one final marker row.
type echoDriver struct {
	started bool
	closed  bool
	out     tvr.Changelog
	drained int
	wm      types.Time
	final   types.Row // emitted at Close when non-nil
}

func (d *echoDriver) Start() error {
	d.started = true
	return nil
}

func (d *echoDriver) Feed(batch []exec.Source) error {
	for _, s := range batch {
		for _, ev := range s.Log {
			if ev.IsData() {
				d.out = append(d.out, ev)
			} else if ev.Kind == tvr.Watermark && ev.Wm > d.wm {
				d.wm = ev.Wm
			}
		}
	}
	return nil
}

func (d *echoDriver) Advance(pt types.Time) error { return nil }

func (d *echoDriver) Close() (*exec.Result, error) {
	d.closed = true
	if d.final != nil {
		d.out = append(d.out, tvr.InsertEvent(types.MaxTime, d.final))
	}
	return &exec.Result{Log: d.out}, nil
}

func (d *echoDriver) Drain() tvr.Changelog {
	out := d.out[d.drained:len(d.out):len(d.out)]
	d.drained = len(d.out)
	return out
}

func (d *echoDriver) OutputWatermark() types.Time { return d.wm }
func (d *echoDriver) Stats() exec.Stats           { return exec.Stats{Partitions: 1} }

func testSchema() *types.Schema {
	return types.NewSchema(types.Column{Name: "v", Kind: types.KindInt64})
}

func intRow(v int64) types.Row { return types.Row{types.NewInt(v)} }

func newTestSession(t *testing.T, d exec.Driver, mode live.Mode, buffer int, pol live.Policy) *live.Session {
	t.Helper()
	s, err := live.NewSession(d, live.Config{
		Name: "test", Mode: mode, Schema: testSchema(),
		Sources: []string{"S"}, Buffer: buffer, Policy: pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestDropWithError: when the bounded channel fills, the subscription is
// terminated with ErrSlowConsumer instead of stalling the producer.
func TestDropWithError(t *testing.T) {
	sess := newTestSession(t, &echoDriver{}, live.Stream, 2, live.DropWithError)
	sub := sess.Subscription()
	var err error
	for i := 0; i < 10; i++ {
		err = sess.Ingest("s", tvr.InsertEvent(types.Time(i), intRow(int64(i))))
		if err != nil {
			break
		}
	}
	if !errors.Is(err, live.ErrSlowConsumer) {
		t.Fatalf("ingest error = %v, want ErrSlowConsumer", err)
	}
	if !errors.Is(sub.Err(), live.ErrSlowConsumer) {
		t.Fatalf("Err() = %v, want ErrSlowConsumer", sub.Err())
	}
	// The channel must be closed so a ranging consumer terminates; the two
	// buffered deltas are still readable.
	n := 0
	for range sub.Deltas() {
		n++
	}
	if n != 2 {
		t.Fatalf("drained %d buffered deltas, want 2", n)
	}
	// Further ingests keep failing with the recorded error.
	if err := sess.Ingest("s", tvr.InsertEvent(100, intRow(100))); !errors.Is(err, live.ErrSlowConsumer) {
		t.Fatalf("post-drop ingest error = %v", err)
	}
}

// TestBlockBackpressure: a full channel stalls the producer until the
// consumer drains; nothing is lost.
func TestBlockBackpressure(t *testing.T) {
	sess := newTestSession(t, &echoDriver{}, live.Stream, 1, live.Block)
	sub := sess.Subscription()
	const n = 20
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := sess.Ingest("s", tvr.InsertEvent(types.Time(i), intRow(int64(i)))); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	var got []int64
	for len(got) < n {
		d := <-sub.Deltas()
		time.Sleep(time.Millisecond) // deliberately slow consumer
		for _, r := range d.Stream {
			got = append(got, r.Row[0].Int())
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("producer error: %v", err)
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("delta %d = %d, want %d (order or loss under backpressure)", i, v, i)
		}
	}
}

// TestCancelUnblocksProducer: canceling a subscription releases a producer
// blocked on its full channel.
func TestCancelUnblocksProducer(t *testing.T) {
	sess := newTestSession(t, &echoDriver{}, live.Stream, 1, live.Block)
	sub := sess.Subscription()
	blocked := make(chan error, 1)
	go func() {
		var err error
		for i := 0; i < 5; i++ {
			if err = sess.Ingest("s", tvr.InsertEvent(types.Time(i), intRow(int64(i)))); err != nil {
				break
			}
		}
		blocked <- err
	}()
	// Give the producer time to fill the buffer and block, then cancel.
	time.Sleep(10 * time.Millisecond)
	sub.Cancel()
	select {
	case err := <-blocked:
		if !errors.Is(err, live.ErrClosed) {
			t.Fatalf("producer error = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("producer still blocked after Cancel")
	}
	if !errors.Is(sub.Err(), live.ErrClosed) {
		t.Fatalf("Err() = %v, want ErrClosed", sub.Err())
	}
	// Channel must be closed.
	for range sub.Deltas() {
	}
}

// TestGracefulCloseDeliversFinalDelta: Close completes the pipeline and
// returns end-of-input emissions as the final delta without touching the
// (possibly full) channel.
func TestGracefulCloseDeliversFinalDelta(t *testing.T) {
	d := &echoDriver{final: intRow(999)}
	sess := newTestSession(t, d, live.Stream, 4, live.Block)
	sub := sess.Subscription()
	if err := sess.Ingest("s", tvr.InsertEvent(1, intRow(1))); err != nil {
		t.Fatal(err)
	}
	final, err := sub.Close()
	if err != nil {
		t.Fatal(err)
	}
	if final == nil || len(final.Stream) != 1 || final.Stream[0].Row[0].Int() != 999 {
		t.Fatalf("final delta = %+v, want the close marker row", final)
	}
	if !d.closed {
		t.Fatal("driver was not closed")
	}
	if sub.Err() != nil {
		t.Fatalf("Err after graceful close = %v", sub.Err())
	}
	st := sub.Stats()
	if st.EventsIn != 1 || st.DeltasOut != 2 || st.RowsOut != 2 {
		t.Fatalf("stats = %+v, want EventsIn=1 DeltasOut=2 RowsOut=2", st)
	}
	// Second close reports the terminal state instead of re-closing.
	if _, err := sub.Close(); !errors.Is(err, live.ErrClosed) {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
}

// TestCloseKeepsInterruptedDelta: a delivery blocked on a full channel when
// the consumer calls Close must not be lost — it folds into the final delta.
func TestCloseKeepsInterruptedDelta(t *testing.T) {
	d := &echoDriver{final: intRow(999)}
	sess := newTestSession(t, d, live.Stream, 1, live.Block)
	sub := sess.Subscription()
	// Fill the buffer (delta 0 delivered), then block a producer on delta 1.
	if err := sess.Ingest("s", tvr.InsertEvent(1, intRow(1))); err != nil {
		t.Fatal(err)
	}
	blocked := make(chan error, 1)
	go func() {
		blocked <- sess.Ingest("s", tvr.InsertEvent(2, intRow(2)))
	}()
	time.Sleep(10 * time.Millisecond) // let the producer block
	final, err := sub.Close()
	if err != nil {
		t.Fatal(err)
	}
	if perr := <-blocked; !errors.Is(perr, live.ErrClosed) {
		t.Fatalf("producer error = %v, want ErrClosed", perr)
	}
	// The final delta must contain the interrupted row 2 AND the close
	// marker 999 — nothing lost, order preserved.
	var got []int64
	for _, r := range final.Stream {
		got = append(got, r.Row[0].Int())
	}
	if len(got) != 2 || got[0] != 2 || got[1] != 999 {
		t.Fatalf("final delta rows = %v, want [2 999]", got)
	}
	// The buffered delta 0 is still readable.
	d0 := <-sub.Deltas()
	if len(d0.Stream) != 1 || d0.Stream[0].Row[0].Int() != 1 {
		t.Fatalf("buffered delta = %+v, want row 1", d0)
	}
}

// TestTableDiffConsolidation: insert+delete of the same row inside one
// delivery cancels out of the diff.
func TestTableDiffConsolidation(t *testing.T) {
	sess := newTestSession(t, &echoDriver{}, live.Table, 4, live.Block)
	sub := sess.Subscription()
	err := sess.IngestLog([]exec.Source{{Name: "s", Log: tvr.Changelog{
		tvr.InsertEvent(1, intRow(1)),
		tvr.InsertEvent(2, intRow(2)),
		tvr.DeleteEvent(3, intRow(1)), // cancels the first insert
		tvr.InsertEvent(4, intRow(2)), // multiplicity 2
	}}})
	if err != nil {
		t.Fatal(err)
	}
	d := <-sub.Deltas()
	if d.Table == nil {
		t.Fatal("nil table diff")
	}
	if len(d.Table.Deleted) != 0 {
		t.Fatalf("deleted = %v, want empty (consolidated)", d.Table.Deleted)
	}
	if len(d.Table.Inserted) != 2 || d.Table.Inserted[0][0].Int() != 2 || d.Table.Inserted[1][0].Int() != 2 {
		t.Fatalf("inserted = %v, want row(2) twice", d.Table.Inserted)
	}
	if d.Table.Ptime != 4 {
		t.Fatalf("diff ptime = %s, want 0:00:00.004", d.Table.Ptime)
	}
	sub.Cancel()
}

// TestManagerRouting: Publish routes only to sessions scanning the named
// relation, in commit order, and drops dead sessions from the table.
func TestManagerRouting(t *testing.T) {
	m := live.NewManager()
	mk := func(source string) (*live.Session, *live.Subscription) {
		s, err := live.NewSession(&echoDriver{}, live.Config{
			Name: source, Mode: live.Stream, Schema: testSchema(),
			Sources: []string{source}, Buffer: 64,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Register(s, nil); err != nil {
			t.Fatal(err)
		}
		return s, s.Subscription()
	}
	_, subA := mk("a")
	_, subB := mk("b")
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	commits := 0
	publish := func(name string, v int64) {
		if err := m.Publish(func() error { commits++; return nil }, name,
			tvr.Changelog{tvr.InsertEvent(types.Time(v), intRow(v))}); err != nil {
			t.Fatal(err)
		}
	}
	publish("a", 1)
	publish("b", 2)
	publish("a", 3)
	if commits != 3 {
		t.Fatalf("commits = %d, want 3", commits)
	}
	readAll := func(sub *live.Subscription) []int64 {
		var out []int64
		for {
			select {
			case d := <-sub.Deltas():
				for _, r := range d.Stream {
					out = append(out, r.Row[0].Int())
				}
			default:
				return out
			}
		}
	}
	if got := readAll(subA); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("subA rows = %v, want [1 3]", got)
	}
	if got := readAll(subB); len(got) != 1 || got[0] != 2 {
		t.Fatalf("subB rows = %v, want [2]", got)
	}
	// A failed commit must not route.
	wantErr := errors.New("commit failed")
	if err := m.Publish(func() error { return wantErr }, "a",
		tvr.Changelog{tvr.InsertEvent(99, intRow(99))}); !errors.Is(err, wantErr) {
		t.Fatalf("publish error = %v", err)
	}
	if got := readAll(subA); len(got) != 0 {
		t.Fatalf("rows routed despite failed commit: %v", got)
	}
	// Canceling removes the session from the routing table.
	subA.Cancel()
	if m.Len() != 1 {
		t.Fatalf("Len after cancel = %d, want 1", m.Len())
	}
	publish("a", 5) // no live session for "a": commit still succeeds
	if commits != 4 {
		t.Fatalf("commits = %d, want 4", commits)
	}
	subB.Cancel()
}

// TestPublishBatchesOneDelta: a published changelog batch reaches each
// session as a single delivery, so a small DropWithError buffer survives
// large atomic appends instead of being spuriously dropped.
func TestPublishBatchesOneDelta(t *testing.T) {
	m := live.NewManager()
	s, err := live.NewSession(&echoDriver{}, live.Config{
		Name: "batch", Mode: live.Stream, Schema: testSchema(),
		Sources: []string{"s"}, Buffer: 1, Policy: live.DropWithError,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Register(s, nil); err != nil {
		t.Fatal(err)
	}
	sub := s.Subscription()
	var log tvr.Changelog
	for i := 0; i < 100; i++ {
		log = append(log, tvr.InsertEvent(types.Time(i), intRow(int64(i))))
	}
	if err := m.Publish(func() error { return nil }, "s", log); err != nil {
		t.Fatal(err)
	}
	if err := sub.Err(); err != nil {
		t.Fatalf("batch publish dropped the subscription: %v", err)
	}
	d := <-sub.Deltas()
	if len(d.Stream) != 100 {
		t.Fatalf("delta has %d rows, want the whole batch (100)", len(d.Stream))
	}
	st := sub.Stats()
	if st.DeltasOut != 1 || st.EventsIn != 100 {
		t.Fatalf("stats = %+v, want DeltasOut=1 EventsIn=100", st)
	}
	sub.Cancel()
}

// TestConcurrentIngestAndCancel: racing publishers, a consumer, and a
// midstream cancel must neither deadlock nor panic (run with -race).
func TestConcurrentIngestAndCancel(t *testing.T) {
	m := live.NewManager()
	s, err := live.NewSession(&echoDriver{}, live.Config{
		Name: "race", Mode: live.Stream, Schema: testSchema(),
		Sources: []string{"s"}, Buffer: 2, Policy: live.Block,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Register(s, nil); err != nil {
		t.Fatal(err)
	}
	sub := s.Subscription()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = m.Publish(func() error { return nil }, "s",
				tvr.Changelog{tvr.InsertEvent(types.Time(i), intRow(int64(i)))})
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		n := 0
		for range sub.Deltas() {
			n++
			if n == 50 {
				sub.Cancel()
			}
		}
	}()
	wg.Wait()
	if m.Len() != 0 {
		t.Fatalf("Len = %d after cancel, want 0", m.Len())
	}
}
