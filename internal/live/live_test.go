package live_test

// Unit tests for the session/cursor/subscription machinery: slow-consumer
// policies, cancellation under backpressure, graceful close, diff
// consolidation, shared-plan fan-out with per-subscriber cursors, and
// manager routing — driven by a scripted in-memory exec.Driver so the tests
// control exactly when output materializes.

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/live"
	"repro/internal/tvr"
	"repro/internal/types"
)

// echoDriver is a minimal exec.Driver: every fed data event materializes as
// one output event (identity query), and Close emits one final marker row.
type echoDriver struct {
	started  bool
	closed   bool
	out      tvr.Changelog
	drained  int
	wm       types.Time
	final    types.Row    // emitted at Close when non-nil
	advances []types.Time // recorded Advance calls
	feeds    func()       // called on every Feed when non-nil
}

func (d *echoDriver) Start() error {
	d.started = true
	return nil
}

func (d *echoDriver) Feed(batch []exec.Source) error {
	if d.feeds != nil {
		d.feeds()
	}
	for _, s := range batch {
		for _, ev := range s.Log {
			if ev.IsData() {
				d.out = append(d.out, ev)
			} else if ev.Kind == tvr.Watermark && ev.Wm > d.wm {
				d.wm = ev.Wm
			}
		}
	}
	return nil
}

func (d *echoDriver) Advance(pt types.Time) error {
	d.advances = append(d.advances, pt)
	return nil
}

func (d *echoDriver) Close() (*exec.Result, error) {
	d.closed = true
	if d.final != nil {
		d.out = append(d.out, tvr.InsertEvent(types.MaxTime, d.final))
	}
	return &exec.Result{Log: d.out}, nil
}

func (d *echoDriver) Drain() tvr.Changelog {
	out := d.out[d.drained:len(d.out):len(d.out)]
	d.drained = len(d.out)
	return out
}

func (d *echoDriver) OutputWatermark() types.Time   { return d.wm }
func (d *echoDriver) Stats() exec.Stats             { return exec.Stats{Partitions: 1} }
func (d *echoDriver) DispatchStats() (int64, int64) { return 0, 0 }

func testSchema() *types.Schema {
	return types.NewSchema(types.Column{Name: "v", Kind: types.KindInt64})
}

func intRow(v int64) types.Row { return types.Row{types.NewInt(v)} }

func newTestSession(t *testing.T, d exec.Driver, mode live.Mode, buffer int, pol live.Policy) (*live.Session, *live.Subscription) {
	t.Helper()
	s, err := live.NewSession(d, live.Config{
		Name: "test", Mode: mode, Schema: testSchema(), Sources: []string{"S"},
	})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := s.Attach(live.CursorOpts{Buffer: buffer, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	return s, sub
}

// streamInts extracts the int payloads of a delta's stream rows.
func streamInts(d live.Delta) []int64 {
	var out []int64
	for _, r := range d.Stream {
		out = append(out, r.Row[0].Int())
	}
	return out
}

// TestDropWithError: when the bounded channel fills, the subscription is
// terminated with ErrSlowConsumer instead of stalling the producer; with no
// subscribers left, the session dies with it.
func TestDropWithError(t *testing.T) {
	sess, sub := newTestSession(t, &echoDriver{}, live.Stream, 2, live.DropWithError)
	var err error
	for i := 0; i < 10; i++ {
		err = sess.Ingest("s", tvr.InsertEvent(types.Time(i), intRow(int64(i))))
		if err != nil {
			break
		}
	}
	if !errors.Is(err, live.ErrSlowConsumer) {
		t.Fatalf("ingest error = %v, want ErrSlowConsumer", err)
	}
	if !errors.Is(sub.Err(), live.ErrSlowConsumer) {
		t.Fatalf("Err() = %v, want ErrSlowConsumer", sub.Err())
	}
	// The channel must be closed so a ranging consumer terminates; the two
	// buffered deltas are still readable.
	n := 0
	for range sub.Deltas() {
		n++
	}
	if n != 2 {
		t.Fatalf("drained %d buffered deltas, want 2", n)
	}
	// Further ingests keep failing with the recorded error.
	if err := sess.Ingest("s", tvr.InsertEvent(100, intRow(100))); !errors.Is(err, live.ErrSlowConsumer) {
		t.Fatalf("post-drop ingest error = %v", err)
	}
}

// TestBlockBackpressure: a full channel stalls the producer until the
// consumer drains; nothing is lost.
func TestBlockBackpressure(t *testing.T) {
	sess, sub := newTestSession(t, &echoDriver{}, live.Stream, 1, live.Block)
	const n = 20
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := sess.Ingest("s", tvr.InsertEvent(types.Time(i), intRow(int64(i)))); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	var got []int64
	for len(got) < n {
		d := <-sub.Deltas()
		time.Sleep(time.Millisecond) // deliberately slow consumer
		got = append(got, streamInts(d)...)
	}
	if err := <-done; err != nil {
		t.Fatalf("producer error: %v", err)
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("delta %d = %d, want %d (order or loss under backpressure)", i, v, i)
		}
	}
}

// TestCancelUnblocksProducer: canceling a subscription releases a producer
// blocked on its full channel, and the last cursor's cancel tears the
// session down.
func TestCancelUnblocksProducer(t *testing.T) {
	sess, sub := newTestSession(t, &echoDriver{}, live.Stream, 1, live.Block)
	blocked := make(chan error, 1)
	go func() {
		var err error
		for i := 0; i < 5; i++ {
			if err = sess.Ingest("s", tvr.InsertEvent(types.Time(i), intRow(int64(i)))); err != nil {
				break
			}
		}
		blocked <- err
	}()
	// Give the producer time to fill the buffer and block, then cancel.
	time.Sleep(10 * time.Millisecond)
	sub.Cancel()
	select {
	case err := <-blocked:
		// The interrupted delivery parks in the leaving cursor's pending
		// slot (nil error); once the cancel lands the session is closed
		// and later ingests report ErrClosed. Either way the producer
		// must not stay blocked.
		if err != nil && !errors.Is(err, live.ErrClosed) {
			t.Fatalf("producer error = %v, want nil or ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("producer still blocked after Cancel")
	}
	if !errors.Is(sub.Err(), live.ErrClosed) {
		t.Fatalf("Err() = %v, want ErrClosed", sub.Err())
	}
	// Channel must be closed.
	for range sub.Deltas() {
	}
	// The session died with its last cursor: no more input accepted.
	if err := sess.Ingest("s", tvr.InsertEvent(100, intRow(100))); !errors.Is(err, live.ErrClosed) {
		t.Fatalf("post-cancel ingest error = %v, want ErrClosed", err)
	}
}

// TestGracefulCloseDeliversFinalDelta: Close completes the pipeline and
// returns end-of-input emissions as the final delta without touching the
// (possibly full) channel.
func TestGracefulCloseDeliversFinalDelta(t *testing.T) {
	d := &echoDriver{final: intRow(999)}
	sess, sub := newTestSession(t, d, live.Stream, 4, live.Block)
	if err := sess.Ingest("s", tvr.InsertEvent(1, intRow(1))); err != nil {
		t.Fatal(err)
	}
	final, err := sub.Close()
	if err != nil {
		t.Fatal(err)
	}
	if final == nil || len(final.Stream) != 1 || final.Stream[0].Row[0].Int() != 999 {
		t.Fatalf("final delta = %+v, want the close marker row", final)
	}
	if !d.closed {
		t.Fatal("driver was not closed")
	}
	if sub.Err() != nil {
		t.Fatalf("Err after graceful close = %v", sub.Err())
	}
	st := sub.Stats()
	if st.EventsIn != 1 || st.DeltasOut != 2 || st.RowsOut != 2 {
		t.Fatalf("stats = %+v, want EventsIn=1 DeltasOut=2 RowsOut=2", st)
	}
	// Second close reports the terminal state instead of re-closing.
	if _, err := sub.Close(); !errors.Is(err, live.ErrClosed) {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
}

// TestCloseKeepsInterruptedDelta: a delivery blocked on a full channel when
// the consumer calls Close must not be lost — it folds into the final delta.
func TestCloseKeepsInterruptedDelta(t *testing.T) {
	d := &echoDriver{final: intRow(999)}
	sess, sub := newTestSession(t, d, live.Stream, 1, live.Block)
	// Fill the buffer (delta 0 delivered), then block a producer on delta 1.
	if err := sess.Ingest("s", tvr.InsertEvent(1, intRow(1))); err != nil {
		t.Fatal(err)
	}
	blocked := make(chan error, 1)
	go func() {
		blocked <- sess.Ingest("s", tvr.InsertEvent(2, intRow(2)))
	}()
	time.Sleep(10 * time.Millisecond) // let the producer block
	final, err := sub.Close()
	if err != nil {
		t.Fatal(err)
	}
	// The interrupted delivery succeeded from the producer's point of
	// view: the delta is parked for the closing cursor, not lost.
	if perr := <-blocked; perr != nil {
		t.Fatalf("producer error = %v, want nil (delta parked as pending)", perr)
	}
	// The final delta must contain the interrupted row 2 AND the close
	// marker 999 — nothing lost, order preserved.
	got := streamInts(*final)
	if len(got) != 2 || got[0] != 2 || got[1] != 999 {
		t.Fatalf("final delta rows = %v, want [2 999]", got)
	}
	// The buffered delta 0 is still readable.
	d0 := <-sub.Deltas()
	if len(d0.Stream) != 1 || d0.Stream[0].Row[0].Int() != 1 {
		t.Fatalf("buffered delta = %+v, want row 1", d0)
	}
}

// TestTableDiffConsolidation: insert+delete of the same row inside one
// delivery cancels out of the diff.
func TestTableDiffConsolidation(t *testing.T) {
	sess, sub := newTestSession(t, &echoDriver{}, live.Table, 4, live.Block)
	err := sess.IngestLog([]exec.Source{{Name: "s", Log: tvr.Changelog{
		tvr.InsertEvent(1, intRow(1)),
		tvr.InsertEvent(2, intRow(2)),
		tvr.DeleteEvent(3, intRow(1)), // cancels the first insert
		tvr.InsertEvent(4, intRow(2)), // multiplicity 2
	}}})
	if err != nil {
		t.Fatal(err)
	}
	d := <-sub.Deltas()
	if d.Table == nil {
		t.Fatal("nil table diff")
	}
	if len(d.Table.Deleted) != 0 {
		t.Fatalf("deleted = %v, want empty (consolidated)", d.Table.Deleted)
	}
	if len(d.Table.Inserted) != 2 || d.Table.Inserted[0][0].Int() != 2 || d.Table.Inserted[1][0].Int() != 2 {
		t.Fatalf("inserted = %v, want row(2) twice", d.Table.Inserted)
	}
	if d.Table.Ptime != 4 {
		t.Fatalf("diff ptime = %s, want 0:00:00.004", d.Table.Ptime)
	}
	sub.Cancel()
}

// TestSharedFanout: every attached cursor receives every delta, with its own
// counters, and the pipeline id/subscriber count are visible in Stats.
func TestSharedFanout(t *testing.T) {
	m := live.NewManager()
	sess, err := live.NewSession(&echoDriver{}, live.Config{
		Name: "fanout", Mode: live.Stream, Schema: testSchema(), Sources: []string{"s"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Register(sess, nil); err != nil {
		t.Fatal(err)
	}
	subs := make([]*live.Subscription, 3)
	for i := range subs {
		if subs[i], err = sess.Attach(live.CursorOpts{Buffer: 8}); err != nil {
			t.Fatal(err)
		}
	}
	if m.Len() != 1 || m.Subscribers() != 3 {
		t.Fatalf("Len=%d Subscribers=%d, want 1/3", m.Len(), m.Subscribers())
	}
	for i := 0; i < 3; i++ {
		if err := m.Publish(func() error { return nil }, "s",
			tvr.Changelog{tvr.InsertEvent(types.Time(i), intRow(int64(i)))}); err != nil {
			t.Fatal(err)
		}
	}
	for i, sub := range subs {
		st := sub.Stats()
		if st.DeltasOut != 3 || st.RowsOut != 3 || st.Subscribers != 3 {
			t.Fatalf("sub %d stats = %+v, want 3 deltas / 3 rows / 3 subscribers", i, st)
		}
		if st.PipelineID != subs[0].Stats().PipelineID {
			t.Fatalf("sub %d pipeline id %d differs from %d", i, st.PipelineID, subs[0].Stats().PipelineID)
		}
		for j := 0; j < 3; j++ {
			d := <-sub.Deltas()
			if got := streamInts(d); len(got) != 1 || got[0] != int64(j) {
				t.Fatalf("sub %d delta %d = %v", i, j, got)
			}
		}
	}
	// EventsIn is shared pipeline state: one count, not per cursor.
	if st := subs[0].Stats(); st.EventsIn != 3 {
		t.Fatalf("EventsIn = %d, want 3", st.EventsIn)
	}
	for _, sub := range subs {
		sub.Cancel()
	}
	if m.Len() != 0 {
		t.Fatalf("Len after cancels = %d, want 0", m.Len())
	}
}

// TestRefcountTeardown: the shared pipeline survives departures until the
// last cursor leaves, and only then is the driver closed and the session
// unregistered.
func TestRefcountTeardown(t *testing.T) {
	m := live.NewManager()
	d := &echoDriver{}
	sess, err := live.NewSession(d, live.Config{
		Name: "rc", Mode: live.Stream, Schema: testSchema(), Sources: []string{"s"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Register(sess, nil); err != nil {
		t.Fatal(err)
	}
	a, _ := sess.Attach(live.CursorOpts{Buffer: 4})
	b, _ := sess.Attach(live.CursorOpts{Buffer: 4})
	a.Cancel()
	if d.closed {
		t.Fatal("driver closed while a subscriber remains")
	}
	if m.Len() != 1 || m.Subscribers() != 1 {
		t.Fatalf("Len=%d Subscribers=%d after first cancel, want 1/1", m.Len(), m.Subscribers())
	}
	// The survivor still receives deltas.
	if err := m.Publish(func() error { return nil }, "s",
		tvr.Changelog{tvr.InsertEvent(1, intRow(7))}); err != nil {
		t.Fatal(err)
	}
	if got := streamInts(<-b.Deltas()); len(got) != 1 || got[0] != 7 {
		t.Fatalf("survivor delta = %v, want [7]", got)
	}
	b.Cancel()
	if !d.closed {
		t.Fatal("driver not closed after last cancel")
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d after last cancel, want 0", m.Len())
	}
}

// TestNonLastCloseLeavesPipeline: a graceful Close with peers attached only
// detaches the cursor; the standing query keeps running for the others, and
// the last Close completes it.
func TestNonLastCloseLeavesPipeline(t *testing.T) {
	d := &echoDriver{final: intRow(999)}
	sess, a := newTestSession(t, d, live.Stream, 4, live.Block)
	b, err := sess.Attach(live.CursorOpts{Buffer: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Ingest("s", tvr.InsertEvent(1, intRow(1))); err != nil {
		t.Fatal(err)
	}
	final, err := a.Close()
	if err != nil {
		t.Fatal(err)
	}
	if final != nil {
		t.Fatalf("non-last Close returned a final delta: %+v", final)
	}
	if a.Err() != nil {
		t.Fatalf("Err after non-last Close = %v", a.Err())
	}
	if d.closed {
		t.Fatal("driver closed while a subscriber remains")
	}
	// The pipeline keeps serving b.
	if err := sess.Ingest("s", tvr.InsertEvent(2, intRow(2))); err != nil {
		t.Fatal(err)
	}
	finalB, err := b.Close()
	if err != nil {
		t.Fatal(err)
	}
	if finalB == nil || len(finalB.Stream) != 1 || finalB.Stream[0].Row[0].Int() != 999 {
		t.Fatalf("last Close final delta = %+v, want the close marker", finalB)
	}
	if !d.closed {
		t.Fatal("driver not closed after last Close")
	}
	var got []int64
	for d := range b.Deltas() {
		got = append(got, streamInts(d)...)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("b's deltas = %v, want [1 2]", got)
	}
}

// TestLateAttachSnapshot: a cursor attaching after the pipeline has produced
// output receives the snapshot hand-off first — the full stream rendering
// with the original version numbers (Stream mode) or one consolidated diff
// reconstructing the snapshot (Table mode) — then lives on the shared feed.
func TestLateAttachSnapshot(t *testing.T) {
	t.Run("stream", func(t *testing.T) {
		sess, early := newTestSession(t, &echoDriver{}, live.Stream, 8, live.Block)
		for i := 0; i < 3; i++ {
			if err := sess.Ingest("s", tvr.InsertEvent(types.Time(i), intRow(int64(i)))); err != nil {
				t.Fatal(err)
			}
		}
		late, err := sess.Attach(live.CursorOpts{Buffer: 8})
		if err != nil {
			t.Fatal(err)
		}
		snap := <-late.Deltas()
		if got := streamInts(snap); len(got) != 3 || got[0] != 0 || got[2] != 2 {
			t.Fatalf("snapshot rows = %v, want [0 1 2]", got)
		}
		// Version numbers continue across the hand-off: the next delta's
		// row versions at the late cursor equal the early cursor's.
		if err := sess.Ingest("s", tvr.InsertEvent(10, intRow(10))); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			<-early.Deltas() // skip the three pre-attach deltas
		}
		de, dl := <-early.Deltas(), <-late.Deltas()
		if len(de.Stream) != 1 || len(dl.Stream) != 1 || de.Stream[0].Ver != dl.Stream[0].Ver {
			t.Fatalf("post-attach versions diverge: early %+v late %+v", de.Stream, dl.Stream)
		}
		early.Cancel()
		late.Cancel()
	})
	t.Run("table", func(t *testing.T) {
		sess, early := newTestSession(t, &echoDriver{}, live.Table, 8, live.Block)
		err := sess.IngestLog([]exec.Source{{Name: "s", Log: tvr.Changelog{
			tvr.InsertEvent(1, intRow(1)),
			tvr.InsertEvent(2, intRow(2)),
		}}})
		if err != nil {
			t.Fatal(err)
		}
		if err := sess.Ingest("s", tvr.DeleteEvent(3, intRow(1))); err != nil {
			t.Fatal(err)
		}
		late, err := sess.Attach(live.CursorOpts{Buffer: 8})
		if err != nil {
			t.Fatal(err)
		}
		snap := <-late.Deltas()
		if snap.Table == nil {
			t.Fatal("nil snapshot diff")
		}
		// Across the whole history insert(1) and delete(1) net out: the
		// snapshot hand-off is the consolidated current state, row(2).
		if len(snap.Table.Inserted) != 1 || snap.Table.Inserted[0][0].Int() != 2 || len(snap.Table.Deleted) != 0 {
			t.Fatalf("snapshot diff = %+v, want insert row(2) only", snap.Table)
		}
		if snap.Table.Ptime != 3 {
			t.Fatalf("snapshot ptime = %s, want 0:00:00.003", snap.Table.Ptime)
		}
		early.Cancel()
		late.Cancel()
	})
}

// TestSlowBlockPeerDoesNotStallOthers: with two Block cursors on one
// session, a delta is handed to every cursor with buffer space before the
// producer waits on the full one — the fast subscriber keeps receiving while
// its slow peer exerts backpressure.
func TestSlowBlockPeerDoesNotStallOthers(t *testing.T) {
	sess, slow := newTestSession(t, &echoDriver{}, live.Stream, 1, live.Block)
	fast, err := sess.Attach(live.CursorOpts{Buffer: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Delta 0 fills slow's buffer; delta 1 blocks the producer on slow.
	if err := sess.Ingest("s", tvr.InsertEvent(0, intRow(0))); err != nil {
		t.Fatal(err)
	}
	blocked := make(chan error, 1)
	go func() {
		blocked <- sess.Ingest("s", tvr.InsertEvent(1, intRow(1)))
	}()
	// The fast cursor receives delta 1 even though the producer is still
	// blocked on the slow peer.
	for i := 0; i < 2; i++ {
		select {
		case d := <-fast.Deltas():
			if got := streamInts(d); len(got) != 1 || got[0] != int64(i) {
				t.Fatalf("fast delta %d = %v", i, got)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("fast subscriber stalled behind slow peer (delta %d)", i)
		}
	}
	select {
	case err := <-blocked:
		t.Fatalf("producer returned (%v) before the slow cursor drained", err)
	default:
	}
	// Draining the slow cursor releases the producer.
	<-slow.Deltas()
	if err := <-blocked; err != nil {
		t.Fatalf("producer error = %v", err)
	}
	if got := streamInts(<-slow.Deltas()); len(got) != 1 || got[0] != 1 {
		t.Fatalf("slow delta 1 = %v", got)
	}
	slow.Cancel()
	fast.Cancel()
}

// TestCancelNotBlockedBehindSlowPeer: canceling (or closing) a healthy
// cursor must complete promptly even while the producer is parked on a
// different, slow Block-policy cursor — the park holds no cursor-state lock.
func TestCancelNotBlockedBehindSlowPeer(t *testing.T) {
	sess, slow := newTestSession(t, &echoDriver{}, live.Stream, 1, live.Block)
	healthy, err := sess.Attach(live.CursorOpts{Buffer: 16})
	if err != nil {
		t.Fatal(err)
	}
	bystander, err := sess.Attach(live.CursorOpts{Buffer: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Delta 0 fills slow's buffer; delta 1 parks the producer on slow.
	if err := sess.Ingest("s", tvr.InsertEvent(0, intRow(0))); err != nil {
		t.Fatal(err)
	}
	parked := make(chan error, 1)
	go func() {
		parked <- sess.Ingest("s", tvr.InsertEvent(1, intRow(1)))
	}()
	time.Sleep(10 * time.Millisecond) // let the producer park
	canceled := make(chan struct{})
	go func() {
		healthy.Cancel()
		close(canceled)
	}()
	closed := make(chan struct{})
	go func() {
		if _, err := bystander.Close(); err != nil {
			t.Errorf("bystander Close: %v", err)
		}
		close(closed)
	}()
	for _, wait := range []struct {
		name string
		ch   chan struct{}
	}{{"Cancel", canceled}, {"Close", closed}} {
		select {
		case <-wait.ch:
		case <-time.After(2 * time.Second):
			t.Fatalf("%s of a healthy cursor stalled behind the slow peer", wait.name)
		}
	}
	select {
	case err := <-parked:
		t.Fatalf("producer returned (%v) before the slow cursor drained", err)
	default: // still parked on slow, as it should be
	}
	<-slow.Deltas() // drain: releases the producer
	if err := <-parked; err != nil {
		t.Fatalf("producer error = %v", err)
	}
	slow.Cancel()
}

// TestPlanTableSurvivesTeardownRace: a dying shared session's deferred
// unregister must not clobber the replacement Subscribe installed under the
// same plan key — otherwise later identical subscriptions silently stop
// sharing. Stress loop: with the bug, a stale teardown deletes the live
// plans entry and the next subscribe builds a second resident pipeline.
func TestPlanTableSurvivesTeardownRace(t *testing.T) {
	m := live.NewManager()
	subscribe := func() *live.Subscription {
		t.Helper()
		sub, err := m.Subscribe("k", live.CursorOpts{Buffer: 8},
			func() (*live.Session, error) {
				return live.NewSession(&echoDriver{}, live.Config{
					Name: "k", Mode: live.Stream, Schema: testSchema(), Sources: []string{"s"},
				})
			}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return sub
	}
	for i := 0; i < 100; i++ {
		sub1 := subscribe()
		// Occupy the manager's ordering lock so the cancel's deferred
		// unregister and the replacing subscribe pile up behind it and
		// race for it on release.
		hold := make(chan struct{})
		inCommit := make(chan struct{})
		pubDone := make(chan struct{})
		go func() {
			_ = m.Publish(func() error { close(inCommit); <-hold; return nil }, "unmatched", tvr.Changelog{tvr.InsertEvent(1, intRow(1))})
			close(pubDone)
		}()
		<-inCommit
		// Queue the replacing subscribe on the manager lock first, THEN
		// cancel: the cancel closes the session without the manager lock
		// and parks its unregister behind the subscribe, which therefore
		// observes the dead session, replaces it, and only afterwards
		// does the stale unregister run — the clobber window.
		var sub2 *live.Subscription
		sub2Done := make(chan struct{})
		go func() {
			sub2 = subscribe()
			close(sub2Done)
		}()
		time.Sleep(time.Millisecond)
		cancelDone := make(chan struct{})
		go func() {
			sub1.Cancel()
			close(cancelDone)
		}()
		time.Sleep(time.Millisecond)
		close(hold)
		<-pubDone
		<-cancelDone
		<-sub2Done
		sub3 := subscribe() // must land on sub2's (live) session
		if n := m.Len(); n != 1 {
			t.Fatalf("iteration %d: %d resident sessions for one plan key, want 1 (plan table clobbered)", i, n)
		}
		if a, b := sub2.Stats().PipelineID, sub3.Stats().PipelineID; a != b {
			t.Fatalf("iteration %d: sub2 pipeline %d, sub3 pipeline %d — sharing broke", i, a, b)
		}
		sub2.Cancel()
		sub3.Cancel()
		if m.Len() != 0 {
			t.Fatalf("iteration %d: %d sessions after cancels", i, m.Len())
		}
	}
}

// TestDropOnlyDropsSlowCursor: a DropWithError cursor falling behind is
// dropped alone; the shared pipeline and its other subscribers continue.
func TestDropOnlyDropsSlowCursor(t *testing.T) {
	sess, droppy := newTestSession(t, &echoDriver{}, live.Stream, 1, live.DropWithError)
	keeper, err := sess.Attach(live.CursorOpts{Buffer: 16, Policy: live.Block})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := sess.Ingest("s", tvr.InsertEvent(types.Time(i), intRow(int64(i)))); err != nil {
			t.Fatalf("ingest %d failed: %v (drop must not kill the shared session)", i, err)
		}
	}
	if !errors.Is(droppy.Err(), live.ErrSlowConsumer) {
		t.Fatalf("dropped cursor Err = %v, want ErrSlowConsumer", droppy.Err())
	}
	if keeper.Err() != nil {
		t.Fatalf("keeper Err = %v, want nil", keeper.Err())
	}
	n := 0
	for range droppy.Deltas() { // closed after the drop; one buffered delta
		n++
	}
	if n != 1 {
		t.Fatalf("dropped cursor had %d buffered deltas, want 1", n)
	}
	got := 0
	for i := 0; i < 5; i++ {
		d := <-keeper.Deltas()
		got += len(d.Stream)
	}
	if got != 5 {
		t.Fatalf("keeper received %d rows, want all 5", got)
	}
	if st := keeper.Stats(); st.Subscribers != 1 {
		t.Fatalf("Subscribers = %d after drop, want 1", st.Subscribers)
	}
	keeper.Cancel()
}

// TestManagerRouting: Publish routes only to sessions scanning the named
// relation, in commit order, and drops dead sessions from the table.
func TestManagerRouting(t *testing.T) {
	m := live.NewManager()
	mk := func(source string) *live.Subscription {
		s, err := live.NewSession(&echoDriver{}, live.Config{
			Name: source, Mode: live.Stream, Schema: testSchema(), Sources: []string{source},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Register(s, nil); err != nil {
			t.Fatal(err)
		}
		sub, err := s.Attach(live.CursorOpts{Buffer: 64})
		if err != nil {
			t.Fatal(err)
		}
		return sub
	}
	subA := mk("a")
	subB := mk("b")
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	commits := 0
	publish := func(name string, v int64) {
		if err := m.Publish(func() error { commits++; return nil }, name,
			tvr.Changelog{tvr.InsertEvent(types.Time(v), intRow(v))}); err != nil {
			t.Fatal(err)
		}
	}
	publish("a", 1)
	publish("b", 2)
	publish("a", 3)
	if commits != 3 {
		t.Fatalf("commits = %d, want 3", commits)
	}
	readAll := func(sub *live.Subscription) []int64 {
		var out []int64
		for {
			select {
			case d := <-sub.Deltas():
				out = append(out, streamInts(d)...)
			default:
				return out
			}
		}
	}
	if got := readAll(subA); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("subA rows = %v, want [1 3]", got)
	}
	if got := readAll(subB); len(got) != 1 || got[0] != 2 {
		t.Fatalf("subB rows = %v, want [2]", got)
	}
	// A failed commit must not route.
	wantErr := errors.New("commit failed")
	if err := m.Publish(func() error { return wantErr }, "a",
		tvr.Changelog{tvr.InsertEvent(99, intRow(99))}); !errors.Is(err, wantErr) {
		t.Fatalf("publish error = %v", err)
	}
	if got := readAll(subA); len(got) != 0 {
		t.Fatalf("rows routed despite failed commit: %v", got)
	}
	// Canceling removes the session from the routing table.
	subA.Cancel()
	if m.Len() != 1 {
		t.Fatalf("Len after cancel = %d, want 1", m.Len())
	}
	publish("a", 5) // no live session for "a": commit still succeeds
	if commits != 4 {
		t.Fatalf("commits = %d, want 4", commits)
	}
	subB.Cancel()
}

// TestFanoutRegistrationOrder: Publish and Advance visit sessions in
// registration-id order, not map order — churning the registry must not
// perturb delivery order (bugfix: nondeterministic map-range fan-out).
func TestFanoutRegistrationOrder(t *testing.T) {
	m := live.NewManager()
	var got []int
	mk := func(tag int) *live.Subscription {
		d := &echoDriver{}
		d.feeds = func() { got = append(got, tag) }
		s, err := live.NewSession(d, live.Config{
			Name: "ord", Mode: live.Stream, Schema: testSchema(), Sources: []string{"s"},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Register(s, nil); err != nil {
			t.Fatal(err)
		}
		sub, err := s.Attach(live.CursorOpts{Buffer: 64})
		if err != nil {
			t.Fatal(err)
		}
		return sub
	}
	subs := make(map[int]*live.Subscription)
	for i := 0; i < 8; i++ {
		subs[i] = mk(i)
	}
	// Churn the registry so a map-range implementation would reshuffle.
	subs[2].Cancel()
	subs[5].Cancel()
	subs[8] = mk(8)
	subs[9] = mk(9)
	want := []int{0, 1, 3, 4, 6, 7, 8, 9}
	for round := 0; round < 20; round++ {
		got = got[:0]
		if err := m.Publish(func() error { return nil }, "s",
			tvr.Changelog{tvr.InsertEvent(types.Time(round), intRow(int64(round)))}); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("round %d: fed %d sessions, want %d", round, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d: fan-out order %v, want registration order %v", round, got, want)
			}
		}
	}
	for _, sub := range subs {
		sub.Cancel()
	}
}

// TestRegisterCatchesUpClock: a session registered after heartbeats have
// been broadcast is advanced to the latest processing time before it goes
// live, so pending EMIT AFTER DELAY timers fire exactly as an earlier
// registration's would (bugfix: stale clock on late-joining subscriptions).
func TestRegisterCatchesUpClock(t *testing.T) {
	m := live.NewManager()
	early := &echoDriver{}
	s1, err := live.NewSession(early, live.Config{
		Name: "early", Mode: live.Stream, Schema: testSchema(), Sources: []string{"s"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Register(s1, nil); err != nil {
		t.Fatal(err)
	}
	if len(early.advances) != 0 {
		t.Fatalf("first registration advanced to %v with no heartbeat broadcast yet", early.advances)
	}
	m.Advance(100)
	m.Advance(250)
	late := &echoDriver{}
	s2, err := live.NewSession(late, live.Config{
		Name: "late", Mode: live.Stream, Schema: testSchema(), Sources: []string{"s"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Register(s2, func() ([]exec.Source, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if len(late.advances) != 1 || late.advances[0] != 250 {
		t.Fatalf("late registration advances = %v, want [250] (catch-up to last heartbeat)", late.advances)
	}
	sub1, _ := s1.Attach(live.CursorOpts{})
	sub2, _ := s2.Attach(live.CursorOpts{})
	sub1.Cancel()
	sub2.Cancel()
}

// TestRegisterFailureCancelsSession: a registration whose history snapshot
// fails must cancel the already-started session instead of stranding its
// driver (bugfix: failed-subscribe leak). The driver-level proof with real
// partitioned worker goroutines lives in core's live tests.
func TestRegisterFailureCancelsSession(t *testing.T) {
	m := live.NewManager()
	d := &echoDriver{}
	sess, err := live.NewSession(d, live.Config{
		Name: "fail", Mode: live.Stream, Schema: testSchema(), Sources: []string{"s"},
	})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("history snapshot failed")
	if err := m.Register(sess, func() ([]exec.Source, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("Register error = %v, want %v", err, boom)
	}
	if !d.closed {
		t.Fatal("driver left running after failed registration")
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d after failed registration, want 0", m.Len())
	}
	if _, err := sess.Attach(live.CursorOpts{}); !errors.Is(err, live.ErrClosed) {
		t.Fatalf("Attach on canceled session = %v, want ErrClosed", err)
	}
}

// TestPublishBatchesOneDelta: a published changelog batch reaches each
// cursor as a single delivery, so a small DropWithError buffer survives
// large atomic appends instead of being spuriously dropped.
func TestPublishBatchesOneDelta(t *testing.T) {
	m := live.NewManager()
	s, err := live.NewSession(&echoDriver{}, live.Config{
		Name: "batch", Mode: live.Stream, Schema: testSchema(), Sources: []string{"s"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Register(s, nil); err != nil {
		t.Fatal(err)
	}
	sub, err := s.Attach(live.CursorOpts{Buffer: 1, Policy: live.DropWithError})
	if err != nil {
		t.Fatal(err)
	}
	var log tvr.Changelog
	for i := 0; i < 100; i++ {
		log = append(log, tvr.InsertEvent(types.Time(i), intRow(int64(i))))
	}
	if err := m.Publish(func() error { return nil }, "s", log); err != nil {
		t.Fatal(err)
	}
	if err := sub.Err(); err != nil {
		t.Fatalf("batch publish dropped the subscription: %v", err)
	}
	d := <-sub.Deltas()
	if len(d.Stream) != 100 {
		t.Fatalf("delta has %d rows, want the whole batch (100)", len(d.Stream))
	}
	st := sub.Stats()
	if st.DeltasOut != 1 || st.EventsIn != 100 {
		t.Fatalf("stats = %+v, want DeltasOut=1 EventsIn=100", st)
	}
	sub.Cancel()
}

// TestConcurrentIngestAndCancel: racing publishers, a consumer, and a
// midstream cancel must neither deadlock nor panic (run with -race).
func TestConcurrentIngestAndCancel(t *testing.T) {
	m := live.NewManager()
	s, err := live.NewSession(&echoDriver{}, live.Config{
		Name: "race", Mode: live.Stream, Schema: testSchema(), Sources: []string{"s"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Register(s, nil); err != nil {
		t.Fatal(err)
	}
	sub, err := s.Attach(live.CursorOpts{Buffer: 2, Policy: live.Block})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = m.Publish(func() error { return nil }, "s",
				tvr.Changelog{tvr.InsertEvent(types.Time(i), intRow(int64(i)))})
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		n := 0
		for range sub.Deltas() {
			n++
			if n == 50 {
				sub.Cancel()
			}
		}
	}()
	wg.Wait()
	if m.Len() != 0 {
		t.Fatalf("Len = %d after cancel, want 0", m.Len())
	}
}
