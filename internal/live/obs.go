package live

import (
	"repro/internal/obs"
	"repro/internal/types"
)

// liveMetrics are the manager-wide delivery counters, incremented from the
// hot path through nil-safe obs handles (a manager built without
// Options.Obs carries a nil *liveMetrics and records nothing). Gauge-style
// series (sessions, subscribers, queue depth, watermark lag) are instead
// sampled at scrape time from the manager's existing lock-free
// observability state, so a scrape never takes the ordering lock.
type liveMetrics struct {
	eventsIn  *obs.Counter
	deltasOut *obs.Counter
	rowsOut   *obs.Counter
	parks     *obs.Counter
	drops     *obs.Counter
}

// The increment helpers are nil-safe on the *liveMetrics itself so sessions
// can call them unconditionally.

func (m *liveMetrics) noteEventsIn(n int64) {
	if m == nil {
		return
	}
	m.eventsIn.Add(n)
}

func (m *liveMetrics) noteDelivered(rows int64) {
	if m == nil {
		return
	}
	m.deltasOut.Inc()
	m.rowsOut.Add(rows)
}

func (m *liveMetrics) noteParks(n int) {
	if m == nil || n == 0 {
		return
	}
	m.parks.Add(int64(n))
}

func (m *liveMetrics) noteDrops(n int) {
	if m == nil || n == 0 {
		return
	}
	m.drops.Add(int64(n))
}

// registerMetrics wires the live_* and exec_* families onto reg. Called
// once from NewManagerWith, before the manager routes anything.
func (m *Manager) registerMetrics(reg *obs.Registry) {
	m.obsm = &liveMetrics{
		eventsIn:  reg.Counter("live_events_in_total", "Source events delivered into live sessions (counted per matching session)."),
		deltasOut: reg.Counter("live_deltas_out_total", "Deltas handed to subscriber cursors."),
		rowsOut:   reg.Counter("live_rows_out_total", "Output rows handed to subscriber cursors."),
		parks:     reg.Counter("live_parks_total", "Deliveries parked on a full Block-policy cursor."),
		drops:     reg.Counter("live_dropped_subscribers_total", "Subscribers dropped with ErrSlowConsumer."),
	}
	reg.GaugeFunc("live_sessions", "Resident live pipelines.",
		func() float64 { return float64(m.Len()) })
	reg.GaugeFunc("live_subscribers", "Attached subscriber cursors.",
		func() float64 { return float64(m.Subscribers()) })
	reg.GaugeFunc("live_queue_depth", "Buffered undrained deltas across all cursors.",
		func() float64 {
			n := 0
			for _, sess := range m.snap.Load().([]*Session) {
				n += sess.queueDepth()
			}
			return float64(n)
		})
	reg.GaugeFunc("live_watermark_lag_seconds", "Worst session watermark lag behind the last committed heartbeat.",
		func() float64 {
			hb := m.seq.LastHeartbeat()
			if hb == types.MinTime {
				return 0
			}
			var worst int64
			for _, sess := range m.snap.Load().([]*Session) {
				wm := sess.wm.Load()
				if wm == int64(types.MinTime) {
					continue
				}
				if lag := int64(hb) - wm; lag > worst {
					worst = lag
				}
			}
			// types.Time is milliseconds.
			return float64(worst) / 1e3
		})
	reg.CounterFunc("exec_dispatches_total", "Driver dispatches across resident pipelines.",
		func() float64 {
			var n int64
			for _, sess := range m.snap.Load().([]*Session) {
				n += sess.dispatches.Load()
			}
			return float64(n)
		})
	reg.CounterFunc("exec_dispatched_events_total", "Events pushed through driver dispatches across resident pipelines.",
		func() float64 {
			var n int64
			for _, sess := range m.snap.Load().([]*Session) {
				n += sess.dispatchedEvents.Load()
			}
			return float64(n)
		})
}

// queueDepth sums the buffered, undrained deltas across this session's
// cursors. Takes s.mu briefly (never held across a park), so it is safe
// from a scrape goroutine that holds no other lock.
func (s *Session) queueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, c := range s.cursors {
		n += len(c.deltas)
	}
	return n
}

// setObs hands the session the manager's delivery counters. Called under
// the manager's ordering lock before the session is routed to, so the
// write happens-before any hot-path read.
func (s *Session) setObs(m *liveMetrics) { s.obsm = m }
