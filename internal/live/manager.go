package live

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/exec"
	"repro/internal/tvr"
	"repro/internal/types"
)

// Manager is the routing half of the standing-query subsystem: a registry of
// live sessions keyed by the relations they scan, plus the shared-plan table
// that dedupes identical subscriptions onto one resident pipeline. The
// owning engine funnels every catalog mutation through Publish, which
// serializes the commit and the fan-out under one ordering lock so all
// sessions observe changes in the same global order they entered the
// catalog — the property that makes a standing subscription's delta sequence
// equal a post-hoc replay. Fan-out across sessions runs in registration-id
// order, so delivery (and therefore Block-policy stall behavior and cursor
// attach interleaving) is reproducible run to run.
//
// Lock order is Manager.mu -> engine catalog lock -> Session.mu; nothing may
// take them in reverse. A delivery blocked on a slow Block-policy subscriber
// holds Manager.mu and that session's mu — never the engine catalog lock —
// so concurrent reads and queries against the engine proceed (as do the
// lock-free Stats/Err accessors), while further ingestion waits: that is the
// backpressure.
type Manager struct {
	mu     sync.Mutex
	nextID int
	subs   map[int]*Session
	order  []int               // registration ids, ascending — the fan-out order
	plans  map[string]*Session // shared-plan table: plan key -> resident session
	keys   map[int]string      // registration id -> plan key (for cleanup)
	// lastPt is the latest processing time broadcast via Advance. A
	// session registered afterwards is caught up to it before going live,
	// so its EMIT AFTER DELAY timers fire exactly as an identical session
	// registered earlier would have.
	lastPt types.Time

	count atomic.Int64 // len(subs), readable without m.mu
	snap  atomic.Value // []*Session, for lock-free Subscribers()
}

// NewManager creates an empty registry.
func NewManager() *Manager {
	m := &Manager{
		subs:   make(map[int]*Session),
		plans:  make(map[string]*Session),
		keys:   make(map[int]string),
		lastPt: types.MinTime,
	}
	m.snap.Store([]*Session{})
	return m
}

// Subscribe is the shared-plan entry point. When key is non-empty and a
// resident session for it exists, the new subscriber attaches to it as an
// extra cursor — no second pipeline is compiled or fed. Otherwise create
// builds a fresh session, which is registered (history replay plus
// processing-time catch-up, all under the ordering lock so no concurrently
// published change can slip into the gap) and recorded under key. An empty
// key always creates a dedicated session. Any failure on the create path
// cancels the session so a started driver can never leak.
func (m *Manager) Subscribe(key string, opts CursorOpts, create func() (*Session, error), history func() ([]exec.Source, error)) (*Subscription, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if key != "" {
		if sess := m.plans[key]; sess != nil {
			sub, err := sess.Attach(opts)
			if err == nil {
				return sub, nil
			}
			if errors.Is(err, ErrRetainedOverflow) {
				// The resident session is alive but shed its retained
				// output at the configured cap, so it cannot hand a
				// late subscriber the snapshot. Surfacing the error
				// (rather than silently compiling a shadow pipeline
				// for the same plan) keeps both memory and pipeline
				// count bounded; the caller can subscribe Exclusive,
				// which replays recorded history instead.
				return nil, err
			}
			// The resident session died concurrently (its last cursor
			// departed between our lookup and the attach); fall
			// through and build a replacement.
			delete(m.plans, key)
		}
	}
	sess, err := create()
	if err != nil {
		return nil, err
	}
	id, err := m.registerLocked(sess, history)
	if err != nil {
		sess.cancel()
		return nil, err
	}
	sub, err := sess.Attach(opts)
	if err != nil {
		m.removeLocked(id)
		sess.teardownOnce.Do(func() {}) // already unregistered; neutralize the hook
		sess.cancel()
		return nil, err
	}
	if key != "" {
		m.plans[key] = sess
		m.keys[id] = key
	} else {
		// A dedicated session can never see a late attach, so retaining
		// its output changelog for snapshot hand-off would be dead
		// weight; its only subscriber already got the history delta.
		sess.DropRetainedOutput()
	}
	return sub, nil
}

// Register adds a session to the routing table (outside the shared-plan
// table; Subscribe is the deduping entry point). When history is non-nil it
// runs first — under the ordering lock, so no concurrently published change
// can slip between the snapshot it returns and the start of live routing —
// and its batch is replayed through the session before registration; the
// session is then caught up to the latest broadcast processing time. The
// session's teardown hook is set to unregister it. On any error the session
// is canceled, so its started driver (and a partitioned pipeline's worker
// goroutines) cannot leak.
func (m *Manager) Register(sess *Session, history func() ([]exec.Source, error)) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, err := m.registerLocked(sess, history); err != nil {
		sess.cancel()
		return err
	}
	return nil
}

func (m *Manager) registerLocked(sess *Session, history func() ([]exec.Source, error)) (int, error) {
	if history != nil {
		batch, err := history()
		if err != nil {
			return 0, err
		}
		if err := sess.IngestLog(batch); err != nil {
			return 0, err
		}
	}
	// Catch the new pipeline's processing-time clock up to the last
	// heartbeat, after the history replay: delay timers the replayed
	// events armed that are already due must fire now, not at the next
	// broadcast, or the late joiner's emissions would coalesce
	// differently than an early subscriber's.
	if m.lastPt > types.MinTime {
		if err := sess.Advance(m.lastPt); err != nil {
			return 0, err
		}
	}
	id := m.nextID
	m.nextID++
	m.subs[id] = sess
	m.order = append(m.order, id) // nextID is monotonic: stays sorted
	m.refreshLocked()
	sess.setID(id)
	sess.SetTeardown(func() { m.unregister(id) })
	return id, nil
}

func (m *Manager) unregister(id int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.removeLocked(id)
}

func (m *Manager) removeLocked(id int) {
	sess, ok := m.subs[id]
	if !ok {
		return
	}
	delete(m.subs, id)
	for i, oid := range m.order {
		if oid == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	if key, ok := m.keys[id]; ok {
		delete(m.keys, id)
		// Only drop the shared-plan entry while it still points at this
		// session: a dying session's deferred teardown must not clobber
		// the replacement that Subscribe installed under the same key.
		if m.plans[key] == sess {
			delete(m.plans, key)
		}
	}
	m.refreshLocked()
}

// refreshLocked rebuilds the lock-free observability state.
func (m *Manager) refreshLocked() {
	m.count.Store(int64(len(m.subs)))
	sessions := make([]*Session, 0, len(m.order))
	for _, id := range m.order {
		sessions = append(sessions, m.subs[id])
	}
	m.snap.Store(sessions)
}

// Publish atomically commits an engine-side change and routes the resulting
// events to every session scanning the named relation, in registration-id
// order. Each session receives the whole batch in one delivery (one delta
// per attached cursor, one partitioned round) rather than per-event. A
// session that refuses the batch (canceled, every cursor dropped, or
// failed) is removed from the routing table; its subscribers learn why from
// Subscription.Err.
func (m *Manager) Publish(commit func() error, name string, evs []tvr.Event) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := commit(); err != nil {
		return err
	}
	if len(evs) == 0 {
		return nil
	}
	batch := []exec.Source{{Name: name, Log: evs}}
	for _, id := range append([]int(nil), m.order...) {
		sess := m.subs[id]
		if sess == nil || !sess.Matches(name) {
			continue
		}
		if err := sess.IngestLog(batch); err != nil {
			m.removeLocked(id)
		}
	}
	return nil
}

// Advance broadcasts a processing-time heartbeat to every session in
// registration-id order, firing due EMIT AFTER DELAY timers across all
// standing queries, and records pt so later-registered sessions start from
// the same clock.
func (m *Manager) Advance(pt types.Time) {
	m.AdvanceWith(pt, nil) // never errors with a nil commit
}

// AdvanceWith is Advance with a commit hook run under the ordering lock
// before any session sees the heartbeat — the same commit-before-fan-out
// shape as Publish. The engine uses it to append the heartbeat to its
// write-ahead log in exactly the global order sessions observe it; a commit
// failure suppresses the broadcast entirely, so the log never misses a
// heartbeat that fired a timer.
func (m *Manager) AdvanceWith(pt types.Time, commit func() error) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if commit != nil {
		if err := commit(); err != nil {
			return err
		}
	}
	if pt > m.lastPt {
		m.lastPt = pt
	}
	for _, id := range append([]int(nil), m.order...) {
		sess := m.subs[id]
		if sess == nil {
			continue
		}
		if err := sess.Advance(pt); err != nil {
			m.removeLocked(id)
		}
	}
	return nil
}

// Len reports the number of resident pipelines without taking the routing
// lock, so liveness probes stay responsive during a blocked delivery.
func (m *Manager) Len() int {
	return int(m.count.Load())
}

// Subscribers reports the total number of attached subscriber cursors
// across all resident pipelines. Like Len it takes no locks.
func (m *Manager) Subscribers() int {
	n := 0
	for _, sess := range m.snap.Load().([]*Session) {
		n += sess.Subscribers()
	}
	return n
}
