package live

import (
	"sync"
	"sync/atomic"

	"repro/internal/exec"
	"repro/internal/tvr"
	"repro/internal/types"
)

// Manager is the routing half of the standing-query subsystem: a registry of
// live sessions keyed by the relations they scan. The owning engine funnels
// every catalog mutation through Publish, which serializes the commit and
// the fan-out under one ordering lock so all sessions observe changes in the
// same global order they entered the catalog — the property that makes a
// standing subscription's delta sequence equal a post-hoc replay.
//
// Lock order is Manager.mu -> engine catalog lock -> Session.mu; nothing may
// take them in reverse. A delivery blocked on a slow Block-policy subscriber
// holds Manager.mu and that session's mu — never the engine catalog lock —
// so concurrent reads and queries against the engine proceed (as do the
// lock-free Stats/Err accessors), while further ingestion waits: that is the
// backpressure.
type Manager struct {
	mu     sync.Mutex
	nextID int
	subs   map[int]*Session
	count  atomic.Int64 // len(subs), readable without m.mu
}

// NewManager creates an empty registry.
func NewManager() *Manager {
	return &Manager{subs: make(map[int]*Session)}
}

// Register adds a session to the routing table. When history is non-nil it
// runs first — under the ordering lock, so no concurrently published change
// can slip between the snapshot it returns and the start of live routing —
// and its batch is replayed through the session before registration. The
// session's teardown hook is set to unregister it.
func (m *Manager) Register(sess *Session, history func() ([]exec.Source, error)) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if history != nil {
		batch, err := history()
		if err != nil {
			return err
		}
		if err := sess.IngestLog(batch); err != nil {
			return err
		}
	}
	id := m.nextID
	m.nextID++
	m.subs[id] = sess
	m.count.Store(int64(len(m.subs)))
	sess.SetTeardown(func() { m.unregister(id) })
	return nil
}

func (m *Manager) unregister(id int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.removeLocked(id)
}

func (m *Manager) removeLocked(id int) {
	delete(m.subs, id)
	m.count.Store(int64(len(m.subs)))
}

// Publish atomically commits an engine-side change and routes the resulting
// events to every session scanning the named relation. Each session receives
// the whole batch in one delivery (one delta, one partitioned round) rather
// than per-event. A session that refuses the batch (canceled, dropped, or
// failed) is removed from the routing table; its subscriber learns why from
// Subscription.Err.
func (m *Manager) Publish(commit func() error, name string, evs []tvr.Event) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := commit(); err != nil {
		return err
	}
	if len(evs) == 0 {
		return nil
	}
	batch := []exec.Source{{Name: name, Log: evs}}
	for id, sess := range m.subs {
		if !sess.Matches(name) {
			continue
		}
		if err := sess.IngestLog(batch); err != nil {
			m.removeLocked(id)
		}
	}
	return nil
}

// Advance broadcasts a processing-time heartbeat to every session, firing
// due EMIT AFTER DELAY timers across all standing queries.
func (m *Manager) Advance(pt types.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for id, sess := range m.subs {
		if err := sess.Advance(pt); err != nil {
			m.removeLocked(id)
		}
	}
}

// Len reports the number of live sessions without taking the routing lock,
// so liveness probes stay responsive during a blocked delivery.
func (m *Manager) Len() int {
	return int(m.count.Load())
}
