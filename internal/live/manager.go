package live

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/tvr"
	"repro/internal/types"
)

// Manager is the routing half of the standing-query subsystem: a registry of
// live sessions keyed by the relations they scan, plus the shared-plan table
// that dedupes identical subscriptions onto one resident pipeline. The
// owning engine funnels every catalog mutation through Publish, which
// serializes the commit under one ordering lock so all sessions observe
// changes in the same global order they entered the catalog — the property
// that makes a standing subscription's delta sequence equal a post-hoc
// replay.
//
// Fan-out runs in one of two modes. The default (serial) mode feeds every
// matching session on the committing goroutine, inside the critical section,
// in registration-id order. With Options.Shards > 0 the manager instead runs
// the sharded ingest subsystem (internal/shard): the commit acquires a
// global sequence number from the sequencer and enqueues one task per
// affected shard while still inside the critical section, and each shard's
// single worker applies its tasks in FIFO — therefore global commit — order.
// Every session lives on exactly one shard (hash of its registration id,
// never rebalanced) and is only ever fed by that shard's worker, so its
// delivery order is identical to the serial mode's; a Block-policy
// subscriber that stops draining stalls only its own shard, and a full
// shard queue blocks the publisher — backpressure reaches the committer
// either way, just with a bounded amount of slack.
//
// Lock order is Manager.mu -> engine catalog lock -> Session.mu; nothing may
// take them in reverse. Shard workers take only session locks (ingestMu,
// then mu) — never Manager.mu — so a publisher blocked on a full shard
// queue while holding Manager.mu cannot deadlock against its own workers; a
// worker that must unregister a dead session defers that to a fresh
// goroutine. Drain barriers (attach, checkpoint, Quiesce, a cursor's
// graceful close) wait on shard queue watermarks without holding locks the
// workers need. Concurrent reads and queries against the engine proceed
// during a stalled delivery (as do the lock-free Stats/Err accessors);
// further ingestion waits: that is the backpressure.
type Manager struct {
	mu     sync.Mutex
	nextID int
	subs   map[int]*Session
	order  []int               // registration ids, ascending — the fan-out order
	plans  map[string]*Session // shared-plan table: plan key -> resident session
	keys   map[int]string      // registration id -> plan key (for cleanup)

	// seq is the global commit sequencer. Its sequence counter and
	// last-heartbeat clock advance only inside the m.mu commit critical
	// section, making it the authoritative ordering-path state a
	// registration's catch-up reads (see registerLocked) — its reads are
	// atomic, so they cannot race the asynchronous shard application of
	// the same heartbeats.
	seq *shard.Sequencer
	// pool is the shard worker pool; nil in serial mode.
	pool *shard.Pool

	count atomic.Int64 // len(subs), readable without m.mu
	snap  atomic.Value // []*Session, for lock-free Subscribers()

	// obsm holds the manager-wide delivery counters (nil without
	// Options.Obs; see obs.go). Sessions receive the same pointer at
	// registration so hot-path increments need no indirection through m.
	obsm *liveMetrics
}

// Options configures a Manager.
type Options struct {
	// Shards > 0 enables the sharded ingest subsystem with that many shard
	// workers; 0 keeps the serial fan-out (every delivery on the
	// committing goroutine).
	Shards int
	// QueueDepth bounds each shard's ingest queue
	// (shard.DefaultQueueDepth when 0). A publisher blocks once a shard's
	// queue is full.
	QueueDepth int
	// Obs, when non-nil, registers the live_*, exec_*, and shard_* metric
	// families on the given registry and enables the hot-path delivery
	// counters. Nil costs nothing beyond nil checks.
	Obs *obs.Registry
}

// NewManager creates an empty registry with the serial fan-out.
func NewManager() *Manager {
	return NewManagerWith(Options{})
}

// NewManagerWith creates an empty registry with the given fan-out options.
func NewManagerWith(o Options) *Manager {
	m := &Manager{
		subs:  make(map[int]*Session),
		plans: make(map[string]*Session),
		keys:  make(map[int]string),
		seq:   shard.NewSequencer(),
	}
	if o.Shards > 0 {
		m.pool = shard.NewPoolObs(o.Shards, o.QueueDepth, o.Obs)
	}
	m.snap.Store([]*Session{})
	if o.Obs != nil {
		m.registerMetrics(o.Obs)
	}
	return m
}

// Shards reports the number of shard workers (0 = serial fan-out).
func (m *Manager) Shards() int {
	if m.pool == nil {
		return 0
	}
	return m.pool.Shards()
}

// Subscribe is the shared-plan entry point. When key is non-empty and a
// resident session for it exists, the new subscriber attaches to it as an
// extra cursor — no second pipeline is compiled or fed. Otherwise create
// builds a fresh session, which is registered (history replay plus
// processing-time catch-up, all under the ordering lock so no concurrently
// published change can slip into the gap) and recorded under key. An empty
// key always creates a dedicated session. Any failure on the create path
// cancels the session so a started driver can never leak.
func (m *Manager) Subscribe(key string, opts CursorOpts, create func() (*Session, error), history func() ([]exec.Source, error)) (*Subscription, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if key != "" {
		if sess := m.plans[key]; sess != nil {
			// Attach barrier: the snapshot hand-off must reflect every
			// commit acknowledged so far, so drain the session's shard to
			// the current sequence point first. New commits cannot slip
			// in — we hold the ordering lock.
			m.drainSessionLocked(sess)
			sub, err := sess.Attach(opts)
			if err == nil {
				return sub, nil
			}
			if errors.Is(err, ErrRetainedOverflow) {
				// The resident session is alive but shed its retained
				// output at the configured cap, so it cannot hand a
				// late subscriber the snapshot. Surfacing the error
				// (rather than silently compiling a shadow pipeline
				// for the same plan) keeps both memory and pipeline
				// count bounded; the caller can subscribe Exclusive,
				// which replays recorded history instead.
				return nil, err
			}
			// The resident session died concurrently (its last cursor
			// departed between our lookup and the attach); fall
			// through and build a replacement.
			delete(m.plans, key)
		}
	}
	sess, err := create()
	if err != nil {
		return nil, err
	}
	id, err := m.registerLocked(sess, history)
	if err != nil {
		sess.cancel()
		return nil, err
	}
	sub, err := sess.Attach(opts)
	if err != nil {
		m.removeLocked(id)
		sess.teardownOnce.Do(func() {}) // already unregistered; neutralize the hook
		sess.cancel()
		return nil, err
	}
	if key != "" {
		m.plans[key] = sess
		m.keys[id] = key
	} else {
		// A dedicated session can never see a late attach, so retaining
		// its output changelog for snapshot hand-off would be dead
		// weight; its only subscriber already got the history delta.
		sess.DropRetainedOutput()
	}
	return sub, nil
}

// Register adds a session to the routing table (outside the shared-plan
// table; Subscribe is the deduping entry point). When history is non-nil it
// runs first — under the ordering lock, so no concurrently published change
// can slip between the snapshot it returns and the start of live routing —
// and its batch is replayed through the session before registration; the
// session is then caught up to the latest broadcast processing time. The
// session's teardown hook is set to unregister it. On any error the session
// is canceled, so its started driver (and a partitioned pipeline's worker
// goroutines) cannot leak.
func (m *Manager) Register(sess *Session, history func() ([]exec.Source, error)) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, err := m.registerLocked(sess, history); err != nil {
		sess.cancel()
		return err
	}
	return nil
}

func (m *Manager) registerLocked(sess *Session, history func() ([]exec.Source, error)) (int, error) {
	// Hand the session the delivery counters before the history replay so
	// the replayed batch is counted like any live delivery.
	sess.setObs(m.obsm)
	if history != nil {
		batch, err := history()
		if err != nil {
			return 0, err
		}
		if err := sess.IngestLog(batch); err != nil {
			return 0, err
		}
	}
	// Catch the new pipeline's processing-time clock up to the last
	// committed heartbeat, after the history replay: delay timers the
	// replayed events armed that are already due must fire now, not at the
	// next broadcast, or the late joiner's emissions would coalesce
	// differently than an early subscriber's. The clock comes from the
	// sequencer — ordering-path state advanced under this same lock at
	// commit time — never from what the shard workers have applied so
	// far, which lags it.
	if pt := m.seq.LastHeartbeat(); pt > types.MinTime {
		if err := sess.Advance(pt); err != nil {
			return 0, err
		}
	}
	id := m.nextID
	m.nextID++
	m.installLocked(id, sess)
	return id, nil
}

// installLocked wires a session into the routing table under the given id:
// fan-out order, teardown hook, and — in sharded mode — its permanent shard
// placement and the drain hook a graceful cursor close uses as its barrier.
func (m *Manager) installLocked(id int, sess *Session) {
	m.subs[id] = sess
	m.order = append(m.order, id) // nextID is monotonic: stays sorted
	m.refreshLocked()
	sess.setID(id)
	sess.SetTeardown(func() { m.unregister(id) })
	if m.pool != nil {
		sh := m.pool.ShardOf(id)
		sess.setShard(sh)
		sess.setDrain(func() { m.pool.DrainShard(sh) })
	}
}

// drainSessionLocked waits until the session's shard has applied every task
// enqueued so far. Serial mode needs no barrier — fan-out is synchronous.
// Caller holds m.mu, which the workers never take.
func (m *Manager) drainSessionLocked(sess *Session) {
	if m.pool != nil {
		m.pool.DrainShard(sess.shardIndex())
	}
}

func (m *Manager) unregister(id int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.removeLocked(id)
}

func (m *Manager) removeLocked(id int) {
	sess, ok := m.subs[id]
	if !ok {
		return
	}
	delete(m.subs, id)
	for i, oid := range m.order {
		if oid == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	if key, ok := m.keys[id]; ok {
		delete(m.keys, id)
		// Only drop the shared-plan entry while it still points at this
		// session: a dying session's deferred teardown must not clobber
		// the replacement that Subscribe installed under the same key.
		if m.plans[key] == sess {
			delete(m.plans, key)
		}
	}
	m.refreshLocked()
}

// refreshLocked rebuilds the lock-free observability state.
func (m *Manager) refreshLocked() {
	m.count.Store(int64(len(m.subs)))
	sessions := make([]*Session, 0, len(m.order))
	for _, id := range m.order {
		sessions = append(sessions, m.subs[id])
	}
	m.snap.Store(sessions)
}

// Publish atomically commits an engine-side change and routes the resulting
// events to every session scanning the named relation. The commit (and, in
// sharded mode, the sequence-number acquisition and per-shard enqueues)
// happens under the ordering lock; the deliveries themselves run on the
// committing goroutine in serial mode or on the shard workers otherwise.
// Each session receives the whole batch in one delivery (one delta per
// attached cursor, one partitioned round) rather than per-event. A session
// that refuses the batch (canceled, every cursor dropped, or failed) is
// removed from the routing table; its subscribers learn why from
// Subscription.Err.
func (m *Manager) Publish(commit func() error, name string, evs []tvr.Event) error {
	return m.PublishSpan(commit, name, evs, nil)
}

// PublishSpan is Publish carrying a commit-path span. The span's sequence
// and enqueue stages are timed here; validate/WAL happen inside commit (the
// engine times them before handing the span over) and apply/render/deliver
// inside each session. The publisher releases its span reference before
// returning; in sharded mode the span finalizes — recording histograms and
// possibly emitting the slow-commit log — when the last shard task
// finishes. A nil span is a no-op on every path.
func (m *Manager) PublishSpan(commit func() error, name string, evs []tvr.Event, span *obs.CommitSpan) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	defer span.Finish()
	if err := commit(); err != nil {
		span.Discard()
		return err
	}
	tSeq := time.Time{}
	if span != nil {
		tSeq = time.Now()
	}
	seq := m.seq.Next()
	span.SetSeq(seq)
	if len(evs) == 0 {
		span.AddSince(obs.SpanSequence, tSeq)
		return nil
	}
	batch := []exec.Source{{Name: name, Log: evs}}
	if m.pool == nil {
		span.AddSince(obs.SpanSequence, tSeq)
		for _, id := range append([]int(nil), m.order...) {
			sess := m.subs[id]
			if sess == nil || !sess.Matches(name) {
				continue
			}
			if err := safeApply(sess, func(s *Session) error { return s.ingestLog(batch, span) }); err != nil {
				m.removeLocked(id)
			}
		}
		return nil
	}
	span.AddSince(obs.SpanSequence, tSeq)
	m.fanOutLocked(seq, span, func(sess *Session) bool { return sess.Matches(name) },
		func(sess *Session) error { return sess.ingestLog(batch, span) })
	return nil
}

// Advance broadcasts a processing-time heartbeat to every session, firing
// due EMIT AFTER DELAY timers across all standing queries, and records pt in
// the sequencer so later-registered sessions start from the same clock.
func (m *Manager) Advance(pt types.Time) {
	m.AdvanceWith(pt, nil) // never errors with a nil commit
}

// AdvanceWith is Advance with a commit hook run under the ordering lock
// before any session sees the heartbeat — the same commit-before-fan-out
// shape as Publish. The engine uses it to append the heartbeat to its
// write-ahead log in exactly the global order sessions observe it; a commit
// failure suppresses the broadcast entirely, so the log never misses a
// heartbeat that fired a timer.
func (m *Manager) AdvanceWith(pt types.Time, commit func() error) error {
	return m.AdvanceWithSpan(pt, commit, nil)
}

// AdvanceWithSpan is AdvanceWith carrying a commit-path span (see
// PublishSpan for the stage ownership).
func (m *Manager) AdvanceWithSpan(pt types.Time, commit func() error, span *obs.CommitSpan) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	defer span.Finish()
	if commit != nil {
		if err := commit(); err != nil {
			span.Discard()
			return err
		}
	}
	tSeq := time.Time{}
	if span != nil {
		tSeq = time.Now()
	}
	seq := m.seq.Next()
	m.seq.RecordHeartbeat(pt)
	span.SetSeq(seq)
	span.AddSince(obs.SpanSequence, tSeq)
	if m.pool == nil {
		for _, id := range append([]int(nil), m.order...) {
			sess := m.subs[id]
			if sess == nil {
				continue
			}
			if err := safeApply(sess, func(s *Session) error { return s.advance(pt, span) }); err != nil {
				m.removeLocked(id)
			}
		}
		return nil
	}
	m.fanOutLocked(seq, span, func(*Session) bool { return true },
		func(sess *Session) error { return sess.advance(pt, span) })
	return nil
}

// fanOutLocked groups the matching sessions by shard and enqueues one task
// per affected shard, in ascending shard order, all under m.mu — so every
// shard's FIFO queue carries commits in global sequence order. The task
// feeds the shard's sessions in registration-id order (the groups preserve
// m.order). A session that refuses its delivery is torn down from a fresh
// goroutine: the worker itself must never take m.mu, which a publisher
// blocked on a full shard queue may hold.
func (m *Manager) fanOutLocked(seq uint64, span *obs.CommitSpan, match func(*Session) bool, apply func(*Session) error) {
	groups := make([][]*Session, m.pool.Shards())
	any := false
	nGroups := 0
	for _, id := range m.order {
		sess := m.subs[id]
		if sess == nil || !match(sess) {
			continue
		}
		sh := m.pool.ShardOf(id)
		if len(groups[sh]) == 0 {
			nGroups++
		}
		groups[sh] = append(groups[sh], sess)
		any = true
	}
	if !any {
		return
	}
	// Each shard task holds one span reference; the publisher's own
	// reference (released by PublishSpan/AdvanceWithSpan) keeps the span
	// open until every task is enqueued, so the span finalizes on whichever
	// worker finishes last.
	span.Fork(nGroups)
	tEnq := time.Time{}
	if span != nil {
		tEnq = time.Now()
	}
	for sh, sessions := range groups {
		if len(sessions) == 0 {
			continue
		}
		sessions := sessions
		m.pool.Enqueue(sh, seq, func() {
			defer span.Finish()
			for _, sess := range sessions {
				if err := safeApply(sess, apply); err != nil {
					// The session refused the delivery (canceled,
					// dropped, or failed): unregister it without
					// blocking this worker on the manager lock.
					go sess.runTeardown()
				}
			}
		})
	}
	// Includes any time the publisher spent blocked on a full shard queue —
	// the backpressure signal the enqueue stage exists to expose.
	span.AddSince(obs.SpanEnqueue, tEnq)
}

// safeApply is the fan-out's last-resort panic boundary. An operator panic
// is already converted into the session's terminal error inside the
// session (see Session.feedDriver); this catches anything that escapes the
// delivery path so it fails the one session it came from instead of
// unwinding the committing goroutine or a shard worker and killing the
// process. Disjoint sessions on the same shard keep their deliveries.
func safeApply(sess *Session, apply func(*Session) error) (err error) {
	defer func() {
		if perr := exec.CapturePanic(recover()); perr != nil {
			sess.setErr(perr)
			err = perr
		}
	}()
	return apply(sess)
}

// Quiesce blocks until every commit acknowledged before the call has been
// applied by its shard worker — the read-your-writes barrier for one-shot
// queries and checkpoints. Lock-free (it waits on per-shard queue
// watermarks captured at call time); an immediate no-op in serial mode.
func (m *Manager) Quiesce() {
	if m.pool != nil {
		m.pool.Drain()
	}
}

// Close drains and stops the shard workers. Call only after all publishing
// has stopped; live subscriptions are not canceled. A no-op in serial mode,
// idempotent otherwise.
func (m *Manager) Close() {
	if m.pool != nil {
		m.pool.Close()
	}
}

// ShardStats snapshots every shard's queue depth and lag (nil in serial
// mode). Lock-free, so health probes stay responsive while a shard is
// stalled on a Block-policy subscriber.
func (m *Manager) ShardStats() []shard.Stat {
	if m.pool == nil {
		return nil
	}
	return m.pool.Stats()
}

// Len reports the number of resident pipelines without taking the routing
// lock, so liveness probes stay responsive during a blocked delivery.
func (m *Manager) Len() int {
	return int(m.count.Load())
}

// Subscribers reports the total number of attached subscriber cursors
// across all resident pipelines. Like Len it takes no locks.
func (m *Manager) Subscribers() int {
	n := 0
	for _, sess := range m.snap.Load().([]*Session) {
		n += sess.Subscribers()
	}
	return n
}
