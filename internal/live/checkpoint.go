package live

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/checkpoint"
	"repro/internal/exec"
	"repro/internal/tvr"
	"repro/internal/types"
)

// Durable checkpoint/restore for the standing-query subsystem. A checkpoint
// captures every *shareable* resident session — the driver's full operator
// state plus the session's rendering state (stream-version counters, the
// retained output used for late-attach hand-offs) — under the manager's
// ordering lock, so the snapshot is consistent with a single commit point:
// no published change can be half-applied across sessions or fall between
// the catalog (serialized by the owning engine through the extra callback)
// and the pipelines.
//
// Exclusive sessions are deliberately NOT checkpointed: their only
// subscriber is a live connection that does not survive the process, they
// retain no output for late attach, and a restored copy could never be
// attached to again — it would be a leak, not a recovery.
//
// A restored session is resident with zero cursors, exactly like a session
// between registration and its first Attach: subscribers that reconnect
// attach to it and receive the snapshot hand-off synthesized from the
// restored retained output — byte-identical to what a dedicated subscription
// opened at the same instant would replay — with no history rescan.

// ParseMode converts a Mode.String() value back to the Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "stream":
		return Stream, nil
	case "table":
		return Table, nil
	default:
		return 0, fmt.Errorf("live: unknown mode %q in checkpoint", s)
	}
}

// RestoreDriver rebuilds a checkpointed session's execution state: it plans
// sql, restores the driver from the decoder (exec.LoadDriver), and returns
// the driver plus the session Config derived from the plan. The engine layer
// supplies it, because only the engine can resolve SQL against the catalog.
type RestoreDriver func(sql string, mode Mode, dec *checkpoint.Decoder) (exec.Driver, Config, error)

// saveStateLocked writes one session. Caller holds ingestMu and mu (the
// manager's checkpoint pass locks every open session first), and the session
// is not closed.
func (s *Session) saveStateLocked(enc *checkpoint.Encoder) error {
	enc.Section("live.Session")
	enc.String(s.cfg.Name)
	enc.String(s.cfg.Mode.String())
	enc.Int(s.cfg.MaxRetainedRows)
	enc.Varint(s.eventsIn.Load())
	enc.Time(types.Time(s.wm.Load()))
	enc.Bool(s.produced)
	enc.Bool(s.noRetain)
	enc.Bool(s.overflowed)
	if err := exec.SaveDriver(enc, s.driver); err != nil {
		return err
	}
	s.renderer.SaveState(enc)
	if s.cfg.Mode == Table {
		enc.Bool(s.tableSnap != nil)
		if s.tableSnap != nil {
			s.tableSnap.saveState(enc)
		}
	} else {
		tvr.SaveChangelog(enc, s.outLog)
	}
	return enc.Err()
}

// restoreSession reads one session written by saveStateLocked, rebuilding
// the driver through the engine-supplied callback.
func restoreSession(dec *checkpoint.Decoder, restore RestoreDriver) (*Session, error) {
	if err := dec.Expect("live.Session"); err != nil {
		return nil, err
	}
	sql := dec.String()
	modeStr := dec.String()
	maxRetain := dec.Int()
	eventsIn := dec.Varint()
	wm := dec.Time()
	produced := dec.Bool()
	noRetain := dec.Bool()
	overflowed := dec.Bool()
	if err := dec.Err(); err != nil {
		return nil, err
	}
	mode, err := ParseMode(modeStr)
	if err != nil {
		return nil, err
	}
	d, cfg, err := restore(sql, mode, dec)
	if err != nil {
		return nil, err
	}
	cfg.Name = sql
	cfg.Mode = mode
	cfg.MaxRetainedRows = maxRetain
	s := &Session{
		cfg:        cfg,
		driver:     d,
		renderer:   tvr.NewStreamRenderer(cfg.EmitKeys),
		sources:    make(map[string]bool, len(cfg.Sources)),
		partitions: d.Stats().Partitions,
		produced:   produced,
		noRetain:   noRetain,
		overflowed: overflowed,
	}
	s.parkCond = sync.NewCond(&s.mu)
	s.shard.Store(-1)
	s.wm.Store(int64(wm))
	s.eventsIn.Store(eventsIn)
	for _, name := range cfg.Sources {
		s.sources[strings.ToLower(name)] = true
	}
	if err := s.renderer.LoadState(dec); err != nil {
		return nil, err
	}
	if mode == Table {
		if dec.Bool() {
			s.tableSnap = newTableAcc()
			if err := s.tableSnap.loadState(dec); err != nil {
				return nil, err
			}
		}
	} else {
		log, err := tvr.LoadChangelog(dec)
		if err != nil {
			return nil, err
		}
		s.outLog = log
	}
	return s, dec.Err()
}

// saveState writes the table accumulator in its first-appearance order (the
// order its diffs render in — part of the byte-identical contract).
func (a *tableAcc) saveState(enc *checkpoint.Encoder) {
	enc.Section("live.tableAcc")
	enc.Time(a.ptime)
	enc.Uvarint(uint64(len(a.order)))
	for _, k := range a.order {
		r := a.counts[k]
		enc.Row(r.row)
		enc.Int(r.n)
	}
}

// loadState rebuilds the accumulator; the map keys are re-derived from the
// rows.
func (a *tableAcc) loadState(dec *checkpoint.Decoder) error {
	if err := dec.Expect("live.tableAcc"); err != nil {
		return err
	}
	a.ptime = dec.Time()
	n := int(dec.Uvarint())
	for i := 0; i < n; i++ {
		row := dec.Row()
		rn := dec.Int()
		if err := dec.Err(); err != nil {
			return err
		}
		k := row.Key()
		a.counts[k] = &rowAcc{row: row, n: rn}
		a.order = append(a.order, k)
	}
	return dec.Err()
}

// CheckpointAll writes the manager's routing clock and every shareable open
// session under the ordering lock. The extra callback (the owning engine's
// catalog snapshot) runs first under the same lock, so catalog and pipeline
// state describe the same commit point. Every open session's locks are taken
// before any bytes are written, so a session cannot close or deliver halfway
// through the snapshot.
func (m *Manager) CheckpointAll(enc *checkpoint.Encoder, extra func(*checkpoint.Encoder) error) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	// Sharded mode: with the ordering lock held no new commit can enter, so
	// draining the shard queues here brings every session exactly up to the
	// last acknowledged commit — the single commit point the snapshot
	// describes. The drain MUST run before any session lock is taken below:
	// a shard worker holds ingestMu while applying a delivery, so draining
	// after would deadlock.
	if m.pool != nil {
		m.pool.Drain()
	}
	if extra != nil {
		if err := extra(enc); err != nil {
			return err
		}
	}
	type entry struct {
		key  string
		sess *Session
	}
	var open []entry
	var held []*Session
	defer func() {
		for _, s := range held {
			s.mu.Unlock()
			s.ingestMu.Unlock()
		}
	}()
	for _, id := range m.order {
		key, shared := m.keys[id]
		if !shared {
			continue // exclusive/dedicated sessions die with their subscriber
		}
		s := m.subs[id]
		s.ingestMu.Lock()
		s.mu.Lock()
		held = append(held, s)
		if !s.closed {
			open = append(open, entry{key: key, sess: s})
		}
	}
	enc.Section("live.Manager")
	enc.Time(m.seq.LastHeartbeat())
	enc.Uvarint(uint64(len(open)))
	for _, e := range open {
		enc.String(e.key)
		if err := e.sess.saveStateLocked(enc); err != nil {
			return err
		}
	}
	return enc.Err()
}

// RestoreAll rebuilds the checkpointed sessions into this manager (normally
// freshly created), registering each under its original plan key so
// reconnecting subscribers attach to the restored pipeline instead of
// compiling a new one.
func (m *Manager) RestoreAll(dec *checkpoint.Decoder, restore RestoreDriver) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := dec.Expect("live.Manager"); err != nil {
		return err
	}
	m.seq.RecordHeartbeat(dec.Time())
	n := int(dec.Uvarint())
	if err := dec.Err(); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		key := dec.String()
		if err := dec.Err(); err != nil {
			return err
		}
		sess, err := restoreSession(dec, restore)
		if err != nil {
			return err
		}
		sess.setObs(m.obsm) // restored pipelines count like registered ones
		id := m.nextID
		m.nextID++
		m.installLocked(id, sess) // routing table + shard placement
		m.plans[key] = sess
		m.keys[id] = key
	}
	return dec.Err()
}
