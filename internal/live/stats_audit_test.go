package live_test

// Audit: exec.Driver.Stats walks operator state (O(aggregate groups)), so
// nothing on the per-ingest / per-delta path may call it — those paths must
// use DispatchStats, which only reads two counters. A counting stub driver
// proves the session machinery touches Stats at construction time only, no
// matter how many batches, heartbeats, and deliveries flow through.

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/live"
	"repro/internal/tvr"
	"repro/internal/types"
)

// statsCountingDriver counts Stats/DispatchStats calls on top of echoDriver.
type statsCountingDriver struct {
	echoDriver
	statsCalls         int
	dispatchStatsCalls int
}

func (d *statsCountingDriver) Stats() exec.Stats {
	d.statsCalls++
	return d.echoDriver.Stats()
}

func (d *statsCountingDriver) DispatchStats() (int64, int64) {
	d.dispatchStatsCalls++
	return d.echoDriver.DispatchStats()
}

func TestNoHotPathDriverStats(t *testing.T) {
	d := &statsCountingDriver{}
	s, sub := newTestSession(t, d, live.Stream, 256, live.Block)
	defer sub.Cancel()

	const rounds = 50
	for i := 0; i < rounds; i++ {
		err := s.IngestLog([]exec.Source{{
			Name: "S",
			Log:  tvr.Changelog{tvr.InsertEvent(types.Time(i+1), intRow(int64(i)))},
		}})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Advance(types.Time(i + 1)); err != nil {
			t.Fatal(err)
		}
		// Drain the delivery so the full render/deliver path runs too.
		select {
		case <-sub.Deltas():
		default:
		}
	}

	// One Stats call is the construction-time partition probe; the ingest,
	// heartbeat, and delivery paths must not have added any.
	if d.statsCalls > 1 {
		t.Fatalf("Stats() called %d times across %d ingest/advance/deliver cycles; "+
			"hot paths must use DispatchStats (O(1)), not Stats (O(groups))", d.statsCalls, rounds)
	}
	// Sanity: the cheap counter really is what the hot path polls.
	if d.dispatchStatsCalls < rounds {
		t.Fatalf("DispatchStats() called %d times, want >= %d (one per ingest)", d.dispatchStatsCalls, rounds)
	}
}
