package live

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/tvr"
	"repro/internal/types"
)

// Config describes a standing query to NewSession.
type Config struct {
	// Name labels the session for diagnostics (typically the SQL text).
	Name string
	// Mode selects the delta rendering (Stream or Table).
	Mode Mode
	// Schema is the output schema of the compiled plan.
	Schema *types.Schema
	// EmitKeys are the event-time grouping columns used for stream-
	// rendering version numbers (plan.PlannedQuery.EmitKeyIdxs).
	EmitKeys []int
	// Sources are the relation names the plan scans (the session only
	// accepts events for these).
	Sources []string
	// MaxRetainedRows bounds the late-attach retention: the output-changelog
	// rows a Stream-mode session keeps (or the distinct rows a Table-mode
	// accumulator tracks) so late subscribers can receive a snapshot
	// hand-off. 0 means unbounded. On overflow the retained state is
	// released — memory stays bounded — and subsequent Attach calls fail
	// with ErrRetainedOverflow instead of handing off an incomplete
	// snapshot.
	MaxRetainedRows int
}

// Session is the engine-facing half of a standing query: it owns a started
// exec.Driver and converts ingested source events into subscriber deltas.
// One session serves any number of subscribers — the consumer-facing half is
// the per-subscriber cursor created by Attach — and every rendered delta is
// fanned out to all attached cursors in attach order. The session retains
// its cumulative output changelog so a cursor attaching late receives a
// snapshot hand-off first (see Attach); it tears down when the last cursor
// departs, or immediately on a pipeline error.
//
// A session is safe for concurrent use. Two locks split the work: ingestMu
// serializes the producer side (driver access: Feed/Advance/Close and
// Drain), while mu guards the cursor list, channel state, and the retained
// output. A Block-policy delivery parks on a full cursor holding ONLY
// ingestMu, never mu, so cursor-level operations (Attach under the manager's
// lock, Cancel, Close, Stats) stay responsive while a slow subscriber
// exerts backpressure. Lock order: ingestMu before mu; neither is held while
// acquiring the manager lock (runTeardown).
type Session struct {
	cfg        Config
	driver     exec.Driver
	renderer   *tvr.StreamRenderer
	sources    map[string]bool
	partitions int

	// ingestMu serializes driver access and keeps deliveries in order.
	ingestMu sync.Mutex

	mu           sync.Mutex
	parkCond     *sync.Cond // broadcast whenever a cursor's parked bit clears
	closed       bool       // no further input accepted
	cursors      []*cursor  // attach order — also the fan-out order
	everAttached bool
	produced     bool // the pipeline has drained output at least once
	// The late-attach snapshot state. A Stream-mode session retains the
	// cumulative output changelog (the rendering needs every row's
	// version history; same retention posture as the engine's recorded
	// relation changelogs), while a Table-mode session folds output into
	// a consolidated accumulator bounded by distinct rows. Both are
	// dropped on sessions that can never see a late attach (see
	// DropRetainedOutput).
	outLog     tvr.Changelog
	tableSnap  *tableAcc
	noRetain   bool
	overflowed bool // retention exceeded cfg.MaxRetainedRows and was released

	// Observability state lives outside s.mu so Stats and Err stay
	// responsive while a Block-policy delivery is parked on a full
	// cursor.
	err      atomic.Value // error; terminal, nil after a graceful Close
	eventsIn atomic.Int64
	wm       atomic.Int64 // types.Time
	nsubs    atomic.Int64 // len(cursors)
	id       atomic.Int64 // registration (pipeline) id, set by the manager
	// Batched-execution observability, mirrored from the driver's
	// exec.Stats after every feed so lock-free Stats readers see them
	// without touching the driver.
	dispatches       atomic.Int64
	dispatchedEvents atomic.Int64

	teardown     func() // unregisters from the owning manager
	teardownOnce sync.Once

	// Sharded-mode placement, set by the manager at registration. drain
	// blocks until the session's shard has applied every commit enqueued so
	// far — the barrier a graceful close uses so acknowledged commits reach
	// the final delta. Both are nil/-1 under the serial fan-out.
	drain func()
	shard atomic.Int64 // shard index; -1 = serial fan-out

	// obsm is the owning manager's delivery counters (nil without
	// observability; all increments are nil-safe). Set at registration,
	// under the manager's ordering lock, before any routing.
	obsm *liveMetrics
}

// NewSession starts the driver and wraps it as a standing query with no
// subscribers yet; Attach adds them.
func NewSession(d exec.Driver, cfg Config) (*Session, error) {
	if err := d.Start(); err != nil {
		return nil, err
	}
	s := &Session{
		cfg:        cfg,
		driver:     d,
		renderer:   tvr.NewStreamRenderer(cfg.EmitKeys),
		sources:    make(map[string]bool, len(cfg.Sources)),
		partitions: d.Stats().Partitions,
	}
	s.parkCond = sync.NewCond(&s.mu)
	s.shard.Store(-1)
	if cfg.Mode == Table {
		s.tableSnap = newTableAcc()
	}
	s.wm.Store(int64(types.MinTime))
	for _, name := range cfg.Sources {
		s.sources[strings.ToLower(name)] = true
	}
	return s, nil
}

// SetTeardown installs the hook run when the session leaves its manager.
func (s *Session) SetTeardown(fn func()) { s.teardown = fn }

// setID records the manager-assigned pipeline id.
func (s *Session) setID(id int) { s.id.Store(int64(id)) }

// setShard records the session's permanent shard placement.
func (s *Session) setShard(sh int) { s.shard.Store(int64(sh)) }

// shardIndex reports the session's shard (-1 = serial fan-out). Lock-free.
func (s *Session) shardIndex() int { return int(s.shard.Load()) }

// setDrain installs the shard drain barrier (see the drain field). Called by
// the manager at registration, before any sharded fan-out can reach the
// session.
func (s *Session) setDrain(fn func()) { s.drain = fn }

// drainShard waits out the session's shard queue (a no-op under the serial
// fan-out). Must be called without holding s.mu or ingestMu: the shard
// worker takes both to apply deliveries.
func (s *Session) drainShard() {
	if s.drain != nil {
		s.drain()
	}
}

// Matches reports whether the standing query scans the named relation.
func (s *Session) Matches(name string) bool { return s.sources[strings.ToLower(name)] }

// loadErr returns the recorded terminal error, if any. Writes happen under
// s.mu; reads are lock-free so Err stays responsive during a parked
// delivery.
func (s *Session) loadErr() error {
	if v := s.err.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// setErr records the first terminal session error; later calls are no-ops.
func (s *Session) setErr(err error) {
	if err != nil && s.loadErr() == nil {
		s.err.Store(err)
	}
}

// terminalErr is the error a producer-facing call reports once the session
// is closed. It reads only atomic state, so callers need not hold s.mu.
func (s *Session) terminalErr() error {
	if err := s.loadErr(); err != nil {
		return err
	}
	return ErrClosed
}

// Name returns the session's diagnostic label.
func (s *Session) Name() string { return s.cfg.Name }

// Subscribers reports the number of attached cursors. Lock-free.
func (s *Session) Subscribers() int { return int(s.nsubs.Load()) }

// DropRetainedOutput releases the cumulative output changelog and stops
// retaining future output. The manager calls it on sessions that can never
// see a late attach (exclusive subscriptions), where the retention would be
// dead weight; afterwards Attach refuses rather than hand off an incomplete
// snapshot.
func (s *Session) DropRetainedOutput() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.noRetain = true
	s.outLog = nil
	s.tableSnap = nil
}

// releaseRetainedLocked drops the late-attach retention after it outgrew the
// configured cap: memory stays bounded by the cap, and Attach degrades to
// ErrRetainedOverflow instead of handing off an incomplete snapshot.
// Existing cursors are untouched — their deltas were already delivered.
func (s *Session) releaseRetainedLocked() {
	s.overflowed = true
	s.outLog = nil
	s.tableSnap = nil
}

// Attach adds a subscriber cursor and returns its consumer-facing handle.
// When the pipeline has already produced output, the cursor's first delta is
// a snapshot hand-off synthesized from the retained output changelog: in
// Table mode the consolidated diff reconstructing the current snapshot, in
// Stream mode the full stream rendering (re-rendered from the log, so its
// version numbers match the ones already delivered to earlier subscribers
// and new rows continue from the current counters). That is byte-identical
// to the history-replay delta a dedicated subscription opened at the same
// instant would receive. The caller must guarantee no publish runs
// concurrently (the manager attaches under its ordering lock).
func (s *Session) Attach(opts CursorOpts) (*Subscription, error) {
	if opts.Buffer <= 0 {
		opts.Buffer = 64
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, s.terminalErr()
	}
	if s.overflowed {
		return nil, fmt.Errorf("live: session %q: %w", s.cfg.Name, ErrRetainedOverflow)
	}
	if s.noRetain {
		return nil, fmt.Errorf("live: session %q does not retain output for late attach", s.cfg.Name)
	}
	c := &cursor{
		s:      s,
		policy: opts.Policy,
		deltas: make(chan Delta, opts.Buffer),
		done:   make(chan struct{}),
	}
	if d := s.snapshotDeltaLocked(); d != nil {
		c.deltas <- *d // fresh channel, capacity >= 1: never blocks
		c.noteDelivered(d)
	}
	s.cursors = append(s.cursors, c)
	s.everAttached = true
	s.nsubs.Store(int64(len(s.cursors)))
	return &Subscription{c: c}, nil
}

// snapshotDeltaLocked synthesizes the late-attach initial delta from the
// retained output: exactly what replaying the full history through a
// dedicated pipeline would have delivered as its first delta. Nil when the
// pipeline has produced no output yet.
func (s *Session) snapshotDeltaLocked() *Delta {
	if !s.produced {
		return nil
	}
	d := Delta{Watermark: types.Time(s.wm.Load())}
	if s.cfg.Mode == Table {
		d.Table = s.tableSnap.diff()
	} else {
		d.Stream = tvr.RenderStream(s.outLog, s.cfg.EmitKeys)
	}
	return &d
}

// removeCursorLocked detaches a cursor from the fan-out list and closes its
// channel. It records no error — callers set one first when the detach is
// not graceful. The cursor must not be parked (no producer may be mid-send
// to it): callers wait out c.parked first.
func (s *Session) removeCursorLocked(c *cursor) {
	if c.detached {
		return
	}
	c.detached = true
	c.once.Do(func() { close(c.done) })
	close(c.deltas)
	for i, cc := range s.cursors {
		if cc == c {
			s.cursors = append(s.cursors[:i], s.cursors[i+1:]...)
			break
		}
	}
	s.nsubs.Store(int64(len(s.cursors)))
}

// closeSessionLocked ends the session: the terminal error is recorded, every
// remaining cursor is dropped with it, and the driver is completed (errors
// irrelevant on a failing session) so a partitioned pipeline's worker
// goroutines are released. Callers hold s.mu AND ingestMu (driver access),
// with no cursor parked. Cursor-detach-path callers must run runTeardown
// afterwards, without holding any lock; the ingest path instead returns the
// error to the manager, which removes the session itself.
func (s *Session) closeSessionLocked(err error) {
	s.setErr(err)
	for len(s.cursors) > 0 {
		c := s.cursors[0]
		c.setErr(err)
		s.removeCursorLocked(c)
	}
	if !s.closed {
		s.closed = true
		// A driver being closed *because* it panicked may well panic
		// again out of its half-unwound operator state; the session is
		// already terminal either way.
		func() {
			defer func() { recover() }() //nolint:errcheck
			s.driver.Close()             //nolint:errcheck
		}()
	}
}

// Ingest feeds one source event through the standing pipeline and delivers
// any deltas that materialize.
func (s *Session) Ingest(source string, ev tvr.Event) error {
	return s.IngestLog([]exec.Source{{Name: source, Log: tvr.Changelog{ev}}})
}

// IngestLog feeds a batch of per-source events (merged deterministically by
// the driver) and delivers the batch's deltas in one delivery. Subscribing
// uses it to replay a relation's recorded history through the new pipeline.
func (s *Session) IngestLog(batch []exec.Source) error {
	return s.ingestLog(batch, nil)
}

// ingestLog is IngestLog carrying the commit-path span: driver feed time
// accrues to the apply stage, render/deliver split inside deliver. The
// span's time.Now calls are skipped entirely on the untraced path.
func (s *Session) ingestLog(batch []exec.Source, span *obs.CommitSpan) error {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	if s.isClosed() {
		return s.terminalErr()
	}
	n := int64(0)
	for _, src := range batch {
		n += int64(len(src.Log))
	}
	s.eventsIn.Add(n)
	s.obsm.noteEventsIn(n)
	tApply := time.Time{}
	if span != nil {
		tApply = time.Now()
	}
	if err := s.feedDriver(batch); err != nil {
		s.failFeed(err)
		return err
	}
	span.AddSince(obs.SpanApply, tApply)
	s.noteDispatches()
	return s.deliver(span)
}

// noteDispatches mirrors the driver's dispatch counters into the session's
// atomics. Caller holds ingestMu, so the driver is quiescent.
func (s *Session) noteDispatches() {
	d, ev := s.driver.DispatchStats()
	s.dispatches.Store(d)
	s.dispatchedEvents.Store(ev)
}

// feedDriver and advanceDriver are the operator panic boundary: a panic in
// a standing pipeline (serial operators run on the ingesting goroutine;
// the partitioned tail runs inside Feed) becomes this session's terminal
// error — subscribers observe it through Err() with the panic value and
// stack — instead of unwinding the committing goroutine or a shard worker
// and killing the process. The driver holds only this session's state, so
// abandoning it mid-panic corrupts nothing shared.
func (s *Session) feedDriver(batch []exec.Source) (err error) {
	defer func() {
		if perr := exec.CapturePanic(recover()); perr != nil {
			err = perr
		}
	}()
	return s.driver.Feed(batch)
}

func (s *Session) advanceDriver(pt types.Time) (err error) {
	defer func() {
		if perr := exec.CapturePanic(recover()); perr != nil {
			err = perr
		}
	}()
	return s.driver.Advance(pt)
}

// Advance moves the standing pipeline's processing-time clock to pt, firing
// any due EMIT AFTER DELAY timers and delivering the resulting deltas.
func (s *Session) Advance(pt types.Time) error {
	return s.advance(pt, nil)
}

// advance is Advance carrying the commit-path span (see ingestLog).
func (s *Session) advance(pt types.Time, span *obs.CommitSpan) error {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	if s.isClosed() {
		return s.terminalErr()
	}
	tApply := time.Time{}
	if span != nil {
		tApply = time.Now()
	}
	if err := s.advanceDriver(pt); err != nil {
		s.failFeed(err)
		return err
	}
	span.AddSince(obs.SpanApply, tApply)
	s.noteDispatches()
	return s.deliver(span)
}

func (s *Session) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// failFeed ends the session on a driver error. Caller holds ingestMu.
func (s *Session) failFeed(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closeSessionLocked(err)
}

// renderLocked drains the driver's new output, retains it in the cumulative
// output log, and renders it per the session mode. It returns nil when
// nothing materialized. Caller holds ingestMu (driver access) and s.mu
// (renderer/outLog).
func (s *Session) renderLocked() *Delta {
	out := s.driver.Drain()
	wm := s.driver.OutputWatermark()
	s.wm.Store(int64(wm))
	if len(out) == 0 {
		return nil
	}
	s.produced = true
	if !s.noRetain && !s.overflowed {
		if s.cfg.Mode == Table {
			s.tableSnap.applyLog(out)
			if s.cfg.MaxRetainedRows > 0 && len(s.tableSnap.order) > s.cfg.MaxRetainedRows {
				s.releaseRetainedLocked()
			}
		} else {
			s.outLog = append(s.outLog, out...)
			if s.cfg.MaxRetainedRows > 0 && len(s.outLog) > s.cfg.MaxRetainedRows {
				s.releaseRetainedLocked()
			}
		}
	}
	d := Delta{Watermark: wm}
	if s.cfg.Mode == Table {
		d.Table = consolidate(out)
	} else {
		d.Stream = s.renderer.Append(out)
	}
	return &d
}

// deliver renders the driver's new output and fans it out to every attached
// cursor in attach order, under each cursor's slow-consumer policy. Caller
// holds ingestMu.
//
// Delivery is two-phase so one slow Block subscriber cannot starve its
// peers: first every cursor with buffer space receives its hand-off
// non-blocking (full DropWithError cursors are dropped right there), then
// the producer parks on the full Block cursors — simultaneously, holding
// only ingestMu — whose peers already hold the delta in their own buffers
// and keep draining meanwhile. The session stalls with nothing delivered at
// all only when every attached cursor is full. A park ends for a cursor
// when it makes space, cancels (the delta is abandoned with it), or closes
// (the delta folds into the cursor's final delta).
func (s *Session) deliver(span *obs.CommitSpan) error {
	tRender := time.Time{}
	if span != nil {
		tRender = time.Now()
	}
	s.mu.Lock()
	d := s.renderLocked()
	span.AddSince(obs.SpanRender, tRender)
	if d == nil {
		s.mu.Unlock()
		return nil
	}
	tDeliver := time.Time{}
	if span != nil {
		tDeliver = time.Now()
	}
	var blocked []*cursor
	var dropped []*cursor
	for _, c := range s.cursors {
		if c.leaving {
			c.pending = mergeDeltas(s.cfg.Mode, c.pending, d)
			continue
		}
		select {
		case c.deltas <- *d:
			c.noteDelivered(d)
		default:
			if c.policy == DropWithError {
				dropped = append(dropped, c)
			} else {
				blocked = append(blocked, c)
			}
		}
	}
	anyDropped := len(dropped) > 0
	s.obsm.noteDrops(len(dropped))
	s.obsm.noteParks(len(blocked))
	for _, c := range dropped {
		c.setErr(ErrSlowConsumer)
		s.removeCursorLocked(c)
	}
	for _, c := range blocked {
		c.parked = true
	}
	s.mu.Unlock()

	if len(blocked) > 0 {
		s.parkAndDeliver(blocked, d)
	}
	span.AddSince(obs.SpanDeliver, tDeliver)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.everAttached && len(s.cursors) == 0 && !s.closed {
		// Every subscriber departed mid-delivery: the shared pipeline
		// dies with the last one, and the manager removes it on this
		// error. ErrSlowConsumer when a drop emptied the session (the
		// pre-sharing semantics); ErrClosed when cancels did.
		err := ErrClosed
		if anyDropped {
			err = ErrSlowConsumer
		}
		s.closeSessionLocked(err)
		return s.terminalErr()
	}
	return nil
}

// parkAndDeliver blocks until every full Block cursor has accepted the
// delta or departed (done closed by Cancel/Close). It waits on all of them
// simultaneously, so one slow peer cannot delay noticing another's
// departure. Holds no locks while parked; each resolution is finalized
// under s.mu and parkCond is broadcast so a Cancel/Close waiting for the
// cursor's parked bit can proceed.
func (s *Session) parkAndDeliver(blocked []*cursor, d *Delta) {
	cases := make([]reflect.SelectCase, 2*len(blocked))
	for i, c := range blocked {
		cases[2*i] = reflect.SelectCase{Dir: reflect.SelectSend, Chan: reflect.ValueOf(c.deltas), Send: reflect.ValueOf(*d)}
		cases[2*i+1] = reflect.SelectCase{Dir: reflect.SelectRecv, Chan: reflect.ValueOf(c.done)}
	}
	for remaining := len(blocked); remaining > 0; remaining-- {
		chosen, _, _ := reflect.Select(cases)
		ci := chosen / 2
		c := blocked[ci]
		sent := chosen%2 == 0
		cases[2*ci].Chan = reflect.Value{} // a zero Chan is never selected
		cases[2*ci+1].Chan = reflect.Value{}
		s.mu.Lock()
		c.parked = false
		if sent {
			c.noteDelivered(d)
		} else {
			// Departed mid-delivery: keep the rendered delta so a
			// graceful Close can still hand it over (Cancel discards
			// it by design), and stop delivering to this cursor.
			c.leaving = true
			if !c.discard {
				c.pending = mergeDeltas(s.cfg.Mode, c.pending, d)
			}
		}
		s.parkCond.Broadcast()
		s.mu.Unlock()
	}
}

// runTeardown unregisters the session from its manager exactly once. It must
// be called without holding s.mu or ingestMu: the manager routes events
// while holding its own lock and then calls into the session, so taking the
// locks in the opposite order here would deadlock.
func (s *Session) runTeardown() {
	s.teardownOnce.Do(func() {
		if s.teardown != nil {
			s.teardown()
		}
	})
}

// cancel tears the whole session down immediately: every cursor terminates
// (pending and future deliveries abandoned, channels closed, Err reporting
// ErrClosed unless a terminal error was already recorded) and the driver is
// completed. The manager uses it to release a session whose registration
// failed partway; no delivery can be in flight there.
func (s *Session) cancel() {
	s.ingestMu.Lock()
	s.mu.Lock()
	s.closeSessionLocked(ErrClosed)
	s.mu.Unlock()
	s.ingestMu.Unlock()
	s.runTeardown()
}

// mergeDeltas folds two consecutive deltas into one so an interrupted
// delivery concatenates gaplessly with the close-time delta.
func mergeDeltas(mode Mode, a, b *Delta) *Delta {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := Delta{Watermark: b.Watermark}
	if mode == Table {
		out.Table = &TableDiff{
			Ptime:    a.Table.Ptime,
			Inserted: append(append([]types.Row{}, a.Table.Inserted...), b.Table.Inserted...),
			Deleted:  append(append([]types.Row{}, a.Table.Deleted...), b.Table.Deleted...),
		}
		if b.Table.Ptime > out.Table.Ptime {
			out.Table.Ptime = b.Table.Ptime
		}
		return &out
	}
	out.Stream = append(append([]tvr.StreamRow{}, a.Stream...), b.Stream...)
	return &out
}

// String renders a one-line diagnostic summary of the shared pipeline.
func (s *Session) String() string {
	return fmt.Sprintf("live %s [%s] id=%d subs=%d in=%d wm=%s",
		s.cfg.Mode, s.cfg.Name, s.id.Load(), s.nsubs.Load(), s.eventsIn.Load(),
		types.Time(s.wm.Load()))
}
