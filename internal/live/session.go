package live

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/exec"
	"repro/internal/tvr"
	"repro/internal/types"
)

// Config describes a standing query to NewSession.
type Config struct {
	// Name labels the session for diagnostics (typically the SQL text).
	Name string
	// Mode selects the delta rendering (Stream or Table).
	Mode Mode
	// Schema is the output schema of the compiled plan.
	Schema *types.Schema
	// EmitKeys are the event-time grouping columns used for stream-
	// rendering version numbers (plan.PlannedQuery.EmitKeyIdxs).
	EmitKeys []int
	// Sources are the relation names the plan scans (the session only
	// accepts events for these).
	Sources []string
	// Buffer is the delta channel capacity (default 64).
	Buffer int
	// Policy is the slow-consumer policy.
	Policy Policy
}

// Session is the engine-facing half of a standing query: it owns a started
// exec.Driver and converts ingested source events into subscriber deltas.
// The consumer-facing half is the Subscription returned by Subscription().
//
// A session is safe for concurrent use; ingestion is serialized internally.
type Session struct {
	cfg        Config
	driver     exec.Driver
	renderer   *tvr.StreamRenderer
	sources    map[string]bool
	partitions int

	deltas chan Delta
	done   chan struct{} // closed by Cancel/Close to unblock producers
	once   sync.Once     // guards close(done)

	mu       sync.Mutex
	closed   bool // no further input accepted
	chClosed bool // deltas channel closed
	// pending holds a rendered delta whose channel send was interrupted
	// by Close, so the graceful path can fold it into the final delta
	// instead of losing it (Cancel discards it by design).
	pending *Delta

	// Observability state lives outside s.mu so Stats and Err stay
	// responsive while a Block-policy delivery is stalled on a full
	// channel (which happens holding s.mu).
	err       atomic.Value // error; terminal, nil after a graceful Close
	eventsIn  atomic.Int64
	deltasOut atomic.Int64
	rowsOut   atomic.Int64
	wm        atomic.Int64 // types.Time

	teardown     func() // unregisters from the owning manager
	teardownOnce sync.Once
}

// NewSession starts the driver and wraps it as a standing query.
func NewSession(d exec.Driver, cfg Config) (*Session, error) {
	if cfg.Buffer <= 0 {
		cfg.Buffer = 64
	}
	if err := d.Start(); err != nil {
		return nil, err
	}
	s := &Session{
		cfg:        cfg,
		driver:     d,
		renderer:   tvr.NewStreamRenderer(cfg.EmitKeys),
		sources:    make(map[string]bool, len(cfg.Sources)),
		partitions: d.Stats().Partitions,
		deltas:     make(chan Delta, cfg.Buffer),
		done:       make(chan struct{}),
	}
	s.wm.Store(int64(types.MinTime))
	for _, name := range cfg.Sources {
		s.sources[strings.ToLower(name)] = true
	}
	return s, nil
}

// SetTeardown installs the hook run when the session leaves its manager.
func (s *Session) SetTeardown(fn func()) { s.teardown = fn }

// Matches reports whether the standing query scans the named relation.
func (s *Session) Matches(name string) bool { return s.sources[strings.ToLower(name)] }

// loadErr returns the recorded terminal error, if any. Writes happen under
// s.mu; reads are lock-free so Err stays responsive during a blocked
// delivery.
func (s *Session) loadErr() error {
	if v := s.err.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// terminalErr is the error a producer-facing call reports once the session
// is closed. It reads only atomic state, so callers need not hold s.mu.
func (s *Session) terminalErr() error {
	if err := s.loadErr(); err != nil {
		return err
	}
	return ErrClosed
}

// Name returns the session's diagnostic label.
func (s *Session) Name() string { return s.cfg.Name }

// Subscription returns the consumer-facing handle.
func (s *Session) Subscription() *Subscription { return &Subscription{s: s} }

// Ingest feeds one source event through the standing pipeline and delivers
// any deltas that materialize.
func (s *Session) Ingest(source string, ev tvr.Event) error {
	return s.IngestLog([]exec.Source{{Name: source, Log: tvr.Changelog{ev}}})
}

// IngestLog feeds a batch of per-source events (merged deterministically by
// the driver) and delivers the batch's deltas in one delivery. Subscribing
// uses it to replay a relation's recorded history through the new pipeline.
func (s *Session) IngestLog(batch []exec.Source) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.terminalErr()
	}
	for _, src := range batch {
		s.eventsIn.Add(int64(len(src.Log)))
	}
	if err := s.driver.Feed(batch); err != nil {
		s.failLocked(err)
		return err
	}
	return s.deliverLocked()
}

// Advance moves the standing pipeline's processing-time clock to pt, firing
// any due EMIT AFTER DELAY timers and delivering the resulting deltas.
func (s *Session) Advance(pt types.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.terminalErr()
	}
	if err := s.driver.Advance(pt); err != nil {
		s.failLocked(err)
		return err
	}
	return s.deliverLocked()
}

// renderLocked drains the driver's new output and renders it per the
// session mode, updating the row counters. It returns nil when nothing
// materialized.
func (s *Session) renderLocked() *Delta {
	out := s.driver.Drain()
	wm := s.driver.OutputWatermark()
	s.wm.Store(int64(wm))
	if len(out) == 0 {
		return nil
	}
	d := Delta{Watermark: wm}
	switch s.cfg.Mode {
	case Table:
		d.Table = consolidate(out)
		s.rowsOut.Add(int64(len(d.Table.Inserted) + len(d.Table.Deleted)))
	default:
		d.Stream = s.renderer.Append(out)
		s.rowsOut.Add(int64(len(d.Stream)))
	}
	return &d
}

// deliverLocked renders the driver's new output and hands it to the
// subscriber under the slow-consumer policy.
func (s *Session) deliverLocked() error {
	d := s.renderLocked()
	if d == nil {
		return nil
	}
	switch s.cfg.Policy {
	case DropWithError:
		select {
		case s.deltas <- *d:
		default:
			s.failLocked(ErrSlowConsumer)
			return ErrSlowConsumer
		}
	default: // Block
		select {
		case s.deltas <- *d:
		case <-s.done:
			// Interrupted mid-delivery: keep the rendered delta so a
			// graceful Close can still hand it over, and report without
			// touching channel state — the closing goroutine finalizes
			// it.
			s.pending = d
			return s.terminalErr()
		}
	}
	s.deltasOut.Add(1)
	return nil
}

// failLocked records a terminal error and wakes the subscriber. The driver is
// completed too (errors irrelevant on a failing session): once s.closed is
// set, no cancel/close path will touch the driver again, and a partitioned
// pipeline's worker goroutines are only released by its Close.
func (s *Session) failLocked(err error) {
	if s.loadErr() == nil {
		s.err.Store(err)
	}
	if !s.closed {
		s.closed = true
		s.driver.Close() //nolint:errcheck
	}
	s.once.Do(func() { close(s.done) })
	s.closeDeltasLocked()
}

func (s *Session) closeDeltasLocked() {
	if !s.chClosed {
		s.chClosed = true
		close(s.deltas)
	}
}

// runTeardown unregisters the session from its manager exactly once. It must
// be called without holding s.mu: the manager routes events while holding
// its own lock and then takes s.mu, so taking them in the opposite order
// here would deadlock.
func (s *Session) runTeardown() {
	s.teardownOnce.Do(func() {
		if s.teardown != nil {
			s.teardown()
		}
	})
}

// cancel tears the session down immediately: pending and future deliveries
// are abandoned, the delta channel closes, and Err reports ErrClosed unless
// a terminal error was already recorded.
func (s *Session) cancel() {
	s.once.Do(func() { close(s.done) })
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		if s.loadErr() == nil {
			s.err.Store(ErrClosed)
		}
		// Complete the driver even though the output is discarded: the
		// partitioned pipeline parks worker goroutines that only a Close
		// releases. Errors are irrelevant on the cancel path.
		s.driver.Close() //nolint:errcheck
	}
	s.closeDeltasLocked()
	s.mu.Unlock()
	s.runTeardown()
}

// closeGraceful finishes the standing query: it stops routing, completes the
// pipeline input (closing bounded relations and flushing pending timers),
// and returns the final delta those completions produce, if any. The final
// delta is returned rather than channeled so a subscriber that has stopped
// draining cannot deadlock its own close.
func (s *Session) closeGraceful() (*Delta, error) {
	// Unblock a delivery already waiting on the (no longer drained)
	// channel; the interrupted producer sees ErrClosed and the manager
	// drops the session.
	s.once.Do(func() { close(s.done) })
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.runTeardown()
		return nil, s.terminalErr()
	}
	s.closed = true
	s.mu.Unlock()
	// Stop the manager from routing before finishing the pipeline; this
	// waits out any in-flight publish.
	s.runTeardown()

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.driver.Close(); err != nil {
		if s.loadErr() == nil {
			s.err.Store(err)
		}
		s.closeDeltasLocked()
		return nil, err
	}
	final := mergeDeltas(s.cfg.Mode, s.pending, s.renderLocked())
	s.pending = nil
	if final != nil {
		s.deltasOut.Add(1)
	}
	s.closeDeltasLocked()
	return final, nil
}

// mergeDeltas folds a delivery interrupted by Close into the close-time
// delta so the subscriber's sequence stays gapless.
func mergeDeltas(mode Mode, a, b *Delta) *Delta {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := Delta{Watermark: b.Watermark}
	if mode == Table {
		out.Table = &TableDiff{
			Ptime:    a.Table.Ptime,
			Inserted: append(append([]types.Row{}, a.Table.Inserted...), b.Table.Inserted...),
			Deleted:  append(append([]types.Row{}, a.Table.Deleted...), b.Table.Deleted...),
		}
		if b.Table.Ptime > out.Table.Ptime {
			out.Table.Ptime = b.Table.Ptime
		}
		return &out
	}
	out.Stream = append(append([]tvr.StreamRow{}, a.Stream...), b.Stream...)
	return &out
}

// stats snapshots the counters. It takes no locks, so it stays responsive
// while a Block-policy delivery is stalled on a full channel.
func (s *Session) stats() Stats {
	return Stats{
		EventsIn:   s.eventsIn.Load(),
		DeltasOut:  s.deltasOut.Load(),
		RowsOut:    s.rowsOut.Load(),
		Watermark:  types.Time(s.wm.Load()),
		QueueDepth: len(s.deltas),
		Partitions: s.partitions,
	}
}

// String renders a one-line diagnostic summary.
func (s *Session) String() string {
	st := s.stats()
	return fmt.Sprintf("live %s [%s] in=%d deltas=%d rows=%d wm=%s q=%d",
		s.cfg.Mode, s.cfg.Name, st.EventsIn, st.DeltasOut, st.RowsOut, st.Watermark, st.QueueDepth)
}
