package live

import (
	"sync"
	"sync/atomic"

	"repro/internal/types"
)

// cursor is one subscriber's delivery state on a shared Session: its own
// bounded delta channel, slow-consumer policy, and counters. The session
// fans every rendered delta out to all attached cursors in attach order, so
// a cursor's delta sequence is exactly what a dedicated session would have
// delivered — sharing changes ownership, not bytes.
type cursor struct {
	s      *Session
	policy Policy
	deltas chan Delta
	done   chan struct{} // closed by Cancel/Close to unblock a producer
	once   sync.Once     // guards close(done)

	// The fields below are guarded by the owning session's mu.
	parked   bool   // a producer is mid-send to this cursor (holding no mu)
	leaving  bool   // done closed mid-delivery; deltas fold into pending
	detached bool   // removed from the fan-out list; channel closed
	discard  bool   // Cancel: abandon pending instead of folding into it
	pending  *Delta // rendered but undelivered (interrupted by Close)

	// Counters are atomic so Stats/Err stay responsive while a
	// Block-policy delivery is parked on this (or any) cursor.
	err       atomic.Value // error; terminal, nil after a graceful Close
	deltasOut atomic.Int64
	rowsOut   atomic.Int64
}

// loadErr returns the cursor's terminal error, if any. Lock-free.
func (c *cursor) loadErr() error {
	if v := c.err.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// setErr records the first terminal error; later calls are no-ops.
func (c *cursor) setErr(err error) {
	if err != nil && c.loadErr() == nil {
		c.err.Store(err)
	}
}

// terminalErr is what a consumer-facing call reports once the cursor has
// ended: the cursor's own error, the session's, or plain ErrClosed.
func (c *cursor) terminalErr() error {
	if err := c.loadErr(); err != nil {
		return err
	}
	return c.s.terminalErr()
}

// noteDelivered advances the delivery counters for one delta.
func (c *cursor) noteDelivered(d *Delta) {
	rows := deltaRows(d)
	c.deltasOut.Add(1)
	c.rowsOut.Add(rows)
	c.s.obsm.noteDelivered(rows)
}

// deltaRows counts the output rows a delta carries.
func deltaRows(d *Delta) int64 {
	if d.Table != nil {
		return int64(len(d.Table.Inserted) + len(d.Table.Deleted))
	}
	return int64(len(d.Stream))
}

// stats snapshots the cursor's counters plus the shared pipeline's. It takes
// no locks, so it stays responsive while a delivery is blocked.
func (c *cursor) stats() Stats {
	s := c.s
	st := Stats{
		EventsIn:    s.eventsIn.Load(),
		DeltasOut:   c.deltasOut.Load(),
		RowsOut:     c.rowsOut.Load(),
		Watermark:   types.Time(s.wm.Load()),
		QueueDepth:  len(c.deltas),
		Partitions:  s.partitions,
		PipelineID:  int(s.id.Load()),
		Subscribers: int(s.nsubs.Load()),
		Shard:       s.shardIndex(),
		Dispatches:  s.dispatches.Load(),
	}
	if st.Dispatches > 0 {
		st.EventsPerDispatch = float64(s.dispatchedEvents.Load()) / float64(st.Dispatches)
	}
	return st
}

// waitUnparkedLocked waits until no producer is mid-send to this cursor.
// Callers have already closed c.done, so the wait is brief: the parked
// producer wakes on it immediately and clears the bit.
func (c *cursor) waitUnparkedLocked() {
	for c.parked {
		c.s.parkCond.Wait()
	}
}

// cancel terminates this cursor immediately: pending and future deliveries
// are abandoned, its channel closes, and Err reports ErrClosed unless a
// terminal error was already recorded. When it was the session's last
// cursor, the shared pipeline is torn down with it. Cancel never waits on a
// slow peer: it only synchronizes with a producer mid-send to THIS cursor,
// which the closed done channel releases at once.
func (c *cursor) cancel() {
	// Unblock a producer mid-delivery to this cursor before taking any
	// lock.
	c.once.Do(func() { close(c.done) })
	s := c.s
	s.mu.Lock()
	c.discard = true // Cancel abandons undelivered output by design
	c.pending = nil
	c.waitUnparkedLocked()
	if c.detached {
		s.mu.Unlock()
		return
	}
	c.setErr(ErrClosed)
	s.removeCursorLocked(c)
	last := s.everAttached && len(s.cursors) == 0 && !s.closed
	s.mu.Unlock()
	if !last {
		return
	}
	// Last subscriber gone: finish the driver. Serialize with the
	// producer side (an in-flight delivery could only have been parked on
	// this very cursor, and the closed done has already released it) and
	// re-check — a racing attach may have revived the session, or a
	// racing publish may have already closed it.
	s.ingestMu.Lock()
	s.mu.Lock()
	closedNow := false
	if !s.closed && len(s.cursors) == 0 {
		s.closeSessionLocked(ErrClosed)
		closedNow = true
	}
	s.mu.Unlock()
	s.ingestMu.Unlock()
	if closedNow {
		s.runTeardown()
	}
}

// closeGraceful finishes this cursor. A non-last cursor detaches from the
// shared pipeline, returning any delivery that was interrupted by the close
// (the pipeline lives on for its peers). The last cursor completes the
// pipeline input — bounded relations close, pending EMIT timers flush — and
// returns the emissions those completions produce, folded together with any
// interrupted delivery so the sequence stays gapless. The final delta is
// returned rather than channeled so a subscriber that has stopped draining
// cannot deadlock its own close.
func (c *cursor) closeGraceful() (*Delta, error) {
	// Unblock a delivery already waiting on this (no longer drained)
	// channel; the interrupted producer folds the delta into pending.
	c.once.Do(func() { close(c.done) })
	s := c.s
	// Sharded mode: wait for the session's shard to apply every commit
	// acknowledged before this close, so those deliveries land in the
	// buffer (or fold into pending via the closed done) and the final
	// delta misses nothing the engine already acked as durable. Holds no
	// locks — the shard worker needs ingestMu/mu to make progress.
	s.drainShard()
	s.mu.Lock()
	c.waitUnparkedLocked()
	if c.detached {
		s.mu.Unlock()
		return nil, c.terminalErr()
	}
	if len(s.cursors) > 1 || s.closed {
		// Peers remain (or the session already ended): detach without
		// touching the shared driver.
		final := c.pending
		c.pending = nil
		s.removeCursorLocked(c)
		if final != nil {
			c.noteDelivered(final)
		}
		closedNow := s.closed
		s.mu.Unlock()
		if closedNow {
			return final, c.terminalErr()
		}
		return final, nil
	}
	// Last subscriber: the standing query finishes with it. Marking the
	// session closed stops new ingest; the teardown stops the manager
	// from routing (waiting out any in-flight publish, which the closed
	// done channel has already released from a park on this cursor).
	s.closed = true
	s.mu.Unlock()
	s.runTeardown()

	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.driver.Close(); err != nil {
		s.setErr(err)
		c.setErr(err)
		s.removeCursorLocked(c)
		return nil, err
	}
	final := mergeDeltas(s.cfg.Mode, c.pending, s.renderLocked())
	c.pending = nil
	if final != nil {
		c.noteDelivered(final)
	}
	s.removeCursorLocked(c)
	return final, nil
}
