package live_test

// Panic-isolation regression tests: a panicking operator inside one
// standing query's driver must fail ONLY that session — its subscribers
// see the panic value (with stack) through Subscription.Err — while
// disjoint sessions keep streaming and the process survives. Pinned under
// both the serial fan-out and the sharded ingest subsystem, where the
// panic fires on a shard worker goroutine instead of the publisher's.

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/live"
	"repro/internal/tvr"
	"repro/internal/types"
)

// panicDriver is an echoDriver whose Feed panics when it sees the trigger
// value — a stand-in for an operator bug (nil map write, index out of
// range) deep inside one standing query's pipeline.
type panicDriver struct {
	echoDriver
	panicOn int64
}

func (d *panicDriver) Feed(batch []exec.Source) error {
	for _, s := range batch {
		for _, ev := range s.Log {
			if ev.IsData() && ev.Row[0].Int() == d.panicOn {
				panic(fmt.Sprintf("operator exploded on value %d", d.panicOn))
			}
		}
	}
	return d.echoDriver.Feed(batch)
}

func recvDelta(t *testing.T, sub *live.Subscription, what string) live.Delta {
	t.Helper()
	select {
	case d, ok := <-sub.Deltas():
		if !ok {
			t.Fatalf("%s: subscription closed (err=%v)", what, sub.Err())
		}
		return d
	case <-time.After(5 * time.Second):
		t.Fatalf("%s: timed out waiting for delta", what)
	}
	panic("unreachable")
}

// recvClosed waits for the subscription's channel to close.
func recvClosed(t *testing.T, sub *live.Subscription, what string) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-sub.Deltas():
			if !ok {
				return
			}
		case <-deadline:
			t.Fatalf("%s: subscription did not terminate", what)
		}
	}
}

func TestPanicKillsOnlyItsSession(t *testing.T) {
	for _, shards := range []int{0, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			m := live.NewManagerWith(live.Options{Shards: shards})
			defer m.Close()

			newSess := func(name string, d exec.Driver) (*live.Session, *live.Subscription) {
				s, err := live.NewSession(d, live.Config{
					Name: name, Mode: live.Stream, Schema: testSchema(), Sources: []string{"S"},
				})
				if err != nil {
					t.Fatal(err)
				}
				sub, err := s.Attach(live.CursorOpts{Buffer: 64, Policy: live.Block})
				if err != nil {
					t.Fatal(err)
				}
				if err := m.Register(s, nil); err != nil {
					t.Fatal(err)
				}
				return s, sub
			}
			_, healthySub := newSess("healthy", &echoDriver{})
			_, doomedSub := newSess("doomed", &panicDriver{panicOn: 13})

			publish := func(v int64) {
				t.Helper()
				err := m.Publish(func() error { return nil }, "S",
					[]tvr.Event{tvr.InsertEvent(types.Time(v), intRow(v))})
				if err != nil {
					t.Fatalf("publish %d: %v", v, err)
				}
			}

			// Both sessions serve normally first.
			publish(1)
			if got := streamInts(recvDelta(t, healthySub, "healthy pre-panic")); got[0] != 1 {
				t.Fatalf("healthy delta = %v", got)
			}
			if got := streamInts(recvDelta(t, doomedSub, "doomed pre-panic")); got[0] != 1 {
				t.Fatalf("doomed delta = %v", got)
			}

			// The poison value: the doomed session's operator panics while
			// applying this commit — on the publishing goroutine in serial
			// mode, on a shard worker with -shards. If the recover boundary
			// were missing this would crash the whole test process.
			publish(13)
			m.Quiesce() // barrier: sharded deliveries applied before asserting

			// The doomed session died, and its subscriber can see why: the
			// panic value and stack, not a generic closure.
			recvClosed(t, doomedSub, "doomed post-panic")
			var perr *exec.PanicError
			if err := doomedSub.Err(); !errors.As(err, &perr) {
				t.Fatalf("doomed Err = %v, want *exec.PanicError", err)
			} else {
				if !strings.Contains(fmt.Sprint(perr.Value), "operator exploded on value 13") {
					t.Fatalf("panic value not preserved: %v", perr.Value)
				}
				if len(perr.Stack) == 0 {
					t.Fatal("panic stack not captured")
				}
			}

			// The disjoint session never noticed: it received the same
			// commit unharmed and keeps receiving subsequent ones.
			if got := streamInts(recvDelta(t, healthySub, "healthy at-panic")); got[0] != 13 {
				t.Fatalf("healthy delta during panic commit = %v", got)
			}
			publish(2)
			if got := streamInts(recvDelta(t, healthySub, "healthy post-panic")); got[0] != 2 {
				t.Fatalf("healthy delta after panic = %v", got)
			}
			if healthySub.Err() != nil {
				t.Fatalf("healthy subscription failed: %v", healthySub.Err())
			}
		})
	}
}

// TestPanicDuringAdvance: the same isolation holds on the heartbeat path
// (Advance), which in sharded mode also runs on the shard workers.
func TestPanicDuringAdvance(t *testing.T) {
	for _, shards := range []int{0, 2} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			m := live.NewManagerWith(live.Options{Shards: shards})
			defer m.Close()
			d := &advancePanicDriver{}
			s, err := live.NewSession(d, live.Config{
				Name: "t", Mode: live.Stream, Schema: testSchema(), Sources: []string{"S"},
			})
			if err != nil {
				t.Fatal(err)
			}
			sub, err := s.Attach(live.CursorOpts{Buffer: 8, Policy: live.Block})
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Register(s, nil); err != nil {
				t.Fatal(err)
			}
			m.Advance(types.Time(types.Second))
			m.Quiesce()
			recvClosed(t, sub, "post-heartbeat-panic")
			var perr *exec.PanicError
			if !errors.As(sub.Err(), &perr) {
				t.Fatalf("Err = %v, want *exec.PanicError", sub.Err())
			}
		})
	}
}

type advancePanicDriver struct{ echoDriver }

func (d *advancePanicDriver) Advance(pt types.Time) error { panic("timer wheel corrupted") }
