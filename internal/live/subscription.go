package live

import "repro/internal/types"

// Subscription is the consumer-facing handle of a standing query: one
// cursor on a (possibly shared) resident session. Deltas arrive on the
// channel as the engine ingests matching changes; the channel closes when
// the subscription ends (Cancel, Close, a slow-consumer drop, or a pipeline
// error), after which Err explains why — nil means a graceful Close.
type Subscription struct {
	c *cursor
}

// Deltas is the bounded delivery channel. It closes when the subscription
// terminates for any reason.
func (b *Subscription) Deltas() <-chan Delta { return b.c.deltas }

// Err returns the terminal error: ErrSlowConsumer after a drop, ErrClosed
// after Cancel, a pipeline error if execution failed, or nil while live and
// after a graceful Close. It takes no locks, so it stays responsive while a
// delivery is blocked on the channel.
func (b *Subscription) Err() error { return b.c.loadErr() }

// Stats snapshots the subscription's counters (and the shared pipeline's:
// see Stats.PipelineID / Stats.Subscribers for plan-sharing observability).
func (b *Subscription) Stats() Stats { return b.c.stats() }

// Schema describes the delta rows' columns.
func (b *Subscription) Schema() *types.Schema { return b.c.s.cfg.Schema }

// Mode reports the delta rendering.
func (b *Subscription) Mode() Mode { return b.c.s.cfg.Mode }

// Name returns the subscription's diagnostic label (typically the SQL).
func (b *Subscription) Name() string { return b.c.s.cfg.Name }

// Cancel terminates the subscription immediately, abandoning any
// undelivered output. Safe to call any number of times and concurrently
// with ingestion; a producer blocked on this subscriber's full channel is
// released. Peers sharing the resident pipeline are unaffected; the
// pipeline itself tears down only when its last subscriber departs.
func (b *Subscription) Cancel() { b.c.cancel() }

// Close gracefully finishes the subscription. While other subscribers share
// the resident pipeline, Close merely detaches this cursor (returning a
// delivery the close interrupted, if any); the last subscriber's Close
// completes the standing query — ingestion stops, the pipeline input
// finishes (bounded relations close, pending EMIT timers flush), and the
// emissions those completions produce are returned as the final delta (nil
// if there were none). The delta channel closes; drain it before or after
// Close to observe earlier deliveries.
func (b *Subscription) Close() (*Delta, error) { return b.c.closeGraceful() }
