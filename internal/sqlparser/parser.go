package sqlparser

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/types"
)

// Parse parses one SQL query (optionally terminated by a semicolon).
func Parse(sql string) (*Query, error) {
	toks, err := Lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.peek().Upper == ";" {
		p.next()
	}
	if p.peek().Kind != TokEOF {
		return nil, p.errf("unexpected %s after end of query", p.peek())
	}
	return q, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }
func (p *parser) peek2() Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	t := p.peek()
	return &SyntaxError{Msg: fmt.Sprintf(format, args...), Line: t.Line, Col: t.Col}
}

// matchKw consumes the next token if it is the given keyword.
func (p *parser) matchKw(kw string) bool {
	if p.peek().Kind == TokIdent && p.peek().Upper == kw {
		p.next()
		return true
	}
	return false
}

// matchOp consumes the next token if it is the given operator.
func (p *parser) matchOp(op string) bool {
	if p.peek().Kind == TokOp && p.peek().Upper == op {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.matchKw(kw) {
		return p.errf("expected %s, found %s", kw, p.peek())
	}
	return nil
}

func (p *parser) expectOp(op string) error {
	if !p.matchOp(op) {
		return p.errf("expected %q, found %s", op, p.peek())
	}
	return nil
}

func (p *parser) isKw(kw string) bool {
	return p.peek().Kind == TokIdent && p.peek().Upper == kw
}

// reservedAfterRelation lists keywords that terminate a table reference, so
// a bare identifier after a relation is treated as its alias only when it is
// not one of these.
var reservedAfterRelation = map[string]bool{
	"WHERE": true, "GROUP": true, "HAVING": true, "ORDER": true, "LIMIT": true,
	"EMIT": true, "UNION": true, "INTERSECT": true, "EXCEPT": true, "ON": true,
	"JOIN": true, "INNER": true, "LEFT": true, "RIGHT": true, "FULL": true,
	"CROSS": true, "AS": true, "AND": true, "OR": true, "NOT": true,
	"SELECT": true, "FROM": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
}

// parseQuery parses a query body plus trailing ORDER BY/LIMIT/EMIT.
func (p *parser) parseQuery() (*Query, error) {
	body, err := p.parseQueryBody()
	if err != nil {
		return nil, err
	}
	q := &Query{Body: body}
	if p.matchKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.matchKw("DESC") {
				item.Desc = true
			} else {
				p.matchKw("ASC")
			}
			q.OrderBy = append(q.OrderBy, item)
			if !p.matchOp(",") {
				break
			}
		}
	}
	if p.matchKw("LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Limit = e
	}
	if p.matchKw("EMIT") {
		emit, err := p.parseEmit()
		if err != nil {
			return nil, err
		}
		q.Emit = emit
	}
	return q, nil
}

// parseEmit parses the body of an EMIT clause (after the EMIT keyword):
// [STREAM] [AFTER WATERMARK | AFTER DELAY expr [AND AFTER ...] ...].
func (p *parser) parseEmit() (*EmitClause, error) {
	emit := &EmitClause{}
	if p.matchKw("STREAM") {
		emit.Stream = true
	}
	first := true
	for {
		if !p.isKw("AFTER") {
			if first {
				break
			}
			return nil, p.errf("expected AFTER in EMIT clause, found %s", p.peek())
		}
		p.next() // AFTER
		switch {
		case p.matchKw("WATERMARK"):
			emit.AfterWatermark = true
		case p.matchKw("DELAY"):
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			emit.AfterDelay = e
		default:
			return nil, p.errf("expected WATERMARK or DELAY after AFTER, found %s", p.peek())
		}
		first = false
		if !p.matchKw("AND") {
			break
		}
	}
	if !emit.Stream && !emit.AfterWatermark && emit.AfterDelay == nil {
		return nil, p.errf("empty EMIT clause")
	}
	return emit, nil
}

// parseQueryBody parses SELECT ... [UNION [ALL] SELECT ...]*, left-assoc.
func (p *parser) parseQueryBody() (QueryBody, error) {
	left, err := p.parseSelectOrParen()
	if err != nil {
		return nil, err
	}
	for {
		var op SetOpKind
		switch {
		case p.isKw("UNION"):
			op = Union
		case p.isKw("INTERSECT"):
			op = Intersect
		case p.isKw("EXCEPT"):
			op = Except
		default:
			return left, nil
		}
		p.next()
		all := p.matchKw("ALL")
		right, err := p.parseSelectOrParen()
		if err != nil {
			return nil, err
		}
		left = &SetOpQuery{Op: op, All: all, Left: left, Right: right}
	}
}

func (p *parser) parseSelectOrParen() (QueryBody, error) {
	if p.matchOp("(") {
		body, err := p.parseQueryBody()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return body, nil
	}
	return p.parseSelect()
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{}
	if p.matchKw("DISTINCT") {
		s.Distinct = true
	} else {
		p.matchKw("ALL")
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.matchOp(",") {
			break
		}
	}
	if p.matchKw("FROM") {
		for {
			t, err := p.parseTableExpr()
			if err != nil {
				return nil, err
			}
			s.From = append(s.From, t)
			if !p.matchOp(",") {
				break
			}
		}
	}
	if p.matchKw("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	if p.matchKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.matchOp(",") {
				break
			}
		}
	}
	if p.matchKw("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Having = e
	}
	return s, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.matchOp("*") {
		return SelectItem{Star: true}, nil
	}
	// Qualified star: ident.*
	if p.peek().Kind == TokIdent && p.peek2().Upper == "." &&
		p.pos+2 < len(p.toks) && p.toks[p.pos+2].Upper == "*" {
		tbl := p.next().Text
		p.next() // .
		p.next() // *
		return SelectItem{Star: true, StarTable: tbl}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.matchKw("AS") {
		if p.peek().Kind != TokIdent {
			return item, p.errf("expected alias after AS, found %s", p.peek())
		}
		item.Alias = p.next().Text
	} else if p.peek().Kind == TokIdent && !reservedAfterRelation[p.peek().Upper] {
		item.Alias = p.next().Text
	}
	return item, nil
}

// parseTableExpr parses one FROM element, including chained explicit JOINs.
func (p *parser) parseTableExpr() (TableExpr, error) {
	left, err := p.parsePrimaryTable()
	if err != nil {
		return nil, err
	}
	for {
		var kind JoinKind
		switch {
		case p.isKw("JOIN"):
			p.next()
			kind = InnerJoin
		case p.isKw("INNER"):
			p.next()
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
			kind = InnerJoin
		case p.isKw("LEFT"):
			p.next()
			p.matchKw("OUTER")
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
			kind = LeftJoin
		case p.isKw("RIGHT"):
			p.next()
			p.matchKw("OUTER")
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
			kind = RightJoin
		case p.isKw("FULL"):
			p.next()
			p.matchKw("OUTER")
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
			kind = FullJoin
		case p.isKw("CROSS"):
			p.next()
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
			kind = CrossJoin
		default:
			return left, nil
		}
		right, err := p.parsePrimaryTable()
		if err != nil {
			return nil, err
		}
		j := &JoinExpr{Kind: kind, Left: left, Right: right}
		if kind != CrossJoin {
			if err := p.expectKw("ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			j.On = on
		}
		left = j
	}
}

func (p *parser) parsePrimaryTable() (TableExpr, error) {
	// Derived table: ( query ) alias
	if p.matchOp("(") {
		q, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		ref := &SubqueryRef{Query: q}
		ref.Alias = p.parseOptionalAlias()
		return ref, nil
	}
	if p.peek().Kind != TokIdent {
		return nil, p.errf("expected table name, found %s", p.peek())
	}
	name := p.next().Text
	// Table-valued function: name(...)
	if p.peek().Upper == "(" {
		p.next()
		ref := &TVFRef{Name: strings.ToUpper(name)}
		if !p.matchOp(")") {
			for {
				arg, err := p.parseTVFArg()
				if err != nil {
					return nil, err
				}
				ref.Args = append(ref.Args, arg)
				if !p.matchOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
		}
		ref.Alias = p.parseOptionalAlias()
		return ref, nil
	}
	ref := &TableRef{Name: name}
	// AS OF SYSTEM TIME expr (temporal table access). The AS here is part
	// of the construct, not an alias, so look ahead for OF.
	if p.isKw("AS") && p.peek2().Upper == "OF" {
		p.next() // AS
		p.next() // OF
		if err := p.expectKw("SYSTEM"); err != nil {
			return nil, err
		}
		if err := p.expectKw("TIME"); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ref.AsOf = e
	}
	ref.Alias = p.parseOptionalAlias()
	return ref, nil
}

func (p *parser) parseOptionalAlias() string {
	if p.matchKw("AS") {
		if p.peek().Kind == TokIdent {
			return p.next().Text
		}
		return ""
	}
	if p.peek().Kind == TokIdent && !reservedAfterRelation[p.peek().Upper] {
		return p.next().Text
	}
	return ""
}

func (p *parser) parseTVFArg() (TVFArg, error) {
	arg := TVFArg{}
	// Named argument: ident => value
	if p.peek().Kind == TokIdent && p.peek2().Upper == "=>" {
		arg.Name = strings.ToLower(p.next().Text)
		p.next() // =>
	}
	val, err := p.parseTVFArgValue()
	if err != nil {
		return arg, err
	}
	arg.Value = val
	return arg, nil
}

func (p *parser) parseTVFArgValue() (TVFArgValue, error) {
	switch {
	case p.isKw("TABLE"):
		p.next()
		// TABLE(name) or TABLE name (the paper uses both spellings).
		if p.matchOp("(") {
			t, err := p.parseTableExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &TableArg{Table: t}, nil
		}
		if p.peek().Kind != TokIdent {
			return nil, p.errf("expected table name after TABLE, found %s", p.peek())
		}
		return &TableArg{Table: &TableRef{Name: p.next().Text}}, nil
	case p.isKw("DESCRIPTOR"):
		p.next()
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var cols []string
		for {
			if p.peek().Kind != TokIdent {
				return nil, p.errf("expected column name in DESCRIPTOR, found %s", p.peek())
			}
			cols = append(cols, p.next().Text)
			if !p.matchOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &DescriptorArg{Cols: cols}, nil
	default:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &ExprArg{E: e}, nil
	}
}

// ---- Expressions (precedence climbing) ----

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.matchKw("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpOr, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.isKw("AND") {
		// EMIT ... AFTER DELAY <expr> AND AFTER WATERMARK: the AND here
		// belongs to the EMIT clause, not the expression.
		if p.peek2().Upper == "AFTER" {
			return left, nil
		}
		p.next()
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpAnd, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.matchKw("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Neg: false, E: e}, nil
	}
	return p.parseComparison()
}

var compOps = map[string]BinOpKind{
	"=": OpEq, "<>": OpNe, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// Postfix predicates.
	for {
		if p.peek().Kind == TokOp {
			if op, ok := compOps[p.peek().Upper]; ok {
				p.next()
				right, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				left = &BinaryExpr{Op: op, L: left, R: right}
				continue
			}
		}
		switch {
		case p.isKw("BETWEEN") || (p.isKw("NOT") && p.peek2().Upper == "BETWEEN"):
			not := p.matchKw("NOT")
			p.next() // BETWEEN
			lo, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &BetweenExpr{E: left, Lo: lo, Hi: hi, Not: not}
		case p.isKw("IS"):
			p.next()
			not := p.matchKw("NOT")
			if err := p.expectKw("NULL"); err != nil {
				return nil, err
			}
			left = &IsNullExpr{E: left, Not: not}
		case p.isKw("IN") || (p.isKw("NOT") && p.peek2().Upper == "IN"):
			not := p.matchKw("NOT")
			p.next() // IN
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			var list []Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				list = append(list, e)
				if !p.matchOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			left = &InExpr{E: left, List: list, Not: not}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOpKind
		switch {
		case p.matchOp("+"):
			op = OpAdd
		case p.matchOp("-"):
			op = OpSub
		case p.matchOp("||"):
			op = OpConcat
		default:
			return left, nil
		}
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, L: left, R: right}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOpKind
		switch {
		case p.matchOp("*"):
			op = OpMul
		case p.matchOp("/"):
			op = OpDiv
		default:
			return left, nil
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, L: left, R: right}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.matchOp("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Neg: true, E: e}, nil
	}
	p.matchOp("+") // unary plus is a no-op
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.next()
		if strings.Contains(t.Text, ".") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.Text)
			}
			return &Literal{Val: types.NewFloat(f)}, nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", t.Text)
		}
		return &Literal{Val: types.NewInt(i)}, nil
	case TokString:
		p.next()
		return &Literal{Val: types.NewString(t.Text)}, nil
	case TokOp:
		if t.Upper == "(" {
			p.next()
			// Scalar subquery or parenthesised expression.
			if p.isKw("SELECT") {
				q, err := p.parseQuery()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return &SubqueryExpr{Query: q}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errf("unexpected %s", t)
	case TokIdent:
		if reservedAfterRelation[t.Upper] && t.Upper != "END" {
			return nil, p.errf("unexpected keyword %s in expression", t.Upper)
		}
		switch t.Upper {
		case "NULL":
			p.next()
			return &Literal{Val: types.Null()}, nil
		case "TRUE":
			p.next()
			return &Literal{Val: types.NewBool(true)}, nil
		case "FALSE":
			p.next()
			return &Literal{Val: types.NewBool(false)}, nil
		case "INTERVAL":
			return p.parseIntervalLiteral()
		case "TIMESTAMP":
			// TIMESTAMP 'h:mm[:ss]' literal.
			if p.peek2().Kind == TokString {
				p.next()
				lit := p.next()
				tv, err := parseTimeLiteral(lit.Text)
				if err != nil {
					return nil, &SyntaxError{Msg: err.Error(), Line: lit.Line, Col: lit.Col}
				}
				return &Literal{Val: types.NewTimestamp(tv)}, nil
			}
		case "CASE":
			return p.parseCase()
		case "CAST":
			return p.parseCast()
		}
		p.next()
		// Function call: ident(...)
		if p.peek().Upper == "(" && p.peek().Kind == TokOp {
			return p.parseFuncCall(t.Text)
		}
		// Qualified column: ident.ident
		if p.peek().Upper == "." && p.peek().Kind == TokOp {
			p.next()
			if p.peek().Kind != TokIdent {
				return nil, p.errf("expected column name after %q., found %s", t.Text, p.peek())
			}
			col := p.next().Text
			return &ColumnRef{Table: t.Text, Name: col}, nil
		}
		return &ColumnRef{Name: t.Text}, nil
	default:
		return nil, p.errf("unexpected %s", t)
	}
}

func (p *parser) parseFuncCall(name string) (Expr, error) {
	// The opening paren is the current token.
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	f := &FuncCall{Name: strings.ToUpper(name)}
	if p.matchOp("*") {
		f.Star = true
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return f, nil
	}
	if p.matchOp(")") {
		return f, nil
	}
	if p.matchKw("DISTINCT") {
		f.Distinct = true
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Args = append(f.Args, e)
		if !p.matchOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return f, nil
}

func (p *parser) parseCase() (Expr, error) {
	if err := p.expectKw("CASE"); err != nil {
		return nil, err
	}
	c := &CaseExpr{}
	if !p.isKw("WHEN") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = e
	}
	for p.matchKw("WHEN") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("THEN"); err != nil {
			return nil, err
		}
		th, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, WhenClause{When: w, Then: th})
	}
	if len(c.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN")
	}
	if p.matchKw("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKw("END"); err != nil {
		return nil, err
	}
	return c, nil
}

var castKinds = map[string]types.Kind{
	"BIGINT": types.KindInt64, "INT": types.KindInt64, "INTEGER": types.KindInt64,
	"DOUBLE": types.KindFloat64, "FLOAT": types.KindFloat64, "REAL": types.KindFloat64,
	"VARCHAR": types.KindString, "CHAR": types.KindString, "TEXT": types.KindString, "STRING": types.KindString,
	"BOOLEAN": types.KindBool, "BOOL": types.KindBool,
	"TIMESTAMP": types.KindTimestamp,
}

func (p *parser) parseCast() (Expr, error) {
	if err := p.expectKw("CAST"); err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("AS"); err != nil {
		return nil, err
	}
	if p.peek().Kind != TokIdent {
		return nil, p.errf("expected type name in CAST, found %s", p.peek())
	}
	tn := p.next().Upper
	kind, ok := castKinds[tn]
	if !ok {
		return nil, p.errf("unknown type %q in CAST", tn)
	}
	// Allow VARCHAR(n) / CHAR(n).
	if p.matchOp("(") {
		if p.peek().Kind != TokNumber {
			return nil, p.errf("expected length in type, found %s", p.peek())
		}
		p.next()
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &CastExpr{E: e, To: kind}, nil
}

var intervalUnits = map[string]types.Duration{
	"MILLISECOND": types.Millisecond, "MILLISECONDS": types.Millisecond,
	"SECOND": types.Second, "SECONDS": types.Second,
	"MINUTE": types.Minute, "MINUTES": types.Minute,
	"HOUR": types.Hour, "HOURS": types.Hour,
	"DAY": types.Day, "DAYS": types.Day,
}

func (p *parser) parseIntervalLiteral() (Expr, error) {
	if err := p.expectKw("INTERVAL"); err != nil {
		return nil, err
	}
	if p.peek().Kind != TokString {
		return nil, p.errf("expected quoted value after INTERVAL, found %s", p.peek())
	}
	lit := p.next()
	n, err := strconv.ParseInt(strings.TrimSpace(lit.Text), 10, 64)
	if err != nil {
		return nil, &SyntaxError{Msg: fmt.Sprintf("bad interval value %q", lit.Text), Line: lit.Line, Col: lit.Col}
	}
	if p.peek().Kind != TokIdent {
		return nil, p.errf("expected interval unit, found %s", p.peek())
	}
	unitTok := p.next()
	unit, ok := intervalUnits[unitTok.Upper]
	if !ok {
		return nil, &SyntaxError{Msg: fmt.Sprintf("unknown interval unit %q", unitTok.Text), Line: unitTok.Line, Col: unitTok.Col}
	}
	return &Literal{Val: types.NewInterval(types.Duration(n) * unit)}, nil
}

// parseTimeLiteral parses "h:mm", "h:mm:ss", or a bare integer (epoch ms).
func parseTimeLiteral(s string) (types.Time, error) {
	parts := strings.Split(strings.TrimSpace(s), ":")
	switch len(parts) {
	case 1:
		ms, err := strconv.ParseInt(parts[0], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad timestamp literal %q", s)
		}
		return types.Time(ms), nil
	case 2, 3:
		h, err1 := strconv.Atoi(parts[0])
		m, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			return 0, fmt.Errorf("bad timestamp literal %q", s)
		}
		sec := 0
		if len(parts) == 3 {
			var err error
			sec, err = strconv.Atoi(parts[2])
			if err != nil {
				return 0, fmt.Errorf("bad timestamp literal %q", s)
			}
		}
		return types.ClockTime(h, m, sec), nil
	default:
		return 0, fmt.Errorf("bad timestamp literal %q", s)
	}
}
