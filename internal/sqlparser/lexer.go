// Package sqlparser implements the lexer, AST, and recursive-descent parser
// for the engine's SQL dialect: standard SQL queries (joins, subqueries,
// aggregates, CASE, set operations) plus the paper's streaming constructs —
// table-valued windowing functions with named arguments and DESCRIPTOR
// column references, INTERVAL literals, the EMIT materialization clause
// (Extensions 4–7), and AS OF SYSTEM TIME temporal access.
package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexical tokens.
type TokenKind uint8

const (
	// TokEOF terminates the token stream.
	TokEOF TokenKind = iota
	// TokIdent is an identifier or keyword (keywords are recognised by
	// the parser; Text preserves the original spelling, Upper the
	// canonical form).
	TokIdent
	// TokNumber is an integer or decimal literal.
	TokNumber
	// TokString is a single-quoted string literal (Text holds the
	// unquoted value).
	TokString
	// TokOp is an operator or punctuation token such as , ( ) = <> =>.
	TokOp
)

// Token is one lexical token with its source position (for error messages).
type Token struct {
	Kind  TokenKind
	Text  string // original text (unquoted for strings)
	Upper string // uppercase form for idents/operators
	Pos   int    // byte offset in the input
	Line  int    // 1-based line number
	Col   int    // 1-based column number
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokString:
		return fmt.Sprintf("'%s'", t.Text)
	default:
		return t.Text
	}
}

// SyntaxError is a lexing or parsing error with position information.
type SyntaxError struct {
	Msg  string
	Line int
	Col  int
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("sql: %s (line %d, column %d)", e.Msg, e.Line, e.Col)
}

// Lex tokenizes a SQL text. It supports identifiers (optionally
// double-quoted), numbers, single-quoted strings with ” escaping, line
// comments (--), block comments (/* */), and multi-character operators
// (<=, >=, <>, !=, =>, ||).
func Lex(input string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	n := len(input)
	advance := func(k int) {
		for j := 0; j < k; j++ {
			if input[i+j] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		i += k
	}
	errf := func(format string, args ...any) error {
		return &SyntaxError{Msg: fmt.Sprintf(format, args...), Line: line, Col: col}
	}
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			advance(1)
		case c == '-' && i+1 < n && input[i+1] == '-':
			for i < n && input[i] != '\n' {
				advance(1)
			}
		case c == '/' && i+1 < n && input[i+1] == '*':
			start := i
			advance(2)
			for i < n && !(input[i] == '*' && i+1 < n && input[i+1] == '/') {
				advance(1)
			}
			if i >= n {
				return nil, errf("unterminated block comment starting at offset %d", start)
			}
			advance(2)
		case c == '\'':
			pos, ln, cl := i, line, col
			advance(1)
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' {
						sb.WriteByte('\'')
						advance(2)
						continue
					}
					advance(1)
					closed = true
					break
				}
				sb.WriteByte(input[i])
				advance(1)
			}
			if !closed {
				return nil, &SyntaxError{Msg: "unterminated string literal", Line: ln, Col: cl}
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: pos, Line: ln, Col: cl})
		case c == '"':
			pos, ln, cl := i, line, col
			advance(1)
			start := i
			for i < n && input[i] != '"' {
				advance(1)
			}
			if i >= n {
				return nil, &SyntaxError{Msg: "unterminated quoted identifier", Line: ln, Col: cl}
			}
			text := input[start:i]
			advance(1)
			toks = append(toks, Token{Kind: TokIdent, Text: text, Upper: strings.ToUpper(text), Pos: pos, Line: ln, Col: cl})
		case isDigit(c) || (c == '.' && i+1 < n && isDigit(input[i+1])):
			pos, ln, cl := i, line, col
			start := i
			seenDot := false
			for i < n && (isDigit(input[i]) || (input[i] == '.' && !seenDot)) {
				if input[i] == '.' {
					seenDot = true
				}
				advance(1)
			}
			toks = append(toks, Token{Kind: TokNumber, Text: input[start:i], Pos: pos, Line: ln, Col: cl})
		case isIdentStart(c):
			pos, ln, cl := i, line, col
			start := i
			for i < n && isIdentPart(input[i]) {
				advance(1)
			}
			text := input[start:i]
			toks = append(toks, Token{Kind: TokIdent, Text: text, Upper: strings.ToUpper(text), Pos: pos, Line: ln, Col: cl})
		default:
			pos, ln, cl := i, line, col
			two := ""
			if i+1 < n {
				two = input[i : i+2]
			}
			switch two {
			case "<=", ">=", "<>", "!=", "=>", "||":
				toks = append(toks, Token{Kind: TokOp, Text: two, Upper: two, Pos: pos, Line: ln, Col: cl})
				advance(2)
				continue
			}
			switch c {
			case '+', '-', '*', '/', '%', '(', ')', ',', '.', ';', '=', '<', '>':
				toks = append(toks, Token{Kind: TokOp, Text: string(c), Upper: string(c), Pos: pos, Line: ln, Col: cl})
				advance(1)
			default:
				return nil, errf("unexpected character %q", string(rune(c)))
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: i, Line: line, Col: col})
	return toks, nil
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || unicode.IsLetter(rune(c)) }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) || c == '$' }
