package sqlparser

import (
	"fmt"
	"strings"

	"repro/internal/types"
)

// Query is a full query: a body (SELECT or set operation) plus the
// top-level ORDER BY / LIMIT and the paper's EMIT materialization clause.
type Query struct {
	Body    QueryBody
	OrderBy []OrderItem
	Limit   Expr // nil when absent
	Emit    *EmitClause
}

// QueryBody is either a *SelectStmt or a *SetOpQuery.
type QueryBody interface {
	queryBody()
	String() string
}

// SelectStmt is a single SELECT ... FROM ... WHERE ... GROUP BY ... HAVING.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableExpr // comma-separated relations (implicit cross join)
	Where    Expr        // nil when absent
	GroupBy  []Expr
	Having   Expr // nil when absent
}

func (*SelectStmt) queryBody() {}

// SetOpKind enumerates set operations.
type SetOpKind uint8

// Set operation kinds.
const (
	Union SetOpKind = iota
	Intersect
	Except
)

func (k SetOpKind) String() string {
	switch k {
	case Union:
		return "UNION"
	case Intersect:
		return "INTERSECT"
	default:
		return "EXCEPT"
	}
}

// SetOpQuery combines two query bodies with UNION/INTERSECT/EXCEPT.
type SetOpQuery struct {
	Op    SetOpKind
	All   bool
	Left  QueryBody
	Right QueryBody
}

func (*SetOpQuery) queryBody() {}

// SelectItem is one projection item: an expression with optional alias, or a
// star (possibly qualified: t.*).
type SelectItem struct {
	Expr      Expr
	Alias     string
	Star      bool
	StarTable string // qualifier for t.*; empty for bare *
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// EmitClause captures the EMIT extensions (Extensions 4–7):
// EMIT [STREAM] [AFTER WATERMARK] [AND] [AFTER DELAY interval].
type EmitClause struct {
	Stream         bool
	AfterWatermark bool
	AfterDelay     Expr // interval expression; nil when absent
}

// TableExpr is a relation in the FROM clause.
type TableExpr interface {
	tableExpr()
	String() string
}

// TableRef names a catalog table or stream, with optional alias and optional
// AS OF SYSTEM TIME snapshot expression (temporal access).
type TableRef struct {
	Name  string
	Alias string
	AsOf  Expr // nil unless AS OF SYSTEM TIME was given
}

// SubqueryRef is a derived table: a parenthesised query with an alias.
type SubqueryRef struct {
	Query *Query
	Alias string
}

// TVFRef invokes a table-valued function (Tumble, Hop, Session) in FROM.
type TVFRef struct {
	Name  string
	Args  []TVFArg
	Alias string
}

// JoinKind enumerates explicit join types.
type JoinKind uint8

// Join kinds.
const (
	InnerJoin JoinKind = iota
	LeftJoin
	RightJoin
	FullJoin
	CrossJoin
)

func (k JoinKind) String() string {
	switch k {
	case InnerJoin:
		return "INNER JOIN"
	case LeftJoin:
		return "LEFT JOIN"
	case RightJoin:
		return "RIGHT JOIN"
	case FullJoin:
		return "FULL JOIN"
	default:
		return "CROSS JOIN"
	}
}

// JoinExpr is an explicit JOIN with an ON condition.
type JoinExpr struct {
	Kind  JoinKind
	Left  TableExpr
	Right TableExpr
	On    Expr // nil for CROSS JOIN
}

func (*TableRef) tableExpr()    {}
func (*SubqueryRef) tableExpr() {}
func (*TVFRef) tableExpr()      {}
func (*JoinExpr) tableExpr()    {}

// TVFArg is one (possibly named) argument of a table-valued function call.
type TVFArg struct {
	Name  string // "" for positional
	Value TVFArgValue
}

// TVFArgValue is a TableArg, DescriptorArg, or ExprArg.
type TVFArgValue interface {
	tvfArgValue()
	String() string
}

// TableArg passes a relation: TABLE(name), TABLE name, or a subquery.
type TableArg struct {
	Table TableExpr
}

// DescriptorArg passes column names: DESCRIPTOR(col, ...).
type DescriptorArg struct {
	Cols []string
}

// ExprArg passes a scalar expression.
type ExprArg struct {
	E Expr
}

func (*TableArg) tvfArgValue()      {}
func (*DescriptorArg) tvfArgValue() {}
func (*ExprArg) tvfArgValue()       {}

// Expr is a scalar expression node.
type Expr interface {
	exprNode()
	String() string
}

// ColumnRef references a column, optionally qualified by a table alias.
type ColumnRef struct {
	Table string // "" when unqualified
	Name  string
}

// Literal is a constant value (number, string, boolean, NULL, interval,
// timestamp).
type Literal struct {
	Val types.Value
}

// BinOpKind enumerates binary operators.
type BinOpKind uint8

// Binary operators.
const (
	OpAdd BinOpKind = iota
	OpSub
	OpMul
	OpDiv
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpConcat
)

var binOpNames = map[BinOpKind]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
	OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "AND", OpOr: "OR", OpConcat: "||",
}

func (k BinOpKind) String() string { return binOpNames[k] }

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Op   BinOpKind
	L, R Expr
}

// UnaryExpr applies unary minus or NOT.
type UnaryExpr struct {
	Neg bool // true: -E, false: NOT E
	E   Expr
}

// FuncCall invokes a scalar or aggregate function. COUNT(*) sets Star.
type FuncCall struct {
	Name     string // canonical upper-case name
	Args     []Expr
	Distinct bool
	Star     bool
}

// CaseExpr is CASE [operand] WHEN ... THEN ... [ELSE ...] END.
type CaseExpr struct {
	Operand Expr // nil for searched CASE
	Whens   []WhenClause
	Else    Expr // nil when absent
}

// WhenClause is one WHEN/THEN pair.
type WhenClause struct {
	When Expr
	Then Expr
}

// SubqueryExpr is a scalar subquery.
type SubqueryExpr struct {
	Query *Query
}

// BetweenExpr is E [NOT] BETWEEN Lo AND Hi.
type BetweenExpr struct {
	E, Lo, Hi Expr
	Not       bool
}

// IsNullExpr is E IS [NOT] NULL.
type IsNullExpr struct {
	E   Expr
	Not bool
}

// InExpr is E [NOT] IN (value, ...).
type InExpr struct {
	E    Expr
	List []Expr
	Not  bool
}

// CastExpr is CAST(E AS type).
type CastExpr struct {
	E  Expr
	To types.Kind
}

func (*ColumnRef) exprNode()    {}
func (*Literal) exprNode()      {}
func (*BinaryExpr) exprNode()   {}
func (*UnaryExpr) exprNode()    {}
func (*FuncCall) exprNode()     {}
func (*CaseExpr) exprNode()     {}
func (*SubqueryExpr) exprNode() {}
func (*BetweenExpr) exprNode()  {}
func (*IsNullExpr) exprNode()   {}
func (*InExpr) exprNode()       {}
func (*CastExpr) exprNode()     {}

// ---- String rendering (produces re-parseable SQL) ----

func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString(q.Body.String())
	if len(q.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range q.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(o.Expr.String())
			if o.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	if q.Limit != nil {
		sb.WriteString(" LIMIT ")
		sb.WriteString(q.Limit.String())
	}
	if q.Emit != nil {
		sb.WriteString(" EMIT")
		if q.Emit.Stream {
			sb.WriteString(" STREAM")
		}
		wroteAfter := false
		if q.Emit.AfterDelay != nil {
			sb.WriteString(" AFTER DELAY ")
			sb.WriteString(q.Emit.AfterDelay.String())
			wroteAfter = true
		}
		if q.Emit.AfterWatermark {
			if wroteAfter {
				sb.WriteString(" AND")
			}
			sb.WriteString(" AFTER WATERMARK")
		}
	}
	return sb.String()
}

func (s *SelectStmt) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		switch {
		case it.Star && it.StarTable != "":
			sb.WriteString(it.StarTable + ".*")
		case it.Star:
			sb.WriteString("*")
		default:
			sb.WriteString(it.Expr.String())
			if it.Alias != "" {
				sb.WriteString(" AS " + it.Alias)
			}
		}
	}
	if len(s.From) > 0 {
		sb.WriteString(" FROM ")
		for i, t := range s.From {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(t.String())
		}
	}
	if s.Where != nil {
		sb.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(g.String())
		}
	}
	if s.Having != nil {
		sb.WriteString(" HAVING " + s.Having.String())
	}
	return sb.String()
}

func (s *SetOpQuery) String() string {
	op := s.Op.String()
	if s.All {
		op += " ALL"
	}
	return fmt.Sprintf("%s %s %s", s.Left.String(), op, s.Right.String())
}

func (t *TableRef) String() string {
	s := t.Name
	if t.AsOf != nil {
		s += " AS OF SYSTEM TIME " + t.AsOf.String()
	}
	if t.Alias != "" {
		s += " " + t.Alias
	}
	return s
}

func (t *SubqueryRef) String() string {
	s := "(" + t.Query.String() + ")"
	if t.Alias != "" {
		s += " " + t.Alias
	}
	return s
}

func (t *TVFRef) String() string {
	var sb strings.Builder
	sb.WriteString(t.Name)
	sb.WriteByte('(')
	for i, a := range t.Args {
		if i > 0 {
			sb.WriteString(", ")
		}
		if a.Name != "" {
			sb.WriteString(a.Name + " => ")
		}
		sb.WriteString(a.Value.String())
	}
	sb.WriteByte(')')
	if t.Alias != "" {
		sb.WriteString(" " + t.Alias)
	}
	return sb.String()
}

func (j *JoinExpr) String() string {
	s := j.Left.String() + " " + j.Kind.String() + " " + j.Right.String()
	if j.On != nil {
		s += " ON " + j.On.String()
	}
	return s
}

func (a *TableArg) String() string { return "TABLE(" + a.Table.String() + ")" }

func (a *DescriptorArg) String() string {
	return "DESCRIPTOR(" + strings.Join(a.Cols, ", ") + ")"
}

func (a *ExprArg) String() string { return a.E.String() }

func (c *ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

func (l *Literal) String() string {
	switch l.Val.Kind() {
	case types.KindString:
		return "'" + strings.ReplaceAll(l.Val.Str(), "'", "''") + "'"
	case types.KindInterval:
		d := l.Val.Interval()
		switch {
		case d%types.Hour == 0 && d != 0:
			return fmt.Sprintf("INTERVAL '%d' HOUR", int64(d/types.Hour))
		case d%types.Minute == 0:
			return fmt.Sprintf("INTERVAL '%d' MINUTE", int64(d/types.Minute))
		case d%types.Second == 0:
			return fmt.Sprintf("INTERVAL '%d' SECOND", int64(d/types.Second))
		default:
			return fmt.Sprintf("INTERVAL '%d' MILLISECOND", int64(d))
		}
	case types.KindTimestamp:
		return fmt.Sprintf("TIMESTAMP '%s'", l.Val.Timestamp())
	default:
		return l.Val.String()
	}
}

func (b *BinaryExpr) String() string {
	return "(" + b.L.String() + " " + b.Op.String() + " " + b.R.String() + ")"
}

func (u *UnaryExpr) String() string {
	if u.Neg {
		return "(-" + u.E.String() + ")"
	}
	return "(NOT " + u.E.String() + ")"
}

func (f *FuncCall) String() string {
	var sb strings.Builder
	sb.WriteString(f.Name)
	sb.WriteByte('(')
	if f.Star {
		sb.WriteByte('*')
	} else {
		if f.Distinct {
			sb.WriteString("DISTINCT ")
		}
		for i, a := range f.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(a.String())
		}
	}
	sb.WriteByte(')')
	return sb.String()
}

func (c *CaseExpr) String() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	if c.Operand != nil {
		sb.WriteString(" " + c.Operand.String())
	}
	for _, w := range c.Whens {
		sb.WriteString(" WHEN " + w.When.String() + " THEN " + w.Then.String())
	}
	if c.Else != nil {
		sb.WriteString(" ELSE " + c.Else.String())
	}
	sb.WriteString(" END")
	return sb.String()
}

func (s *SubqueryExpr) String() string { return "(" + s.Query.String() + ")" }

func (b *BetweenExpr) String() string {
	not := ""
	if b.Not {
		not = "NOT "
	}
	return "(" + b.E.String() + " " + not + "BETWEEN " + b.Lo.String() + " AND " + b.Hi.String() + ")"
}

func (i *IsNullExpr) String() string {
	if i.Not {
		return "(" + i.E.String() + " IS NOT NULL)"
	}
	return "(" + i.E.String() + " IS NULL)"
}

func (i *InExpr) String() string {
	var sb strings.Builder
	sb.WriteString("(" + i.E.String())
	if i.Not {
		sb.WriteString(" NOT")
	}
	sb.WriteString(" IN (")
	for j, e := range i.List {
		if j > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(e.String())
	}
	sb.WriteString("))")
	return sb.String()
}

func (c *CastExpr) String() string {
	return "CAST(" + c.E.String() + " AS " + c.To.String() + ")"
}
