package sqlparser

import (
	"strings"
	"testing"

	"repro/internal/types"
)

func mustParse(t *testing.T, sql string) *Query {
	t.Helper()
	q, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return q
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a.b, 'it''s', 1.5 -- comment\n/* block */ <= => <> \"Quoted\"")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, tok := range toks {
		if tok.Kind == TokEOF {
			break
		}
		kinds = append(kinds, tok.Text)
	}
	want := []string{"SELECT", "a", ".", "b", ",", "it's", ",", "1.5", "<=", "=>", "<>", "Quoted"}
	if len(kinds) != len(want) {
		t.Fatalf("tokens = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, kinds[i], want[i])
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, bad := range []string{"'unterminated", "\"unterminated", "/* unterminated", "SELECT @"} {
		if _, err := Lex(bad); err == nil {
			t.Errorf("Lex(%q) should fail", bad)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("SELECT\n  x")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("x at line %d col %d, want 2,3", toks[1].Line, toks[1].Col)
	}
}

func TestParseSimpleSelect(t *testing.T) {
	q := mustParse(t, "SELECT a, b AS bee, t.c FROM tbl WHERE a > 1 AND b = 'x'")
	sel := q.Body.(*SelectStmt)
	if len(sel.Items) != 3 {
		t.Fatalf("items = %d", len(sel.Items))
	}
	if sel.Items[1].Alias != "bee" {
		t.Errorf("alias = %q", sel.Items[1].Alias)
	}
	if cr := sel.Items[2].Expr.(*ColumnRef); cr.Table != "t" || cr.Name != "c" {
		t.Errorf("qualified ref = %+v", cr)
	}
	if _, ok := sel.From[0].(*TableRef); !ok {
		t.Errorf("from = %T", sel.From[0])
	}
	if sel.Where == nil {
		t.Error("missing where")
	}
}

func TestParseImplicitAlias(t *testing.T) {
	q := mustParse(t, "SELECT price maxPrice FROM Bid B")
	sel := q.Body.(*SelectStmt)
	if sel.Items[0].Alias != "maxPrice" {
		t.Errorf("implicit alias = %q", sel.Items[0].Alias)
	}
	if sel.From[0].(*TableRef).Alias != "B" {
		t.Errorf("table alias = %q", sel.From[0].(*TableRef).Alias)
	}
}

func TestParseGroupByHavingOrderLimit(t *testing.T) {
	q := mustParse(t, "SELECT k, SUM(v) FROM t GROUP BY k HAVING SUM(v) > 10 ORDER BY k DESC LIMIT 5")
	sel := q.Body.(*SelectStmt)
	if len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Fatal("group by / having missing")
	}
	if len(q.OrderBy) != 1 || !q.OrderBy[0].Desc {
		t.Fatal("order by missing")
	}
	if q.Limit == nil || q.Limit.(*Literal).Val.Int() != 5 {
		t.Fatal("limit missing")
	}
	agg := sel.Items[1].Expr.(*FuncCall)
	if agg.Name != "SUM" || len(agg.Args) != 1 {
		t.Fatalf("agg = %+v", agg)
	}
}

func TestParseCountStarDistinct(t *testing.T) {
	q := mustParse(t, "SELECT COUNT(*), COUNT(DISTINCT x) FROM t")
	sel := q.Body.(*SelectStmt)
	if !sel.Items[0].Expr.(*FuncCall).Star {
		t.Error("COUNT(*) star flag")
	}
	if !sel.Items[1].Expr.(*FuncCall).Distinct {
		t.Error("COUNT(DISTINCT) flag")
	}
}

func TestParseIntervalAndTimestampLiterals(t *testing.T) {
	q := mustParse(t, "SELECT INTERVAL '10' MINUTE, TIMESTAMP '8:07', INTERVAL '2' HOURS")
	sel := q.Body.(*SelectStmt)
	if v := sel.Items[0].Expr.(*Literal).Val; v.Interval() != 10*types.Minute {
		t.Errorf("interval = %v", v)
	}
	if v := sel.Items[1].Expr.(*Literal).Val; v.Timestamp() != types.ClockTime(8, 7) {
		t.Errorf("timestamp = %v", v)
	}
	if v := sel.Items[2].Expr.(*Literal).Val; v.Interval() != 2*types.Hour {
		t.Errorf("hours = %v", v)
	}
}

func TestParseTumbleTVF(t *testing.T) {
	q := mustParse(t, `SELECT * FROM Tumble(data => TABLE(Bid), timecol => DESCRIPTOR(bidtime), dur => INTERVAL '10' MINUTES) TumbleBid`)
	sel := q.Body.(*SelectStmt)
	tvf := sel.From[0].(*TVFRef)
	if tvf.Name != "TUMBLE" || tvf.Alias != "TumbleBid" {
		t.Fatalf("tvf = %+v", tvf)
	}
	if len(tvf.Args) != 3 {
		t.Fatalf("args = %d", len(tvf.Args))
	}
	if tvf.Args[0].Name != "data" {
		t.Errorf("arg0 name = %q", tvf.Args[0].Name)
	}
	ta := tvf.Args[0].Value.(*TableArg)
	if ta.Table.(*TableRef).Name != "Bid" {
		t.Errorf("table arg = %+v", ta)
	}
	da := tvf.Args[1].Value.(*DescriptorArg)
	if len(da.Cols) != 1 || da.Cols[0] != "bidtime" {
		t.Errorf("descriptor = %+v", da)
	}
	ea := tvf.Args[2].Value.(*ExprArg)
	if ea.E.(*Literal).Val.Interval() != 10*types.Minute {
		t.Errorf("dur = %+v", ea)
	}
}

func TestParseTableArgWithoutParens(t *testing.T) {
	// Listing 7 writes "data => TABLE Bids".
	q := mustParse(t, `SELECT * FROM Hop(data => TABLE Bids, timecol => DESCRIPTOR(bidtime), dur => INTERVAL '10' MINUTES, hopsize => INTERVAL '5' MINUTES)`)
	tvf := q.Body.(*SelectStmt).From[0].(*TVFRef)
	if tvf.Args[0].Value.(*TableArg).Table.(*TableRef).Name != "Bids" {
		t.Errorf("TABLE without parens failed: %+v", tvf.Args[0])
	}
}

func TestParsePaperQuery7(t *testing.T) {
	// The full Listing 2 query from the paper.
	sql := `
SELECT
  MaxBid.wstart, MaxBid.wend,
  Bid.bidtime, Bid.price, Bid.itemid
FROM
  Bid,
  (SELECT
     MAX(TumbleBid.price) maxPrice,
     TumbleBid.wstart wstart,
     TumbleBid.wend wend
   FROM Tumble(
     data => TABLE(Bid),
     timecol => DESCRIPTOR(bidtime),
     dur => INTERVAL '10' MINUTE) TumbleBid
   GROUP BY TumbleBid.wend) MaxBid
WHERE
  Bid.price = MaxBid.maxPrice AND
  Bid.bidtime >= MaxBid.wend - INTERVAL '10' MINUTE AND
  Bid.bidtime < MaxBid.wend;`
	q := mustParse(t, sql)
	sel := q.Body.(*SelectStmt)
	if len(sel.From) != 2 {
		t.Fatalf("from len = %d", len(sel.From))
	}
	sub, ok := sel.From[1].(*SubqueryRef)
	if !ok || sub.Alias != "MaxBid" {
		t.Fatalf("subquery = %+v", sel.From[1])
	}
	inner := sub.Query.Body.(*SelectStmt)
	if len(inner.GroupBy) != 1 {
		t.Fatalf("inner group by = %d", len(inner.GroupBy))
	}
	if _, ok := inner.From[0].(*TVFRef); !ok {
		t.Fatalf("inner from = %T", inner.From[0])
	}
	// WHERE is a conjunction of three predicates.
	and1 := sel.Where.(*BinaryExpr)
	if and1.Op != OpAnd {
		t.Fatal("where should be AND")
	}
}

func TestParseEmitVariants(t *testing.T) {
	cases := []struct {
		sql        string
		stream, wm bool
		delay      types.Duration
	}{
		{"SELECT a FROM t EMIT STREAM", true, false, 0},
		{"SELECT a FROM t EMIT AFTER WATERMARK", false, true, 0},
		{"SELECT a FROM t EMIT STREAM AFTER WATERMARK", true, true, 0},
		{"SELECT a FROM t EMIT STREAM AFTER DELAY INTERVAL '6' MINUTES", true, false, 6 * types.Minute},
		{"SELECT a FROM t EMIT STREAM AFTER DELAY INTERVAL '6' MINUTES AND AFTER WATERMARK", true, true, 6 * types.Minute},
		{"SELECT a FROM t EMIT AFTER DELAY INTERVAL '1' SECOND AND AFTER WATERMARK", false, true, types.Second},
	}
	for _, c := range cases {
		q := mustParse(t, c.sql)
		if q.Emit == nil {
			t.Fatalf("%q: no emit", c.sql)
		}
		if q.Emit.Stream != c.stream || q.Emit.AfterWatermark != c.wm {
			t.Errorf("%q: emit = %+v", c.sql, q.Emit)
		}
		if c.delay == 0 && q.Emit.AfterDelay != nil {
			t.Errorf("%q: unexpected delay", c.sql)
		}
		if c.delay != 0 {
			if q.Emit.AfterDelay == nil {
				t.Errorf("%q: missing delay", c.sql)
			} else if d := q.Emit.AfterDelay.(*Literal).Val.Interval(); d != c.delay {
				t.Errorf("%q: delay = %v", c.sql, d)
			}
		}
	}
}

func TestParseJoins(t *testing.T) {
	q := mustParse(t, "SELECT * FROM a JOIN b ON a.x = b.y LEFT JOIN c ON b.y = c.z")
	j := q.Body.(*SelectStmt).From[0].(*JoinExpr)
	if j.Kind != LeftJoin {
		t.Fatalf("outer join kind = %v", j.Kind)
	}
	inner := j.Left.(*JoinExpr)
	if inner.Kind != InnerJoin || inner.On == nil {
		t.Fatalf("inner join = %+v", inner)
	}
	q = mustParse(t, "SELECT * FROM a CROSS JOIN b")
	if q.Body.(*SelectStmt).From[0].(*JoinExpr).Kind != CrossJoin {
		t.Fatal("cross join")
	}
	q = mustParse(t, "SELECT * FROM a FULL OUTER JOIN b ON a.x = b.x")
	if q.Body.(*SelectStmt).From[0].(*JoinExpr).Kind != FullJoin {
		t.Fatal("full join")
	}
}

func TestParseSetOps(t *testing.T) {
	q := mustParse(t, "SELECT a FROM t UNION ALL SELECT b FROM u UNION SELECT c FROM v")
	outer := q.Body.(*SetOpQuery)
	if outer.Op != Union || outer.All {
		t.Fatalf("outer = %+v", outer)
	}
	inner := outer.Left.(*SetOpQuery)
	if inner.Op != Union || !inner.All {
		t.Fatalf("inner = %+v", inner)
	}
}

func TestParseScalarSubquery(t *testing.T) {
	q := mustParse(t, "SELECT * FROM Bid WHERE price = (SELECT MAX(price) FROM Bid)")
	where := q.Body.(*SelectStmt).Where.(*BinaryExpr)
	if _, ok := where.R.(*SubqueryExpr); !ok {
		t.Fatalf("rhs = %T", where.R)
	}
}

func TestParseCaseCastBetweenInIsNull(t *testing.T) {
	q := mustParse(t, `SELECT
		CASE WHEN a > 1 THEN 'big' ELSE 'small' END,
		CASE a WHEN 1 THEN 'one' END,
		CAST(a AS DOUBLE),
		CAST(b AS VARCHAR(10))
	FROM t
	WHERE a BETWEEN 1 AND 10 AND b IS NOT NULL AND c IN (1, 2, 3) AND d NOT IN (4) AND e IS NULL AND f NOT BETWEEN 0 AND 1`)
	sel := q.Body.(*SelectStmt)
	if len(sel.Items) != 4 {
		t.Fatalf("items = %d", len(sel.Items))
	}
	if sel.Items[1].Expr.(*CaseExpr).Operand == nil {
		t.Error("simple CASE operand missing")
	}
	if sel.Items[2].Expr.(*CastExpr).To != types.KindFloat64 {
		t.Error("cast kind")
	}
}

func TestParseAsOfSystemTime(t *testing.T) {
	q := mustParse(t, "SELECT * FROM Bid AS OF SYSTEM TIME TIMESTAMP '8:13' B")
	ref := q.Body.(*SelectStmt).From[0].(*TableRef)
	if ref.AsOf == nil {
		t.Fatal("AS OF missing")
	}
	if ref.Alias != "B" {
		t.Errorf("alias = %q", ref.Alias)
	}
	if ref.AsOf.(*Literal).Val.Timestamp() != types.ClockTime(8, 13) {
		t.Errorf("asof = %v", ref.AsOf)
	}
}

func TestParseQualifiedStar(t *testing.T) {
	q := mustParse(t, "SELECT b.*, a.x FROM a, b")
	sel := q.Body.(*SelectStmt)
	if !sel.Items[0].Star || sel.Items[0].StarTable != "b" {
		t.Fatalf("qualified star = %+v", sel.Items[0])
	}
}

func TestParsePrecedence(t *testing.T) {
	q := mustParse(t, "SELECT 1 + 2 * 3 - -4")
	e := q.Body.(*SelectStmt).Items[0].Expr
	// ((1 + (2*3)) - (-4))
	want := "((1 + (2 * 3)) - (-4))"
	if e.String() != want {
		t.Errorf("precedence: %s, want %s", e.String(), want)
	}
	q = mustParse(t, "SELECT a OR b AND NOT c = d")
	e = q.Body.(*SelectStmt).Items[0].Expr
	want = "(a OR (b AND (NOT (c = d))))"
	if e.String() != want {
		t.Errorf("bool precedence: %s, want %s", e.String(), want)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t EMIT",
		"SELECT a FROM t EMIT AFTER",
		"SELECT a FROM t EMIT AFTER NONSENSE",
		"SELECT a FROM t ORDER",
		"SELECT CAST(a AS NOPE) FROM t",
		"SELECT CASE END FROM t",
		"SELECT INTERVAL 'x' MINUTE",
		"SELECT INTERVAL '5' FORTNIGHT",
		"SELECT a FROM t; SELECT b FROM u",
		"SELECT a FROM t)",
		"SELECT (SELECT a FROM t",
		"SELECT a BETWEEN 1 FROM t",
		"SELECT a FROM Tumble(data => )",
		"SELECT a FROM t AS OF SYSTEM CLOCK x",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		} else if _, ok := err.(*SyntaxError); !ok {
			t.Errorf("Parse(%q) error type %T", sql, err)
		}
	}
}

// Round-trip: parsing the String() rendering yields the same rendering.
func TestStringRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT a, b AS bee FROM t WHERE a > 1",
		"SELECT DISTINCT a FROM t",
		"SELECT COUNT(*) FROM t GROUP BY k HAVING COUNT(*) > 2",
		"SELECT * FROM Tumble(data => TABLE(Bid), timecol => DESCRIPTOR(bidtime), dur => INTERVAL '10' MINUTE) TB",
		"SELECT a FROM t UNION ALL SELECT b FROM u",
		"SELECT a FROM t ORDER BY a DESC LIMIT 3",
		"SELECT a FROM t EMIT STREAM AFTER DELAY INTERVAL '6' MINUTE AND AFTER WATERMARK",
		"SELECT * FROM a JOIN b ON a.x = b.y",
		"SELECT * FROM a LEFT JOIN b ON a.x = b.y",
		"SELECT CASE WHEN a THEN 1 ELSE 2 END FROM t",
		"SELECT * FROM Bid AS OF SYSTEM TIME TIMESTAMP '8:13'",
		"SELECT x FROM t WHERE p = (SELECT MAX(p) FROM t)",
		"SELECT t.* FROM t",
		"SELECT a FROM t WHERE b IS NOT NULL AND c IN (1, 2)",
	}
	for _, sql := range queries {
		q1 := mustParse(t, sql)
		s1 := q1.String()
		q2, err := Parse(s1)
		if err != nil {
			t.Errorf("re-parse of %q failed: %v\nrendered: %s", sql, err, s1)
			continue
		}
		if s2 := q2.String(); s2 != s1 {
			t.Errorf("round trip: %q -> %q -> %q", sql, s1, s2)
		}
	}
}

func TestParseSemicolonAndComments(t *testing.T) {
	q := mustParse(t, "SELECT a -- trailing\nFROM t /* mid */ WHERE a > 0;")
	if q.Body.(*SelectStmt).Where == nil {
		t.Fatal("where lost")
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, err := Parse("SELECT a FROM t WHERE")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line") {
		t.Errorf("error lacks position: %v", err)
	}
}
