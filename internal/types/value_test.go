package types

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{ClockTime(8, 7), "8:07"},
		{ClockTime(0, 0), "0:00"},
		{ClockTime(23, 59), "23:59"},
		{ClockTime(8, 7, 30), "8:07:30.000"},
		{MinTime, "-inf"},
		{MaxTime, "+inf"},
		{Time(int64(Day) + int64(Hour)), "1d01:00:00.000"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestClockTime(t *testing.T) {
	if ClockTime(8, 7) != Time(8*int64(Hour)+7*int64(Minute)) {
		t.Fatalf("ClockTime(8,7) wrong: %d", ClockTime(8, 7))
	}
	if ClockTime(0, 0, 5) != Time(5*int64(Second)) {
		t.Fatalf("ClockTime(0,0,5) wrong")
	}
}

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null().IsNull() {
		t.Error("Null() not null")
	}
	if v := NewBool(true); v.Kind() != KindBool || !v.Bool() {
		t.Error("NewBool broken")
	}
	if v := NewInt(42); v.Kind() != KindInt64 || v.Int() != 42 {
		t.Error("NewInt broken")
	}
	if v := NewFloat(2.5); v.Kind() != KindFloat64 || v.Float() != 2.5 {
		t.Error("NewFloat broken")
	}
	if v := NewString("hi"); v.Kind() != KindString || v.Str() != "hi" {
		t.Error("NewString broken")
	}
	if v := NewTimestamp(ClockTime(8, 7)); v.Kind() != KindTimestamp || v.Timestamp() != ClockTime(8, 7) {
		t.Error("NewTimestamp broken")
	}
	if v := NewInterval(10 * Minute); v.Kind() != KindInterval || v.Interval() != 10*Minute {
		t.Error("NewInterval broken")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
		{NewInt(-3), "-3"},
		{NewFloat(1.5), "1.5"},
		{NewString("abc"), "abc"},
		{NewTimestamp(ClockTime(8, 10)), "8:10"},
		{NewInterval(10 * Minute), "10m"},
		{NewInterval(1500 * Millisecond), "1500ms"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestValueEqualCrossNumeric(t *testing.T) {
	if !NewInt(1).Equal(NewFloat(1.0)) {
		t.Error("1 should equal 1.0")
	}
	if NewInt(1).Equal(NewFloat(1.5)) {
		t.Error("1 should not equal 1.5")
	}
	if NewInt(1).Equal(NewString("1")) {
		t.Error("1 should not equal '1'")
	}
	if !Null().Equal(Null()) {
		t.Error("NULL.Equal(NULL) should be true for state bookkeeping")
	}
}

func TestCompare(t *testing.T) {
	lt := func(a, b Value) {
		t.Helper()
		c, err := a.Compare(b)
		if err != nil || c != -1 {
			t.Errorf("Compare(%v,%v) = %d,%v want -1,nil", a, b, c, err)
		}
		c, err = b.Compare(a)
		if err != nil || c != 1 {
			t.Errorf("Compare(%v,%v) = %d,%v want 1,nil", b, a, c, err)
		}
	}
	eq := func(a, b Value) {
		t.Helper()
		c, err := a.Compare(b)
		if err != nil || c != 0 {
			t.Errorf("Compare(%v,%v) = %d,%v want 0,nil", a, b, c, err)
		}
	}
	lt(NewInt(1), NewInt(2))
	lt(NewFloat(1.5), NewInt(2))
	lt(NewString("a"), NewString("b"))
	lt(NewTimestamp(ClockTime(8, 0)), NewTimestamp(ClockTime(8, 1)))
	lt(NewInterval(Minute), NewInterval(Hour))
	lt(NewBool(false), NewBool(true))
	eq(NewInt(2), NewFloat(2.0))
	eq(NewString("x"), NewString("x"))

	if _, err := NewInt(1).Compare(NewString("1")); err == nil {
		t.Error("BIGINT vs VARCHAR comparison should error")
	}
	if _, err := Null().Compare(NewInt(1)); err == nil {
		t.Error("NULL comparison should error")
	}
	if _, err := NewTimestamp(0).Compare(NewInterval(0)); err == nil {
		t.Error("TIMESTAMP vs INTERVAL comparison should error")
	}
}

func TestArithmetic(t *testing.T) {
	mustV := func(v Value, err error) Value {
		t.Helper()
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		return v
	}
	if got := mustV(NewInt(2).Add(NewInt(3))); got.Int() != 5 {
		t.Errorf("2+3 = %v", got)
	}
	if got := mustV(NewInt(2).Add(NewFloat(0.5))); got.Float() != 2.5 {
		t.Errorf("2+0.5 = %v", got)
	}
	if got := mustV(NewTimestamp(ClockTime(8, 0)).Add(NewInterval(10 * Minute))); got.Timestamp() != ClockTime(8, 10) {
		t.Errorf("8:00+10m = %v", got)
	}
	if got := mustV(NewTimestamp(ClockTime(8, 20)).Sub(NewInterval(10 * Minute))); got.Timestamp() != ClockTime(8, 10) {
		t.Errorf("8:20-10m = %v", got)
	}
	if got := mustV(NewTimestamp(ClockTime(8, 20)).Sub(NewTimestamp(ClockTime(8, 0)))); got.Interval() != 20*Minute {
		t.Errorf("8:20-8:00 = %v", got)
	}
	if got := mustV(NewInterval(Minute).Mul(NewInt(10))); got.Interval() != 10*Minute {
		t.Errorf("1m*10 = %v", got)
	}
	if got := mustV(NewInt(7).Div(NewInt(2))); got.Int() != 3 {
		t.Errorf("7/2 = %v (SQL integer division)", got)
	}
	if got := mustV(NewFloat(7).Div(NewInt(2))); got.Float() != 3.5 {
		t.Errorf("7.0/2 = %v", got)
	}
	if got := mustV(NewInt(3).Neg()); got.Int() != -3 {
		t.Errorf("-3 = %v", got)
	}
	// NULL propagation.
	if got := mustV(Null().Add(NewInt(1))); !got.IsNull() {
		t.Errorf("NULL+1 = %v, want NULL", got)
	}
	// Errors.
	if _, err := NewInt(1).Div(NewInt(0)); err == nil {
		t.Error("1/0 should error")
	}
	if _, err := NewString("a").Add(NewString("b")); err == nil {
		t.Error("VARCHAR + VARCHAR should error")
	}
	if _, err := NewString("a").Neg(); err == nil {
		t.Error("-VARCHAR should error")
	}
}

// genValue produces a random non-NULL value for property tests.
func genValue(r *rand.Rand) Value {
	switch r.Intn(6) {
	case 0:
		return NewBool(r.Intn(2) == 0)
	case 1:
		return NewInt(r.Int63n(1000) - 500)
	case 2:
		return NewFloat(float64(r.Int63n(1000))/4 - 100)
	case 3:
		return NewString(string(rune('a' + r.Intn(26))))
	case 4:
		return NewTimestamp(Time(r.Int63n(int64(Day)))) //nolint
	default:
		return NewInterval(Duration(r.Int63n(int64(Hour)))) //nolint
	}
}

// Generate implements quick.Generator so quick.Check can synthesise Values.
func (Value) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(genValue(r))
}

func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(a, b Value) bool {
		c1, err1 := a.Compare(b)
		c2, err2 := b.Compare(a)
		if err1 != nil || err2 != nil {
			// Incomparable both ways is consistent.
			return err1 != nil && err2 != nil
		}
		return c1 == -c2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickEqualImpliesCompareZero(t *testing.T) {
	f := func(a, b Value) bool {
		if !a.Equal(b) {
			return true
		}
		c, err := a.Compare(b)
		return err == nil && c == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickKeyMatchesEqual(t *testing.T) {
	f := func(a, b Value) bool {
		ka := Row{a}.Key()
		kb := Row{b}.Key()
		return (ka == kb) == a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestQuickAddSubRoundTrip(t *testing.T) {
	f := func(a, b int64) bool {
		a, b = a%1_000_000, b%1_000_000
		sum, err := NewInt(a).Add(NewInt(b))
		if err != nil {
			return false
		}
		back, err := sum.Sub(NewInt(b))
		return err == nil && back.Int() == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
