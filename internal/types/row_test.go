package types

import (
	"testing"
	"testing/quick"
)

func sampleRow() Row {
	return Row{NewInt(1), NewString("a"), NewTimestamp(ClockTime(8, 7))}
}

func TestRowCloneIndependence(t *testing.T) {
	r := sampleRow()
	c := r.Clone()
	c[0] = NewInt(99)
	if r[0].Int() != 1 {
		t.Error("Clone shares storage with original")
	}
	if !r.Equal(sampleRow()) {
		t.Error("original mutated")
	}
}

func TestRowEqual(t *testing.T) {
	if !sampleRow().Equal(sampleRow()) {
		t.Error("identical rows unequal")
	}
	if sampleRow().Equal(sampleRow()[:2]) {
		t.Error("rows of different length equal")
	}
	other := sampleRow()
	other[1] = NewString("b")
	if sampleRow().Equal(other) {
		t.Error("different rows equal")
	}
}

func TestRowConcatProject(t *testing.T) {
	r := Row{NewInt(1), NewInt(2)}.Concat(Row{NewInt(3)})
	if len(r) != 3 || r[2].Int() != 3 {
		t.Fatalf("Concat = %v", r)
	}
	p := r.Project([]int{2, 0})
	if len(p) != 2 || p[0].Int() != 3 || p[1].Int() != 1 {
		t.Fatalf("Project = %v", p)
	}
}

func TestRowKeyDistinguishes(t *testing.T) {
	// Strings that could collide under naive concatenation.
	a := Row{NewString("ab"), NewString("c")}
	b := Row{NewString("a"), NewString("bc")}
	if a.Key() == b.Key() {
		t.Error("Key() collides on ('ab','c') vs ('a','bc')")
	}
	// NULL vs empty string.
	if (Row{Null()}).Key() == (Row{NewString("")}).Key() {
		t.Error("Key() collides on NULL vs ''")
	}
	// Numeric cross-kind equality respected.
	if (Row{NewInt(1)}).Key() != (Row{NewFloat(1.0)}).Key() {
		t.Error("Key() should unify 1 and 1.0")
	}
	// Timestamp vs interval with same payload must differ.
	if (Row{NewTimestamp(5)}).Key() == (Row{NewInterval(5)}).Key() {
		t.Error("Key() collides on TIMESTAMP vs INTERVAL")
	}
}

func TestRowKeyOf(t *testing.T) {
	r := sampleRow()
	if r.KeyOf([]int{1}) != (Row{NewString("a")}).Key() {
		t.Error("KeyOf mismatch")
	}
}

func TestQuickRowKeyMatchesEqual(t *testing.T) {
	f := func(a, b Value, c Value) bool {
		r1 := Row{a, c}
		r2 := Row{b, c}
		return (r1.Key() == r2.Key()) == r1.Equal(r2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestSchemaBasics(t *testing.T) {
	s := NewSchema(
		Column{Name: "bidtime", Kind: KindTimestamp, EventTime: true},
		Column{Name: "price", Kind: KindInt64},
		Column{Name: "item", Kind: KindString},
	)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.IndexOf("PRICE") != 1 {
		t.Error("IndexOf should be case-insensitive")
	}
	if s.IndexOf("nope") != -1 {
		t.Error("IndexOf missing should be -1")
	}
	if !s.HasEventTime() {
		t.Error("HasEventTime should be true")
	}
	if cols := s.EventTimeCols(); len(cols) != 1 || cols[0] != 0 {
		t.Errorf("EventTimeCols = %v", cols)
	}
	if got := s.WithoutEventTime(); got.HasEventTime() {
		t.Error("WithoutEventTime left a flag set")
	}
	if s.Cols[0].EventTime == false {
		t.Error("WithoutEventTime mutated the receiver")
	}
	want := "(bidtime TIMESTAMP*, price BIGINT, item VARCHAR)"
	if s.String() != want {
		t.Errorf("String = %q, want %q", s.String(), want)
	}
	if n := s.Names(); n[2] != "item" {
		t.Errorf("Names = %v", n)
	}
}

func TestSchemaCloneConcat(t *testing.T) {
	a := NewSchema(Column{Name: "x", Kind: KindInt64})
	b := NewSchema(Column{Name: "y", Kind: KindString})
	c := a.Concat(b)
	if c.Len() != 2 || c.Cols[1].Name != "y" {
		t.Fatalf("Concat = %v", c)
	}
	cl := a.Clone()
	cl.Cols[0].Name = "z"
	if a.Cols[0].Name != "x" {
		t.Error("Clone shares storage")
	}
}
