package types

import (
	"encoding/binary"
	"math"
	"strings"
)

// Row is a tuple of values. Rows are positional; column names and types live
// in the accompanying Schema.
type Row []Value

// Clone returns a copy of the row that shares no backing storage.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Equal reports whether two rows have the same length and pairwise-equal
// values.
func (r Row) Equal(o Row) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if !r[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// Concat returns a new row with o's values appended after r's.
func (r Row) Concat(o Row) Row {
	out := make(Row, 0, len(r)+len(o))
	out = append(out, r...)
	return append(out, o...)
}

// Project returns a new row containing the values at the given indexes.
func (r Row) Project(idxs []int) Row {
	out := make(Row, len(idxs))
	for i, idx := range idxs {
		out[i] = r[idx]
	}
	return out
}

// Key returns a canonical byte-string encoding of the row, suitable for use
// as a map key in operator state. Numeric values encode through float64 so
// that BIGINT 1 and DOUBLE 1.0 produce the same key (mirroring Equal).
func (r Row) Key() string {
	var b []byte
	for _, v := range r {
		b = appendValueKey(b, v)
	}
	return string(b)
}

// AppendKey appends the row's canonical Key encoding to dst and returns the
// extended slice. Hot paths pass a reusable scratch buffer and look maps up
// via m[string(buf)] (which the compiler keeps allocation-free), so the
// string is only materialized when a new map entry is actually created.
func (r Row) AppendKey(dst []byte) []byte {
	for _, v := range r {
		dst = appendValueKey(dst, v)
	}
	return dst
}

// KeyOf returns the canonical encoding of the values at the given indexes,
// the grouping/join-key analogue of Key.
func (r Row) KeyOf(idxs []int) string {
	var b []byte
	for _, idx := range idxs {
		b = appendValueKey(b, r[idx])
	}
	return string(b)
}

// AppendKeyOf is the scratch-buffer variant of KeyOf; see AppendKey.
func (r Row) AppendKeyOf(dst []byte, idxs []int) []byte {
	for _, idx := range idxs {
		dst = appendValueKey(dst, r[idx])
	}
	return dst
}

// AppendKey appends the value's canonical single-value key encoding to dst,
// the scalar analogue of Row.AppendKey (used by accumulator multisets).
func (v Value) AppendKey(dst []byte) []byte { return appendValueKey(dst, v) }

func appendValueKey(b []byte, v Value) []byte {
	switch v.kind {
	case KindNull:
		return append(b, 0)
	case KindBool:
		b = append(b, 1)
		return append(b, byte(v.i))
	case KindInt64, KindFloat64:
		// Shared tag for numerics so 1 == 1.0 as keys.
		b = append(b, 2)
		return binary.BigEndian.AppendUint64(b, math.Float64bits(v.AsFloat()))
	case KindString:
		b = append(b, 3)
		b = binary.BigEndian.AppendUint32(b, uint32(len(v.s)))
		return append(b, v.s...)
	case KindTimestamp:
		b = append(b, 4)
		return binary.BigEndian.AppendUint64(b, uint64(v.i))
	case KindInterval:
		b = append(b, 5)
		return binary.BigEndian.AppendUint64(b, uint64(v.i))
	default:
		return append(b, 0xFF)
	}
}

// String renders the row as a parenthesised value list.
func (r Row) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, v := range r {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(v.String())
	}
	sb.WriteByte(')')
	return sb.String()
}

// Column describes one attribute of a relation.
type Column struct {
	// Name is the column's (case-insensitive) name.
	Name string
	// Kind is the column's SQL type.
	Kind Kind
	// EventTime marks the column as a watermarked event time column
	// (Extension 1 in the paper): the relation's watermark is a lower
	// bound on values that may still be inserted into this column.
	EventTime bool
	// WmOffset adjusts the completeness condition for the column: a value
	// v in this column is complete once watermark >= v + WmOffset. It is
	// zero for ordinary event-time columns; the Tumble/Hop wstart column
	// uses the window duration so that grouping by wstart reaches
	// completeness at the same moment as grouping by wend, exactly as
	// Section 6.4.1 describes ("assuming ideal watermark propagation, the
	// groupings reach completeness at the same time").
	WmOffset Duration
	// Windowed marks wstart/wend columns produced by a windowing TVF
	// (and their verbatim copies downstream). The stream rendering's
	// version numbers and the EMIT operators group output rows by these
	// columns — the paper's "revisions of the same event-time window".
	Windowed bool
}

// Schema is an ordered list of columns describing a relation's shape.
type Schema struct {
	Cols []Column
}

// NewSchema builds a schema from the given columns.
func NewSchema(cols ...Column) *Schema { return &Schema{Cols: cols} }

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Cols) }

// IndexOf returns the index of the column with the given name
// (case-insensitive), or -1 if absent.
func (s *Schema) IndexOf(name string) int {
	for i, c := range s.Cols {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// EventTimeCols returns the indexes of all event-time columns.
func (s *Schema) EventTimeCols() []int {
	var out []int
	for i, c := range s.Cols {
		if c.EventTime {
			out = append(out, i)
		}
	}
	return out
}

// EmitKeyCols returns the columns that identify an output row's event-time
// grouping for materialization control: the windowed event-time columns
// when present (a row's window), otherwise all event-time columns.
func (s *Schema) EmitKeyCols() []int {
	var windowed, event []int
	for i, c := range s.Cols {
		if !c.EventTime {
			continue
		}
		event = append(event, i)
		if c.Windowed {
			windowed = append(windowed, i)
		}
	}
	if len(windowed) > 0 {
		return windowed
	}
	return event
}

// HasEventTime reports whether any column is a watermarked event-time column.
func (s *Schema) HasEventTime() bool {
	for _, c := range s.Cols {
		if c.EventTime {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	cols := make([]Column, len(s.Cols))
	copy(cols, s.Cols)
	return &Schema{Cols: cols}
}

// Concat returns a schema with o's columns appended after s's.
func (s *Schema) Concat(o *Schema) *Schema {
	cols := make([]Column, 0, len(s.Cols)+len(o.Cols))
	cols = append(cols, s.Cols...)
	cols = append(cols, o.Cols...)
	return &Schema{Cols: cols}
}

// WithoutEventTime returns a copy of the schema with every EventTime flag
// cleared; used when an operator cannot preserve watermark alignment.
func (s *Schema) WithoutEventTime() *Schema {
	out := s.Clone()
	for i := range out.Cols {
		out.Cols[i].EventTime = false
	}
	return out
}

// Names returns the column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		out[i] = c.Name
	}
	return out
}

// String renders the schema as "(name TYPE[*], ...)" with * marking
// event-time columns.
func (s *Schema) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, c := range s.Cols {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(c.Name)
		sb.WriteByte(' ')
		sb.WriteString(c.Kind.String())
		if c.EventTime {
			sb.WriteByte('*')
		}
	}
	sb.WriteByte(')')
	return sb.String()
}
