// Package types implements the SQL value, row, and schema model shared by
// every layer of the engine: the parser produces literals as Values, the
// planner types expressions in terms of Kinds, and the execution engine
// moves Rows of Values through its operators.
//
// The model is deliberately compact: a Value is a small struct (no interface
// boxing) holding one of NULL, BOOLEAN, BIGINT, DOUBLE, VARCHAR, TIMESTAMP,
// or INTERVAL. Timestamps and intervals are millisecond counts, which keeps
// arithmetic exact and makes the paper's minute-granularity examples
// (8:07, 10-minute windows) trivially representable.
package types

import (
	"fmt"
	"strconv"
)

// Kind enumerates the SQL types supported by the engine.
type Kind uint8

// The supported SQL type kinds.
const (
	KindNull Kind = iota
	KindBool
	KindInt64
	KindFloat64
	KindString
	KindTimestamp
	KindInterval
)

// String returns the SQL name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOLEAN"
	case KindInt64:
		return "BIGINT"
	case KindFloat64:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	case KindTimestamp:
		return "TIMESTAMP"
	case KindInterval:
		return "INTERVAL"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// IsNumeric reports whether values of the kind participate in numeric
// arithmetic and numeric comparison coercion.
func (k Kind) IsNumeric() bool { return k == KindInt64 || k == KindFloat64 }

// Time is a point in event or processing time, in milliseconds since the
// engine epoch. The paper's examples use clock times within a single day
// ("8:07"); these map directly to millisecond offsets from midnight.
type Time int64

// Duration is a span of time in milliseconds (the representation of SQL
// INTERVAL values).
type Duration int64

// Sentinel times. MinTime sorts before every valid time and is the initial
// value of every watermark; MaxTime represents "input complete".
const (
	MinTime Time = -1 << 62
	MaxTime Time = 1<<62 - 1
)

// Common durations for constructing times and intervals.
const (
	Millisecond Duration = 1
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
	Day                  = 24 * Hour
)

// ClockTime builds a Time at h hours, m minutes (and optional seconds) past
// the epoch, matching the paper's "8:07"-style example timestamps.
func ClockTime(h, m int, secs ...int) Time {
	t := Time(int64(h)*int64(Hour) + int64(m)*int64(Minute))
	for _, s := range secs {
		t += Time(int64(s) * int64(Second))
	}
	return t
}

// Add returns the time shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// String renders the time. Times that fall on a whole minute within the
// first day print in the paper's "8:07" style; other values print with
// full millisecond precision as day/hh:mm:ss.mmm.
func (t Time) String() string {
	if t == MinTime {
		return "-inf"
	}
	if t == MaxTime {
		return "+inf"
	}
	ms := int64(t)
	neg := ""
	if ms < 0 {
		neg, ms = "-", -ms
	}
	day := ms / int64(Day)
	ms %= int64(Day)
	h := ms / int64(Hour)
	ms %= int64(Hour)
	m := ms / int64(Minute)
	ms %= int64(Minute)
	s := ms / int64(Second)
	ms %= int64(Second)
	buf := make([]byte, 0, 20)
	buf = append(buf, neg...)
	if day == 0 && s == 0 && ms == 0 && neg == "" {
		buf = strconv.AppendInt(buf, h, 10)
		buf = append(buf, ':')
		buf = appendPad2(buf, m)
		return string(buf)
	}
	if day != 0 {
		buf = strconv.AppendInt(buf, day, 10)
		buf = append(buf, 'd')
		buf = appendPad2(buf, h)
	} else {
		buf = strconv.AppendInt(buf, h, 10)
	}
	buf = append(buf, ':')
	buf = appendPad2(buf, m)
	buf = append(buf, ':')
	buf = appendPad2(buf, s)
	buf = append(buf, '.')
	buf = appendPad3(buf, ms)
	return string(buf)
}

// appendPad2 appends n as at least two decimal digits (n is 0..99 here).
func appendPad2(b []byte, n int64) []byte {
	if n < 10 {
		b = append(b, '0')
	}
	return strconv.AppendInt(b, n, 10)
}

// appendPad3 appends n as at least three decimal digits (n is 0..999 here).
func appendPad3(b []byte, n int64) []byte {
	if n < 100 {
		b = append(b, '0')
		if n < 10 {
			b = append(b, '0')
		}
	}
	return strconv.AppendInt(b, n, 10)
}

// String renders the duration, using whole minutes where exact (the common
// case in the paper) and milliseconds otherwise.
func (d Duration) String() string {
	if d%Minute == 0 {
		return strconv.FormatInt(int64(d/Minute), 10) + "m"
	}
	return strconv.FormatInt(int64(d), 10) + "ms"
}

// Value is a single SQL value. The zero Value is SQL NULL.
type Value struct {
	kind Kind
	i    int64 // Bool (0/1), Int64, Timestamp (ms), Interval (ms)
	f    float64
	s    string
}

// Null returns the SQL NULL value.
func Null() Value { return Value{} }

// NewBool returns a BOOLEAN value.
func NewBool(b bool) Value {
	v := Value{kind: KindBool}
	if b {
		v.i = 1
	}
	return v
}

// NewInt returns a BIGINT value.
func NewInt(i int64) Value { return Value{kind: KindInt64, i: i} }

// NewFloat returns a DOUBLE value.
func NewFloat(f float64) Value { return Value{kind: KindFloat64, f: f} }

// NewString returns a VARCHAR value.
func NewString(s string) Value { return Value{kind: KindString, s: s} }

// NewTimestamp returns a TIMESTAMP value.
func NewTimestamp(t Time) Value { return Value{kind: KindTimestamp, i: int64(t)} }

// NewInterval returns an INTERVAL value.
func NewInterval(d Duration) Value { return Value{kind: KindInterval, i: int64(d)} }

// Kind returns the value's type kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Bool returns the boolean payload. It must only be called on KindBool.
func (v Value) Bool() bool { return v.i != 0 }

// Int returns the integer payload. It must only be called on KindInt64.
func (v Value) Int() int64 { return v.i }

// Float returns the float payload. It must only be called on KindFloat64.
func (v Value) Float() float64 { return v.f }

// Str returns the string payload. It must only be called on KindString.
func (v Value) Str() string { return v.s }

// Timestamp returns the time payload. It must only be called on KindTimestamp.
func (v Value) Timestamp() Time { return Time(v.i) }

// Interval returns the duration payload. It must only be called on KindInterval.
func (v Value) Interval() Duration { return Duration(v.i) }

// AsFloat converts a numeric value to float64 for mixed-type arithmetic.
func (v Value) AsFloat() float64 {
	if v.kind == KindInt64 {
		return float64(v.i)
	}
	return v.f
}

// String renders the value for display (and for the listing tables).
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindInt64:
		return strconv.FormatInt(v.i, 10)
	case KindFloat64:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindTimestamp:
		return Time(v.i).String()
	case KindInterval:
		return Duration(v.i).String()
	default:
		return fmt.Sprintf("Value(kind=%d)", v.kind)
	}
}

// Equal reports deep equality of two values (same kind, same payload).
// NULL equals NULL under this relation; SQL tri-state comparison is handled
// by Compare and the expression evaluator, not here.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		// Numeric values of different kinds compare equal when they
		// represent the same number, so that e.g. a join key of 1
		// matches 1.0.
		if v.kind.IsNumeric() && o.kind.IsNumeric() {
			return v.AsFloat() == o.AsFloat()
		}
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindFloat64:
		return v.f == o.f
	case KindString:
		return v.s == o.s
	default:
		return v.i == o.i
	}
}

// Compare orders two non-NULL values of comparable kinds. It returns
// -1, 0, or +1, and an error for incomparable kinds. Numeric kinds are
// mutually comparable; otherwise the kinds must match.
func (v Value) Compare(o Value) (int, error) {
	if v.kind == KindNull || o.kind == KindNull {
		return 0, fmt.Errorf("types: cannot compare NULL values; use IsNull")
	}
	if v.kind.IsNumeric() && o.kind.IsNumeric() {
		if v.kind == KindInt64 && o.kind == KindInt64 {
			return cmpInt64(v.i, o.i), nil
		}
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1, nil
		case a > b:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if v.kind != o.kind {
		return 0, fmt.Errorf("types: cannot compare %s with %s", v.kind, o.kind)
	}
	switch v.kind {
	case KindBool, KindTimestamp, KindInterval:
		return cmpInt64(v.i, o.i), nil
	case KindString:
		switch {
		case v.s < o.s:
			return -1, nil
		case v.s > o.s:
			return 1, nil
		default:
			return 0, nil
		}
	default:
		return 0, fmt.Errorf("types: cannot compare kind %s", v.kind)
	}
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Arithmetic. Each operation returns NULL if either operand is NULL,
// following SQL semantics.

// Add computes v + o: numeric addition, interval+interval,
// timestamp+interval (and interval+timestamp).
func (v Value) Add(o Value) (Value, error) {
	if v.IsNull() || o.IsNull() {
		return Null(), nil
	}
	switch {
	case v.kind == KindInt64 && o.kind == KindInt64:
		return NewInt(v.i + o.i), nil
	case v.kind.IsNumeric() && o.kind.IsNumeric():
		return NewFloat(v.AsFloat() + o.AsFloat()), nil
	case v.kind == KindInterval && o.kind == KindInterval:
		return NewInterval(Duration(v.i + o.i)), nil
	case v.kind == KindTimestamp && o.kind == KindInterval:
		return NewTimestamp(Time(v.i + o.i)), nil
	case v.kind == KindInterval && o.kind == KindTimestamp:
		return NewTimestamp(Time(v.i + o.i)), nil
	}
	return Null(), fmt.Errorf("types: cannot add %s and %s", v.kind, o.kind)
}

// Sub computes v - o: numeric subtraction, interval-interval,
// timestamp-interval, and timestamp-timestamp (yielding an interval).
func (v Value) Sub(o Value) (Value, error) {
	if v.IsNull() || o.IsNull() {
		return Null(), nil
	}
	switch {
	case v.kind == KindInt64 && o.kind == KindInt64:
		return NewInt(v.i - o.i), nil
	case v.kind.IsNumeric() && o.kind.IsNumeric():
		return NewFloat(v.AsFloat() - o.AsFloat()), nil
	case v.kind == KindInterval && o.kind == KindInterval:
		return NewInterval(Duration(v.i - o.i)), nil
	case v.kind == KindTimestamp && o.kind == KindInterval:
		return NewTimestamp(Time(v.i - o.i)), nil
	case v.kind == KindTimestamp && o.kind == KindTimestamp:
		return NewInterval(Duration(v.i - o.i)), nil
	}
	return Null(), fmt.Errorf("types: cannot subtract %s from %s", o.kind, v.kind)
}

// Mul computes v * o: numeric multiplication and interval*integer.
func (v Value) Mul(o Value) (Value, error) {
	if v.IsNull() || o.IsNull() {
		return Null(), nil
	}
	switch {
	case v.kind == KindInt64 && o.kind == KindInt64:
		return NewInt(v.i * o.i), nil
	case v.kind.IsNumeric() && o.kind.IsNumeric():
		return NewFloat(v.AsFloat() * o.AsFloat()), nil
	case v.kind == KindInterval && o.kind == KindInt64:
		return NewInterval(Duration(v.i * o.i)), nil
	case v.kind == KindInt64 && o.kind == KindInterval:
		return NewInterval(Duration(v.i * o.i)), nil
	case v.kind == KindInterval && o.kind == KindFloat64:
		return NewInterval(Duration(float64(v.i) * o.f)), nil
	}
	return Null(), fmt.Errorf("types: cannot multiply %s and %s", v.kind, o.kind)
}

// Div computes v / o: numeric division (integer division for two BIGINTs,
// per SQL) and interval/integer. Division by zero is an error.
func (v Value) Div(o Value) (Value, error) {
	if v.IsNull() || o.IsNull() {
		return Null(), nil
	}
	switch {
	case v.kind == KindInt64 && o.kind == KindInt64:
		if o.i == 0 {
			return Null(), fmt.Errorf("types: division by zero")
		}
		return NewInt(v.i / o.i), nil
	case v.kind.IsNumeric() && o.kind.IsNumeric():
		if o.AsFloat() == 0 {
			return Null(), fmt.Errorf("types: division by zero")
		}
		return NewFloat(v.AsFloat() / o.AsFloat()), nil
	case v.kind == KindInterval && o.kind == KindInt64:
		if o.i == 0 {
			return Null(), fmt.Errorf("types: division by zero")
		}
		return NewInterval(Duration(v.i / o.i)), nil
	}
	return Null(), fmt.Errorf("types: cannot divide %s by %s", v.kind, o.kind)
}

// Neg computes -v for numeric and interval values.
func (v Value) Neg() (Value, error) {
	switch v.kind {
	case KindNull:
		return Null(), nil
	case KindInt64:
		return NewInt(-v.i), nil
	case KindFloat64:
		return NewFloat(-v.f), nil
	case KindInterval:
		return NewInterval(Duration(-v.i)), nil
	}
	return Null(), fmt.Errorf("types: cannot negate %s", v.kind)
}
