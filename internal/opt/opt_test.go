package opt_test

// Rule-level tests for the optimizer: each rewrite is checked structurally
// (the plan shape it should produce) and semantically (the optimized and
// unoptimized plans must produce byte-identical results when executed over
// the same recorded inputs).

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/nexmark"
	"repro/internal/opt"
	"repro/internal/plan"
	"repro/internal/sqlparser"
	"repro/internal/types"
)

// nexmarkEngine loads a small deterministic NEXMark dataset; the engine
// doubles as the planner's catalog.
func nexmarkEngine(t testing.TB) *core.Engine {
	t.Helper()
	g := nexmark.Generate(nexmark.GeneratorConfig{Seed: 5, NumEvents: 600, MaxOutOfOrderness: 2 * types.Second})
	e, err := nexmark.NewEngine(g, core.WithUnboundedGroupBy())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// planQuery parses and plans without optimizing.
func planQuery(t *testing.T, cat plan.Catalog, sql string, unboundedGroupBy bool) *plan.PlannedQuery {
	t.Helper()
	q, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pq, err := plan.New(cat, plan.Config{AllowUnboundedGroupBy: unboundedGroupBy}).Plan(q)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	return pq
}

// sourcesFor collects the recorded changelog of every relation the plan
// scans.
func sourcesFor(t *testing.T, e *core.Engine, root plan.Node) []exec.Source {
	t.Helper()
	names := map[string]bool{}
	var walk func(plan.Node)
	walk = func(n plan.Node) {
		if s, ok := n.(*plan.Scan); ok {
			names[s.Name] = true
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(root)
	var out []exec.Source
	for name := range names {
		log, err := e.Log(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, exec.Source{Name: name, Log: log})
	}
	return out
}

func runQuery(t *testing.T, e *core.Engine, pq *plan.PlannedQuery) *exec.Result {
	t.Helper()
	pipe, err := exec.Compile(pq)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := pipe.Run(sourcesFor(t, e, pq.Root), types.MaxTime)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

// TestOptimizedPlansSemanticallyEquivalent runs every NEXMark query twice —
// once on the raw planner output, once optimized — and asserts the output
// TVRs are identical event for event.
func TestOptimizedPlansSemanticallyEquivalent(t *testing.T) {
	e := nexmarkEngine(t)
	for _, q := range nexmark.Queries() {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			raw := runQuery(t, e, planQuery(t, e, q.SQL, q.NeedsUnboundedGroupBy))
			optimized := runQuery(t, e, opt.Optimize(planQuery(t, e, q.SQL, q.NeedsUnboundedGroupBy)))

			if len(raw.Log) != len(optimized.Log) {
				t.Fatalf("output log lengths differ: raw %d vs optimized %d", len(raw.Log), len(optimized.Log))
			}
			for i := range raw.Log {
				if raw.Log[i].String() != optimized.Log[i].String() {
					t.Fatalf("output event %d differs:\nraw:       %s\noptimized: %s", i, raw.Log[i], optimized.Log[i])
				}
			}
			rs, os := raw.StreamRows(), optimized.StreamRows()
			if len(rs) != len(os) {
				t.Fatalf("stream rows differ: %d vs %d", len(rs), len(os))
			}
			for i := range rs {
				if !rs[i].Row.Equal(os[i].Row) || rs[i].Undo != os[i].Undo || rs[i].Ptime != os[i].Ptime || rs[i].Ver != os[i].Ver {
					t.Fatalf("stream row %d differs", i)
				}
			}
		})
	}
}

// TestConstantFolding: constant subexpressions evaluate at plan time.
func TestConstantFolding(t *testing.T) {
	// 1 + 2 = 3 folds to TRUE.
	cond := &plan.BinOp{
		Op: sqlparser.OpEq,
		L:  &plan.BinOp{Op: sqlparser.OpAdd, L: &plan.Const{Val: types.NewInt(1)}, R: &plan.Const{Val: types.NewInt(2)}, K: types.KindInt64},
		R:  &plan.Const{Val: types.NewInt(3)},
		K:  types.KindBool,
	}
	sch := types.NewSchema(types.Column{Name: "x", Kind: types.KindInt64})
	pq := &plan.PlannedQuery{Root: &plan.Filter{
		Input: &plan.Scan{Name: "s", Sch: sch, Stream: true},
		Cond:  cond,
	}}
	opt.Optimize(pq)
	f, ok := pq.Root.(*plan.Filter)
	if !ok {
		t.Fatalf("root = %T, want *plan.Filter", pq.Root)
	}
	c, ok := f.Cond.(*plan.Const)
	if !ok {
		t.Fatalf("condition = %s, want a folded constant", f.Cond)
	}
	if !c.Val.Bool() {
		t.Errorf("folded value = %s, want TRUE", c.Val)
	}
}

// TestPredicatePushdown: WHERE conjuncts over a comma join become equi-join
// keys, single-side filters below the join, and residuals.
func TestPredicatePushdown(t *testing.T) {
	e := nexmarkEngine(t)
	pq := planQuery(t, e, `
		SELECT A.id, P.name
		FROM Auction A, Person P
		WHERE A.seller = P.id AND A.category = 1 AND A.initialBid > P.id + 1`, false)
	opt.Optimize(pq)

	// The filter above the join must be fully consumed.
	proj, ok := pq.Root.(*plan.Project)
	if !ok {
		t.Fatalf("root = %T, want *plan.Project", pq.Root)
	}
	j, ok := proj.Input.(*plan.Join)
	if !ok {
		t.Fatalf("project input = %T, want *plan.Join (filter should be consumed)", proj.Input)
	}
	// A.seller = P.id becomes the equi key pair (Auction col 2, Person col 0).
	if len(j.LeftKeys) != 1 || j.LeftKeys[0] != 2 || j.RightKeys[0] != 0 {
		t.Errorf("equi keys = L%v R%v, want L[2] R[0]", j.LeftKeys, j.RightKeys)
	}
	// A.category = 1 is a left-only predicate: pushed below the join.
	if _, ok := j.Left.(*plan.Filter); !ok {
		t.Errorf("left input = %T, want *plan.Filter (pushed single-side predicate)", j.Left)
	}
	// The cross-side inequality stays as the join residual.
	if j.Residual == nil {
		t.Error("expected a join residual for the cross-side inequality")
	}
	// The join kind label is unchanged (a comma join stays CROSS JOIN);
	// what matters is that it gained hash keys and a residual.
	out := plan.Format(pq.Root)
	if !strings.Contains(out, "L$2=R$0") || !strings.Contains(out, "residual=") {
		t.Errorf("plan missing expected join keys/residual:\n%s", out)
	}
}

// TestIntervalJoinExpiry: Q7's interval predicates give the join expiry
// bounds, letting it free state once the watermark proves a row can never
// match again (the Section 5 state-cleanup lesson).
func TestIntervalJoinExpiry(t *testing.T) {
	e := core.NewEngine()
	if err := e.RegisterStream("Bid", nexmark.BidSchema()); err != nil {
		t.Fatal(err)
	}
	pq := planQuery(t, e, nexmark.Query7SQL, false)
	opt.Optimize(pq)

	var join *plan.Join
	var walk func(plan.Node)
	walk = func(n plan.Node) {
		if j, ok := n.(*plan.Join); ok && join == nil {
			join = j
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(pq.Root)
	if join == nil {
		t.Fatal("no join in optimized Q7 plan")
	}
	// bidtime >= wend - 10min bounds stored bid rows: they expire 10
	// minutes past their bidtime.
	if join.LeftExpiry == nil {
		t.Fatal("expected a left-side expiry bound")
	}
	if join.LeftExpiry.Bound != 10*types.Minute {
		t.Errorf("left expiry bound = %s, want 10m", join.LeftExpiry.Bound)
	}
	// bidtime < wend bounds stored window rows symmetrically (strict
	// comparison tightens by a millisecond).
	if join.RightExpiry == nil {
		t.Fatal("expected a right-side expiry bound")
	}
	if join.RightExpiry.Bound != -types.Millisecond {
		t.Errorf("right expiry bound = %s, want -1ms", join.RightExpiry.Bound)
	}
	// The cleanup must not change results: run Q7 with and without the
	// optimizer over the paper's dataset.
	if err := e.AppendLog("Bid", nexmark.PaperBidLog()); err != nil {
		t.Fatal(err)
	}
	raw := runQuery(t, e, planQuery(t, e, nexmark.Query7SQL, false))
	optimized := runQuery(t, e, opt.Optimize(planQuery(t, e, nexmark.Query7SQL, false)))
	if len(raw.Log) != len(optimized.Log) {
		t.Fatalf("Q7 outputs differ: %d vs %d events", len(raw.Log), len(optimized.Log))
	}
	for i := range raw.Log {
		if raw.Log[i].String() != optimized.Log[i].String() {
			t.Fatalf("Q7 event %d differs: %s vs %s", i, raw.Log[i], optimized.Log[i])
		}
	}
}

// TestExpiryActuallyFreesState: with the optimizer the Q7 join holds less
// state at end-of-run than without it.
func TestExpiryActuallyFreesState(t *testing.T) {
	g := nexmark.Generate(nexmark.GeneratorConfig{Seed: 9, NumEvents: 1000, MaxOutOfOrderness: 2 * types.Second})
	e, err := nexmark.NewEngine(g)
	if err != nil {
		t.Fatal(err)
	}
	q7, err := nexmark.QueryByID(7)
	if err != nil {
		t.Fatal(err)
	}

	run := func(pq *plan.PlannedQuery) exec.Stats {
		pipe, err := exec.Compile(pq)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pipe.Run(sourcesFor(t, e, pq.Root), types.MaxTime); err != nil {
			t.Fatal(err)
		}
		return pipe.Stats()
	}
	rawStats := run(planQuery(t, e, q7.SQL, false))
	optStats := run(opt.Optimize(planQuery(t, e, q7.SQL, false)))
	if optStats.StateRows >= rawStats.StateRows {
		t.Errorf("optimizer should shrink join state: raw %d rows, optimized %d rows",
			rawStats.StateRows, optStats.StateRows)
	}
}
