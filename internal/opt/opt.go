// Package opt implements the rule-based logical optimizer. Rules are
// semantics-preserving rewrites applied bottom-up:
//
//   - constant folding of scalar expressions;
//   - predicate pushdown: WHERE conjuncts over a cross/inner join become
//     equi-join keys, single-side filters below the join, or join residuals;
//   - interval-join expiry: event-time bounds in join predicates let the
//     join free stored rows once the watermark proves they can never match
//     again (the state-cleanup lesson of Section 5 of the paper).
package opt

import (
	"repro/internal/plan"
	"repro/internal/sqlparser"
	"repro/internal/types"
)

// Optimize rewrites the planned query in place and returns it.
func Optimize(pq *plan.PlannedQuery) *plan.PlannedQuery {
	pq.Root = optimizeNode(pq.Root)
	return pq
}

func optimizeNode(n plan.Node) plan.Node {
	// Bottom-up: children first.
	switch x := n.(type) {
	case *plan.Filter:
		x.Input = optimizeNode(x.Input)
		x.Cond = fold(x.Cond)
		if j, ok := x.Input.(*plan.Join); ok && pushable(j.Kind) {
			if rest := pushIntoJoin(j, x.Cond); rest == nil {
				detectExpiry(j)
				return j
			} else {
				x.Cond = rest
				detectExpiry(j)
				return x
			}
		}
		return x
	case *plan.Project:
		x.Input = optimizeNode(x.Input)
		for i := range x.Exprs {
			x.Exprs[i] = fold(x.Exprs[i])
		}
		return x
	case *plan.Join:
		x.Left = optimizeNode(x.Left)
		x.Right = optimizeNode(x.Right)
		if x.Residual != nil {
			x.Residual = fold(x.Residual)
		}
		detectExpiry(x)
		return x
	case *plan.Aggregate:
		x.Input = optimizeNode(x.Input)
		for i := range x.Keys {
			x.Keys[i] = fold(x.Keys[i])
		}
		for i := range x.Aggs {
			if x.Aggs[i].Arg != nil {
				x.Aggs[i].Arg = fold(x.Aggs[i].Arg)
			}
		}
		return x
	case *plan.WindowTVF:
		x.Input = optimizeNode(x.Input)
		return x
	case *plan.Distinct:
		x.Input = optimizeNode(x.Input)
		return x
	case *plan.Union:
		for i := range x.Inputs {
			x.Inputs[i] = optimizeNode(x.Inputs[i])
		}
		return x
	case *plan.SetOp:
		x.Left = optimizeNode(x.Left)
		x.Right = optimizeNode(x.Right)
		return x
	default:
		return n
	}
}

func pushable(k sqlparser.JoinKind) bool {
	return k == sqlparser.CrossJoin || k == sqlparser.InnerJoin
}

// fold evaluates constant subexpressions at plan time.
func fold(s plan.Scalar) plan.Scalar {
	switch e := s.(type) {
	case *plan.BinOp:
		e.L = fold(e.L)
		e.R = fold(e.R)
	case *plan.Not:
		e.E = fold(e.E)
	case *plan.Neg:
		e.E = fold(e.E)
	case *plan.IsNull:
		e.E = fold(e.E)
	case *plan.Cast:
		e.E = fold(e.E)
	case *plan.Call:
		for i := range e.Args {
			e.Args[i] = fold(e.Args[i])
		}
	case *plan.Case:
		for i := range e.Whens {
			e.Whens[i].When = fold(e.Whens[i].When)
			e.Whens[i].Then = fold(e.Whens[i].Then)
		}
		if e.Else != nil {
			e.Else = fold(e.Else)
		}
	}
	if _, already := s.(*plan.Const); already {
		return s
	}
	if plan.IsConst(s) {
		if v, err := s.Eval(nil); err == nil {
			return &plan.Const{Val: v}
		}
	}
	return s
}

// pushIntoJoin distributes the filter's conjuncts: equi predicates become
// join keys, single-side predicates become filters below the join, the rest
// joins the residual. It returns the conjunction that must remain above the
// join (nil if fully consumed).
func pushIntoJoin(j *plan.Join, cond plan.Scalar) plan.Scalar {
	leftW := j.Left.Schema().Len()
	total := leftW + j.Right.Schema().Len()
	var leftOnly, rightOnly, residual []plan.Scalar
	for _, c := range conjuncts(cond) {
		if lk, rk, ok := equiPair(c, leftW); ok {
			j.LeftKeys = append(j.LeftKeys, lk)
			j.RightKeys = append(j.RightKeys, rk)
			continue
		}
		lo, hi := colRange(c, total)
		switch {
		case hi < leftW:
			leftOnly = append(leftOnly, c)
		case lo >= leftW && lo <= hi:
			rightOnly = append(rightOnly, shift(c, -leftW))
		default:
			residual = append(residual, c)
		}
	}
	if len(leftOnly) > 0 {
		j.Left = &plan.Filter{Input: j.Left, Cond: conjoin(leftOnly)}
	}
	if len(rightOnly) > 0 {
		j.Right = &plan.Filter{Input: j.Right, Cond: conjoin(rightOnly)}
	}
	if len(residual) > 0 {
		j.Residual = conjoinWith(j.Residual, residual)
	}
	return nil
}

func conjuncts(s plan.Scalar) []plan.Scalar {
	if b, ok := s.(*plan.BinOp); ok && b.Op == sqlparser.OpAnd {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	return []plan.Scalar{s}
}

func conjoin(cs []plan.Scalar) plan.Scalar { return conjoinWith(nil, cs) }

func conjoinWith(acc plan.Scalar, cs []plan.Scalar) plan.Scalar {
	for _, c := range cs {
		if acc == nil {
			acc = c
		} else {
			acc = &plan.BinOp{Op: sqlparser.OpAnd, L: acc, R: c, K: types.KindBool}
		}
	}
	return acc
}

// equiPair recognizes ColRef = ColRef across the join boundary.
func equiPair(c plan.Scalar, leftW int) (int, int, bool) {
	b, ok := c.(*plan.BinOp)
	if !ok || b.Op != sqlparser.OpEq {
		return 0, 0, false
	}
	l, lok := b.L.(*plan.ColRef)
	r, rok := b.R.(*plan.ColRef)
	if !lok || !rok {
		return 0, 0, false
	}
	if l.Idx < leftW && r.Idx >= leftW {
		return l.Idx, r.Idx - leftW, true
	}
	if r.Idx < leftW && l.Idx >= leftW {
		return r.Idx, l.Idx - leftW, true
	}
	return 0, 0, false
}

// colRange returns the min and max column index referenced by s
// (lo > hi means no references).
func colRange(s plan.Scalar, total int) (int, int) {
	lo, hi := total, -1
	var walk func(plan.Scalar)
	walk = func(e plan.Scalar) {
		switch x := e.(type) {
		case *plan.ColRef:
			if x.Idx < lo {
				lo = x.Idx
			}
			if x.Idx > hi {
				hi = x.Idx
			}
		case *plan.BinOp:
			walk(x.L)
			walk(x.R)
		case *plan.Not:
			walk(x.E)
		case *plan.Neg:
			walk(x.E)
		case *plan.IsNull:
			walk(x.E)
		case *plan.Cast:
			walk(x.E)
		case *plan.Call:
			for _, a := range x.Args {
				walk(a)
			}
		case *plan.Case:
			for _, w := range x.Whens {
				walk(w.When)
				walk(w.Then)
			}
			if x.Else != nil {
				walk(x.Else)
			}
		}
	}
	walk(s)
	return lo, hi
}

// shift rebases every column reference by delta (used when pushing a
// right-side-only predicate below the join).
func shift(s plan.Scalar, delta int) plan.Scalar {
	switch x := s.(type) {
	case *plan.ColRef:
		return &plan.ColRef{Idx: x.Idx + delta, Name: x.Name, K: x.K}
	case *plan.Const:
		return x
	case *plan.BinOp:
		return &plan.BinOp{Op: x.Op, L: shift(x.L, delta), R: shift(x.R, delta), K: x.Kind()}
	case *plan.Not:
		return &plan.Not{E: shift(x.E, delta)}
	case *plan.Neg:
		return &plan.Neg{E: shift(x.E, delta)}
	case *plan.IsNull:
		return &plan.IsNull{E: shift(x.E, delta), Not: x.Not}
	case *plan.Cast:
		return &plan.Cast{E: shift(x.E, delta), To: x.To}
	case *plan.Call:
		args := make([]plan.Scalar, len(x.Args))
		for i, a := range x.Args {
			args[i] = shift(a, delta)
		}
		return &plan.Call{Fn: x.Fn, Args: args, K: x.Kind()}
	case *plan.Case:
		c := &plan.Case{K: x.Kind()}
		for _, w := range x.Whens {
			c.Whens = append(c.Whens, plan.CaseWhen{When: shift(w.When, delta), Then: shift(w.Then, delta)})
		}
		if x.Else != nil {
			c.Else = shift(x.Else, delta)
		}
		return c
	default:
		return s
	}
}

// detectExpiry derives interval-join state-expiry bounds from the join's
// residual predicates. For a conjunct normalized to
//
//	leftCol + lk  <op>  rightCol + rk
//
// over zero-offset event-time columns on opposite sides, an upper bound on
// the left column means stored RIGHT rows expire once the merged watermark
// passes rightVal + (rk - lk) (no future left row can match), and an upper
// bound on the right column means stored LEFT rows expire symmetrically.
// Strict comparisons tighten the bound by one millisecond.
func detectExpiry(j *plan.Join) {
	if j.Residual == nil || !pushable(j.Kind) {
		return
	}
	leftW := j.Left.Schema().Len()
	sch := j.Sch
	isEventCol := func(idx int) bool {
		return idx < sch.Len() && sch.Cols[idx].EventTime && sch.Cols[idx].WmOffset == 0
	}
	for _, c := range conjuncts(j.Residual) {
		b, ok := c.(*plan.BinOp)
		if !ok {
			continue
		}
		var op sqlparser.BinOpKind
		switch b.Op {
		case sqlparser.OpLt, sqlparser.OpLe, sqlparser.OpGt, sqlparser.OpGe:
			op = b.Op
		default:
			continue
		}
		lcol, lk, ok1 := affine(b.L)
		rcol, rk, ok2 := affine(b.R)
		if !ok1 || !ok2 || !isEventCol(lcol) || !isEventCol(rcol) {
			continue
		}
		// Normalize so the expression's left column is on the join's
		// left side.
		if lcol >= leftW && rcol < leftW {
			lcol, rcol = rcol, lcol
			lk, rk = rk, lk
			switch op {
			case sqlparser.OpLt:
				op = sqlparser.OpGt
			case sqlparser.OpLe:
				op = sqlparser.OpGe
			case sqlparser.OpGt:
				op = sqlparser.OpLt
			case sqlparser.OpGe:
				op = sqlparser.OpLe
			}
		}
		if lcol >= leftW || rcol < leftW {
			continue // both on the same side
		}
		rcolRel := rcol - leftW
		switch op {
		case sqlparser.OpLt, sqlparser.OpLe:
			// leftCol <= rightCol + (rk - lk): upper bound on left
			// values => stored right rows expire.
			bound := types.Duration(rk - lk)
			if op == sqlparser.OpLt {
				bound -= types.Millisecond
			}
			setExpiry(&j.RightExpiry, rcolRel, bound)
		case sqlparser.OpGt, sqlparser.OpGe:
			// leftCol >= rightCol + (rk - lk): upper bound on right
			// values => stored left rows expire at leftVal + (lk - rk).
			bound := types.Duration(lk - rk)
			if op == sqlparser.OpGt {
				bound -= types.Millisecond
			}
			setExpiry(&j.LeftExpiry, lcol, bound)
		}
	}
}

// setExpiry records the tightest (smallest) bound per column.
func setExpiry(slot **plan.ExpiryBound, col int, bound types.Duration) {
	if *slot == nil || ((*slot).Col == col && bound < (*slot).Bound) {
		*slot = &plan.ExpiryBound{Col: col, Bound: bound}
	}
}

// affine decomposes col, col + interval, or col - interval into
// (column index, offset in ms).
func affine(s plan.Scalar) (int, int64, bool) {
	switch x := s.(type) {
	case *plan.ColRef:
		return x.Idx, 0, true
	case *plan.BinOp:
		cr, ok := x.L.(*plan.ColRef)
		if !ok {
			return 0, 0, false
		}
		con, ok := x.R.(*plan.Const)
		if !ok || con.Val.Kind() != types.KindInterval {
			return 0, 0, false
		}
		switch x.Op {
		case sqlparser.OpAdd:
			return cr.Idx, int64(con.Val.Interval()), true
		case sqlparser.OpSub:
			return cr.Idx, -int64(con.Val.Interval()), true
		}
	}
	return 0, 0, false
}
