package cql

import (
	"repro/internal/tvr"
	"repro/internal/types"
)

// Query7 builds the CQL formulation of NEXMark Query 7 from Listing 1 of
// the paper:
//
//	SELECT Rstream(B.price, B.itemid)
//	FROM Bid [RANGE 10 MINUTE SLIDE 10 MINUTE] B
//	WHERE B.price = (SELECT MAX(B1.price) FROM Bid
//	                 [RANGE 10 MINUTE SLIDE 10 MINUTE] B1)
//
// Every ten minutes the query computes the highest price of the previous
// ten minutes (the subquery) and selects the bids at that price. The input
// tuple layout is (bidtime, price, item) as produced by the NEXMark Bid
// stream; the output layout is (price, item) per the CQL listing.
func Query7(priceIdx, itemIdx int) ContinuousQuery {
	return ContinuousQuery{
		Name:   "NEXMark Q7 (CQL)",
		Window: WindowSpec{Kind: Range, Range: 10 * types.Minute, Slide: 10 * types.Minute},
		Eval: func(win *tvr.Relation, _ types.Time) *tvr.Relation {
			out := tvr.NewRelation()
			// Subquery: MAX(price) over the same window.
			var max types.Value = types.Null()
			for _, row := range win.Rows() {
				p := row[priceIdx]
				if p.IsNull() {
					continue
				}
				if max.IsNull() {
					max = p
					continue
				}
				if c, err := p.Compare(max); err == nil && c > 0 {
					max = p
				}
			}
			if max.IsNull() {
				return out
			}
			// Outer query: bids at the maximum price.
			for _, row := range win.Rows() {
				if row[priceIdx].Equal(max) {
					out.Insert(types.Row{row[priceIdx], row[itemIdx]})
				}
			}
			return out
		},
		Mode: RstreamMode,
	}
}
