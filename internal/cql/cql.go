// Package cql implements the CQL / STREAM baseline the paper compares
// against (Section 2.1 and Listing 1): streams of implicitly timestamped
// tuples, stream-to-relation window operators ([RANGE ... SLIDE ...],
// [ROWS n], [NOW], [UNBOUNDED]), relation-to-stream operators (Istream,
// Dstream, Rstream), and a tick-driven executor that — like the STREAM
// system — buffers out-of-order input and feeds it to the query processor
// in timestamp order, driven by heartbeats.
//
// Time in CQL is a logical clock attached to tuples as metadata, not data:
// the executor can only reason about completeness via heartbeats, which is
// exactly the limitation (buffering latency, no late data) the paper's
// watermark proposal removes.
package cql

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/tvr"
	"repro/internal/types"
)

// Tuple is a stream element: a row plus its implicit timestamp.
type Tuple struct {
	TS  types.Time
	Row types.Row
}

// WindowKind enumerates CQL stream-to-relation windows.
type WindowKind uint8

// Window kinds.
const (
	// Range is [RANGE r] / [RANGE r SLIDE s]: at tick T the relation
	// holds tuples with ts in (T-r, T].
	Range WindowKind = iota
	// Rows is [ROWS n]: the last n tuples by timestamp order.
	Rows
	// Now is [NOW]: tuples with ts == T.
	Now
	// Unbounded is [UNBOUNDED] (RANGE UNBOUNDED): all tuples with ts <= T.
	Unbounded
)

// WindowSpec is a stream-to-relation operator instance.
type WindowSpec struct {
	Kind  WindowKind
	Range types.Duration // for Range
	Slide types.Duration // evaluation period; 0 means every tick
	N     int            // for Rows
}

// String renders the spec in CQL's bracket syntax.
func (w WindowSpec) String() string {
	switch w.Kind {
	case Range:
		if w.Slide > 0 {
			return fmt.Sprintf("[RANGE %s SLIDE %s]", w.Range, w.Slide)
		}
		return fmt.Sprintf("[RANGE %s]", w.Range)
	case Rows:
		return fmt.Sprintf("[ROWS %d]", w.N)
	case Now:
		return "[NOW]"
	default:
		return "[UNBOUNDED]"
	}
}

// Apply computes the instantaneous relation of the window at tick time,
// given the stream's tuples released so far (must be sorted by TS).
func (w WindowSpec) Apply(tuples []Tuple, at types.Time) *tvr.Relation {
	rel := tvr.NewRelation()
	switch w.Kind {
	case Range:
		lo := at.Add(-w.Range) // exclusive
		for _, t := range tuples {
			if t.TS > lo && t.TS <= at {
				rel.Insert(t.Row)
			}
		}
	case Rows:
		var live []Tuple
		for _, t := range tuples {
			if t.TS <= at {
				live = append(live, t)
			}
		}
		start := len(live) - w.N
		if start < 0 {
			start = 0
		}
		for _, t := range live[start:] {
			rel.Insert(t.Row)
		}
	case Now:
		for _, t := range tuples {
			if t.TS == at {
				rel.Insert(t.Row)
			}
		}
	default: // Unbounded
		for _, t := range tuples {
			if t.TS <= at {
				rel.Insert(t.Row)
			}
		}
	}
	return rel
}

// OutputMode selects the relation-to-stream operator for a query's result.
type OutputMode uint8

// Relation-to-stream operators.
const (
	// IstreamMode emits rows entering the result relation at each tick.
	IstreamMode OutputMode = iota
	// DstreamMode emits rows leaving the result relation at each tick.
	DstreamMode
	// RstreamMode emits the entire result relation at each tick.
	RstreamMode
)

// Istream returns the tuples of Istream(R) at time at: rows in cur but not
// in prev (bag difference).
func Istream(prev, cur *tvr.Relation, at types.Time) []Tuple {
	return diffTuples(prev, cur, at)
}

// Dstream returns the tuples of Dstream(R) at time at: rows in prev but not
// in cur.
func Dstream(prev, cur *tvr.Relation, at types.Time) []Tuple {
	return diffTuples(cur, prev, at)
}

// Rstream returns all rows of cur, timestamped at.
func Rstream(cur *tvr.Relation, at types.Time) []Tuple {
	rows := cur.Rows()
	out := make([]Tuple, len(rows))
	for i, r := range rows {
		out[i] = Tuple{TS: at, Row: r}
	}
	return out
}

// diffTuples returns rows over-represented in b relative to a.
func diffTuples(a, b *tvr.Relation, at types.Time) []Tuple {
	var out []Tuple
	seen := map[string]bool{}
	for _, row := range b.Rows() {
		k := row.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		extra := b.Count(row) - a.Count(row)
		for i := 0; i < extra; i++ {
			out = append(out, Tuple{TS: at, Row: row})
		}
	}
	return out
}

// Evaluator is the relation-to-relation stage of a continuous query. CQL's
// relation-to-relation operators are ordinary SQL; queries provide the
// composed logic as a function from the window relation to the result
// relation.
type Evaluator func(window *tvr.Relation, at types.Time) *tvr.Relation

// ContinuousQuery is one registered CQL query: window spec, R2R logic, and
// output mode.
type ContinuousQuery struct {
	Name   string
	Window WindowSpec
	Eval   Evaluator
	Mode   OutputMode
}

// OutTuple is one output stream element together with the tick that
// produced it. It is structurally a Tuple; the alias documents intent.
type OutTuple = Tuple

// Executor runs continuous queries over a single input stream with the
// STREAM system's in-order model: out-of-order tuples are buffered on
// intake and released to the query processor in timestamp order when a
// heartbeat asserts the stream is complete up to a point.
type Executor struct {
	buffer   tupleHeap
	released []Tuple
	clock    types.Time // last heartbeat
	queries  []*queryState

	// MaxBuffered tracks the high-water mark of the intake buffer, the
	// cost of the buffering approach the paper contrasts with watermarks.
	MaxBuffered int
}

type queryState struct {
	q        ContinuousQuery
	prev     *tvr.Relation
	nextTick types.Time
	hasTick  bool
	out      []OutTuple
}

// NewExecutor creates an executor with no registered queries.
func NewExecutor() *Executor {
	return &Executor{clock: types.MinTime}
}

// Register adds a continuous query and returns its index.
func (e *Executor) Register(q ContinuousQuery) int {
	if q.Eval == nil {
		q.Eval = func(w *tvr.Relation, _ types.Time) *tvr.Relation { return w }
	}
	e.queries = append(e.queries, &queryState{q: q, prev: tvr.NewRelation()})
	return len(e.queries) - 1
}

// Push buffers one input tuple. Tuples may arrive in any timestamp order,
// but a tuple older than the current heartbeat is an error: the heartbeat
// asserted that part of the stream was already complete.
func (e *Executor) Push(t Tuple) error {
	if t.TS <= e.clock {
		return fmt.Errorf("cql: tuple at %s arrived after heartbeat %s (STREAM's in-order model admits no late data)", t.TS, e.clock)
	}
	heap.Push(&e.buffer, t)
	if e.buffer.Len() > e.MaxBuffered {
		e.MaxBuffered = e.buffer.Len()
	}
	return nil
}

// Heartbeat asserts the stream is complete through ts: buffered tuples up to
// ts are released in timestamp order and every due tick is evaluated.
func (e *Executor) Heartbeat(ts types.Time) error {
	if ts < e.clock {
		return fmt.Errorf("cql: heartbeat regression %s < %s", ts, e.clock)
	}
	for e.buffer.Len() > 0 && e.buffer[0].TS <= ts {
		e.released = append(e.released, heap.Pop(&e.buffer).(Tuple))
	}
	prev := e.clock
	e.clock = ts
	for _, qs := range e.queries {
		e.tickQuery(qs, prev, ts)
	}
	return nil
}

// tickQuery evaluates every due tick of the query in (prev, now].
func (e *Executor) tickQuery(qs *queryState, prev, now types.Time) {
	slide := qs.q.Window.Slide
	if slide <= 0 {
		// Tick at every released tuple timestamp plus the heartbeat.
		ticks := e.tickTimes(prev, now)
		for _, t := range ticks {
			e.evalAt(qs, t)
		}
		return
	}
	// Slide-aligned ticks: multiples of slide in (prev, now].
	if !qs.hasTick {
		first := firstMultipleAfter(prev, slide)
		qs.nextTick = first
		qs.hasTick = true
	}
	for qs.nextTick <= now {
		e.evalAt(qs, qs.nextTick)
		qs.nextTick = qs.nextTick.Add(slide)
	}
}

// tickTimes lists distinct released-tuple timestamps in (prev, now], plus
// now itself; per CQL the relation is re-evaluated whenever the clock moves.
func (e *Executor) tickTimes(prev, now types.Time) []types.Time {
	set := map[types.Time]bool{}
	for _, t := range e.released {
		if t.TS > prev && t.TS <= now {
			set[t.TS] = true
		}
	}
	set[now] = true
	out := make([]types.Time, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func firstMultipleAfter(t types.Time, step types.Duration) types.Time {
	if t == types.MinTime {
		return types.Time(int64(step))
	}
	n := int64(t) / int64(step)
	next := types.Time((n + 1) * int64(step))
	return next
}

func (e *Executor) evalAt(qs *queryState, at types.Time) {
	win := qs.q.Window.Apply(e.released, at)
	cur := qs.q.Eval(win, at)
	switch qs.q.Mode {
	case IstreamMode:
		qs.out = append(qs.out, Istream(qs.prev, cur, at)...)
	case DstreamMode:
		qs.out = append(qs.out, Dstream(qs.prev, cur, at)...)
	case RstreamMode:
		qs.out = append(qs.out, Rstream(cur, at)...)
	}
	qs.prev = cur
}

// Results returns the output stream of query i.
func (e *Executor) Results(i int) []OutTuple {
	return e.queries[i].out
}

// Buffered returns the number of tuples awaiting a heartbeat.
func (e *Executor) Buffered() int { return e.buffer.Len() }

// tupleHeap is a min-heap by timestamp (FIFO within equal timestamps is not
// guaranteed, matching STREAM's unspecified tie order).
type tupleHeap []Tuple

func (h tupleHeap) Len() int           { return len(h) }
func (h tupleHeap) Less(i, j int) bool { return h[i].TS < h[j].TS }
func (h tupleHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *tupleHeap) Push(x any)        { *h = append(*h, x.(Tuple)) }
func (h *tupleHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
