package cql

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tvr"
	"repro/internal/types"
)

func tup(ts types.Time, vals ...int64) Tuple {
	row := make(types.Row, len(vals))
	for i, v := range vals {
		row[i] = types.NewInt(v)
	}
	return Tuple{TS: ts, Row: row}
}

func TestWindowSpecApply(t *testing.T) {
	tuples := []Tuple{
		tup(types.ClockTime(8, 1), 1),
		tup(types.ClockTime(8, 5), 2),
		tup(types.ClockTime(8, 10), 3),
		tup(types.ClockTime(8, 12), 4),
	}
	at := types.ClockTime(8, 10)

	// RANGE 10m at 8:10 covers (8:00, 8:10].
	rel := WindowSpec{Kind: Range, Range: 10 * types.Minute}.Apply(tuples, at)
	if rel.Len() != 3 {
		t.Errorf("RANGE: len=%d want 3 (%v)", rel.Len(), rel)
	}
	// ROWS 2: last two tuples with ts <= 8:10.
	rel = WindowSpec{Kind: Rows, N: 2}.Apply(tuples, at)
	if rel.Len() != 2 || rel.Count(types.Row{types.NewInt(3)}) != 1 {
		t.Errorf("ROWS: %v", rel)
	}
	// NOW: only ts == 8:10.
	rel = WindowSpec{Kind: Now}.Apply(tuples, at)
	if rel.Len() != 1 || rel.Count(types.Row{types.NewInt(3)}) != 1 {
		t.Errorf("NOW: %v", rel)
	}
	// UNBOUNDED: everything <= 8:10.
	rel = WindowSpec{Kind: Unbounded}.Apply(tuples, at)
	if rel.Len() != 3 {
		t.Errorf("UNBOUNDED: %v", rel)
	}
}

func TestWindowSpecString(t *testing.T) {
	cases := map[string]WindowSpec{
		"[RANGE 10m SLIDE 10m]": {Kind: Range, Range: 10 * types.Minute, Slide: 10 * types.Minute},
		"[RANGE 5m]":            {Kind: Range, Range: 5 * types.Minute},
		"[ROWS 7]":              {Kind: Rows, N: 7},
		"[NOW]":                 {Kind: Now},
		"[UNBOUNDED]":           {Kind: Unbounded},
	}
	for want, spec := range cases {
		if got := spec.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
}

func TestIstreamDstreamRstream(t *testing.T) {
	prev := tvr.NewRelation()
	prev.Insert(types.Row{types.NewInt(1)})
	prev.Insert(types.Row{types.NewInt(2)})
	cur := tvr.NewRelation()
	cur.Insert(types.Row{types.NewInt(2)})
	cur.Insert(types.Row{types.NewInt(3)})
	at := types.ClockTime(9, 0)

	is := Istream(prev, cur, at)
	if len(is) != 1 || is[0].Row[0].Int() != 3 || is[0].TS != at {
		t.Errorf("Istream = %v", is)
	}
	ds := Dstream(prev, cur, at)
	if len(ds) != 1 || ds[0].Row[0].Int() != 1 {
		t.Errorf("Dstream = %v", ds)
	}
	rs := Rstream(cur, at)
	if len(rs) != 2 {
		t.Errorf("Rstream = %v", rs)
	}
}

// Property (CQL identity): R(T) = R(T-1) + Istream - Dstream.
func TestQuickIstreamDstreamIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prev := tvr.NewRelation()
		cur := tvr.NewRelation()
		for i := 0; i < 20; i++ {
			v := types.Row{types.NewInt(int64(rng.Intn(5)))}
			if rng.Intn(2) == 0 {
				prev.Insert(v)
			}
			if rng.Intn(2) == 0 {
				cur.Insert(v)
			}
		}
		rebuilt := prev.Clone()
		for _, tp := range Istream(prev, cur, 0) {
			rebuilt.Insert(tp.Row)
		}
		for _, tp := range Dstream(prev, cur, 0) {
			if err := rebuilt.Delete(tp.Row); err != nil {
				return false
			}
		}
		return rebuilt.Equal(cur)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestExecutorBuffersOutOfOrder(t *testing.T) {
	e := NewExecutor()
	qi := e.Register(ContinuousQuery{
		Window: WindowSpec{Kind: Unbounded},
		Mode:   IstreamMode,
	})
	// Push out of order.
	if err := e.Push(tup(types.ClockTime(8, 7), 2)); err != nil {
		t.Fatal(err)
	}
	if err := e.Push(tup(types.ClockTime(8, 5), 1)); err != nil {
		t.Fatal(err)
	}
	if e.Buffered() != 2 || e.MaxBuffered != 2 {
		t.Fatalf("buffered=%d max=%d", e.Buffered(), e.MaxBuffered)
	}
	if err := e.Heartbeat(types.ClockTime(8, 10)); err != nil {
		t.Fatal(err)
	}
	if e.Buffered() != 0 {
		t.Fatal("heartbeat should drain buffer")
	}
	out := e.Results(qi)
	// Istream over UNBOUNDED emits each tuple once, in timestamp order.
	if len(out) != 2 || out[0].Row[0].Int() != 1 || out[1].Row[0].Int() != 2 {
		t.Fatalf("out = %v", out)
	}
	// Late tuple (ts <= heartbeat) is rejected: STREAM has no late data.
	if err := e.Push(tup(types.ClockTime(8, 9), 9)); err == nil {
		t.Fatal("late tuple should be rejected")
	}
	// Heartbeat regression rejected.
	if err := e.Heartbeat(types.ClockTime(8, 0)); err == nil {
		t.Fatal("heartbeat regression should be rejected")
	}
}

func TestExecutorSlideTicks(t *testing.T) {
	e := NewExecutor()
	qi := e.Register(ContinuousQuery{
		Window: WindowSpec{Kind: Range, Range: 10 * types.Minute, Slide: 10 * types.Minute},
		Mode:   RstreamMode,
	})
	for _, tp := range []Tuple{
		tup(types.ClockTime(8, 5), 1),
		tup(types.ClockTime(8, 15), 2),
	} {
		if err := e.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Heartbeat(types.ClockTime(8, 21)); err != nil {
		t.Fatal(err)
	}
	out := e.Results(qi)
	// Ticks at 8:10 and 8:20: Rstream emits the window contents each time.
	if len(out) != 2 {
		t.Fatalf("out = %v", out)
	}
	if out[0].TS != types.ClockTime(8, 10) || out[0].Row[0].Int() != 1 {
		t.Errorf("tick1 = %v", out[0])
	}
	if out[1].TS != types.ClockTime(8, 20) || out[1].Row[0].Int() != 2 {
		t.Errorf("tick2 = %v", out[1])
	}
}

// TestQuery7PaperData runs the CQL formulation of NEXMark Query 7 (Listing 1)
// over the Section 4 dataset: heartbeats stand in for the stream's timestamp
// progression, releasing bids in order exactly as STREAM would. The final
// answers match the SQL formulation (Listing 3).
func TestQuery7PaperData(t *testing.T) {
	e := NewExecutor()
	qi := e.Register(Query7(1, 2))

	bid := func(h, m int, price int64, item string) Tuple {
		return Tuple{TS: types.ClockTime(h, m), Row: types.Row{
			types.NewTimestamp(types.ClockTime(h, m)),
			types.NewInt(price),
			types.NewString(item),
		}}
	}
	// The paper's dataset: (ptime, event). Heartbeats mirror the
	// watermarks — except the first: the paper's WM 8:05 is heuristic and
	// is in fact violated by bid C (bidtime 8:05, arriving later), which
	// watermark semantics tolerates (C's window is still open) but
	// STREAM's strict heartbeat contract does not. The STREAM baseline
	// therefore gets the valid heartbeat 8:04.
	steps := []struct {
		push *Tuple
		hb   types.Time
	}{
		{hb: types.ClockTime(8, 4)},
		{push: ptr(bid(8, 7, 2, "A"))},
		{push: ptr(bid(8, 11, 3, "B"))},
		{push: ptr(bid(8, 5, 4, "C"))}, // out of order; buffered
		{hb: types.ClockTime(8, 8)},
		{push: ptr(bid(8, 9, 5, "D"))},
		{hb: types.ClockTime(8, 12)},
		{push: ptr(bid(8, 13, 1, "E"))},
		{push: ptr(bid(8, 17, 6, "F"))},
		{hb: types.ClockTime(8, 20)},
	}
	for _, s := range steps {
		if s.push != nil {
			if err := e.Push(*s.push); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := e.Heartbeat(s.hb); err != nil {
				t.Fatal(err)
			}
		}
	}
	out := e.Results(qi)
	if len(out) != 2 {
		t.Fatalf("out = %v", out)
	}
	// Window (8:00, 8:10] -> D $5; window (8:10, 8:20] -> F $6.
	if out[0].TS != types.ClockTime(8, 10) || out[0].Row[0].Int() != 5 || out[0].Row[1].Str() != "D" {
		t.Errorf("tick1 = %+v", out[0])
	}
	if out[1].TS != types.ClockTime(8, 20) || out[1].Row[0].Int() != 6 || out[1].Row[1].Str() != "F" {
		t.Errorf("tick2 = %+v", out[1])
	}
	// C (8:05) arrived at ptime 8:13 after heartbeat 8:08 in the paper's
	// dataset; in the CQL/STREAM model it could only be admitted because
	// the heartbeat had not yet passed 8:05 at intake time. MaxBuffered
	// documents the buffering cost.
	if e.MaxBuffered < 2 {
		t.Errorf("MaxBuffered = %d, want >= 2", e.MaxBuffered)
	}
}

func ptr[T any](v T) *T { return &v }

func TestExecutorPerTupleTicks(t *testing.T) {
	// With no slide, [NOW] ticks at each tuple timestamp.
	e := NewExecutor()
	qi := e.Register(ContinuousQuery{
		Window: WindowSpec{Kind: Now},
		Mode:   RstreamMode,
	})
	for _, tp := range []Tuple{tup(types.ClockTime(8, 1), 1), tup(types.ClockTime(8, 2), 2)} {
		if err := e.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Heartbeat(types.ClockTime(8, 3)); err != nil {
		t.Fatal(err)
	}
	out := e.Results(qi)
	if len(out) != 2 {
		t.Fatalf("out = %v", out)
	}
}
