package obs

import (
	"log/slog"
	"sync/atomic"
	"time"
)

// SpanStage identifies one stage of the commit path, in pipeline order.
type SpanStage int

const (
	// SpanValidate is event validation against the relation schema.
	SpanValidate SpanStage = iota
	// SpanWAL is the WAL append (including fsync under SyncAlways).
	SpanWAL
	// SpanSequence is sequencing + fan-out bookkeeping under the manager lock.
	SpanSequence
	// SpanEnqueue is shard-queue enqueue (including any backpressure block).
	SpanEnqueue
	// SpanApply is driver Feed/Advance — pushing the batch through operators.
	SpanApply
	// SpanRender is Drain + delta render + retention accounting.
	SpanRender
	// SpanDeliver is cursor fan-out, including parked blocking sends.
	SpanDeliver

	numSpanStages
)

// stageNames index by SpanStage; also the `stage` label values on
// commit_stage_seconds.
var stageNames = [numSpanStages]string{
	"validate", "wal", "sequence", "enqueue", "apply", "render", "deliver",
}

// String returns the stage's label value.
func (s SpanStage) String() string {
	if s < 0 || s >= numSpanStages {
		return "unknown"
	}
	return stageNames[s]
}

// DefaultSlowCommit is the default threshold above which a commit emits a
// structured span-breakdown log line (the serve -slow-commit flag default).
const DefaultSlowCommit = 100 * time.Millisecond

// CommitTracer owns the commit-path histograms and the slow-commit log
// policy. One tracer per engine; it hands out a CommitSpan per commit.
// A nil tracer hands out nil spans, and every CommitSpan method is nil-safe,
// so untraced engines pay only nil checks.
type CommitTracer struct {
	stages    [numSpanStages]*Histogram // commit_stage_seconds{stage=...}
	total     *Histogram                // commit_seconds
	slow      *Counter                  // commit_slow_total
	threshold int64                     // ns; <=0 disables slow logging
	log       *slog.Logger
}

// NewCommitTracer registers the commit-path metric families on reg and
// returns a tracer. slow <= 0 disables slow-commit logging; a nil logger
// falls back to slog.Default() at emit time.
func NewCommitTracer(reg *Registry, slow time.Duration, log *slog.Logger) *CommitTracer {
	t := &CommitTracer{threshold: int64(slow), log: log}
	for i := SpanStage(0); i < numSpanStages; i++ {
		t.stages[i] = reg.Histogram("commit_stage_seconds",
			"Time spent per commit-path stage.",
			DurationScale, DurationBuckets, "stage", i.String())
	}
	t.total = reg.Histogram("commit_seconds",
		"End-to-end commit latency (publish to final delivery).",
		DurationScale, DurationBuckets)
	t.slow = reg.Counter("commit_slow_total",
		"Commits slower than the slow-commit threshold.")
	return t
}

// Begin starts a span for one commit. name is the target relation, events
// the batch size. Returns nil (a valid no-op span) on a nil tracer.
func (t *CommitTracer) Begin(name string, events int) *CommitSpan {
	if t == nil {
		return nil
	}
	s := &CommitSpan{tracer: t, name: name, events: events, start: time.Now()}
	s.pending.Store(1)
	return s
}

// CommitSpan accumulates per-stage durations for one commit. The publisher
// holds one reference; Fork adds one per shard task so the span finalizes —
// recording histograms and possibly emitting the slow-commit log line — only
// when the last participant calls Finish. All methods are nil-safe.
type CommitSpan struct {
	tracer  *CommitTracer
	name    string
	events  int
	seq     uint64
	start   time.Time
	stages  [numSpanStages]atomic.Int64 // ns per stage
	pending atomic.Int32
}

// Add accrues d to the given stage. Safe from concurrent shard workers.
func (s *CommitSpan) Add(stage SpanStage, d time.Duration) {
	if s == nil || d < 0 {
		return
	}
	s.stages[stage].Add(int64(d))
}

// AddSince accrues the elapsed time since t0 to the given stage.
func (s *CommitSpan) AddSince(stage SpanStage, t0 time.Time) {
	if s == nil {
		return
	}
	s.stages[stage].Add(int64(time.Since(t0)))
}

// SetSeq records the commit's global sequence number for the slow log line.
func (s *CommitSpan) SetSeq(seq uint64) {
	if s == nil {
		return
	}
	s.seq = seq
}

// Fork adds n participants (shard tasks) that will each call Finish.
// Must be called before the tasks are enqueued.
func (s *CommitSpan) Fork(n int) {
	if s == nil || n <= 0 {
		return
	}
	s.pending.Add(int32(n))
}

// Finish releases one participant. The last release records the stage and
// total histograms and emits the slow-commit log line if the commit exceeded
// the tracer's threshold.
func (s *CommitSpan) Finish() {
	if s == nil {
		return
	}
	if s.pending.Add(-1) != 0 {
		return
	}
	t := s.tracer
	total := time.Since(s.start)
	for i := SpanStage(0); i < numSpanStages; i++ {
		// Skip stages this commit never touched (e.g. enqueue on the serial
		// path) so their histograms aren't flooded with zeros.
		if v := s.stages[i].Load(); v > 0 {
			t.stages[i].Observe(v)
		}
	}
	t.total.Observe(int64(total))
	if t.threshold <= 0 || int64(total) < t.threshold {
		return
	}
	t.slow.Inc()
	log := t.log
	if log == nil {
		log = slog.Default()
	}
	attrs := make([]any, 0, 2*int(numSpanStages)+8)
	attrs = append(attrs,
		slog.String("relation", s.name),
		slog.Int("events", s.events),
		slog.Uint64("seq", s.seq),
		slog.Duration("total", total),
	)
	for i := SpanStage(0); i < numSpanStages; i++ {
		if v := s.stages[i].Load(); v > 0 {
			attrs = append(attrs, slog.Duration(i.String(), time.Duration(v)))
		}
	}
	log.Warn("slow commit", attrs...)
}

// Discard abandons the span without recording anything — for commits that
// fail before publication. Only valid before any Fork'd task runs.
func (s *CommitSpan) Discard() {
	if s == nil {
		return
	}
	s.pending.Store(0)
}
