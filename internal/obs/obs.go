// Package obs is the engine's zero-dependency observability kit: a metrics
// registry of atomic counters, gauges, and fixed-bucket histograms with
// Prometheus text-format exposition, plus the commit-path tracer (trace.go).
//
// The design constraint is the hot path. The engine's batched ingest path is
// pinned at 0 allocs/op (exec's TestKeyedHotPathAllocFree), so every
// recording primitive here — Counter.Add, Gauge.Set, Histogram.Observe — is
// lock-free and allocation-free: an atomic add or two, plus a short linear
// scan over fixed bucket bounds for histograms. All the allocation (label
// rendering, family bookkeeping, sorting) happens once at registration or at
// scrape time, never per observation.
//
// Metric handles are nil-safe: calling Add/Set/Observe on a nil *Counter,
// *Gauge, or *Histogram is a no-op. Instrumented layers therefore hold plain
// possibly-nil fields and skip the "is observability enabled" branch at every
// call site; a layer built without a Registry records nothing at zero cost
// beyond a predictable nil check.
//
// Naming scheme (documented in ROADMAP.md "Observability"): every family is
// prefixed with its layer — engine_, wal_, checkpoint_, shard_, live_,
// exec_, commit_ — counters end in _total, histograms of durations end in
// _seconds (observed internally in integer nanoseconds, scaled at
// exposition). Labels are fixed-cardinality only (shard index, execution
// path, span stage); nothing per-subscription or per-relation.
package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; a nil receiver records nothing.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (negative n is ignored — counters are
// monotone). Lock-free and allocation-free; safe on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc adds one. Safe on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable integer metric. The zero value is ready to use; a nil
// receiver records nothing.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. Safe on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by n (may be negative). Safe on a nil receiver.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram. Observations are int64 in whatever
// unit the caller chose at registration (the scale factor converts to the
// exposed unit at scrape time — durations observe nanoseconds and expose
// seconds with scale 1e-9). Observe is lock-free and allocation-free: a
// linear scan over the fixed bounds plus three atomic adds.
type Histogram struct {
	bounds []int64        // ascending upper bounds; +Inf bucket is implicit
	scale  float64        // exposition multiplier (1 = raw unit)
	counts []atomic.Int64 // len(bounds)+1; per-bucket, cumulated at scrape
	sum    atomic.Int64
	count  atomic.Int64
}

// Observe records one value. Safe on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveSince records the elapsed nanoseconds since t0. Pair with
// DurationBuckets and scale 1e-9.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(int64(time.Since(t0)))
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// DurationBuckets are the standard latency bounds, in nanoseconds: 50µs to
// 5s, roughly 1-2.5-5 per decade. Register duration histograms with these
// and scale 1e-9 so they expose Prometheus-conventional seconds.
var DurationBuckets = []int64{
	50_000, 100_000, 250_000, 500_000, // 50µs .. 500µs
	1_000_000, 2_500_000, 5_000_000, 10_000_000, // 1ms .. 10ms
	25_000_000, 50_000_000, 100_000_000, 250_000_000, // 25ms .. 250ms
	500_000_000, 1_000_000_000, 2_500_000_000, 5_000_000_000, // 500ms .. 5s
}

// DurationScale converts nanosecond observations to exposed seconds.
const DurationScale = 1e-9

const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// series is one labeled sample within a family. Exactly one of the value
// sources is set.
type series struct {
	labels string // rendered {k="v",...} or ""
	c      *Counter
	g      *Gauge
	fn     func() float64 // CounterFunc/GaugeFunc
	h      *Histogram
}

// family is one metric name: HELP/TYPE plus its label-distinguished series.
type family struct {
	name   string
	help   string
	typ    string
	series []*series
}

// Registry holds metric families and renders them in Prometheus text format.
// Registration takes a lock; the returned handles never do. The zero value
// is not usable — call NewRegistry.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// renderLabels turns alternating key/value pairs into a deterministic
// `{k="v",...}` string (sorted by key). Panics on an odd pair count — a
// registration-time programmer error, not a runtime condition.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: labels must be key/value pairs, got %d strings", len(labels)))
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// lookup finds or creates the family and returns the series for the given
// labels, creating it with mk when absent. Re-registering the same
// name+labels returns the existing series; a name registered under two
// different types panics (programmer error, caught by any test that touches
// the registry).
func (r *Registry) lookup(name, help, typ string, labels []string, mk func() *series) *series {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.fams[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	for _, s := range f.series {
		if s.labels == ls {
			return s
		}
	}
	s := mk()
	s.labels = ls
	f.series = append(f.series, s)
	return s
}

// Counter registers (or returns the existing) counter under name with
// optional alternating label key/value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	s := r.lookup(name, help, typeCounter, labels, func() *series { return &series{c: &Counter{}} })
	return s.c
}

// CounterFunc registers a counter whose value is sampled from fn at scrape
// time (for cumulative state another layer already tracks atomically). fn
// must be safe to call from any goroutine and should not block.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	r.lookup(name, help, typeCounter, labels, func() *series { return &series{fn: fn} })
}

// Gauge registers (or returns the existing) gauge under name.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	s := r.lookup(name, help, typeGauge, labels, func() *series { return &series{g: &Gauge{}} })
	return s.g
}

// GaugeFunc registers a gauge sampled from fn at scrape time. fn must be
// safe to call from any goroutine and should not block.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.lookup(name, help, typeGauge, labels, func() *series { return &series{fn: fn} })
}

// Histogram registers (or returns the existing) fixed-bucket histogram.
// bounds are ascending upper bounds in the observation unit; scale converts
// observed values to the exposed unit at scrape time (use DurationBuckets
// and DurationScale for latencies).
func (r *Registry) Histogram(name, help string, scale float64, bounds []int64, labels ...string) *Histogram {
	s := r.lookup(name, help, typeHistogram, labels, func() *series {
		if scale == 0 {
			scale = 1
		}
		h := &Histogram{bounds: bounds, scale: scale, counts: make([]atomic.Int64, len(bounds)+1)}
		return &series{h: h}
	})
	return s.h
}

// WriteText renders every family in Prometheus text exposition format
// (version 0.0.4): families sorted by name, each with one HELP and TYPE
// line, series sorted by label string. Concurrent Observe/Add calls during a
// scrape are fine — each sample is an atomic load, so a scrape sees a
// near-point-in-time snapshot without stopping writers.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.fams[n]
	}
	// Snapshot the series slices so rendering (and user fn callbacks) run
	// outside the registry lock.
	sers := make([][]*series, len(fams))
	for i, f := range fams {
		ss := make([]*series, len(f.series))
		copy(ss, f.series)
		sort.Slice(ss, func(a, b int) bool { return ss[a].labels < ss[b].labels })
		sers[i] = ss
	}
	r.mu.Unlock()

	var b strings.Builder
	for i, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range sers[i] {
			switch {
			case s.c != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.c.Value())
			case s.g != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.g.Value())
			case s.fn != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatFloat(s.fn()))
			case s.h != nil:
				writeHistogram(&b, f.name, s.labels, s.h)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram series: cumulative _bucket lines with
// le labels (merged into any existing labels), then _sum and _count.
func writeHistogram(b *strings.Builder, name, labels string, h *Histogram) {
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(float64(h.bounds[i]) * h.scale)
		}
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, mergeLabel(labels, "le", le), cum)
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labels, formatFloat(float64(h.sum.Load())*h.scale))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labels, h.count.Load())
}

// mergeLabel appends one k="v" pair to a rendered label string.
func mergeLabel(labels, k, v string) string {
	pair := k + `="` + escapeLabelValue(v) + `"`
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Handler returns the HTTP handler serving the registry in Prometheus text
// format — what cmd/serve mounts at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
