package obs

import (
	"bytes"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestExpositionFormat is the golden test for the Prometheus text format:
// family ordering, HELP/TYPE lines, label rendering, and histogram
// bucket/sum/count shape must match exactly.
func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("wal_appends_total", "WAL records appended.")
	c.Add(3)
	g := r.Gauge("engine_degraded", "1 when the engine is in degraded read-only mode.")
	g.Set(1)
	r.Counter("engine_commits_total", "Commits applied.", "kind", "publish").Add(5)
	r.Counter("engine_commits_total", "Commits applied.", "kind", "heartbeat").Add(2)
	r.GaugeFunc("live_sessions", "Resident live sessions.", func() float64 { return 4 })
	h := r.Histogram("wal_fsync_seconds", "fsync latency.", DurationScale, []int64{1_000_000, 10_000_000})
	h.Observe(500_000)    // first bucket
	h.Observe(5_000_000)  // second bucket
	h.Observe(50_000_000) // +Inf

	var b bytes.Buffer
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# HELP engine_commits_total Commits applied.",
		"# TYPE engine_commits_total counter",
		`engine_commits_total{kind="heartbeat"} 2`,
		`engine_commits_total{kind="publish"} 5`,
		"# HELP engine_degraded 1 when the engine is in degraded read-only mode.",
		"# TYPE engine_degraded gauge",
		"engine_degraded 1",
		"# HELP live_sessions Resident live sessions.",
		"# TYPE live_sessions gauge",
		"live_sessions 4",
		"# HELP wal_appends_total WAL records appended.",
		"# TYPE wal_appends_total counter",
		"wal_appends_total 3",
		"# HELP wal_fsync_seconds fsync latency.",
		"# TYPE wal_fsync_seconds histogram",
		`wal_fsync_seconds_bucket{le="0.001"} 1`,
		`wal_fsync_seconds_bucket{le="0.01"} 2`,
		`wal_fsync_seconds_bucket{le="+Inf"} 3`,
		"wal_fsync_seconds_sum 0.0555",
		"wal_fsync_seconds_count 3",
		"",
	}, "\n")
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestExpositionParses sanity-checks every line against the text-format
// grammar: comments start with "# HELP"/"# TYPE", samples are
// "name[{labels}] value".
func TestExpositionParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a.").Inc()
	r.Histogram("b_seconds", "b.", DurationScale, DurationBuckets, "stage", `x"y\z`).Observe(7)
	var b bytes.Buffer
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimRight(b.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		// Label values may contain spaces after escaping, so split on the
		// last space: everything before is name+labels, after is the value.
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("sample line with no value: %q", line)
		}
		name := line[:i]
		if j := strings.IndexByte(name, '{'); j >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("unterminated label set: %q", line)
			}
			name = name[:j]
		}
		if name == "" || strings.ContainsAny(name, " \t") {
			t.Fatalf("bad metric name in %q", line)
		}
	}
}

func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x.")
	b := r.Counter("x_total", "x.")
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	h1 := r.Histogram("y_seconds", "y.", DurationScale, DurationBuckets, "stage", "apply")
	h2 := r.Histogram("y_seconds", "y.", DurationScale, DurationBuckets, "stage", "apply")
	if h1 != h2 {
		t.Fatal("re-registration returned a different histogram")
	}
	h3 := r.Histogram("y_seconds", "y.", DurationScale, DurationBuckets, "stage", "render")
	if h3 == h1 {
		t.Fatal("distinct labels returned the same histogram")
	}
}

func TestTypeConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("registering one name under two types did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("z", "z.")
	r.Gauge("z", "z.")
}

// TestConcurrentObserveCollect hammers every primitive while scraping; run
// under -race this is the data-race proof for the lock-free hot path.
func TestConcurrentObserveCollect(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c.")
	g := r.Gauge("g", "g.")
	h := r.Histogram("h_seconds", "h.", DurationScale, DurationBuckets)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := int64(0); ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(j)
				h.Observe(j % 10_000_000)
			}
		}()
	}
	for i := 0; i < 50 || c.Value() == 0; i++ {
		var b bytes.Buffer
		if err := r.WriteText(&b); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if c.Value() == 0 || h.Count() == 0 {
		t.Fatal("no observations recorded")
	}
}

// TestHotPathAllocFree pins Counter.Add, Gauge.Set, and Histogram.Observe —
// including their nil-receiver no-op forms — at zero allocations, the
// contract that lets them sit on the 0 allocs/op batched ingest path.
func TestHotPathAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c.")
	g := r.Gauge("g", "g.")
	h := r.Histogram("h_seconds", "h.", DurationScale, DurationBuckets)
	var nilC *Counter
	var nilH *Histogram
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		g.Set(7)
		h.Observe(3_000_000)
		nilC.Add(1)
		nilH.Observe(1)
	}); n != 0 {
		t.Fatalf("hot-path metric ops allocated %v allocs/op, want 0", n)
	}
}

func TestCommitSpanRecordsStages(t *testing.T) {
	r := NewRegistry()
	tr := NewCommitTracer(r, 0, nil)
	s := tr.Begin("bid", 10)
	s.Add(SpanValidate, time.Millisecond)
	s.Add(SpanWAL, 2*time.Millisecond)
	s.Fork(2)
	s.Add(SpanApply, 3*time.Millisecond)
	s.Finish() // publisher
	if tr.total.Count() != 0 {
		t.Fatal("span finalized before all participants finished")
	}
	s.Finish()
	s.Finish() // last participant records
	if got := tr.total.Count(); got != 1 {
		t.Fatalf("total histogram count = %d, want 1", got)
	}
	if tr.stages[SpanValidate].Count() != 1 || tr.stages[SpanApply].Count() != 1 {
		t.Fatal("touched stages not recorded")
	}
	if tr.stages[SpanEnqueue].Count() != 0 {
		t.Fatal("untouched stage recorded a zero observation")
	}
}

// TestSlowCommitLog asserts the acceptance criterion: a commit over the
// threshold emits exactly one structured line carrying per-stage durations.
func TestSlowCommitLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	r := NewRegistry()
	tr := NewCommitTracer(r, time.Nanosecond, logger)
	s := tr.Begin("bid", 5)
	s.SetSeq(42)
	s.Add(SpanWAL, 80*time.Millisecond)
	s.Add(SpanApply, 30*time.Millisecond)
	time.Sleep(10 * time.Microsecond)
	s.Finish()
	out := buf.String()
	if n := strings.Count(out, "slow commit"); n != 1 {
		t.Fatalf("want exactly one slow-commit line, got %d in %q", n, out)
	}
	for _, want := range []string{`"relation":"bid"`, `"events":5`, `"seq":42`, `"wal":`, `"apply":`, `"total":`} {
		if !strings.Contains(out, want) {
			t.Errorf("slow-commit line missing %s: %s", want, out)
		}
	}
	if tr.slow.Value() != 1 {
		t.Fatalf("commit_slow_total = %d, want 1", tr.slow.Value())
	}
}

func TestDiscardRecordsNothing(t *testing.T) {
	r := NewRegistry()
	tr := NewCommitTracer(r, time.Nanosecond, slog.New(slog.NewTextHandler(&bytes.Buffer{}, nil)))
	s := tr.Begin("bid", 1)
	s.Add(SpanValidate, time.Millisecond)
	s.Discard()
	if tr.total.Count() != 0 || tr.slow.Value() != 0 {
		t.Fatal("discarded span recorded observations")
	}
}

func TestNilTracerAndSpan(t *testing.T) {
	var tr *CommitTracer
	s := tr.Begin("x", 1)
	if s != nil {
		t.Fatal("nil tracer returned non-nil span")
	}
	// All span methods must be no-ops on nil.
	s.Add(SpanApply, time.Second)
	s.AddSince(SpanRender, time.Now())
	s.SetSeq(1)
	s.Fork(3)
	s.Finish()
	s.Discard()
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a.").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "a_total 1") {
		t.Fatalf("body missing sample: %q", rec.Body.String())
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "bench.")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", "bench.", DurationScale, DurationBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) % 1_000_000_000)
	}
}

func BenchmarkWriteText(b *testing.B) {
	r := NewRegistry()
	for _, stage := range stageNames {
		r.Histogram("commit_stage_seconds", "s.", DurationScale, DurationBuckets, "stage", stage).Observe(1_000_000)
	}
	r.Counter("a_total", "a.").Inc()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := r.WriteText(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
