//go:build race

package nexmark

// raceEnabled reports that the race detector is instrumenting this build.
// The bench harness runs at reduced scale under -race: instrumentation slows
// the goroutine-crossing path by an order of magnitude, the speedup bar never
// arms there anyway (see TestNexmarkBench), and full scale belongs to `make
// bench-full`.
const raceEnabled = true
