package nexmark

import (
	"testing"

	"repro/internal/core"
	"repro/internal/types"
)

func TestGeneratorDeterministic(t *testing.T) {
	cfg := GeneratorConfig{Seed: 42, NumEvents: 500, MaxOutOfOrderness: 2 * types.Second}
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a.Bids) != len(b.Bids) || len(a.Persons) != len(b.Persons) || len(a.Auctions) != len(b.Auctions) {
		t.Fatal("same seed must generate identical event counts")
	}
	for i := range a.Bids {
		if a.Bids[i].Kind != b.Bids[i].Kind || a.Bids[i].Ptime != b.Bids[i].Ptime {
			t.Fatalf("bid %d differs", i)
		}
		if a.Bids[i].IsData() && !a.Bids[i].Row.Equal(b.Bids[i].Row) {
			t.Fatalf("bid row %d differs", i)
		}
	}
	// Different seed differs somewhere.
	c := Generate(GeneratorConfig{Seed: 43, NumEvents: 500, MaxOutOfOrderness: 2 * types.Second})
	same := len(a.Bids) == len(c.Bids)
	if same {
		identical := true
		for i := range a.Bids {
			if a.Bids[i].IsData() && c.Bids[i].IsData() && !a.Bids[i].Row.Equal(c.Bids[i].Row) {
				identical = false
				break
			}
		}
		if identical {
			t.Error("different seeds should differ")
		}
	}
}

func TestGeneratorProportionsAndValidity(t *testing.T) {
	g := Generate(GeneratorConfig{Seed: 1, NumEvents: 5000, MaxOutOfOrderness: 5 * types.Second})
	// Classic mix: 1 person, 3 auctions, 46 bids per 50 events.
	if g.NumPersons != 100 || g.NumAuctions != 300 || g.NumBids != 4600 {
		t.Fatalf("mix = %d/%d/%d", g.NumPersons, g.NumAuctions, g.NumBids)
	}
	// Changelogs must be valid (ptime ordered, watermarks monotonic).
	for name, log := range map[string]interface{ Validate() error }{
		"persons": g.Persons, "auctions": g.Auctions, "bids": g.Bids,
	} {
		if err := log.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	// Watermark assertions hold: no data event has event time <= an
	// earlier watermark.
	wm := types.MinTime
	timeIdx := BidFullSchema().IndexOf("dateTime")
	for _, ev := range g.Bids {
		if ev.Kind == 2 { // tvr.Watermark
			if ev.Wm > wm {
				wm = ev.Wm
			}
			continue
		}
		if ev.IsData() {
			if et := ev.Row[timeIdx].Timestamp(); et <= wm {
				t.Fatalf("late bid: event time %s <= watermark %s", et, wm)
			}
		}
	}
}

func TestGeneratorOrderedWhenNoSkew(t *testing.T) {
	g := Generate(GeneratorConfig{Seed: 7, NumEvents: 200})
	last := types.MinTime
	timeIdx := BidFullSchema().IndexOf("dateTime")
	for _, ev := range g.Bids {
		if !ev.IsData() {
			continue
		}
		et := ev.Row[timeIdx].Timestamp()
		if et < last {
			t.Fatal("zero skew should produce in-order bids")
		}
		last = et
	}
}

func newBenchEngine(t testing.TB, q Query, events int) *core.Engine {
	t.Helper()
	g := Generate(GeneratorConfig{Seed: 11, NumEvents: events, MaxOutOfOrderness: 2 * types.Second})
	var opts []core.Option
	if q.NeedsUnboundedGroupBy {
		opts = append(opts, core.WithUnboundedGroupBy())
	}
	e, err := NewEngine(g, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestAllQueriesRun executes every NEXMark query end to end on a small
// generated dataset, in both table and stream renderings.
func TestAllQueriesRun(t *testing.T) {
	for _, q := range Queries() {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			e := newBenchEngine(t, q, 2000)
			res, err := e.QueryTable(q.SQL, types.MaxTime)
			if err != nil {
				t.Fatalf("Q%d table: %v", q.ID, err)
			}
			stream, err := e.QueryStream(q.SQL + " EMIT STREAM")
			if err != nil {
				t.Fatalf("Q%d stream: %v", q.ID, err)
			}
			t.Logf("Q%d: %d table rows, %d stream rows", q.ID, len(res.Rows), len(stream.Rows))
			// The stream rendering must replay to the table rendering.
			if q.ID == 0 && len(res.Rows) != 4600*2000/5000 {
				t.Errorf("Q0 row count = %d", len(res.Rows))
			}
		})
	}
}

// TestQ0Passthrough checks the passthrough cardinality equals the bid count.
func TestQ0Passthrough(t *testing.T) {
	g := Generate(GeneratorConfig{Seed: 3, NumEvents: 1000, MaxOutOfOrderness: types.Second})
	e, err := NewEngine(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.QueryTable(q0, types.MaxTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != g.NumBids {
		t.Fatalf("passthrough rows = %d, want %d", len(res.Rows), g.NumBids)
	}
}

// TestQ1Conversion verifies the currency projection math.
func TestQ1Conversion(t *testing.T) {
	g := Generate(GeneratorConfig{Seed: 3, NumEvents: 500})
	e, err := NewEngine(g)
	if err != nil {
		t.Fatal(err)
	}
	in, err := e.QueryTable(q0, types.MaxTime)
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.QueryTable(q1, types.MaxTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Rows) != len(out.Rows) {
		t.Fatal("row count changed")
	}
	for i := range in.Rows {
		want := in.Rows[i][2].Int() * 908 / 1000
		if out.Rows[i][2].Int() != want {
			t.Fatalf("row %d: price %d, want %d", i, out.Rows[i][2].Int(), want)
		}
	}
}

// TestQ7AgreesWithCQLBaseline cross-checks the SQL Q7 against a
// direct computation over the generated data.
func TestQ7WindowMaxCorrect(t *testing.T) {
	g := Generate(GeneratorConfig{Seed: 5, NumEvents: 2000, MaxOutOfOrderness: types.Second})
	e, err := NewEngine(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.QueryTable(q7, types.MaxTime)
	if err != nil {
		t.Fatal(err)
	}
	// Direct computation: max price per 10s tumbling window.
	maxByWindow := map[types.Time]int64{}
	timeIdx := BidFullSchema().IndexOf("dateTime")
	for _, ev := range g.Bids {
		if !ev.IsData() {
			continue
		}
		et := ev.Row[timeIdx].Timestamp()
		wend := et - et%types.Time(10*types.Second) + types.Time(10*types.Second)
		p := ev.Row[2].Int()
		if p > maxByWindow[wend] {
			maxByWindow[wend] = p
		}
	}
	for _, row := range res.Rows {
		wend := row[1].Timestamp()
		if row[3].Int() != maxByWindow[wend] {
			t.Fatalf("window %s: price %d, want %d", wend, row[3].Int(), maxByWindow[wend])
		}
	}
	// Every window with bids is represented.
	seen := map[types.Time]bool{}
	for _, row := range res.Rows {
		seen[row[1].Timestamp()] = true
	}
	for wend := range maxByWindow {
		if !seen[wend] {
			t.Fatalf("window ending %s missing from Q7 output", wend)
		}
	}
}

func TestQueryByID(t *testing.T) {
	q, err := QueryByID(7)
	if err != nil || q.ID != 7 {
		t.Fatalf("QueryByID(7) = %+v, %v", q, err)
	}
	if _, err := QueryByID(99); err == nil {
		t.Fatal("QueryByID(99) should fail")
	}
}
