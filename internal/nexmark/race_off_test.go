//go:build !race

package nexmark

// raceEnabled reports that the race detector is instrumenting this build.
const raceEnabled = false
