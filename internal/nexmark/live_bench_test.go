package nexmark

// The standing-query benchmark harness: opens a live subscription over a
// NEXMark query, ingests the generated Bid changelog event by event (the
// steady-state serving pattern), and records ingest throughput plus
// per-delta delivery latency percentiles into BENCH_live.json at the
// repository root. Run via `make bench-live`.

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/tvr"
	"repro/internal/types"
)

// liveBenchSQL is the serving benchmark's standing query: the per-auction
// windowed rollup (hash-partitionable, watermark-driven EMIT) that the batch
// harness also measures, so the two records are comparable.
const liveBenchSQL = `
SELECT auction, wstart, wend, MAX(price) maxPrice
FROM Tumble(
  data => TABLE(Bid),
  timecol => DESCRIPTOR(dateTime),
  dur => INTERVAL '10' SECONDS)
GROUP BY auction, wstart, wend
EMIT STREAM AFTER WATERMARK`

// liveSubscribe opens the benchmark subscription on a Bid-only engine.
func liveSubscribe(t testing.TB, mode live.Mode, parts, buffer int) (*core.Engine, *live.Subscription) {
	t.Helper()
	e := core.NewEngine()
	if err := e.RegisterStream("Bid", BidFullSchema()); err != nil {
		t.Fatal(err)
	}
	var sub *live.Subscription
	var err error
	opts := core.SubscribeOptions{Parts: parts, Buffer: buffer}
	if mode == live.Table {
		sub, err = e.SubscribeTable(liveBenchSQL, opts)
	} else {
		sub, err = e.SubscribeStream(liveBenchSQL, opts)
	}
	if err != nil {
		t.Fatal(err)
	}
	return e, sub
}

// measureLive ingests the bid changelog through a standing subscription and
// measures throughput and per-delta latency. The consumer is inline and
// non-blocking (drain after every ingest), so latency is the full
// ingest->pipeline->delivery path as a synchronous server would see it.
func measureLive(t testing.TB, bids tvr.Changelog, mode live.Mode, parts int) bench.LiveResult {
	t.Helper()
	e, sub := liveSubscribe(t, mode, parts, len(bids)+16)
	st0 := sub.Stats()

	var latencies []int64
	drain := func(since time.Time) {
		for {
			select {
			case _, ok := <-sub.Deltas():
				if !ok {
					return
				}
				latencies = append(latencies, time.Since(since).Nanoseconds())
			default:
				return
			}
		}
	}
	start := time.Now()
	for _, ev := range bids {
		t0 := time.Now()
		var err error
		switch ev.Kind {
		case tvr.Insert:
			err = e.Insert("Bid", ev.Ptime, ev.Row)
		case tvr.Delete:
			err = e.Delete("Bid", ev.Ptime, ev.Row)
		case tvr.Watermark:
			err = e.AdvanceWatermark("Bid", ev.Ptime, ev.Wm)
		}
		if err != nil {
			t.Fatal(err)
		}
		drain(t0)
	}
	ingestNs := time.Since(start).Nanoseconds()
	if _, err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	st := sub.Stats()
	if st.EventsIn-st0.EventsIn != int64(len(bids)) {
		t.Fatalf("subscription saw %d events, ingested %d", st.EventsIn-st0.EventsIn, len(bids))
	}
	if st.DeltasOut == 0 {
		t.Fatal("benchmark subscription delivered no deltas")
	}
	return bench.LiveResult{
		Query:        "Per-auction windowed max (EMIT AFTER WATERMARK)",
		Mode:         mode.String(),
		Partitions:   st.Partitions,
		Subscribers:  1,
		Shared:       true,
		Events:       len(bids),
		Deltas:       st.DeltasOut,
		Rows:         st.RowsOut,
		IngestNs:     ingestNs,
		LatencyP50Ns: bench.PercentileNs(latencies, 0.50),
		LatencyP95Ns: bench.PercentileNs(latencies, 0.95),
		LatencyP99Ns: bench.PercentileNs(latencies, 0.99),
		LatencyMaxNs: bench.PercentileNs(latencies, 1.00),
	}
}

// measureLiveFanout is the K-subscriber serving scenario: K standing
// subscriptions to the same SQL, either sharing one resident pipeline
// (shared=true, the plan-cache path) or each on a dedicated pipeline
// (shared=false, Exclusive). The bid changelog is ingested once; Deltas,
// Rows, and latency samples aggregate across all K subscribers, so the
// record directly compares fan-out cost: the shared configuration evaluates
// each change once and hands it to K cursors, the unshared one evaluates it
// K times.
func measureLiveFanout(t testing.TB, bids tvr.Changelog, k int, shared bool) bench.LiveResult {
	t.Helper()
	e := core.NewEngine()
	if err := e.RegisterStream("Bid", BidFullSchema()); err != nil {
		t.Fatal(err)
	}
	subs := make([]*live.Subscription, k)
	for i := range subs {
		var err error
		subs[i], err = e.SubscribeStream(liveBenchSQL, core.SubscribeOptions{
			Buffer: len(bids) + 16, Exclusive: !shared,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	wantSessions := 1
	if !shared {
		wantSessions = k
	}
	if got := e.LiveSessions(); got != wantSessions {
		t.Fatalf("%d resident pipelines for shared=%v, want %d", got, shared, wantSessions)
	}
	var latencies []int64
	drainAll := func(since time.Time) {
		for _, sub := range subs {
			draining := true
			for draining {
				select {
				case _, ok := <-sub.Deltas():
					if !ok {
						draining = false
						break
					}
					latencies = append(latencies, time.Since(since).Nanoseconds())
				default:
					draining = false
				}
			}
		}
	}
	start := time.Now()
	for _, ev := range bids {
		t0 := time.Now()
		var err error
		switch ev.Kind {
		case tvr.Insert:
			err = e.Insert("Bid", ev.Ptime, ev.Row)
		case tvr.Delete:
			err = e.Delete("Bid", ev.Ptime, ev.Row)
		case tvr.Watermark:
			err = e.AdvanceWatermark("Bid", ev.Ptime, ev.Wm)
		}
		if err != nil {
			t.Fatal(err)
		}
		drainAll(t0)
	}
	ingestNs := time.Since(start).Nanoseconds()
	res := bench.LiveResult{
		Query:       "Per-auction windowed max, K-subscriber fan-out",
		Mode:        live.Stream.String(),
		Partitions:  subs[0].Stats().Partitions,
		Subscribers: k,
		Shared:      shared,
		Events:      len(bids),
		IngestNs:    ingestNs,
	}
	for _, sub := range subs {
		st := sub.Stats()
		res.Deltas += st.DeltasOut
		res.Rows += st.RowsOut
		if _, err := sub.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if res.Deltas == 0 {
		t.Fatal("fan-out benchmark delivered no deltas")
	}
	res.LatencyP50Ns = bench.PercentileNs(latencies, 0.50)
	res.LatencyP95Ns = bench.PercentileNs(latencies, 0.95)
	res.LatencyP99Ns = bench.PercentileNs(latencies, 0.99)
	res.LatencyMaxNs = bench.PercentileNs(latencies, 1.00)
	return res
}

// multiQuerySQL returns n disjoint standing queries over the Bid stream:
// the same windowed rollup at n distinct tumble widths, so each compiles to
// its own resident pipeline (distinct plan keys) and the sharded fan-out can
// actually spread them across workers.
func multiQuerySQL(n int) []string {
	durs := []int{4, 5, 8, 10, 15, 20, 25, 30}
	qs := make([]string, n)
	for i := range qs {
		qs[i] = fmt.Sprintf(`
SELECT auction, wstart, wend, MAX(price) maxPrice
FROM Tumble(
  data => TABLE(Bid),
  timecol => DESCRIPTOR(dateTime),
  dur => INTERVAL '%d' SECONDS)
GROUP BY auction, wstart, wend
EMIT STREAM AFTER WATERMARK`, durs[i%len(durs)])
	}
	return qs
}

// measureMultiQuery is the sharded-fan-out scaling scenario: `queries`
// disjoint standing queries fed by one ingest loop, measured at a pinned
// GOMAXPROCS. Under the serial fan-out (shards=0) every pipeline applies on
// the ingesting goroutine, so aggregate throughput cannot scale with procs;
// with shard workers the applies run concurrently across pipelines. The
// clock stops after Quiesce so the sharded configurations pay for every
// enqueued delivery, not just for handing work to the queues.
func measureMultiQuery(t testing.TB, bids tvr.Changelog, shards, procs, queries int) bench.LiveResult {
	t.Helper()
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	e := core.NewEngine(core.WithShards(shards))
	defer e.Close()
	if err := e.RegisterStream("Bid", BidFullSchema()); err != nil {
		t.Fatal(err)
	}
	subs := make([]*live.Subscription, queries)
	for i, sql := range multiQuerySQL(queries) {
		var err error
		subs[i], err = e.SubscribeStream(sql, core.SubscribeOptions{Buffer: len(bids) + 16})
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := e.LiveSessions(); got != queries {
		t.Fatalf("%d resident pipelines, want %d disjoint queries", got, queries)
	}
	start := time.Now()
	for _, ev := range bids {
		var err error
		switch ev.Kind {
		case tvr.Insert:
			err = e.Insert("Bid", ev.Ptime, ev.Row)
		case tvr.Delete:
			err = e.Delete("Bid", ev.Ptime, ev.Row)
		case tvr.Watermark:
			err = e.AdvanceWatermark("Bid", ev.Ptime, ev.Wm)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	e.Quiesce()
	ingestNs := time.Since(start).Nanoseconds()
	res := bench.LiveResult{
		Query:       "Disjoint windowed maxes, aggregate ingest",
		Mode:        live.Stream.String(),
		Partitions:  1,
		Subscribers: queries,
		Shared:      false,
		Shards:      shards,
		Queries:     queries,
		Procs:       procs,
		Events:      len(bids),
		IngestNs:    ingestNs,
	}
	for _, sub := range subs {
		if _, err := sub.Close(); err != nil {
			t.Fatal(err)
		}
		st := sub.Stats()
		res.Deltas += st.DeltasOut
		res.Rows += st.RowsOut
	}
	if res.Deltas == 0 {
		t.Fatal("multi-query benchmark delivered no deltas")
	}
	return res
}

// TestLiveBench measures steady-state subscription serving and writes
// BENCH_live.json (or, for reduced-scale short/race runs, the separate
// BENCH_live_short.json, so the committed full-scale baseline survives
// `make verify`) at the repository root.
func TestLiveBench(t *testing.T) {
	n := 30000
	if testing.Short() || raceEnabled {
		n = 4000
	}
	n = benchEventCount(n)
	g := Generate(GeneratorConfig{Seed: 42, NumEvents: n, MaxOutOfOrderness: 2 * types.Second})
	rec := bench.NewLive("nexmark-live", testing.Short() || raceEnabled)
	logRes := func(res bench.LiveResult) {
		t.Logf("%s parts=%d subs=%d shared=%v: %d events, %d deltas, %.0f events/s, p50=%s p99=%s",
			res.Mode, res.Partitions, res.Subscribers, res.Shared, res.Events, res.Deltas,
			float64(res.Events)/(float64(res.IngestNs)/1e9),
			time.Duration(res.LatencyP50Ns), time.Duration(res.LatencyP99Ns))
	}
	for _, cfg := range []struct {
		mode  live.Mode
		parts int
	}{
		{live.Stream, 1},
		{live.Stream, 4},
		{live.Table, 1},
	} {
		res := measureLive(t, g.Bids, cfg.mode, cfg.parts)
		rec.Add(res)
		logRes(res)
	}
	// K-subscriber fan-out: one shared resident pipeline vs. K dedicated
	// pipelines for the same SQL. Shared must sustain at least the
	// unshared ingest throughput (it does strictly less evaluation work).
	const fanout = 4
	sharedRes := measureLiveFanout(t, g.Bids, fanout, true)
	rec.Add(sharedRes)
	logRes(sharedRes)
	unsharedRes := measureLiveFanout(t, g.Bids, fanout, false)
	rec.Add(unsharedRes)
	logRes(unsharedRes)
	if sharedRes.Deltas != unsharedRes.Deltas || sharedRes.Rows != unsharedRes.Rows {
		t.Errorf("shared fan-out delivered %d deltas/%d rows, unshared %d/%d — outputs must match",
			sharedRes.Deltas, sharedRes.Rows, unsharedRes.Deltas, unsharedRes.Rows)
	}
	// Multi-query scaling: 8 disjoint standing queries fed by one ingest,
	// serial fan-out vs. 8 shard workers, at 1 and 4 procs. Every
	// configuration must deliver the identical aggregate output (the
	// byte-identity contract reduced to counts here; the property tests in
	// internal/live and internal/core pin the full sequences).
	const scaleQueries, scaleProcs = 8, 4
	var multi []bench.LiveResult
	for _, cfg := range []struct{ shards, procs int }{
		{0, 1}, {0, scaleProcs}, {scaleQueries, 1}, {scaleQueries, scaleProcs},
	} {
		res := measureMultiQuery(t, g.Bids, cfg.shards, cfg.procs, scaleQueries)
		rec.Add(res)
		t.Logf("multi-query shards=%d procs=%d: %d events x %d queries, %d deltas, %.0f events/s",
			res.Shards, res.Procs, res.Events, res.Queries, res.Deltas,
			float64(res.Events)/(float64(res.IngestNs)/1e9))
		multi = append(multi, res)
	}
	for _, res := range multi[1:] {
		if res.Deltas != multi[0].Deltas || res.Rows != multi[0].Rows {
			t.Errorf("multi-query shards=%d procs=%d delivered %d deltas/%d rows, serial@1proc delivered %d/%d — outputs must match",
				res.Shards, res.Procs, res.Deltas, res.Rows, multi[0].Deltas, multi[0].Rows)
		}
	}
	// The >=2x scaling bar is a wall-clock assertion; like the one-shot
	// harness's speedup bar it only arms under NEXMARK_BENCH_STRICT=1 on an
	// uninstrumented build with real 4-way parallelism.
	strict := os.Getenv("NEXMARK_BENCH_STRICT") == "1"
	sharded1, sharded4 := multi[2], multi[3]
	if strict && !testing.Short() && !raceEnabled && runtime.NumCPU() >= scaleProcs {
		if scaling := float64(sharded1.IngestNs) / float64(sharded4.IngestNs); scaling < 2.0 {
			t.Errorf("sharded multi-query ingest scaled %.2fx from 1 to %d procs, want >= 2x (%d queries, %d shards)",
				scaling, scaleProcs, scaleQueries, scaleQueries)
		}
	} else {
		t.Logf("sharded scaling bar skipped: strict=%v short=%v race=%v NumCPU=%d (need NEXMARK_BENCH_STRICT=1 and %d cores)",
			strict, testing.Short(), raceEnabled, runtime.NumCPU(), scaleProcs)
	}
	out := "../../BENCH_live.json"
	if rec.ShortMode {
		out = "../../BENCH_live_short.json"
	}
	if !benchWriteEnabled() {
		t.Logf("not refreshing %s (set NEXMARK_BENCH_WRITE=1 / use make bench-*)", out)
		return
	}
	// Preserve the recovery rows TestRecoveryBench merged into the file;
	// the two benchmarks own disjoint sections of the record.
	if prev, err := bench.LoadLive(out); err == nil && prev != nil {
		rec.Recovery = prev.Recovery
	}
	if err := rec.WriteFile(out); err != nil {
		t.Fatal(err)
	}
}
