package nexmark

// The standing-query benchmark harness: opens a live subscription over a
// NEXMark query, ingests the generated Bid changelog event by event (the
// steady-state serving pattern), and records ingest throughput plus
// per-delta delivery latency percentiles into BENCH_live.json at the
// repository root. Run via `make bench-live`.

import (
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/tvr"
	"repro/internal/types"
)

// liveBenchSQL is the serving benchmark's standing query: the per-auction
// windowed rollup (hash-partitionable, watermark-driven EMIT) that the batch
// harness also measures, so the two records are comparable.
const liveBenchSQL = `
SELECT auction, wstart, wend, MAX(price) maxPrice
FROM Tumble(
  data => TABLE(Bid),
  timecol => DESCRIPTOR(dateTime),
  dur => INTERVAL '10' SECONDS)
GROUP BY auction, wstart, wend
EMIT STREAM AFTER WATERMARK`

// liveSubscribe opens the benchmark subscription on a Bid-only engine.
func liveSubscribe(t testing.TB, mode live.Mode, parts, buffer int) (*core.Engine, *live.Subscription) {
	t.Helper()
	e := core.NewEngine()
	if err := e.RegisterStream("Bid", BidFullSchema()); err != nil {
		t.Fatal(err)
	}
	var sub *live.Subscription
	var err error
	opts := core.SubscribeOptions{Parts: parts, Buffer: buffer}
	if mode == live.Table {
		sub, err = e.SubscribeTable(liveBenchSQL, opts)
	} else {
		sub, err = e.SubscribeStream(liveBenchSQL, opts)
	}
	if err != nil {
		t.Fatal(err)
	}
	return e, sub
}

// measureLive ingests the bid changelog through a standing subscription and
// measures throughput and per-delta latency. The consumer is inline and
// non-blocking (drain after every ingest), so latency is the full
// ingest->pipeline->delivery path as a synchronous server would see it.
func measureLive(t testing.TB, bids tvr.Changelog, mode live.Mode, parts int) bench.LiveResult {
	t.Helper()
	e, sub := liveSubscribe(t, mode, parts, len(bids)+16)
	st0 := sub.Stats()

	var latencies []int64
	drain := func(since time.Time) {
		for {
			select {
			case _, ok := <-sub.Deltas():
				if !ok {
					return
				}
				latencies = append(latencies, time.Since(since).Nanoseconds())
			default:
				return
			}
		}
	}
	start := time.Now()
	for _, ev := range bids {
		t0 := time.Now()
		var err error
		switch ev.Kind {
		case tvr.Insert:
			err = e.Insert("Bid", ev.Ptime, ev.Row)
		case tvr.Delete:
			err = e.Delete("Bid", ev.Ptime, ev.Row)
		case tvr.Watermark:
			err = e.AdvanceWatermark("Bid", ev.Ptime, ev.Wm)
		}
		if err != nil {
			t.Fatal(err)
		}
		drain(t0)
	}
	ingestNs := time.Since(start).Nanoseconds()
	if _, err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	st := sub.Stats()
	if st.EventsIn-st0.EventsIn != int64(len(bids)) {
		t.Fatalf("subscription saw %d events, ingested %d", st.EventsIn-st0.EventsIn, len(bids))
	}
	if st.DeltasOut == 0 {
		t.Fatal("benchmark subscription delivered no deltas")
	}
	return bench.LiveResult{
		Query:        "Per-auction windowed max (EMIT AFTER WATERMARK)",
		Mode:         mode.String(),
		Partitions:   st.Partitions,
		Events:       len(bids),
		Deltas:       st.DeltasOut,
		Rows:         st.RowsOut,
		IngestNs:     ingestNs,
		LatencyP50Ns: bench.PercentileNs(latencies, 0.50),
		LatencyP95Ns: bench.PercentileNs(latencies, 0.95),
		LatencyP99Ns: bench.PercentileNs(latencies, 0.99),
		LatencyMaxNs: bench.PercentileNs(latencies, 1.00),
	}
}

// TestLiveBench measures steady-state subscription serving and writes
// BENCH_live.json (or, for reduced-scale short/race runs, the separate
// BENCH_live_short.json, so the committed full-scale baseline survives
// `make verify`) at the repository root.
func TestLiveBench(t *testing.T) {
	n := 30000
	if testing.Short() || raceEnabled {
		n = 4000
	}
	g := Generate(GeneratorConfig{Seed: 42, NumEvents: n, MaxOutOfOrderness: 2 * types.Second})
	rec := bench.NewLive("nexmark-live", testing.Short() || raceEnabled)
	for _, cfg := range []struct {
		mode  live.Mode
		parts int
	}{
		{live.Stream, 1},
		{live.Stream, 4},
		{live.Table, 1},
	} {
		res := measureLive(t, g.Bids, cfg.mode, cfg.parts)
		rec.Add(res)
		t.Logf("%s parts=%d: %d events, %d deltas, %.0f events/s, p50=%s p99=%s",
			res.Mode, res.Partitions, res.Events, res.Deltas,
			float64(res.Events)/(float64(res.IngestNs)/1e9),
			time.Duration(res.LatencyP50Ns), time.Duration(res.LatencyP99Ns))
	}
	out := "../../BENCH_live.json"
	if rec.ShortMode {
		out = "../../BENCH_live_short.json"
	}
	if err := rec.WriteFile(out); err != nil {
		t.Fatal(err)
	}
}
