package nexmark

import (
	"fmt"

	"repro/internal/core"
)

// Query is one NEXMark benchmark query expressed in the engine's dialect.
type Query struct {
	// ID is the NEXMark query number.
	ID int
	// Name is the benchmark's short description.
	Name string
	// SQL is the query text against the Person/Auction/Bid/Category
	// catalog.
	SQL string
	// NeedsUnboundedGroupBy marks queries whose classic formulation
	// groups an unbounded stream by a non-event-time key (Q4, Q6); they
	// require the engine's Extension 2 escape hatch and keep unbounded
	// state, which is precisely why the paper argues for event-time
	// windowed grouping.
	NeedsUnboundedGroupBy bool
}

// Queries lists the implemented NEXMark queries in ID order.
func Queries() []Query {
	return []Query{
		{ID: 0, Name: "Passthrough", SQL: q0},
		{ID: 1, Name: "Currency conversion", SQL: q1},
		{ID: 2, Name: "Selection", SQL: q2},
		{ID: 3, Name: "Local item suggestion", SQL: q3},
		{ID: 4, Name: "Average price per category", SQL: q4, NeedsUnboundedGroupBy: true},
		{ID: 5, Name: "Hot items", SQL: q5},
		{ID: 6, Name: "Average selling price by seller (windowed)", SQL: q6},
		{ID: 7, Name: "Highest bid", SQL: q7},
		{ID: 8, Name: "Monitor new users", SQL: q8},
	}
}

// QueryByID returns the query with the given NEXMark number.
func QueryByID(id int) (Query, error) {
	for _, q := range Queries() {
		if q.ID == id {
			return q, nil
		}
	}
	return Query{}, fmt.Errorf("nexmark: no query %d", id)
}

const q0 = `
SELECT auction, bidder, price, dateTime FROM Bid`

// Q1: convert bid prices from dollars to euros (the classic 0.908 rate).
const q1 = `
SELECT auction, bidder, price * 908 / 1000 AS price, dateTime FROM Bid`

// Q2: bids on a set of specific auctions.
const q2 = `
SELECT auction, price FROM Bid WHERE MOD(auction, 123) = 0`

// Q3: local item suggestion — sellers of category-1 items in western states.
const q3 = `
SELECT P.name, P.city, P.state, A.id
FROM Auction A JOIN Person P ON A.seller = P.id
WHERE A.category = 1 AND (P.state = 'OR' OR P.state = 'ID' OR P.state = 'CA')`

// Q4: average closing price per category. The classic formulation groups by
// auction id (not an event-time key) so it needs the Extension 2 escape
// hatch and keeps state for every auction — the behaviour the paper's
// windowed grouping avoids.
const q4 = `
SELECT Q.category, AVG(Q.final) AS avgPrice
FROM (
  SELECT A.id AS id, A.category AS category, MAX(B.price) AS final
  FROM Auction A JOIN Bid B ON A.id = B.auction
  WHERE B.dateTime BETWEEN A.dateTime AND A.expires
  GROUP BY A.id, A.category
) Q
GROUP BY Q.category`

// Q5: hot items — auctions with the most bids in each hopping window.
const q5 = `
SELECT AuctionBids.wstart wstart, AuctionBids.wend wend,
       AuctionBids.auction auction, AuctionBids.num num
FROM
  (SELECT auction, wstart, wend, COUNT(*) num
   FROM Hop(
     data => TABLE(Bid),
     timecol => DESCRIPTOR(dateTime),
     dur => INTERVAL '10' SECONDS,
     hopsize => INTERVAL '5' SECONDS)
   GROUP BY auction, wstart, wend) AuctionBids,
  (SELECT wstart, wend, MAX(inner2.num) maxn
   FROM (
     SELECT auction, wstart, wend, COUNT(*) num
     FROM Hop(
       data => TABLE(Bid),
       timecol => DESCRIPTOR(dateTime),
       dur => INTERVAL '10' SECONDS,
       hopsize => INTERVAL '5' SECONDS)
     GROUP BY auction, wstart, wend) inner2
   GROUP BY wstart, wend) MaxBids
WHERE AuctionBids.wstart = MaxBids.wstart
  AND AuctionBids.wend = MaxBids.wend
  AND AuctionBids.num = MaxBids.maxn`

// Q6: average selling price per seller over event-time windows (the classic
// per-seller moving average adapted to windowed grouping, as the Beam/Flink
// suites do).
const q6 = `
SELECT W.seller seller, W.wend wend, AVG(W.final) AS avgPrice
FROM (
  SELECT A.seller AS seller, MAX(B.price) AS final, B.wstart wstart, B.wend wend
  FROM Auction A
  JOIN (SELECT auction, bidder, price, dateTime, wstart, wend
        FROM Tumble(
          data => TABLE(Bid),
          timecol => DESCRIPTOR(dateTime),
          dur => INTERVAL '30' SECONDS)) B
    ON A.id = B.auction
  GROUP BY A.id, A.seller, B.wstart, B.wend
) W
GROUP BY W.seller, W.wend`

// Q7: highest bid per ten-second tumbling window (the paper's Listing 2
// query over the full NEXMark bid schema, scaled to the generator's pace).
const q7 = `
SELECT MaxBid.wstart wstart, MaxBid.wend wend,
       Bid.dateTime dateTime, Bid.price price, Bid.bidder bidder
FROM Bid,
  (SELECT MAX(TB.price) maxPrice, TB.wstart wstart, TB.wend wend
   FROM Tumble(
     data => TABLE(Bid),
     timecol => DESCRIPTOR(dateTime),
     dur => INTERVAL '10' SECONDS) TB
   GROUP BY TB.wend, TB.wstart) MaxBid
WHERE Bid.price = MaxBid.maxPrice
  AND Bid.dateTime >= MaxBid.wend - INTERVAL '10' SECONDS
  AND Bid.dateTime < MaxBid.wend`

// Q8: monitor new users — people who created auctions in the same window
// they registered in.
const q8 = `
SELECT P.id id, P.name name, P.wstart wstart
FROM
  (SELECT id, name, wstart, wend
   FROM Tumble(
     data => TABLE(Person),
     timecol => DESCRIPTOR(dateTime),
     dur => INTERVAL '10' SECONDS)) P
JOIN
  (SELECT seller, wstart, wend
   FROM Tumble(
     data => TABLE(Auction),
     timecol => DESCRIPTOR(dateTime),
     dur => INTERVAL '10' SECONDS)) A
ON P.id = A.seller AND P.wstart = A.wstart AND P.wend = A.wend`

// NewEngine builds a core engine loaded with the generated dataset. Queries
// needing the Extension 2 escape hatch get it via the option.
func NewEngine(g *Generated, opts ...core.Option) (*core.Engine, error) {
	e := core.NewEngine(opts...)
	if err := e.RegisterStream("Person", PersonSchema()); err != nil {
		return nil, err
	}
	if err := e.RegisterStream("Auction", AuctionSchema()); err != nil {
		return nil, err
	}
	if err := e.RegisterStream("Bid", BidFullSchema()); err != nil {
		return nil, err
	}
	if err := e.RegisterTable("Category", CategorySchema()); err != nil {
		return nil, err
	}
	if err := e.AppendLog("Person", g.Persons); err != nil {
		return nil, err
	}
	if err := e.AppendLog("Auction", g.Auctions); err != nil {
		return nil, err
	}
	if err := e.AppendLog("Bid", g.Bids); err != nil {
		return nil, err
	}
	for _, row := range g.Categories {
		if err := e.Insert("Category", 0, row); err != nil {
			return nil, err
		}
	}
	return e, nil
}
