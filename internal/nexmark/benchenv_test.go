package nexmark

// Environment overrides for the benchmark harnesses, wired through the
// Makefile's bench-* targets:
//
//	BENCH_COUNT=60000       pin the exact event count
//	BENCH_SCALE=0.25        multiply each harness's built-in default
//	NEXMARK_BENCH_WRITE=1   write/refresh the BENCH_*.json records
//
// BENCH_COUNT wins when both are set. Invalid or non-positive values are
// ignored, so a stray variable cannot silently zero a benchmark.

import (
	"os"
	"strconv"
)

// benchEventCount resolves the event count for a benchmark whose built-in
// default (full-scale or short-mode) is def.
func benchEventCount(def int) int {
	if v := os.Getenv("BENCH_COUNT"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	if v := os.Getenv("BENCH_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			if n := int(float64(def) * f); n > 0 {
				return n
			}
		}
	}
	return def
}

// benchWriteEnabled gates the BENCH_*.json record writes behind
// NEXMARK_BENCH_WRITE=1 (set by the Makefile's bench-* targets). A plain
// `go test ./...` — the tier-1 gate — measures but leaves the working tree
// untouched, so parallel or ad-hoc test runs can never clobber the
// committed baselines with reduced-scale or contended numbers.
func benchWriteEnabled() bool {
	return os.Getenv("NEXMARK_BENCH_WRITE") == "1"
}
