package nexmark

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/tvr"
	"repro/internal/types"
)

// The NEXMark data model: an online auction platform with three streams
// (Person, Auction, Bid) and a static Category table. The generator is
// deterministic (seeded) and produces out-of-order streams: each event's
// processing time trails its event time by a random skew, and heuristic
// watermarks trail processing time by the configured bound — the synthetic
// stand-in for the paper's production sources.

// PersonSchema describes the Person stream.
func PersonSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "id", Kind: types.KindInt64},
		types.Column{Name: "name", Kind: types.KindString},
		types.Column{Name: "email", Kind: types.KindString},
		types.Column{Name: "city", Kind: types.KindString},
		types.Column{Name: "state", Kind: types.KindString},
		types.Column{Name: "dateTime", Kind: types.KindTimestamp, EventTime: true},
	)
}

// AuctionSchema describes the Auction stream.
func AuctionSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "id", Kind: types.KindInt64},
		types.Column{Name: "itemName", Kind: types.KindString},
		types.Column{Name: "seller", Kind: types.KindInt64},
		types.Column{Name: "category", Kind: types.KindInt64},
		types.Column{Name: "initialBid", Kind: types.KindInt64},
		types.Column{Name: "expires", Kind: types.KindTimestamp},
		types.Column{Name: "dateTime", Kind: types.KindTimestamp, EventTime: true},
	)
}

// BidFullSchema describes the full NEXMark Bid stream (the paper's Section 4
// example uses the reduced BidSchema).
func BidFullSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "auction", Kind: types.KindInt64},
		types.Column{Name: "bidder", Kind: types.KindInt64},
		types.Column{Name: "price", Kind: types.KindInt64},
		types.Column{Name: "dateTime", Kind: types.KindTimestamp, EventTime: true},
	)
}

// CategorySchema describes the static Category table.
func CategorySchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "id", Kind: types.KindInt64},
		types.Column{Name: "name", Kind: types.KindString},
	)
}

// GeneratorConfig controls the deterministic event generator.
type GeneratorConfig struct {
	// Seed fixes the pseudo-random sequence.
	Seed int64
	// NumEvents is the total number of person+auction+bid events.
	NumEvents int
	// FirstEventTime is the event time of the first event.
	FirstEventTime types.Time
	// InterEventGap is the event-time spacing between consecutive events.
	InterEventGap types.Duration
	// MaxOutOfOrderness bounds how far processing time trails event time;
	// 0 generates perfectly ordered streams.
	MaxOutOfOrderness types.Duration
	// WatermarkInterval is the processing-time period between watermark
	// emissions per stream.
	WatermarkInterval types.Duration
	// Proportions of the event mix per NEXMark: defaults 1 person,
	// 3 auctions, 46 bids per 50 events.
	PersonProportion, AuctionProportion, BidProportion int
	// NumCategories sizes the static Category table (default 5).
	NumCategories int
}

func (c GeneratorConfig) withDefaults() GeneratorConfig {
	if c.NumEvents == 0 {
		c.NumEvents = 1000
	}
	if c.InterEventGap == 0 {
		c.InterEventGap = 100 * types.Millisecond
	}
	if c.WatermarkInterval == 0 {
		c.WatermarkInterval = 10 * types.Second
	}
	if c.PersonProportion == 0 && c.AuctionProportion == 0 && c.BidProportion == 0 {
		c.PersonProportion, c.AuctionProportion, c.BidProportion = 1, 3, 46
	}
	if c.NumCategories == 0 {
		c.NumCategories = 5
	}
	return c
}

// Generated holds the generator's output: one recorded changelog per stream
// plus the static category rows.
type Generated struct {
	Persons    tvr.Changelog
	Auctions   tvr.Changelog
	Bids       tvr.Changelog
	Categories []types.Row
	// Counts of data events per stream.
	NumPersons, NumAuctions, NumBids int
}

var (
	firstNames = []string{"Ada", "Bob", "Cleo", "Dan", "Eve", "Fay", "Gus", "Hal", "Ivy", "Joe"}
	lastNames  = []string{"Walton", "Smith", "Jones", "Noris", "Abrams", "White", "Bauer", "Stone"}
	cities     = []string{"Phoenix", "Palo Alto", "Seattle", "Boise", "Portland", "Bend", "Eugene"}
	states     = []string{"AZ", "CA", "WA", "ID", "OR"}
	items      = []string{"chair", "table", "sofa", "lamp", "rug", "vase", "desk", "clock"}
)

type pending struct {
	ptime  types.Time
	stream int // 0 person, 1 auction, 2 bid
	row    types.Row
	seq    int
}

// Generate produces the deterministic NEXMark dataset for the config.
func Generate(cfg GeneratorConfig) *Generated {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := &Generated{}

	for i := 0; i < cfg.NumCategories; i++ {
		out.Categories = append(out.Categories, types.Row{
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("category-%d", i)),
		})
	}

	cycle := cfg.PersonProportion + cfg.AuctionProportion + cfg.BidProportion
	var events []pending
	var nextPersonID, nextAuctionID int64 = 1000, 2000
	var personIDs, auctionIDs []int64

	randPerson := func() int64 {
		if len(personIDs) == 0 {
			return 999 // a "pre-existing" user
		}
		return personIDs[rng.Intn(len(personIDs))]
	}
	randAuction := func() int64 {
		if len(auctionIDs) == 0 {
			return 1999
		}
		return auctionIDs[rng.Intn(len(auctionIDs))]
	}

	for i := 0; i < cfg.NumEvents; i++ {
		et := cfg.FirstEventTime.Add(types.Duration(int64(i) * int64(cfg.InterEventGap)))
		skew := types.Duration(0)
		if cfg.MaxOutOfOrderness > 0 {
			skew = types.Duration(rng.Int63n(int64(cfg.MaxOutOfOrderness) + 1))
		}
		pt := et.Add(skew)
		slot := i % cycle
		switch {
		case slot < cfg.PersonProportion:
			id := nextPersonID
			nextPersonID++
			personIDs = append(personIDs, id)
			name := firstNames[rng.Intn(len(firstNames))] + " " + lastNames[rng.Intn(len(lastNames))]
			row := types.Row{
				types.NewInt(id),
				types.NewString(name),
				types.NewString(fmt.Sprintf("u%d@example.com", id)),
				types.NewString(cities[rng.Intn(len(cities))]),
				types.NewString(states[rng.Intn(len(states))]),
				types.NewTimestamp(et),
			}
			events = append(events, pending{ptime: pt, stream: 0, row: row, seq: i})
			out.NumPersons++
		case slot < cfg.PersonProportion+cfg.AuctionProportion:
			id := nextAuctionID
			nextAuctionID++
			auctionIDs = append(auctionIDs, id)
			expires := et.Add(types.Duration(rng.Int63n(int64(20*types.Minute))) + types.Minute)
			row := types.Row{
				types.NewInt(id),
				types.NewString(items[rng.Intn(len(items))]),
				types.NewInt(randPerson()),
				types.NewInt(int64(rng.Intn(cfg.NumCategories))),
				types.NewInt(int64(rng.Intn(100) + 1)),
				types.NewTimestamp(expires),
				types.NewTimestamp(et),
			}
			events = append(events, pending{ptime: pt, stream: 1, row: row, seq: i})
			out.NumAuctions++
		default:
			row := types.Row{
				types.NewInt(randAuction()),
				types.NewInt(randPerson()),
				types.NewInt(int64(rng.Intn(10000) + 1)),
				types.NewTimestamp(et),
			}
			events = append(events, pending{ptime: pt, stream: 2, row: row, seq: i})
			out.NumBids++
		}
	}

	// Deliver in processing-time order (stable on generation sequence).
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].ptime != events[j].ptime {
			return events[i].ptime < events[j].ptime
		}
		return events[i].seq < events[j].seq
	})

	// Interleave per-stream heuristic watermarks: wm = ptime - bound - 1ms
	// is always valid because event time >= ptime - MaxOutOfOrderness.
	logs := []*tvr.Changelog{&out.Persons, &out.Auctions, &out.Bids}
	nextWM := types.Time(int64(cfg.FirstEventTime) + int64(cfg.WatermarkInterval))
	for _, ev := range events {
		for ev.ptime >= nextWM {
			wm := nextWM.Add(-cfg.MaxOutOfOrderness - types.Millisecond)
			for _, log := range logs {
				*log = append(*log, tvr.WatermarkEvent(nextWM, wm))
			}
			nextWM = nextWM.Add(cfg.WatermarkInterval)
		}
		*logs[ev.stream] = append(*logs[ev.stream], tvr.InsertEvent(ev.ptime, ev.row))
	}
	// Final watermark covering everything emitted.
	if len(events) > 0 {
		last := events[len(events)-1].ptime
		final := cfg.FirstEventTime.Add(types.Duration(int64(cfg.NumEvents)*int64(cfg.InterEventGap)) + cfg.MaxOutOfOrderness)
		if final < last {
			final = last
		}
		for _, log := range logs {
			*log = append(*log, tvr.WatermarkEvent(last, final))
		}
	}
	return out
}
