package nexmark

// The recovery benchmark: how expensive is durable recovery, and what does
// it buy? For a standing query over the NEXMark bid stream it measures the
// engine checkpoint's size and write time, the time to restore a fresh
// engine (catalog + resident pipeline) from the bytes, and the time the
// pre-checkpoint recovery path needs — compiling the query and replaying the
// full recorded history through a new pipeline. It also measures steady-state
// durability: the bytes and fsyncs the write-ahead log spends committing a
// fixed delta, at two history sizes 10x apart, against the cost of a full
// snapshot at each — the WAL side must stay flat. Results merge into the
// Recovery section of BENCH_live.json (BENCH_live_short.json for reduced
// scale) next to the serving benchmark's subscription rows. Run via
// `make bench-recovery`.

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/types"
	"repro/internal/wal"
)

// measureRecovery builds one loaded engine (subscription + full ingested
// history), then times checkpoint, restore, and replay-rebuild.
func measureRecovery(t *testing.T, g *Generated, parts, runs int) bench.RecoveryResult {
	t.Helper()
	opts := core.SubscribeOptions{Parts: parts, Buffer: 16}

	// The serving engine whose durability we measure.
	e := core.NewEngine()
	if err := e.RegisterStream("Bid", BidFullSchema()); err != nil {
		t.Fatal(err)
	}
	sub, err := e.SubscribeStream(liveBenchSQL, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()
	if err := e.AppendLog("Bid", g.Bids); err != nil {
		t.Fatal(err)
	}
	drain := func() {
		for {
			select {
			case <-sub.Deltas():
			default:
				return
			}
		}
	}
	drain()

	var ckpt bytes.Buffer
	ckptNs, err := bench.MedianNs(runs, func() error {
		ckpt.Reset()
		return e.CheckpointAll(&ckpt)
	})
	if err != nil {
		t.Fatal(err)
	}

	// Restore path: fresh engine from the checkpoint bytes. The restored
	// engines (and their resident pipelines' worker goroutines) are torn
	// down outside the timed region by attaching and canceling a cursor.
	var restoredEngines []*core.Engine
	restoreNs, err := bench.MedianNs(runs, func() error {
		restored := core.NewEngine()
		if err := restored.RestoreAll(bytes.NewReader(ckpt.Bytes())); err != nil {
			return err
		}
		restoredEngines = append(restoredEngines, restored)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, restored := range restoredEngines {
		if restored.LiveSessions() != 1 {
			t.Fatalf("restored engine has %d sessions, want 1", restored.LiveSessions())
		}
		s, err := restored.SubscribeStream(liveBenchSQL, opts)
		if err != nil {
			t.Fatal(err)
		}
		s.Cancel() // last cursor: closes the restored pipeline
	}

	// Replay path: what recovery cost before checkpoints — an engine that
	// still has the recorded history (rebuilt outside the timed region)
	// compiles the standing query and replays every event through it.
	replayEngine := core.NewEngine()
	if err := replayEngine.RegisterStream("Bid", BidFullSchema()); err != nil {
		t.Fatal(err)
	}
	if err := replayEngine.AppendLog("Bid", g.Bids); err != nil {
		t.Fatal(err)
	}
	replayNs, err := bench.MedianNs(runs, func() error {
		s, err := replayEngine.SubscribeStream(liveBenchSQL, core.SubscribeOptions{
			Parts: parts, Buffer: 16, Exclusive: true, // dedicated pipeline per run
		})
		if err != nil {
			return err
		}
		s.Cancel()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	st := sub.Stats()
	return bench.RecoveryResult{
		Query:           "Per-auction windowed max (EMIT AFTER WATERMARK)",
		Mode:            live.Stream.String(),
		Partitions:      st.Partitions,
		Events:          len(g.Bids),
		CheckpointBytes: int64(ckpt.Len()),
		CheckpointNs:    ckptNs,
		RestoreNs:       restoreNs,
		ReplayNs:        replayNs,
	}
}

// measureDurability measures the steady-state cost of staying durable: with
// `history` events already resident (catalog + standing query), commit the
// NEXT `delta` events through an fsync-per-batch write-ahead log and count
// the bytes and fsyncs that took — then price the alternative, a full engine
// snapshot at this history size. The WAL figure should track the delta; the
// snapshot figure tracks the whole history, which is exactly why the log
// exists.
func measureDurability(t *testing.T, g *Generated, history, delta, batch int) bench.RecoveryResult {
	t.Helper()
	e := core.NewEngine()
	if err := e.RegisterStream("Bid", BidFullSchema()); err != nil {
		t.Fatal(err)
	}
	sub, err := e.SubscribeStream(liveBenchSQL, core.SubscribeOptions{Parts: 1, Buffer: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()
	if err := e.AppendLog("Bid", g.Bids[:history]); err != nil {
		t.Fatal(err)
	}
	// The subscriber is a Block-policy consumer: drain it between batches
	// or the fan-out parks once the cursor buffer fills.
	drain := func() {
		for {
			select {
			case <-sub.Deltas():
			default:
				return
			}
		}
	}
	drain()

	w, err := wal.Open(t.TempDir(), e.WALSeq()+1, wal.Options{Mode: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := e.AttachWAL(w); err != nil {
		t.Fatal(err)
	}

	before := w.Stats()
	for i := history; i < history+delta; {
		end := i + batch
		if end > history+delta {
			end = history + delta
		}
		if err := e.AppendLog("Bid", g.Bids[i:end]); err != nil {
			t.Fatal(err)
		}
		drain()
		i = end
	}
	after := w.Stats()

	var ckpt bytes.Buffer
	if err := e.CheckpointAll(&ckpt); err != nil {
		t.Fatal(err)
	}
	return bench.RecoveryResult{
		Query:            "WAL steady-state durability (delta vs full snapshot)",
		Mode:             live.Stream.String(),
		Partitions:       1,
		Events:           history,
		DeltaEvents:      delta,
		WalIntervalBytes: after.SyncedBytes - before.SyncedBytes,
		WalIntervalSyncs: after.Syncs - before.Syncs,
		CheckpointBytes:  int64(ckpt.Len()),
	}
}

// TestRecoveryBench records checkpoint size and restore-vs-replay latency
// into the Recovery section of BENCH_live.json / BENCH_live_short.json.
func TestRecoveryBench(t *testing.T) {
	n, runs := 30000, 3
	if testing.Short() || raceEnabled {
		n, runs = 4000, 1
	}
	n = benchEventCount(n)
	short := testing.Short() || raceEnabled
	g := Generate(GeneratorConfig{Seed: 42, NumEvents: n, MaxOutOfOrderness: 2 * types.Second})

	out := "../../BENCH_live.json"
	if short {
		out = "../../BENCH_live_short.json"
	}
	// Merge into the existing record: the subscription rows belong to
	// TestLiveBench, the recovery rows to us.
	rec, err := bench.LoadLive(out)
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil {
		rec = bench.NewLive("nexmark-live", short)
	}
	rec.Recovery = nil

	for _, parts := range []int{1, 4} {
		res := measureRecovery(t, g, parts, runs)
		rec.AddRecovery(res)
		t.Logf("parts=%d: checkpoint %.1f KiB in %s, restore %s, full-history replay %s (%.1fx)",
			res.Partitions, float64(res.CheckpointBytes)/1024,
			time.Duration(res.CheckpointNs), time.Duration(res.RestoreNs),
			time.Duration(res.ReplayNs), float64(res.ReplayNs)/float64(res.RestoreNs))
		// The acceptance bar — restoring operator state beats replaying the
		// whole recorded history — arms at full bench scale only: reduced
		// short/race runs shrink the replay work (and the race detector
		// taxes the allocation-heavy decode path) until the comparison
		// measures instrumentation, not recovery. The committed full-scale
		// BENCH_live.json records the real gap (~2x at 30k events).
		if !short && res.RestoreNs >= res.ReplayNs {
			t.Errorf("parts=%d: restore (%s) is not faster than full-history replay (%s)",
				res.Partitions, time.Duration(res.RestoreNs), time.Duration(res.ReplayNs))
		}
	}
	// Steady-state durability: fix the per-interval delta and grow the
	// resident history 10x. The WAL interval cost (bytes fsynced for the
	// delta) must stay flat while the full-snapshot alternative grows with
	// the history — durability cost proportional to the delta, not to
	// everything ever ingested.
	histBase, deltaN := 30000, 3000
	if short {
		histBase, deltaN = 1500, 500
	}
	histBase = benchEventCount(histBase)
	// NumEvents counts the whole person/auction/bid mix; the Bid changelog
	// gets ~46/50 of it plus watermarks. Overshoot, then require enough.
	total := 10*histBase + deltaN
	gd := Generate(GeneratorConfig{Seed: 43, NumEvents: total + total/4, MaxOutOfOrderness: 2 * types.Second})
	if len(gd.Bids) < total {
		t.Fatalf("generated only %d Bid events, need %d", len(gd.Bids), total)
	}
	var durRows []bench.RecoveryResult
	for _, hist := range []int{histBase, 10 * histBase} {
		res := measureDurability(t, gd, hist, deltaN, 100)
		rec.AddRecovery(res)
		durRows = append(durRows, res)
		t.Logf("history=%d delta=%d: wal interval %.1f KiB in %d fsyncs, full snapshot %.1f KiB",
			res.Events, res.DeltaEvents, float64(res.WalIntervalBytes)/1024,
			res.WalIntervalSyncs, float64(res.CheckpointBytes)/1024)
	}
	// Arms at full scale only, like the restore-vs-replay bar above: the
	// ratios are scale-dependent and the committed BENCH_live.json records
	// the real ones.
	if !short {
		small, big := durRows[0], durRows[1]
		if big.WalIntervalBytes > 2*small.WalIntervalBytes {
			t.Errorf("WAL interval cost grew with history: %d B at %d events vs %d B at %d — not delta-proportional",
				big.WalIntervalBytes, big.Events, small.WalIntervalBytes, small.Events)
		}
		if big.CheckpointBytes < 4*small.CheckpointBytes {
			t.Errorf("snapshot cost unexpectedly flat (%d B at %d events vs %d B at %d) — the baseline comparison is meaningless",
				big.CheckpointBytes, big.Events, small.CheckpointBytes, small.Events)
		}
	}

	if benchWriteEnabled() {
		if err := rec.WriteFile(out); err != nil {
			t.Fatal(err)
		}
	} else {
		t.Logf("not refreshing %s (set NEXMARK_BENCH_WRITE=1 / use make bench-*)", out)
	}
}
