// Package nexmark implements the NEXMark streaming benchmark substrate the
// paper draws its motivating example from: the Person/Auction/Bid data
// model, a deterministic out-of-order event generator with heuristic
// watermarks, the benchmark queries expressed in the engine's SQL dialect,
// and the exact example dataset of Section 4 of the paper.
package nexmark

import (
	"repro/internal/tvr"
	"repro/internal/types"
)

// BidSchema is the schema of the paper's example Bid stream: an event-time
// bid timestamp, an integer price, and an item identifier.
func BidSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "bidtime", Kind: types.KindTimestamp, EventTime: true},
		types.Column{Name: "price", Kind: types.KindInt64},
		types.Column{Name: "item", Kind: types.KindString},
	)
}

// BidRow builds one Bid row.
func BidRow(bidtime types.Time, price int64, item string) types.Row {
	return types.Row{
		types.NewTimestamp(bidtime),
		types.NewInt(price),
		types.NewString(item),
	}
}

// PaperBidLog is the exact example dataset from Section 4 of the paper:
//
//	8:07 WM -> 8:05
//	8:08 INSERT (8:07, $2, A)
//	8:12 INSERT (8:11, $3, B)
//	8:13 INSERT (8:05, $4, C)
//	8:14 WM -> 8:08
//	8:15 INSERT (8:09, $5, D)
//	8:16 WM -> 8:12
//	8:17 INSERT (8:13, $1, E)
//	8:18 INSERT (8:17, $6, F)
//	8:21 WM -> 8:20
//
// The left column is processing time; bids arrive out of order in event
// time, and the watermark estimates input completeness.
func PaperBidLog() tvr.Changelog {
	ct := types.ClockTime
	return tvr.Changelog{
		tvr.WatermarkEvent(ct(8, 7), ct(8, 5)),
		tvr.InsertEvent(ct(8, 8), BidRow(ct(8, 7), 2, "A")),
		tvr.InsertEvent(ct(8, 12), BidRow(ct(8, 11), 3, "B")),
		tvr.InsertEvent(ct(8, 13), BidRow(ct(8, 5), 4, "C")),
		tvr.WatermarkEvent(ct(8, 14), ct(8, 8)),
		tvr.InsertEvent(ct(8, 15), BidRow(ct(8, 9), 5, "D")),
		tvr.WatermarkEvent(ct(8, 16), ct(8, 12)),
		tvr.InsertEvent(ct(8, 17), BidRow(ct(8, 13), 1, "E")),
		tvr.InsertEvent(ct(8, 18), BidRow(ct(8, 17), 6, "F")),
		tvr.WatermarkEvent(ct(8, 21), ct(8, 20)),
	}
}

// Query7SQL is NEXMark Query 7 ("the highest bid in the most recent ten
// minutes") written with the paper's proposed extensions — Listing 2.
const Query7SQL = `
SELECT
  MaxBid.wstart wstart, MaxBid.wend wend,
  Bid.bidtime bidtime, Bid.price price, Bid.item item
FROM
  Bid,
  (SELECT
     MAX(TumbleBid.price) maxPrice,
     TumbleBid.wstart wstart,
     TumbleBid.wend wend
   FROM
     Tumble(
       data => TABLE(Bid),
       timecol => DESCRIPTOR(bidtime),
       dur => INTERVAL '10' MINUTE) TumbleBid
   GROUP BY
     TumbleBid.wend, TumbleBid.wstart) MaxBid
WHERE
  Bid.price = MaxBid.maxPrice AND
  Bid.bidtime >= MaxBid.wend - INTERVAL '10' MINUTE AND
  Bid.bidtime < MaxBid.wend`
