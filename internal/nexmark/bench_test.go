package nexmark

// The NEXMark benchmark harness: runs the paper's queries at configurable
// scale on both the serial and the key-partitioned parallel executor,
// asserts the two produce byte-identical results, and emits a
// BENCH_nexmark.json perf record (serial vs. partitioned throughput) at the
// repository root to seed the repo's performance trajectory.

import (
	"os"
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/types"
)

// benchParts is the partition count the acceptance speedup is defined at.
const benchParts = 4

// stableRuns widens the sample count for queries whose whole measurement
// would otherwise fit inside one scheduler hiccup: aim for ~300ms of total
// measuring per side, capped at 100 runs.
func stableRuns(runs int, medianNs int64) int {
	const targetNs = 300e6
	if medianNs <= 0 || int64(runs)*medianNs >= targetNs {
		return runs
	}
	more := int(targetNs/medianNs) + 1
	if more > 100 {
		more = 100
	}
	if more < runs {
		return runs
	}
	return more
}

// aggBenchSQL is the harness's dedicated aggregation benchmark: a windowed
// per-auction rollup that hash-partitions on the auction key and carries
// enough accumulator work (including an order-statistics MIN/MAX multiset)
// to expose the executor's per-event cost.
const aggBenchSQL = `
SELECT auction, wstart, wend,
       COUNT(*) bids, SUM(price) volume, AVG(price) avgPrice,
       MIN(price) minPrice, MAX(price) maxPrice
FROM Tumble(
  data => TABLE(Bid),
  timecol => DESCRIPTOR(dateTime),
  dur => INTERVAL '10' SECONDS)
GROUP BY auction, wstart, wend`

func benchEngine(t testing.TB, g *Generated, q Query, opts ...core.Option) *core.Engine {
	t.Helper()
	if q.NeedsUnboundedGroupBy {
		opts = append(opts, core.WithUnboundedGroupBy())
	}
	e, err := NewEngine(g, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// forceParallel disables the small-input cost gate so equivalence tests
// exercise the partitioned path at test scale.
var forceParallel = core.WithSmallInputGate(0)

// TestSerialParallelEquivalence asserts that, for every NEXMark query plus
// the aggregation benchmark, partitioned execution produces byte-identical
// results to serial execution — both the stream rendering over the full
// input and the table rendering at a mid-run processing-time horizon.
// Non-partitionable queries exercise the serial fallback path, which is
// identical by construction; Stats.Partitions records which path ran.
func TestSerialParallelEquivalence(t *testing.T) {
	n := 4000
	if testing.Short() {
		n = 1500
	}
	g := Generate(GeneratorConfig{Seed: 11, NumEvents: n, MaxOutOfOrderness: 2 * types.Second})
	mid := types.Time(0).Add(types.Duration(n/2) * 100 * types.Millisecond)

	queries := append(Queries(), Query{ID: -1, Name: "Windowed aggregation (bench)", SQL: aggBenchSQL})
	for _, q := range queries {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			e := benchEngine(t, g, q, forceParallel)

			serialStream, err := e.QueryStream(q.SQL)
			if err != nil {
				t.Fatalf("serial stream: %v", err)
			}
			parallelStream, err := e.QueryStreamParallel(q.SQL, benchParts)
			if err != nil {
				t.Fatalf("parallel stream: %v", err)
			}
			if s, p := serialStream.Format(), parallelStream.Format(); s != p {
				t.Fatalf("stream renderings differ:\nserial:\n%s\nparallel:\n%s", s, p)
			}

			serialTable, err := e.QueryTable(q.SQL, mid)
			if err != nil {
				t.Fatalf("serial table: %v", err)
			}
			parallelTable, err := e.QueryTableParallel(q.SQL, mid, benchParts)
			if err != nil {
				t.Fatalf("parallel table: %v", err)
			}
			if s, p := serialTable.Format(), parallelTable.Format(); s != p {
				t.Fatalf("table renderings differ:\nserial:\n%s\nparallel:\n%s", s, p)
			}

			part, err := e.ExplainPartitioning(q.SQL)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("partitioning: %s (ran on %d chains)", part, parallelStream.Stats.Partitions)
		})
	}
}

// TestPartitioningCoverage pins down how every NEXMark query parallelizes:
// the stateless and equi-keyed queries run single-stage (hash or
// round-robin), and the re-keyed/keyless aggregations (Q4, Q5, Q6, Q7) run
// two-stage — a per-partition partial aggregate feeding a final merge in the
// serial tail. Nothing falls back to serial anymore.
func TestPartitioningCoverage(t *testing.T) {
	g := Generate(GeneratorConfig{Seed: 3, NumEvents: 300, MaxOutOfOrderness: types.Second})
	wantTwoStage := map[int]bool{4: true, 5: true, 6: true, 7: true}
	queries := append(Queries(), Query{ID: -1, Name: "bench aggregation", SQL: aggBenchSQL})
	for _, q := range queries {
		e := benchEngine(t, g, q, forceParallel)
		res, err := e.QueryStreamParallel(q.SQL, benchParts)
		if err != nil {
			t.Errorf("Q%d: %v", q.ID, err)
			continue
		}
		if res.Stats.Partitions != benchParts {
			t.Errorf("Q%d: ran with Partitions=%d, want %d", q.ID, res.Stats.Partitions, benchParts)
		}
		if res.Stats.TwoStage != wantTwoStage[q.ID] {
			t.Errorf("Q%d: TwoStage=%v, want %v (path %s)", q.ID, res.Stats.TwoStage, wantTwoStage[q.ID], res.Stats.Path)
		}
	}
}

// TestSmallInputGate: with the default cost gate, a parallel query over an
// input too small to amortize the fan-out transparently runs on the serial
// pipeline, and Stats records the chosen path.
func TestSmallInputGate(t *testing.T) {
	g := Generate(GeneratorConfig{Seed: 3, NumEvents: 300, MaxOutOfOrderness: types.Second})
	q, err := QueryByID(3)
	if err != nil {
		t.Fatal(err)
	}
	e := benchEngine(t, g, q)
	res, err := e.QueryStreamParallel(q.SQL, benchParts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Partitions != 1 || res.Stats.Path != "serial-small-input" {
		t.Errorf("gate did not engage: Partitions=%d Path=%q", res.Stats.Partitions, res.Stats.Path)
	}
	// The routing itself is still derivable — only execution was gated.
	part, err := e.ExplainPartitioning(q.SQL)
	if err != nil {
		t.Fatal(err)
	}
	if part == "" || part[0] == 's' {
		t.Errorf("ExplainPartitioning = %q, want a hash routing", part)
	}
}

// TestNexmarkBench is the perf harness: it measures serial vs. partitioned
// wall-clock for a representative query mix, asserts result equivalence at
// benchmark scale, and writes BENCH_nexmark.json at the repository root.
// The >=1.5x speedup acceptance bar for the aggregation query applies where
// 4-way parallelism physically exists (GOMAXPROCS >= benchParts); on smaller
// machines the record still captures both throughputs.
func TestNexmarkBench(t *testing.T) {
	events, runs := 60000, 3
	if testing.Short() || raceEnabled {
		// Keep the Bid stream (46/50 of the mix) above the small-input
		// gate so the partitioned path is still what gets measured; the
		// join query's Auction+Person sources stay below it, exercising
		// the gate's serial fallback exactly as at full scale.
		events, runs = 12000, 1
	}
	events = benchEventCount(events)
	g := Generate(GeneratorConfig{Seed: 7, NumEvents: events, MaxOutOfOrderness: 2 * types.Second})
	rec := bench.New("nexmark", testing.Short() || raceEnabled)

	mix := []Query{
		{ID: 1, Name: "Currency conversion (stateless)", SQL: q1},
		{ID: 3, Name: "Local item suggestion (equi join)", SQL: q3},
		{ID: 4, Name: "Average price per category (two-stage)", SQL: q4, NeedsUnboundedGroupBy: true},
		{ID: 5, Name: "Hot items (two-stage)", SQL: q5},
		{ID: 6, Name: "Average selling price by seller (two-stage)", SQL: q6},
		{ID: -1, Name: "Windowed aggregation", SQL: aggBenchSQL},
	}
	var aggResult *bench.QueryResult
	for _, q := range mix {
		e := benchEngine(t, g, q)
		part, err := e.ExplainPartitioning(q.SQL)
		if err != nil {
			t.Fatal(err)
		}

		var serialOut, parallelOut string
		var outEvents, usedParts int
		serialFn := func() error {
			res, err := e.QueryStream(q.SQL)
			if err != nil {
				return err
			}
			serialOut = res.Format()
			outEvents = res.Stats.OutputEvents
			return nil
		}
		parallelFn := func() error {
			res, err := e.QueryStreamParallel(q.SQL, benchParts)
			if err != nil {
				return err
			}
			parallelOut = res.Format()
			usedParts = res.Stats.Partitions
			return nil
		}
		// One warm-up run estimates the query's cost; cheap queries (the
		// highly selective join finishes in a few ms) then get enough
		// runs to spend ~300ms per side, since scheduler jitter swamps a
		// 3-run median at that scale. The serial and partitioned timings
		// interleave run by run so environmental drift cannot bias the
		// reported speedup toward whichever side ran last.
		est, err := bench.MedianNs(1, serialFn)
		if err != nil {
			t.Fatalf("%s warm-up: %v", q.Name, err)
		}
		qRuns := stableRuns(runs, est)
		serialNs, parallelNs, err := bench.MedianPairNs(qRuns, serialFn, parallelFn)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		if serialOut != parallelOut {
			t.Fatalf("%s: serial and partitioned outputs differ at benchmark scale", q.Name)
		}

		qr := bench.QueryResult{
			ID: q.ID, Name: q.Name, Partitioning: part,
			Events: events, OutputEvents: outEvents, Partitions: usedParts,
			SerialNs: serialNs, ParallelNs: parallelNs,
		}
		rec.Add(qr)
		added := rec.Queries[len(rec.Queries)-1]
		if q.ID == -1 {
			aggResult = &added
		}
		t.Logf("%-34s %s  serial %.0f ev/s, partitioned %.0f ev/s, speedup %.2fx",
			q.Name, part, added.SerialEventsPerSec, added.ParallelEventsPerSec, added.Speedup)
	}

	// Reduced-scale runs (short mode, race builds) write their own record:
	// their numbers are not comparable to the committed full-scale one, and
	// keeping the files separate is what lets `make bench-diff` and CI
	// compare like for like (short vs. committed short) without `make
	// verify` clobbering the full-scale baseline.
	out := "../../BENCH_nexmark.json"
	if rec.ShortMode {
		out = "../../BENCH_nexmark_short.json"
	}
	if benchWriteEnabled() {
		if err := rec.WriteFile(out); err != nil {
			t.Fatal(err)
		}
	} else {
		t.Logf("not refreshing %s (set NEXMARK_BENCH_WRITE=1 / use make bench-*)", out)
	}

	if aggResult == nil || aggResult.Partitions != benchParts {
		t.Fatalf("aggregation benchmark did not run partitioned: %+v", aggResult)
	}
	// The >=1.5x bar is a wall-clock assertion: it only arms under `make
	// bench-full` (NEXMARK_BENCH_STRICT=1) on machines with real 4-way
	// parallelism, never in the regular or race-instrumented test suite
	// (race instrumentation penalizes the goroutine-crossing path and
	// would make the gate flaky).
	strict := os.Getenv("NEXMARK_BENCH_STRICT") == "1"
	if strict && !testing.Short() && runtime.GOMAXPROCS(0) >= benchParts {
		if aggResult.Speedup < 1.5 {
			t.Errorf("aggregation speedup %.2fx < 1.5x at %d partitions (GOMAXPROCS=%d)",
				aggResult.Speedup, benchParts, runtime.GOMAXPROCS(0))
		}
	} else {
		t.Logf("speedup bar skipped: strict=%v short=%v GOMAXPROCS=%d (need NEXMARK_BENCH_STRICT=1 and %d cores)",
			strict, testing.Short(), runtime.GOMAXPROCS(0), benchParts)
	}
}
