package nexmark

// The NEXMark benchmark harness: runs the paper's queries at configurable
// scale on both the serial and the key-partitioned parallel executor,
// asserts the two produce byte-identical results, and emits a
// BENCH_nexmark.json perf record (serial vs. partitioned throughput) at the
// repository root to seed the repo's performance trajectory.

import (
	"os"
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/types"
)

// benchParts is the partition count the acceptance speedup is defined at.
const benchParts = 4

// aggBenchSQL is the harness's dedicated aggregation benchmark: a windowed
// per-auction rollup that hash-partitions on the auction key and carries
// enough accumulator work (including an order-statistics MIN/MAX multiset)
// to expose the executor's per-event cost.
const aggBenchSQL = `
SELECT auction, wstart, wend,
       COUNT(*) bids, SUM(price) volume, AVG(price) avgPrice,
       MIN(price) minPrice, MAX(price) maxPrice
FROM Tumble(
  data => TABLE(Bid),
  timecol => DESCRIPTOR(dateTime),
  dur => INTERVAL '10' SECONDS)
GROUP BY auction, wstart, wend`

func benchEngine(t testing.TB, g *Generated, q Query) *core.Engine {
	t.Helper()
	var opts []core.Option
	if q.NeedsUnboundedGroupBy {
		opts = append(opts, core.WithUnboundedGroupBy())
	}
	e, err := NewEngine(g, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestSerialParallelEquivalence asserts that, for every NEXMark query plus
// the aggregation benchmark, partitioned execution produces byte-identical
// results to serial execution — both the stream rendering over the full
// input and the table rendering at a mid-run processing-time horizon.
// Non-partitionable queries exercise the serial fallback path, which is
// identical by construction; Stats.Partitions records which path ran.
func TestSerialParallelEquivalence(t *testing.T) {
	n := 4000
	if testing.Short() {
		n = 1500
	}
	g := Generate(GeneratorConfig{Seed: 11, NumEvents: n, MaxOutOfOrderness: 2 * types.Second})
	mid := types.Time(0).Add(types.Duration(n/2) * 100 * types.Millisecond)

	queries := append(Queries(), Query{ID: -1, Name: "Windowed aggregation (bench)", SQL: aggBenchSQL})
	for _, q := range queries {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			e := benchEngine(t, g, q)

			serialStream, err := e.QueryStream(q.SQL)
			if err != nil {
				t.Fatalf("serial stream: %v", err)
			}
			parallelStream, err := e.QueryStreamParallel(q.SQL, benchParts)
			if err != nil {
				t.Fatalf("parallel stream: %v", err)
			}
			if s, p := serialStream.Format(), parallelStream.Format(); s != p {
				t.Fatalf("stream renderings differ:\nserial:\n%s\nparallel:\n%s", s, p)
			}

			serialTable, err := e.QueryTable(q.SQL, mid)
			if err != nil {
				t.Fatalf("serial table: %v", err)
			}
			parallelTable, err := e.QueryTableParallel(q.SQL, mid, benchParts)
			if err != nil {
				t.Fatalf("parallel table: %v", err)
			}
			if s, p := serialTable.Format(), parallelTable.Format(); s != p {
				t.Fatalf("table renderings differ:\nserial:\n%s\nparallel:\n%s", s, p)
			}

			part, err := e.ExplainPartitioning(q.SQL)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("partitioning: %s (ran on %d chains)", part, parallelStream.Stats.Partitions)
		})
	}
}

// TestPartitioningCoverage pins down which NEXMark queries admit a hash
// partitioning: the stateless and equi-keyed queries parallelize, while the
// multi-attribute window joins and re-keyed aggregations fall back to serial
// (they re-group by columns the partition key does not determine).
func TestPartitioningCoverage(t *testing.T) {
	g := Generate(GeneratorConfig{Seed: 3, NumEvents: 300, MaxOutOfOrderness: types.Second})
	wantParallel := map[int]bool{0: true, 1: true, 2: true, 3: true, 8: true, -1: true}
	queries := append(Queries(), Query{ID: -1, Name: "bench aggregation", SQL: aggBenchSQL})
	for _, q := range queries {
		e := benchEngine(t, g, q)
		res, err := e.QueryStreamParallel(q.SQL, benchParts)
		if err != nil {
			t.Errorf("Q%d: %v", q.ID, err)
			continue
		}
		gotParallel := res.Stats.Partitions == benchParts
		if gotParallel != wantParallel[q.ID] {
			t.Errorf("Q%d: ran with Partitions=%d, want parallel=%v", q.ID, res.Stats.Partitions, wantParallel[q.ID])
		}
	}
}

// TestNexmarkBench is the perf harness: it measures serial vs. partitioned
// wall-clock for a representative query mix, asserts result equivalence at
// benchmark scale, and writes BENCH_nexmark.json at the repository root.
// The >=1.5x speedup acceptance bar for the aggregation query applies where
// 4-way parallelism physically exists (GOMAXPROCS >= benchParts); on smaller
// machines the record still captures both throughputs.
func TestNexmarkBench(t *testing.T) {
	events, runs := 60000, 3
	if testing.Short() {
		events, runs = 8000, 1
	}
	g := Generate(GeneratorConfig{Seed: 7, NumEvents: events, MaxOutOfOrderness: 2 * types.Second})
	rec := bench.New("nexmark", testing.Short())

	mix := []Query{
		{ID: 1, Name: "Currency conversion (stateless)", SQL: q1},
		{ID: 3, Name: "Local item suggestion (equi join)", SQL: q3},
		{ID: -1, Name: "Windowed aggregation", SQL: aggBenchSQL},
	}
	var aggResult *bench.QueryResult
	for _, q := range mix {
		e := benchEngine(t, g, q)
		part, err := e.ExplainPartitioning(q.SQL)
		if err != nil {
			t.Fatal(err)
		}

		var serialOut, parallelOut string
		var outEvents, usedParts int
		serialNs, err := bench.MedianNs(runs, func() error {
			res, err := e.QueryStream(q.SQL)
			if err != nil {
				return err
			}
			serialOut = res.Format()
			outEvents = res.Stats.OutputEvents
			return nil
		})
		if err != nil {
			t.Fatalf("%s serial: %v", q.Name, err)
		}
		parallelNs, err := bench.MedianNs(runs, func() error {
			res, err := e.QueryStreamParallel(q.SQL, benchParts)
			if err != nil {
				return err
			}
			parallelOut = res.Format()
			usedParts = res.Stats.Partitions
			return nil
		})
		if err != nil {
			t.Fatalf("%s parallel: %v", q.Name, err)
		}
		if serialOut != parallelOut {
			t.Fatalf("%s: serial and partitioned outputs differ at benchmark scale", q.Name)
		}

		qr := bench.QueryResult{
			ID: q.ID, Name: q.Name, Partitioning: part,
			Events: events, OutputEvents: outEvents, Partitions: usedParts,
			SerialNs: serialNs, ParallelNs: parallelNs,
		}
		rec.Add(qr)
		added := rec.Queries[len(rec.Queries)-1]
		if q.ID == -1 {
			aggResult = &added
		}
		t.Logf("%-34s %s  serial %.0f ev/s, partitioned %.0f ev/s, speedup %.2fx",
			q.Name, part, added.SerialEventsPerSec, added.ParallelEventsPerSec, added.Speedup)
	}

	if err := rec.WriteFile("../../BENCH_nexmark.json"); err != nil {
		t.Fatal(err)
	}

	if aggResult == nil || aggResult.Partitions != benchParts {
		t.Fatalf("aggregation benchmark did not run partitioned: %+v", aggResult)
	}
	// The >=1.5x bar is a wall-clock assertion: it only arms under `make
	// bench-full` (NEXMARK_BENCH_STRICT=1) on machines with real 4-way
	// parallelism, never in the regular or race-instrumented test suite
	// (race instrumentation penalizes the goroutine-crossing path and
	// would make the gate flaky).
	strict := os.Getenv("NEXMARK_BENCH_STRICT") == "1"
	if strict && !testing.Short() && runtime.GOMAXPROCS(0) >= benchParts {
		if aggResult.Speedup < 1.5 {
			t.Errorf("aggregation speedup %.2fx < 1.5x at %d partitions (GOMAXPROCS=%d)",
				aggResult.Speedup, benchParts, runtime.GOMAXPROCS(0))
		}
	} else {
		t.Logf("speedup bar skipped: strict=%v short=%v GOMAXPROCS=%d (need NEXMARK_BENCH_STRICT=1 and %d cores)",
			strict, testing.Short(), runtime.GOMAXPROCS(0), benchParts)
	}
}
