// Package bench is a small benchmark reporter: it collects per-query timing
// records (serial vs. key-partitioned execution) and writes them as a JSON
// perf record, seeding the repo's performance trajectory. The record captures
// the execution environment (GOMAXPROCS, CPU count) because parallel speedup
// is only meaningful relative to the hardware that produced it.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"
)

// QueryResult is one query's serial-vs-partitioned measurement.
type QueryResult struct {
	// ID is the NEXMark query number, or -1 for ad-hoc benchmark queries.
	ID int `json:"id"`
	// Name is the query's short description.
	Name string `json:"name"`
	// Partitioning describes the routing scheme ("hash(Bid:[0])",
	// "round-robin", or "serial (<reason>)" for fallback queries).
	Partitioning string `json:"partitioning"`
	// Events is the number of input data events generated.
	Events int `json:"events"`
	// OutputEvents is the size of the output changelog.
	OutputEvents int `json:"output_events"`
	// Partitions is the parallelism the partitioned run actually used
	// (1 means it fell back to the serial pipeline).
	Partitions int `json:"partitions"`
	// SerialNs / ParallelNs are wall-clock medians in nanoseconds.
	SerialNs   int64 `json:"serial_ns"`
	ParallelNs int64 `json:"parallel_ns"`
	// Throughput in input events per second, derived from the medians.
	SerialEventsPerSec   float64 `json:"serial_events_per_sec"`
	ParallelEventsPerSec float64 `json:"parallel_events_per_sec"`
	// Speedup is SerialNs / ParallelNs.
	Speedup float64 `json:"speedup"`
}

// Record is a full benchmark run.
type Record struct {
	Benchmark  string        `json:"benchmark"`
	Timestamp  string        `json:"timestamp"`
	GoVersion  string        `json:"go_version"`
	GoMaxProcs int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	ShortMode  bool          `json:"short_mode"`
	Queries    []QueryResult `json:"queries"`
}

// New creates a record stamped with the current environment.
func New(name string, short bool) *Record {
	return &Record{
		Benchmark:  name,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		ShortMode:  short,
	}
}

// Add derives the throughput/speedup fields and appends the result.
func (r *Record) Add(q QueryResult) {
	if q.SerialNs > 0 {
		q.SerialEventsPerSec = float64(q.Events) / (float64(q.SerialNs) / 1e9)
	}
	if q.ParallelNs > 0 {
		q.ParallelEventsPerSec = float64(q.Events) / (float64(q.ParallelNs) / 1e9)
		q.Speedup = float64(q.SerialNs) / float64(q.ParallelNs)
	}
	r.Queries = append(r.Queries, q)
}

// WriteFile writes the record as indented JSON.
func (r *Record) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: write %s: %w", path, err)
	}
	return nil
}

// LiveResult is one standing-query subscription measurement: steady-state
// ingest throughput and the distribution of per-delta delivery latency
// (ingest call start to delta receipt).
type LiveResult struct {
	// Query is the standing query's short description.
	Query string `json:"query"`
	// Mode is the delta rendering ("stream" or "table").
	Mode string `json:"mode"`
	// Partitions is the standing pipeline's parallelism (1 = serial).
	Partitions int `json:"partitions"`
	// Subscribers is the number of concurrent subscriptions to the query.
	Subscribers int `json:"subscribers"`
	// Shared reports whether the subscriptions shared one resident
	// pipeline (plan cache on) or each ran a dedicated pipeline.
	Shared bool `json:"shared"`
	// Shards is the fan-out configuration: 0 means the serial fan-out
	// (deliveries run on the ingesting goroutine), N > 0 means N shard
	// workers applying commits asynchronously in commit order.
	Shards int `json:"shards,omitempty"`
	// Queries is the number of distinct standing queries fed by the same
	// ingest in a multi-query scaling scenario (0/1 = single query).
	Queries int `json:"queries,omitempty"`
	// Procs is the GOMAXPROCS the scenario pinned for the measurement
	// (0 = the process default, recorded in the record header).
	Procs int `json:"procs,omitempty"`
	// Events is the number of source events ingested while subscribed.
	Events int `json:"events"`
	// Deltas / Rows count deliveries and output rows received.
	Deltas int64 `json:"deltas"`
	Rows   int64 `json:"rows"`
	// IngestNs is the total wall-clock time spent ingesting.
	IngestNs int64 `json:"ingest_ns"`
	// EventsPerSec is the steady-state ingest throughput with the
	// subscription attached.
	EventsPerSec float64 `json:"events_per_sec"`
	// Latency percentiles over per-delta delivery latencies.
	LatencyP50Ns int64 `json:"latency_p50_ns"`
	LatencyP95Ns int64 `json:"latency_p95_ns"`
	LatencyP99Ns int64 `json:"latency_p99_ns"`
	LatencyMaxNs int64 `json:"latency_max_ns"`
}

// RecoveryResult is one checkpoint/restore measurement: how big the durable
// snapshot of an engine (catalog + resident standing-query pipelines) is,
// and how restoring from it compares with rebuilding the same standing query
// by full-history replay.
type RecoveryResult struct {
	// Query is the standing query measured.
	Query string `json:"query"`
	// Mode is the delta rendering ("stream" or "table").
	Mode string `json:"mode"`
	// Partitions is the standing pipeline's parallelism (1 = serial).
	Partitions int `json:"partitions"`
	// Events is the number of source events ingested before the checkpoint.
	Events int `json:"events"`
	// DeltaEvents, when non-zero, marks this row as a steady-state
	// durability measurement: with Events of history already resident, the
	// next DeltaEvents were committed through the write-ahead log and the
	// WalInterval* counters record what staying durable for just that
	// interval cost — versus CheckpointBytes, the price of re-snapshotting
	// the whole engine at this history size.
	DeltaEvents int `json:"delta_events,omitempty"`
	// WalIntervalBytes / WalIntervalSyncs are the bytes fsynced and fsync
	// calls the WAL spent committing the DeltaEvents interval.
	WalIntervalBytes int64 `json:"wal_interval_bytes,omitempty"`
	WalIntervalSyncs int64 `json:"wal_interval_syncs,omitempty"`
	// CheckpointBytes is the encoded size of the engine checkpoint.
	CheckpointBytes int64 `json:"checkpoint_bytes"`
	// CheckpointNs is the median wall-clock time to take the checkpoint.
	CheckpointNs int64 `json:"checkpoint_ns"`
	// RestoreNs is the median wall-clock time to restore a fresh engine
	// (catalog + resident pipeline) from the checkpoint bytes.
	RestoreNs int64 `json:"restore_ns"`
	// ReplayNs is the median wall-clock time to rebuild the same standing
	// query the pre-checkpoint way: compile and replay the full recorded
	// history through a new pipeline.
	ReplayNs int64 `json:"replay_ns"`
	// Speedup is ReplayNs / RestoreNs — how much faster recovery is than
	// the replay it replaces.
	Speedup float64 `json:"speedup"`
}

// LiveRecord is a full standing-query benchmark run.
type LiveRecord struct {
	Benchmark     string       `json:"benchmark"`
	Timestamp     string       `json:"timestamp"`
	GoVersion     string       `json:"go_version"`
	GoMaxProcs    int          `json:"gomaxprocs"`
	NumCPU        int          `json:"num_cpu"`
	ShortMode     bool         `json:"short_mode"`
	Subscriptions []LiveResult `json:"subscriptions"`
	// Recovery holds checkpoint/restore measurements (populated by
	// `make bench-recovery`; preserved by the subscription benchmark when
	// it rewrites the file, and vice versa).
	Recovery []RecoveryResult `json:"recovery,omitempty"`
}

// LoadLive reads a live record from disk. A missing file returns (nil, nil)
// so benchmarks that merge into an existing record can start fresh.
func LoadLive(path string) (*LiveRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var rec LiveRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("bench: read %s: %w", path, err)
	}
	return &rec, nil
}

// AddRecovery appends one recovery measurement, deriving the speedup field.
func (r *LiveRecord) AddRecovery(q RecoveryResult) {
	if q.RestoreNs > 0 {
		q.Speedup = float64(q.ReplayNs) / float64(q.RestoreNs)
	}
	r.Recovery = append(r.Recovery, q)
}

// NewLive creates a live record stamped with the current environment.
func NewLive(name string, short bool) *LiveRecord {
	return &LiveRecord{
		Benchmark:  name,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		ShortMode:  short,
	}
}

// Add appends one subscription measurement, deriving the throughput field.
func (r *LiveRecord) Add(q LiveResult) {
	if q.IngestNs > 0 {
		q.EventsPerSec = float64(q.Events) / (float64(q.IngestNs) / 1e9)
	}
	r.Subscriptions = append(r.Subscriptions, q)
}

// WriteFile writes the live record as indented JSON.
func (r *LiveRecord) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: write %s: %w", path, err)
	}
	return nil
}

// PercentileNs returns the p-th percentile (0 < p <= 1) of the samples using
// the nearest-rank method. The input is not modified.
func PercentileNs(samples []int64, p float64) int64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]int64, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(p*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// MedianNs times fn over runs executions and returns the median wall-clock
// nanoseconds. The median (rather than the minimum or mean) keeps one-off
// scheduler hiccups from dominating small benchmark runs.
func MedianNs(runs int, fn func() error) (int64, error) {
	if runs < 1 {
		runs = 1
	}
	times := make([]int64, 0, runs)
	for i := 0; i < runs; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		times = append(times, time.Since(start).Nanoseconds())
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2], nil
}

// MedianPairNs interleaves two functions run by run (A, B, A, B, ...) and
// returns each one's median wall-clock nanoseconds. Interleaving is what
// makes an A-vs-B comparison honest on a noisy machine: slow environmental
// drift (duty-cycled CPU, background load, heap growth) hits both sides
// equally instead of biasing whichever was measured second.
func MedianPairNs(runs int, fnA, fnB func() error) (int64, int64, error) {
	if runs < 1 {
		runs = 1
	}
	ta := make([]int64, 0, runs)
	tb := make([]int64, 0, runs)
	for i := 0; i < runs; i++ {
		start := time.Now()
		if err := fnA(); err != nil {
			return 0, 0, err
		}
		ta = append(ta, time.Since(start).Nanoseconds())
		start = time.Now()
		if err := fnB(); err != nil {
			return 0, 0, err
		}
		tb = append(tb, time.Since(start).Nanoseconds())
	}
	sort.Slice(ta, func(i, j int) bool { return ta[i] < ta[j] })
	sort.Slice(tb, func(i, j int) bool { return tb[i] < tb[j] })
	return ta[len(ta)/2], tb[len(tb)/2], nil
}
