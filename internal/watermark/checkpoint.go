package watermark

import (
	"fmt"

	"repro/internal/checkpoint"
)

// Checkpoint encoding for the watermark trackers: a restored pipeline's
// per-port merge state must resume exactly where the old one stopped, or the
// first post-restore watermark would re-advance (or fail to advance) the
// merged output differently than the uninterrupted run.

// SaveState writes the tracker's current watermark.
func (t *Tracker) SaveState(enc *checkpoint.Encoder) {
	enc.Section("watermark.Tracker")
	enc.Bool(t.set)
	enc.Time(t.current)
}

// LoadState restores the tracker.
func (t *Tracker) LoadState(dec *checkpoint.Decoder) error {
	if err := dec.Expect("watermark.Tracker"); err != nil {
		return err
	}
	t.set = dec.Bool()
	t.current = dec.Time()
	return dec.Err()
}

// SaveState writes the merger's per-input watermarks and merged output.
func (m *MinMerger) SaveState(enc *checkpoint.Encoder) {
	enc.Section("watermark.MinMerger")
	enc.Uvarint(uint64(len(m.inputs)))
	for _, wm := range m.inputs {
		enc.Time(wm)
	}
	m.out.SaveState(enc)
}

// LoadState restores the merger. The receiver must have been created with
// the same input count the checkpoint was taken with.
func (m *MinMerger) LoadState(dec *checkpoint.Decoder) error {
	if err := dec.Expect("watermark.MinMerger"); err != nil {
		return err
	}
	n := int(dec.Uvarint())
	if err := dec.Err(); err != nil {
		return err
	}
	if n != len(m.inputs) {
		return fmt.Errorf("watermark: checkpoint has %d merge inputs, pipeline expects %d", n, len(m.inputs))
	}
	for i := range m.inputs {
		m.inputs[i] = dec.Time()
	}
	return m.out.LoadState(dec)
}
