package watermark

import (
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func TestTrackerMonotonic(t *testing.T) {
	var tr Tracker
	if tr.Current() != types.MinTime {
		t.Fatal("initial watermark should be -inf")
	}
	if !tr.Advance(types.ClockTime(8, 5)) {
		t.Fatal("first advance should succeed")
	}
	if tr.Advance(types.ClockTime(8, 4)) {
		t.Fatal("regression should be ignored")
	}
	if tr.Current() != types.ClockTime(8, 5) {
		t.Fatalf("current = %v", tr.Current())
	}
	if !tr.Advance(types.ClockTime(8, 8)) {
		t.Fatal("forward advance should succeed")
	}
}

func TestQuickTrackerNeverRegresses(t *testing.T) {
	f := func(vals []int64) bool {
		var tr Tracker
		prev := tr.Current()
		for _, v := range vals {
			tr.Advance(types.Time(v % 1000000))
			if tr.Current() < prev {
				return false
			}
			prev = tr.Current()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMergerHoldsBack(t *testing.T) {
	m := NewMinMerger(2)
	// Only one input has advanced: output stays at MinTime.
	if wm, adv := m.Advance(0, types.ClockTime(9, 0)); adv || wm != types.MinTime {
		t.Fatalf("premature advance: %v %v", wm, adv)
	}
	// Second input advances to 8:30: output = min = 8:30.
	wm, adv := m.Advance(1, types.ClockTime(8, 30))
	if !adv || wm != types.ClockTime(8, 30) {
		t.Fatalf("merged = %v adv=%v", wm, adv)
	}
	// Slow input catches up: output follows the new minimum.
	wm, adv = m.Advance(1, types.ClockTime(8, 45))
	if !adv || wm != types.ClockTime(8, 45) {
		t.Fatalf("merged = %v adv=%v", wm, adv)
	}
	// Fast input regresses (ignored) — min unchanged.
	wm, adv = m.Advance(0, types.ClockTime(8, 0))
	if adv || wm != types.ClockTime(8, 45) {
		t.Fatalf("after regression: %v adv=%v", wm, adv)
	}
	if m.Current() != types.ClockTime(8, 45) {
		t.Fatalf("Current = %v", m.Current())
	}
}

func TestQuickMinMergerIsMin(t *testing.T) {
	f := func(a, b []int64) bool {
		m := NewMinMerger(2)
		maxA, maxB := types.MinTime, types.MinTime
		for i := 0; i < len(a) || i < len(b); i++ {
			if i < len(a) {
				v := types.Time(a[i] % 100000)
				m.Advance(0, v)
				if v > maxA {
					maxA = v
				}
			}
			if i < len(b) {
				v := types.Time(b[i] % 100000)
				m.Advance(1, v)
				if v > maxB {
					maxB = v
				}
			}
		}
		want := maxA
		if maxB < want {
			want = maxB
		}
		if want == types.MinTime {
			return m.Current() == types.MinTime
		}
		return m.Current() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoundedOutOfOrderness(t *testing.T) {
	g := NewBoundedOutOfOrderness(2 * types.Minute)
	if g.Current() != types.MinTime {
		t.Fatal("initial should be -inf")
	}
	if wm := g.Observe(types.ClockTime(8, 10)); wm != types.ClockTime(8, 8) {
		t.Fatalf("wm = %v", wm)
	}
	// Late event does not move the watermark backwards.
	if wm := g.Observe(types.ClockTime(8, 5)); wm != types.ClockTime(8, 8) {
		t.Fatalf("wm after late event = %v", wm)
	}
	if wm := g.Observe(types.ClockTime(8, 20)); wm != types.ClockTime(8, 18) {
		t.Fatalf("wm = %v", wm)
	}
}
