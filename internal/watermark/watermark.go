// Package watermark implements watermark tracking and generation.
//
// A watermark is a monotonic function from processing time to event time: if
// a watermark observed at processing time y has event-time value x, all
// records arriving after y are asserted to carry event timestamps greater
// than or equal to x (Section 3.2.2 of the paper). Operators use watermarks
// to reason about input completeness — to close event-time groupings, emit
// watermark-delayed results, and free state.
package watermark

import "repro/internal/types"

// Tracker maintains a single monotonic watermark. The zero Tracker starts at
// types.MinTime (nothing known complete).
type Tracker struct {
	current types.Time
	set     bool
}

// Current returns the present watermark, or types.MinTime if none observed.
func (t *Tracker) Current() types.Time {
	if !t.set {
		return types.MinTime
	}
	return t.current
}

// Advance moves the watermark forward to wm and reports whether it actually
// advanced. Regressions are ignored (watermarks are monotonic by definition),
// so upstream operators may safely re-deliver stale watermarks.
func (t *Tracker) Advance(wm types.Time) bool {
	if !t.set || wm > t.current {
		t.current = wm
		t.set = true
		return true
	}
	return false
}

// MinMerger combines the watermarks of several inputs into the watermark of
// an operator that consumes all of them (e.g. a join): the output watermark
// is the minimum of the inputs, which "holds back" faster inputs so that all
// event-time attributes of the output remain aligned (the multi-attribute
// lesson in Section 5).
type MinMerger struct {
	inputs []types.Time
	out    Tracker
}

// NewMinMerger creates a merger over n inputs, all initially at MinTime.
func NewMinMerger(n int) *MinMerger {
	ins := make([]types.Time, n)
	for i := range ins {
		ins[i] = types.MinTime
	}
	return &MinMerger{inputs: ins}
}

// Advance records a watermark for input i and returns the merged output
// watermark together with whether it advanced.
func (m *MinMerger) Advance(i int, wm types.Time) (types.Time, bool) {
	if wm > m.inputs[i] {
		m.inputs[i] = wm
	}
	min := m.inputs[0]
	for _, w := range m.inputs[1:] {
		if w < min {
			min = w
		}
	}
	if min == types.MinTime {
		return types.MinTime, false
	}
	advanced := m.out.Advance(min)
	return m.out.Current(), advanced
}

// Current returns the merged watermark.
func (m *MinMerger) Current() types.Time { return m.out.Current() }

// BoundedOutOfOrderness is the heuristic watermark generator used by the
// NEXMark source: it trails the maximum observed event timestamp by a fixed
// slack, asserting that events arrive at most `bound` out of order. This is
// the "sufficient slack time" configuration the paper mentions.
type BoundedOutOfOrderness struct {
	bound   types.Duration
	maxSeen types.Time
	seen    bool
}

// NewBoundedOutOfOrderness creates a generator with the given slack.
func NewBoundedOutOfOrderness(bound types.Duration) *BoundedOutOfOrderness {
	return &BoundedOutOfOrderness{bound: bound}
}

// Observe records an event timestamp and returns the current watermark.
func (b *BoundedOutOfOrderness) Observe(et types.Time) types.Time {
	if !b.seen || et > b.maxSeen {
		b.maxSeen = et
		b.seen = true
	}
	return b.Current()
}

// Current returns max(observed) - bound, or MinTime before any observation.
func (b *BoundedOutOfOrderness) Current() types.Time {
	if !b.seen {
		return types.MinTime
	}
	return b.maxSeen.Add(-b.bound)
}
