package vfs

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"strings"
	"sync"
)

// Op names a class of state-changing filesystem operation. FaultFS counts
// these (reads are free: a crash between reads changes nothing on disk),
// and fault rules match on them.
type Op string

const (
	OpCreate   Op = "create"   // OpenFile with O_CREATE, CreateTemp
	OpWrite    Op = "write"    // File.Write
	OpSync     Op = "sync"     // File.Sync
	OpTruncate Op = "truncate" // File.Truncate
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
	OpMkdir    Op = "mkdir"
	OpSyncDir  Op = "syncdir"
)

var (
	// ErrInjected is the base error for scripted faults. Injected errors
	// wrap it, so callers test with errors.Is(err, vfs.ErrInjected).
	ErrInjected = errors.New("vfs: injected fault")
	// ErrNoSpace is an injected ENOSPC.
	ErrNoSpace = fmt.Errorf("%w: no space left on device", ErrInjected)
	// ErrCrashed is returned by every operation attempted after the
	// crash point set by CrashAfter.
	ErrCrashed = errors.New("vfs: crashed (operation after crash point)")
)

// Fault is one scripted failure rule. A rule fires when an operation
// matches Op (empty = any counted op) and Path (substring, empty = any),
// and either the global operation index equals AtOp, or this is the Nth
// matching operation, or neither is set (the rule fires on every match
// until removed — a persistent fault, e.g. "every fsync fails").
type Fault struct {
	Op   Op     // operation class to match; "" matches any
	Path string // substring of the target path; "" matches any
	AtOp int    // fire when the global counted-op index equals this (1-based)
	Nth  int    // fire on the Nth matching operation (1-based)
	Err  error  // error to return; nil means ErrInjected
	// TornBytes: for OpWrite rules, persist only this prefix of the
	// buffer before failing — a torn write. Zero persists nothing.
	TornBytes int

	seen  int
	spent bool
}

// FaultFS wraps an inner FS (normally OS over a test temp dir), counts
// every state-changing operation, and injects scripted faults. It is the
// engine's disk-failure test double: the op counter is the enumeration
// domain for the crash-point soak, and fault rules model ENOSPC, failed
// fsyncs, and torn writes.
type FaultFS struct {
	inner FS

	mu          sync.Mutex
	ops         int
	perOp       map[Op]int
	written     int64
	writeBudget int64 // bytes of Write allowed before ENOSPC; <0 = unlimited
	crashAfter  int   // ops beyond this index fail; <0 = disabled
	crashed     bool
	faults      []*Fault
}

// NewFault returns a FaultFS over inner with no faults scripted.
func NewFault(inner FS) *FaultFS {
	return &FaultFS{
		inner:       inner,
		perOp:       make(map[Op]int),
		writeBudget: -1,
		crashAfter:  -1,
	}
}

// AddFault registers a fault rule.
func (f *FaultFS) AddFault(rule Fault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	r := rule
	f.faults = append(f.faults, &r)
}

// ClearFaults removes all fault rules ("the disk recovered"). The crash
// point and write budget are cleared too; counters are preserved.
func (f *FaultFS) ClearFaults() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults = nil
	f.crashAfter = -1
	f.crashed = false
	f.writeBudget = -1
}

// CrashAfter arranges for the first n counted operations to succeed and
// every operation after them — reads included — to fail with ErrCrashed,
// with no on-disk effect. n=0 fails everything. This freezes the backing
// directory at an arbitrary I/O interleaving so a recovery pass can be
// run against it.
func (f *FaultFS) CrashAfter(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashAfter = n
}

// SetWriteBudget allows k more bytes of Write across all files; a write
// that would exceed the budget persists only the prefix that fits and
// fails with ErrNoSpace. Negative k removes the limit.
func (f *FaultFS) SetWriteBudget(k int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeBudget = k
	f.written = 0
}

// Ops returns the number of counted (state-changing) operations attempted.
func (f *FaultFS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// OpCount returns how many operations of one class were attempted.
func (f *FaultFS) OpCount(op Op) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.perOp[op]
}

// Crashed reports whether the crash point has been passed.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// begin accounts one counted operation and decides its fate: the number
// of bytes to persist (writes only; -1 = all) and the error to return.
func (f *FaultFS) begin(op Op, path string, n int) (persist int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops++
	f.perOp[op]++
	if f.crashed || (f.crashAfter >= 0 && f.ops > f.crashAfter) {
		f.crashed = true
		return 0, ErrCrashed
	}
	for _, r := range f.faults {
		if r.spent {
			continue
		}
		if r.Op != "" && r.Op != op {
			continue
		}
		if r.Path != "" && !strings.Contains(path, r.Path) {
			continue
		}
		switch {
		case r.AtOp > 0:
			if f.ops != r.AtOp {
				continue
			}
			r.spent = true
		case r.Nth > 0:
			r.seen++
			if r.seen != r.Nth {
				continue
			}
			r.spent = true
		}
		ferr := r.Err
		if ferr == nil {
			ferr = ErrInjected
		}
		torn := r.TornBytes
		if torn > n {
			torn = n
		}
		return torn, ferr
	}
	if op == OpWrite && f.writeBudget >= 0 {
		remaining := f.writeBudget - f.written
		if remaining < 0 {
			remaining = 0
		}
		if int64(n) > remaining {
			f.written += remaining
			return int(remaining), ErrNoSpace
		}
	}
	if op == OpWrite {
		f.written += int64(n)
	}
	return -1, nil
}

// blocked is the gate for uncounted (read-only) operations: they pass
// through freely unless the crash point has been reached.
func (f *FaultFS) blocked() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return nil
}

func (f *FaultFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if flag&os.O_CREATE != 0 {
		if _, err := f.begin(OpCreate, name, 0); err != nil {
			return nil, err
		}
	} else if err := f.blocked(); err != nil {
		return nil, err
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

func (f *FaultFS) Open(name string) (File, error) {
	if err := f.blocked(); err != nil {
		return nil, err
	}
	inner, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	if _, err := f.begin(OpCreate, dir+"/"+pattern, 0); err != nil {
		return nil, err
	}
	inner, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if _, err := f.begin(OpRename, newpath, 0); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if _, err := f.begin(OpRemove, name, 0); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) MkdirAll(path string, perm fs.FileMode) error {
	if _, err := f.begin(OpMkdir, path, 0); err != nil {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) {
	if err := f.blocked(); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(name)
}

func (f *FaultFS) Stat(name string) (fs.FileInfo, error) {
	if err := f.blocked(); err != nil {
		return nil, err
	}
	return f.inner.Stat(name)
}

func (f *FaultFS) SyncDir(dir string) error {
	if _, err := f.begin(OpSyncDir, dir, 0); err != nil {
		return err
	}
	return f.inner.SyncDir(dir)
}

// faultFile routes the mutating file operations back through the parent
// FaultFS's fault logic.
type faultFile struct {
	fs    *FaultFS
	inner File
}

func (f *faultFile) Read(p []byte) (int, error) {
	if err := f.fs.blocked(); err != nil {
		return 0, err
	}
	return f.inner.Read(p)
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if err := f.fs.blocked(); err != nil {
		return 0, err
	}
	return f.inner.ReadAt(p, off)
}

func (f *faultFile) Seek(offset int64, whence int) (int64, error) {
	if err := f.fs.blocked(); err != nil {
		return 0, err
	}
	return f.inner.Seek(offset, whence)
}

func (f *faultFile) Write(p []byte) (int, error) {
	persist, err := f.fs.begin(OpWrite, f.inner.Name(), len(p))
	if err != nil {
		n := 0
		if persist > 0 {
			// A torn write: the prefix reaches the file, then the
			// failure hits. The caller sees the error with a short
			// count, exactly like a real partial write.
			n, _ = f.inner.Write(p[:persist])
		}
		return n, err
	}
	return f.inner.Write(p)
}

func (f *faultFile) Sync() error {
	if _, err := f.fs.begin(OpSync, f.inner.Name(), 0); err != nil {
		return err
	}
	return f.inner.Sync()
}

func (f *faultFile) Truncate(size int64) error {
	if _, err := f.fs.begin(OpTruncate, f.inner.Name(), 0); err != nil {
		return err
	}
	return f.inner.Truncate(size)
}

func (f *faultFile) Close() error { return f.inner.Close() }
func (f *faultFile) Name() string { return f.inner.Name() }
