// Package vfs is the filesystem seam the durability layer does its I/O
// through. internal/wal and internal/checkpoint never call the os package
// directly; they go through an FS so that tests can substitute a FaultFS
// (fault.go) that injects scripted disk failures — a failed fsync, ENOSPC
// mid-write, a torn write that persists only a prefix, or a hard crash
// point after which every operation fails — and counts every operation so
// a soak can enumerate crash points exhaustively.
//
// The interface is deliberately small: exactly the operations the WAL and
// checkpoint writers perform. OS is the passthrough implementation and the
// default everywhere, so production behavior and all existing golden files
// are untouched by the seam.
package vfs

import (
	"io"
	"io/fs"
	"os"
)

// File is the subset of *os.File the durability layer uses. Sync and
// Truncate are first-class because the WAL's correctness argument is built
// on which bytes were covered by a successful fsync.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	io.Seeker
	io.ReaderAt
	// Name returns the path the file was opened with.
	Name() string
	// Sync flushes the file's data (and metadata) to stable storage.
	Sync() error
	// Truncate changes the size of the file.
	Truncate(size int64) error
}

// FS is the filesystem operations the durability layer performs. Every
// method mirrors its os package counterpart.
type FS interface {
	// OpenFile is the generalized open call (os.OpenFile).
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Open opens the named file for reading (os.Open).
	Open(name string) (File, error)
	// CreateTemp creates a new temporary file in dir (os.CreateTemp).
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically renames (moves) oldpath to newpath (os.Rename).
	Rename(oldpath, newpath string) error
	// Remove removes the named file (os.Remove).
	Remove(name string) error
	// MkdirAll creates the named directory and any missing parents
	// (os.MkdirAll).
	MkdirAll(path string, perm fs.FileMode) error
	// ReadDir reads the named directory and returns its entries sorted
	// by filename (os.ReadDir).
	ReadDir(name string) ([]fs.DirEntry, error)
	// Stat returns the FileInfo for the named file (os.Stat).
	Stat(name string) (fs.FileInfo, error)
	// SyncDir fsyncs the directory itself, making directory operations
	// (create/rename/remove of entries) durable.
	SyncDir(dir string) error
}

// OS is the passthrough FS backed by the real os package. The zero value
// is ready to use; vfs.Default is the canonical instance.
type OS struct{}

// Default is the real-filesystem FS every constructor defaults to when no
// FS option is given.
var Default FS = OS{}

func (OS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (OS) Remove(name string) error             { return os.Remove(name) }
func (OS) MkdirAll(path string, perm fs.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (OS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (OS) Stat(name string) (fs.FileInfo, error)      { return os.Stat(name) }

// SyncDir opens the directory read-only and fsyncs it, the POSIX idiom for
// making a rename/create/remove of an entry durable.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}
