package vfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// mustWrite writes through f, failing the test on error.
func mustWrite(t *testing.T, f File, p string) {
	t.Helper()
	if _, err := f.Write([]byte(p)); err != nil {
		t.Fatalf("write: %v", err)
	}
}

func readBack(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read back %s: %v", path, err)
	}
	return string(b)
}

// TestOSPassthrough exercises the real-filesystem implementation end to
// end: the durability layer's behavior on OS must be indistinguishable
// from direct os package calls.
func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	fsys := Default

	if err := fsys.MkdirAll(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	path := filepath.Join(dir, "sub", "a.txt")
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	mustWrite(t, f, "hello")
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if f.Name() != path {
		t.Fatalf("Name = %q, want %q", f.Name(), path)
	}
	if err := f.Truncate(4); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := readBack(t, path); got != "hell" {
		t.Fatalf("content = %q, want %q", got, "hell")
	}

	moved := filepath.Join(dir, "sub", "b.txt")
	if err := fsys.Rename(path, moved); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if err := fsys.SyncDir(filepath.Join(dir, "sub")); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
	if _, err := fsys.Stat(moved); err != nil {
		t.Fatalf("Stat after rename: %v", err)
	}
	ents, err := fsys.ReadDir(filepath.Join(dir, "sub"))
	if err != nil || len(ents) != 1 || ents[0].Name() != "b.txt" {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	if err := fsys.Remove(moved); err != nil {
		t.Fatalf("Remove: %v", err)
	}

	tmp, err := fsys.CreateTemp(dir, "t-*")
	if err != nil {
		t.Fatalf("CreateTemp: %v", err)
	}
	tmp.Close()
	if err := fsys.Remove(tmp.Name()); err != nil {
		t.Fatalf("Remove temp: %v", err)
	}
}

// TestFaultNth: a rule with Nth fires on exactly the Nth matching
// operation, then is spent.
func TestFaultNth(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFault(Default)
	ffs.AddFault(Fault{Op: OpSync, Nth: 2})

	f, err := ffs.OpenFile(filepath.Join(dir, "a"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 1 should pass: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync 2 = %v, want ErrInjected", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 3 should pass (rule spent): %v", err)
	}
}

// TestFaultPersistent: a rule with neither AtOp nor Nth fires on every
// match until ClearFaults — the "disk is broken until fixed" model the
// degraded-mode tests build on.
func TestFaultPersistent(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFault(Default)
	ffs.AddFault(Fault{Op: OpSync, Err: errors.New("EIO")})

	f, err := ffs.OpenFile(filepath.Join(dir, "a"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 3; i++ {
		if err := f.Sync(); err == nil {
			t.Fatalf("sync %d should fail persistently", i)
		}
	}
	ffs.ClearFaults()
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after ClearFaults: %v", err)
	}
}

// TestFaultPathAndAtOp: Path matches by substring and AtOp by the global
// counted-op index, so a soak can target "the 7th state-changing op".
func TestFaultPathAndAtOp(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFault(Default)
	// Op 1 = create a, op 2 = write a, op 3 = create b, op 4 = write b.
	ffs.AddFault(Fault{AtOp: 4})
	ffs.AddFault(Fault{Op: OpWrite, Path: "never-matches"})

	a, err := ffs.OpenFile(filepath.Join(dir, "a"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	mustWrite(t, a, "x")
	b, err := ffs.OpenFile(filepath.Join(dir, "b"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := b.Write([]byte("y")); !errors.Is(err, ErrInjected) {
		t.Fatalf("op 4 = %v, want ErrInjected", err)
	}
	if _, err := b.Write([]byte("y")); err != nil {
		t.Fatalf("op 5 should pass (AtOp spent): %v", err)
	}
	if got := readBack(t, filepath.Join(dir, "b")); got != "y" {
		t.Fatalf("b content = %q: failed write must persist nothing", got)
	}
}

// TestTornWrite: a TornBytes rule persists exactly the prefix, models a
// power cut mid-write.
func TestTornWrite(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFault(Default)
	ffs.AddFault(Fault{Op: OpWrite, Nth: 1, TornBytes: 3})

	f, err := ffs.OpenFile(filepath.Join(dir, "a"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("hello world"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write error = %v, want ErrInjected", err)
	}
	if n != 3 {
		t.Fatalf("torn write reported %d bytes, want 3", n)
	}
	f.Close()
	if got := readBack(t, filepath.Join(dir, "a")); got != "hel" {
		t.Fatalf("content = %q, want torn prefix %q", got, "hel")
	}
}

// TestWriteBudget: ENOSPC after K bytes, with the partial prefix that fit
// persisted — the classic full-disk signature.
func TestWriteBudget(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFault(Default)
	f, err := ffs.OpenFile(filepath.Join(dir, "a"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	ffs.SetWriteBudget(5)
	mustWrite(t, f, "abc") // 3 of 5
	if _, err := f.Write([]byte("defg")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("over-budget write = %v, want ErrNoSpace", err)
	}
	if _, err := f.Write([]byte("h")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("write on full disk = %v, want ErrNoSpace", err)
	}
	f.Close()
	if got := readBack(t, filepath.Join(dir, "a")); got != "abcde" {
		t.Fatalf("content = %q, want exactly the 5 budgeted bytes %q", got, "abcde")
	}
	ffs.SetWriteBudget(-1)
	g, err := ffs.OpenFile(filepath.Join(dir, "a"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	mustWrite(t, g, "!")
	g.Close()
}

// TestCrashAfter: ops up to the crash point succeed, everything after —
// reads included — fails with ErrCrashed and leaves no on-disk trace, so
// the directory is frozen at that I/O interleaving.
func TestCrashAfter(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFault(Default)
	ffs.CrashAfter(2) // create + one write survive

	f, err := ffs.OpenFile(filepath.Join(dir, "a"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	mustWrite(t, f, "ok")
	if _, err := f.Write([]byte("lost")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write = %v, want ErrCrashed", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync = %v, want ErrCrashed", err)
	}
	if _, err := ffs.Open(filepath.Join(dir, "a")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash open = %v, want ErrCrashed", err)
	}
	if !ffs.Crashed() {
		t.Fatal("Crashed() should report true")
	}
	f.Close()
	if got := readBack(t, filepath.Join(dir, "a")); got != "ok" {
		t.Fatalf("content = %q: the crash point froze the file at %q", got, "ok")
	}
	// Recovery runs over the same directory with a clean fs.
	if got := readBack(t, filepath.Join(dir, "a")); got != "ok" {
		t.Fatalf("frozen content changed: %q", got)
	}
}

// TestOpCounting: the op counter is the soak's enumeration domain; it must
// count attempts (including failed ones) deterministically.
func TestOpCounting(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFault(Default)
	f, err := ffs.OpenFile(filepath.Join(dir, "a"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	mustWrite(t, f, "x")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := ffs.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")); err != nil {
		t.Fatal(err)
	}
	if err := ffs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	if got := ffs.Ops(); got != 5 {
		t.Fatalf("Ops = %d, want 5 (create, write, sync, rename, syncdir)", got)
	}
	for op, want := range map[Op]int{OpCreate: 1, OpWrite: 1, OpSync: 1, OpRename: 1, OpSyncDir: 1} {
		if got := ffs.OpCount(op); got != want {
			t.Fatalf("OpCount(%s) = %d, want %d", op, got, want)
		}
	}
	// Reads are free: they are not crash points.
	g, err := ffs.Open(filepath.Join(dir, "b"))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := g.Read(buf); err != nil {
		t.Fatal(err)
	}
	g.Close()
	if got := ffs.Ops(); got != 5 {
		t.Fatalf("Ops after read = %d, want 5 (reads uncounted)", got)
	}
}
