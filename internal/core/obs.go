package core

import (
	"log/slog"
	"time"

	"repro/internal/obs"
)

// WithObs attaches a metrics registry to the engine: the engine_*,
// checkpoint_*, and commit_* families register here, and the registry is
// threaded into the live manager (live_*, exec_*, shard_*). The serving
// layer passes the same registry into wal.Options.Obs so one scrape covers
// every layer. Without this option the engine records nothing and the hot
// paths pay only nil checks.
func WithObs(reg *obs.Registry) Option {
	return func(e *Engine) { e.obsReg = reg }
}

// WithSlowCommit sets the commit-latency threshold above which a traced
// commit emits a structured span-breakdown log line
// (obs.DefaultSlowCommit without this option; <= 0 disables the log while
// keeping the histograms). Only meaningful together with WithObs.
func WithSlowCommit(d time.Duration) Option {
	return func(e *Engine) { e.slowCommit = d }
}

// WithTraceLogger routes slow-commit span lines to the given logger
// instead of slog.Default().
func WithTraceLogger(l *slog.Logger) Option {
	return func(e *Engine) { e.traceLog = l }
}

// Obs returns the engine's metrics registry (nil without WithObs). The
// serving layer mounts its Handler at GET /metrics and hands it to
// wal.Options.Obs.
func (e *Engine) Obs() *obs.Registry { return e.obsReg }

// engineMetrics are the engine-layer families. All note* helpers are
// nil-safe on the receiver, so call sites need no enablement branches.
type engineMetrics struct {
	commitsPublish   *obs.Counter
	commitsHeartbeat *obs.Counter
	commitEvents     *obs.Counter
	walFailures      *obs.Counter
	degraded         *obs.Gauge
	degradedTrans    *obs.Counter

	queries      map[string]*obs.Counter // by exec path
	queryErrors  *obs.Counter
	querySeconds *obs.Histogram

	ckptTotal    *obs.Counter
	ckptFailures *obs.Counter
	ckptBytes    *obs.Gauge
	ckptSeconds  *obs.Histogram
}

func newEngineMetrics(reg *obs.Registry) *engineMetrics {
	m := &engineMetrics{
		commitsPublish:   reg.Counter("engine_commits_total", "Committed changes by kind.", "kind", "publish"),
		commitsHeartbeat: reg.Counter("engine_commits_total", "Committed changes by kind.", "kind", "heartbeat"),
		commitEvents:     reg.Counter("engine_commit_events_total", "Events carried by committed publishes."),
		walFailures:      reg.Counter("engine_wal_failures_total", "Commit-log append failures."),
		degraded:         reg.Gauge("engine_degraded", "1 while the engine is in degraded read-only mode."),
		degradedTrans:    reg.Counter("engine_degraded_transitions_total", "Healthy-to-degraded transitions."),
		queryErrors:      reg.Counter("engine_query_errors_total", "One-shot queries that failed."),
		querySeconds:     reg.Histogram("engine_query_seconds", "One-shot query latency.", obs.DurationScale, obs.DurationBuckets),
		ckptTotal:        reg.Counter("checkpoint_total", "Checkpoints written."),
		ckptFailures:     reg.Counter("checkpoint_failures_total", "Checkpoint writes that failed."),
		ckptBytes:        reg.Gauge("checkpoint_bytes", "Size of the last successful checkpoint."),
		ckptSeconds:      reg.Histogram("checkpoint_seconds", "Checkpoint write duration.", obs.DurationScale, obs.DurationBuckets),
	}
	// Pre-register the execution paths so the per-query note is a map
	// lookup, never a registration (which takes the registry lock).
	m.queries = make(map[string]*obs.Counter)
	for _, p := range []string{"serial", "parallel", "parallel-two-stage", "serial-small-input"} {
		m.queries[p] = reg.Counter("engine_queries_total", "One-shot queries by execution path.", "path", p)
	}
	return m
}

func (m *engineMetrics) notePublish(events int) {
	if m == nil {
		return
	}
	m.commitsPublish.Inc()
	m.commitEvents.Add(int64(events))
}

func (m *engineMetrics) noteHeartbeat() {
	if m == nil {
		return
	}
	m.commitsHeartbeat.Inc()
}

func (m *engineMetrics) noteWALFailure() {
	if m == nil {
		return
	}
	m.walFailures.Inc()
}

// noteDegraded tracks the degraded gauge and counts 0->1 transitions.
func (m *engineMetrics) noteDegraded(on bool) {
	if m == nil {
		return
	}
	if on {
		if m.degraded.Value() == 0 {
			m.degradedTrans.Inc()
		}
		m.degraded.Set(1)
	} else {
		m.degraded.Set(0)
	}
}

func (m *engineMetrics) noteQuery(path string, d time.Duration, err error) {
	if m == nil {
		return
	}
	if err != nil {
		m.queryErrors.Inc()
		return
	}
	if c := m.queries[path]; c != nil {
		c.Inc()
	}
	m.querySeconds.Observe(int64(d))
}

func (m *engineMetrics) noteCheckpoint(bytes int64, d time.Duration, err error) {
	if m == nil {
		return
	}
	if err != nil {
		m.ckptFailures.Inc()
		return
	}
	m.ckptTotal.Inc()
	m.ckptBytes.Set(bytes)
	m.ckptSeconds.Observe(int64(d))
}
