package core

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/exec"
	"repro/internal/live"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/shard"
	"repro/internal/types"
)

// This file is the engine's standing-query surface. A subscription parses
// and plans its SQL, then either attaches to an already-resident pipeline
// for the same plan — subscriptions are keyed by (normalized SQL, mode,
// effective partitions), so N identical subscribers share one compiled
// pipeline with per-subscriber delivery cursors — or compiles the pipeline
// once and registers it. A fresh pipeline replays the recorded history of
// the scanned relations and is caught up to the engine's processing-time
// clock; a late-attaching cursor instead receives a snapshot hand-off
// synthesized from the pipeline's retained output. Either way, every
// Insert/Delete/AdvanceWatermark that touches a scanned relation is then
// routed to the pipeline incrementally. Because the exec lifecycle makes
// incremental feeding byte-identical to replay, the delta sequence each
// subscriber observes equals what a post-hoc QueryStream over the final
// changelog would return — shared or not.

// SubscribeOptions configures a standing query.
type SubscribeOptions struct {
	// Parts > 1 requests key-partitioned parallel execution for the
	// standing pipeline; plans with no valid hash partitioning fall back
	// to serial, exactly as the one-shot parallel query paths do.
	Parts int
	// Buffer is the delta channel capacity (default 64).
	Buffer int
	// Policy is the slow-consumer policy (live.Block or
	// live.DropWithError).
	Policy live.Policy
	// Exclusive opts out of plan sharing: the subscription always gets a
	// dedicated resident pipeline, even when an identical one is already
	// serving other subscribers. The delta sequence is identical either
	// way; Exclusive trades the shared pipeline's amortized cost for
	// isolation (a benchmark A/B, or decoupling from a peer's Block-policy
	// backpressure).
	Exclusive bool
	// MaxRetainedRows bounds the shared session's late-attach retention
	// (the Stream-mode output changelog / Table-mode distinct-row
	// accumulator). 0 means unbounded. When the retained output outgrows
	// the cap it is released — memory stays bounded — and later attaches to
	// that session fail with live.ErrRetainedOverflow instead of receiving
	// an incomplete snapshot; existing subscribers are unaffected. The cap
	// is fixed by the subscription that creates the resident pipeline
	// (later sharers inherit it).
	MaxRetainedRows int
}

// SubscribeStream opens a standing query delivering the stream rendering:
// each delta carries new tvr.StreamRows with undo/ptime/ver metadata, the
// paper's EMIT STREAM output, pushed as it materializes.
func (e *Engine) SubscribeStream(sql string, opts SubscribeOptions) (*live.Subscription, error) {
	return e.subscribe(sql, live.Stream, opts)
}

// SubscribeTable opens a standing query delivering consolidated snapshot
// diffs: the net row changes to the table rendering since the previous
// delivery.
func (e *Engine) SubscribeTable(sql string, opts SubscribeOptions) (*live.Subscription, error) {
	return e.subscribe(sql, live.Table, opts)
}

func (e *Engine) subscribe(sql string, mode live.Mode, opts SubscribeOptions) (*live.Subscription, error) {
	pq, err := e.plan(sql)
	if err != nil {
		return nil, err
	}
	// ORDER BY / LIMIT are presentation of a complete snapshot; an
	// incremental diff stream has no way to honor them (that would need
	// top-K maintenance), so reject rather than silently diverge from
	// QueryTable. The stream rendering ignores them exactly as
	// QueryStream does.
	if mode == live.Table && (len(pq.OrderBy) > 0 || pq.Limit != nil) {
		return nil, fmt.Errorf("core: ORDER BY/LIMIT are not supported by table subscriptions (diffs cannot maintain presentation order)")
	}
	// The effective parallelism decides both the compiled pipeline and
	// the sharing key: a Parts=4 subscription to a plan with no valid
	// hash partitioning runs the same serial pipeline a Parts=1
	// subscription would, so the two share.
	parts := 1
	if opts.Parts > 1 {
		if _, derr := plan.DerivePartitioning(pq); derr == nil {
			parts = opts.Parts
		}
	}
	key := ""
	if !opts.Exclusive {
		key = planKey(sql, mode, parts)
	}
	names := scanNames(pq.Root)
	create := func() (*live.Session, error) {
		var d exec.Driver
		if parts > 1 {
			pp, perr := exec.CompilePartitioned(pq, parts)
			switch {
			case perr == nil:
				d = pp
			case !errors.Is(perr, exec.ErrNotPartitionable):
				return nil, perr
			}
			// Not partitionable: fall through to the serial pipeline.
		}
		if d == nil {
			p, cerr := exec.Compile(pq)
			if cerr != nil {
				return nil, cerr
			}
			d = p
		}
		return live.NewSession(d, live.Config{
			Name:            sql,
			Mode:            mode,
			Schema:          pq.Root.Schema(),
			EmitKeys:        pq.EmitKeyIdxs,
			Sources:         names,
			MaxRetainedRows: opts.MaxRetainedRows,
		})
	}
	// Attach to the resident pipeline for this plan, or compile one and
	// replay recorded history into it. The manager runs both under its
	// ordering lock, so no concurrently committed change can fall between
	// the snapshot (history replay or late-attach hand-off) and live
	// routing; on any failure it cancels the session, so a started
	// driver's goroutines cannot leak.
	return e.live.Subscribe(key, live.CursorOpts{Buffer: opts.Buffer, Policy: opts.Policy}, create,
		func() ([]exec.Source, error) { return e.sourcesByName(names) })
}

// planKey identifies a shareable standing-query plan: same normalized SQL
// text, same delta rendering, same effective parallelism. Whitespace runs
// are collapsed so trivially reformatted SQL still shares; anything beyond
// that (case, literal spelling) conservatively keys a separate pipeline.
func planKey(sql string, mode live.Mode, parts int) string {
	return fmt.Sprintf("%s\x00%s\x00%d", normalizeSQL(sql), mode, parts)
}

// normalizeSQL collapses whitespace runs outside quoted regions into one
// space and trims the ends. Whitespace inside a single-quoted string
// literal or a double-quoted identifier is significant to the lexer ('a b'
// and 'a  b' are different literals, "a b" and "a  b" different relations),
// so quoted bytes pass through verbatim. The ” literal escape reads as
// close-then-reopen, which preserves bytes just the same; quoted
// identifiers have no escape (the next '"' closes them).
func normalizeSQL(sql string) string {
	var b strings.Builder
	b.Grow(len(sql))
	var quote byte // the delimiter of the quoted region we are inside, or 0
	pendingSpace := false
	for i := 0; i < len(sql); i++ {
		ch := sql[i]
		if quote != 0 {
			b.WriteByte(ch)
			if ch == quote {
				quote = 0
			}
			continue
		}
		switch ch {
		case ' ', '\t', '\n', '\r':
			pendingSpace = true
			continue
		case '\'', '"':
			quote = ch
		}
		if pendingSpace && b.Len() > 0 {
			b.WriteByte(' ')
		}
		pendingSpace = false
		b.WriteByte(ch)
	}
	return b.String()
}

// Heartbeat advances the processing-time clock of every standing query to
// pt, firing due EMIT AFTER DELAY timers. The clock is recorded: a
// subscription opened afterwards starts from it instead of MinTime, so its
// pending timers fire exactly as an earlier subscriber's did. The catalog
// is unchanged; one-shot queries are unaffected. With a write-ahead log
// attached the heartbeat is logged (under the same ordering lock, before
// any session sees it) — timers it fires must refire identically on
// replay — and a log failure suppresses the broadcast.
func (e *Engine) Heartbeat(pt types.Time) error {
	span := e.tracer.Begin("(heartbeat)", 0)
	err := e.live.AdvanceWithSpan(pt, func() error {
		e.mu.Lock()
		defer e.mu.Unlock()
		if err := e.degradedLocked(); err != nil {
			return err
		}
		tWAL := time.Time{}
		if span != nil {
			tWAL = time.Now()
		}
		err := e.walAppendLocked(func(enc *checkpoint.Encoder) error {
			enc.String(walRecHeartbeat)
			enc.Time(pt)
			return enc.Err()
		})
		if err == nil {
			span.AddSince(obs.SpanWAL, tWAL)
		}
		return err
	}, span)
	if err == nil {
		e.metrics.noteHeartbeat()
	}
	return err
}

// LiveSessions reports the number of resident standing-query pipelines.
// Subscriptions sharing a plan count once; see LiveSubscribers for the
// attached-consumer count.
func (e *Engine) LiveSessions() int {
	return e.live.Len()
}

// LiveSubscribers reports the number of attached subscriber cursors across
// all resident pipelines.
func (e *Engine) LiveSubscribers() int {
	return e.live.Subscribers()
}

// ShardStats snapshots the sharded fan-out's per-shard queue depth and lag,
// or nil when the engine runs the serial fan-out (see WithShards). Lock-free,
// so health probes stay responsive while a shard is stalled on a Block-policy
// subscriber.
func (e *Engine) ShardStats() []shard.Stat {
	return e.live.ShardStats()
}

// Shards reports the number of shard workers (0 = serial fan-out).
func (e *Engine) Shards() int {
	return e.live.Shards()
}
