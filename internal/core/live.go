package core

import (
	"errors"
	"fmt"

	"repro/internal/exec"
	"repro/internal/live"
	"repro/internal/types"
)

// This file is the engine's standing-query surface. A subscription parses,
// plans, and compiles its SQL exactly once; the recorded history of the
// scanned relations is replayed through the resident pipeline, and from then
// on every Insert/Delete/AdvanceWatermark that touches a scanned relation is
// routed to the subscription incrementally. Because the exec lifecycle makes
// incremental feeding byte-identical to replay, the delta sequence a
// subscriber observes equals what a post-hoc QueryStream over the final
// changelog would return.

// SubscribeOptions configures a standing query.
type SubscribeOptions struct {
	// Parts > 1 requests key-partitioned parallel execution for the
	// standing pipeline; plans with no valid hash partitioning fall back
	// to serial, exactly as the one-shot parallel query paths do.
	Parts int
	// Buffer is the delta channel capacity (default 64).
	Buffer int
	// Policy is the slow-consumer policy (live.Block or
	// live.DropWithError).
	Policy live.Policy
}

// SubscribeStream opens a standing query delivering the stream rendering:
// each delta carries new tvr.StreamRows with undo/ptime/ver metadata, the
// paper's EMIT STREAM output, pushed as it materializes.
func (e *Engine) SubscribeStream(sql string, opts SubscribeOptions) (*live.Subscription, error) {
	return e.subscribe(sql, live.Stream, opts)
}

// SubscribeTable opens a standing query delivering consolidated snapshot
// diffs: the net row changes to the table rendering since the previous
// delivery.
func (e *Engine) SubscribeTable(sql string, opts SubscribeOptions) (*live.Subscription, error) {
	return e.subscribe(sql, live.Table, opts)
}

func (e *Engine) subscribe(sql string, mode live.Mode, opts SubscribeOptions) (*live.Subscription, error) {
	pq, err := e.plan(sql)
	if err != nil {
		return nil, err
	}
	// ORDER BY / LIMIT are presentation of a complete snapshot; an
	// incremental diff stream has no way to honor them (that would need
	// top-K maintenance), so reject rather than silently diverge from
	// QueryTable. The stream rendering ignores them exactly as
	// QueryStream does.
	if mode == live.Table && (len(pq.OrderBy) > 0 || pq.Limit != nil) {
		return nil, fmt.Errorf("core: ORDER BY/LIMIT are not supported by table subscriptions (diffs cannot maintain presentation order)")
	}
	var d exec.Driver
	if opts.Parts > 1 {
		pp, perr := exec.CompilePartitioned(pq, opts.Parts)
		switch {
		case perr == nil:
			d = pp
		case !errors.Is(perr, exec.ErrNotPartitionable):
			return nil, perr
		}
		// Not partitionable: fall through to the serial pipeline.
	}
	if d == nil {
		p, cerr := exec.Compile(pq)
		if cerr != nil {
			return nil, cerr
		}
		d = p
	}
	names := scanNames(pq.Root)
	sess, err := live.NewSession(d, live.Config{
		Name:     sql,
		Mode:     mode,
		Schema:   pq.Root.Schema(),
		EmitKeys: pq.EmitKeyIdxs,
		Sources:  names,
		Buffer:   opts.Buffer,
		Policy:   opts.Policy,
	})
	if err != nil {
		return nil, err
	}
	// Replay recorded history, then go live. The manager runs the
	// snapshot under its ordering lock, so no concurrently committed
	// change can fall between the history replay and live routing.
	if err := e.live.Register(sess, func() ([]exec.Source, error) {
		return e.sourcesByName(names)
	}); err != nil {
		return nil, err
	}
	return sess.Subscription(), nil
}

// Heartbeat advances the processing-time clock of every standing query to
// pt, firing due EMIT AFTER DELAY timers. The catalog is unchanged; one-shot
// queries are unaffected.
func (e *Engine) Heartbeat(pt types.Time) {
	e.live.Advance(pt)
}

// LiveSessions reports the number of standing queries currently registered.
func (e *Engine) LiveSessions() int {
	return e.live.Len()
}
