package core_test

// Engine-level checkpoint/restore tests: the engine (catalog + resident
// standing-query pipelines) is checkpointed mid-stream, a fresh engine is
// restored from the bytes, ingestion continues there, and every rendering
// must be byte-identical to the uninterrupted run. A late attacher to the
// restored shared session must still equal its dedicated twin — the restored
// pipeline serves snapshot hand-offs without rescanning history.

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/tvr"
	"repro/internal/types"
)

// restartEngine checkpoints e and restores a brand-new engine from the
// bytes — the in-process stand-in for a process crash + restart.
func restartEngine(t *testing.T, e *core.Engine) *core.Engine {
	t.Helper()
	var buf bytes.Buffer
	if err := e.CheckpointAll(&buf); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	restored := core.NewEngine()
	if err := restored.RestoreAll(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("restore: %v", err)
	}
	return restored
}

// TestCheckpointRestoreLive is the engine-level half of the issue's property
// test: ingest a random prefix through a shared standing query, restart the
// engine from a checkpoint at that split point, finish ingestion on the
// restored engine, and require (a) a late attacher to the restored shared
// session to be byte-identical to a dedicated twin opened at the same
// instant, and (b) both to equal the uninterrupted replay — serial and
// partitioned.
func TestCheckpointRestoreLive(t *testing.T) {
	g := liveData(t)
	last := g.Bids[len(g.Bids)-1]
	finalWM := tvr.WatermarkEvent(last.Ptime+1, last.Ptime+types.Time(1000*types.Second))
	for _, parts := range []int{1, 4} {
		parts := parts
		t.Run(fmt.Sprintf("parts=%d", parts), func(t *testing.T) {
			// Uninterrupted reference: post-hoc replay over the full log.
			replayEngine := newBidEngine(t)
			if err := replayEngine.AppendLog("Bid", append(append(tvr.Changelog{}, g.Bids...), finalWM)); err != nil {
				t.Fatal(err)
			}
			var want *core.StreamResult
			var err error
			if parts > 1 {
				want, err = replayEngine.QueryStreamParallel(liveBidQuery, parts)
			} else {
				want, err = replayEngine.QueryStream(liveBidQuery)
			}
			if err != nil {
				t.Fatal(err)
			}
			wantStr := tvr.FormatStreamTable(want.Schema, want.Rows)

			rng := rand.New(rand.NewSource(int64(7 * parts)))
			splits := []int{1, len(g.Bids) / 3, len(g.Bids) / 2, len(g.Bids) - 1}
			opts := core.SubscribeOptions{Parts: parts, Buffer: len(g.Bids) + 16}
			exclOpts := opts
			exclOpts.Exclusive = true
			for _, split := range splits {
				e := newBidEngine(t)
				early, err := e.SubscribeStream(liveBidQuery, opts)
				if err != nil {
					t.Fatal(err)
				}
				// Random ptime-axis batches up to the split point.
				for i := 0; i < split; {
					end := i + 1 + rng.Intn(8)
					if end > split {
						end = split
					}
					if err := e.AppendLog("Bid", g.Bids[i:end]); err != nil {
						t.Fatal(err)
					}
					i = end
				}

				// Process restart at the split point.
				restored := restartEngine(t, e)
				if got := restored.LiveSessions(); got != 1 {
					t.Fatalf("split=%d: restored engine has %d live sessions, want 1", split, got)
				}
				// The early subscriber's prefix deltas, for the continuation
				// check below. Cancel releases the abandoned engine.
				early.Cancel()
				prefixRows := collectStream(early, nil)

				// A late attacher lands on the restored resident pipeline
				// (no new session), its dedicated twin compiles its own
				// and replays the restored catalog history.
				late, err := restored.SubscribeStream(liveBidQuery, opts)
				if err != nil {
					t.Fatalf("split=%d: late attach to restored session: %v", split, err)
				}
				if got := restored.LiveSessions(); got != 1 {
					t.Fatalf("split=%d: late attach created a session (%d live), want to share the restored one", split, got)
				}
				twin, err := restored.SubscribeStream(liveBidQuery, exclOpts)
				if err != nil {
					t.Fatal(err)
				}

				// Finish the stream on the restored engine.
				for i := split; i < len(g.Bids); {
					end := i + 1 + rng.Intn(8)
					if end > len(g.Bids) {
						end = len(g.Bids)
					}
					if err := restored.AppendLog("Bid", g.Bids[i:end]); err != nil {
						t.Fatal(err)
					}
					i = end
				}
				if err := restored.AppendLog("Bid", tvr.Changelog{finalWM}); err != nil {
					t.Fatal(err)
				}

				lateFinal, err := late.Close()
				if err != nil {
					t.Fatal(err)
				}
				lateRows := collectStream(late, lateFinal)
				twinFinal, err := twin.Close()
				if err != nil {
					t.Fatal(err)
				}
				twinRows := collectStream(twin, twinFinal)

				lateStr := tvr.FormatStreamTable(late.Schema(), lateRows)
				twinStr := tvr.FormatStreamTable(twin.Schema(), twinRows)
				if lateStr != twinStr {
					t.Fatalf("split=%d: late attacher to restored session differs from dedicated twin:\nlate:\n%s\ntwin:\n%s",
						split, truncate(lateStr), truncate(twinStr))
				}
				if lateStr != wantStr {
					t.Fatalf("split=%d: restored output differs from uninterrupted replay:\ngot:\n%s\nwant:\n%s",
						split, truncate(lateStr), truncate(wantStr))
				}
				// Continuation check: the rows delivered before the restart
				// plus the restored pipeline's post-restart rows must be
				// exactly the uninterrupted sequence — the restored driver
				// resumed, it did not re-derive or skip anything.
				combined := append(append([]tvr.StreamRow{}, prefixRows...), lateRows[len(prefixRows):]...)
				if got := tvr.FormatStreamTable(late.Schema(), combined); got != wantStr {
					t.Fatalf("split=%d: pre-restart + post-restart delta concatenation differs from replay", split)
				}
			}
		})
	}
}

// TestCheckpointRestoreTable: a Table-mode standing query survives restart —
// the restored session's late-attach consolidated diff reconstructs the
// QueryTable snapshot, and continued diffs keep it consistent.
func TestCheckpointRestoreTable(t *testing.T) {
	g := liveData(t)
	sql := `
SELECT TB.auction auction, TB.wstart wstart, TB.wend wend, MAX(TB.price) maxPrice
FROM Tumble(data => TABLE(Bid), timecol => DESCRIPTOR(dateTime),
            dur => INTERVAL '10' SECONDS) TB
GROUP BY TB.auction, TB.wstart, TB.wend`
	e := newBidEngine(t)
	sub, err := e.SubscribeTable(sql, core.SubscribeOptions{Buffer: len(g.Bids) + 16})
	if err != nil {
		t.Fatal(err)
	}
	split := len(g.Bids) / 2
	if err := e.AppendLog("Bid", g.Bids[:split]); err != nil {
		t.Fatal(err)
	}
	restored := restartEngine(t, e)
	sub.Cancel()

	late, err := restored.SubscribeTable(sql, core.SubscribeOptions{Buffer: len(g.Bids) + 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.AppendLog("Bid", g.Bids[split:]); err != nil {
		t.Fatal(err)
	}
	final, err := late.Close()
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct the snapshot from the diffs.
	snap := tvr.NewRelation()
	apply := func(d live.Delta) {
		if d.Table == nil {
			return
		}
		for _, r := range d.Table.Inserted {
			snap.Insert(r)
		}
		for _, r := range d.Table.Deleted {
			if err := snap.Delete(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	for d := range late.Deltas() {
		apply(d)
	}
	if final != nil {
		apply(*final)
	}
	want, err := restored.QueryTable(sql, types.MaxTime)
	if err != nil {
		t.Fatal(err)
	}
	wantRel := tvr.NewRelation()
	for _, r := range want.Rows {
		wantRel.Insert(r)
	}
	if !snap.Equal(wantRel) {
		t.Fatalf("restored table subscription reconstructs %s, QueryTable says %s", snap, wantRel)
	}
}

// TestCheckpointSkipsExclusiveSessions: exclusive sessions cannot be
// re-attached after a restart (their retained output is dropped and their
// only subscriber died with the process), so they are not checkpointed.
func TestCheckpointSkipsExclusiveSessions(t *testing.T) {
	g := liveData(t)
	e := newBidEngine(t)
	shared, err := e.SubscribeStream(liveBidQuery, core.SubscribeOptions{Buffer: len(g.Bids) + 16})
	if err != nil {
		t.Fatal(err)
	}
	defer shared.Cancel()
	excl, err := e.SubscribeStream(liveBidQuery, core.SubscribeOptions{Buffer: len(g.Bids) + 16, Exclusive: true})
	if err != nil {
		t.Fatal(err)
	}
	defer excl.Cancel()
	if err := e.AppendLog("Bid", g.Bids[:200]); err != nil {
		t.Fatal(err)
	}
	restored := restartEngine(t, e)
	if got := restored.LiveSessions(); got != 1 {
		t.Fatalf("restored %d sessions, want only the shared one", got)
	}
}

// TestCheckpointCompletesAfterParkedDeliveryReleased: a delivery parked on
// a full Block-policy cursor holds the live ordering lock, so a concurrent
// CheckpointAll must wait — and canceling the stalled subscription must
// release the park and let the checkpoint complete. cmd/serve's graceful
// shutdown relies on exactly this to unwedge its final checkpoint.
func TestCheckpointCompletesAfterParkedDeliveryReleased(t *testing.T) {
	e := newBidEngine(t)
	sub, err := e.SubscribeStream(`SELECT auction, price FROM Bid`, core.SubscribeOptions{Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The subscriber never drains: the second delta fills the channel and
	// the third delivery parks the publisher (holding the ordering lock).
	ingestDone := make(chan struct{})
	go func() {
		defer close(ingestDone)
		for i := 0; i < 4; i++ {
			row := types.Row{types.NewInt(int64(i)), types.NewInt(1000), types.NewTimestamp(types.Time(i * 1000))}
			if err := e.Insert("Bid", types.Time(i*1000), row); err != nil {
				return // session torn down by the cancel below
			}
		}
	}()
	ckptDone := make(chan error, 1)
	go func() {
		var buf bytes.Buffer
		ckptDone <- e.CheckpointAll(&buf)
	}()
	// Whether or not the checkpoint slipped in before the park, canceling
	// the stalled subscriber must let both the publisher and the
	// checkpoint finish promptly.
	time.Sleep(50 * time.Millisecond)
	sub.Cancel()
	select {
	case <-ckptDone:
	case <-time.After(5 * time.Second):
		t.Fatal("CheckpointAll still blocked after the stalled subscription was canceled")
	}
	select {
	case <-ingestDone:
	case <-time.After(5 * time.Second):
		t.Fatal("parked publisher still blocked after cancel")
	}
}

// TestRestoreNeedsEmptyEngine: restore is a startup operation.
func TestRestoreNeedsEmptyEngine(t *testing.T) {
	e := newBidEngine(t)
	var buf bytes.Buffer
	if err := e.CheckpointAll(&buf); err != nil {
		t.Fatal(err)
	}
	if err := e.RestoreAll(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("restore into a non-empty engine should fail")
	}
}

// TestRetainedOverflowDegradesLateAttach: the SubscribeOptions.MaxRetainedRows
// cap bounds the shared session's retention; once exceeded, late attaches
// fail with live.ErrRetainedOverflow while existing subscribers continue,
// and an Exclusive subscription remains available (history replay).
func TestRetainedOverflowDegradesLateAttach(t *testing.T) {
	g := liveData(t)
	e := newBidEngine(t)
	first, err := e.SubscribeStream(liveBidQuery, core.SubscribeOptions{
		Buffer: len(g.Bids) + 16, MaxRetainedRows: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Ingest enough completed windows to exceed 8 retained output rows.
	if err := e.AppendLog("Bid", g.Bids); err != nil {
		t.Fatal(err)
	}
	last := g.Bids[len(g.Bids)-1]
	if err := e.AdvanceWatermark("Bid", last.Ptime+1, last.Ptime+types.Time(1000*types.Second)); err != nil {
		t.Fatal(err)
	}
	if st := first.Stats(); st.RowsOut <= 8 {
		t.Fatalf("test needs more than 8 output rows to overflow, got %d", st.RowsOut)
	}
	// Late attach degrades to the documented error instead of unbounded
	// retention.
	_, err = e.SubscribeStream(liveBidQuery, core.SubscribeOptions{Buffer: 16})
	if !errors.Is(err, live.ErrRetainedOverflow) {
		t.Fatalf("late attach after overflow: err = %v, want ErrRetainedOverflow", err)
	}
	// The session (and its existing subscriber) survives.
	if e.LiveSessions() != 1 || first.Err() != nil {
		t.Fatalf("overflow damaged the resident session: sessions=%d err=%v", e.LiveSessions(), first.Err())
	}
	// Exclusive path still works: it replays recorded history instead.
	excl, err := e.SubscribeStream(liveBidQuery, core.SubscribeOptions{Buffer: len(g.Bids) + 16, Exclusive: true})
	if err != nil {
		t.Fatalf("exclusive subscribe after overflow: %v", err)
	}
	finalExcl, err := excl.Close()
	if err != nil {
		t.Fatal(err)
	}
	exclRows := collectStream(excl, finalExcl)
	firstFinal, err := first.Close()
	if err != nil {
		t.Fatal(err)
	}
	firstRows := collectStream(first, firstFinal)
	if got, want := tvr.FormatStreamTable(excl.Schema(), exclRows), tvr.FormatStreamTable(first.Schema(), firstRows); got != want {
		t.Fatalf("exclusive replay differs from the capped session's deltas:\ngot:\n%s\nwant:\n%s", truncate(got), truncate(want))
	}
}

// TestOverflowedSessionCheckpointRestore: an overflowed session still
// checkpoints and restores (its pipeline state is intact); the restored copy
// keeps refusing late attaches.
func TestOverflowedSessionCheckpointRestore(t *testing.T) {
	g := liveData(t)
	e := newBidEngine(t)
	if _, err := e.SubscribeStream(liveBidQuery, core.SubscribeOptions{
		Buffer: len(g.Bids) + 16, MaxRetainedRows: 4,
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.AppendLog("Bid", g.Bids); err != nil {
		t.Fatal(err)
	}
	restored := restartEngine(t, e)
	if got := restored.LiveSessions(); got != 1 {
		t.Fatalf("restored %d sessions, want 1", got)
	}
	_, err := restored.SubscribeStream(liveBidQuery, core.SubscribeOptions{Buffer: 16})
	if !errors.Is(err, live.ErrRetainedOverflow) {
		t.Fatalf("restored overflowed session should refuse late attach, got %v", err)
	}
}
