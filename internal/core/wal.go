package core

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/tvr"
	"repro/internal/types"
)

// The engine's write-ahead log seam. With a log attached, every committed
// change — Insert/Delete/AppendLog/AdvanceWatermark batches, Heartbeats,
// and relation registrations — is appended to the log under the same
// ordering that standing queries observe it, stamped with a commit sequence
// number, BEFORE it is applied or fanned out. Recovery is then "restore the
// last snapshot, re-publish the WAL tail through the normal commit path":
// replayed records flow through exactly the code live changes flow through,
// so restored subscribers' delta sequences are byte-identical to an
// uninterrupted run (the property the checkpoint tests pin).
//
// Ordering: publishes and heartbeats commit under the live manager's
// ordering lock and allocate their sequence number under the catalog lock
// inside that critical section, so WAL order equals fan-out order.
// Registrations take only the catalog lock — they fan out to no one, and
// any publish touching the new relation necessarily commits after it.

// CommitLog is the narrow interface the engine appends committed changes
// to. The callback writes the record body with the snapshot encoder's own
// helpers; implementations frame and persist it (see internal/wal).
type CommitLog interface {
	Append(seq uint64, write func(*checkpoint.Encoder) error) error
}

// WAL record kinds. Stable wire tags, independent of any in-memory enum.
const (
	walRecPublish   = "P" // one committed changelog batch on one relation
	walRecHeartbeat = "H" // processing-time advance across all sessions
	walRecRegister  = "R" // relation registration (stream or table)
	walRecNoop      = "N" // durable no-op, the degraded-recovery probe
)

// AttachWAL starts logging every subsequent commit to l. Attach after
// restore and replay are complete: an engine with a log attached refuses
// ApplyWALRecord, precisely so a replayed record cannot be re-logged.
func (e *Engine) AttachWAL(l CommitLog) error {
	if l == nil {
		return fmt.Errorf("core: AttachWAL needs a non-nil log")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.wal != nil {
		return fmt.Errorf("core: a write-ahead log is already attached")
	}
	e.wal = l
	return nil
}

// WALSeq returns the engine's last committed WAL sequence number: the
// sequence the latest snapshot covers through, and the point replay resumes
// after. Zero means no logged commits yet.
func (e *Engine) WALSeq() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.walSeq
}

// walAppendLocked logs one record under the catalog lock, advancing the
// commit sequence only on success. Called with e.mu held, after validation
// and before any state change: a log failure must leave the catalog
// untouched and suppress the fan-out, or an acknowledged-but-unlogged
// change would vanish on restart.
func (e *Engine) walAppendLocked(write func(*checkpoint.Encoder) error) error {
	if e.wal == nil {
		return nil
	}
	seq := e.walSeq + 1
	err := e.wal.Append(seq, write)
	e.noteWALResultLocked(err)
	if err != nil {
		return fmt.Errorf("core: write-ahead log append: %w", err)
	}
	e.walSeq = seq
	return nil
}

// walRecord is one decoded WAL record, held fully decoded and
// integrity-verified before any of it is applied.
type walRecord struct {
	kind      string
	name      string        // publish, register
	log       tvr.Changelog // publish
	pt        types.Time    // heartbeat
	unbounded bool          // register
	schema    *types.Schema // register
}

// ReplayWALRecord is the wal.Replay callback: records at or below the
// engine's committed sequence are already covered by the restored snapshot
// and are skipped without decoding (the log's frame CRC has verified their
// bytes); later records are decoded, integrity-checked, and re-published
// through the normal commit path. The log must not be attached yet.
func (e *Engine) ReplayWALRecord(seq uint64, dec *checkpoint.Decoder) error {
	e.mu.RLock()
	attached, cur := e.wal != nil, e.walSeq
	e.mu.RUnlock()
	if attached {
		return fmt.Errorf("core: cannot replay WAL records into an engine with a log attached")
	}
	if seq <= cur {
		return nil
	}
	if seq != cur+1 {
		return fmt.Errorf("core: WAL record seq %d does not follow engine seq %d", seq, cur)
	}

	rec, err := decodeWALRecord(dec)
	if err != nil {
		return fmt.Errorf("core: WAL record %d: %w", seq, err)
	}
	switch rec.kind {
	case walRecPublish:
		err = e.AppendLog(rec.name, rec.log)
	case walRecHeartbeat:
		err = e.Heartbeat(rec.pt)
	case walRecRegister:
		err = e.register(rec.name, rec.schema, rec.unbounded)
	case walRecNoop:
		// A degraded-recovery probe: durable by design, applies nothing.
	}
	if err != nil {
		return fmt.Errorf("core: replaying WAL record %d: %w", seq, err)
	}
	e.mu.Lock()
	e.walSeq = seq
	e.mu.Unlock()
	return nil
}

// decodeWALRecord reads and fully verifies one record body (the decoder is
// positioned just past the sequence number; Close checks the record's own
// trailer) without touching engine state.
func decodeWALRecord(dec *checkpoint.Decoder) (walRecord, error) {
	var rec walRecord
	rec.kind = dec.String()
	if err := dec.Err(); err != nil {
		return rec, err
	}
	switch rec.kind {
	case walRecPublish:
		rec.name = dec.String()
		log, err := tvr.LoadChangelog(dec)
		if err != nil {
			return rec, err
		}
		rec.log = log
	case walRecHeartbeat:
		rec.pt = dec.Time()
	case walRecRegister:
		rec.name = dec.String()
		rec.unbounded = dec.Bool()
		schema, err := loadSchema(dec)
		if err != nil {
			return rec, err
		}
		rec.schema = schema
	case walRecNoop:
		// No body.
	default:
		return rec, fmt.Errorf("unknown record kind %q", rec.kind)
	}
	if err := dec.Close(); err != nil {
		return rec, err
	}
	return rec, nil
}
