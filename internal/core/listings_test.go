// Package core_test (rather than core) because the listings are driven
// through the nexmark paper dataset, and nexmark itself imports core: an
// in-package test would create an import cycle.
package core_test

// This file regenerates every listing in the paper (Listings 3-14) on the
// exact Section 4 example dataset and asserts the outputs match the paper
// row for row. These are the paper's "tables and figures".

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/nexmark"
	"repro/internal/tvr"
	"repro/internal/types"
)

// paperEngine builds an engine holding the paper's example Bid stream.
func paperEngine(t testing.TB) *core.Engine {
	t.Helper()
	e := core.NewEngine()
	if err := e.RegisterStream("Bid", nexmark.BidSchema()); err != nil {
		t.Fatal(err)
	}
	if err := e.AppendLog("Bid", nexmark.PaperBidLog()); err != nil {
		t.Fatal(err)
	}
	return e
}

// fmtRow renders a row as the compact "8:00|8:10|8:09|5|D" form used by the
// expected-output tables below.
func fmtRow(r types.Row) string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return strings.Join(parts, "|")
}

func fmtStreamRow(s tvr.StreamRow) string {
	undo := ""
	if s.Undo {
		undo = "undo"
	}
	return fmt.Sprintf("%s|%s|%s|%d", fmtRow(s.Row), undo, s.Ptime, s.Ver)
}

func assertRows(t *testing.T, got []types.Row, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d rows, want %d:\ngot:  %v\nwant: %v", len(got), len(want), renderAll(got), want)
	}
	for i := range want {
		if fmtRow(got[i]) != want[i] {
			t.Errorf("row %d:\ngot:  %s\nwant: %s", i, fmtRow(got[i]), want[i])
		}
	}
}

func renderAll(rows []types.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmtRow(r)
	}
	return out
}

func assertStreamRows(t *testing.T, got []tvr.StreamRow, want []string) {
	t.Helper()
	if len(got) != len(want) {
		all := make([]string, len(got))
		for i, s := range got {
			all[i] = fmtStreamRow(s)
		}
		t.Fatalf("got %d stream rows, want %d:\ngot:  %v\nwant: %v", len(got), len(want), all, want)
	}
	for i := range want {
		if fmtStreamRow(got[i]) != want[i] {
			t.Errorf("stream row %d:\ngot:  %s\nwant: %s", i, fmtStreamRow(got[i]), want[i])
		}
	}
}

// TestListing3 reproduces Listing 3: Query 7 evaluated as a table at 8:21.
func TestListing3(t *testing.T) {
	e := paperEngine(t)
	res, err := e.QueryTable(nexmark.Query7SQL, types.ClockTime(8, 21))
	if err != nil {
		t.Fatal(err)
	}
	// The paper presents windows in wstart order.
	assertRows(t, res.SortedBy(0), []string{
		"8:00|8:10|8:09|5|D",
		"8:10|8:20|8:17|6|F",
	})
}

// TestListing4 reproduces Listing 4: the same query at 8:13, when only half
// the input has arrived.
func TestListing4(t *testing.T) {
	e := paperEngine(t)
	res, err := e.QueryTable(nexmark.Query7SQL, types.ClockTime(8, 13))
	if err != nil {
		t.Fatal(err)
	}
	assertRows(t, res.SortedBy(0), []string{
		"8:00|8:10|8:05|4|C",
		"8:10|8:20|8:11|3|B",
	})
}

const tumbleSQL = `
SELECT wstart, wend, bidtime, price, item
FROM Tumble(
  data => TABLE(Bid),
  timecol => DESCRIPTOR(bidtime),
  dur => INTERVAL '10' MINUTES,
  offset => INTERVAL '0' MINUTES)`

// TestListing5 reproduces Listing 5: the raw Tumble TVF output at 8:21,
// in arrival order.
func TestListing5(t *testing.T) {
	e := paperEngine(t)
	res, err := e.QueryTable(tumbleSQL, types.ClockTime(8, 21))
	if err != nil {
		t.Fatal(err)
	}
	assertRows(t, res.Rows, []string{
		"8:00|8:10|8:07|2|A",
		"8:10|8:20|8:11|3|B",
		"8:00|8:10|8:05|4|C",
		"8:00|8:10|8:09|5|D",
		"8:10|8:20|8:13|1|E",
		"8:10|8:20|8:17|6|F",
	})
}

// TestListing6 reproduces Listing 6: Tumble combined with GROUP BY wend.
func TestListing6(t *testing.T) {
	e := paperEngine(t)
	res, err := e.QueryTable(`
		SELECT MAX(wstart) wstart, wend, SUM(price) price
		FROM Tumble(
		  data => TABLE(Bid),
		  timecol => DESCRIPTOR(bidtime),
		  dur => INTERVAL '10' MINUTES)
		GROUP BY wend`, types.ClockTime(8, 21))
	if err != nil {
		t.Fatal(err)
	}
	assertRows(t, res.SortedBy(1), []string{
		"8:00|8:10|11",
		"8:10|8:20|10",
	})
}

const hopSQL = `
SELECT wstart, wend, bidtime, price, item
FROM Hop(
  data => TABLE(Bid),
  timecol => DESCRIPTOR(bidtime),
  dur => INTERVAL '10' MINUTES,
  hopsize => INTERVAL '5' MINUTES)`

// TestListing7 reproduces Listing 7: the raw Hop TVF output (12 rows, each
// bid in two overlapping windows), in arrival order.
func TestListing7(t *testing.T) {
	e := paperEngine(t)
	res, err := e.QueryTable(hopSQL, types.ClockTime(8, 21))
	if err != nil {
		t.Fatal(err)
	}
	assertRows(t, res.Rows, []string{
		"8:00|8:10|8:07|2|A",
		"8:05|8:15|8:07|2|A",
		"8:05|8:15|8:11|3|B",
		"8:10|8:20|8:11|3|B",
		"8:00|8:10|8:05|4|C",
		"8:05|8:15|8:05|4|C",
		"8:00|8:10|8:09|5|D",
		"8:05|8:15|8:09|5|D",
		"8:05|8:15|8:13|1|E",
		"8:10|8:20|8:13|1|E",
		"8:10|8:20|8:17|6|F",
		"8:15|8:25|8:17|6|F",
	})
}

// TestListing8 reproduces Listing 8: Hop combined with GROUP BY wend.
func TestListing8(t *testing.T) {
	e := paperEngine(t)
	res, err := e.QueryTable(`
		SELECT MAX(wstart) wstart, wend, SUM(price) price
		FROM Hop(
		  data => TABLE(Bid),
		  timecol => DESCRIPTOR(bidtime),
		  dur => INTERVAL '10' MINUTES,
		  hopsize => INTERVAL '5' MINUTES)
		GROUP BY wend`, types.ClockTime(8, 21))
	if err != nil {
		t.Fatal(err)
	}
	assertRows(t, res.SortedBy(1), []string{
		"8:00|8:10|11",
		"8:05|8:15|15",
		"8:10|8:20|10",
		"8:15|8:25|6",
	})
}

// TestListing9 reproduces Listing 9: Query 7 with EMIT STREAM — the full
// changelog with undo/ptime/ver metadata.
func TestListing9(t *testing.T) {
	e := paperEngine(t)
	res, err := e.QueryStream(nexmark.Query7SQL + " EMIT STREAM")
	if err != nil {
		t.Fatal(err)
	}
	assertStreamRows(t, res.Rows, []string{
		"8:00|8:10|8:07|2|A||8:08|0",
		"8:10|8:20|8:11|3|B||8:12|0",
		"8:00|8:10|8:07|2|A|undo|8:13|1",
		"8:00|8:10|8:05|4|C||8:13|2",
		"8:00|8:10|8:05|4|C|undo|8:15|3",
		"8:00|8:10|8:09|5|D||8:15|4",
		"8:10|8:20|8:11|3|B|undo|8:18|1",
		"8:10|8:20|8:17|6|F||8:18|2",
	})
}

// TestListing10to12 reproduces Listings 10-12: EMIT AFTER WATERMARK table
// views at 8:13 (empty), 8:16 (first window final), and 8:21 (both final).
func TestListing10to12(t *testing.T) {
	e := paperEngine(t)
	sql := nexmark.Query7SQL + " EMIT AFTER WATERMARK"

	res, err := e.QueryTable(sql, types.ClockTime(8, 13))
	if err != nil {
		t.Fatal(err)
	}
	assertRows(t, res.Rows, nil) // Listing 10: empty

	res, err = e.QueryTable(sql, types.ClockTime(8, 16))
	if err != nil {
		t.Fatal(err)
	}
	assertRows(t, res.Rows, []string{ // Listing 11
		"8:00|8:10|8:09|5|D",
	})

	res, err = e.QueryTable(sql, types.ClockTime(8, 21))
	if err != nil {
		t.Fatal(err)
	}
	assertRows(t, res.SortedBy(0), []string{ // Listing 12
		"8:00|8:10|8:09|5|D",
		"8:10|8:20|8:17|6|F",
	})
}

// TestListing13 reproduces Listing 13: EMIT STREAM AFTER WATERMARK — exactly
// one final row per window, at the processing time the watermark passed the
// window end.
func TestListing13(t *testing.T) {
	e := paperEngine(t)
	res, err := e.QueryStream(nexmark.Query7SQL + " EMIT STREAM AFTER WATERMARK")
	if err != nil {
		t.Fatal(err)
	}
	assertStreamRows(t, res.Rows, []string{
		"8:00|8:10|8:09|5|D||8:16|0",
		"8:10|8:20|8:17|6|F||8:21|0",
	})
}

// TestListing14 reproduces Listing 14: EMIT STREAM AFTER DELAY '6' MINUTES —
// updates coalesced into periodic materializations, each within six minutes
// of the first change to the row.
func TestListing14(t *testing.T) {
	e := paperEngine(t)
	res, err := e.QueryStream(nexmark.Query7SQL + " EMIT STREAM AFTER DELAY INTERVAL '6' MINUTES")
	if err != nil {
		t.Fatal(err)
	}
	assertStreamRows(t, res.Rows, []string{
		"8:00|8:10|8:05|4|C||8:14|0",
		"8:10|8:20|8:17|6|F||8:18|0",
		"8:00|8:10|8:05|4|C|undo|8:21|1",
		"8:00|8:10|8:09|5|D||8:21|2",
	})
}

// TestListing2OverRecordedTable verifies the paper's claim in Section 4 that
// the same query evaluated without watermarks over a table recorded from the
// bid stream yields the same result.
func TestListing2OverRecordedTable(t *testing.T) {
	e := core.NewEngine()
	if err := e.RegisterTable("Bid", nexmark.BidSchema()); err != nil {
		t.Fatal(err)
	}
	// Record only the data (a table has no watermarks).
	for _, ev := range nexmark.PaperBidLog() {
		if ev.IsData() {
			if err := e.Insert("Bid", ev.Ptime, ev.Row); err != nil {
				t.Fatal(err)
			}
		}
	}
	res, err := e.QueryTable(nexmark.Query7SQL, types.ClockTime(8, 21))
	if err != nil {
		t.Fatal(err)
	}
	assertRows(t, res.SortedBy(0), []string{
		"8:00|8:10|8:09|5|D",
		"8:10|8:20|8:17|6|F",
	})
	// And EMIT AFTER WATERMARK over the complete table also yields the
	// final answer (the bounded input completes at end-of-log).
	res, err = e.QueryTable(nexmark.Query7SQL+" EMIT AFTER WATERMARK", types.ClockTime(8, 21))
	if err != nil {
		t.Fatal(err)
	}
	assertRows(t, res.SortedBy(0), []string{
		"8:00|8:10|8:09|5|D",
		"8:10|8:20|8:17|6|F",
	})
}
