package core_test

// Engine-level fault-injection tests: degraded read-only mode (the engine's
// defined behavior when the durability layer fails) and the ALICE-style
// crash-point soak (crash after EVERY filesystem operation in a recorded
// workload, recover, and require the recovered state byte-identical to a
// reference run at the acknowledged prefix).

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/tvr"
	"repro/internal/types"
	"repro/internal/vfs"
	"repro/internal/wal"
)

// faultBidSchema is a minimal watermarked stream schema for fault tests —
// small rows keep the WAL op sequence short, which keeps the exhaustive
// crash-point soak cheap.
func faultBidSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "auction", Kind: types.KindInt64},
		types.Column{Name: "price", Kind: types.KindInt64},
		types.Column{Name: "dateTime", Kind: types.KindTimestamp, EventTime: true},
	)
}

// faultBatch builds the i-th deterministic ingest batch: three bids and,
// every fourth batch, a watermark advance.
func faultBatch(i int) tvr.Changelog {
	base := types.Time(int64(i) * 1000)
	var log tvr.Changelog
	for j := 0; j < 3; j++ {
		n := int64(i*3 + j)
		row := types.Row{
			types.NewInt(n % 5),
			types.NewInt(100 + (n*31)%97),
			types.NewTimestamp(base + types.Time(j*100)),
		}
		log = append(log, tvr.InsertEvent(base+types.Time(j*10), row))
	}
	if i%4 == 3 {
		log = append(log, tvr.WatermarkEvent(base+500, base))
	}
	return log
}

const faultStateQuery = "SELECT auction, price FROM Bid"

// faultState renders the engine's Bid state deterministically; engines with
// identical acknowledged histories must render identically. An engine that
// never saw the Bid registration renders as empty.
func faultState(t *testing.T, e *core.Engine) string {
	t.Helper()
	if _, err := e.Resolve("Bid"); err != nil {
		return "<empty>"
	}
	res, err := e.QueryStream(faultStateQuery)
	if err != nil {
		t.Fatalf("state query: %v", err)
	}
	return tvr.FormatStreamTable(res.Schema, res.Rows)
}

// waitDelta receives one delta from the subscription or fails.
func waitDelta(t *testing.T, sub *live.Subscription) live.Delta {
	t.Helper()
	select {
	case d, ok := <-sub.Deltas():
		if !ok {
			t.Fatalf("subscription closed (err=%v)", sub.Err())
		}
		return d
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for a delta")
	}
	panic("unreachable")
}

// expectNoDelta asserts the subscription is alive but idle.
func expectNoDelta(t *testing.T, sub *live.Subscription) {
	t.Helper()
	select {
	case d, ok := <-sub.Deltas():
		if !ok {
			t.Fatalf("subscription closed (err=%v)", sub.Err())
		}
		t.Fatalf("unexpected delta: %+v", d)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestDegradedModePersistentFsyncFault is the acceptance scenario: a
// persistent fsync fault poisons the log (fsync-gate), the engine flips to
// degraded read-only mode — ingest refused with ErrDegraded, reads and
// existing subscriptions keep serving — and clearing the fault plus
// ClearDegraded restores normal service with no acknowledged commit lost.
func TestDegradedModePersistentFsyncFault(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	ffs := vfs.NewFault(vfs.Default)
	w, err := wal.Open(walDir, 1, wal.Options{Mode: wal.SyncAlways, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	e := core.NewEngine(core.WithUnboundedGroupBy())
	defer e.Close()
	if err := e.AttachWAL(w); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterStream("Bid", faultBidSchema()); err != nil {
		t.Fatal(err)
	}
	sub, err := e.SubscribeStream(faultStateQuery, core.SubscribeOptions{Buffer: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()
	if err := e.AppendLog("Bid", faultBatch(0)); err != nil {
		t.Fatal(err)
	}
	waitDelta(t, sub)

	// The disk starts eating fsyncs. The first commit attempt fails and —
	// because a failed fsync poisons the segment — degrades the engine
	// immediately, without waiting for the consecutive-failure threshold.
	ffs.AddFault(vfs.Fault{Op: vfs.OpSync, Err: errors.New("EIO")})
	if err := e.AppendLog("Bid", faultBatch(1)); err == nil {
		t.Fatal("ingest with failing fsync must be refused")
	}
	if e.Degraded() == nil {
		t.Fatal("poisoned log must degrade the engine immediately")
	}
	// Every ingest path now refuses up front with ErrDegraded.
	if err := e.AppendLog("Bid", faultBatch(1)); !errors.Is(err, core.ErrDegraded) {
		t.Fatalf("ingest while degraded = %v, want ErrDegraded", err)
	}
	if err := e.Heartbeat(10_000_000); !errors.Is(err, core.ErrDegraded) {
		t.Fatalf("heartbeat while degraded = %v, want ErrDegraded", err)
	}
	if err := e.RegisterStream("Other", faultBidSchema()); !errors.Is(err, core.ErrDegraded) {
		t.Fatalf("register while degraded = %v, want ErrDegraded", err)
	}
	// Reads are unaffected: the refused batch never mutated state.
	healthyState := faultState(t, e)
	if healthyState == "<empty>" {
		t.Fatal("reads must keep serving while degraded")
	}
	// The standing query is alive, just idle — degraded mode sheds writes,
	// not subscribers.
	expectNoDelta(t, sub)
	if sub.Err() != nil {
		t.Fatalf("subscription must survive degraded mode, got err: %v", sub.Err())
	}

	// Clearing degraded mode while the disk is still broken must fail (the
	// recovery probe cannot be made durable) and leave the engine degraded.
	if err := e.ClearDegraded(); err == nil {
		t.Fatal("ClearDegraded must fail while the fault persists")
	}
	if e.Degraded() == nil {
		t.Fatal("engine must stay degraded after a failed probe")
	}

	// The disk recovers: ClearDegraded repairs the log (Recover abandons
	// the poisoned segment), proves writability with a durable no-op probe,
	// and reopens ingest.
	ffs.ClearFaults()
	if err := e.ClearDegraded(); err != nil {
		t.Fatalf("ClearDegraded after fault cleared: %v", err)
	}
	if e.Degraded() != nil {
		t.Fatalf("engine still degraded: %v", e.Degraded())
	}
	if err := e.AppendLog("Bid", faultBatch(1)); err != nil {
		t.Fatalf("ingest after recovery: %v", err)
	}
	waitDelta(t, sub)

	// Crash-recover the log: everything acknowledged (including commits
	// from after the recovery, and the no-op probe record) must replay into
	// an identical engine.
	finalState := faultState(t, e)
	r := core.NewEngine(core.WithUnboundedGroupBy())
	defer r.Close()
	if _, err := wal.Replay(walDir, r.ReplayWALRecord); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if got := faultState(t, r); got != finalState {
		t.Fatalf("recovered state differs from live state\n got: %s\nwant: %s", got, finalState)
	}
}

// TestDegradedThreshold: append-safe WAL failures (here: segment rotation
// hitting ENOSPC) do not poison the log, so the engine counts them and
// degrades only after the configured number of CONSECUTIVE failures; a
// success in between resets the count.
func TestDegradedThreshold(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFault(vfs.Default)
	// SegmentBytes 1: every append after the first wants a fresh segment,
	// so a persistent create fault fails every commit without poisoning.
	w, err := wal.Open(filepath.Join(dir, "wal"), 1, wal.Options{Mode: wal.SyncAlways, SegmentBytes: 1, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	e := core.NewEngine(core.WithUnboundedGroupBy(), core.WithDegradeAfter(2))
	defer e.Close()
	if err := e.AttachWAL(w); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterStream("Bid", faultBidSchema()); err != nil {
		t.Fatal(err)
	}

	ffs.AddFault(vfs.Fault{Op: vfs.OpCreate, Path: "wal-", Err: vfs.ErrNoSpace})
	if err := e.AppendLog("Bid", faultBatch(0)); err == nil || errors.Is(err, core.ErrDegraded) {
		t.Fatalf("failure 1 of 2 should refuse the commit without degrading, got %v", err)
	}
	if e.Degraded() != nil {
		t.Fatal("one append-safe failure must not degrade (threshold 2)")
	}
	if err := e.AppendLog("Bid", faultBatch(0)); err == nil {
		t.Fatal("failure 2 of 2 must refuse the commit")
	}
	if e.Degraded() == nil {
		t.Fatal("second consecutive failure must degrade (threshold 2)")
	}
	if err := e.AppendLog("Bid", faultBatch(0)); !errors.Is(err, core.ErrDegraded) {
		t.Fatalf("ingest while degraded = %v, want ErrDegraded", err)
	}

	ffs.ClearFaults()
	if err := e.ClearDegraded(); err != nil {
		t.Fatalf("ClearDegraded: %v", err)
	}
	if err := e.AppendLog("Bid", faultBatch(0)); err != nil {
		t.Fatalf("ingest after recovery: %v", err)
	}
}

// ---- crash-point soak ----

// soakStep is one committed operation of the recorded workload. The wal
// writer is nil in the reference run (no durability layer), in which case
// the checkpoint step is a no-op — checkpoints never change query state.
type soakStep struct {
	name string
	run  func(e *core.Engine, w *wal.Writer) error
}

// soakWorkload builds the recorded workload: register, ingest batches with
// interleaved heartbeats, one checkpoint + WAL truncation in the middle.
// dataDir parameterizes the checkpoint path per run.
func soakWorkload(dataDir string, batches int) []soakStep {
	steps := []soakStep{{
		name: "register",
		run: func(e *core.Engine, w *wal.Writer) error {
			return e.RegisterStream("Bid", faultBidSchema())
		},
	}}
	for i := 0; i < batches; i++ {
		i := i
		steps = append(steps, soakStep{
			name: fmt.Sprintf("batch-%d", i),
			run: func(e *core.Engine, w *wal.Writer) error {
				return e.AppendLog("Bid", faultBatch(i))
			},
		})
		if i == batches/2 {
			steps = append(steps, soakStep{
				name: "checkpoint",
				run: func(e *core.Engine, w *wal.Writer) error {
					if w == nil {
						return nil
					}
					_, seq, err := e.CheckpointFile(filepath.Join(dataDir, "checkpoint.ckpt"))
					if err != nil {
						return err
					}
					return w.TruncateThrough(seq)
				},
			})
		}
		if i%3 == 2 {
			pt := types.Time(int64(i)*1000 + 900)
			steps = append(steps, soakStep{
				name: fmt.Sprintf("heartbeat-%d", i),
				run: func(e *core.Engine, w *wal.Writer) error {
					return e.Heartbeat(pt)
				},
			})
		}
	}
	return steps
}

// runSoakWorkload executes the workload over a FaultFS-backed engine+WAL in
// dataDir. It returns how many steps were acknowledged (with retryOnce,
// each failing step is retried once before giving up) and the FaultFS for
// op-count inspection. Close errors are ignored: a crashed run's close path
// fails by design.
func runSoakWorkload(t *testing.T, dataDir string, ffs *vfs.FaultFS, retryOnce bool) int {
	t.Helper()
	walDir := filepath.Join(dataDir, "wal")
	w, err := wal.Open(walDir, 1, wal.Options{Mode: wal.SyncAlways, SegmentBytes: 512, FS: ffs})
	if err != nil {
		return 0 // crashed before the log existed: nothing acknowledged
	}
	e := core.NewEngine(core.WithUnboundedGroupBy(), core.WithFS(ffs))
	if err := e.AttachWAL(w); err != nil {
		t.Fatal(err)
	}
	acked := 0
	for _, st := range soakWorkload(dataDir, soakBatches()) {
		err := st.run(e, w)
		if err != nil && retryOnce {
			err = st.run(e, w)
		}
		if err != nil {
			break
		}
		acked++
	}
	e.Close()
	_ = w.Close()
	return acked
}

// soakRecover is the production recovery stitch over the crash-frozen
// directory, through a CLEAN filesystem: sweep checkpoint temp litter,
// restore the snapshot if one exists, replay the WAL tail, and prove the
// log reopens for appending at the recovered sequence.
func soakRecover(t *testing.T, dataDir string) *core.Engine {
	t.Helper()
	stale, err := filepath.Glob(filepath.Join(dataDir, "checkpoint.ckpt.tmp*"))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range stale {
		if err := os.Remove(p); err != nil {
			t.Fatal(err)
		}
	}
	r := core.NewEngine(core.WithUnboundedGroupBy())
	t.Cleanup(r.Close)
	ckpt := filepath.Join(dataDir, "checkpoint.ckpt")
	if _, err := os.Stat(ckpt); err == nil {
		if err := r.RestoreFile(ckpt); err != nil {
			t.Fatalf("restore %s: %v", ckpt, err)
		}
	}
	walDir := filepath.Join(dataDir, "wal")
	if _, err := wal.Replay(walDir, r.ReplayWALRecord); err != nil {
		t.Fatalf("replay %s: %v", walDir, err)
	}
	w, err := wal.Open(walDir, r.WALSeq()+1, wal.Options{Mode: wal.SyncAlways, SegmentBytes: 512})
	if err != nil {
		t.Fatalf("reopen log after recovery: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close reopened log: %v", err)
	}
	return r
}

// soakBatches scales the workload: small by default (the soak is quadratic
// in the op count), full-size with FAULT_SOAK_FULL=1.
func soakBatches() int {
	if os.Getenv("FAULT_SOAK_FULL") != "" {
		return 40
	}
	return 10
}

// TestCrashPointSoak enumerates every filesystem operation the recorded
// workload performs and, for each index i, re-runs the workload on a fresh
// directory with a hard crash after op i — every later operation fails and
// persists nothing. Recovery over the frozen directory must then yield a
// state byte-identical to the reference run at the acknowledged prefix
// (the in-flight commit may legitimately have become durable without its
// ack). This is the test that fails if the WAL append hardening — torn-
// frame repair, fsync-gate ack rollback, sealed-before-successor rotation
// — is reverted: some crash index then loses an acknowledged commit or
// corrupts the log beyond replay.
func TestCrashPointSoak(t *testing.T) {
	// Phase 1 — oracle: a fault-free run over a FaultFS records the op
	// count (the crash-point enumeration domain), and a plain reference
	// engine records the expected state after every acknowledged step.
	refDir := t.TempDir()
	ffs := vfs.NewFault(vfs.Default)
	steps := soakWorkload("", soakBatches())
	if acked := runSoakWorkload(t, refDir, ffs, false); acked != len(steps) {
		t.Fatalf("fault-free run acked %d of %d steps", acked, len(steps))
	}
	totalOps := ffs.Ops()
	ref := core.NewEngine(core.WithUnboundedGroupBy())
	defer ref.Close()
	refStates := make([]string, len(steps))
	for k, st := range steps {
		if err := st.run(ref, nil); err != nil {
			t.Fatalf("reference step %s: %v", st.name, err)
		}
		refStates[k] = faultState(t, ref)
	}
	emptyState := "<empty>"
	t.Logf("soak: %d steps, %d filesystem operations to crash after", len(steps), totalOps)

	// Phase 2 — crash after every op. CrashAfter(0) crashes before the
	// first op (even the WAL directory never appears).
	for i := 0; i <= totalOps; i++ {
		dir := t.TempDir()
		crashFS := vfs.NewFault(vfs.Default)
		crashFS.CrashAfter(i)
		acked := runSoakWorkload(t, dir, crashFS, false)
		rec := soakRecover(t, dir)
		got := faultState(t, rec)

		// Acceptable recovered states: exactly the acked prefix, or the
		// acked prefix plus the one in-flight commit (durable, unacked).
		okStates := []string{}
		if acked == 0 {
			okStates = append(okStates, emptyState)
		} else {
			okStates = append(okStates, refStates[acked-1])
		}
		if acked < len(steps) {
			okStates = append(okStates, refStates[acked])
		}
		matched := false
		for _, want := range okStates {
			if got == want {
				matched = true
				break
			}
		}
		if !matched {
			t.Fatalf("crash after op %d (acked %d steps): recovered state matches neither the acked prefix nor prefix+1\n got: %s",
				i, acked, got)
		}
	}
}

// TestTornWriteSoak tears every write the workload performs, one per run:
// write j persists only a 7-byte prefix and fails; the workload retries the
// failed step once (the client-visible contract: a refused commit may be
// retried) and continues. The run must then acknowledge every step and
// recover to the full reference state — which is exactly what breaks if
// failed-append repair stops truncating partial frames: the tear stays in
// the segment, later acknowledged frames sit behind it, and replay loses
// them.
func TestTornWriteSoak(t *testing.T) {
	refDir := t.TempDir()
	ffs := vfs.NewFault(vfs.Default)
	steps := soakWorkload("", soakBatches())
	if acked := runSoakWorkload(t, refDir, ffs, false); acked != len(steps) {
		t.Fatalf("fault-free run acked %d of %d steps", acked, len(steps))
	}
	writes := ffs.OpCount(vfs.OpWrite)
	ref := core.NewEngine(core.WithUnboundedGroupBy())
	defer ref.Close()
	for _, st := range steps {
		if err := st.run(ref, nil); err != nil {
			t.Fatalf("reference step %s: %v", st.name, err)
		}
	}
	want := faultState(t, ref)
	t.Logf("torn-write soak: %d writes to tear", writes)

	for j := 1; j <= writes; j++ {
		dir := t.TempDir()
		tornFS := vfs.NewFault(vfs.Default)
		tornFS.AddFault(vfs.Fault{Op: vfs.OpWrite, Nth: j, TornBytes: 7})
		acked := runSoakWorkload(t, dir, tornFS, true)
		if acked != len(steps) {
			t.Fatalf("torn write %d: acked %d of %d steps — a single repaired tear must not wedge the log",
				j, acked, len(steps))
		}
		rec := soakRecover(t, dir)
		if got := faultState(t, rec); got != want {
			t.Fatalf("torn write %d: recovered state differs from reference\n got: %s\nwant: %s", j, got, want)
		}
	}
}
