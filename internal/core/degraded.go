package core

import (
	"errors"
	"fmt"

	"repro/internal/checkpoint"
)

// Degraded read-only mode: the engine's defined behavior when the
// durability layer is failing. Accepting an ingest means promising "this
// commit survives a crash"; when the WAL cannot make that promise (a
// poisoned segment, persistent ENOSPC) or checkpoints repeatedly fail, the
// engine refuses new commits with ErrDegraded instead of silently serving
// acks it cannot honor. Reads are unaffected: one-shot queries and
// existing standing-query subscriptions keep serving from the in-memory
// catalog, which is exactly as consistent as it was at the last successful
// commit. Recovery is explicit — ClearDegraded proves the log is writable
// again with a durable no-op probe before ingest reopens.

// ErrDegraded is the sentinel every refused ingest wraps while the engine
// is in degraded read-only mode. Callers route it with errors.Is (serve
// maps it to 503 + Retry-After).
var ErrDegraded = errors.New("core: engine is in degraded read-only mode")

// DefaultDegradeAfter is how many consecutive commit-log failures flip the
// engine into degraded mode when WithDegradeAfter is not given. A poisoned
// log (fsync-gate) degrades on the first failure regardless.
const DefaultDegradeAfter = 3

// WithDegradeAfter sets the consecutive WAL-failure threshold for entering
// degraded mode. n <= 0 keeps the default.
func WithDegradeAfter(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.degradeAfter = n
		}
	}
}

// Degraded reports the engine's degraded state: nil when healthy,
// otherwise an error wrapping ErrDegraded with the original cause.
func (e *Engine) Degraded() error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.degradedLocked()
}

func (e *Engine) degradedLocked() error {
	if e.degraded == nil {
		return nil
	}
	return fmt.Errorf("%w: %v", ErrDegraded, e.degraded)
}

// EnterDegraded flips the engine into degraded read-only mode with the
// given cause. The engine does this itself on repeated WAL failures; the
// serving layer calls it when checkpoints fail persistently (a full disk
// that lets WAL appends through today will not for long, and an unbounded
// WAL tail makes recovery unboundedly slow).
func (e *Engine) EnterDegraded(cause error) {
	if cause == nil {
		cause = errors.New("unspecified cause")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.degraded == nil {
		e.degraded = cause
		e.metrics.noteDegraded(true)
	}
}

// ClearDegraded attempts to leave degraded mode. It first repairs the
// commit log if the log supports in-place recovery (wal.Writer.Recover:
// abandon the poisoned segment honoring the fsync-gate), then proves the
// log is genuinely writable again by appending and syncing a durable no-op
// probe record through the normal commit path. Only a successful probe
// reopens ingest; on any failure the engine stays degraded with the new
// cause. Returns nil when the engine is healthy afterwards.
func (e *Engine) ClearDegraded() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.degraded == nil {
		return nil
	}
	if r, ok := e.wal.(interface{ Recover() error }); ok {
		if err := r.Recover(); err != nil {
			e.degraded = fmt.Errorf("log recovery failed: %w", err)
			return e.degradedLocked()
		}
	}
	err := e.walAppendLocked(func(enc *checkpoint.Encoder) error {
		enc.String(walRecNoop)
		return enc.Err()
	})
	if err == nil {
		// Make the probe itself durable even under a lax sync policy —
		// "the disk took a write" is not "the disk is back".
		if s, ok := e.wal.(interface{ Sync() error }); ok {
			err = s.Sync()
		}
	}
	if err != nil {
		e.degraded = fmt.Errorf("recovery probe append failed: %w", err)
		return e.degradedLocked()
	}
	e.degraded = nil
	e.walFails = 0
	e.metrics.noteDegraded(false)
	return nil
}

// noteWALResultLocked is the degraded-mode tripwire, called with e.mu held
// after every commit-log append. Failures count; degradeAfter consecutive
// ones (or a single one that leaves the log poisoned — it will never
// succeed again on its own) flip the engine into degraded mode. Any
// success resets the count.
func (e *Engine) noteWALResultLocked(err error) {
	if err == nil {
		e.walFails = 0
		return
	}
	e.walFails++
	e.metrics.noteWALFailure()
	threshold := e.degradeAfter
	if threshold <= 0 {
		threshold = DefaultDegradeAfter
	}
	poisoned := false
	if s, ok := e.wal.(interface{ Sick() error }); ok && s.Sick() != nil {
		poisoned = true
	}
	if e.degraded == nil && (poisoned || e.walFails >= threshold) {
		e.degraded = err
		e.metrics.noteDegraded(true)
	}
}
