package core_test

// End-to-end tests for the standing-query subsystem: a live EMIT STREAM
// subscription fed event by event must observe exactly the delta sequence a
// post-hoc QueryStream replay of the same changelog produces — on both the
// serial and key-partitioned executors, including late data and
// watermark-driven EMIT — and table subscriptions' consolidated diffs must
// reconstruct the QueryTable snapshot.

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/nexmark"
	"repro/internal/tvr"
	"repro/internal/types"
)

// liveBidQuery is a NEXMark-shaped standing query over the Bid stream:
// per-auction windowed MAX with watermark-driven EMIT, so deltas are
// produced by group completion and late bids are dropped. Grouping by the
// scan-backed auction column keeps the plan hash-partitionable, so the
// parts>1 variants genuinely exercise the partitioned standing pipeline.
const liveBidQuery = `
SELECT TB.auction auction, TB.wstart wstart, TB.wend wend, MAX(TB.price) maxPrice
FROM Tumble(data => TABLE(Bid), timecol => DESCRIPTOR(dateTime),
            dur => INTERVAL '10' SECONDS) TB
GROUP BY TB.auction, TB.wstart, TB.wend
EMIT STREAM AFTER WATERMARK`

// liveData generates a NEXMark dataset with enough out-of-orderness that
// some bids arrive behind the watermark (late data).
func liveData(t testing.TB) *nexmark.Generated {
	t.Helper()
	return nexmark.Generate(nexmark.GeneratorConfig{
		Seed: 9, NumEvents: 1200, MaxOutOfOrderness: 2 * types.Second,
		WatermarkInterval: 5 * types.Second,
	})
}

// newBidEngine registers just the Bid stream.
func newBidEngine(t testing.TB) *core.Engine {
	t.Helper()
	e := core.NewEngine()
	if err := e.RegisterStream("Bid", nexmark.BidFullSchema()); err != nil {
		t.Fatal(err)
	}
	return e
}

// ingestEvent routes one recorded changelog event through the engine's
// public ingestion API.
func ingestEvent(t testing.TB, e *core.Engine, name string, ev tvr.Event) {
	t.Helper()
	var err error
	switch ev.Kind {
	case tvr.Insert:
		err = e.Insert(name, ev.Ptime, ev.Row)
	case tvr.Delete:
		err = e.Delete(name, ev.Ptime, ev.Row)
	case tvr.Watermark:
		err = e.AdvanceWatermark(name, ev.Ptime, ev.Wm)
	default:
		t.Fatalf("unexpected event kind %s", ev.Kind)
	}
	if err != nil {
		t.Fatalf("ingest %s: %v", ev, err)
	}
}

// collectStream drains every delta (delivered plus final) into one sequence.
func collectStream(sub *live.Subscription, final *live.Delta) []tvr.StreamRow {
	var rows []tvr.StreamRow
	for d := range sub.Deltas() {
		rows = append(rows, d.Stream...)
	}
	if final != nil {
		rows = append(rows, final.Stream...)
	}
	return rows
}

// TestLiveStreamMatchesReplay is the subsystem's core guarantee: subscribe,
// ingest the changelog event by event (half of it before subscribing, to
// exercise the history-replay handoff), close, and the concatenated delta
// sequence is byte-identical to QueryStream replay over the full log.
func TestLiveStreamMatchesReplay(t *testing.T) {
	g := liveData(t)
	for _, parts := range []int{1, 4} {
		parts := parts
		t.Run(fmt.Sprintf("parts=%d", parts), func(t *testing.T) {
			// Replay rendering of the full recorded changelog.
			replayEngine := newBidEngine(t)
			if err := replayEngine.AppendLog("Bid", g.Bids); err != nil {
				t.Fatal(err)
			}
			var want *core.StreamResult
			var err error
			if parts > 1 {
				want, err = replayEngine.QueryStreamParallel(liveBidQuery, parts)
			} else {
				want, err = replayEngine.QueryStream(liveBidQuery)
			}
			if err != nil {
				t.Fatal(err)
			}

			// Live: ingest the first half as history, subscribe, then feed
			// the second half event by event.
			liveEngine := newBidEngine(t)
			half := len(g.Bids) / 2
			if err := liveEngine.AppendLog("Bid", g.Bids[:half]); err != nil {
				t.Fatal(err)
			}
			sub, err := liveEngine.SubscribeStream(liveBidQuery, core.SubscribeOptions{
				Parts: parts, Buffer: len(g.Bids) + 16,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, ev := range g.Bids[half:] {
				ingestEvent(t, liveEngine, "Bid", ev)
			}
			st := sub.Stats()
			if st.EventsIn != int64(len(g.Bids)) {
				t.Errorf("EventsIn = %d, want %d", st.EventsIn, len(g.Bids))
			}
			wantParts := parts
			if wantParts < 1 {
				wantParts = 1
			}
			if st.Partitions != wantParts {
				t.Errorf("Partitions = %d, want %d", st.Partitions, wantParts)
			}
			final, err := sub.Close()
			if err != nil {
				t.Fatal(err)
			}
			got := collectStream(sub, final)

			gotStr := tvr.FormatStreamTable(sub.Schema(), got)
			wantStr := tvr.FormatStreamTable(want.Schema, want.Rows)
			if gotStr != wantStr {
				t.Fatalf("live delta sequence differs from replay:\nlive (%d rows):\n%s\nreplay (%d rows):\n%s",
					len(got), truncate(gotStr), len(want.Rows), truncate(wantStr))
			}
			if len(got) == 0 {
				t.Fatal("no deltas delivered; test is vacuous")
			}
			if sub.Err() != nil {
				t.Errorf("Err after graceful close = %v", sub.Err())
			}
			if liveEngine.LiveSessions() != 0 {
				t.Errorf("%d sessions still registered after close", liveEngine.LiveSessions())
			}
		})
	}
}

// TestLiveStreamLateData pins down the late-data behaviour rather than
// relying on the generator: a bid behind the watermark must not produce a
// delta, matching replay exactly.
func TestLiveStreamLateData(t *testing.T) {
	sec := func(n int64) types.Time { return types.Time(n) * types.Time(types.Second) }
	bid := func(auction, bidder, price int64, et types.Time) types.Row {
		return types.Row{
			types.NewInt(auction), types.NewInt(bidder), types.NewInt(price),
			types.NewTimestamp(et),
		}
	}
	log := tvr.Changelog{
		tvr.InsertEvent(sec(1), bid(1, 1, 10, sec(2))),
		tvr.InsertEvent(sec(2), bid(1, 2, 30, sec(8))),
		// Watermark passes the first window [0s,10s).
		tvr.WatermarkEvent(sec(12), sec(11)),
		// Late: event time inside the already-complete first window.
		tvr.InsertEvent(sec(13), bid(1, 3, 99, sec(4))),
		tvr.InsertEvent(sec(14), bid(1, 4, 25, sec(15))),
		tvr.WatermarkEvent(sec(22), sec(21)),
	}
	replayEngine := newBidEngine(t)
	if err := replayEngine.AppendLog("Bid", log); err != nil {
		t.Fatal(err)
	}
	want, err := replayEngine.QueryStream(liveBidQuery)
	if err != nil {
		t.Fatal(err)
	}

	liveEngine := newBidEngine(t)
	sub, err := liveEngine.SubscribeStream(liveBidQuery, core.SubscribeOptions{Buffer: 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range log {
		ingestEvent(t, liveEngine, "Bid", ev)
	}
	final, err := sub.Close()
	if err != nil {
		t.Fatal(err)
	}
	got := collectStream(sub, final)
	gotStr := tvr.FormatStreamTable(sub.Schema(), got)
	wantStr := tvr.FormatStreamTable(want.Schema, want.Rows)
	if gotStr != wantStr {
		t.Fatalf("live differs from replay:\nlive:\n%s\nreplay:\n%s", gotStr, wantStr)
	}
	// The late bid (price 99) must not appear anywhere.
	for _, r := range got {
		if r.Row[2].Int() == 99 {
			t.Fatalf("late bid leaked into output: %s", r)
		}
	}
	// Exactly the two completed windows materialized.
	if len(got) != 2 {
		t.Fatalf("got %d rows, want 2:\n%s", len(got), gotStr)
	}
}

// TestLiveTableDiffs: a TABLE subscription's consolidated diffs reconstruct
// the QueryTable snapshot.
func TestLiveTableDiffs(t *testing.T) {
	g := liveData(t)
	sql := `SELECT auction, price FROM Bid WHERE MOD(auction, 3) = 0`

	replayEngine := newBidEngine(t)
	if err := replayEngine.AppendLog("Bid", g.Bids); err != nil {
		t.Fatal(err)
	}
	want, err := replayEngine.QueryTable(sql, types.MaxTime)
	if err != nil {
		t.Fatal(err)
	}

	liveEngine := newBidEngine(t)
	sub, err := liveEngine.SubscribeTable(sql, core.SubscribeOptions{Buffer: len(g.Bids) + 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range g.Bids {
		ingestEvent(t, liveEngine, "Bid", ev)
	}
	final, err := sub.Close()
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct the snapshot from the diffs.
	rel := tvr.NewRelation()
	apply := func(d *live.TableDiff) {
		for _, r := range d.Inserted {
			rel.Insert(r)
		}
		for _, r := range d.Deleted {
			if err := rel.Delete(r); err != nil {
				t.Fatalf("diff deletes absent row %s: %v", r, err)
			}
		}
	}
	n := 0
	for d := range sub.Deltas() {
		if d.Table == nil {
			t.Fatal("table subscription delivered a nil Table diff")
		}
		apply(d.Table)
		n++
	}
	if final != nil {
		apply(final.Table)
	}
	if n == 0 {
		t.Fatal("no diffs delivered; test is vacuous")
	}
	got := tvr.FormatRelationTable(want.Schema, rel.Rows())
	wantStr := tvr.FormatRelationTable(want.Schema, want.Rows)
	if got != wantStr {
		t.Fatalf("reconstructed snapshot differs:\ngot:\n%s\nwant:\n%s", truncate(got), truncate(wantStr))
	}
}

// TestSubscribeTableRejectsOrderBy: a diff stream cannot maintain
// presentation order, so table subscriptions refuse ORDER BY/LIMIT rather
// than silently diverging from QueryTable.
func TestSubscribeTableRejectsOrderBy(t *testing.T) {
	e := newBidEngine(t)
	if _, err := e.SubscribeTable(`SELECT auction, price FROM Bid ORDER BY price LIMIT 5`,
		core.SubscribeOptions{}); err == nil {
		t.Fatal("expected ORDER BY/LIMIT rejection for table subscription")
	}
	// The stream rendering ignores presentation order, as QueryStream does.
	sub, err := e.SubscribeStream(`SELECT auction, price FROM Bid ORDER BY price LIMIT 5`,
		core.SubscribeOptions{})
	if err != nil {
		t.Fatalf("stream subscription should ignore ORDER BY: %v", err)
	}
	sub.Cancel()
}

// TestLiveAppendLogAtomic: a changelog with a mid-log validation error must
// leave the relation untouched (satellite: atomic AppendLog).
func TestLiveAppendLogAtomic(t *testing.T) {
	e := newBidEngine(t)
	good := tvr.InsertEvent(1, types.Row{
		types.NewInt(1), types.NewInt(1), types.NewInt(5), types.NewTimestamp(1),
	})
	if err := e.AppendLog("Bid", tvr.Changelog{good}); err != nil {
		t.Fatal(err)
	}
	bad := tvr.Changelog{
		tvr.InsertEvent(2, types.Row{
			types.NewInt(2), types.NewInt(2), types.NewInt(6), types.NewTimestamp(2),
		}),
		// ptime regression: invalid.
		tvr.InsertEvent(1, types.Row{
			types.NewInt(3), types.NewInt(3), types.NewInt(7), types.NewTimestamp(3),
		}),
	}
	if err := e.AppendLog("Bid", bad); err == nil {
		t.Fatal("expected validation error")
	}
	log, err := e.Log("Bid")
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != 1 {
		t.Fatalf("relation has %d events after failed append, want 1 (atomicity violated)", len(log))
	}
	// The relation must still accept valid appends from its pre-failure
	// cursor state.
	if err := e.Insert("Bid", 2, types.Row{
		types.NewInt(2), types.NewInt(2), types.NewInt(6), types.NewTimestamp(2),
	}); err != nil {
		t.Fatal(err)
	}
}

// TestLiveHeartbeat: EMIT AFTER DELAY standing queries materialize when the
// engine's processing-time clock advances via Heartbeat.
func TestLiveHeartbeat(t *testing.T) {
	sql := `
SELECT TB.wstart wstart, TB.wend wend, MAX(TB.price) maxPrice
FROM Tumble(data => TABLE(Bid), timecol => DESCRIPTOR(dateTime),
            dur => INTERVAL '10' SECONDS) TB
GROUP BY TB.wstart, TB.wend
EMIT STREAM AFTER DELAY INTERVAL '5' SECONDS`
	e := newBidEngine(t)
	sub, err := e.SubscribeStream(sql, core.SubscribeOptions{Buffer: 16})
	if err != nil {
		t.Fatal(err)
	}
	sec := func(n int64) types.Time { return types.Time(n) * types.Time(types.Second) }
	row := types.Row{types.NewInt(1), types.NewInt(1), types.NewInt(10), types.NewTimestamp(sec(2))}
	if err := e.Insert("Bid", sec(1), row); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-sub.Deltas():
		t.Fatalf("delta before the delay elapsed: %+v", d)
	default:
	}
	// Advance processing time past the 6s deadline: the timer fires.
	e.Heartbeat(sec(10))
	select {
	case d := <-sub.Deltas():
		if len(d.Stream) != 1 || d.Stream[0].Row[2].Int() != 10 {
			t.Fatalf("unexpected delta: %+v", d)
		}
	default:
		t.Fatal("no delta after heartbeat fired the delay timer")
	}
	sub.Cancel()
	if sub.Err() != live.ErrClosed {
		t.Errorf("Err after cancel = %v, want ErrClosed", sub.Err())
	}
	if e.LiveSessions() != 0 {
		t.Errorf("%d sessions after cancel, want 0", e.LiveSessions())
	}
}

// truncate keeps failure output readable for large renderings.
func truncate(s string) string {
	const max = 4000
	if len(s) <= max {
		return s
	}
	return s[:max] + fmt.Sprintf("\n... (%d bytes truncated)", len(s)-max)
}
