package core_test

// End-to-end tests for the standing-query subsystem: a live EMIT STREAM
// subscription fed event by event must observe exactly the delta sequence a
// post-hoc QueryStream replay of the same changelog produces — on both the
// serial and key-partitioned executors, including late data and
// watermark-driven EMIT — and table subscriptions' consolidated diffs must
// reconstruct the QueryTable snapshot.

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/live"
	"repro/internal/nexmark"
	"repro/internal/opt"
	"repro/internal/plan"
	"repro/internal/sqlparser"
	"repro/internal/tvr"
	"repro/internal/types"
)

// liveBidQuery is a NEXMark-shaped standing query over the Bid stream:
// per-auction windowed MAX with watermark-driven EMIT, so deltas are
// produced by group completion and late bids are dropped. Grouping by the
// scan-backed auction column keeps the plan hash-partitionable, so the
// parts>1 variants genuinely exercise the partitioned standing pipeline.
const liveBidQuery = `
SELECT TB.auction auction, TB.wstart wstart, TB.wend wend, MAX(TB.price) maxPrice
FROM Tumble(data => TABLE(Bid), timecol => DESCRIPTOR(dateTime),
            dur => INTERVAL '10' SECONDS) TB
GROUP BY TB.auction, TB.wstart, TB.wend
EMIT STREAM AFTER WATERMARK`

// liveData generates a NEXMark dataset with enough out-of-orderness that
// some bids arrive behind the watermark (late data).
func liveData(t testing.TB) *nexmark.Generated {
	t.Helper()
	return nexmark.Generate(nexmark.GeneratorConfig{
		Seed: 9, NumEvents: 1200, MaxOutOfOrderness: 2 * types.Second,
		WatermarkInterval: 5 * types.Second,
	})
}

// newBidEngine registers just the Bid stream.
func newBidEngine(t testing.TB) *core.Engine {
	t.Helper()
	e := core.NewEngine()
	if err := e.RegisterStream("Bid", nexmark.BidFullSchema()); err != nil {
		t.Fatal(err)
	}
	return e
}

// ingestEvent routes one recorded changelog event through the engine's
// public ingestion API.
func ingestEvent(t testing.TB, e *core.Engine, name string, ev tvr.Event) {
	t.Helper()
	var err error
	switch ev.Kind {
	case tvr.Insert:
		err = e.Insert(name, ev.Ptime, ev.Row)
	case tvr.Delete:
		err = e.Delete(name, ev.Ptime, ev.Row)
	case tvr.Watermark:
		err = e.AdvanceWatermark(name, ev.Ptime, ev.Wm)
	default:
		t.Fatalf("unexpected event kind %s", ev.Kind)
	}
	if err != nil {
		t.Fatalf("ingest %s: %v", ev, err)
	}
}

// collectStream drains every delta (delivered plus final) into one sequence.
func collectStream(sub *live.Subscription, final *live.Delta) []tvr.StreamRow {
	var rows []tvr.StreamRow
	for d := range sub.Deltas() {
		rows = append(rows, d.Stream...)
	}
	if final != nil {
		rows = append(rows, final.Stream...)
	}
	return rows
}

// TestLiveStreamMatchesReplay is the subsystem's core guarantee: subscribe,
// ingest the changelog event by event (half of it before subscribing, to
// exercise the history-replay handoff), close, and the concatenated delta
// sequence is byte-identical to QueryStream replay over the full log.
func TestLiveStreamMatchesReplay(t *testing.T) {
	g := liveData(t)
	for _, parts := range []int{1, 4} {
		parts := parts
		t.Run(fmt.Sprintf("parts=%d", parts), func(t *testing.T) {
			// Replay rendering of the full recorded changelog.
			replayEngine := newBidEngine(t)
			if err := replayEngine.AppendLog("Bid", g.Bids); err != nil {
				t.Fatal(err)
			}
			var want *core.StreamResult
			var err error
			if parts > 1 {
				want, err = replayEngine.QueryStreamParallel(liveBidQuery, parts)
			} else {
				want, err = replayEngine.QueryStream(liveBidQuery)
			}
			if err != nil {
				t.Fatal(err)
			}

			// Live: ingest the first half as history, subscribe, then feed
			// the second half event by event.
			liveEngine := newBidEngine(t)
			half := len(g.Bids) / 2
			if err := liveEngine.AppendLog("Bid", g.Bids[:half]); err != nil {
				t.Fatal(err)
			}
			sub, err := liveEngine.SubscribeStream(liveBidQuery, core.SubscribeOptions{
				Parts: parts, Buffer: len(g.Bids) + 16,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, ev := range g.Bids[half:] {
				ingestEvent(t, liveEngine, "Bid", ev)
			}
			st := sub.Stats()
			if st.EventsIn != int64(len(g.Bids)) {
				t.Errorf("EventsIn = %d, want %d", st.EventsIn, len(g.Bids))
			}
			wantParts := parts
			if wantParts < 1 {
				wantParts = 1
			}
			if st.Partitions != wantParts {
				t.Errorf("Partitions = %d, want %d", st.Partitions, wantParts)
			}
			final, err := sub.Close()
			if err != nil {
				t.Fatal(err)
			}
			got := collectStream(sub, final)

			gotStr := tvr.FormatStreamTable(sub.Schema(), got)
			wantStr := tvr.FormatStreamTable(want.Schema, want.Rows)
			if gotStr != wantStr {
				t.Fatalf("live delta sequence differs from replay:\nlive (%d rows):\n%s\nreplay (%d rows):\n%s",
					len(got), truncate(gotStr), len(want.Rows), truncate(wantStr))
			}
			if len(got) == 0 {
				t.Fatal("no deltas delivered; test is vacuous")
			}
			if sub.Err() != nil {
				t.Errorf("Err after graceful close = %v", sub.Err())
			}
			if liveEngine.LiveSessions() != 0 {
				t.Errorf("%d sessions still registered after close", liveEngine.LiveSessions())
			}
		})
	}
}

// TestLiveStreamLateData pins down the late-data behaviour rather than
// relying on the generator: a bid behind the watermark must not produce a
// delta, matching replay exactly.
func TestLiveStreamLateData(t *testing.T) {
	sec := func(n int64) types.Time { return types.Time(n) * types.Time(types.Second) }
	bid := func(auction, bidder, price int64, et types.Time) types.Row {
		return types.Row{
			types.NewInt(auction), types.NewInt(bidder), types.NewInt(price),
			types.NewTimestamp(et),
		}
	}
	log := tvr.Changelog{
		tvr.InsertEvent(sec(1), bid(1, 1, 10, sec(2))),
		tvr.InsertEvent(sec(2), bid(1, 2, 30, sec(8))),
		// Watermark passes the first window [0s,10s).
		tvr.WatermarkEvent(sec(12), sec(11)),
		// Late: event time inside the already-complete first window.
		tvr.InsertEvent(sec(13), bid(1, 3, 99, sec(4))),
		tvr.InsertEvent(sec(14), bid(1, 4, 25, sec(15))),
		tvr.WatermarkEvent(sec(22), sec(21)),
	}
	replayEngine := newBidEngine(t)
	if err := replayEngine.AppendLog("Bid", log); err != nil {
		t.Fatal(err)
	}
	want, err := replayEngine.QueryStream(liveBidQuery)
	if err != nil {
		t.Fatal(err)
	}

	liveEngine := newBidEngine(t)
	sub, err := liveEngine.SubscribeStream(liveBidQuery, core.SubscribeOptions{Buffer: 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range log {
		ingestEvent(t, liveEngine, "Bid", ev)
	}
	final, err := sub.Close()
	if err != nil {
		t.Fatal(err)
	}
	got := collectStream(sub, final)
	gotStr := tvr.FormatStreamTable(sub.Schema(), got)
	wantStr := tvr.FormatStreamTable(want.Schema, want.Rows)
	if gotStr != wantStr {
		t.Fatalf("live differs from replay:\nlive:\n%s\nreplay:\n%s", gotStr, wantStr)
	}
	// The late bid (price 99) must not appear anywhere.
	for _, r := range got {
		if r.Row[2].Int() == 99 {
			t.Fatalf("late bid leaked into output: %s", r)
		}
	}
	// Exactly the two completed windows materialized.
	if len(got) != 2 {
		t.Fatalf("got %d rows, want 2:\n%s", len(got), gotStr)
	}
}

// TestLiveTableDiffs: a TABLE subscription's consolidated diffs reconstruct
// the QueryTable snapshot.
func TestLiveTableDiffs(t *testing.T) {
	g := liveData(t)
	sql := `SELECT auction, price FROM Bid WHERE MOD(auction, 3) = 0`

	replayEngine := newBidEngine(t)
	if err := replayEngine.AppendLog("Bid", g.Bids); err != nil {
		t.Fatal(err)
	}
	want, err := replayEngine.QueryTable(sql, types.MaxTime)
	if err != nil {
		t.Fatal(err)
	}

	liveEngine := newBidEngine(t)
	sub, err := liveEngine.SubscribeTable(sql, core.SubscribeOptions{Buffer: len(g.Bids) + 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range g.Bids {
		ingestEvent(t, liveEngine, "Bid", ev)
	}
	final, err := sub.Close()
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct the snapshot from the diffs.
	rel := tvr.NewRelation()
	apply := func(d *live.TableDiff) {
		for _, r := range d.Inserted {
			rel.Insert(r)
		}
		for _, r := range d.Deleted {
			if err := rel.Delete(r); err != nil {
				t.Fatalf("diff deletes absent row %s: %v", r, err)
			}
		}
	}
	n := 0
	for d := range sub.Deltas() {
		if d.Table == nil {
			t.Fatal("table subscription delivered a nil Table diff")
		}
		apply(d.Table)
		n++
	}
	if final != nil {
		apply(final.Table)
	}
	if n == 0 {
		t.Fatal("no diffs delivered; test is vacuous")
	}
	got := tvr.FormatRelationTable(want.Schema, rel.Rows())
	wantStr := tvr.FormatRelationTable(want.Schema, want.Rows)
	if got != wantStr {
		t.Fatalf("reconstructed snapshot differs:\ngot:\n%s\nwant:\n%s", truncate(got), truncate(wantStr))
	}
}

// TestSubscribeTableRejectsOrderBy: a diff stream cannot maintain
// presentation order, so table subscriptions refuse ORDER BY/LIMIT rather
// than silently diverging from QueryTable.
func TestSubscribeTableRejectsOrderBy(t *testing.T) {
	e := newBidEngine(t)
	if _, err := e.SubscribeTable(`SELECT auction, price FROM Bid ORDER BY price LIMIT 5`,
		core.SubscribeOptions{}); err == nil {
		t.Fatal("expected ORDER BY/LIMIT rejection for table subscription")
	}
	// The stream rendering ignores presentation order, as QueryStream does.
	sub, err := e.SubscribeStream(`SELECT auction, price FROM Bid ORDER BY price LIMIT 5`,
		core.SubscribeOptions{})
	if err != nil {
		t.Fatalf("stream subscription should ignore ORDER BY: %v", err)
	}
	sub.Cancel()
}

// TestLiveAppendLogAtomic: a changelog with a mid-log validation error must
// leave the relation untouched (satellite: atomic AppendLog).
func TestLiveAppendLogAtomic(t *testing.T) {
	e := newBidEngine(t)
	good := tvr.InsertEvent(1, types.Row{
		types.NewInt(1), types.NewInt(1), types.NewInt(5), types.NewTimestamp(1),
	})
	if err := e.AppendLog("Bid", tvr.Changelog{good}); err != nil {
		t.Fatal(err)
	}
	bad := tvr.Changelog{
		tvr.InsertEvent(2, types.Row{
			types.NewInt(2), types.NewInt(2), types.NewInt(6), types.NewTimestamp(2),
		}),
		// ptime regression: invalid.
		tvr.InsertEvent(1, types.Row{
			types.NewInt(3), types.NewInt(3), types.NewInt(7), types.NewTimestamp(3),
		}),
	}
	if err := e.AppendLog("Bid", bad); err == nil {
		t.Fatal("expected validation error")
	}
	log, err := e.Log("Bid")
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != 1 {
		t.Fatalf("relation has %d events after failed append, want 1 (atomicity violated)", len(log))
	}
	// The relation must still accept valid appends from its pre-failure
	// cursor state.
	if err := e.Insert("Bid", 2, types.Row{
		types.NewInt(2), types.NewInt(2), types.NewInt(6), types.NewTimestamp(2),
	}); err != nil {
		t.Fatal(err)
	}
}

// TestLiveHeartbeat: EMIT AFTER DELAY standing queries materialize when the
// engine's processing-time clock advances via Heartbeat.
func TestLiveHeartbeat(t *testing.T) {
	sql := `
SELECT TB.wstart wstart, TB.wend wend, MAX(TB.price) maxPrice
FROM Tumble(data => TABLE(Bid), timecol => DESCRIPTOR(dateTime),
            dur => INTERVAL '10' SECONDS) TB
GROUP BY TB.wstart, TB.wend
EMIT STREAM AFTER DELAY INTERVAL '5' SECONDS`
	e := newBidEngine(t)
	sub, err := e.SubscribeStream(sql, core.SubscribeOptions{Buffer: 16})
	if err != nil {
		t.Fatal(err)
	}
	sec := func(n int64) types.Time { return types.Time(n) * types.Time(types.Second) }
	row := types.Row{types.NewInt(1), types.NewInt(1), types.NewInt(10), types.NewTimestamp(sec(2))}
	if err := e.Insert("Bid", sec(1), row); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-sub.Deltas():
		t.Fatalf("delta before the delay elapsed: %+v", d)
	default:
	}
	// Advance processing time past the 6s deadline: the timer fires.
	e.Heartbeat(sec(10))
	select {
	case d := <-sub.Deltas():
		if len(d.Stream) != 1 || d.Stream[0].Row[2].Int() != 10 {
			t.Fatalf("unexpected delta: %+v", d)
		}
	default:
		t.Fatal("no delta after heartbeat fired the delay timer")
	}
	sub.Cancel()
	if sub.Err() != live.ErrClosed {
		t.Errorf("Err after cancel = %v, want ErrClosed", sub.Err())
	}
	if e.LiveSessions() != 0 {
		t.Errorf("%d sessions after cancel, want 0", e.LiveSessions())
	}
}

// TestSharedPlanDedup: identical (SQL, mode, effective parts) subscriptions
// share one resident pipeline — observable via LiveSessions/LiveSubscribers
// and the PipelineID/Subscribers stats — while any difference in the key (or
// Exclusive) gets its own pipeline.
func TestSharedPlanDedup(t *testing.T) {
	e := newBidEngine(t)
	opts := core.SubscribeOptions{Buffer: 64}
	subA, err := e.SubscribeStream(liveBidQuery, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Same query with reformatted whitespace: still the same plan key.
	subB, err := e.SubscribeStream(liveBidQuery+"\n  ", opts)
	if err != nil {
		t.Fatal(err)
	}
	if e.LiveSessions() != 1 || e.LiveSubscribers() != 2 {
		t.Fatalf("sessions=%d subscribers=%d after two identical subscriptions, want 1/2",
			e.LiveSessions(), e.LiveSubscribers())
	}
	stA, stB := subA.Stats(), subB.Stats()
	if stA.PipelineID != stB.PipelineID {
		t.Fatalf("pipeline ids %d vs %d, want shared", stA.PipelineID, stB.PipelineID)
	}
	if stA.Subscribers != 2 || stB.Subscribers != 2 {
		t.Fatalf("Subscribers = %d/%d, want 2/2", stA.Subscribers, stB.Subscribers)
	}
	// A different mode, a different effective parallelism, or an explicit
	// Exclusive each get their own resident pipeline.
	subTable, err := e.SubscribeTable(`SELECT auction, price FROM Bid`, opts)
	if err != nil {
		t.Fatal(err)
	}
	subParts, err := e.SubscribeStream(liveBidQuery, core.SubscribeOptions{Buffer: 64, Parts: 4})
	if err != nil {
		t.Fatal(err)
	}
	subExcl, err := e.SubscribeStream(liveBidQuery, core.SubscribeOptions{Buffer: 64, Exclusive: true})
	if err != nil {
		t.Fatal(err)
	}
	if e.LiveSessions() != 4 || e.LiveSubscribers() != 5 {
		t.Fatalf("sessions=%d subscribers=%d, want 4/5", e.LiveSessions(), e.LiveSubscribers())
	}
	for name, st := range map[string]live.Stats{
		"table": subTable.Stats(), "parts": subParts.Stats(), "exclusive": subExcl.Stats(),
	} {
		if st.PipelineID == stA.PipelineID {
			t.Errorf("%s subscription shares pipeline %d with the stream/serial plan", name, st.PipelineID)
		}
		if st.Subscribers != 1 {
			t.Errorf("%s Subscribers = %d, want 1", name, st.Subscribers)
		}
	}
	// The departure of one sharer must not disturb the other; the
	// pipeline dies with the last one.
	subA.Cancel()
	if e.LiveSessions() != 4 || e.LiveSubscribers() != 4 {
		t.Fatalf("sessions=%d subscribers=%d after one sharer canceled, want 4/4",
			e.LiveSessions(), e.LiveSubscribers())
	}
	sec := func(n int64) types.Time { return types.Time(n) * types.Time(types.Second) }
	if err := e.Insert("Bid", sec(1), types.Row{
		types.NewInt(1), types.NewInt(1), types.NewInt(10), types.NewTimestamp(sec(2)),
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.AdvanceWatermark("Bid", sec(12), sec(11)); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-subB.Deltas():
		if len(d.Stream) != 1 {
			t.Fatalf("surviving sharer delta = %+v", d)
		}
	default:
		t.Fatal("surviving sharer received no delta after its peer canceled")
	}
	subB.Cancel()
	subTable.Cancel()
	subParts.Cancel()
	subExcl.Cancel()
	if e.LiveSessions() != 0 || e.LiveSubscribers() != 0 {
		t.Fatalf("sessions=%d subscribers=%d after all cancels, want 0/0",
			e.LiveSessions(), e.LiveSubscribers())
	}
}

// TestPlanKeyRespectsStringLiterals: whitespace is collapsed for the plan
// key only OUTSIDE string literals — 'a b' and 'a  b' are different queries
// and must not share a pipeline, while reformatting around the literal still
// shares.
func TestPlanKeyRespectsStringLiterals(t *testing.T) {
	e := core.NewEngine()
	sch := types.NewSchema(
		types.Column{Name: "name", Kind: types.KindString},
		types.Column{Name: "v", Kind: types.KindInt64},
	)
	if err := e.RegisterStream("S", sch); err != nil {
		t.Fatal(err)
	}
	opts := core.SubscribeOptions{Buffer: 8}
	a, err := e.SubscribeStream(`SELECT v FROM S WHERE name = 'a b'`, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.SubscribeStream(`SELECT v FROM S WHERE name = 'a  b'`, opts) // two spaces INSIDE the literal
	if err != nil {
		t.Fatal(err)
	}
	if e.LiveSessions() != 2 {
		t.Fatalf("sessions = %d, want 2: literals differing in whitespace must not share", e.LiveSessions())
	}
	c, err := e.SubscribeStream("SELECT  v  FROM S\nWHERE name = 'a b'", opts) // reformatted OUTSIDE the literal
	if err != nil {
		t.Fatal(err)
	}
	if e.LiveSessions() != 2 {
		t.Fatalf("sessions = %d after reformatted twin, want 2 (should share)", e.LiveSessions())
	}
	if a.Stats().PipelineID != c.Stats().PipelineID {
		t.Fatalf("reformatted twin pipeline %d != original %d", c.Stats().PipelineID, a.Stats().PipelineID)
	}
	// The two literal variants really are different queries end to end.
	if err := e.Insert("S", 1, types.Row{types.NewString("a  b"), types.NewInt(7)}); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-a.Deltas():
		t.Fatalf("'a b' subscriber received a delta for the 'a  b' row: %+v", d)
	default:
	}
	select {
	case d := <-b.Deltas():
		if len(d.Stream) != 1 || d.Stream[0].Row[0].Int() != 7 {
			t.Fatalf("'a  b' subscriber delta = %+v", d)
		}
	default:
		t.Fatal("'a  b' subscriber missed its row")
	}
	a.Cancel()
	b.Cancel()
	c.Cancel()

	// Double-quoted identifiers are whitespace-significant too: scans of
	// the distinct relations "r x" and "r  x" must not share a pipeline.
	if err := e.RegisterStream("r x", sch); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterStream("r  x", sch); err != nil {
		t.Fatal(err)
	}
	d1, err := e.SubscribeStream(`SELECT v FROM "r x"`, opts)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := e.SubscribeStream(`SELECT v FROM "r  x"`, opts)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Stats().PipelineID == d2.Stats().PipelineID {
		t.Fatal("queries over distinct quoted relations share a pipeline")
	}
	d1.Cancel()
	d2.Cancel()
}

// TestSharedPlanMatchesDedicatedAndReplay is the shared-plan byte-identity
// property: K subscribers attach to one SQL at random points of a randomly
// Feed-split ingest (the first from the start, the rest late, each paired
// with a dedicated Exclusive subscription opened at the same instant), and
// every subscriber's concatenated delta rows — snapshot hand-off included —
// must be byte-identical to its dedicated twin AND to a post-hoc QueryStream
// replay. Serial and partitioned. A final far-future watermark completes all
// windows before closing, so close-time flushes are empty and the property
// covers every subscriber, not just the last closer.
func TestSharedPlanMatchesDedicatedAndReplay(t *testing.T) {
	g := liveData(t)
	last := g.Bids[len(g.Bids)-1]
	finalWM := tvr.WatermarkEvent(last.Ptime+1, last.Ptime+types.Time(1000*types.Second))
	for _, parts := range []int{1, 4} {
		parts := parts
		t.Run(fmt.Sprintf("parts=%d", parts), func(t *testing.T) {
			replayEngine := newBidEngine(t)
			if err := replayEngine.AppendLog("Bid", append(append(tvr.Changelog{}, g.Bids...), finalWM)); err != nil {
				t.Fatal(err)
			}
			var want *core.StreamResult
			var err error
			if parts > 1 {
				want, err = replayEngine.QueryStreamParallel(liveBidQuery, parts)
			} else {
				want, err = replayEngine.QueryStream(liveBidQuery)
			}
			if err != nil {
				t.Fatal(err)
			}
			wantStr := tvr.FormatStreamTable(want.Schema, want.Rows)

			e := newBidEngine(t)
			rng := rand.New(rand.NewSource(int64(31 * parts)))
			attachAt := []int{0, len(g.Bids) / 3, 2 * len(g.Bids) / 3}
			opts := core.SubscribeOptions{Parts: parts, Buffer: len(g.Bids) + 16}
			exclOpts := opts
			exclOpts.Exclusive = true
			type pair struct{ shared, dedicated *live.Subscription }
			var pairs []pair
			i, next := 0, 0
			for i <= len(g.Bids) {
				for next < len(attachAt) && attachAt[next] <= i {
					shared, err := e.SubscribeStream(liveBidQuery, opts)
					if err != nil {
						t.Fatal(err)
					}
					dedicated, err := e.SubscribeStream(liveBidQuery, exclOpts)
					if err != nil {
						t.Fatal(err)
					}
					pairs = append(pairs, pair{shared, dedicated})
					next++
				}
				if i == len(g.Bids) {
					break
				}
				// Random ptime-axis Feed split.
				end := i + 1 + rng.Intn(8)
				if end > len(g.Bids) {
					end = len(g.Bids)
				}
				if err := e.AppendLog("Bid", g.Bids[i:end]); err != nil {
					t.Fatal(err)
				}
				i = end
			}
			if err := e.AppendLog("Bid", tvr.Changelog{finalWM}); err != nil {
				t.Fatal(err)
			}
			// One resident pipeline serves all shared subscribers; each
			// dedicated twin has its own.
			k := len(attachAt)
			if e.LiveSessions() != 1+k || e.LiveSubscribers() != 2*k {
				t.Fatalf("sessions=%d subscribers=%d, want %d/%d",
					e.LiveSessions(), e.LiveSubscribers(), 1+k, 2*k)
			}
			sharedID := pairs[0].shared.Stats().PipelineID
			for pi, p := range pairs {
				if p.shared.Stats().PipelineID != sharedID {
					t.Fatalf("pair %d shared pipeline id %d, want %d", pi, p.shared.Stats().PipelineID, sharedID)
				}
				if p.dedicated.Stats().PipelineID == sharedID {
					t.Fatalf("pair %d dedicated subscription landed on the shared pipeline", pi)
				}
			}
			// Close shared cursors in attach order (only the last completes
			// the pipeline) and every dedicated pipeline individually; all
			// 2K sequences must match the replay.
			for pi, p := range pairs {
				for which, sub := range map[string]*live.Subscription{"shared": p.shared, "dedicated": p.dedicated} {
					final, err := sub.Close()
					if err != nil {
						t.Fatalf("pair %d %s close: %v", pi, which, err)
					}
					rows := collectStream(sub, final)
					if got := tvr.FormatStreamTable(sub.Schema(), rows); got != wantStr {
						t.Fatalf("pair %d %s subscriber differs from replay:\ngot (%d rows):\n%s\nwant (%d rows):\n%s",
							pi, which, len(rows), truncate(got), len(want.Rows), truncate(wantStr))
					}
				}
			}
			if e.LiveSessions() != 0 {
				t.Fatalf("%d sessions left after closing every subscriber", e.LiveSessions())
			}
		})
	}
}

// TestSharedTableLateAttach: a Table-mode subscriber attaching to an
// already-running shared plan gets a consistent initial diff (the snapshot
// hand-off) and then stays consistent: both sharers' reconstructed
// snapshots equal QueryTable.
func TestSharedTableLateAttach(t *testing.T) {
	g := liveData(t)
	sql := `SELECT auction, price FROM Bid WHERE MOD(auction, 3) = 0`
	replayEngine := newBidEngine(t)
	if err := replayEngine.AppendLog("Bid", g.Bids); err != nil {
		t.Fatal(err)
	}
	want, err := replayEngine.QueryTable(sql, types.MaxTime)
	if err != nil {
		t.Fatal(err)
	}

	e := newBidEngine(t)
	opts := core.SubscribeOptions{Buffer: len(g.Bids) + 16}
	early, err := e.SubscribeTable(sql, opts)
	if err != nil {
		t.Fatal(err)
	}
	half := len(g.Bids) / 2
	if err := e.AppendLog("Bid", g.Bids[:half]); err != nil {
		t.Fatal(err)
	}
	late, err := e.SubscribeTable(sql, opts)
	if err != nil {
		t.Fatal(err)
	}
	if e.LiveSessions() != 1 || e.LiveSubscribers() != 2 {
		t.Fatalf("sessions=%d subscribers=%d, want 1/2", e.LiveSessions(), e.LiveSubscribers())
	}
	if err := e.AppendLog("Bid", g.Bids[half:]); err != nil {
		t.Fatal(err)
	}
	reconstruct := func(name string, sub *live.Subscription, final *live.Delta) string {
		rel := tvr.NewRelation()
		apply := func(d *live.TableDiff) {
			for _, r := range d.Inserted {
				rel.Insert(r)
			}
			for _, r := range d.Deleted {
				if err := rel.Delete(r); err != nil {
					t.Fatalf("%s: diff deletes absent row %s: %v", name, r, err)
				}
			}
		}
		for d := range sub.Deltas() {
			apply(d.Table)
		}
		if final != nil && final.Table != nil {
			apply(final.Table)
		}
		return tvr.FormatRelationTable(want.Schema, rel.Rows())
	}
	finalLate, err := late.Close() // non-last: detaches only
	if err != nil {
		t.Fatal(err)
	}
	finalEarly, err := early.Close() // last: completes the pipeline
	if err != nil {
		t.Fatal(err)
	}
	wantStr := tvr.FormatRelationTable(want.Schema, want.Rows)
	if got := reconstruct("late", late, finalLate); got != wantStr {
		t.Fatalf("late sharer snapshot differs:\ngot:\n%s\nwant:\n%s", truncate(got), truncate(wantStr))
	}
	if got := reconstruct("early", early, finalEarly); got != wantStr {
		t.Fatalf("early sharer snapshot differs:\ngot:\n%s\nwant:\n%s", truncate(got), truncate(wantStr))
	}
}

// TestLateSubscribeHeartbeatClock pins the stale-clock bugfix: the engine
// records the last heartbeat, so a subscription opened afterwards starts
// from it and its replay-armed EMIT AFTER DELAY timers fire immediately —
// its delta sequence is byte-identical to a subscription that was there all
// along receiving the same heartbeats. (A heartbeat is timeline input the
// recorded changelog does not carry, so the executable replay baseline here
// is the early subscriber, whose equivalence to QueryStream-given-the-same-
// timeline is established by TestLiveHeartbeat and the lifecycle property.)
func TestLateSubscribeHeartbeatClock(t *testing.T) {
	sql := `
SELECT TB.wstart wstart, TB.wend wend, MAX(TB.price) maxPrice
FROM Tumble(data => TABLE(Bid), timecol => DESCRIPTOR(dateTime),
            dur => INTERVAL '10' SECONDS) TB
GROUP BY TB.wstart, TB.wend
EMIT STREAM AFTER DELAY INTERVAL '5' SECONDS`
	sec := func(n int64) types.Time { return types.Time(n) * types.Time(types.Second) }
	bid := func(price int64, et types.Time) types.Row {
		return types.Row{types.NewInt(1), types.NewInt(1), types.NewInt(price), types.NewTimestamp(et)}
	}
	e := newBidEngine(t)
	// Exclusive on both sides: the point is the resident pipeline's clock,
	// not the shared-attach snapshot path.
	opts := core.SubscribeOptions{Buffer: 16, Exclusive: true}
	early, err := e.SubscribeStream(sql, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Arm a delay timer (deadline 6s), then fire it via a heartbeat.
	if err := e.Insert("Bid", sec(1), bid(10, sec(2))); err != nil {
		t.Fatal(err)
	}
	e.Heartbeat(sec(10))
	// Late joiner: replays the bid (re-arming the 6s deadline) and must be
	// caught up to the 10s heartbeat so that timer fires NOW.
	late, err := e.SubscribeStream(sql, opts)
	if err != nil {
		t.Fatal(err)
	}
	// A second bid into the same window, at a ptime before the recorded
	// heartbeat (legal: heartbeats are not part of the changelog). For the
	// early subscriber the group re-arms at 5s+5s=10s and materializes a
	// second revision at the next heartbeat; a stale-clocked late joiner
	// would still hold the 6s timer and coalesce both bids into one
	// revision instead.
	if err := e.Insert("Bid", sec(5), bid(25, sec(6))); err != nil {
		t.Fatal(err)
	}
	e.Heartbeat(sec(12))
	finalEarly, err := early.Close()
	if err != nil {
		t.Fatal(err)
	}
	finalLate, err := late.Close()
	if err != nil {
		t.Fatal(err)
	}
	gotEarly := collectStream(early, finalEarly)
	gotLate := collectStream(late, finalLate)
	earlyStr := tvr.FormatStreamTable(early.Schema(), gotEarly)
	lateStr := tvr.FormatStreamTable(late.Schema(), gotLate)
	if earlyStr != lateStr {
		t.Fatalf("late joiner's deltas differ from an early subscriber's (stale processing-time clock):\nearly:\n%s\nlate:\n%s",
			earlyStr, lateStr)
	}
	// Guard against vacuous success: the timeline above must produce the
	// two separate revisions (first the 10, then the 25 superseding it).
	if len(gotEarly) != 3 {
		t.Fatalf("early subscriber saw %d rows, want 3 (rev, undo, rev):\n%s", len(gotEarly), earlyStr)
	}
}

// planFor builds the optimized plan of sql against the engine's catalog, so
// driver-level tests can compile real pipelines outside Engine.subscribe.
func planFor(t *testing.T, e *core.Engine, sql string) *plan.PlannedQuery {
	t.Helper()
	q, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	pq, err := plan.New(e, plan.Config{}).Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	return opt.Optimize(pq)
}

// waitForGoroutines polls until the goroutine count settles back to the
// baseline, failing with a stack dump when it does not.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d, baseline %d\n%s", n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFailedRegisterReleasesPartitionedWorkers is the failed-subscribe leak
// regression: live.NewSession has already Start()ed the driver (spawning a
// partitioned pipeline's persistent workers), so a Manager.Register that
// fails in the history snapshot must cancel the session — before the fix the
// workers were stranded forever.
func TestFailedRegisterReleasesPartitionedWorkers(t *testing.T) {
	e := newBidEngine(t)
	boom := errors.New("history snapshot failed")
	base := runtime.NumGoroutine()
	for i := 0; i < 4; i++ {
		pq := planFor(t, e, liveBidQuery)
		pp, err := exec.CompilePartitioned(pq, 4)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := live.NewSession(pp, live.Config{
			Name: liveBidQuery, Mode: live.Stream, Schema: pq.Root.Schema(),
			EmitKeys: pq.EmitKeyIdxs, Sources: []string{"bid"},
		})
		if err != nil {
			t.Fatal(err)
		}
		m := live.NewManager()
		if err := m.Register(sess, func() ([]exec.Source, error) { return nil, boom }); !errors.Is(err, boom) {
			t.Fatalf("Register error = %v, want %v", err, boom)
		}
	}
	waitForGoroutines(t, base)
}

// TestSubscriptionGoroutineHygiene drives every subscription-ending path —
// failed subscribe (runtime error during history replay), slow-consumer
// drop, cancel, and graceful close, shared and partitioned — and checks the
// goroutine count settles back to the baseline.
func TestSubscriptionGoroutineHygiene(t *testing.T) {
	e := newBidEngine(t)
	sec := func(n int64) types.Time { return types.Time(n) * types.Time(types.Second) }
	for i := int64(0); i < 8; i++ {
		if err := e.Insert("Bid", sec(i), types.Row{
			types.NewInt(i % 3), types.NewInt(i), types.NewInt(100 + i), types.NewTimestamp(sec(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	base := runtime.NumGoroutine()

	// Failed subscribe: the history replay hits a runtime error (integer
	// division by zero), the pipeline is already started and partitioned.
	if _, err := e.SubscribeStream(`SELECT price / (price - price) q FROM Bid`,
		core.SubscribeOptions{Parts: 4}); err == nil {
		t.Fatal("expected a runtime error from the replayed division by zero")
	}
	if e.LiveSessions() != 0 {
		t.Fatalf("failed subscribe left %d sessions registered", e.LiveSessions())
	}

	// Slow-consumer drop.
	drop, err := e.SubscribeStream(`SELECT auction, price FROM Bid`,
		core.SubscribeOptions{Parts: 4, Buffer: 1, Policy: live.DropWithError})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(8); i < 16 && drop.Err() == nil; i++ {
		if err := e.Insert("Bid", sec(i), types.Row{
			types.NewInt(i % 3), types.NewInt(i), types.NewInt(100 + i), types.NewTimestamp(sec(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if !errors.Is(drop.Err(), live.ErrSlowConsumer) {
		t.Fatalf("drop path Err = %v, want ErrSlowConsumer", drop.Err())
	}

	// Cancel and graceful close on a shared pair.
	a, err := e.SubscribeStream(liveBidQuery, core.SubscribeOptions{Parts: 4, Buffer: 64})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.SubscribeStream(liveBidQuery, core.SubscribeOptions{Parts: 4, Buffer: 64})
	if err != nil {
		t.Fatal(err)
	}
	a.Cancel()
	if _, err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if e.LiveSessions() != 0 || e.LiveSubscribers() != 0 {
		t.Fatalf("sessions=%d subscribers=%d after teardown, want 0/0",
			e.LiveSessions(), e.LiveSubscribers())
	}
	waitForGoroutines(t, base)
}

// truncate keeps failure output readable for large renderings.
func truncate(s string) string {
	const max = 4000
	if len(s) <= max {
		return s
	}
	return s[:max] + fmt.Sprintf("\n... (%d bytes truncated)", len(s)-max)
}
